module provabs

go 1.24.0
