# Standard checks for the provabs repo.
#
#   make check       — vet + build + fast race-enabled tests with a
#                      total-coverage summary, then the binary-level
#                      crash-recovery leg (kill a durable serve process at
#                      a WAL crash point, restart, verify), the gateway
#                      e2e leg and the seeded pool chaos sweep — the CI
#                      gate
#   make test        — the full (slow) test suite, as tier-1 verify runs it
#   make bench       — go-test microbenchmarks plus the provbench paper
#                      tables, the delta-kernel report (BENCH_3.json), the
#                      planner report (BENCH_5.json), the generic-kernel
#                      report (BENCH_6.json), the ScenQL generator-vs-wire
#                      report (BENCH_7.json) and the gateway pool-router
#                      report (BENCH_9.json), then benchdiff gates the
#                      series consecutive reports share — the perf
#                      trajectory reproduces and self-checks in one command
#   make bench-smoke — every benchmark once (-benchtime=1x), the CI guard
#                      against benchmarks silently rotting
#   make serve       — generate demo provenance (if needed) and start the
#                      streaming what-if server on :8080

GO ?= go

.PHONY: check vet build test-short test crash-recovery gateway-e2e chaos bench bench-smoke serve

check: vet build test-short crash-recovery gateway-e2e chaos

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short -race -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -n 1 | sed 's/^/coverage: /'

test:
	$(GO) test ./...

# The -short suite skips binary-level integration tests; run the durability
# acceptance check (crash mid-add-stream → restart → identical answers,
# Compiles == 1, SIGTERM exits 0) explicitly, race-enabled.
crash-recovery:
	$(GO) test -race -count=1 -run '^TestServeCrashRecovery$$' ./cmd/provabs

# The gateway acceptance leg: two real backends behind a real gateway —
# create/add/query through it, a backend killed mid-stream must surface an
# in-band terminal error, a drain must live-migrate with bit-identical
# answers (Compiles == 1 on the importer, no acked add lost).
gateway-e2e:
	$(GO) test -race -count=1 -run '^TestGateway' ./internal/gateway

# The pool-level chaos sweep: real backends behind seeded fault proxies
# (latency, resets, torn chunks, kill/revive outage windows) while clients
# stream adds through the gateway. Deterministic fault schedules — a
# failure replays from its seed. Asserts zero lost acked writes, no
# invented writes, and bit-identical answers gateway-vs-holder.
chaos:
	$(GO) test -race -count=1 -run '^TestChaos' ./internal/gateway/gatewaychaos

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
	$(GO) run ./cmd/provbench
	$(GO) run ./cmd/provbench -experiment delta -json BENCH_3.json
	$(GO) run ./cmd/provbench -experiment planner -json BENCH_5.json
	$(GO) run ./cmd/provbench -experiment semiring -json BENCH_6.json
	$(GO) run ./cmd/provbench -experiment scenql -json BENCH_7.json
	$(GO) run ./cmd/provbench -experiment gateway -json BENCH_9.json
	$(GO) run ./cmd/benchdiff -tolerance 0.25 \
		-series batch100-sparse,batch100-sparse-nodelta BENCH_3.json BENCH_5.json
	$(GO) run ./cmd/benchdiff -tolerance 0.25 \
		-series batch100-sparse,batch100-sparse-nodelta BENCH_5.json BENCH_6.json
	$(GO) run ./cmd/benchdiff -tolerance 0.25 \
		-series batch100-sparse,batch100-sparse-nodelta BENCH_6.json BENCH_7.json
	$(GO) run ./cmd/benchdiff -tolerance 0.25 \
		-series batch100-sparse,batch100-sparse-nodelta BENCH_7.json BENCH_9.json

bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

demo.pvab:
	$(GO) run ./cmd/provabs generate -dataset telco -customers 1000 -zips 100 -out $@

demo2.pvab:
	$(GO) run ./cmd/provabs generate -dataset telco -customers 500 -zips 50 -seed 7 -out $@

serve: demo.pvab demo2.pvab
	$(GO) run ./cmd/provabs serve -load telco=demo.pvab -load telco2=demo2.pvab \
		-default telco -addr :8080 \
		-tree 'Quarters(q1(m1,m2,m3),q2(m4,m5,m6),q3(m7,m8,m9),q4(m10,m11,m12))' \
		-algo greedy -ratio 0.5
