# Standard checks for the provabs repo.
#
#   make check   — vet + build + fast race-enabled tests (the CI gate)
#   make test    — the full (slow) test suite, as tier-1 verify runs it
#   make bench   — one pass over every benchmark at minimal benchtime

GO ?= go

.PHONY: check vet build test-short test bench

check: vet build test-short

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test-short:
	$(GO) test -short -race ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
