package provabs_test

import (
	"fmt"
	"math"
	"testing"
	"time"

	"provabs"
)

func engineFixture(t testing.TB) (*provabs.Vocab, *provabs.Set, *provabs.Forest) {
	t.Helper()
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("10001", provabs.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	forest, err := provabs.NewForest(provabs.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		t.Fatal(err)
	}
	return vb, set, forest
}

// TestEngineRoundTrip is the package documentation's session lifecycle:
// Open, Compress, WhatIf — with the what-if exact for the group-uniform
// scenario.
func TestEngineRoundTrip(t *testing.T) {
	_, set, forest := engineFixture(t)
	eng, err := provabs.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := eng.Compress(4)
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Adequate || comp.Abstracted.Size() != 4 {
		t.Fatalf("compress: adequate=%v size=%d, want adequate at 4", comp.Adequate, comp.Abstracted.Size())
	}
	answers, err := eng.WhatIf(provabs.NewScenario().Set("q1", 0.8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := provabs.NewScenario().Set("m1", 0.8).Set("m3", 0.8).Eval(set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(answers[0].Value-want[0]) > 1e-9 {
		t.Errorf("engine what-if %v != original %v", answers[0].Value, want[0])
	}
	if answers[0].Tag != "10001" {
		t.Errorf("tag = %q, want 10001", answers[0].Tag)
	}
}

// TestEngineStrategyParityWithFreeFunctions is the acceptance table: every
// strategy through Engine.Compress(B, WithStrategy(...)) agrees with the
// corresponding (deprecated) free function.
func TestEngineStrategyParityWithFreeFunctions(t *testing.T) {
	const B = 4
	cases := []struct {
		name string
		opts []provabs.CompressOption
		free func(set *provabs.Set, forest *provabs.Forest) (ml, vl int, adequate bool)
	}{
		{
			name: "optimal",
			opts: []provabs.CompressOption{provabs.WithStrategy(provabs.StrategyOptimal)},
			free: func(set *provabs.Set, forest *provabs.Forest) (int, int, bool) {
				res, err := provabs.Optimal(set, forest.Trees[0], B)
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate
			},
		},
		{
			name: "greedy",
			opts: []provabs.CompressOption{provabs.WithStrategy(provabs.StrategyGreedy)},
			free: func(set *provabs.Set, forest *provabs.Forest) (int, int, bool) {
				res, err := provabs.Greedy(set, forest, B)
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate
			},
		},
		{
			name: "brute",
			opts: []provabs.CompressOption{provabs.WithStrategy(provabs.StrategyBruteForce)},
			free: func(set *provabs.Set, forest *provabs.Forest) (int, int, bool) {
				res, err := provabs.BruteForce(set, forest, B, 0)
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate
			},
		},
		{
			name: "summarize",
			opts: []provabs.CompressOption{
				provabs.WithStrategy(provabs.StrategySummarize), provabs.WithTimeout(time.Minute)},
			free: func(set *provabs.Set, forest *provabs.Forest) (int, int, bool) {
				res, err := provabs.Summarize(set, forest, B, time.Minute)
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate
			},
		},
		{
			name: "online",
			opts: []provabs.CompressOption{
				provabs.WithStrategy(provabs.StrategyOnline),
				provabs.WithSamplingFraction(1), provabs.WithSeed(9)},
			free: func(set *provabs.Set, forest *provabs.Forest) (int, int, bool) {
				res, err := provabs.OnlineCompress(set, forest, B, 1, 9)
				if err != nil {
					t.Fatal(err)
				}
				return set.Size() - res.Abstracted.Size(),
					set.Granularity() - res.Abstracted.Granularity(), res.FullAdequate
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, set, forest := engineFixture(t)
			wantML, wantVL, wantAdequate := tc.free(set, forest)

			_, set2, forest2 := engineFixture(t)
			eng, err := provabs.Open(set2, forest2)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := eng.Compress(B, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if comp.ML != wantML || comp.VL != wantVL || comp.Adequate != wantAdequate {
				t.Errorf("engine ML/VL/Adequate = %d/%d/%v, free function %d/%d/%v",
					comp.ML, comp.VL, comp.Adequate, wantML, wantVL, wantAdequate)
			}
		})
	}
}

// TestEngineAddThenBatch is the facade-level incremental-compile pin: every
// WhatIfBatch after an Add must see the new polynomial, and an Add-heavy
// Add+WhatIf loop must never trigger a recompilation — the compiled form is
// extended in place (Compiles stays at 1).
func TestEngineAddThenBatch(t *testing.T) {
	vb, set, forest := engineFixture(t)
	eng, err := provabs.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := eng.WhatIfBatch([]*provabs.Scenario{provabs.NewScenario()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 1 {
		t.Fatalf("baseline answers = %d, want 1", len(rows[0]))
	}
	for i := 0; i < 8; i++ {
		eng.Add(fmt.Sprintf("1000%d", i+2), provabs.MustParse(vb, "7·p1·m1 + 3·p1·m3"))
		rows, err = eng.WhatIfBatch([]*provabs.Scenario{provabs.NewScenario()})
		if err != nil {
			t.Fatal(err)
		}
		if len(rows[0]) != i+2 || rows[0][i+1].Value != 10 {
			t.Fatalf("after Add %d: %d answers (%+v), want %d with last = 10",
				i+1, len(rows[0]), rows[0], i+2)
		}
	}
	if st := eng.Stats(); st.Compiles != 1 || st.Added != 8 {
		t.Errorf("Compiles = %d, Added = %d; want the Add+WhatIf loop to append in place (1 compile, 8 adds)",
			st.Compiles, st.Added)
	}
}

// ExampleOpen demonstrates the session lifecycle from the package
// documentation.
func ExampleOpen() {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("zip 10001", provabs.MustParse(vb, "220.8·p1·m1 + 240·p1·m3"))
	forest, _ := provabs.NewForest(provabs.MustParseTree("Year(q1(m1,m3))"))
	eng, _ := provabs.Open(set, forest)
	comp, _ := eng.Compress(1) // StrategyAuto: optimal on a single tree
	fmt.Println(comp.Abstracted.Polys[0].String(vb))
	answers, _ := eng.WhatIf(provabs.NewScenario().Set("q1", 0.8))
	fmt.Printf("%.2f\n", answers[0].Value)
	// Output:
	// 460.8·p1·q1
	// 368.64
}
