package provabs_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"provabs"
)

// The facade must support the complete paper workflow end to end.
func TestFacadeRoundTrip(t *testing.T) {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("10001", provabs.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))

	tree := provabs.MustParseTree("Year(q1(m1,m3))")
	res, err := provabs.Optimal(set, tree, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate {
		t.Fatal("expected adequate abstraction at B=4")
	}
	compressed := res.VVS.Apply(set)
	if compressed.Size() != 4 {
		t.Errorf("compressed size = %d, want 4", compressed.Size())
	}
	if got := provabs.MonomialLoss(set, res.VVS); got != 4 {
		t.Errorf("ML = %d, want 4", got)
	}
	if got := provabs.VariableLoss(set, res.VVS); got != 1 {
		t.Errorf("VL = %d, want 1", got)
	}

	// Uniform what-if on the meta-variable is exact.
	got, err := provabs.NewScenario().Set("q1", 0.8).Eval(compressed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := provabs.NewScenario().Set("m1", 0.8).Set("m3", 0.8).Eval(set)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-want[0]) > 1e-9 {
		t.Errorf("compressed scenario %v != original %v", got[0], want[0])
	}

	// Codec round trip preserves sizes.
	var buf bytes.Buffer
	if err := provabs.Encode(&buf, compressed); err != nil {
		t.Fatal(err)
	}
	if provabs.EncodedSize(compressed) != buf.Len() {
		t.Error("EncodedSize mismatch")
	}
	back, err := provabs.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != compressed.Size() || back.Granularity() != compressed.Granularity() {
		t.Error("decoded sizes differ")
	}
}

func TestFacadeGreedyAndBrute(t *testing.T) {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("P1", provabs.MustParse(vb, "2·a1·x + 3·a2·x + 4·b1·x + 5·b2·x"))
	f, err := provabs.NewForest(
		provabs.MustParseTree("A(a1,a2)"),
		provabs.MustParseTree("B(b1,b2)"),
	)
	if err != nil {
		t.Fatal(err)
	}
	g, err := provabs.Greedy(set, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := provabs.BruteForce(set, f, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Adequate || !bf.Adequate {
		t.Errorf("greedy adequate=%v brute adequate=%v", g.Adequate, bf.Adequate)
	}
	if g.VL != bf.VL {
		t.Errorf("greedy VL %d != optimal VL %d on this symmetric instance", g.VL, bf.VL)
	}
}

func TestFacadeSummarizeAndOnline(t *testing.T) {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	for i := 0; i < 4; i++ {
		set.Add(fmt.Sprintf("g%d", i), provabs.MustParse(vb,
			fmt.Sprintf("%d·a1·x + %d·a2·x + %d·a3·x + %d·a4·x", i+1, i+2, i+3, i+4)))
	}
	f, err := provabs.NewForest(provabs.MustParseTree("A(AL(a1,a2),AR(a3,a4))"))
	if err != nil {
		t.Fatal(err)
	}
	sres, err := provabs.Summarize(set, f, 8, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Adequate {
		t.Errorf("summarize inadequate: %+v", sres)
	}
	ores, err := provabs.OnlineCompress(set, f, 8, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ores.FullAdequate {
		t.Errorf("online compress missed the bound: %d", ores.Abstracted.Size())
	}
}

// The compiled/batch facade: Compile once, EvalBatch many scenarios, with
// results identical to per-scenario Eval.
func TestFacadeCompiledBatch(t *testing.T) {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("10001", provabs.MustParse(vb, "220.8·p1·m1 + 240·p1·m3"))
	set.Add("10002", provabs.MustParse(vb, "127.4·f1·m1 + 114.45·f1·m3"))
	compiled := provabs.Compile(set)
	scenarios := []*provabs.Scenario{
		provabs.NewScenario().Set("m1", 0.8),
		provabs.NewScenario().Set("m3", 1.2).Set("f1", 0.5),
		provabs.NewScenario(),
	}
	rows, err := provabs.EvalBatch(compiled, scenarios, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range scenarios {
		want, err := sc.Eval(set)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(rows[i][j]-want[j]) > 1e-9 {
				t.Errorf("scenario %d poly %d: batch %v, eval %v", i, j, rows[i][j], want[j])
			}
		}
	}
	tagged, err := provabs.AnswersBatch(compiled, scenarios, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tagged[0][0].Tag != "10001" || tagged[0][1].Tag != "10002" {
		t.Errorf("tags = %q, %q", tagged[0][0].Tag, tagged[0][1].Tag)
	}
}

// TestFacadeRegistry drives the multi-session registry through the public
// facade: named sessions with independent engines, default designation,
// aggregate stats and lifecycle errors.
func TestFacadeRegistry(t *testing.T) {
	mkSet := func(tag string) *provabs.Set {
		vb := provabs.NewVocab()
		set := provabs.NewSet(vb)
		set.Add(tag, provabs.MustParse(vb, "220.8·p1·m1 + 240·p1·m3"))
		return set
	}
	reg := provabs.OpenRegistry()
	forest, err := provabs.NewForest(provabs.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := reg.Create("a", mkSet("pa"), forest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("b", mkSet("pb"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create("a", mkSet("dup"), nil); !errors.Is(err, provabs.ErrSessionExists) {
		t.Errorf("duplicate Create: %v, want ErrSessionExists", err)
	}
	if def, err := reg.Default(); err != nil || def.Name() != "a" {
		t.Errorf("Default = %v, %v, want session a", def, err)
	}

	// The sessions are independent engines: compressing one leaves the
	// other's provenance untouched, and both answer what-ifs.
	if _, err := a.Engine().Compress(1); err != nil {
		t.Fatal(err)
	}
	if st := a.Engine().Stats(); !st.Compressed || st.Monomials != 1 {
		t.Errorf("session a stats = %+v, want compressed to 1 monomial", st)
	}
	b, err := reg.Get("b")
	if err != nil {
		t.Fatal(err)
	}
	if st := b.Engine().Stats(); st.Compressed || st.Monomials != 2 {
		t.Errorf("session b stats = %+v, want uncompressed 2 monomials", st)
	}
	if _, err := a.Engine().WhatIf(provabs.NewScenario().Set("q1", 0.5)); err != nil {
		t.Errorf("session a on meta-variable: %v", err)
	}
	if _, err := b.Engine().WhatIf(provabs.NewScenario().Set("m1", 0.5)); err != nil {
		t.Errorf("session b on month: %v", err)
	}

	agg := reg.Stats()
	if agg.Sessions != 2 || agg.Totals.Scenarios != 2 || agg.Totals.Compiles != 2 {
		t.Errorf("aggregate = %d sessions / %d scenarios / %d compiles, want 2/2/2",
			agg.Sessions, agg.Totals.Scenarios, agg.Totals.Compiles)
	}
	if agg.PerSession["a"].Scenarios != 1 || agg.PerSession["b"].Scenarios != 1 {
		t.Errorf("per-session scenarios = %+v, want 1 each", agg.PerSession)
	}
	if err := reg.Close("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("b"); !errors.Is(err, provabs.ErrSessionNotFound) {
		t.Errorf("Get after Close: %v, want ErrSessionNotFound", err)
	}
}

func TestFromLabels(t *testing.T) {
	f, err := provabs.NewForest(provabs.MustParseTree("A(a1,a2)"))
	if err != nil {
		t.Fatal(err)
	}
	v, err := provabs.FromLabels(f, "A")
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 1 {
		t.Errorf("VVS size = %d", v.Size())
	}
	if _, err := provabs.FromLabels(f, "nope"); err == nil {
		t.Error("unknown label accepted")
	}
}

// ExampleOptimal demonstrates the quickstart workflow from the package
// documentation.
func ExampleOptimal() {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("zip 10001", provabs.MustParse(vb, "220.8·p1·m1 + 240·p1·m3"))
	tree := provabs.MustParseTree("Year(q1(m1,m3))")
	res, _ := provabs.Optimal(set, tree, 1)
	compressed := res.VVS.Apply(set)
	fmt.Println(compressed.Polys[0].String(vb))
	answers, _ := provabs.NewScenario().Set("q1", 0.8).Eval(compressed)
	fmt.Printf("%.2f\n", answers[0])
	// Output:
	// 460.8·p1·q1
	// 368.64
}

// TestFacadeSemirings drives the public semiring surface end to end: parse
// a kind, evaluate the same provenance under several carriers, and stream
// in a non-float one.
func TestFacadeSemirings(t *testing.T) {
	vb := provabs.NewVocab()
	set := provabs.NewSet(vb)
	set.Add("q", provabs.MustParse(vb, "2·a·b + 3·c"))
	eng, err := provabs.Open(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if k, err := provabs.ParseSemiring("bool"); err != nil || k != provabs.SemiringBool {
		t.Fatalf("ParseSemiring(bool) = %v, %v", k, err)
	}
	if _, err := provabs.ParseSemiring("galois"); err == nil {
		t.Error("unknown semiring name accepted")
	}
	if ks := provabs.Semirings(); len(ks) == 0 || ks[0] != provabs.SemiringFloat {
		t.Errorf("Semirings() = %v, want float first", ks)
	}

	sc := provabs.NewScenario().Set("a", 0).Set("c", 0)
	alive, err := eng.WhatIfIn(provabs.SemiringBool, sc)
	if err != nil {
		t.Fatal(err)
	}
	if alive[0].Value != false {
		t.Errorf("bool what-if = %v, want false (both derivations deleted)", alive[0].Value)
	}
	counts, err := eng.WhatIfBatchIn(provabs.SemiringCount,
		[]*provabs.Scenario{provabs.NewScenario().Set("a", 2).Set("b", 1).Set("c", 1)})
	if err != nil {
		t.Fatal(err)
	}
	if counts[0][0].Value != int64(2*2*1+3*1) {
		t.Errorf("count what-if = %v, want 7", counts[0][0].Value)
	}

	in := make(chan *provabs.Scenario, 2)
	in <- provabs.NewScenario().Set("a", 1).Set("b", 4).Set("c", 100)
	in <- provabs.NewScenario().Set("c", 0)
	close(in)
	var got []provabs.ValueStreamResult
	for r := range eng.StreamIn(context.Background(), provabs.SemiringTropical, in) {
		if r.Err != nil {
			t.Fatalf("stream result %d: %v", r.Index, r.Err)
		}
		got = append(got, r)
	}
	if len(got) != 2 {
		t.Fatalf("stream yielded %d results, want 2", len(got))
	}
	if got[0].Answers[0].Value != 5.0 { // min(1+4, 100)
		t.Errorf("tropical stream answer 0 = %v, want 5", got[0].Answers[0].Value)
	}
	if st := eng.Stats(); st.Semirings["tropical"].Scenarios != 2 {
		t.Errorf("tropical scenario counter = %+v", st.Semirings)
	}
}
