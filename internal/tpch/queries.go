package tpch

import (
	"fmt"

	"provabs/internal/engine"
	"provabs/internal/provenance"
)

// Q1SQL is TPC-H Q1 (pricing summary report), restricted to the engine's
// subset. The two discount-bearing sums are the provenance carriers; the
// paper reports 8 polynomials for Q1 — the four (returnflag, linestatus)
// groups times the two parameterized aggregates.
const Q1SQL = `
SELECT l_returnflag, l_linestatus,
       SUM(l_quantity) AS sum_qty,
       SUM(l_extendedprice) AS sum_base_price,
       SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
       SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
       COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-09-02'
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

// Q5SQL is TPC-H Q5 (local supplier volume) without the region/date filters,
// matching the paper's reported 25 polynomials — one revenue polynomial per
// nation.
const Q5SQL = `
SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
GROUP BY n_name
ORDER BY n_name`

// Q10SQL is TPC-H Q10 (returned item reporting): revenue per customer over
// returned items in a quarter — very many small polynomials, the paper's
// worst case for compression gain.
const Q10SQL = `
SELECT c_custkey, c_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue, c_acctbal, n_name
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '1993-10-01'
  AND o_orderdate < DATE '1994-01-01'
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, n_name
ORDER BY c_custkey`

// QueryID names the paper's three benchmark queries.
type QueryID string

const (
	Q1  QueryID = "Q1"
	Q5  QueryID = "Q5"
	Q10 QueryID = "Q10"
)

// AllQueries lists the benchmark queries in the paper's reporting order
// (Q5, Q10, Q1 — the panel order of Figures 5–9).
var AllQueries = []QueryID{Q5, Q10, Q1}

// SQLOf returns the SQL text of a query.
func SQLOf(q QueryID) (string, error) {
	switch q {
	case Q1:
		return Q1SQL, nil
	case Q5:
		return Q5SQL, nil
	case Q10:
		return Q10SQL, nil
	}
	return "", fmt.Errorf("tpch: unknown query %q", q)
}

// Provenance executes the query and extracts its provenance set. For Q1 the
// set holds both discount-bearing aggregates per group; for Q5 and Q10 the
// revenue aggregate.
func (d *Dataset) Provenance(q QueryID) (*provenance.Set, error) {
	sql, err := SQLOf(q)
	if err != nil {
		return nil, err
	}
	res, err := d.Catalog.ExecSQL(sql)
	if err != nil {
		return nil, fmt.Errorf("tpch: executing %s: %w", q, err)
	}
	switch q {
	case Q1:
		disc, err := engine.GroupProvenance(d.Catalog.Vocab, res, "sum_disc_price")
		if err != nil {
			return nil, err
		}
		charge, err := engine.GroupProvenance(d.Catalog.Vocab, res, "sum_charge")
		if err != nil {
			return nil, err
		}
		out := provenance.NewSet(d.Catalog.Vocab)
		for i := range disc.Polys {
			out.Add(disc.Tags[i]+"|disc_price", disc.Polys[i])
		}
		for i := range charge.Polys {
			out.Add(charge.Tags[i]+"|charge", charge.Polys[i])
		}
		return out, nil
	default:
		return engine.GroupProvenance(d.Catalog.Vocab, res, "revenue")
	}
}

// Result executes the query and returns the raw relation (used by examples
// and the engine-level tests).
func (d *Dataset) Result(q QueryID) (*engine.Relation, error) {
	sql, err := SQLOf(q)
	if err != nil {
		return nil, err
	}
	return d.Catalog.ExecSQL(sql)
}
