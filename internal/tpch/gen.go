// Package tpch is a deterministic, scaled-down TPC-H-like data generator
// plus the three benchmark queries the paper reports on (Q1, Q5, Q10,
// §4.2). The LINEITEM discount attribute is parameterized by supplier and
// part variables: variable s_i for supplier keys k with k mod 128 = i, and
// p_j for part keys likewise — exactly the paper's parameterization, giving
// provenance polynomials over at most 128+128 variables.
package tpch

import (
	"fmt"
	"math/rand"

	"provabs/internal/abstree"
	"provabs/internal/engine"
	"provabs/internal/provenance"
	"provabs/internal/treegen"
)

// NumVarGroups is the paper's variable-group count: supplier and part keys
// are folded mod 128.
const NumVarGroups = 128

// Config scales the generated database. ScaleFactor 1.0 approximates the
// standard TPC-H row counts; the default is CI-scale.
type Config struct {
	ScaleFactor float64
	Seed        int64
	// VarGroups is the modulus folding supplier/part keys into variables
	// (0 means the paper's 128). The appendix's number-of-variables sweep
	// (Figure 14) raises it to 8000 while the abstraction trees keep
	// covering only s0..s127, so most variables fall outside the trees.
	VarGroups int
}

// DefaultConfig returns a small deterministic configuration.
func DefaultConfig() Config { return Config{ScaleFactor: 0.002, Seed: 1} }

// Rows per table at scale factor 1, per the TPC-H specification.
const (
	baseSuppliers = 10000
	baseParts     = 200000
	baseCustomers = 150000
	baseOrders    = 1500000
)

// SupplierVar names the supplier variable s_i.
func SupplierVar(i int) string { return fmt.Sprintf("s%d", i) }

// PartVar names the part variable p_j.
func PartVar(j int) string { return fmt.Sprintf("p%d", j) }

// Dataset holds the generated catalog.
type Dataset struct {
	Config  Config
	Catalog *engine.Catalog
	// Counts for reporting.
	Suppliers, Parts, Customers, Orders, Lineitems int
}

// nations and regions follow the fixed TPC-H lists (25 nations, 5 regions).
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationList = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

// Generate builds the eight-table catalog. All randomness is seeded;
// regenerating with the same config yields byte-identical data.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("tpch: scale factor %v must be positive", cfg.ScaleFactor)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vb := provenance.NewVocab()
	cat := engine.NewCatalog(vb)
	d := &Dataset{Config: cfg, Catalog: cat}

	scale := func(base, floor int) int {
		n := int(float64(base) * cfg.ScaleFactor)
		if n < floor {
			n = floor
		}
		return n
	}
	// Suppliers and parts are floored at the variable-group count so every
	// s_i / p_j variable of the paper's parameterization actually occurs —
	// at tiny scale factors the abstraction trees would otherwise clean
	// down to a handful of leaves and the tree-shape experiments would not
	// exercise the intended cut spaces. The Figure 14 sweep raises
	// VarGroups beyond 128, so the floor follows it.
	floor := NumVarGroups
	if cfg.VarGroups > floor {
		floor = cfg.VarGroups
	}
	d.Suppliers = scale(baseSuppliers, floor)
	d.Parts = scale(baseParts, floor)
	d.Customers = scale(baseCustomers, 1)
	d.Orders = scale(baseOrders, 1)

	region := engine.NewRelation("region", engine.Schema{
		{Name: "r_regionkey", Type: engine.TInt}, {Name: "r_name", Type: engine.TString},
	})
	for i, name := range regionNames {
		region.MustAppend(engine.Int(int64(i)), engine.Str(name))
	}
	cat.AddTable(region)

	nation := engine.NewRelation("nation", engine.Schema{
		{Name: "n_nationkey", Type: engine.TInt}, {Name: "n_name", Type: engine.TString},
		{Name: "n_regionkey", Type: engine.TInt},
	})
	for i, n := range nationList {
		nation.MustAppend(engine.Int(int64(i)), engine.Str(n.name), engine.Int(int64(n.region)))
	}
	cat.AddTable(nation)

	supplier := engine.NewRelation("supplier", engine.Schema{
		{Name: "s_suppkey", Type: engine.TInt}, {Name: "s_name", Type: engine.TString},
		{Name: "s_nationkey", Type: engine.TInt}, {Name: "s_acctbal", Type: engine.TFloat},
	})
	for i := 1; i <= d.Suppliers; i++ {
		supplier.MustAppend(engine.Int(int64(i)), engine.Str(fmt.Sprintf("Supplier#%09d", i)),
			engine.Int(int64(rng.Intn(25))), engine.Float(float64(rng.Intn(999999))/100-1000))
	}
	cat.AddTable(supplier)

	part := engine.NewRelation("part", engine.Schema{
		{Name: "p_partkey", Type: engine.TInt}, {Name: "p_name", Type: engine.TString},
		{Name: "p_retailprice", Type: engine.TFloat},
	})
	for i := 1; i <= d.Parts; i++ {
		part.MustAppend(engine.Int(int64(i)), engine.Str(fmt.Sprintf("Part#%09d", i)),
			engine.Float(900+float64(i%1000)/10))
	}
	cat.AddTable(part)

	partsupp := engine.NewRelation("partsupp", engine.Schema{
		{Name: "ps_partkey", Type: engine.TInt}, {Name: "ps_suppkey", Type: engine.TInt},
		{Name: "ps_availqty", Type: engine.TInt}, {Name: "ps_supplycost", Type: engine.TFloat},
	})
	for i := 1; i <= d.Parts; i++ {
		for s := 0; s < 2; s++ { // 2 suppliers per part (spec has 4; scaled)
			partsupp.MustAppend(engine.Int(int64(i)), engine.Int(int64(rng.Intn(d.Suppliers)+1)),
				engine.Int(int64(rng.Intn(9999)+1)), engine.Float(float64(rng.Intn(100000))/100))
		}
	}
	cat.AddTable(partsupp)

	customer := engine.NewRelation("customer", engine.Schema{
		{Name: "c_custkey", Type: engine.TInt}, {Name: "c_name", Type: engine.TString},
		{Name: "c_nationkey", Type: engine.TInt}, {Name: "c_acctbal", Type: engine.TFloat},
	})
	custNation := make([]int, d.Customers+1)
	for i := 1; i <= d.Customers; i++ {
		custNation[i] = rng.Intn(25)
		customer.MustAppend(engine.Int(int64(i)), engine.Str(fmt.Sprintf("Customer#%09d", i)),
			engine.Int(int64(custNation[i])), engine.Float(float64(rng.Intn(999999))/100-1000))
	}
	cat.AddTable(customer)

	orders := engine.NewRelation("orders", engine.Schema{
		{Name: "o_orderkey", Type: engine.TInt}, {Name: "o_custkey", Type: engine.TInt},
		{Name: "o_orderdate", Type: engine.TDate}, {Name: "o_totalprice", Type: engine.TFloat},
	})
	lineitem := engine.NewRelation("lineitem", engine.Schema{
		{Name: "l_orderkey", Type: engine.TInt}, {Name: "l_partkey", Type: engine.TInt},
		{Name: "l_suppkey", Type: engine.TInt}, {Name: "l_quantity", Type: engine.TFloat},
		{Name: "l_extendedprice", Type: engine.TFloat}, {Name: "l_discount", Type: engine.TFloat},
		{Name: "l_tax", Type: engine.TFloat}, {Name: "l_returnflag", Type: engine.TString},
		{Name: "l_linestatus", Type: engine.TString}, {Name: "l_shipdate", Type: engine.TDate},
	})
	epoch92 := engine.MustDate("1992-01-01").I
	dateRange := engine.MustDate("1998-08-02").I - epoch92
	type liParam struct{ supp, part int }
	var liParams []liParam
	for o := 1; o <= d.Orders; o++ {
		odate := epoch92 + int64(rng.Intn(int(dateRange)))
		orders.MustAppend(engine.Int(int64(o)), engine.Int(int64(rng.Intn(d.Customers)+1)),
			engine.DateV(odate), engine.Float(0))
		nli := rng.Intn(7) + 1
		for l := 0; l < nli; l++ {
			suppkey := rng.Intn(d.Suppliers) + 1
			partkey := rng.Intn(d.Parts) + 1
			qty := float64(rng.Intn(50) + 1)
			price := float64(rng.Intn(90000)+10000) / 100 * qty / 10
			disc := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			// Like real TPC-H data: old shipments are finalized (F) and may
			// be returned/accepted; recent ones are open (O) and not yet
			// returned. This yields Q1's four (returnflag, linestatus)
			// groups: A|F, N|F, R|F, N|O.
			shipdate := odate + int64(rng.Intn(120)+1)
			rf, ls := "N", "O"
			if shipdate < engine.MustDate("1995-06-17").I {
				ls = "F"
				switch rng.Intn(3) {
				case 0:
					rf = "R"
				case 1:
					rf = "A"
				}
			}
			lineitem.MustAppend(engine.Int(int64(o)), engine.Int(int64(partkey)),
				engine.Int(int64(suppkey)), engine.Float(qty), engine.Float(price),
				engine.Float(disc), engine.Float(tax), engine.Str(rf), engine.Str(ls),
				engine.DateV(shipdate))
			liParams = append(liParams, liParam{suppkey, partkey})
			d.Lineitems++
		}
	}
	cat.AddTable(orders)

	// The paper's parameterization: discount ← discount·s_{suppkey mod 128}
	// ·p_{partkey mod 128} (modulus configurable for the Figure 14 sweep).
	groups := cfg.VarGroups
	if groups <= 0 {
		groups = NumVarGroups
	}
	if err := lineitem.ParameterizeColumn("l_discount", func(i int) []provenance.Var {
		return []provenance.Var{
			vb.Var(SupplierVar(liParams[i].supp % groups)),
			vb.Var(PartVar(liParams[i].part % groups)),
		}
	}); err != nil {
		return nil, err
	}
	cat.AddTable(lineitem)

	return d, nil
}

// SupplierTree builds a Table 2-shaped abstraction tree over the supplier
// variables s0..s127.
func SupplierTree(shape treegen.Shape) (*abstree.Tree, error) {
	if shape.Leaves() > NumVarGroups {
		return nil, fmt.Errorf("tpch: shape has %d leaves, only %d supplier variables", shape.Leaves(), NumVarGroups)
	}
	return shape.Build("SuppRoot", treegen.NumberedLeaves("s")), nil
}

// PartTree builds a Table 2-shaped abstraction tree over the part variables
// p0..p127.
func PartTree(shape treegen.Shape) (*abstree.Tree, error) {
	if shape.Leaves() > NumVarGroups {
		return nil, fmt.Errorf("tpch: shape has %d leaves, only %d part variables", shape.Leaves(), NumVarGroups)
	}
	return shape.Build("PartRoot", treegen.NumberedLeaves("p")), nil
}
