package tpch

import (
	"strings"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/treegen"
)

func testDataset(t testing.TB) *Dataset {
	t.Helper()
	d, err := Generate(Config{ScaleFactor: 0.002, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestGenerateCounts(t *testing.T) {
	d := testDataset(t)
	// Suppliers and parts are floored at 128 so all s_i/p_j variables occur.
	if d.Suppliers != 128 || d.Customers != 300 || d.Orders != 3000 {
		t.Errorf("counts: suppliers=%d customers=%d orders=%d", d.Suppliers, d.Customers, d.Orders)
	}
	li, err := d.Catalog.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if li.Len() != d.Lineitems || li.Len() < d.Orders {
		t.Errorf("lineitems = %d (dataset says %d)", li.Len(), d.Lineitems)
	}
	nation, _ := d.Catalog.Table("nation")
	if nation.Len() != 25 {
		t.Errorf("nations = %d, want 25", nation.Len())
	}
	region, _ := d.Catalog.Table("region")
	if region.Len() != 5 {
		t.Errorf("regions = %d, want 5", region.Len())
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := Generate(Config{ScaleFactor: 0}); err == nil {
		t.Error("zero scale factor accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := testDataset(t)
	b := testDataset(t)
	sa, err := a.Provenance(Q5)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Provenance(Q5)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Size() != sb.Size() || sa.Granularity() != sb.Granularity() || sa.Len() != sb.Len() {
		t.Error("same seed produced different Q5 provenance")
	}
}

// TestQ1Shape: 4 (returnflag, linestatus) groups × 2 discount-bearing
// aggregates = 8 polynomials, as the paper reports; each polynomial has one
// constant monomial plus one monomial per (s_i, p_j) combination present.
func TestQ1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("iterates every Q1 monomial; skipped with -short")
	}
	d := testDataset(t)
	set, err := d.Provenance(Q1)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 8 {
		t.Fatalf("Q1 polynomials = %d, want 8", set.Len())
	}
	for i, p := range set.Polys {
		hasConst := false
		for _, m := range p.Monomials() {
			switch m.NumVars() {
			case 0:
				hasConst = true
			case 2:
				// s_i · p_j as expected.
				names := []string{set.Vocab.Name(m.Vars()[0].Var), set.Vocab.Name(m.Vars()[1].Var)}
				joined := strings.Join(names, ",")
				if !strings.Contains(joined, "s") || !strings.Contains(joined, "p") {
					t.Fatalf("poly %d monomial vars = %v, want one s and one p", i, names)
				}
			default:
				t.Fatalf("poly %d has a monomial with %d vars", i, m.NumVars())
			}
		}
		if !hasConst {
			t.Errorf("poly %d (%s) lacks the constant Σ extendedprice monomial", i, set.Tags[i])
		}
	}
}

// TestQ5Shape: one polynomial per nation that has local sales.
func TestQ5Shape(t *testing.T) {
	d := testDataset(t)
	set, err := d.Provenance(Q5)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 || set.Len() > 25 {
		t.Fatalf("Q5 polynomials = %d, want 1..25", set.Len())
	}
	// Polynomials should be "medium": many monomials each at this scale.
	if set.MeanPolySize() < 2 {
		t.Errorf("Q5 mean polynomial size = %v; expected joins to accumulate monomials", set.MeanPolySize())
	}
}

// TestQ10Shape: many small polynomials (per-customer), the paper's
// hardest-to-compress case.
func TestQ10Shape(t *testing.T) {
	d := testDataset(t)
	set, err := d.Provenance(Q10)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() < 10 {
		t.Fatalf("Q10 polynomials = %d, want many (per customer)", set.Len())
	}
	if set.MeanPolySize() > 70 {
		t.Errorf("Q10 mean polynomial size = %v, want small", set.MeanPolySize())
	}
	if set.Len() <= 3*q5Len(t, d) {
		t.Logf("note: Q10 produced %d polynomials vs Q5 %d; ratio grows with scale", set.Len(), q5Len(t, d))
	}
}

func q5Len(t *testing.T, d *Dataset) int {
	s, err := d.Provenance(Q5)
	if err != nil {
		t.Fatal(err)
	}
	return s.Len()
}

// TestCompressQ5 exercises the full paper pipeline on Q5 with the supplier
// tree at the default bound 0.5·|P|_M.
func TestCompressQ5(t *testing.T) {
	d := testDataset(t)
	set, err := d.Provenance(Q5)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := SupplierTree(treegen.SmallestOfType(1))
	if err != nil {
		t.Fatal(err)
	}
	B := set.Size() / 2
	res, err := core.OptimalVVS(set, tree, B)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adequate {
		if got := res.VVS.Apply(set).Size(); got > B {
			t.Errorf("abstracted size %d > bound %d", got, B)
		}
	}
	// Greedy over suppliers + parts forest must compress at least as much as
	// needed or exhaust candidates.
	ptree, err := PartTree(treegen.SmallestOfType(1))
	if err != nil {
		t.Fatal(err)
	}
	forest := abstree.MustForest(tree, ptree)
	gres, err := core.GreedyVVS(set, forest, B)
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Adequate {
		t.Errorf("greedy could not reach bound %d (ML=%d of %d needed)", B, gres.ML, set.Size()-B)
	}
}

func TestTreesRejectOversizedShapes(t *testing.T) {
	huge := treegen.Shape{Fanouts: []int{2, 128}}
	if _, err := SupplierTree(huge); err == nil {
		t.Error("oversized supplier shape accepted")
	}
	if _, err := PartTree(huge); err == nil {
		t.Error("oversized part shape accepted")
	}
}

func TestSQLOfUnknown(t *testing.T) {
	if _, err := SQLOf(QueryID("Q99")); err == nil {
		t.Error("unknown query accepted")
	}
	if _, err := testDataset(t).Provenance(QueryID("Q99")); err == nil {
		t.Error("unknown query provenance accepted")
	}
}
