package session

import (
	"context"

	"provabs/internal/hypo"
)

// defaultStreamBatch caps how many pending scenarios one micro-batched
// evaluation drains off the input channel. Large enough to amortize the
// batch machinery under load, small enough that the first answer of a burst
// is not held back noticeably.
const defaultStreamBatch = 64

// StreamResult is one streamed what-if outcome. Index is the scenario's
// arrival position, so consumers can correlate answers with requests even
// if they fan results out. A scenario that fails to resolve (e.g. assigns
// an unknown variable) yields Err without terminating the stream.
type StreamResult struct {
	Index   int
	Answers []hypo.Answer
	Err     error
}

// Stream evaluates scenarios as they arrive on in, emitting one
// StreamResult per scenario in arrival order. The returned channel closes
// when in closes or ctx is cancelled.
//
// Scenarios are not evaluated one at a time: whatever is pending on in when
// the evaluator comes around is drained into one micro-batched EvalBatch
// call (up to WithStreamBatch scenarios), so a backed-up stream gets the
// batch path's parallelism and delta routing automatically while an idle
// stream still answers each scenario as it arrives. Each micro-batch is
// evaluated as a chain: scenarios are greedily ordered by assignment
// overlap and delta-evaluated against their predecessor's answers when the
// consecutive diff is sparser than the scenario itself (Stats' ChainedEvals
// counts those), falling back to the identity baseline otherwise. Results are emitted in
// arrival order through a channel with a small buffer (WithStreamBuffer),
// so a slow consumer does not serialize evaluation. Each micro-batch reuses
// the session's cached compiled provenance — the stream never recompiles
// unless the session is mutated between scenarios — and per-scenario errors
// are reported in-band so one malformed scenario does not tear down a
// long-lived connection.
func (e *Engine) Stream(ctx context.Context, in <-chan *hypo.Scenario) <-chan StreamResult {
	maxBatch := e.streamBatch
	if maxBatch <= 0 {
		maxBatch = defaultStreamBatch
	}
	buf := e.streamBuf
	switch {
	case buf == 0:
		buf = maxBatch
	case buf < 0:
		buf = 0
	}
	out := make(chan StreamResult, buf)
	go func() {
		defer close(out)
		idx := 0
		pending := make([]*hypo.Scenario, 0, maxBatch)
		for {
			select {
			case <-ctx.Done():
				return
			case sc, ok := <-in:
				if !ok {
					return
				}
				pending = append(pending[:0], sc)
			}
			// Drain whatever else is already waiting, without blocking.
			closed := false
		drain:
			for len(pending) < maxBatch {
				select {
				case sc, ok := <-in:
					if !ok {
						closed = true
						break drain
					}
					pending = append(pending, sc)
				default:
					break drain
				}
			}
			for _, r := range e.evalStream(idx, pending) {
				select {
				case out <- r:
				case <-ctx.Done():
					return
				}
			}
			idx += len(pending)
			if closed {
				return
			}
		}
	}()
	return out
}

// evalStream answers one micro-batch through the error-isolating batch
// path: scenarios that fail to resolve get in-band errors re-indexed to
// their arrival position (base+i), the rest are evaluated in one call with
// names resolved exactly once.
func (e *Engine) evalStream(base int, scs []*hypo.Scenario) []StreamResult {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, errs := hypo.AnswersBatchEach(e.compiledLocked(), scs, e.streamBatchOptions())
	out := make([]StreamResult, len(scs))
	evaluated := 0
	for i := range scs {
		out[i].Index = base + i
		switch err := errs[i].(type) {
		case nil:
			out[i].Answers = rows[i]
			evaluated++
		case *hypo.UnknownVarsError:
			out[i].Err = hypo.ErrUnknownVars(base+i, err.Names)
		default:
			out[i].Err = err
		}
	}
	e.scenarios.Add(int64(evaluated))
	e.streamBatches.Add(1)
	n := int64(len(scs))
	for {
		cur := e.streamMaxBatch.Load()
		if n <= cur || e.streamMaxBatch.CompareAndSwap(cur, n) {
			break
		}
	}
	return out
}
