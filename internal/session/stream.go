package session

import (
	"context"

	"provabs/internal/hypo"
)

// StreamResult is one streamed what-if outcome. Index is the scenario's
// arrival position, so consumers can correlate answers with requests even
// if they fan results out. A scenario that fails to resolve (e.g. assigns
// an unknown variable) yields Err without terminating the stream.
type StreamResult struct {
	Index   int
	Answers []hypo.Answer
	Err     error
}

// Stream evaluates scenarios as they arrive on in, emitting one
// StreamResult per scenario in arrival order. The returned channel closes
// when in closes or ctx is cancelled. Each scenario reuses the session's
// cached compiled provenance — the stream never recompiles unless the
// session is mutated between scenarios — and per-scenario errors are
// reported in-band so one malformed scenario does not tear down a
// long-lived connection.
func (e *Engine) Stream(ctx context.Context, in <-chan *hypo.Scenario) <-chan StreamResult {
	out := make(chan StreamResult)
	go func() {
		defer close(out)
		idx := 0
		for {
			select {
			case <-ctx.Done():
				return
			case sc, ok := <-in:
				if !ok {
					return
				}
				answers, err := e.WhatIf(sc)
				r := StreamResult{Index: idx, Answers: answers, Err: err}
				idx++
				select {
				case out <- r:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return out
}
