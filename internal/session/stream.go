package session

import (
	"context"

	"provabs/internal/hypo"
	"provabs/internal/semiring"
)

// defaultStreamBatch caps how many pending scenarios one micro-batched
// evaluation drains off the input channel. Large enough to amortize the
// batch machinery under load, small enough that the first answer of a burst
// is not held back noticeably.
const defaultStreamBatch = 64

// StreamResult is one streamed what-if outcome. Index is the scenario's
// arrival position, so consumers can correlate answers with requests even
// if they fan results out. A scenario that fails to resolve (e.g. assigns
// an unknown variable) yields Err without terminating the stream.
type StreamResult struct {
	Index   int
	Answers []hypo.Answer
	Err     error
}

// ValueStreamResult is StreamResult with the answers carrier-erased — the
// streamed outcome of StreamIn, whose carrier is chosen per stream.
type ValueStreamResult struct {
	Index   int
	Answers []hypo.ValueAnswer
	Err     error
}

// Stream evaluates scenarios as they arrive on in, emitting one
// StreamResult per scenario in arrival order. The returned channel closes
// when in closes or ctx is cancelled.
//
// Scenarios are not evaluated one at a time: whatever is pending on in when
// the evaluator comes around is drained into one micro-batched EvalBatch
// call (up to WithStreamBatch scenarios), so a backed-up stream gets the
// batch path's parallelism and delta routing automatically while an idle
// stream still answers each scenario as it arrives. Each micro-batch is
// evaluated as a chain: scenarios are greedily ordered by assignment
// overlap and delta-evaluated against their predecessor's answers when the
// consecutive diff is sparser than the scenario itself (Stats' ChainedEvals
// counts those), falling back to the identity baseline otherwise. The chain
// survives micro-batch boundaries — the stream carries a hypo.ChainState,
// so the first scenario of each micro-batch chains off the previous batch's
// last answers instead of paying an identity-baseline delta (an idle stream
// evaluating one scenario at a time chains every one of them). Results are
// emitted in arrival order through a channel with a small buffer
// (WithStreamBuffer), so a slow consumer does not serialize evaluation.
// Each micro-batch reuses the session's cached compiled provenance — the
// stream never recompiles unless the session is mutated between scenarios —
// and per-scenario errors are reported in-band so one malformed scenario
// does not tear down a long-lived connection.
func (e *Engine) Stream(ctx context.Context, in <-chan *hypo.Scenario) <-chan StreamResult {
	cs := &hypo.ChainState{}
	maxBatch, buf := e.streamParams()
	return streamLoop(ctx, in, maxBatch, buf,
		func(base int, scs []*hypo.Scenario) []StreamResult {
			return e.evalStream(base, scs, cs)
		},
		cs.Release)
}

// StreamIn is Stream in the named semiring: the same micro-batched, chained,
// error-isolating loop, evaluating on the carrier's own kernel (for
// carriers without chain support — boolean, tropical, minmax — micro-batches
// evaluate unchained; see provenance.Carrier.Chainable). KindFloat streams
// on the float path with answers carrier-erased. A carrier the session's
// provenance cannot compile into (e.g. fractional coefficients under
// counting) reports the error in-band on every scenario rather than
// tearing down the stream.
func (e *Engine) StreamIn(ctx context.Context, kind semiring.Kind, in <-chan *hypo.Scenario) <-chan ValueStreamResult {
	cs := &hypo.ChainState{}
	maxBatch, buf := e.streamParams()
	if kind == semiring.KindFloat || kind == "" {
		return streamLoop(ctx, in, maxBatch, buf,
			func(base int, scs []*hypo.Scenario) []ValueStreamResult {
				return eraseResults(e.evalStream(base, scs, cs))
			},
			cs.Release)
	}
	return streamLoop(ctx, in, maxBatch, buf,
		func(base int, scs []*hypo.Scenario) []ValueStreamResult {
			return e.evalStreamIn(kind, base, scs, cs)
		},
		cs.Release)
}

// streamParams resolves the configured micro-batch cap and output-channel
// capacity.
func (e *Engine) streamParams() (maxBatch, buf int) {
	maxBatch = e.streamBatch
	if maxBatch <= 0 {
		maxBatch = defaultStreamBatch
	}
	buf = e.streamBuf
	switch {
	case buf == 0:
		buf = maxBatch
	case buf < 0:
		buf = 0
	}
	return maxBatch, buf
}

// streamLoop is the drain-and-evaluate loop shared by Stream and StreamIn:
// block for one scenario, drain whatever else is already pending (up to
// maxBatch), evaluate the micro-batch with eval, emit in arrival order.
// done runs when the stream ends (releasing the chain state).
func streamLoop[R any](ctx context.Context, in <-chan *hypo.Scenario, maxBatch, buf int, eval func(int, []*hypo.Scenario) []R, done func()) <-chan R {
	out := make(chan R, buf)
	go func() {
		defer close(out)
		defer done()
		idx := 0
		pending := make([]*hypo.Scenario, 0, maxBatch)
		for {
			select {
			case <-ctx.Done():
				return
			case sc, ok := <-in:
				if !ok {
					return
				}
				pending = append(pending[:0], sc)
			}
			// Drain whatever else is already waiting, without blocking.
			closed := false
		drain:
			for len(pending) < maxBatch {
				select {
				case sc, ok := <-in:
					if !ok {
						closed = true
						break drain
					}
					pending = append(pending, sc)
				default:
					break drain
				}
			}
			for _, r := range eval(idx, pending) {
				select {
				case out <- r:
				case <-ctx.Done():
					return
				}
			}
			idx += len(pending)
			if closed {
				return
			}
		}
	}()
	return out
}

// evalStream answers one micro-batch through the error-isolating batch
// path: scenarios that fail to resolve get in-band errors re-indexed to
// their arrival position (base+i), the rest are evaluated in one call with
// names resolved exactly once. cs chains the batch onto the previous one.
func (e *Engine) evalStream(base int, scs []*hypo.Scenario, cs *hypo.ChainState) []StreamResult {
	e.mu.RLock()
	defer e.mu.RUnlock()
	opts := e.streamBatchOptions()
	opts.ChainState = cs
	rows, errs := hypo.AnswersBatchEach(e.compiledLocked(), scs, opts)
	out := make([]StreamResult, len(scs))
	evaluated := 0
	for i := range scs {
		out[i].Index = base + i
		switch err := errs[i].(type) {
		case nil:
			out[i].Answers = rows[i]
			evaluated++
		case *hypo.UnknownVarsError:
			out[i].Err = hypo.ErrUnknownVars(base+i, err.Names)
		default:
			out[i].Err = err
		}
	}
	e.scenarios.Add(int64(evaluated))
	e.observeStreamBatch(len(scs))
	return out
}

// evalStreamIn is evalStream on a non-float carrier's kernel. A carrier the
// active set cannot compile into fails every scenario of the batch in-band.
func (e *Engine) evalStreamIn(kind semiring.Kind, base int, scs []*hypo.Scenario, cs *hypo.ChainState) []ValueStreamResult {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rt, err := e.runtimeLocked(kind)
	if err != nil {
		out := make([]ValueStreamResult, len(scs))
		for i := range scs {
			out[i] = ValueStreamResult{Index: base + i, Err: err}
		}
		return out
	}
	return rt.evalStreamBatch(e, base, scs, cs)
}

// observeStreamBatch folds one micro-batch into the stream accounting.
func (e *Engine) observeStreamBatch(n int) {
	e.streamBatches.Add(1)
	size := int64(n)
	for {
		cur := e.streamMaxBatch.Load()
		if size <= cur || e.streamMaxBatch.CompareAndSwap(cur, size) {
			break
		}
	}
}

// eraseResults converts float stream results to the carrier-erased form.
func eraseResults(rs []StreamResult) []ValueStreamResult {
	out := make([]ValueStreamResult, len(rs))
	for i, r := range rs {
		out[i] = ValueStreamResult{Index: r.Index, Err: r.Err}
		if r.Err == nil {
			out[i].Answers = hypo.Erase(r.Answers)
		}
	}
	return out
}
