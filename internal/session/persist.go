// Persistence support: a stable, lock-consistent view of everything a
// session needs to survive a restart (SnapshotState / WithState), and the
// inverse operation (Restore) that reopens an Engine from such a view
// without recompiling anything — the compiled cache arrives pre-injected
// through provenance.RestoreSet, so Stats().Compiles still counts exactly
// one compilation across the restart.
//
// The durable layer (internal/durable) builds on these primitives; this
// package deliberately knows nothing about files, WALs or checksums.

package session

import (
	"fmt"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
)

// SnapshotState is the persistable image of a session: the source and
// active provenance sets (the same set before Compress), the compression
// outcome needed to keep Add re-abstracting consistently after a restart,
// and the abstraction forest in its compact text form. Evaluation counters
// are deliberately absent — stats are per-process.
type SnapshotState struct {
	Source *provenance.Set
	Active *provenance.Set // == Source when !Compressed

	Compressed bool
	Strategy   string
	ML, VL     int
	Adequate   bool
	Subst      map[provenance.Var]provenance.Var

	// Trees holds the abstraction forest as compact tree strings
	// (abstree.Tree.String / ParseTree round-trip); empty for
	// evaluation-only sessions.
	Trees []string
}

// WithState runs f over a consistent snapshot view of the session, holding
// the engine's read lock for the duration: Add and Compress are excluded,
// evaluations proceed. f must not retain the state's sets past the call
// unless it owns all further mutation (Restore does).
func (e *Engine) WithState(f func(*SnapshotState) error) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := &SnapshotState{Source: e.set, Active: e.active}
	if e.comp != nil {
		st.Compressed = true
		st.Strategy = e.comp.Strategy
		st.ML = e.comp.ML
		st.VL = e.comp.VL
		st.Adequate = e.comp.Adequate
		st.Subst = e.comp.Subst
	}
	if e.forest != nil {
		st.Trees = make([]string, 0, len(e.forest.Trees))
		for _, t := range e.forest.Trees {
			st.Trees = append(st.Trees, t.String())
		}
	}
	return f(st)
}

// Restore reopens an Engine from a snapshot state. Unlike Open it accepts
// an already-compressed session: the active set (with its injected
// compiled cache) keeps answering scenarios, and the reconstructed
// substitution keeps Add abstracting new polynomials exactly as the live
// session did. No selection or compilation is re-run.
func Restore(st *SnapshotState, opts ...Option) (*Engine, error) {
	if st == nil || st.Source == nil || st.Active == nil {
		return nil, fmt.Errorf("session: Restore needs source and active sets")
	}
	if !st.Compressed && st.Active != st.Source {
		return nil, fmt.Errorf("session: uncompressed snapshot with distinct source and active sets")
	}
	var forest *abstree.Forest
	if len(st.Trees) > 0 {
		trees := make([]*abstree.Tree, 0, len(st.Trees))
		for _, src := range st.Trees {
			t, err := abstree.ParseTree(src)
			if err != nil {
				return nil, fmt.Errorf("session: snapshot forest: %w", err)
			}
			trees = append(trees, t)
		}
		f, err := abstree.NewForest(trees...)
		if err != nil {
			return nil, fmt.Errorf("session: snapshot forest: %w", err)
		}
		if err := f.CompatibleWith(st.Source); err != nil {
			return nil, fmt.Errorf("session: snapshot forest: %w", err)
		}
		forest = f
	}
	e := &Engine{set: st.Source, forest: forest, active: st.Active}
	if st.Compressed {
		e.comp = &core.Compression{
			Strategy:   st.Strategy,
			Abstracted: st.Active,
			Subst:      st.Subst,
			ML:         st.ML,
			VL:         st.VL,
			Adequate:   st.Adequate,
		}
	}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// ParsePoly parses a polynomial in the set's text format ("2*x*y + 3"),
// interning any new variable names, under the engine's exclusive lock.
// All vocabulary writes funnel through the exclusive lock this way —
// evaluation and query paths read the vocabulary under the shared lock —
// so the Vocab itself needs no locking. This is the ingestion front door
// for wire formats that carry polynomials as text.
func (e *Engine) ParsePoly(src string) (*provenance.Polynomial, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return provenance.Parse(e.set.Vocab, src)
}

// InternVars interns names in order under the engine's exclusive lock —
// the replay-side mirror of VocabTail. Names already interned keep their
// ids (interning is idempotent), so replaying a vocab record over a
// snapshot that already contains some of its names is harmless.
func (e *Engine) InternVars(names []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, n := range names {
		e.set.Vocab.Var(n)
	}
}

// VocabLen reports the number of interned variable names.
func (e *Engine) VocabLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.set.Vocab.Len()
}

// VocabTail returns the variable names interned at positions [from, len),
// in interning order — what a write-ahead log records so replay re-interns
// names to identical Vars. The usual call passes the previously logged
// count and receives the handful (often zero) of new names.
func (e *Engine) VocabTail(from int) []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	vb := e.set.Vocab
	if from < 0 {
		from = 0
	}
	n := vb.Len()
	if from >= n {
		return nil
	}
	out := make([]string, 0, n-from)
	for i := from; i < n; i++ {
		out = append(out, vb.Name(provenance.Var(i+1)))
	}
	return out
}
