package session

// Semiring-aware evaluation: the same session can answer what-ifs in any
// wire-selectable carrier (semiring.Kind), not just the float64 default.
// Each non-float carrier used gets its own lazily compiled kernel over the
// session's active set, its own BatchCounters (so a boolean stream's
// timings never steer the float cost model, and vice versa) and its own
// scenario accounting, surfaced in Stats.Semirings. The kernels live in a
// small map behind semMu; Add mirrors its incremental Append into every
// live kernel and Compress drops them all (the active set changed
// wholesale).
//
// Lock order: e.mu before e.semMu, everywhere.

import (
	"fmt"
	"sync/atomic"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/semiring"
)

// SemiringStats is the per-carrier slice of a session's evaluation
// accounting (see Stats.Semirings; the float default stays in the
// top-level fields).
type SemiringStats struct {
	Scenarios    int64 `json:"scenarios"`
	DeltaEvals   int64 `json:"delta_evals"`
	ChainedEvals int64 `json:"chained_evals"`
	FullEvals    int64 `json:"full_evals"`
	ShardedEvals int64 `json:"sharded_evals"`

	DeltaNsPerTerm float64 `json:"delta_ns_per_term,omitempty"`
	FullNsPerTerm  float64 `json:"full_ns_per_term,omitempty"`
	AdaptiveCutoff float64 `json:"adaptive_cutoff,omitempty"`
}

// accumulate merges another session's per-carrier slice (counters sum, the
// cost-model estimates take the maximum, as in Stats.Accumulate).
func (s *SemiringStats) accumulate(o SemiringStats) {
	s.Scenarios += o.Scenarios
	s.DeltaEvals += o.DeltaEvals
	s.ChainedEvals += o.ChainedEvals
	s.FullEvals += o.FullEvals
	s.ShardedEvals += o.ShardedEvals
	if o.DeltaNsPerTerm > s.DeltaNsPerTerm {
		s.DeltaNsPerTerm = o.DeltaNsPerTerm
	}
	if o.FullNsPerTerm > s.FullNsPerTerm {
		s.FullNsPerTerm = o.FullNsPerTerm
	}
	if o.AdaptiveCutoff > s.AdaptiveCutoff {
		s.AdaptiveCutoff = o.AdaptiveCutoff
	}
}

// semRuntime is the carrier-erased face of one non-float evaluation kernel;
// semState[T, C] implements it for each concrete carrier.
type semRuntime interface {
	// answers evaluates a batch; any unresolvable scenario fails the call.
	answers(e *Engine, scs []*hypo.Scenario) ([][]hypo.ValueAnswer, error)
	// evalStreamBatch is the error-isolating chained micro-batch used by
	// StreamIn; cs carries the chain across micro-batches.
	evalStreamBatch(e *Engine, base int, scs []*hypo.Scenario, cs *hypo.ChainState) []ValueStreamResult
	// mirror appends one tagged polynomial incrementally, reporting false
	// when the kernel must be rebuilt (the caller then drops the runtime
	// and the next use recompiles).
	mirror(tag string, p *provenance.Polynomial) bool
	// stats snapshots the runtime's accounting.
	stats() SemiringStats
	// describe summarizes the kernel for ScenQL EXPLAIN.
	describe() kernelDesc
}

// semState is one carrier's compiled kernel plus its private accounting.
type semState[T any, C provenance.Carrier[T]] struct {
	kernel    *provenance.Kernel[T, C]
	counters  hypo.BatchCounters
	scenarios atomic.Int64 // evaluations run under e.mu.RLock, concurrently
}

func newSemState[T any, C provenance.Carrier[T]](cr C, s *provenance.Set) (*semState[T, C], error) {
	k, err := provenance.CompileSet[T, C](cr, s)
	if err != nil {
		return nil, err
	}
	return &semState[T, C]{kernel: k}, nil
}

// newSemRuntime compiles the active set into the named carrier. Compilation
// fails when the provenance has coefficients the carrier rejects (e.g. a
// fractional multiplicity under counting).
func newSemRuntime(kind semiring.Kind, s *provenance.Set) (semRuntime, error) {
	switch kind {
	case semiring.KindBool:
		return newSemState[bool](semiring.Boolean{}, s)
	case semiring.KindCount:
		return newSemState[int64](semiring.Counting{}, s)
	case semiring.KindTropical:
		return newSemState[float64](semiring.Tropical{}, s)
	case semiring.KindMinMax:
		return newSemState[float64](semiring.MinMax{}, s)
	}
	return nil, fmt.Errorf("session: no evaluation runtime for semiring %q", kind)
}

func (st *semState[T, C]) batchOptions(e *Engine) hypo.BatchOptions {
	return hypo.BatchOptions{Workers: e.workers, DeltaCutoff: e.deltaCutoff, Counters: &st.counters}
}

func (st *semState[T, C]) answers(e *Engine, scs []*hypo.Scenario) ([][]hypo.ValueAnswer, error) {
	rows, err := hypo.AnswersBatch(st.kernel, scs, st.batchOptions(e))
	if err != nil {
		return nil, err
	}
	out := make([][]hypo.ValueAnswer, len(rows))
	for i, row := range rows {
		out[i] = hypo.Erase(row)
	}
	st.scenarios.Add(int64(len(scs)))
	return out, nil
}

func (st *semState[T, C]) evalStreamBatch(e *Engine, base int, scs []*hypo.Scenario, cs *hypo.ChainState) []ValueStreamResult {
	opts := st.batchOptions(e)
	opts.Chain = true
	opts.ChainState = cs
	rows, errs := hypo.AnswersBatchEach(st.kernel, scs, opts)
	out := make([]ValueStreamResult, len(scs))
	evaluated := int64(0)
	for i := range scs {
		out[i].Index = base + i
		switch err := errs[i].(type) {
		case nil:
			out[i].Answers = hypo.Erase(rows[i])
			evaluated++
		case *hypo.UnknownVarsError:
			out[i].Err = hypo.ErrUnknownVars(base+i, err.Names)
		case *hypo.BadAssignmentError:
			out[i].Err = &hypo.BadAssignmentError{Scenario: base + i, Name: err.Name, Err: err.Err}
		default:
			out[i].Err = err
		}
	}
	st.scenarios.Add(evaluated)
	e.observeStreamBatch(len(scs))
	return out
}

func (st *semState[T, C]) mirror(tag string, p *provenance.Polynomial) bool {
	return st.kernel.Append([]*provenance.Polynomial{p}, []string{tag})
}

func (st *semState[T, C]) describe() kernelDesc {
	return kernelDesc{
		polys: st.kernel.Len(), terms: st.kernel.Size(),
		chainable:     st.kernel.Carrier().Chainable(),
		counters:      &st.counters,
		vocab:         st.kernel.Vocab,
		termsTouching: st.kernel.TermsTouching,
	}
}

func (st *semState[T, C]) stats() SemiringStats {
	return SemiringStats{
		Scenarios:      st.scenarios.Load(),
		DeltaEvals:     st.counters.DeltaEvals.Load(),
		ChainedEvals:   st.counters.ChainedEvals.Load(),
		FullEvals:      st.counters.FullEvals.Load(),
		ShardedEvals:   st.counters.ShardedEvals.Load(),
		DeltaNsPerTerm: st.counters.DeltaNsPerTerm(),
		FullNsPerTerm:  st.counters.FullNsPerTerm(),
		AdaptiveCutoff: st.counters.AdaptiveCutoff(),
	}
}

// runtimeLocked returns (building if needed) the evaluation runtime for a
// non-float kind against the current active set. Callers hold e.mu (read or
// write).
func (e *Engine) runtimeLocked(kind semiring.Kind) (semRuntime, error) {
	e.semMu.Lock()
	defer e.semMu.Unlock()
	if rt, ok := e.sems[kind]; ok {
		return rt, nil
	}
	rt, err := newSemRuntime(kind, e.active)
	if err != nil {
		return nil, err
	}
	if e.sems == nil {
		e.sems = map[semiring.Kind]semRuntime{}
	}
	e.sems[kind] = rt
	return rt, nil
}

// mirrorAddLocked incrementally appends the polynomial just added to the
// active set into every live semiring kernel, dropping any whose in-place
// Append declined (the next use recompiles, surfacing conversion errors
// there). Callers hold e.mu exclusively.
func (e *Engine) mirrorAddLocked(tag string, p *provenance.Polynomial) {
	e.semMu.Lock()
	defer e.semMu.Unlock()
	for k, rt := range e.sems {
		if !rt.mirror(tag, p) {
			delete(e.sems, k)
		}
	}
}

// dropRuntimesLocked discards every semiring kernel; used when the active
// set is replaced wholesale (Compress). Callers hold e.mu exclusively.
func (e *Engine) dropRuntimesLocked() {
	e.semMu.Lock()
	defer e.semMu.Unlock()
	e.sems = nil
}

// semStatsLocked snapshots the per-carrier accounting (nil when no
// non-float carrier was used). Callers hold e.mu.
func (e *Engine) semStatsLocked() map[string]SemiringStats {
	e.semMu.Lock()
	defer e.semMu.Unlock()
	if len(e.sems) == 0 {
		return nil
	}
	out := make(map[string]SemiringStats, len(e.sems))
	for k, rt := range e.sems {
		out[k.String()] = rt.stats()
	}
	return out
}

// WhatIfIn answers a single scenario in the named semiring. KindFloat is
// the plain WhatIf path with the answers carrier-erased; other kinds
// evaluate on that carrier's own kernel, compiled from the active set on
// first use and extended in place by Add like the float one.
func (e *Engine) WhatIfIn(kind semiring.Kind, sc *hypo.Scenario) ([]hypo.ValueAnswer, error) {
	rows, err := e.whatIfBatchIn(kind, []*hypo.Scenario{sc})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// WhatIfBatchIn answers many scenarios in parallel in the named semiring.
func (e *Engine) WhatIfBatchIn(kind semiring.Kind, scs []*hypo.Scenario) ([][]hypo.ValueAnswer, error) {
	rows, err := e.whatIfBatchIn(kind, scs)
	if err != nil {
		return nil, err
	}
	e.batches.Add(1)
	return rows, nil
}

func (e *Engine) whatIfBatchIn(kind semiring.Kind, scs []*hypo.Scenario) ([][]hypo.ValueAnswer, error) {
	if kind == semiring.KindFloat || kind == "" {
		rows, err := e.answers(scs)
		if err != nil {
			return nil, err
		}
		out := make([][]hypo.ValueAnswer, len(rows))
		for i, row := range rows {
			out[i] = hypo.Erase(row)
		}
		return out, nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	rt, err := e.runtimeLocked(kind)
	if err != nil {
		return nil, err
	}
	return rt.answers(e, scs)
}
