package session

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"provabs/internal/hypo"
	"provabs/internal/scenql"
	"provabs/internal/semiring"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// queryFixture opens a deterministic engine over the paper's running
// example: workers pinned to 1 and a static delta cutoff, so EXPLAIN's
// cost model has no machine-dependent fields.
func queryFixture(t *testing.T) *Engine {
	t.Helper()
	set, _ := fixture(t)
	e, err := Open(set, nil, WithWorkers(1), WithDeltaCutoff(0.5))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestQuerySweep(t *testing.T) {
	e := queryFixture(t)
	res, err := e.Query("SET v = 0 p1 IN [0:1:0.5]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Semiring != semiring.KindFloat {
		t.Fatalf("Semiring = %q, want float", res.Semiring)
	}
	if res.Scenarios != 3 || len(res.Rows) != 3 || res.Errors != 0 || res.Truncated {
		t.Fatalf("got scenarios=%d rows=%d errors=%d truncated=%v, want 3 rows clean",
			res.Scenarios, len(res.Rows), res.Errors, res.Truncated)
	}
	for i, row := range res.Rows {
		if row.Index != int64(i) {
			t.Fatalf("row %d has index %d", i, row.Index)
		}
		want := hypo.NewScenario().Set("v", 0).Set("p1", 0.5*float64(i))
		// The generator's answers must match the plain what-if path.
		ref, err := e.WhatIf(want)
		if err != nil {
			t.Fatal(err)
		}
		if len(row.Answers) != len(ref) {
			t.Fatalf("row %d has %d answers, want %d", i, len(row.Answers), len(ref))
		}
		for j := range ref {
			if row.Answers[j].Tag != ref[j].Tag || row.Answers[j].Value != any(ref[j].Value) {
				t.Fatalf("row %d answer %d = %+v, want %+v", i, j, row.Answers[j], ref[j])
			}
		}
		if row.Assign["p1"] != 0.5*float64(i) || row.Assign["v"] != 0 {
			t.Fatalf("row %d assign = %v", i, row.Assign)
		}
	}
}

func TestQueryTopK(t *testing.T) {
	e := queryFixture(t)
	res, err := e.Query("p1 IN [0:1:0.25] f1 IN [0:1:0.25] ORDER BY ans['zip 10001'] DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 25 || len(res.Rows) != 3 {
		t.Fatalf("got scenarios=%d rows=%d, want 25 and 3", res.Scenarios, len(res.Rows))
	}
	// Brute-force the same sweep and compare the ranked prefix.
	type kv struct {
		p1, f1, val float64
	}
	var all []kv
	for i := 0; i <= 4; i++ {
		for j := 0; j <= 4; j++ {
			p1, f1 := 0.25*float64(i), 0.25*float64(j)
			ans, err := e.WhatIf(hypo.NewScenario().Set("p1", p1).Set("f1", f1))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, kv{p1, f1, ans[0].Value})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].val > all[j].val })
	for i, row := range res.Rows {
		if got := row.Answers[0].Value.(float64); got != all[i].val {
			t.Fatalf("rank %d value = %v, want %v", i, got, all[i].val)
		}
		if i > 0 {
			prev := res.Rows[i-1]
			if prev.Answers[0].Value.(float64) < row.Answers[0].Value.(float64) {
				t.Fatalf("rows not descending at rank %d", i)
			}
			if prev.Answers[0].Value == row.Answers[0].Value && prev.Index > row.Index {
				t.Fatalf("tie at rank %d not broken by generation order", i)
			}
		}
	}
}

func TestQueryOrderAscByIndex(t *testing.T) {
	e := queryFixture(t)
	res, err := e.Query("p1 IN [0:1:0.5] ORDER BY ans[1] ASC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	a := res.Rows[0].Answers[1].Value.(float64)
	b := res.Rows[1].Answers[1].Value.(float64)
	if a > b {
		t.Fatalf("ASC order violated: %v then %v", a, b)
	}
}

func TestQueryLimitAndTruncation(t *testing.T) {
	e := queryFixture(t)
	res, err := e.Query("p1 IN [0:1:0.001] LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 5 || len(res.Rows) != 5 || res.Truncated {
		t.Fatalf("LIMIT: scenarios=%d rows=%d truncated=%v", res.Scenarios, len(res.Rows), res.Truncated)
	}
	// 2001 points with no LIMIT hits the materialization cap.
	res, err = e.Query("p1 IN [0:1:0.0005]")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 2001 || len(res.Rows) != maxQueryRows || !res.Truncated {
		t.Fatalf("cap: scenarios=%d rows=%d truncated=%v, want %d truncated rows",
			res.Scenarios, len(res.Rows), res.Truncated, maxQueryRows)
	}
}

func TestQueryUsingSemiring(t *testing.T) {
	e := queryFixture(t)
	res, err := e.Query("p1 IN [0:1:1] USING bool")
	if err != nil {
		t.Fatal(err)
	}
	if res.Semiring != semiring.KindBool {
		t.Fatalf("Semiring = %q, want bool", res.Semiring)
	}
	for _, row := range res.Rows {
		for _, a := range row.Answers {
			if _, ok := a.Value.(bool); !ok {
				t.Fatalf("answer %v is %T, want bool", a, a.Value)
			}
		}
	}
}

func TestQueryInBandErrors(t *testing.T) {
	// chainFixture has natural coefficients, so it compiles under counting;
	// fractional assignments are still unrepresentable there, so those
	// scenarios fail in-band while the integral ones answer.
	e, err := Open(chainFixture(), nil, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("m IN [0:2:0.5] USING count")
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 5 || res.Errors != 2 {
		t.Fatalf("scenarios=%d errors=%d, want 5 and 2", res.Scenarios, res.Errors)
	}
	for _, row := range res.Rows {
		frac := row.Assign["m"] != math.Trunc(row.Assign["m"])
		if frac != (row.Err != nil) {
			t.Fatalf("row %v: fractional=%v but err=%v", row.Assign, frac, row.Err)
		}
	}
}

func TestQueryCompileAndParseErrors(t *testing.T) {
	e := queryFixture(t)
	if _, err := e.Query("p1 IN [0:1:"); err == nil {
		t.Fatal("parse error not surfaced")
	} else if _, ok := err.(*scenql.ParseError); !ok {
		t.Fatalf("got %T, want *scenql.ParseError", err)
	}
	if _, err := e.Query("nosuch IN [0:1:0.5]"); err == nil {
		t.Fatal("unknown variable not surfaced")
	} else if _, ok := err.(*scenql.CompileError); !ok {
		t.Fatalf("got %T, want *scenql.CompileError", err)
	}
}

func TestQueryStream(t *testing.T) {
	e := queryFixture(t)
	info, rows, err := e.QueryStream(context.Background(), "p1 IN [0:1:0.25] f1 IN [0:1:0.25]")
	if err != nil {
		t.Fatal(err)
	}
	if info.Scenarios != 25 || info.Explain != nil {
		t.Fatalf("info = %+v, want 25 scenarios and no explain", info)
	}
	n := int64(0)
	for row := range rows {
		if row.Index != n {
			t.Fatalf("row %d arrived with index %d", n, row.Index)
		}
		if row.Err != nil {
			t.Fatalf("row %d failed: %v", n, row.Err)
		}
		n++
	}
	if n != 25 {
		t.Fatalf("streamed %d rows, want 25", n)
	}
}

func TestQueryStreamTopK(t *testing.T) {
	e := queryFixture(t)
	_, rows, err := e.QueryStream(context.Background(),
		"p1 IN [0:1:0.25] ORDER BY ans[0] DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	var got []QueryRow
	for row := range rows {
		got = append(got, row)
	}
	if len(got) != 2 {
		t.Fatalf("streamed %d rows, want the top 2", len(got))
	}
	if got[0].Answers[0].Value.(float64) < got[1].Answers[0].Value.(float64) {
		t.Fatal("top-k stream not descending")
	}
}

func TestQueryStreamCancel(t *testing.T) {
	e, err := Open(chainFixture(), nil, WithStreamBatch(1), WithStreamBuffer(-1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	_, rows, err := e.QueryStream(ctx, "m IN [0:1:0.001]")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := <-rows; !ok {
			t.Fatal("stream ended before cancellation")
		}
	}
	cancel()
	for range rows { // must drain and close promptly
	}
}

func TestQueryBumpsStats(t *testing.T) {
	e := queryFixture(t)
	if _, err := e.Query("p1 IN [0:1:0.5]"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("EXPLAIN p1 IN [0:1:0.5]"); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().Queries; got != 2 {
		t.Fatalf("Stats.Queries = %d, want 2", got)
	}
}

// TestQueryExplainGolden pins the EXPLAIN JSON wire shape. The fixture
// engine is fully deterministic (workers=1, static cutoff, nothing
// evaluated yet, so the EWMA fields are omitted); any change to this tree
// is an API change and must update the golden deliberately
// (go test ./internal/session -run ExplainGolden -update).
func TestQueryExplainGolden(t *testing.T) {
	e := queryFixture(t)
	const stmt = "EXPLAIN SET v = 0.5 p1 IN [0:1:0.5] CROSS (f1,y1) IN {(0,0),(1,1)} " +
		"ORDER BY ans['zip 10001'] DESC LIMIT 3"
	res, err := e.Query(stmt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explain == nil || len(res.Rows) != 0 {
		t.Fatalf("EXPLAIN returned rows=%d explain=%v", len(res.Rows), res.Explain)
	}
	got, err := json.MarshalIndent(res.Explain, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "explain_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("EXPLAIN JSON drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
			golden, got, want)
	}
}

// TestQueryExplainRoutes exercises the route predictions the golden file
// pins: on the fixture (11 terms, cutoff 0.5 → threshold 5) the p1 step
// class (3 affected terms) chains, while the seed and the wider cross
// class recompute in full — and with delta routing disabled everything
// goes full.
func TestQueryExplainRoutes(t *testing.T) {
	e := queryFixture(t)
	res, err := e.Query("EXPLAIN SET v = 0.5 p1 IN [0:1:0.5] CROSS (f1,y1) IN {(0,0),(1,1)} " +
		"ORDER BY ans[0] DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	top, ok := res.Explain.Plan.(*scenql.TopKNode)
	if !ok {
		t.Fatalf("plan root is %T, want *TopKNode", res.Explain.Plan)
	}
	eval := top.Input.(*scenql.EvalNode)
	if eval.CostModel.Source != "static" || eval.CostModel.Cutoff != 0.5 {
		t.Fatalf("cost model = %+v, want static 0.5", eval.CostModel)
	}
	routes := map[string]string{}
	for _, r := range eval.Routes {
		routes[r.Class] = r.Route
	}
	want := map[string]string{"seed": "full", "step p1": "chained", "step (f1,y1)": "full"}
	for class, route := range want {
		if routes[class] != route {
			t.Fatalf("route[%q] = %q, want %q (all: %v)", class, routes[class], route, routes)
		}
	}

	off, err := Open(e.set, nil, WithWorkers(1), WithDeltaCutoff(-1))
	if err != nil {
		t.Fatal(err)
	}
	res, err = off.Query("EXPLAIN p1 IN [0:1:0.5]")
	if err != nil {
		t.Fatal(err)
	}
	eval = res.Explain.Plan.(*scenql.EvalNode)
	if eval.CostModel.Source != "disabled" || eval.Chained {
		t.Fatalf("disabled cost model = %+v chained=%v", eval.CostModel, eval.Chained)
	}
	for _, r := range eval.Routes {
		if r.Route != "full" {
			t.Fatalf("route %q = %q with delta disabled, want full", r.Class, r.Route)
		}
	}
}

// TestQueryExplainNonFloat checks EXPLAIN builds against the non-float
// kernel it would execute on: bool is not chainable, so even a routable
// step class reports "delta", never "chained".
func TestQueryExplainNonFloat(t *testing.T) {
	e, err := Open(chainFixture(), nil, WithWorkers(1), WithDeltaCutoff(0.5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query("EXPLAIN m IN [0:1:0.5] USING bool")
	if err != nil {
		t.Fatal(err)
	}
	eval, ok := res.Explain.Plan.(*scenql.EvalNode)
	if !ok {
		t.Fatalf("plan root is %T, want *EvalNode", res.Explain.Plan)
	}
	if eval.Semiring != "bool" || eval.Chained {
		t.Fatalf("eval = %+v, want bool and unchained", eval)
	}
	for _, r := range eval.Routes {
		if r.Route == "chained" {
			t.Fatalf("bool route %q chained; bool is not chainable", r.Class)
		}
	}
}

func TestQueryExplainStream(t *testing.T) {
	e := queryFixture(t)
	info, rows, err := e.QueryStream(context.Background(), "EXPLAIN p1 IN [0:1:0.5]")
	if err != nil {
		t.Fatal(err)
	}
	if info.Explain == nil {
		t.Fatal("stream EXPLAIN lost its plan")
	}
	if _, ok := <-rows; ok {
		t.Fatal("EXPLAIN stream emitted a row")
	}
}
