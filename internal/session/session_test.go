package session

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/sampling"
	"provabs/internal/semiring"
	"provabs/internal/summarize"
)

// fixture returns the paper's running-example provenance (Example 2,
// extended with a second polynomial) and the quarter tree.
func fixture(t testing.TB) (*provenance.Set, *abstree.Forest) {
	t.Helper()
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + "+
			"75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	set.Add("zip 10002", provenance.MustParse(vb,
		"100·p1·m1 + 50·f1·m3 + 25·y1·m1"))
	forest, err := abstree.NewForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		t.Fatal(err)
	}
	return set, forest
}

func TestOpenValidates(t *testing.T) {
	set, forest := fixture(t)
	if _, err := Open(nil, forest); err == nil {
		t.Fatal("Open(nil set) succeeded, want error")
	}
	if _, err := Open(set, nil); err != nil {
		t.Fatalf("Open with nil forest: %v", err)
	}
	// A forest whose meta-variable collides with a provenance variable is
	// incompatible and must be rejected at Open time.
	bad, err := abstree.NewForest(abstree.MustParseTree("p1(m1,m3)"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(set, bad); err == nil {
		t.Fatal("Open with incompatible forest succeeded, want error")
	}
}

func TestCompressWithoutForestErrors(t *testing.T) {
	set, _ := fixture(t)
	e, err := Open(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compress(4); err == nil {
		t.Fatal("Compress without forest succeeded, want error")
	}
}

// TestCompressStrategyParity asserts, table-driven, that every strategy
// routed through the Engine produces the same selection as the
// pre-Engine entry point it unifies.
func TestCompressStrategyParity(t *testing.T) {
	// B=7 is the tightest feasible bound of the fixture: collapsing q1
	// merges the 8 monomials of zip 10001 into 4 and rewrites (without
	// merging) the 3 of zip 10002.
	const B = 7
	cases := []struct {
		strategy Strategy
		opts     []CompressOption
		legacy   func(s *provenance.Set, f *abstree.Forest) (ml, vl int, adequate bool, size int)
	}{
		{
			strategy: StrategyOptimal,
			legacy: func(s *provenance.Set, f *abstree.Forest) (int, int, bool, int) {
				res, err := core.OptimalVVS(s, f.Trees[0], B)
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate, res.VVS.Apply(s).Size()
			},
		},
		{
			strategy: StrategyGreedy,
			legacy: func(s *provenance.Set, f *abstree.Forest) (int, int, bool, int) {
				res, err := core.GreedyVVS(s, f, B)
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate, res.VVS.Apply(s).Size()
			},
		},
		{
			strategy: StrategyBruteForce,
			legacy: func(s *provenance.Set, f *abstree.Forest) (int, int, bool, int) {
				res, err := core.BruteForceVVS(s, f, B, 0)
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate, res.VVS.Apply(s).Size()
			},
		},
		{
			strategy: StrategySummarize,
			opts:     []CompressOption{WithTimeout(time.Minute)},
			legacy: func(s *provenance.Set, f *abstree.Forest) (int, int, bool, int) {
				res, err := summarize.Summarize(s, f, B, summarize.Options{Timeout: time.Minute})
				if err != nil {
					t.Fatal(err)
				}
				return res.ML, res.VL, res.Adequate, res.Abstracted.Size()
			},
		},
		{
			strategy: StrategyOnline,
			opts:     []CompressOption{WithSamplingFraction(1), WithSeed(42)},
			legacy: func(s *provenance.Set, f *abstree.Forest) (int, int, bool, int) {
				res, err := sampling.OnlineCompress(s, f, B, sampling.Options{Fraction: 1, Seed: 42})
				if err != nil {
					t.Fatal(err)
				}
				return s.Size() - res.Abstracted.Size(), s.Granularity() - res.Abstracted.Granularity(),
					res.FullAdequate, res.Abstracted.Size()
			},
		},
	}
	for _, tc := range cases {
		t.Run(string(tc.strategy), func(t *testing.T) {
			set, forest := fixture(t)
			wantML, wantVL, wantAdequate, wantSize := tc.legacy(set, forest)

			set2, forest2 := fixture(t)
			e, err := Open(set2, forest2)
			if err != nil {
				t.Fatal(err)
			}
			comp, err := e.Compress(B, append([]CompressOption{WithStrategy(tc.strategy)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if comp.Strategy != string(tc.strategy) {
				t.Errorf("Strategy = %q, want %q", comp.Strategy, tc.strategy)
			}
			if comp.ML != wantML || comp.VL != wantVL || comp.Adequate != wantAdequate {
				t.Errorf("ML/VL/Adequate = %d/%d/%v, legacy %d/%d/%v",
					comp.ML, comp.VL, comp.Adequate, wantML, wantVL, wantAdequate)
			}
			if got := comp.Abstracted.Size(); got != wantSize {
				t.Errorf("Abstracted.Size = %d, legacy %d", got, wantSize)
			}
			// The substitution must reproduce the abstracted set exactly.
			resub := set2.Substitute(comp.Subst)
			if resub.Size() != comp.Abstracted.Size() || resub.Granularity() != comp.Abstracted.Granularity() {
				t.Errorf("Subst reapplied: %d/%d monomials/vars, want %d/%d",
					resub.Size(), resub.Granularity(), comp.Abstracted.Size(), comp.Abstracted.Granularity())
			}
		})
	}
}

func TestStrategyAuto(t *testing.T) {
	set, forest := fixture(t)
	e, err := Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := e.Compress(4)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Strategy != string(StrategyOptimal) {
		t.Errorf("auto on single tree chose %q, want optimal", comp.Strategy)
	}
}

func TestOptimalRejectsForest(t *testing.T) {
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("a", provenance.MustParse(vb, "1·x1·y1 + 2·x2·y2"))
	forest, err := abstree.NewForest(
		abstree.MustParseTree("X(x1,x2)"), abstree.MustParseTree("Y(y1,y2)"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compress(2, WithStrategy(StrategyOptimal)); err == nil {
		t.Fatal("optimal on a two-tree forest succeeded, want error")
	}
}

func TestWhatIfUnknownVariable(t *testing.T) {
	set, _ := fixture(t)
	e, err := Open(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.WhatIf(hypo.NewScenario().Set("no_such_var", 2)); err == nil {
		t.Fatal("WhatIf with unknown variable succeeded, want error")
	}
	if _, err := e.WhatIfBatch([]*hypo.Scenario{hypo.NewScenario().Set("nope", 1)}); err == nil {
		t.Fatal("WhatIfBatch with unknown variable succeeded, want error")
	}
}

// TestWhatIfBatchReusesCompiled is the compile-once guarantee: any number
// of evaluations triggers exactly one compilation, and a second one appears
// only after compression changes the active set.
func TestWhatIfBatchReusesCompiled(t *testing.T) {
	set, forest := fixture(t)
	e, err := Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	scs := []*hypo.Scenario{
		hypo.NewScenario().Set("m1", 0.5),
		hypo.NewScenario().Set("m3", 1.5),
	}
	for i := 0; i < 10; i++ {
		if _, err := e.WhatIfBatch(scs); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.Stats(); st.Compiles != 1 {
		t.Fatalf("after 10 batches: Compiles = %d, want 1", st.Compiles)
	}
	if _, err := e.Compress(4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := e.WhatIf(hypo.NewScenario().Set("q1", 0.8)); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Compiles != 2 {
		t.Fatalf("after compress + 10 what-ifs: Compiles = %d, want 2", st.Compiles)
	}
	if st.Scenarios != 30 {
		t.Errorf("Scenarios = %d, want 30", st.Scenarios)
	}
}

// TestAddInvalidatesCompiled is the ROADMAP regression: a polynomial added
// after evaluation (and after compression) must be visible to the next
// WhatIfBatch without an explicit recompile.
func TestAddInvalidatesCompiled(t *testing.T) {
	set, forest := fixture(t)
	vb := set.Vocab
	e, err := Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	baseline := []*hypo.Scenario{hypo.NewScenario()}
	rows, err := e.WhatIfBatch(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 2 {
		t.Fatalf("baseline answers = %d, want 2", len(rows[0]))
	}

	e.Add("zip 10003", provenance.MustParse(vb, "10·p1·m1 + 20·p1·m3"))
	rows, err = e.WhatIfBatch(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 3 {
		t.Fatalf("after Add: answers = %d, want 3", len(rows[0]))
	}
	if got := rows[0][2]; got.Tag != "zip 10003" || got.Value != 30 {
		t.Fatalf("new polynomial answered %q=%v, want \"zip 10003\"=30", got.Tag, got.Value)
	}

	// Same through a compression: the added polynomial is abstracted under
	// the session's substitution and evaluated group-uniformly.
	if _, err := e.Compress(8); err != nil {
		t.Fatal(err)
	}
	e.Add("zip 10004", provenance.MustParse(vb, "1·p1·m1 + 1·p1·m3"))
	rows, err = e.WhatIfBatch([]*hypo.Scenario{hypo.NewScenario().Set("q1", 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0]) != 4 {
		t.Fatalf("after compressed Add: answers = %d, want 4", len(rows[0]))
	}
	// 1·p1·q1 + 1·p1·q1 under q1=0.5 (or the uncollapsed equivalent) = 1.
	if got := rows[0][3].Value; got != 1 {
		t.Fatalf("abstracted new polynomial = %v, want 1", got)
	}
	// Source and active stay in lockstep.
	if e.Source().Len() != 4 || e.Active().Len() != 4 {
		t.Fatalf("source/active lengths %d/%d, want 4/4", e.Source().Len(), e.Active().Len())
	}
}

func TestStream(t *testing.T) {
	set, forest := fixture(t)
	e, err := Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compress(4); err != nil {
		t.Fatal(err)
	}
	in := make(chan *hypo.Scenario)
	out := e.Stream(context.Background(), in)
	go func() {
		defer close(in)
		in <- hypo.NewScenario().Set("q1", 0.8)
		in <- hypo.NewScenario().Set("bogus", 1) // semantic error: reported in-band
		in <- hypo.NewScenario().Set("q1", 1.2)
	}()
	var got []StreamResult
	for r := range out {
		got = append(got, r)
	}
	if len(got) != 3 {
		t.Fatalf("stream yielded %d results, want 3", len(got))
	}
	for i, r := range got {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
	}
	if got[0].Err != nil || got[2].Err != nil {
		t.Errorf("valid scenarios errored: %v, %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Error("unknown-variable scenario did not report an error")
	}
	if st := e.Stats(); st.Compiles != 1 {
		t.Errorf("stream recompiled: Compiles = %d, want 1", st.Compiles)
	}
}

// TestStreamMicroBatches: scenarios already pending on the input channel are
// drained into one batched evaluation instead of being answered one at a
// time, while arrival order and per-scenario errors are preserved.
func TestStreamMicroBatches(t *testing.T) {
	set, _ := fixture(t)
	e, err := Open(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	in := make(chan *hypo.Scenario, n)
	for i := 0; i < n; i++ {
		if i == 7 {
			in <- hypo.NewScenario().Set("bogus", 1)
			continue
		}
		in <- hypo.NewScenario().Set("m1", 0.5+float64(i)/32)
	}
	close(in)
	// The whole backlog is visible before Stream starts, so it must be
	// answered in at most a couple of micro-batches, not 20 singles.
	var got []StreamResult
	for r := range e.Stream(context.Background(), in) {
		got = append(got, r)
	}
	if len(got) != n {
		t.Fatalf("stream yielded %d results, want %d", len(got), n)
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("result %d has index %d (order broken)", i, r.Index)
		}
		if (r.Err != nil) != (i == 7) {
			t.Errorf("result %d: err = %v", i, r.Err)
		}
	}
	if got[7].Err == nil || !strings.Contains(got[7].Err.Error(), "scenario 7") {
		t.Errorf("in-band error %v does not carry the arrival index", got[7].Err)
	}
	st := e.Stats()
	if st.StreamBatches == 0 || st.StreamBatches >= n {
		t.Errorf("StreamBatches = %d, want micro-batching (1..%d)", st.StreamBatches, n-1)
	}
	if st.StreamMaxBatch < 2 {
		t.Errorf("StreamMaxBatch = %d, want >= 2", st.StreamMaxBatch)
	}
	if st.Scenarios != n-1 {
		t.Errorf("Scenarios = %d, want %d (the unresolved one is not evaluated)", st.Scenarios, n-1)
	}
	if st.DeltaEvals+st.ChainedEvals+st.FullEvals != n-1 {
		t.Errorf("DeltaEvals %d + ChainedEvals %d + FullEvals %d != %d evaluated scenarios",
			st.DeltaEvals, st.ChainedEvals, st.FullEvals, n-1)
	}
}

// TestStreamBatchCap: WithStreamBatch bounds how much of a backlog one
// evaluation may drain.
func TestStreamBatchCap(t *testing.T) {
	set, _ := fixture(t)
	e, err := Open(set, nil, WithStreamBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	in := make(chan *hypo.Scenario, n)
	for i := 0; i < n; i++ {
		in <- hypo.NewScenario().Set("m1", 0.5)
	}
	close(in)
	count := 0
	for range e.Stream(context.Background(), in) {
		count++
	}
	if count != n {
		t.Fatalf("stream yielded %d results, want %d", count, n)
	}
	st := e.Stats()
	if st.StreamMaxBatch > 4 {
		t.Errorf("StreamMaxBatch = %d, want <= 4 (WithStreamBatch)", st.StreamMaxBatch)
	}
	if st.StreamBatches < n/4 {
		t.Errorf("StreamBatches = %d, want >= %d with a cap of 4", st.StreamBatches, n/4)
	}
}

// TestStreamBufferedOutput is the slow-consumer regression: with a buffered
// output channel the stream finishes evaluating a whole backlog while the
// consumer reads nothing, instead of blocking after the first result.
func TestStreamBufferedOutput(t *testing.T) {
	set, _ := fixture(t)
	const n = 8
	e, err := Open(set, nil, WithStreamBuffer(n))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *hypo.Scenario, n)
	out := e.Stream(context.Background(), in)
	for i := 0; i < n; i++ {
		in <- hypo.NewScenario().Set("m3", 1.1)
	}
	close(in)
	// The deliberately slow reader consumes nothing: all n results must
	// still land in the channel buffer and the stream must close.
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d results buffered; slow consumer serialized the stream", len(out), n)
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n; i++ {
		r := <-out
		if r.Index != i || r.Err != nil {
			t.Fatalf("result %d = index %d, err %v", i, r.Index, r.Err)
		}
	}
	if _, ok := <-out; ok {
		t.Fatal("stream did not close after the backlog")
	}
}

// TestConcurrentWhatIfBatchAndAdd hammers evaluation and mutation together;
// it exists to fail under -race if the delta path (baseline cache, inverted
// index, counters) ever shares mutable state across the compile boundary.
func TestConcurrentWhatIfBatchAndAdd(t *testing.T) {
	set, forest := fixture(t)
	vb := set.Vocab
	e, err := Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Compress(8); err != nil {
		t.Fatal(err)
	}
	scs := []*hypo.Scenario{
		hypo.NewScenario().Set("q1", 0.8),
		hypo.NewScenario(),
		hypo.NewScenario().Set("p1", 1.5).Set("q1", 0.25),
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := e.WhatIfBatch(scs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			e.Add(fmt.Sprintf("added %d", i), provenance.MustParse(vb, "2·p1·m1"))
		}
	}()
	wg.Wait()
	st := e.Stats()
	if st.Added != 10 {
		t.Errorf("Added = %d, want 10", st.Added)
	}
	if st.DeltaEvals+st.ChainedEvals+st.FullEvals != st.Scenarios {
		t.Errorf("DeltaEvals %d + ChainedEvals %d + FullEvals %d != Scenarios %d",
			st.DeltaEvals, st.ChainedEvals, st.FullEvals, st.Scenarios)
	}
}

func TestStreamCancel(t *testing.T) {
	set, _ := fixture(t)
	e, err := Open(set, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *hypo.Scenario) // never written: the stream must still exit
	out := e.Stream(ctx, in)
	cancel()
	select {
	case _, ok := <-out:
		if ok {
			t.Fatal("cancelled stream produced a result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled stream did not close")
	}
}

func TestParseStrategy(t *testing.T) {
	for name, want := range map[string]Strategy{
		"":          StrategyAuto,
		"auto":      StrategyAuto,
		"opt":       StrategyOptimal,
		"optimal":   StrategyOptimal,
		"greedy":    StrategyGreedy,
		"brute":     StrategyBruteForce,
		"ainy":      StrategySummarize,
		"prox":      StrategySummarize,
		"summarize": StrategySummarize,
		"online":    StrategyOnline,
		"sample":    StrategyOnline,
	} {
		got, err := ParseStrategy(name)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %q, %v; want %q", name, got, err, want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy(bogus) succeeded, want error")
	}
}

// BenchmarkEngineWhatIfBatch measures the steady-state session: many
// batches against one cached compilation. A per-call compile would dominate
// this benchmark; the test above pins Compiles to 1.
func BenchmarkEngineWhatIfBatch(b *testing.B) {
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	for i := 0; i < 50; i++ {
		set.Add(fmt.Sprintf("g%d", i), provenance.MustParse(vb,
			fmt.Sprintf("3·x%d·m1 + 5·x%d·m2 + 7·x%d·m3", i, i, i)))
	}
	e, err := Open(set, nil, WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	scs := make([]*hypo.Scenario, 32)
	for i := range scs {
		scs[i] = hypo.NewScenario().Set("m1", 0.5+float64(i)/64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.WhatIfBatch(scs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := e.Stats(); st.Compiles != 1 {
		b.Fatalf("benchmark recompiled: Compiles = %d, want 1", st.Compiles)
	}
}

// TestAddWhatIfLoopCompilesOnce is the incremental-compile acceptance pin:
// an Add-heavy interleaving of Add and WhatIf never recompiles — the
// compiled form (and its delta index, exercised by the sparse scenarios) is
// extended in place — and every answer matches a fresh engine over the same
// provenance.
func TestAddWhatIfLoopCompilesOnce(t *testing.T) {
	set, forest := fixture(t)
	vb := set.Vocab
	e, err := Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	scs := []*hypo.Scenario{
		hypo.NewScenario().Set("m1", 0.5), // sparse: builds and uses the delta index
		hypo.NewScenario().Set("p1", 1.5).Set("m3", 0.25),
	}
	for i := 0; i < 16; i++ {
		if _, err := e.WhatIfBatch(scs); err != nil {
			t.Fatal(err)
		}
		e.Add(fmt.Sprintf("added %d", i), provenance.MustParse(vb,
			fmt.Sprintf("%d·p1·m1 + %d·f1·m3", i+1, 2*i+1)))
	}
	rows, err := e.WhatIfBatch(scs)
	if err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Compiles != 1 {
		t.Fatalf("Add+WhatIf loop recompiled: Compiles = %d, want 1 (Added %d)", st.Compiles, st.Added)
	}

	// A fresh engine over an identical set must agree bit-for-bit.
	set2, forest2 := fixture(t)
	for i := 0; i < 16; i++ {
		set2.Add(fmt.Sprintf("added %d", i), provenance.MustParse(set2.Vocab,
			fmt.Sprintf("%d·p1·m1 + %d·f1·m3", i+1, 2*i+1)))
	}
	e2, err := Open(set2, forest2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e2.WhatIfBatch(scs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if len(rows[i]) != len(want[i]) {
			t.Fatalf("scenario %d: %d answers, fresh engine %d", i, len(rows[i]), len(want[i]))
		}
		for j := range want[i] {
			if rows[i][j] != want[i][j] {
				t.Fatalf("scenario %d answer %d: incremental %+v != fresh %+v",
					i, j, rows[i][j], want[i][j])
			}
		}
	}
}

// TestStreamChainedCounterSlowConsumer is the stream-attribution satellite:
// a correlated backlog drained into chained micro-batches must count
// ChainedEvals distinctly from identity-baseline DeltaEvals — and keep
// counting correctly while a slow consumer leaves every result parked in
// the output buffer.
func TestStreamChainedCounterSlowConsumer(t *testing.T) {
	set, _ := fixture(t)
	const n = 16
	e, err := Open(set, nil, WithStreamBuffer(n), WithDeltaCutoff(0.99))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *hypo.Scenario, n)
	// Identical assignments: every consecutive diff is empty, so everything
	// after the first scenario of a micro-batch chains.
	for i := 0; i < n; i++ {
		in <- hypo.NewScenario().Set("m1", 0.5)
	}
	close(in)
	out := e.Stream(context.Background(), in)
	// The deliberately slow reader consumes nothing until the stream has
	// buffered the whole backlog.
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d results buffered", len(out), n)
		}
		time.Sleep(time.Millisecond)
	}
	for r := range out {
		if r.Err != nil {
			t.Fatalf("result %d: %v", r.Index, r.Err)
		}
	}
	st := e.Stats()
	if st.ChainedEvals == 0 {
		t.Errorf("identical-scenario stream recorded no ChainedEvals (delta %d, full %d, batches %d)",
			st.DeltaEvals, st.FullEvals, st.StreamBatches)
	}
	if st.DeltaEvals+st.ChainedEvals+st.FullEvals != st.Scenarios {
		t.Errorf("delta %d + chained %d + full %d != scenarios %d",
			st.DeltaEvals, st.ChainedEvals, st.FullEvals, st.Scenarios)
	}
	// The chain hit rate the stats endpoint advertises: chained evals are a
	// strict subset of evaluated scenarios, at least one per micro-batch
	// chains off a predecessor.
	if st.ChainedEvals > st.Scenarios-st.StreamBatches {
		t.Errorf("ChainedEvals %d exceeds %d scenarios minus %d batch heads",
			st.ChainedEvals, st.Scenarios, st.StreamBatches)
	}
}

// chainFixture returns a set shaped so a correlated stream profits from
// chaining: variable a owns the big polynomial, m the small one. A scenario
// assigning both touches every polynomial (identity-baseline delta =
// recompute everything → full eval), but once a is pinned across the stream
// the consecutive diff is just {m}, whose affected set is only the small
// polynomial — so a chained delta is the only way any scenario after the
// first gets cheap.
func chainFixture() *provenance.Set {
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("big", provenance.MustParse(vb, "2·a·b + 3·a·c + 4·a·d + 5·a·e + 6·a·f + 7·a·g"))
	set.Add("small", provenance.MustParse(vb, "m + 2·m·n"))
	return set
}

// TestStreamChainsAcrossMicroBatches is the chain-seed regression: with a
// micro-batch cap of 1 every scenario arrives in its own batch, so chaining
// is only possible if the chain state survives the batch boundary. On a
// correlated stream (a pinned, m stepping) every scenario after the first
// must then delta off its predecessor's answers instead of paying an
// identity-baseline delta — which on this set degenerates to a full eval.
func TestStreamChainsAcrossMicroBatches(t *testing.T) {
	e, err := Open(chainFixture(), nil, WithStreamBatch(1), WithWorkers(1), WithDeltaCutoff(0.99))
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	in := make(chan *hypo.Scenario)
	out := e.Stream(context.Background(), in)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- hypo.NewScenario().Set("a", 0.25).Set("m", 0.5+float64(i)/64)
		}
	}()
	count := 0
	for r := range out {
		if r.Err != nil {
			t.Errorf("result %d errored: %v", r.Index, r.Err)
		}
		count++
	}
	if count != n {
		t.Fatalf("stream yielded %d results, want %d", count, n)
	}
	st := e.Stats()
	if st.StreamBatches != n {
		t.Fatalf("StreamBatches = %d, want %d (cap 1 forces one batch per scenario)", st.StreamBatches, n)
	}
	if st.ChainedEvals < n-1 {
		t.Errorf("ChainedEvals = %d, want >= %d (chain must survive micro-batch boundaries)",
			st.ChainedEvals, n-1)
	}
}

// TestStreamInChainsAcrossMicroBatches: the per-carrier stream carries its
// own chain state. Counting is chainable, so the same correlated stream
// chains on the count kernel and the accounting lands in the carrier's own
// counters; the float ones stay untouched.
func TestStreamInChainsAcrossMicroBatches(t *testing.T) {
	e, err := Open(chainFixture(), nil, WithStreamBatch(1), WithWorkers(1), WithDeltaCutoff(0.99))
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	in := make(chan *hypo.Scenario)
	out := e.StreamIn(context.Background(), semiring.KindCount, in)
	go func() {
		defer close(in)
		for i := 0; i < n; i++ {
			in <- hypo.NewScenario().Set("a", 2).Set("m", float64(i%4))
		}
	}()
	count := 0
	for r := range out {
		if r.Err != nil {
			t.Errorf("result %d errored: %v", r.Index, r.Err)
		}
		count++
	}
	if count != n {
		t.Fatalf("stream yielded %d results, want %d", count, n)
	}
	st := e.Stats()
	cs, ok := st.Semirings["count"]
	if !ok {
		t.Fatal("no count entry in Stats.Semirings")
	}
	if cs.Scenarios != n {
		t.Errorf("count scenarios = %d, want %d", cs.Scenarios, n)
	}
	if cs.ChainedEvals < n-1 {
		t.Errorf("count ChainedEvals = %d, want >= %d", cs.ChainedEvals, n-1)
	}
	if st.Scenarios != 0 || st.ChainedEvals != 0 {
		t.Errorf("float counters touched by a count stream: Scenarios=%d ChainedEvals=%d",
			st.Scenarios, st.ChainedEvals)
	}
}
