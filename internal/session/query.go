package session

// ScenQL execution: the Engine is the executor behind internal/scenql's
// statement→plan→execute pipeline. A plan's scenarios are pulled off its
// snake-order iterator in micro-batches and pushed through the same
// chained, delta-routed stream path Engine.Stream uses — consecutive grid
// points differ in one axis, so almost every scenario is a chained delta —
// and ORDER BY runs as a streaming top-k, so a million-point sweep holds k
// rows, not a million. EXPLAIN stops before evaluation and reports the plan
// tree annotated with this executor's routing and live cost model.

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sort"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/scenql"
	"provabs/internal/semiring"
)

// maxQueryRows caps an unranked, unlimited Query's materialized result.
// Queries wanting more rows than this should use QueryStream (unbounded)
// or an ORDER BY ... LIMIT top-k.
const maxQueryRows = 1000

// QueryRow is one scenario's outcome: its generation index, the
// assignments the generator chose, and the answers (carrier-erased, as at
// every dynamic boundary). Err is per-scenario and in-band, like a stream.
type QueryRow struct {
	Index   int64
	Assign  map[string]float64
	Answers []hypo.ValueAnswer
	Err     error
}

// QueryResult is a non-streaming Query outcome.
type QueryResult struct {
	Semiring  semiring.Kind
	Scenarios int64 // what the generator yielded (or would yield, for EXPLAIN)
	Rows      []QueryRow
	Errors    int64 // scenarios that failed in-band
	Truncated bool  // hit maxQueryRows before the generator finished
	Explain   *scenql.ExplainPlan
}

// QueryInfo is the statement-level header of a streaming query.
type QueryInfo struct {
	Semiring  semiring.Kind
	Scenarios int64
	Explain   *scenql.ExplainPlan // non-nil for EXPLAIN: no rows follow
}

// compileQuery parses and resolves one statement against the active set.
func (e *Engine) compileQuery(src string) (*scenql.Plan, error) {
	q, err := scenql.Parse(src)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return scenql.Compile(q, e.active.Vocab, e.active.Tags)
}

// Query runs one ScenQL statement to completion. An EXPLAIN statement
// returns the annotated plan without evaluating; ORDER BY runs a streaming
// top-k over the whole sweep; anything else materializes rows up to
// maxQueryRows (Truncated reports hitting the cap — use QueryStream for
// full unranked sweeps). Parse and resolution failures return *ParseError /
// *CompileError from internal/scenql.
func (e *Engine) Query(src string) (*QueryResult, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query, cancellable between micro-batches.
func (e *Engine) QueryContext(ctx context.Context, src string) (*QueryResult, error) {
	p, err := e.compileQuery(src)
	if err != nil {
		return nil, err
	}
	e.queries.Add(1)
	res := &QueryResult{Semiring: p.Kind, Scenarios: p.Scenarios()}
	if p.Explain {
		res.Explain, err = e.explain(p, src)
		return res, err
	}
	if p.Order != nil {
		top := newTopK(p.Order)
		err = e.runPlan(ctx, p, func(row QueryRow) bool {
			if row.Err != nil {
				res.Errors++
				return true
			}
			top.offer(row)
			return true
		})
		res.Rows = top.ranked()
		return res, err
	}
	err = e.runPlan(ctx, p, func(row QueryRow) bool {
		if row.Err != nil {
			res.Errors++
		}
		if len(res.Rows) >= maxQueryRows {
			res.Truncated = true
			return false
		}
		res.Rows = append(res.Rows, row)
		return true
	})
	return res, err
}

// QueryStream runs one statement with rows delivered on a channel as they
// are computed (ORDER BY still consumes the full sweep before emitting its
// k ranked rows — top-k cannot stream). The channel closes when the sweep
// completes or ctx is cancelled. For EXPLAIN the returned channel is
// already closed and QueryInfo.Explain carries the plan.
func (e *Engine) QueryStream(ctx context.Context, src string) (*QueryInfo, <-chan QueryRow, error) {
	p, err := e.compileQuery(src)
	if err != nil {
		return nil, nil, err
	}
	e.queries.Add(1)
	info := &QueryInfo{Semiring: p.Kind, Scenarios: p.Scenarios()}
	if p.Explain {
		info.Explain, err = e.explain(p, src)
		if err != nil {
			return nil, nil, err
		}
		done := make(chan QueryRow)
		close(done)
		return info, done, nil
	}
	_, buf := e.streamParams()
	out := make(chan QueryRow, buf)
	emit := func(row QueryRow) bool {
		select {
		case out <- row:
			return true
		case <-ctx.Done():
			return false
		}
	}
	go func() {
		defer close(out)
		if p.Order != nil {
			top := newTopK(p.Order)
			if e.runPlan(ctx, p, func(row QueryRow) bool {
				if row.Err != nil {
					return emit(row) // errors stream in-band even under top-k
				}
				top.offer(row)
				return true
			}) != nil {
				return
			}
			for _, row := range top.ranked() {
				if !emit(row) {
					return
				}
			}
			return
		}
		e.runPlan(ctx, p, emit) //nolint:errcheck // cancellation just ends the stream
	}()
	return info, out, nil
}

// runPlan drains the plan's iterator in micro-batches through the chained
// stream-evaluation path (one RLock per batch, the chain state carried
// across), invoking emit per scenario in generation order. emit returning
// false stops the sweep. Returns ctx's error on cancellation.
func (e *Engine) runPlan(ctx context.Context, p *scenql.Plan, emit func(QueryRow) bool) error {
	it := p.Iter()
	cs := &hypo.ChainState{}
	defer cs.Release()
	maxBatch, _ := e.streamParams()
	isFloat := p.Kind == semiring.KindFloat
	scs := make([]*hypo.Scenario, 0, maxBatch)
	base := 0
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		scs = scs[:0]
		for len(scs) < maxBatch {
			sc, ok := it.Next()
			if !ok {
				break
			}
			scs = append(scs, sc)
		}
		if len(scs) == 0 {
			return nil
		}
		var results []ValueStreamResult
		if isFloat {
			results = eraseResults(e.evalStream(base, scs, cs))
		} else {
			results = e.evalStreamIn(p.Kind, base, scs, cs)
		}
		for i, res := range results {
			row := QueryRow{Index: int64(res.Index), Assign: scs[i].Assign, Answers: res.Answers, Err: res.Err}
			if !emit(row) {
				return nil
			}
		}
		base += len(scs)
	}
}

// kernelDesc is the carrier-independent kernel summary EXPLAIN annotates
// the eval node with.
type kernelDesc struct {
	polys, terms  int
	chainable     bool
	counters      *hypo.BatchCounters
	vocab         *provenance.Vocab
	termsTouching func([]provenance.Var) int
}

// describeKernel summarizes the kernel the plan's carrier evaluates on,
// compiling it if this is its first use (EXPLAIN tells the truth about the
// kernel that would run, so it builds what Query would build).
func (e *Engine) describeKernel(kind semiring.Kind) (kernelDesc, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if kind == semiring.KindFloat || kind == "" {
		c := e.compiledLocked()
		return kernelDesc{
			polys: c.Len(), terms: c.Size(),
			chainable:     provenance.Float{}.Chainable(),
			counters:      &e.counters,
			vocab:         c.Vocab,
			termsTouching: c.TermsTouching,
		}, nil
	}
	rt, err := e.runtimeLocked(kind)
	if err != nil {
		return kernelDesc{}, err
	}
	return rt.describe(), nil
}

// costModel mirrors hypo's routing configuration for EXPLAIN: the
// effective cutoff, where it came from, and the affected-terms threshold
// it implies on this kernel. Returns the threshold in terms and whether
// the delta path is on at all.
func (e *Engine) costModel(desc kernelDesc) (scenql.CostModel, int, bool) {
	cm := scenql.CostModel{
		DeltaNsPerTerm: desc.counters.DeltaNsPerTerm(),
		FullNsPerTerm:  desc.counters.FullNsPerTerm(),
	}
	cutoff := e.deltaCutoff
	switch {
	case cutoff < 0:
		cm.Source = "disabled"
		return cm, -1, false
	case cutoff > 0:
		cm.Source = "static"
	default:
		if ac := desc.counters.AdaptiveCutoff(); ac > 0 {
			cm.Source = "adaptive"
			cutoff = math.Min(ac, 1)
		} else {
			cm.Source = "bootstrap"
			cutoff = hypo.DefaultDeltaCutoff
		}
	}
	cm.Cutoff = cutoff
	threshold := int(cutoff * float64(desc.terms))
	cm.ThresholdTerms = float64(threshold)
	return cm, threshold, true
}

// explain builds the annotated plan tree: the generator half from the
// plan, the eval node from this engine's kernel, routing and cost model.
func (e *Engine) explain(p *scenql.Plan, src string) (*scenql.ExplainPlan, error) {
	desc, err := e.describeKernel(p.Kind)
	if err != nil {
		return nil, err
	}
	cm, threshold, deltaOn := e.costModel(desc)
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	classes := p.Classes()
	routes := make([]scenql.Route, len(classes))
	vars := make([]provenance.Var, 0, 8)
	for i, cl := range classes {
		vars = vars[:0]
		for _, name := range cl.Vars {
			if v, ok := desc.vocab.Lookup(name); ok {
				vars = append(vars, v)
			}
		}
		affected := desc.termsTouching(vars)
		routes[i] = scenql.Route{
			Class:         cl.Label,
			Vars:          cl.Vars,
			Transitions:   cl.Transitions,
			AffectedTerms: affected,
			Route:         routeLabel(cl.Label, affected, threshold, deltaOn, desc.chainable, desc.terms, workers),
		}
	}
	var input any = p.GenerateNode()
	if p.Limit > 0 {
		input = &scenql.LimitNode{Node: "limit", Limit: p.Limit, Input: input}
	}
	eval := &scenql.EvalNode{
		Node:        "eval",
		Semiring:    p.Kind.String(),
		Polynomials: desc.polys,
		Terms:       desc.terms,
		Chained:     deltaOn && desc.chainable,
		CostModel:   cm,
		Routes:      routes,
		Input:       input,
	}
	var root any = eval
	if p.Order != nil {
		dir := "asc"
		if p.Order.Desc {
			dir = "desc"
		}
		root = &scenql.TopKNode{Node: "topk", Key: p.Order.Key, Dir: dir, K: p.Order.K, Input: eval}
	}
	return &scenql.ExplainPlan{
		Statement: src,
		Semiring:  p.Kind.String(),
		Scenarios: p.Scenarios(),
		Plan:      root,
	}, nil
}

// routeLabel predicts the evaluation route of one transition class, the
// way evalState would decide it: delta when the affected terms fit the
// threshold (chained for step transitions on a chainable carrier — their
// diff is one axis, always no wider than the scenario), otherwise full —
// sharded when the kernel is big enough to split and workers are spare.
func routeLabel(class string, affected, threshold int, deltaOn, chainable bool, terms, workers int) string {
	if deltaOn && affected <= threshold {
		if class != "seed" && chainable {
			return "chained"
		}
		return "delta"
	}
	if workers > 1 && terms >= hypo.ShardMinTerms {
		return "sharded"
	}
	return "full"
}

// topK is the streaming ORDER BY ... LIMIT k accumulator: a bounded heap
// whose root is the currently worst kept row, so a sweep of any size holds
// k rows. Answer values order on their natural float mapping (bool as 0/1,
// counts as magnitude); a NaN answer always loses.
type topK struct {
	index int // polynomial whose answer is the key
	desc  bool
	k     int
	keys  []float64
	rows  []QueryRow
}

func newTopK(o *scenql.Order) *topK {
	return &topK{index: o.Index, desc: o.Desc, k: o.K}
}

func (t *topK) Len() int { return len(t.rows) }

// Less puts the worst kept row at the root: the smallest key when keeping
// the largest (DESC), the largest key when keeping the smallest (ASC);
// among equal keys the later scenario is worse, so ties keep the earliest.
func (t *topK) Less(i, j int) bool {
	if t.keys[i] != t.keys[j] {
		if t.desc {
			return t.keys[i] < t.keys[j]
		}
		return t.keys[i] > t.keys[j]
	}
	return t.rows[i].Index > t.rows[j].Index
}

func (t *topK) Swap(i, j int) {
	t.keys[i], t.keys[j] = t.keys[j], t.keys[i]
	t.rows[i], t.rows[j] = t.rows[j], t.rows[i]
}

func (t *topK) Push(x any) {
	p := x.(struct {
		key float64
		row QueryRow
	})
	t.keys = append(t.keys, p.key)
	t.rows = append(t.rows, p.row)
}

func (t *topK) Pop() any {
	n := len(t.rows) - 1
	out := t.rows[n]
	t.keys, t.rows = t.keys[:n], t.rows[:n]
	return out
}

// offer considers one row for the top k.
func (t *topK) offer(row QueryRow) {
	key := t.keyOf(row)
	if len(t.rows) < t.k {
		heap.Push(t, struct {
			key float64
			row QueryRow
		}{key, row})
		return
	}
	// Better than the worst kept? Strictly, with earlier index on ties.
	worst := t.keys[0]
	better := key > worst
	if !t.desc {
		better = key < worst
	}
	if !better && !(key == worst && row.Index < t.rows[0].Index) {
		return
	}
	t.keys[0], t.rows[0] = key, row
	heap.Fix(t, 0)
}

// keyOf maps the row's ordering answer to a float; NaN (and non-numeric
// values that should not occur) map to the always-losing infinity.
func (t *topK) keyOf(row QueryRow) float64 {
	var f float64 = math.NaN()
	if t.index < len(row.Answers) {
		switch x := row.Answers[t.index].Value.(type) {
		case float64:
			f = x
		case int64:
			f = float64(x)
		case bool:
			f = 0
			if x {
				f = 1
			}
		}
	}
	if math.IsNaN(f) {
		if t.desc {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	return f
}

// ranked returns the kept rows best-first (ties by generation order).
func (t *topK) ranked() []QueryRow {
	rows, keys := t.rows, t.keys
	sort.SliceStable(rows, func(i, j int) bool {
		if keys[i] != keys[j] {
			if t.desc {
				return keys[i] > keys[j]
			}
			return keys[i] < keys[j]
		}
		return rows[i].Index < rows[j].Index
	})
	return rows
}
