// Package session implements the library's session-oriented Engine: one
// long-lived object owning a provenance set, an abstraction forest, the
// chosen compression, and a lazily built, mutation-invalidated compiled
// form. The paper's workload is exactly this shape — compress once, then
// answer a stream of hypothetical scenarios — and the Engine makes the
// compile-once/evaluate-many lifecycle a property of the API instead of a
// discipline every caller re-implements.
//
// Lifecycle:
//
//	e, _ := session.Open(set, forest)
//	comp, _ := e.Compress(B, session.WithStrategy(session.StrategyGreedy))
//	answers, _ := e.WhatIf(scenario)        // evaluates the abstracted set
//	rows, _ := e.WhatIfBatch(scenarios)     // one cached compile, parallel eval
//	for r := range e.Stream(ctx, in) { … }  // streaming ingestion
//
// All methods are safe for concurrent use: evaluation paths share a read
// lock, Compress and Add take it exclusively. Adding provenance after
// compression re-abstracts the new polynomial under the selected
// substitution and appends it to the cached compiled form in place, so the
// next evaluation sees it without re-running selection or recompiling.
// One caveat follows from that: the *provenance.Compiled returned by
// Engine.Compiled is the live cache, extended in place by Add under the
// engine's lock — callers that evaluate it directly (outside the Engine's
// methods) must not do so concurrently with Add; use Active().Compile()
// for a frozen snapshot.
package session

import (
	"fmt"
	"sync"
	"sync/atomic"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/semiring"
)

// Engine is a hypothetical-reasoning session over one provenance set.
type Engine struct {
	mu          sync.RWMutex
	set         *provenance.Set   // source provenance (grows via Add)
	forest      *abstree.Forest   // may be nil: evaluation-only session
	comp        *core.Compression // last Compress outcome; nil before Compress
	active      *provenance.Set   // what scenarios evaluate: comp.Abstracted or set
	workers     int
	deltaCutoff float64 // delta-vs-full density cutoff (0 = hypo default)
	streamBuf   int     // Stream output-channel capacity (0 = batch size, <0 = unbuffered)
	streamBatch int     // micro-batch cap for Stream (0 = defaultStreamBatch)

	semMu sync.Mutex                   // guards sems; taken after e.mu
	sems  map[semiring.Kind]semRuntime // non-float kernels, lazily built

	lastCompiled   atomic.Pointer[provenance.Compiled]
	compiles       atomic.Int64
	scenarios      atomic.Int64
	batches        atomic.Int64
	queries        atomic.Int64
	added          atomic.Int64
	counters       hypo.BatchCounters // delta/full/sharded evaluation accounting
	streamBatches  atomic.Int64
	streamMaxBatch atomic.Int64
}

// Open starts a session over the set. forest may be nil for an
// evaluation-only session (Compress then errors). A non-nil forest is
// validated against the set up front, so scenario streams never trip over
// an incompatible abstraction mid-session.
func Open(set *provenance.Set, forest *abstree.Forest, opts ...Option) (*Engine, error) {
	if set == nil {
		return nil, fmt.Errorf("session: Open needs a provenance set")
	}
	if forest != nil {
		if err := forest.CompatibleWith(set); err != nil {
			return nil, err
		}
	}
	e := &Engine{set: set, forest: forest, active: set}
	for _, o := range opts {
		o(e)
	}
	return e, nil
}

// Compress selects an abstraction for bound B with the configured strategy
// (StrategyAuto by default: optimal for a single tree, greedy for a forest)
// and switches the session's evaluation target to the abstracted set. The
// compiled cache is invalidated; the next evaluation compiles the
// abstracted provenance once.
func (e *Engine) Compress(B int, opts ...CompressOption) (*core.Compression, error) {
	cfg := defaultCompressConfig()
	for _, o := range opts {
		o(&cfg)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.forest == nil {
		return nil, fmt.Errorf("session: engine was opened without an abstraction forest; Compress needs one")
	}
	c, err := cfg.compressor(e.forest.Len())
	if err != nil {
		return nil, err
	}
	comp, err := c.Compress(e.set, e.forest, B)
	if err != nil {
		return nil, err
	}
	e.comp = comp
	e.active = comp.Abstracted
	e.dropRuntimesLocked() // semiring kernels compiled the old active set
	return comp, nil
}

// Add appends a polynomial to the session's provenance. When a compression
// is active the polynomial is abstracted under the selected substitution
// and appended to the abstracted set too, so evaluation stays consistent
// with selection without re-running it. The active set's compiled form is
// extended in place (Compiled.Append patches the flat arrays, the inverted
// index and the baseline), so an Add-heavy session never recompiles —
// Stats().Compiles stays constant across Add+WhatIf loops.
func (e *Engine) Add(tag string, p *provenance.Polynomial) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.comp != nil {
		// After Compress the source compilation is never evaluated again
		// (e.active is the abstracted set): drop it rather than paying an
		// index patch per Add for a dead cache.
		e.set.InvalidateCompiled()
	}
	e.set.Add(tag, p)
	active := p
	if e.comp != nil {
		ap := p
		if len(e.comp.Subst) > 0 {
			ap = p.Substitute(e.comp.Subst)
		}
		e.active.Add(tag, ap)
		active = ap
	}
	e.mirrorAddLocked(tag, active)
	e.added.Add(1)
}

// compiledLocked returns the active set's cached compiled form, counting
// (re)compilations for Stats. Callers hold e.mu (read or write).
func (e *Engine) compiledLocked() *provenance.Compiled {
	c := e.active.Compiled()
	if e.lastCompiled.Swap(c) != c {
		e.compiles.Add(1)
	}
	return c
}

// Compiled exposes the session's cached compiled provenance — the
// abstracted set after Compress, the source set before. The returned value
// is the live cache: a later Add extends it in place (under the engine's
// exclusive lock), so callers evaluating it directly must not race with
// Add — take Active().Compile() when a frozen snapshot is needed.
func (e *Engine) Compiled() *provenance.Compiled {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.compiledLocked()
}

// batchOptions assembles the evaluation tuning every path shares: the worker
// pool, the delta cutoff (the adaptive cost model by default — the engine's
// counters carry its state across calls), and the engine-owned counters.
func (e *Engine) batchOptions() hypo.BatchOptions {
	return hypo.BatchOptions{Workers: e.workers, DeltaCutoff: e.deltaCutoff, Counters: &e.counters}
}

// streamBatchOptions is batchOptions for Stream's micro-batches, which are
// additionally chained: consecutive scenarios of a stream tend to be
// correlated, so each is delta-evaluated against its overlap-ordered
// predecessor's answers whenever that diff is sparser than the scenario.
func (e *Engine) streamBatchOptions() hypo.BatchOptions {
	opts := e.batchOptions()
	opts.Chain = true
	return opts
}

// answers is the shared evaluation path: cached compile, parallel eval,
// scenario accounting. Batch accounting stays with WhatIfBatch so streamed
// and single evaluations do not inflate the batch counter.
func (e *Engine) answers(scs []*hypo.Scenario) ([][]hypo.Answer, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	rows, err := hypo.AnswersBatch(e.compiledLocked(), scs, e.batchOptions())
	if err != nil {
		return nil, err
	}
	e.scenarios.Add(int64(len(scs)))
	return rows, nil
}

// WhatIf answers a single hypothetical scenario against the session's
// current provenance.
func (e *Engine) WhatIf(sc *hypo.Scenario) ([]hypo.Answer, error) {
	rows, err := e.answers([]*hypo.Scenario{sc})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// WhatIfBatch answers many scenarios in parallel on the session's worker
// pool, reusing the cached compiled provenance — no per-call compile.
func (e *Engine) WhatIfBatch(scs []*hypo.Scenario) ([][]hypo.Answer, error) {
	rows, err := e.answers(scs)
	if err != nil {
		return nil, err
	}
	e.batches.Add(1)
	return rows, nil
}

// Source returns the session's original provenance set.
func (e *Engine) Source() *provenance.Set {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.set
}

// Active returns the set scenarios currently evaluate against: the
// abstracted set after Compress, the source set before.
func (e *Engine) Active() *provenance.Set {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.active
}

// Forest returns the abstraction forest the session was opened with (nil
// for evaluation-only sessions).
func (e *Engine) Forest() *abstree.Forest { return e.forest }

// Compression returns the outcome of the last Compress, or nil before any.
func (e *Engine) Compression() *core.Compression {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.comp
}

// Stats is a point-in-time snapshot of a session, shaped for the /stats
// endpoint of the what-if server.
type Stats struct {
	Polynomials     int    `json:"polynomials"`
	Monomials       int    `json:"monomials"`
	Variables       int    `json:"variables"`
	SourceMonomials int    `json:"source_monomials"`
	Compressed      bool   `json:"compressed"`
	Strategy        string `json:"strategy,omitempty"`
	MonomialLoss    int    `json:"monomial_loss"`
	VariableLoss    int    `json:"variable_loss"`
	Adequate        bool   `json:"adequate"`
	Scenarios       int64  `json:"scenarios_evaluated"`
	Batches         int64  `json:"batches"` // WhatIfBatch calls; singles/streams count in Scenarios only
	Queries         int64  `json:"queries"` // ScenQL statements run (Query/QueryStream, EXPLAIN included)
	Compiles        int64  `json:"compiles"`
	Added           int64  `json:"added_polynomials"`
	DeltaEvals      int64  `json:"delta_evals"`      // scenarios answered via the identity-baseline delta path
	ChainedEvals    int64  `json:"chained_evals"`    // scenarios answered via a delta against the previous scenario
	FullEvals       int64  `json:"full_evals"`       // scenarios answered by full re-evaluation
	ShardedEvals    int64  `json:"sharded_evals"`    // scenarios split across goroutines
	StreamBatches   int64  `json:"stream_batches"`   // micro-batches evaluated by Stream
	StreamMaxBatch  int64  `json:"stream_max_batch"` // largest Stream micro-batch so far

	// Adaptive routing model (the learned replacement for a static delta
	// cutoff): observed ns per term on each path and the affected-term
	// fraction where they currently cross. Zero until both paths have been
	// observed; see hypo.BatchCounters.
	DeltaNsPerTerm float64 `json:"delta_ns_per_term,omitempty"`
	FullNsPerTerm  float64 `json:"full_ns_per_term,omitempty"`
	AdaptiveCutoff float64 `json:"adaptive_cutoff,omitempty"`

	// Semirings breaks the evaluation accounting down per non-float carrier
	// (keyed by semiring.Kind wire name). Absent until a non-float what-if
	// runs — the float default stays in the top-level fields, so float-only
	// sessions serialize exactly as before.
	Semirings map[string]SemiringStats `json:"semirings,omitempty"`
}

// Accumulate adds o's sizes and counters into s, so a multi-session
// registry can report one aggregate across engines. Numeric fields sum;
// StreamMaxBatch and the cost-model estimates take the maximum (per-term
// costs are per-session estimates — summing them would be meaningless, the
// maximum is the conservative aggregate); the qualitative per-session
// fields (Compressed, Strategy, Adequate, the loss figures) describe one
// compression outcome and are deliberately left alone — they do not
// aggregate meaningfully.
func (s *Stats) Accumulate(o Stats) {
	s.Polynomials += o.Polynomials
	s.Monomials += o.Monomials
	s.Variables += o.Variables
	s.SourceMonomials += o.SourceMonomials
	s.Scenarios += o.Scenarios
	s.Batches += o.Batches
	s.Queries += o.Queries
	s.Compiles += o.Compiles
	s.Added += o.Added
	s.DeltaEvals += o.DeltaEvals
	s.ChainedEvals += o.ChainedEvals
	s.FullEvals += o.FullEvals
	s.ShardedEvals += o.ShardedEvals
	s.StreamBatches += o.StreamBatches
	if o.StreamMaxBatch > s.StreamMaxBatch {
		s.StreamMaxBatch = o.StreamMaxBatch
	}
	if o.DeltaNsPerTerm > s.DeltaNsPerTerm {
		s.DeltaNsPerTerm = o.DeltaNsPerTerm
	}
	if o.FullNsPerTerm > s.FullNsPerTerm {
		s.FullNsPerTerm = o.FullNsPerTerm
	}
	if o.AdaptiveCutoff > s.AdaptiveCutoff {
		s.AdaptiveCutoff = o.AdaptiveCutoff
	}
	if len(o.Semirings) > 0 {
		if s.Semirings == nil {
			s.Semirings = make(map[string]SemiringStats, len(o.Semirings))
		}
		for k, ss := range o.Semirings {
			cur := s.Semirings[k]
			cur.accumulate(ss)
			s.Semirings[k] = cur
		}
	}
}

// Stats reports the session's current shape and counters. Compiles counts
// actual compilations observed — a healthy steady state holds it constant
// across evaluations.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := Stats{
		Polynomials:     e.active.Len(),
		Monomials:       e.active.Size(),
		Variables:       e.active.Granularity(),
		SourceMonomials: e.set.Size(),
		Compressed:      e.comp != nil,
		Scenarios:       e.scenarios.Load(),
		Batches:         e.batches.Load(),
		Queries:         e.queries.Load(),
		Compiles:        e.compiles.Load(),
		Added:           e.added.Load(),
		DeltaEvals:      e.counters.DeltaEvals.Load(),
		ChainedEvals:    e.counters.ChainedEvals.Load(),
		FullEvals:       e.counters.FullEvals.Load(),
		ShardedEvals:    e.counters.ShardedEvals.Load(),
		StreamBatches:   e.streamBatches.Load(),
		StreamMaxBatch:  e.streamMaxBatch.Load(),
		DeltaNsPerTerm:  e.counters.DeltaNsPerTerm(),
		FullNsPerTerm:   e.counters.FullNsPerTerm(),
		AdaptiveCutoff:  e.counters.AdaptiveCutoff(),
		Semirings:       e.semStatsLocked(),
	}
	if e.comp != nil {
		st.Strategy = e.comp.Strategy
		st.MonomialLoss = e.comp.ML
		st.VariableLoss = e.comp.VL
		st.Adequate = e.comp.Adequate
	}
	return st
}
