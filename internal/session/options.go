package session

import (
	"fmt"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
	"provabs/internal/sampling"
	"provabs/internal/summarize"
)

// Strategy names one of the five compression algorithms the Engine routes
// through the core.Compressor interface.
type Strategy string

const (
	// StrategyAuto picks OptimalVVS for a single-tree forest and GreedyVVS
	// otherwise — the paper's own recommendation per setting.
	StrategyAuto Strategy = ""
	// StrategyOptimal is Algorithm 1: exact, PTIME, single tree only.
	StrategyOptimal Strategy = "optimal"
	// StrategyGreedy is Algorithm 2: heuristic, any forest.
	StrategyGreedy Strategy = "greedy"
	// StrategyBruteForce is the exhaustive reference solver.
	StrategyBruteForce Strategy = "brute"
	// StrategySummarize is the Ainy et al. (CIKM'15) pairwise-merge
	// competitor.
	StrategySummarize Strategy = "summarize"
	// StrategyOnline is the §6 pipeline: select on a sample, apply to all.
	StrategyOnline Strategy = "online"
)

// ParseStrategy resolves a strategy name, accepting the CLI's historical
// aliases (opt, ainy, prox).
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", "auto":
		return StrategyAuto, nil
	case "optimal", "opt":
		return StrategyOptimal, nil
	case "greedy":
		return StrategyGreedy, nil
	case "brute", "bruteforce":
		return StrategyBruteForce, nil
	case "summarize", "ainy", "prox":
		return StrategySummarize, nil
	case "online", "sample":
		return StrategyOnline, nil
	}
	return "", fmt.Errorf("session: unknown strategy %q (want optimal, greedy, brute, summarize or online)", name)
}

// Option configures an Engine at Open time.
type Option func(*Engine)

// WithWorkers sets the worker-pool size used by WhatIfBatch and Stream
// (0 or negative = GOMAXPROCS). With fewer scenarios than workers the pool
// shards each scenario's polynomial range instead of idling.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithDeltaCutoff sets the affected-term density below which scenarios are
// delta-evaluated against the cached baseline instead of re-multiplying
// every monomial. The default 0 selects the adaptive cost model: the
// engine's counters learn the observed ns/term of the delta and full paths
// (EWMA, refreshed by periodic probing) and route each scenario by
// estimated cost, bootstrapped at hypo.DefaultDeltaCutoff until both paths
// have been observed. A positive value pins a static fraction instead;
// negative disables the delta path entirely. The model's current state is
// visible in Stats (delta_ns_per_term, full_ns_per_term, adaptive_cutoff).
func WithDeltaCutoff(f float64) Option {
	return func(e *Engine) { e.deltaCutoff = f }
}

// WithStreamBuffer sets the capacity of Stream's output channel, so a slow
// consumer does not serialize evaluation (0 = the micro-batch size,
// negative = unbuffered).
func WithStreamBuffer(n int) Option {
	return func(e *Engine) { e.streamBuf = n }
}

// WithStreamBatch caps how many pending scenarios Stream drains into one
// micro-batched evaluation (0 = the default, 64).
func WithStreamBatch(n int) Option {
	return func(e *Engine) { e.streamBatch = n }
}

// compressConfig collects the per-call tuning of Engine.Compress.
type compressConfig struct {
	strategy   Strategy
	fraction   float64       // online: sample fraction
	seed       int64         // online: sample seed
	timeout    time.Duration // summarize: cutoff (0 = unlimited)
	bruteLimit int           // brute: enumeration cap (0 = default)
}

func defaultCompressConfig() compressConfig {
	return compressConfig{strategy: StrategyAuto, fraction: 0.3, seed: 1}
}

// CompressOption tunes a single Engine.Compress call.
type CompressOption func(*compressConfig)

// WithStrategy selects the compression algorithm.
func WithStrategy(s Strategy) CompressOption {
	return func(c *compressConfig) { c.strategy = s }
}

// WithSamplingFraction sets the sample fraction of the online strategy
// (default 0.3).
func WithSamplingFraction(f float64) CompressOption {
	return func(c *compressConfig) { c.fraction = f }
}

// WithSeed sets the sampling seed of the online strategy (default 1).
func WithSeed(seed int64) CompressOption {
	return func(c *compressConfig) { c.seed = seed }
}

// WithTimeout bounds the summarize strategy's runtime (0 = unlimited).
func WithTimeout(d time.Duration) CompressOption {
	return func(c *compressConfig) { c.timeout = d }
}

// WithBruteLimit caps the brute-force strategy's VVS enumeration
// (0 = core.DefaultBruteLimit).
func WithBruteLimit(n int) CompressOption {
	return func(c *compressConfig) { c.bruteLimit = n }
}

// compressor routes the configured strategy to its core.Compressor
// implementation. treeCount resolves StrategyAuto.
func (c compressConfig) compressor(treeCount int) (core.Compressor, error) {
	strategy := c.strategy
	if strategy == StrategyAuto {
		if treeCount == 1 {
			strategy = StrategyOptimal
		} else {
			strategy = StrategyGreedy
		}
	}
	switch strategy {
	case StrategyOptimal:
		return core.OptimalCompressor(), nil
	case StrategyGreedy:
		return core.GreedyCompressor(), nil
	case StrategyBruteForce:
		return core.BruteForceCompressor(c.bruteLimit), nil
	case StrategySummarize:
		return summarizeCompressor(c.timeout), nil
	case StrategyOnline:
		return onlineCompressor(c.fraction, c.seed), nil
	}
	return nil, fmt.Errorf("session: unknown strategy %q", strategy)
}

// summarizeCompressor adapts the Ainy et al. summarization to the strategy
// interface. It is the one strategy with no VVS: its groups are arbitrary
// pairwise merges, not tree cuts, so only the substitution is carried.
func summarizeCompressor(timeout time.Duration) core.Compressor {
	return core.CompressorFunc{Label: string(StrategySummarize), Fn: func(s *provenance.Set, forest *abstree.Forest, B int) (*core.Compression, error) {
		res, err := summarize.Summarize(s, forest, B, summarize.Options{Timeout: timeout})
		if err != nil {
			return nil, err
		}
		return &core.Compression{
			Strategy:   string(StrategySummarize),
			Abstracted: res.Abstracted,
			Subst:      res.Subst,
			ML:         res.ML,
			VL:         res.VL,
			Adequate:   res.Adequate,
			Elapsed:    res.Elapsed,
			Extra:      res,
		}, nil
	}}
}

// onlineCompressor adapts the §6 sample-then-apply pipeline.
func onlineCompressor(fraction float64, seed int64) core.Compressor {
	return core.CompressorFunc{Label: string(StrategyOnline), Fn: func(s *provenance.Set, forest *abstree.Forest, B int) (*core.Compression, error) {
		start := time.Now()
		res, err := sampling.OnlineCompress(s, forest, B, sampling.Options{Fraction: fraction, Seed: seed})
		if err != nil {
			return nil, err
		}
		return &core.Compression{
			Strategy:   string(StrategyOnline),
			Abstracted: res.Abstracted,
			VVS:        res.VVS,
			Subst:      res.VVS.Subst(s.Vocab),
			ML:         s.Size() - res.Abstracted.Size(),
			VL:         s.Granularity() - res.Abstracted.Granularity(),
			Adequate:   res.FullAdequate,
			Elapsed:    time.Since(start),
			Extra:      res,
		}, nil
	}}
}
