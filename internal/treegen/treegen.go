// Package treegen builds the benchmark abstraction-tree shapes of the
// paper's Table 2 (types 1–7 over 128 leaf variables, Figure 4), plus the
// running example's plan and quarter trees (Figures 2–3). Shapes are uniform
// leveled trees described by per-level fan-outs; the product of fan-outs is
// the number of leaves (always 128 in the paper's benchmark).
package treegen

import (
	"fmt"
	"math/big"

	"provabs/internal/abstree"
)

// Shape is a uniform leveled tree: Fanouts[0] children under the root, each
// with Fanouts[1] children, and so on; the bottom level nodes' children are
// the leaves.
type Shape struct {
	Type    int // paper tree type 1..7 (0 for ad-hoc shapes)
	Fanouts []int
}

// Leaves returns the number of leaves (product of fan-outs).
func (s Shape) Leaves() int {
	n := 1
	for _, f := range s.Fanouts {
		n *= f
	}
	return n
}

// Nodes returns the total number of nodes (Table 2 "Nodes" column).
func (s Shape) Nodes() int {
	total, level := 1, 1
	for _, f := range s.Fanouts {
		level *= f
		total += level
	}
	return total
}

// CutCount returns the exact number of valid variable sets of the shape
// (Table 2 "VVS" column): c = 1 for a leaf, c = 1 + c_child^fanout per level.
func (s Shape) CutCount() *big.Int {
	c := big.NewInt(1)
	for i := len(s.Fanouts) - 1; i >= 0; i-- {
		c.Exp(c, big.NewInt(int64(s.Fanouts[i])), nil)
		c.Add(c, big.NewInt(1))
	}
	return c
}

// Build materializes the shape as an abstraction tree. Internal nodes are
// labeled name_l<level>_<index>; leaf i is labeled leafName(i). leafName
// must produce distinct labels for 0..Leaves()-1.
func (s Shape) Build(name string, leafName func(i int) string) *abstree.Tree {
	leaf := 0
	var build func(level, index int) abstree.Spec
	build = func(level, index int) abstree.Spec {
		if level == len(s.Fanouts) {
			sp := abstree.Leaf(leafName(leaf))
			leaf++
			return sp
		}
		label := name
		if level > 0 {
			label = fmt.Sprintf("%s_l%d_%d", name, level, index)
		}
		spec := abstree.Spec{Label: label}
		for i := 0; i < s.Fanouts[level]; i++ {
			spec.Children = append(spec.Children, build(level+1, index*s.Fanouts[level]+i))
		}
		return spec
	}
	return abstree.MustTree(build(0, 0))
}

// NumberedLeaves returns a leafName function producing prefix0, prefix1, ...
func NumberedLeaves(prefix string) func(int) string {
	return func(i int) string { return fmt.Sprintf("%s%d", prefix, i) }
}

// Table2 lists every benchmark shape of the paper's Table 2, in row order.
// All shapes have 128 leaves. Two type-6 rows are printed garbled in the
// paper (their listed fan-outs contradict the listed node counts and the
// invariant of 128 leaves); we use the unique 128-leaf shapes that match the
// listed node and VVS counts: 155 nodes → 2,4,2,8 and 203 nodes → 2,4,8,2.
var Table2 = []Shape{
	// Type 1: 2-level trees (Figure 4a), root fan-out 2..64.
	{1, []int{2, 64}}, {1, []int{4, 32}}, {1, []int{8, 16}},
	{1, []int{16, 8}}, {1, []int{32, 4}}, {1, []int{64, 2}},
	// Type 2: 3-level trees, root fan-out 2 (Figure 4b).
	{2, []int{2, 2, 32}}, {2, []int{2, 4, 16}}, {2, []int{2, 8, 8}},
	{2, []int{2, 16, 4}}, {2, []int{2, 32, 2}},
	// Type 3: 3-level trees, root fan-out 4.
	{3, []int{4, 2, 16}}, {3, []int{4, 4, 8}}, {3, []int{4, 8, 4}}, {3, []int{4, 16, 2}},
	// Type 4: 3-level trees, root fan-out 8.
	{4, []int{8, 2, 8}}, {4, []int{8, 4, 4}}, {4, []int{8, 8, 2}},
	// Type 5: 4-level trees, root fan-out 2, level-1 fan-out 2 (Figure 4c).
	{5, []int{2, 2, 2, 16}}, {5, []int{2, 2, 4, 8}}, {5, []int{2, 2, 8, 4}}, {5, []int{2, 2, 16, 2}},
	// Type 6: 4-level trees, root fan-out 2, level-1 fan-out 4.
	{6, []int{2, 4, 2, 8}}, {6, []int{2, 4, 4, 4}}, {6, []int{2, 4, 8, 2}},
	// Type 7: 4-level trees, root fan-out 4, level-1 fan-out 2.
	{7, []int{4, 2, 2, 8}}, {7, []int{4, 2, 4, 4}}, {7, []int{4, 2, 8, 2}},
}

// ShapesOfType returns the Table 2 rows of the given type, in row order.
func ShapesOfType(typ int) []Shape {
	var out []Shape
	for _, s := range Table2 {
		if s.Type == typ {
			out = append(out, s)
		}
	}
	return out
}

// SmallestOfType returns the first (fewest-cuts) Table 2 shape of the type.
func SmallestOfType(typ int) Shape { return ShapesOfType(typ)[0] }

// QuarterTree builds the Figure 3 months tree: a root with four quarter
// nodes q1..q4, each covering three month leaves m1..m12.
func QuarterTree() *abstree.Tree {
	spec := abstree.Spec{Label: "Year"}
	for q := 0; q < 4; q++ {
		qs := abstree.Spec{Label: fmt.Sprintf("q%d", q+1)}
		for m := 0; m < 3; m++ {
			qs.Children = append(qs.Children, abstree.Leaf(fmt.Sprintf("m%d", q*3+m+1)))
		}
		spec.Children = append(spec.Children, qs)
	}
	return abstree.MustTree(spec)
}

// PlansTree builds the Figure 2 tree over the running example's small plan
// vocabulary (p1, p2, y1..y3, f1, f2, v, b1, b2, e).
func PlansTree() *abstree.Tree {
	return abstree.MustParseTree(
		"Plans(Standard(p1,p2),Special(Y(y1,y2,y3),F(f1,f2),v),Business(SB(b1,b2),e))")
}

// BinaryTree builds a complete binary tree over 2^depth leaves; the paper's
// Figure 11 experiment uses eight 3-level binary trees with 16 leaves each.
func BinaryTree(name string, depth int, leafName func(int) string) *abstree.Tree {
	fan := make([]int, depth)
	for i := range fan {
		fan[i] = 2
	}
	return Shape{Fanouts: fan}.Build(name, leafName)
}
