package treegen

import (
	"math"
	"math/big"
	"testing"

	"provabs/internal/abstree"
)

// table2Expect mirrors the paper's Table 2: nodes and VVS counts per row.
// VVS counts beyond float precision in the paper ("1.84467E+19") are checked
// against the closed form to 6 significant digits.
var table2Expect = []struct {
	nodes  int
	vvs    string // exact when known from the table, else "" (checked approximately)
	approx float64
}{
	{131, "5", 0}, {133, "17", 0}, {137, "257", 0}, {145, "65537", 0},
	{161, "4294967297", 0}, {193, "", 1.84467e19},
	{135, "26", 0}, {139, "290", 0}, {147, "66050", 0},
	{163, "4295098370", 0}, {195, "", 1.84467e19},
	{141, "626", 0}, {149, "83522", 0}, {165, "4362470402", 0}, {197, "", 1.84479e19},
	{153, "390626", 0}, {169, "6975757442", 0}, {201, "", 1.90311e19},
	{143, "677", 0}, {151, "84101", 0}, {167, "4362602501", 0}, {199, "", 1.84479e19},
	{155, "391877", 0}, {171, "6975924485", 0}, {203, "", 1.90311e19},
	{157, "456977", 0}, {173, "7072810001", 0}, {205, "", 1.90323e19},
}

func TestTable2(t *testing.T) {
	if len(Table2) != len(table2Expect) {
		t.Fatalf("Table2 has %d rows, expectations %d", len(Table2), len(table2Expect))
	}
	for i, s := range Table2 {
		want := table2Expect[i]
		if s.Leaves() != 128 {
			t.Errorf("row %d (%v): leaves = %d, want 128", i, s.Fanouts, s.Leaves())
		}
		if got := s.Nodes(); got != want.nodes {
			t.Errorf("row %d (%v): nodes = %d, want %d", i, s.Fanouts, got, want.nodes)
		}
		cc := s.CutCount()
		if want.vvs != "" {
			exp, ok := new(big.Int).SetString(want.vvs, 10)
			if !ok {
				t.Fatalf("bad expectation %q", want.vvs)
			}
			if cc.Cmp(exp) != 0 {
				t.Errorf("row %d (%v): VVS = %s, want %s", i, s.Fanouts, cc, exp)
			}
		} else {
			got, _ := new(big.Float).SetInt(cc).Float64()
			if math.Abs(got-want.approx)/want.approx > 1e-4 {
				t.Errorf("row %d (%v): VVS ≈ %g, want ≈ %g", i, s.Fanouts, got, want.approx)
			}
		}
	}
}

func TestBuildMatchesShape(t *testing.T) {
	for _, s := range []Shape{{1, []int{2, 4}}, {2, []int{2, 2, 4}}, {5, []int{2, 2, 2, 2}}} {
		tree := s.Build("T", NumberedLeaves("s"))
		if tree.Len() != s.Nodes() {
			t.Errorf("%v: built %d nodes, want %d", s.Fanouts, tree.Len(), s.Nodes())
		}
		if got := len(tree.Leaves()); got != s.Leaves() {
			t.Errorf("%v: built %d leaves, want %d", s.Fanouts, got, s.Leaves())
		}
		if tree.CutCount().Cmp(s.CutCount()) != 0 {
			t.Errorf("%v: tree CutCount %s != shape CutCount %s", s.Fanouts, tree.CutCount(), s.CutCount())
		}
		if tree.Height() != len(s.Fanouts) {
			t.Errorf("%v: height = %d, want %d", s.Fanouts, tree.Height(), len(s.Fanouts))
		}
	}
}

func TestBuildLeafNames(t *testing.T) {
	s := Shape{1, []int{2, 2}}
	tree := s.Build("T", NumberedLeaves("s"))
	for i := 0; i < 4; i++ {
		if _, ok := tree.NodeByLabel("s" + string(rune('0'+i))); !ok {
			t.Errorf("leaf s%d missing", i)
		}
	}
}

func TestQuarterTree(t *testing.T) {
	qt := QuarterTree()
	if got := len(qt.Leaves()); got != 12 {
		t.Errorf("quarter tree leaves = %d, want 12", got)
	}
	if got := qt.CutCount().Int64(); got != 17 {
		// 1 + (1+1)^4 = 17
		t.Errorf("quarter tree cuts = %d, want 17", got)
	}
	q1, ok := qt.NodeByLabel("q1")
	if !ok {
		t.Fatal("q1 missing")
	}
	ls := qt.LeavesUnder(q1)
	if len(ls) != 3 || qt.Label(ls[0]) != "m1" || qt.Label(ls[2]) != "m3" {
		t.Errorf("q1 leaves wrong: %v", ls)
	}
}

func TestPlansTree(t *testing.T) {
	pt := PlansTree()
	if got := pt.CutCount().Int64(); got != 31 {
		t.Errorf("plans tree cuts = %d, want 31", got)
	}
	if _, ok := pt.NodeByLabel("Business"); !ok {
		t.Error("Business node missing")
	}
}

func TestBinaryTree(t *testing.T) {
	bt := BinaryTree("B", 4, NumberedLeaves("x"))
	if got := len(bt.Leaves()); got != 16 {
		t.Errorf("leaves = %d, want 16", got)
	}
	// 3 internal levels above leaves: c(l3)=2, c(l2)=5, c(l1)=26, root=677.
	if got := bt.CutCount().Int64(); got != 677 {
		t.Errorf("cuts = %d, want 677", got)
	}
}

func TestShapesOfType(t *testing.T) {
	for typ := 1; typ <= 7; typ++ {
		shapes := ShapesOfType(typ)
		if len(shapes) == 0 {
			t.Errorf("no shapes of type %d", typ)
		}
		for _, s := range shapes {
			if s.Type != typ {
				t.Errorf("ShapesOfType(%d) returned type %d", typ, s.Type)
			}
		}
	}
	small := SmallestOfType(1)
	if small.Fanouts[0] != 2 {
		t.Errorf("SmallestOfType(1) = %v", small.Fanouts)
	}
}

// The built trees must be valid forest members (unique labels).
func TestBuiltTreesFormForests(t *testing.T) {
	a := Table2[0].Build("S", NumberedLeaves("s"))
	b := Table2[6].Build("P", NumberedLeaves("p"))
	if _, err := abstree.NewForest(a, b); err != nil {
		t.Errorf("disjoint built trees rejected: %v", err)
	}
}
