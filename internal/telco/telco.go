// Package telco implements the paper's Telephony Company benchmark (§4.2):
// a randomly populated Cust/Calls/Plans database, the revenue-per-zip query
// of the running example, and its provenance parameterized by 128 plan
// variables and 12 month variables. It also provides the matching
// abstraction trees (plan-type trees over the 128 plan variables, and the
// Figure 3 month/quarter tree).
package telco

import (
	"fmt"
	"math/rand"

	"provabs/internal/abstree"
	"provabs/internal/engine"
	"provabs/internal/provenance"
	"provabs/internal/treegen"
)

// Config sizes the generated database. The paper varies customers from 10K
// to 5M over 128 plans and 12 months; defaults here are CI-scale and every
// knob is public.
type Config struct {
	Customers int
	Plans     int // number of calling plans (paper: 128)
	Months    int // months with call totals (paper: 12)
	Zips      int // number of distinct zip codes (output polynomials)
	Seed      int64
}

// DefaultConfig returns a laptop-scale configuration with the paper's
// variable counts.
func DefaultConfig() Config {
	return Config{Customers: 1000, Plans: 128, Months: 12, Zips: 100, Seed: 1}
}

// PlanVar returns the name of the i'th plan variable (0-based).
func PlanVar(i int) string { return fmt.Sprintf("pl%d", i) }

// MonthVar returns the name of the month variable for month m (1-based).
func MonthVar(m int) string { return fmt.Sprintf("m%d", m) }

// Dataset is the generated database plus its parameterization.
type Dataset struct {
	Config  Config
	Catalog *engine.Catalog
}

// Generate populates the three tables deterministically from the seed:
// every customer gets a random plan and zip plus a call-duration total per
// month, and every plan gets a per-month price. Plans.Price is parameterized
// by the plan and month variables (Example 2's p·m scheme, scaled to 128
// plans).
func Generate(cfg Config) (*Dataset, error) {
	if cfg.Customers < 1 || cfg.Plans < 1 || cfg.Months < 1 || cfg.Months > 12 || cfg.Zips < 1 {
		return nil, fmt.Errorf("telco: bad config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vb := provenance.NewVocab()
	cat := engine.NewCatalog(vb)

	cust := engine.NewRelation("Cust", engine.Schema{
		{Name: "ID", Type: engine.TInt}, {Name: "Plan", Type: engine.TString}, {Name: "Zip", Type: engine.TString},
	})
	planOf := make([]int, cfg.Customers)
	for i := 0; i < cfg.Customers; i++ {
		planOf[i] = rng.Intn(cfg.Plans)
		zip := 10000 + rng.Intn(cfg.Zips)
		cust.MustAppend(engine.Int(int64(i+1)), engine.Str(planName(planOf[i])), engine.Str(fmt.Sprintf("%05d", zip)))
	}
	cat.AddTable(cust)

	calls := engine.NewRelation("Calls", engine.Schema{
		{Name: "CID", Type: engine.TInt}, {Name: "Mo", Type: engine.TInt}, {Name: "Dur", Type: engine.TFloat},
	})
	for i := 0; i < cfg.Customers; i++ {
		for m := 1; m <= cfg.Months; m++ {
			dur := float64(rng.Intn(1200) + 10)
			calls.MustAppend(engine.Int(int64(i+1)), engine.Int(int64(m)), engine.Float(dur))
		}
	}
	cat.AddTable(calls)

	plans := engine.NewRelation("Plans", engine.Schema{
		{Name: "Plan", Type: engine.TString}, {Name: "Mo", Type: engine.TInt}, {Name: "Price", Type: engine.TFloat},
	})
	type pm struct{ plan, mo int }
	var rows []pm
	for p := 0; p < cfg.Plans; p++ {
		for m := 1; m <= cfg.Months; m++ {
			price := 0.05 + float64(rng.Intn(50))/100
			plans.MustAppend(engine.Str(planName(p)), engine.Int(int64(m)), engine.Float(price))
			rows = append(rows, pm{p, m})
		}
	}
	if err := plans.ParameterizeColumn("Price", func(i int) []provenance.Var {
		return []provenance.Var{vb.Var(PlanVar(rows[i].plan)), vb.Var(MonthVar(rows[i].mo))}
	}); err != nil {
		return nil, err
	}
	cat.AddTable(plans)

	return &Dataset{Config: cfg, Catalog: cat}, nil
}

func planName(i int) string { return fmt.Sprintf("PLAN%03d", i) }

// RevenueQuery is the running example's SQL (revenues per zip code).
const RevenueQuery = `
SELECT Cust.Zip, SUM(Calls.Dur * Plans.Price) AS revenue
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID AND Calls.Mo = Plans.Mo
GROUP BY Cust.Zip
ORDER BY Zip`

// Provenance runs the revenue query through the engine and extracts the
// per-zip provenance polynomials.
func (d *Dataset) Provenance() (*provenance.Set, error) {
	res, err := d.Catalog.ExecSQL(RevenueQuery)
	if err != nil {
		return nil, err
	}
	return engine.GroupProvenance(d.Catalog.Vocab, res, "revenue")
}

// SyntheticProvenance emits the provenance the revenue query would produce,
// without materializing or joining the tables. It exists so size sweeps
// (Figure 8) can reach row counts far beyond what the in-memory engine
// comfortably joins; TestSyntheticMatchesEngine pins it to the engine
// output monomial-for-monomial.
func SyntheticProvenance(cfg Config) (*provenance.Set, error) {
	if cfg.Customers < 1 || cfg.Plans < 1 || cfg.Months < 1 || cfg.Months > 12 || cfg.Zips < 1 {
		return nil, fmt.Errorf("telco: bad config %+v", cfg)
	}
	// Re-derive the exact random streams Generate uses, in the same order.
	rng := rand.New(rand.NewSource(cfg.Seed))
	vb := provenance.NewVocab()
	planOf := make([]int, cfg.Customers)
	zipOf := make([]int, cfg.Customers)
	for i := 0; i < cfg.Customers; i++ {
		planOf[i] = rng.Intn(cfg.Plans)
		zipOf[i] = 10000 + rng.Intn(cfg.Zips)
	}
	dur := make([][]float64, cfg.Customers)
	for i := 0; i < cfg.Customers; i++ {
		dur[i] = make([]float64, cfg.Months+1)
		for m := 1; m <= cfg.Months; m++ {
			dur[i][m] = float64(rng.Intn(1200) + 10)
		}
	}
	price := make([][]float64, cfg.Plans)
	for p := 0; p < cfg.Plans; p++ {
		price[p] = make([]float64, cfg.Months+1)
		for m := 1; m <= cfg.Months; m++ {
			price[p][m] = 0.05 + float64(rng.Intn(50))/100
		}
	}
	// Revenue per (zip, plan, month): Σ dur·price · pl_p · m_m.
	polys := make(map[int]*provenance.Polynomial)
	for i := 0; i < cfg.Customers; i++ {
		p := planOf[i]
		poly, ok := polys[zipOf[i]]
		if !ok {
			poly = provenance.NewPolynomial()
			polys[zipOf[i]] = poly
		}
		for m := 1; m <= cfg.Months; m++ {
			poly.AddTerm(dur[i][m]*price[p][m], vb.Var(PlanVar(p)), vb.Var(MonthVar(m)))
		}
	}
	s := provenance.NewSet(vb)
	for zip := 10000; zip < 10000+cfg.Zips; zip++ {
		if poly, ok := polys[zip]; ok {
			s.Add(fmt.Sprintf("%05d", zip), poly)
		}
	}
	return s, nil
}

// PlansTree builds an abstraction tree of the given Table 2 shape over the
// dataset's 128 plan variables.
func PlansTree(shape treegen.Shape) (*abstree.Tree, error) {
	if shape.Leaves() > 128 {
		return nil, fmt.Errorf("telco: shape has %d leaves, dataset has 128 plan variables", shape.Leaves())
	}
	return shape.Build("PlansRoot", treegen.NumberedLeaves("pl")), nil
}

// QuarterTree is the Figure 3 month tree (quarters over m1..m12).
func QuarterTree() *abstree.Tree { return treegen.QuarterTree() }

// TotalRows reports the number of base tuples the configuration generates
// (the Figure 8 x-axis).
func TotalRows(cfg Config) int {
	return cfg.Customers + cfg.Customers*cfg.Months + cfg.Plans*cfg.Months
}
