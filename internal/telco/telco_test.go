package telco

import (
	"math"
	"sort"
	"strings"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
	"provabs/internal/treegen"
)

func TestGenerateShapes(t *testing.T) {
	cfg := Config{Customers: 50, Plans: 8, Months: 12, Zips: 5, Seed: 7}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cust, err := d.Catalog.Table("Cust")
	if err != nil {
		t.Fatal(err)
	}
	if cust.Len() != 50 {
		t.Errorf("customers = %d, want 50", cust.Len())
	}
	calls, _ := d.Catalog.Table("Calls")
	if calls.Len() != 50*12 {
		t.Errorf("calls = %d, want 600", calls.Len())
	}
	plans, _ := d.Catalog.Table("Plans")
	if plans.Len() != 8*12 {
		t.Errorf("plans = %d, want 96", plans.Len())
	}
	if got := TotalRows(cfg); got != 50+600+96 {
		t.Errorf("TotalRows = %d, want %d", got, 50+600+96)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Customers: 0, Plans: 1, Months: 1, Zips: 1},
		{Customers: 1, Plans: 0, Months: 1, Zips: 1},
		{Customers: 1, Plans: 1, Months: 13, Zips: 1},
		{Customers: 1, Plans: 1, Months: 1, Zips: 0},
	} {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
		if _, err := SyntheticProvenance(cfg); err == nil {
			t.Errorf("synthetic config %+v accepted", cfg)
		}
	}
}

func TestProvenanceShape(t *testing.T) {
	cfg := Config{Customers: 200, Plans: 16, Months: 12, Zips: 10, Seed: 3}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	set, err := d.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 || set.Len() > 10 {
		t.Errorf("polynomials = %d, want <= 10 (one per occupied zip)", set.Len())
	}
	// Every monomial is coeff · plan-var · month-var.
	for _, p := range set.Polys {
		for _, m := range p.Monomials() {
			if m.NumVars() != 2 {
				t.Fatalf("monomial %s has %d vars, want 2", m.String(set.Vocab), m.NumVars())
			}
		}
	}
	// Granularity is bounded by plans+months, size by zips·plans·months.
	if g := set.Granularity(); g > 16+12 {
		t.Errorf("granularity = %d, want <= 28", g)
	}
	if sz := set.Size(); sz > 10*16*12 {
		t.Errorf("size = %d, want <= %d", sz, 10*16*12)
	}
}

// coeffByNames maps "plan,month" name pairs to coefficients, so polynomials
// from different vocabularies can be compared.
func coeffByNames(vb *provenance.Vocab, p *provenance.Polynomial) map[string]float64 {
	out := map[string]float64{}
	for _, m := range p.Monomials() {
		var names []string
		for _, vp := range m.Vars() {
			for i := int32(0); i < vp.Pow; i++ {
				names = append(names, vb.Name(vp.Var))
			}
		}
		sort.Strings(names)
		out[strings.Join(names, ",")] = m.Coeff
	}
	return out
}

// TestSyntheticMatchesEngine pins the fast-path generator to the engine
// output: same tags, same monomials, same coefficients (up to float
// summation order).
func TestSyntheticMatchesEngine(t *testing.T) {
	cfg := Config{Customers: 120, Plans: 8, Months: 6, Zips: 7, Seed: 11}
	d, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromEngine, err := d.Provenance()
	if err != nil {
		t.Fatal(err)
	}
	synthetic, err := SyntheticProvenance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fromEngine.Len() != synthetic.Len() {
		t.Fatalf("polynomial counts differ: engine %d, synthetic %d", fromEngine.Len(), synthetic.Len())
	}
	for i := range fromEngine.Polys {
		if fromEngine.Tags[i] != synthetic.Tags[i] {
			t.Fatalf("tag %d: engine %q, synthetic %q", i, fromEngine.Tags[i], synthetic.Tags[i])
		}
		ec := coeffByNames(fromEngine.Vocab, fromEngine.Polys[i])
		sc := coeffByNames(synthetic.Vocab, synthetic.Polys[i])
		if len(ec) != len(sc) {
			t.Fatalf("zip %s: monomial counts differ: %d vs %d", fromEngine.Tags[i], len(ec), len(sc))
		}
		for k, v := range ec {
			if math.Abs(sc[k]-v) > 1e-6*(1+math.Abs(v)) {
				t.Errorf("zip %s monomial %s: engine %v, synthetic %v", fromEngine.Tags[i], k, v, sc[k])
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Customers: 30, Plans: 4, Months: 3, Zips: 3, Seed: 42}
	a, err := SyntheticProvenance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticProvenance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() || a.Granularity() != b.Granularity() {
		t.Error("same seed produced different provenance")
	}
	cfg.Seed = 43
	c, err := SyntheticProvenance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() == c.Size() && provenance.FormatSet(a) == provenance.FormatSet(c) {
		t.Error("different seeds produced identical provenance")
	}
}

// TestCompressTelcoProvenance runs the full pipeline: generate → provenance
// → abstraction trees → optimal and greedy compression at bound 0.5·|P|_M
// (the paper's default setting).
func TestCompressTelcoProvenance(t *testing.T) {
	cfg := Config{Customers: 400, Plans: 128, Months: 12, Zips: 4, Seed: 5}
	set, err := SyntheticProvenance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shape := treegen.SmallestOfType(1)
	plansTree, err := PlansTree(shape)
	if err != nil {
		t.Fatal(err)
	}
	B := set.Size() / 2
	res, err := core.OptimalVVS(set, plansTree, B)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate {
		t.Fatalf("type-1 tree cannot halve telco provenance (|P|_M=%d, best ML=%d)", set.Size(), res.ML)
	}
	if got := res.VVS.Apply(set).Size(); got > B {
		t.Errorf("abstracted size %d > bound %d", got, B)
	}
	// Greedy with both trees must also reach the bound.
	forest := abstree.MustForest(plansTree, QuarterTree())
	gres, err := core.GreedyVVS(set, forest, B)
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Adequate {
		t.Error("greedy failed to reach the bound with plans+quarter trees")
	}
}

func TestQuarterTreeLeavesMatchMonthVars(t *testing.T) {
	qt := QuarterTree()
	for m := 1; m <= 12; m++ {
		if _, ok := qt.NodeByLabel(MonthVar(m)); !ok {
			t.Errorf("quarter tree missing leaf %s", MonthVar(m))
		}
	}
}

func TestPlansTreeRejectsOversizedShape(t *testing.T) {
	if _, err := PlansTree(treegen.Shape{Fanouts: []int{2, 128}}); err == nil {
		t.Error("256-leaf shape accepted for 128 plan variables")
	}
}
