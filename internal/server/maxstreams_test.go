package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestMaxStreamsRefusesWithRetryAfter pins the stream-slot backpressure
// contract: past -max-streams concurrently open NDJSON streams, a new
// stream is refused up front with 503 and a Retry-After header — a
// well-defined signal the gateway (or any client) can obey — and the slot
// frees as soon as a held stream finishes.
func TestMaxStreamsRefusesWithRetryAfter(t *testing.T) {
	ts, reg := newRegistryServer(t, WithMaxStreams(1))
	if _, err := reg.Create("default", testSet(t), testForest(t)); err != nil {
		t.Fatal(err)
	}

	// Occupy the single slot: a stream held open by an unclosed pipe body.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sessions/default/whatif/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	go func() {
		// One in-flight scenario; the body then stays open, pinning the
		// stream slot. Written before Do: the response headers only flush
		// with the first answer, so Do blocks until this line is consumed.
		io.WriteString(pw, `{"assign":{"m1":1,"m3":1}}`+"\n") //nolint:errcheck
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first stream status = %d, want 200", resp.StatusCode)
	}
	// Round-trip one line so the handler has provably acquired its slot.
	scan := bufio.NewScanner(resp.Body)
	if !scan.Scan() {
		t.Fatalf("no answer line from held stream: %v", scan.Err())
	}

	// Saturated: the next stream gets 503 + Retry-After, body carries the
	// JSON error shape.
	resp2, err := http.Post(ts.URL+"/v1/sessions/default/whatif/stream",
		"application/x-ndjson", strings.NewReader(`{"assign":{"m1":1}}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated stream status = %d, want 503 (body %s)", resp2.StatusCode, body2)
	}
	if ra := resp2.Header.Get("Retry-After"); ra == "" {
		t.Error("503 without a Retry-After header")
	}
	var errLine struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body2, &errLine); err != nil || errLine.Error == "" {
		t.Errorf("503 body %q is not the JSON error shape", body2)
	}

	// Non-stream verbs are not gated by the stream limit.
	resp3, err := http.Post(ts.URL+"/v1/sessions/default/whatif", "application/json",
		strings.NewReader(`{"scenario":{"m1":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("one-shot whatif during stream saturation = %d, want 200", resp3.StatusCode)
	}

	// Finish the held stream; the freed slot admits a new one.
	pw.Close()
	for scan.Scan() {
	}
	resp4, err := http.Post(ts.URL+"/v1/sessions/default/whatif/stream",
		"application/x-ndjson", strings.NewReader(`{"assign":{"m1":1}}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp4.Body) //nolint:errcheck
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusOK {
		t.Errorf("stream after slot release = %d, want 200", resp4.StatusCode)
	}
}
