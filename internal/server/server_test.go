package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
	"provabs/internal/registry"
	"provabs/internal/session"
)

// testSet builds the one-polynomial set used across the server tests; its
// months m1/m3 abstract into q1 under testForest.
func testSet(t *testing.T) *provenance.Set {
	t.Helper()
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3"))
	return set
}

func testForest(t *testing.T) *abstree.Forest {
	t.Helper()
	forest, err := abstree.NewForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

// newRegistryServer starts a server over a fresh registry with no sessions.
func newRegistryServer(t *testing.T, opts ...Option) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	ts := httptest.NewServer(New(reg, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

// newTestServer starts a server whose registry holds one default session
// named "default" — the shape the legacy unversioned routes alias onto.
func newTestServer(t *testing.T) (*httptest.Server, *session.Engine) {
	t.Helper()
	ts, reg := newRegistryServer(t)
	sess, err := reg.Create("default", testSet(t), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	return ts, sess.Engine()
}

func TestWhatIfEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/whatif", "application/json",
		strings.NewReader(`{"assign":{"m1":0.5,"m3":0.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Answers []struct {
			Tag   string  `json:"tag"`
			Value float64 `json:"value"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Answers) != 1 || body.Answers[0].Tag != "zip 10001" {
		t.Fatalf("answers = %+v, want one for zip 10001", body.Answers)
	}
	want := (220.8 + 240 + 127.4 + 114.45) * 0.5
	if got := body.Answers[0].Value; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("value = %v, want %v", got, want)
	}
}

func TestWhatIfEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"malformed json":   `{"assign":`,
		"unknown variable": `{"assign":{"nope":1}}`,
	} {
		resp, err := http.Post(ts.URL+"/whatif", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestStreamEndpoint(t *testing.T) {
	ts, e := newTestServer(t)
	body := strings.Join([]string{
		`{"assign":{"m1":1,"m3":1}}`,
		``, // blank lines are skipped
		`{"assign":{"bogus":1}}`,
		`{"assign":{"m1":0,"m3":0}}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/whatif/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var lines []streamLine
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var l streamLine
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %+v", len(lines), lines)
	}
	if lines[0].Error != "" || lines[2].Error != "" {
		t.Errorf("valid scenarios errored: %+v", lines)
	}
	if lines[1].Error == "" {
		t.Error("unknown-variable line did not carry an error")
	}
	if lines[0].Index != 0 || lines[1].Index != 1 || lines[2].Index != 2 {
		t.Errorf("indices out of order: %+v", lines)
	}
	if got := lines[2].Answers[0].Value; got != 0 {
		t.Errorf("zeroed scenario value = %v, want 0", got)
	}
	if st := e.Stats(); st.Compiles != 1 {
		t.Errorf("stream recompiled: Compiles = %d, want 1", st.Compiles)
	}
}

func TestStreamEndpointMalformedLine(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"assign":{"m1":1}}` + "\n" + `not json` + "\n" + `{"assign":{"m1":2}}`
	resp, err := http.Post(ts.URL+"/whatif/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []map[string]any
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var l map[string]any
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	// One good answer, then a terminal error line; the line after the
	// malformed one is not evaluated.
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %v", len(lines), lines)
	}
	if _, ok := lines[0]["answers"]; !ok {
		t.Errorf("first line carries no answers: %v", lines[0])
	}
	if msg, _ := lines[1]["error"].(string); !strings.Contains(msg, "bad scenario line") {
		t.Errorf("terminal line = %v, want bad-scenario error", lines[1])
	}
}

func TestCompressAndStatsEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/compress", "application/json",
		strings.NewReader(`{"bound":2,"strategy":"greedy"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d, want 200", resp.StatusCode)
	}
	var comp struct {
		Strategy  string `json:"strategy"`
		Monomials int    `json:"monomials"`
		Adequate  bool   `json:"adequate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	if comp.Strategy != "greedy" || !comp.Adequate || comp.Monomials != 2 {
		t.Errorf("compress = %+v, want adequate greedy at 2 monomials", comp)
	}

	// The compression is visible in /stats and scenario answers.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st session.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Compressed || st.Strategy != "greedy" || st.Monomials != 2 {
		t.Errorf("stats = %+v, want compressed greedy at 2 monomials", st)
	}

	wresp, err := http.Post(ts.URL+"/whatif", "application/json",
		strings.NewReader(`{"assign":{"q1":0.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("whatif on meta-variable: status = %d, want 200", wresp.StatusCode)
	}

	// The evaluation-path counters surface on the wire: the what-if above is
	// accounted as exactly one delta or full evaluation.
	sresp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp2.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(sresp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"delta_evals", "full_evals", "sharded_evals", "stream_batches", "stream_max_batch"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/stats is missing %q: %v", key, raw)
		}
	}
	if raw["delta_evals"].(float64)+raw["full_evals"].(float64) != 1 {
		t.Errorf("delta_evals %v + full_evals %v != 1 evaluated scenario",
			raw["delta_evals"], raw["full_evals"])
	}

	// Bad strategy and bad JSON are 400s.
	for _, body := range []string{`{"bound":2,"strategy":"nope"}`, `{{`} {
		bresp, err := http.Post(ts.URL+"/compress", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		bresp.Body.Close()
		if bresp.StatusCode != http.StatusBadRequest {
			t.Errorf("compress %q: status = %d, want 400", body, bresp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}
