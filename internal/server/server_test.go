package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
	"provabs/internal/registry"
	"provabs/internal/session"
)

// testSet builds the one-polynomial set used across the server tests; its
// months m1/m3 abstract into q1 under testForest.
func testSet(t *testing.T) *provenance.Set {
	t.Helper()
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3"))
	return set
}

func testForest(t *testing.T) *abstree.Forest {
	t.Helper()
	forest, err := abstree.NewForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		t.Fatal(err)
	}
	return forest
}

// newRegistryServer starts a server over a fresh registry with no sessions.
func newRegistryServer(t *testing.T, opts ...Option) (*httptest.Server, *registry.Registry) {
	t.Helper()
	reg := registry.New()
	ts := httptest.NewServer(New(reg, opts...).Handler())
	t.Cleanup(ts.Close)
	return ts, reg
}

// newTestServer starts a server whose registry holds one default session
// named "default" — the shape the legacy unversioned routes alias onto.
func newTestServer(t *testing.T) (*httptest.Server, *session.Engine) {
	t.Helper()
	ts, reg := newRegistryServer(t)
	sess, err := reg.Create("default", testSet(t), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	return ts, sess.Engine()
}

func TestWhatIfEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/whatif", "application/json",
		strings.NewReader(`{"assign":{"m1":0.5,"m3":0.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body struct {
		Answers []struct {
			Tag   string  `json:"tag"`
			Value float64 `json:"value"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Answers) != 1 || body.Answers[0].Tag != "zip 10001" {
		t.Fatalf("answers = %+v, want one for zip 10001", body.Answers)
	}
	want := (220.8 + 240 + 127.4 + 114.45) * 0.5
	if got := body.Answers[0].Value; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("value = %v, want %v", got, want)
	}
}

func TestWhatIfEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	for name, body := range map[string]string{
		"malformed json":   `{"assign":`,
		"unknown variable": `{"assign":{"nope":1}}`,
	} {
		resp, err := http.Post(ts.URL+"/whatif", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestStreamEndpoint(t *testing.T) {
	ts, e := newTestServer(t)
	body := strings.Join([]string{
		`{"assign":{"m1":1,"m3":1}}`,
		``, // blank lines are skipped
		`{"assign":{"bogus":1}}`,
		`{"assign":{"m1":0,"m3":0}}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/whatif/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var lines []streamLine
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var l streamLine
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %+v", len(lines), lines)
	}
	if lines[0].Error != "" || lines[2].Error != "" {
		t.Errorf("valid scenarios errored: %+v", lines)
	}
	if lines[1].Error == "" {
		t.Error("unknown-variable line did not carry an error")
	}
	if lines[0].Index != 0 || lines[1].Index != 1 || lines[2].Index != 2 {
		t.Errorf("indices out of order: %+v", lines)
	}
	if got := lines[2].Answers[0].Value; got != 0.0 { // json decodes value as float64
		t.Errorf("zeroed scenario value = %v, want 0", got)
	}
	if st := e.Stats(); st.Compiles != 1 {
		t.Errorf("stream recompiled: Compiles = %d, want 1", st.Compiles)
	}
}

func TestStreamEndpointMalformedLine(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"assign":{"m1":1}}` + "\n" + `not json` + "\n" + `{"assign":{"m1":2}}`
	resp, err := http.Post(ts.URL+"/whatif/stream", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []map[string]any
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var l map[string]any
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	// One good answer, then a terminal error line; the line after the
	// malformed one is not evaluated.
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %v", len(lines), lines)
	}
	if _, ok := lines[0]["answers"]; !ok {
		t.Errorf("first line carries no answers: %v", lines[0])
	}
	if msg, _ := lines[1]["error"].(string); !strings.Contains(msg, "bad scenario line") {
		t.Errorf("terminal line = %v, want bad-scenario error", lines[1])
	}
}

func TestCompressAndStatsEndpoints(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/compress", "application/json",
		strings.NewReader(`{"bound":2,"strategy":"greedy"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d, want 200", resp.StatusCode)
	}
	var comp struct {
		Strategy  string `json:"strategy"`
		Monomials int    `json:"monomials"`
		Adequate  bool   `json:"adequate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&comp); err != nil {
		t.Fatal(err)
	}
	if comp.Strategy != "greedy" || !comp.Adequate || comp.Monomials != 2 {
		t.Errorf("compress = %+v, want adequate greedy at 2 monomials", comp)
	}

	// The compression is visible in /stats and scenario answers.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st session.Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.Compressed || st.Strategy != "greedy" || st.Monomials != 2 {
		t.Errorf("stats = %+v, want compressed greedy at 2 monomials", st)
	}

	wresp, err := http.Post(ts.URL+"/whatif", "application/json",
		strings.NewReader(`{"assign":{"q1":0.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusOK {
		t.Fatalf("whatif on meta-variable: status = %d, want 200", wresp.StatusCode)
	}

	// The evaluation-path counters surface on the wire: the what-if above is
	// accounted as exactly one delta or full evaluation.
	sresp2, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp2.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(sresp2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"delta_evals", "full_evals", "sharded_evals", "stream_batches", "stream_max_batch"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("/stats is missing %q: %v", key, raw)
		}
	}
	if raw["delta_evals"].(float64)+raw["full_evals"].(float64) != 1 {
		t.Errorf("delta_evals %v + full_evals %v != 1 evaluated scenario",
			raw["delta_evals"], raw["full_evals"])
	}

	// Bad strategy and bad JSON are 400s.
	for _, body := range []string{`{"bound":2,"strategy":"nope"}`, `{{`} {
		bresp, err := http.Post(ts.URL+"/compress", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		bresp.Body.Close()
		if bresp.StatusCode != http.StatusBadRequest {
			t.Errorf("compress %q: status = %d, want 400", body, bresp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
}

// newSemiringServer starts a server whose default session holds a set with
// natural coefficients — evaluable in every wire-selectable carrier (the
// fractional testSet coefficients are rejected by bool/count/tropical/
// minmax compilation).
func newSemiringServer(t *testing.T) (*httptest.Server, *session.Engine) {
	t.Helper()
	ts, reg := newRegistryServer(t)
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"2·p1·m1 + 3·p1·m3 + 4·f1·m1 + 5·f1·m3"))
	sess, err := reg.Create("default", set, testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	return ts, sess.Engine()
}

func postWhatIf(t *testing.T, url, body string) (int, any) {
	t.Helper()
	resp, err := http.Post(url+"/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out struct {
		Answers []struct {
			Tag   string `json:"tag"`
			Value any    `json:"value"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 1 || out.Answers[0].Tag != "zip 10001" {
		t.Fatalf("answers = %+v, want one for zip 10001", out.Answers)
	}
	return resp.StatusCode, out.Answers[0].Value
}

// TestWhatIfSemirings drives the whatif endpoint through every
// wire-selectable carrier: the "semiring" request field picks the evaluation
// semiring, answers come back in that carrier's JSON shape, and the
// non-finite minmax identity rides the wire as the string "+Inf".
func TestWhatIfSemirings(t *testing.T) {
	ts, e := newSemiringServer(t)
	// 2·p1·m1 + 3·p1·m3 + 4·f1·m1 + 5·f1·m3 in each carrier.
	for name, tc := range map[string]struct {
		body string
		want any
	}{
		"bool deleted":    {`{"semiring":"bool","assign":{"m1":0,"m3":0}}`, false},
		"bool survives":   {`{"semiring":"bool","assign":{"m1":0,"m3":1}}`, true},
		"count":           {`{"semiring":"count","assign":{"m1":2,"m3":0}}`, 12.0}, // 2·2 + 4·2
		"tropical":        {`{"semiring":"tropical","assign":{"m1":1,"m3":2}}`, 1.0},
		"minmax":          {`{"semiring":"minmax","assign":{"m1":3,"m3":7}}`, 7.0},
		"minmax identity": {`{"semiring":"minmax","assign":{}}`, "+Inf"},
		"float default":   {`{"assign":{"m1":1,"m3":1}}`, 14.0},
	} {
		status, got := postWhatIf(t, ts.URL, tc.body)
		if status != http.StatusOK {
			t.Errorf("%s: status = %d, want 200", name, status)
			continue
		}
		if got != tc.want {
			t.Errorf("%s: value = %v (%T), want %v", name, got, got, tc.want)
		}
	}
	// Per-carrier accounting surfaces in Stats.
	st := e.Stats()
	for _, kind := range []string{"bool", "count", "tropical", "minmax"} {
		if st.Semirings[kind].Scenarios == 0 {
			t.Errorf("Stats.Semirings[%q].Scenarios = 0, want > 0", kind)
		}
	}
	if _, ok := st.Semirings["float"]; ok {
		t.Error("float accounting leaked into Stats.Semirings")
	}
}

// TestWhatIfSemiringErrors covers the two request-level failures: an unknown
// semiring name, and a carrier the session's provenance cannot compile into
// (fractional coefficients under the natural-coefficient carriers).
func TestWhatIfSemiringErrors(t *testing.T) {
	ts, _ := newTestServer(t) // fractional coefficients (220.8, …)
	for name, body := range map[string]string{
		"unknown semiring":       `{"semiring":"galois","assign":{"m1":1}}`,
		"fractional under count": `{"semiring":"count","assign":{"m1":1}}`,
		"fractional under bool":  `{"semiring":"bool","assign":{"m1":1}}`,
		"bad value under count":  `{"semiring":"count","assign":{"m1":0.5}}`,
	} {
		resp, err := http.Post(ts.URL+"/whatif", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestStreamEndpointSemiring streams scenarios under ?semiring=: answers
// arrive in the carrier's shape, per-scenario errors stay in-band, and the
// float accounting is untouched.
func TestStreamEndpointSemiring(t *testing.T) {
	ts, e := newSemiringServer(t)
	body := strings.Join([]string{
		`{"assign":{"m1":0,"m3":0}}`,
		`{"assign":{"bogus":1}}`,
		`{"assign":{"m1":0,"m3":1}}`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/whatif/stream?semiring=bool", "application/x-ndjson",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var lines []streamLine
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var l streamLine
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %+v", len(lines), lines)
	}
	if got := lines[0].Answers[0].Value; got != false {
		t.Errorf("deleted scenario = %v, want false", got)
	}
	if lines[1].Error == "" {
		t.Error("unknown-variable line did not carry an in-band error")
	}
	if got := lines[2].Answers[0].Value; got != true {
		t.Errorf("surviving scenario = %v, want true", got)
	}
	st := e.Stats()
	if st.Semirings["bool"].Scenarios != 2 {
		t.Errorf("bool scenarios = %d, want 2", st.Semirings["bool"].Scenarios)
	}
	if st.Scenarios != 0 {
		t.Errorf("float scenario counter = %d, want 0", st.Scenarios)
	}
}

// TestStreamEndpointSemiringRejected: an unknown ?semiring= fails the whole
// stream up front with a 400.
func TestStreamEndpointSemiringRejected(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/whatif/stream?semiring=nope", "application/x-ndjson",
		strings.NewReader(`{"assign":{"m1":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}
