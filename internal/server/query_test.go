package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// postQuery posts one ScenQL statement and decodes the JSON response.
func postQuery(t *testing.T, url, stmt string) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(map[string]string{"query": stmt})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("bad response body: %v", err)
	}
	return resp.StatusCode, out
}

func TestQueryEndpoint(t *testing.T) {
	ts, e := newTestServer(t)
	status, out := postQuery(t, ts.URL+"/v1/sessions/default/query", "m1 IN [0:1:0.5] LIMIT 2")
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	if out["semiring"] != "float" || out["scenarios"] != 2.0 {
		t.Fatalf("header = %v", out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	row := rows[0].(map[string]any)
	if row["index"] != 0.0 || row["assign"].(map[string]any)["m1"] != 0.0 {
		t.Fatalf("row 0 = %v", row)
	}
	if _, ok := row["answers"].([]any); !ok {
		t.Fatalf("row 0 has no answers: %v", row)
	}
	if st := e.Stats(); st.Queries != 1 {
		t.Errorf("Stats.Queries = %d, want 1", st.Queries)
	}
}

func TestQueryEndpointExplain(t *testing.T) {
	ts, _ := newTestServer(t)
	status, out := postQuery(t, ts.URL+"/v1/sessions/default/query",
		"EXPLAIN m1 IN [0:1:0.5] ORDER BY ans[0] DESC LIMIT 2")
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	if out["statement"] == nil || out["scenarios"] != 3.0 {
		t.Fatalf("explain = %v", out)
	}
	plan := out["plan"].(map[string]any)
	if plan["node"] != "topk" {
		t.Fatalf("plan root = %v", plan["node"])
	}
	eval := plan["input"].(map[string]any)
	if eval["node"] != "eval" || eval["routes"] == nil || eval["cost_model"] == nil {
		t.Fatalf("eval node = %v", eval)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	url := ts.URL + "/v1/sessions/default/query"
	for _, stmt := range []string{
		"m1 IN [0:1:",                // parse error
		"nosuch IN [0:1:0.5]",        // unknown variable
		"m1 IN [0:1:0.5] USING nope", // unknown semiring
	} {
		status, out := postQuery(t, url, stmt)
		if status != http.StatusBadRequest || out["error"] == nil {
			t.Errorf("%q: status=%d body=%v, want 400 with error", stmt, status, out)
		}
	}
}

func TestQueryStreamEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	body := `{"query": "m1 IN [0:1:0.5] m3 IN [0:1:0.5]"}`
	resp, err := http.Post(ts.URL+"/v1/sessions/default/query/stream",
		"application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	scan := bufio.NewScanner(resp.Body)
	if !scan.Scan() {
		t.Fatal("no header line")
	}
	var header queryStreamHeader
	if err := json.Unmarshal(scan.Bytes(), &header); err != nil {
		t.Fatalf("bad header %q: %v", scan.Text(), err)
	}
	if header.Semiring != "float" || header.Scenarios != 9 {
		t.Fatalf("header = %+v", header)
	}
	var rows []queryRowJSON
	for scan.Scan() {
		var row queryRowJSON
		if err := json.Unmarshal(scan.Bytes(), &row); err != nil {
			t.Fatalf("bad row %q: %v", scan.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("streamed %d rows, want 9", len(rows))
	}
	for i, row := range rows {
		if row.Index != int64(i) || row.Error != "" || len(row.Answers) == 0 {
			t.Fatalf("row %d = %+v", i, row)
		}
	}
}

func TestQueryStreamEndpointExplain(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/sessions/default/query/stream",
		"application/json", strings.NewReader(`{"query": "EXPLAIN m1 IN [0:1:0.5]"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	scan := bufio.NewScanner(resp.Body)
	var lines []string
	for scan.Scan() {
		lines = append(lines, scan.Text())
	}
	if len(lines) != 1 {
		t.Fatalf("EXPLAIN stream wrote %d lines, want 1: %v", len(lines), lines)
	}
	var plan map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &plan); err != nil {
		t.Fatal(err)
	}
	if plan["statement"] == nil || plan["plan"] == nil {
		t.Fatalf("explain line = %v", plan)
	}
}

// TestEncodeAssign pins the hand-rolled assign encoder byte-for-byte to
// encoding/json's map output across float forms and keys that need
// escaping.
func TestEncodeAssign(t *testing.T) {
	for _, assign := range []map[string]float64{
		{"m1": 0, "m3": 1},
		{"b": -0.30000000000000004, "a": 2.5, "zz": 1e21, "q": 3.2e-7},
		{"x": 1e-6, "y": 123456789.125, "neg": -7},
		{"weird \"key\"\\n": 1, "ünïcode": 2, "a<b&c>d": 3},
		{"single": 42},
	} {
		want, err := json.Marshal(assign)
		if err != nil {
			t.Fatal(err)
		}
		if got := encodeAssign(assign); string(got) != string(want) {
			t.Errorf("encodeAssign(%v) = %s, want %s", assign, got, want)
		}
	}
	if got := encodeAssign(nil); got != nil {
		t.Errorf("encodeAssign(nil) = %s, want nil", got)
	}
}

// TestStreamEndpointLiteralLines exercises the shared scenario-literal
// parser on the what-if stream: bare "x=1" lines interleave with JSON
// lines, and a malformed literal terminates the stream with a positioned
// error, exactly like malformed JSON.
func TestStreamEndpointLiteralLines(t *testing.T) {
	ts, _ := newTestServer(t)
	body := strings.Join([]string{
		`m1=1, m3=1`,
		`{"assign":{"m1":0,"m3":0}}`,
		`m1 = 0.5 , m3 = 0.5`,
	}, "\n")
	resp, err := http.Post(ts.URL+"/v1/sessions/default/whatif/stream",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []streamLine
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var l streamLine
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad response line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %+v", len(lines), lines)
	}
	for i, l := range lines {
		if l.Error != "" || len(l.Answers) == 0 {
			t.Fatalf("line %d = %+v", i, l)
		}
	}

	resp, err = http.Post(ts.URL+"/v1/sessions/default/whatif/stream",
		"application/x-ndjson", strings.NewReader("m1=oops"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed literal status = %d, want 400", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["error"], "1:4") {
		t.Fatalf("error %q does not carry the literal's position", out["error"])
	}
}
