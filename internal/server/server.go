// Package server exposes a session Engine over HTTP/JSON, so scenario
// streams can be ingested by processes that do not load the library — the
// paper's compress-once/ask-many workload as a service. The wire surface is
// deliberately small:
//
//	POST /whatif          one scenario in, one answer vector out (JSON)
//	POST /whatif/stream   NDJSON in, NDJSON out: one line per scenario,
//	                      answers flushed per line as they are computed
//	POST /compress        run a compression strategy on the live session
//	GET  /stats           session statistics (sizes, losses, counters)
//	GET  /healthz         liveness
//
// Scenario lines are {"assign": {"var": value, …}}. Per-scenario semantic
// errors (an unknown variable, say) are reported in-band as
// {"index": i, "error": "…"} without tearing down the stream; malformed
// JSON terminates the stream with a final {"error": "…"} line, since the
// remainder of the body cannot be trusted to be line-aligned.
package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"provabs/internal/hypo"
	"provabs/internal/session"
)

// maxLineBytes bounds one NDJSON scenario line (scenarios assign at most a
// few values per provenance variable; a megabyte is far beyond any sane
// request).
const maxLineBytes = 1 << 20

// Server serves one session Engine.
type Server struct {
	engine *session.Engine
}

// New returns a Server over the engine.
func New(e *session.Engine) *Server { return &Server{engine: e} }

// Handler returns the HTTP handler serving the what-if API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /whatif", s.handleWhatIf)
	mux.HandleFunc("POST /whatif/stream", s.handleStream)
	mux.HandleFunc("POST /compress", s.handleCompress)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// scenarioRequest is one hypothetical scenario on the wire.
type scenarioRequest struct {
	Assign map[string]float64 `json:"assign"`
}

func (req *scenarioRequest) scenario() *hypo.Scenario {
	sc := hypo.NewScenario()
	for name, x := range req.Assign {
		sc.Set(name, x)
	}
	return sc
}

// answerJSON is one tagged answer on the wire.
type answerJSON struct {
	Tag   string  `json:"tag"`
	Value float64 `json:"value"`
}

func toAnswerJSON(answers []hypo.Answer) []answerJSON {
	out := make([]answerJSON, len(answers))
	for i, a := range answers {
		out[i] = answerJSON{Tag: a.Tag, Value: a.Value}
	}
	return out
}

// streamLine is one NDJSON response line of /whatif/stream.
type streamLine struct {
	Index   int          `json:"index"`
	Answers []answerJSON `json:"answers,omitempty"`
	Error   string       `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	var req scenarioRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxLineBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad scenario: %w", err))
		return
	}
	answers, err := s.engine.WhatIf(req.scenario())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"answers": toAnswerJSON(answers)})
}

// handleStream is the streaming batch endpoint: scenarios are read off the
// request body line by line and fed to Engine.Stream; each answer line is
// flushed as soon as it is computed, so a long-lived client sees results
// while it is still sending scenarios.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	in := make(chan *hypo.Scenario)
	results := s.engine.Stream(ctx, in)

	// Feed the engine from the body. The read error is mutex-guarded: on
	// context cancellation the results channel can close while the reader
	// goroutine is still finishing.
	var readMu sync.Mutex
	var readErr error
	setReadErr := func(err error) {
		readMu.Lock()
		readErr = err
		readMu.Unlock()
	}
	go func() {
		defer close(in)
		scan := bufio.NewScanner(r.Body)
		scan.Buffer(make([]byte, 0, 64*1024), maxLineBytes)
		for scan.Scan() {
			line := bytes.TrimSpace(scan.Bytes())
			if len(line) == 0 {
				continue
			}
			var req scenarioRequest
			if err := json.Unmarshal(line, &req); err != nil {
				setReadErr(fmt.Errorf("bad scenario line: %v", err))
				return
			}
			select {
			case in <- req.scenario():
			case <-ctx.Done():
				return
			}
		}
		setReadErr(scan.Err())
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for res := range results {
		line := streamLine{Index: res.Index}
		if res.Err != nil {
			line.Error = res.Err.Error()
		} else {
			line.Answers = toAnswerJSON(res.Answers)
		}
		if err := enc.Encode(line); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	readMu.Lock()
	err := readErr
	readMu.Unlock()
	if err != nil {
		enc.Encode(map[string]string{"error": err.Error()})
	}
}

// compressRequest tunes a server-side compression run.
type compressRequest struct {
	Bound     int     `json:"bound"`
	Strategy  string  `json:"strategy,omitempty"`
	Fraction  float64 `json:"fraction,omitempty"`   // online
	Seed      int64   `json:"seed,omitempty"`       // online
	TimeoutMS int64   `json:"timeout_ms,omitempty"` // summarize
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request) {
	var req compressRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxLineBytes)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad compress request: %w", err))
		return
	}
	strategy, err := session.ParseStrategy(req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := []session.CompressOption{session.WithStrategy(strategy)}
	if req.Fraction > 0 {
		opts = append(opts, session.WithSamplingFraction(req.Fraction))
	}
	if req.Seed != 0 {
		opts = append(opts, session.WithSeed(req.Seed))
	}
	if req.TimeoutMS > 0 {
		opts = append(opts, session.WithTimeout(time.Duration(req.TimeoutMS)*time.Millisecond))
	}
	comp, err := s.engine.Compress(req.Bound, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{
		"strategy":      comp.Strategy,
		"monomial_loss": comp.ML,
		"variable_loss": comp.VL,
		"adequate":      comp.Adequate,
		"monomials":     comp.Abstracted.Size(),
		"variables":     comp.Abstracted.Granularity(),
		"elapsed_ms":    comp.Elapsed.Milliseconds(),
	}
	if comp.VVS != nil {
		resp["vvs"] = comp.VVS.Labels()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}
