// Package server exposes a multi-tenant session Registry over HTTP/JSON —
// the paper's compress-once/ask-many workload as a service, with one
// process hosting many named provenance sessions. The surface is versioned
// and resource-oriented, mounted at /v1:
//
//	POST   /v1/sessions                       create a session (inline
//	                                          provenance, a file path inside
//	                                          the configured session dir —
//	                                          see WithSessionDir — or an
//	                                          exported snapshot via
//	                                          snapshot_b64)
//	GET    /v1/sessions                       list sessions, name-sorted
//	GET    /v1/sessions/{name}                one session's info + stats
//	DELETE /v1/sessions/{name}                close it (ends its streams)
//	POST   /v1/sessions/{name}/compress       run a compression strategy
//	POST   /v1/sessions/{name}/whatif         one scenario in, answers out
//	POST   /v1/sessions/{name}/whatif/stream  NDJSON in, NDJSON out, flushed
//	                                          per line as answers compute
//	POST   /v1/sessions/{name}/query          one ScenQL statement in, the
//	                                          sweep's rows (or the EXPLAIN
//	                                          plan tree) out
//	POST   /v1/sessions/{name}/query/stream   ScenQL in, NDJSON rows out,
//	                                          generated server-side and
//	                                          flushed per scenario
//	POST   /v1/sessions/{name}/add            NDJSON {"tag","poly"} lines in,
//	                                          per-line acks out; under a
//	                                          durable registry an ack means
//	                                          the add is fsynced
//	POST   /v1/sessions/{name}/export         the session as a versioned,
//	                                          checksummed snapshot (round-
//	                                          trips through create's
//	                                          snapshot_b64)
//	GET    /v1/sessions/{name}/stats          per-session statistics
//	GET    /v1/stats                          aggregate across all sessions
//	GET    /healthz                           liveness
//
// The pre-v1 unversioned routes (POST /whatif, POST /whatif/stream,
// POST /compress, GET /stats) remain as thin aliases onto the registry's
// designated default session; they answer with a "Deprecation: true"
// header and will be removed once clients migrate.
//
// Scenario lines are {"assign": {"var": value, …}}, or — on streams — a
// bare ScenQL scenario literal like "x=0.5, y=1". A what-if body may add
// "semiring": "bool"|"count"|"tropical"|"minmax" to evaluate in that
// provenance semiring instead of the float default (deletion propagation,
// derivation counting, min-plus cost, max-min clearance); streams pick the
// carrier once for the whole connection with ?semiring=. Non-finite
// tropical/minmax answers are encoded as the strings "+Inf"/"-Inf".
// Per-scenario semantic
// errors (an unknown variable, say) are reported in-band as
// {"index": i, "error": "…"} without tearing down the stream; malformed
// JSON terminates the stream with a final {"error": "…"} line, since the
// remainder of the body cannot be trusted to be line-aligned. Requests
// exceeding the body limits are answered with 413; unknown session names
// with 404; creating a name already in use with 409. With WithMaxStreams a
// saturated server refuses new streams with 503 + Retry-After, so clients
// back off instead of hammering.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/registry"
	"provabs/internal/scenql"
	"provabs/internal/semiring"
	"provabs/internal/session"
)

// defaultMaxLineBytes bounds one scenario or compress request body and one
// NDJSON scenario line (scenarios assign at most a few values per
// provenance variable; a megabyte is far beyond any sane request).
const defaultMaxLineBytes = 1 << 20

// defaultMaxCreateBytes bounds a session-create body, which may carry a
// whole encoded provenance set inline.
const defaultMaxCreateBytes = 64 << 20

// maxStreamDrainBytes bounds how much of an unread stream body the handler
// consumes before returning. A full-duplex handler that returns with the
// body part-read leaves the drain to the server's post-handler Close; an
// EOF first reached there starts a background read that races the next
// request's read on a reused keep-alive connection (net/http's "invalid
// concurrent Body.Read call" panic). Draining in-handler — up to the same
// bound net/http uses for non-duplex handlers — reaches EOF before the
// handler returns, and past the bound the server closes the connection
// instead of reusing it.
const maxStreamDrainBytes = 256 << 10

// Server serves a session registry.
type Server struct {
	reg        *registry.Registry
	logger     *log.Logger
	maxLine    int64
	maxCreate  int64
	sessionDir string // root for create-by-path ("" = path loading disabled)

	// streamSem bounds concurrently open NDJSON streams (nil = unbounded).
	// At the bound new streams answer 503 with Retry-After — backpressure a
	// well-behaved client honors by backing off instead of hammering.
	streamSem chan struct{}

	// draining is closed by Drain: live NDJSON streams stop reading new
	// input, finish what is in flight, and return, letting an
	// http.Server.Shutdown complete within its deadline.
	drainOnce sync.Once
	draining  chan struct{}
}

// Option configures a Server.
type Option func(*Server)

// WithLogger routes request-handling diagnostics (response-write failures,
// stream teardowns) to l instead of the process default logger.
func WithLogger(l *log.Logger) Option {
	return func(s *Server) { s.logger = l }
}

// WithMaxLineBytes overrides the per-request / per-stream-line body limit.
func WithMaxLineBytes(n int64) Option {
	return func(s *Server) { s.maxLine = n }
}

// WithMaxCreateBytes overrides the session-create body limit.
func WithMaxCreateBytes(n int64) Option {
	return func(s *Server) { s.maxCreate = n }
}

// WithMaxStreams bounds the concurrently open NDJSON streams (what-if,
// query and add streams together). Past the bound a new stream is refused
// with 503 + Retry-After rather than queued without limit — the
// backpressure half of serving many tenants from one process. n <= 0
// leaves streams unbounded.
func WithMaxStreams(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.streamSem = make(chan struct{}, n)
		}
	}
}

// WithSessionDir enables creating sessions from server-side provenance
// files: a create request's "path" is resolved relative to dir and must
// stay inside it (no absolute paths, no traversal). Without this option
// path loading is disabled and only inline provenance_b64 is accepted —
// a network client must never pick arbitrary files off the server's disk.
func WithSessionDir(dir string) Option {
	return func(s *Server) { s.sessionDir = dir }
}

// New returns a Server over the registry.
func New(reg *registry.Registry, opts ...Option) *Server {
	s := &Server{
		reg:       reg,
		logger:    log.Default(),
		maxLine:   defaultMaxLineBytes,
		maxCreate: defaultMaxCreateBytes,
		draining:  make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Registry returns the registry the server routes into.
func (s *Server) Registry() *registry.Registry { return s.reg }

// Drain begins a graceful shutdown of the streaming surface: every live
// NDJSON stream stops reading new input (in-flight micro-batches still
// finish and flush), so a subsequent http.Server.Shutdown is not held
// open by clients that keep their request bodies streaming. Idempotent.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// unblockOnDrain arms a watcher that kicks a blocked request-body read
// when the server drains (or stops watching when the request ends). The
// zero read deadline trick: a deadline in the past fails the in-flight
// Read with os.ErrDeadlineExceeded, which stream handlers treat as a
// clean end of input.
func (s *Server) unblockOnDrain(ctx context.Context, rc *http.ResponseController) {
	go func() {
		select {
		case <-s.draining:
			rc.SetReadDeadline(time.Now()) //nolint:errcheck // best effort; HTTP/2 lacks it
		case <-ctx.Done():
		}
	}()
}

// drainedErr filters the read error a drain kick produces: past the
// deadline the body read fails with os.ErrDeadlineExceeded, which is the
// expected shape of a graceful drain, not a client error.
func (s *Server) drainedErr(err error) error {
	if err == nil || errors.Is(err, os.ErrDeadlineExceeded) {
		return nil
	}
	select {
	case <-s.draining:
		// Some transports surface the kicked read differently; during a
		// drain any read error is the drain.
		return nil
	default:
		return err
	}
}

// Handler returns the HTTP handler serving the v1 API and the legacy
// aliases. Method mismatches on any route answer 405 via the mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{name}", s.withSession(s.handleSessionInfo))
	mux.HandleFunc("DELETE /v1/sessions/{name}", s.handleDelete)
	mux.HandleFunc("POST /v1/sessions/{name}/compress", s.withSession(s.handleCompress))
	mux.HandleFunc("POST /v1/sessions/{name}/whatif", s.withSession(s.handleWhatIf))
	mux.HandleFunc("POST /v1/sessions/{name}/whatif/stream", s.withSession(s.handleStream))
	mux.HandleFunc("POST /v1/sessions/{name}/query", s.withSession(s.handleQuery))
	mux.HandleFunc("POST /v1/sessions/{name}/query/stream", s.withSession(s.handleQueryStream))
	mux.HandleFunc("POST /v1/sessions/{name}/add", s.withSession(s.handleAddStream))
	mux.HandleFunc("POST /v1/sessions/{name}/export", s.withSession(s.handleExport))
	mux.HandleFunc("GET /v1/sessions/{name}/stats", s.withSession(s.handleStats))
	mux.HandleFunc("GET /v1/stats", s.handleAggregateStats)

	// Legacy, pre-registry routes: thin aliases onto the default session.
	mux.HandleFunc("POST /whatif", s.withDefault(s.handleWhatIf))
	mux.HandleFunc("POST /whatif/stream", s.withDefault(s.handleStream))
	mux.HandleFunc("POST /compress", s.withDefault(s.handleCompress))
	mux.HandleFunc("GET /stats", s.withDefault(s.handleStats))

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// acquireStream claims a stream slot when a bound is configured. When the
// server is saturated it answers 503 with Retry-After (the satellite
// contract: a backpressure response always tells the client when to come
// back) and returns ok=false with release=nil.
func (s *Server) acquireStream(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.streamSem == nil {
		return func() {}, true
	}
	select {
	case s.streamSem <- struct{}{}:
		return func() { <-s.streamSem }, true
	default:
		w.Header().Set("Retry-After", "1")
		s.writeError(w, r, http.StatusServiceUnavailable,
			fmt.Errorf("server is at its concurrent-stream limit (%d); retry shortly", cap(s.streamSem)))
		return nil, false
	}
}

// sessionHandler is a handler bound to one resolved session.
type sessionHandler func(w http.ResponseWriter, r *http.Request, sess *registry.Session)

// withSession resolves the {name} path segment against the registry.
func (s *Server) withSession(h sessionHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.reg.Get(r.PathValue("name"))
		if err != nil {
			s.writeError(w, r, http.StatusNotFound, err)
			return
		}
		h(w, r, sess)
	}
}

// withDefault routes a legacy unversioned request onto the registry's
// default session, tagging the response as deprecated.
func (s *Server) withDefault(h sessionHandler) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.reg.Default()
		if err != nil {
			s.writeError(w, r, http.StatusNotFound,
				fmt.Errorf("%w (legacy route %s needs a default session; use /v1/sessions/{name}%s)",
					err, r.URL.Path, r.URL.Path))
			return
		}
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("</v1/sessions/%s%s>; rel=\"successor-version\"", sess.Name(), r.URL.Path))
		h(w, r, sess)
	}
}

// writeJSON encodes one response body. Encode failures cannot be reported
// to the client (the status line is gone) but are logged once per request
// so dead-client churn is visible server-side.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Printf("server: %s %s: writing response: %v", r.Method, r.URL.Path, err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.writeJSON(w, r, status, map[string]string{"error": err.Error()})
}

// decodeJSON decodes one bounded JSON request body. An over-limit body is
// answered 413 (the satellite contract: *http.MaxBytesError, not a decode
// 400), anything else malformed 400. Returns false once the error response
// has been written.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any, what string) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		s.writeError(w, r, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%s: request body exceeds the %d-byte limit", what, tooBig.Limit))
		return false
	}
	s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad %s: %w", what, err))
	return false
}

// createRequest is the POST /v1/sessions body. Exactly one provenance
// source must be set: Path (a server-side .pvab file) or ProvenanceB64
// (an Encode()d set, base64). Trees are optional compact abstraction
// trees; the remaining fields tune the engine.
type createRequest struct {
	Name          string   `json:"name"`
	Path          string   `json:"path,omitempty"`
	ProvenanceB64 string   `json:"provenance_b64,omitempty"`
	Trees         []string `json:"trees,omitempty"`
	Default       bool     `json:"default,omitempty"`
	Workers       int      `json:"workers,omitempty"`
	DeltaCutoff   float64  `json:"delta_cutoff,omitempty"`
	StreamBuffer  int      `json:"stream_buffer,omitempty"`
	StreamBatch   int      `json:"stream_batch,omitempty"`

	// SnapshotB64 imports a session from an exported snapshot (the body a
	// POST .../export returns, base64). Mutually exclusive with every
	// other provenance source: the snapshot carries the set, the trees,
	// and any compression state of the exporting session.
	SnapshotB64 string `json:"snapshot_b64,omitempty"`
}

// loadSet materializes the request's provenance source.
func (s *Server) loadSet(req *createRequest) (*provenance.Set, error) {
	switch {
	case req.Path != "" && req.ProvenanceB64 != "":
		return nil, fmt.Errorf("create: path and provenance_b64 are mutually exclusive")
	case req.Path != "":
		if s.sessionDir == "" {
			return nil, fmt.Errorf("create: server-side path loading is disabled (start the server with a session dir, or send provenance_b64)")
		}
		if !filepath.IsLocal(req.Path) {
			return nil, fmt.Errorf("create: path must be relative and stay inside the session dir")
		}
		f, err := os.Open(filepath.Join(s.sessionDir, req.Path))
		if err != nil {
			return nil, fmt.Errorf("create: %w", err)
		}
		defer f.Close()
		return provenance.Decode(f)
	case req.ProvenanceB64 != "":
		raw, err := base64.StdEncoding.DecodeString(req.ProvenanceB64)
		if err != nil {
			return nil, fmt.Errorf("create: bad provenance_b64: %w", err)
		}
		return provenance.Decode(bytes.NewReader(raw))
	}
	return nil, fmt.Errorf("create: provide path or provenance_b64")
}

// loadForest parses the optional compact abstraction trees.
func (req *createRequest) loadForest() (*abstree.Forest, error) {
	if len(req.Trees) == 0 {
		return nil, nil
	}
	trees := make([]*abstree.Tree, 0, len(req.Trees))
	for _, src := range req.Trees {
		t, err := abstree.ParseTree(src)
		if err != nil {
			return nil, fmt.Errorf("create: %w", err)
		}
		trees = append(trees, t)
	}
	return abstree.NewForest(trees...)
}

// sessionInfo is the wire shape of one session resource.
type sessionInfo struct {
	Name    string        `json:"name"`
	Created time.Time     `json:"created"`
	Default bool          `json:"default"`
	Stats   session.Stats `json:"stats"`
}

func (s *Server) info(sess *registry.Session) sessionInfo {
	return sessionInfo{
		Name:    sess.Name(),
		Created: sess.Created(),
		Default: s.reg.DefaultName() == sess.Name(),
		Stats:   sess.Engine().Stats(),
	}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !s.decodeJSON(w, r, s.maxCreate, &req, "create request") {
		return
	}
	if req.SnapshotB64 != "" {
		s.handleCreateFromSnapshot(w, r, &req)
		return
	}
	set, err := s.loadSet(&req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	forest, err := req.loadForest()
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	sess, err := s.reg.Create(req.Name, set, forest,
		session.WithWorkers(req.Workers),
		session.WithDeltaCutoff(req.DeltaCutoff),
		session.WithStreamBuffer(req.StreamBuffer),
		session.WithStreamBatch(req.StreamBatch))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, registry.ErrExists) {
			status = http.StatusConflict
		}
		s.writeError(w, r, status, err)
		return
	}
	if req.Default {
		if err := s.reg.SetDefault(sess.Name()); err != nil {
			// The session was just created; losing it to a close race is the
			// only path here, and the client should know.
			s.writeError(w, r, http.StatusConflict, err)
			return
		}
	}
	s.writeJSON(w, r, http.StatusCreated, s.info(sess))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.reg.List()
	infos := make([]sessionInfo, len(sessions))
	for i, sess := range sessions {
		infos[i] = s.info(sess)
	}
	s.writeJSON(w, r, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	s.writeJSON(w, r, http.StatusOK, s.info(sess))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Close(name); err != nil {
		s.writeError(w, r, http.StatusNotFound, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]string{"closed": name})
}

func (s *Server) handleAggregateStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, s.reg.Stats())
}

// scenarioRequest is one hypothetical scenario on the wire. Semiring picks
// the evaluation carrier ("" and "float" are the numeric default; "bool",
// "count", "tropical", "minmax" select that carrier's kernel — see
// semiring.ParseKind for the accepted aliases).
type scenarioRequest struct {
	Assign   map[string]float64 `json:"assign"`
	Semiring string             `json:"semiring,omitempty"`
}

func (req *scenarioRequest) scenario() *hypo.Scenario {
	sc := hypo.NewScenario()
	for name, x := range req.Assign {
		sc.Set(name, x)
	}
	return sc
}

// answerJSON is one tagged answer on the wire. Value is the evaluation
// carrier's value — a float64 magnitude, a bool, an int64 count — except
// that the non-finite tropical/minmax identities, which JSON cannot carry
// as numbers, are encoded as the strings "+Inf" and "-Inf".
type answerJSON struct {
	Tag   string `json:"tag"`
	Value any    `json:"value"`
}

// wireValue maps a carrier value to its JSON encoding (±Inf as strings;
// encoding/json rejects non-finite floats).
func wireValue(v any) any {
	if f, ok := v.(float64); ok && math.IsInf(f, 0) {
		if f > 0 {
			return "+Inf"
		}
		return "-Inf"
	}
	return v
}

func toAnswerJSON(answers []hypo.ValueAnswer) []answerJSON {
	out := make([]answerJSON, len(answers))
	for i, a := range answers {
		out[i] = answerJSON{Tag: a.Tag, Value: wireValue(a.Value)}
	}
	return out
}

// streamLine is one NDJSON response line of whatif/stream.
type streamLine struct {
	Index   int          `json:"index"`
	Answers []answerJSON `json:"answers,omitempty"`
	Error   string       `json:"error,omitempty"`
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	var req scenarioRequest
	if !s.decodeJSON(w, r, s.maxLine, &req, "scenario") {
		return
	}
	kind, err := semiring.ParseKind(req.Semiring)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	answers, err := sess.Engine().WhatIfIn(kind, req.scenario())
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, map[string]any{"answers": toAnswerJSON(answers)})
}

// handleStream is the streaming batch endpoint: scenarios are read off the
// request body line by line and fed to Engine.StreamIn; each answer line is
// flushed as soon as it is computed, so a long-lived client sees results
// while it is still sending scenarios. A ?semiring= query parameter picks
// the evaluation carrier for the whole stream (default float). The stream
// ends early when the client goes away (a failed write or flush) or the
// session is closed (DELETE /v1/sessions/{name} while streaming).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	releaseStream, ok := s.acquireStream(w, r)
	if !ok {
		return
	}
	defer releaseStream()
	kind, err := semiring.ParseKind(r.URL.Query().Get("semiring"))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	// The evaluation context dies with the request OR the session: closing
	// the session mid-stream cancels ctx, which tears down Engine.Stream's
	// goroutine and ends the response.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-sess.Done():
			cancel()
		case <-ctx.Done():
		}
	}()

	in := make(chan *hypo.Scenario)
	results := sess.Engine().StreamIn(ctx, kind, in)

	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	// A graceful drain must be able to end this stream even while the
	// reader goroutine below is blocked mid-Scan on a quiet client.
	s.unblockOnDrain(ctx, rc)

	// Feed the engine from the body. The read error is mutex-guarded: on
	// context cancellation the results channel can close while the reader
	// goroutine is still finishing.
	var readMu sync.Mutex
	var readErr error
	setReadErr := func(err error) {
		readMu.Lock()
		readErr = err
		readMu.Unlock()
	}
	go func() {
		defer close(in)
		drain := true
		defer func() {
			// See maxStreamDrainBytes: reach the body's EOF while the
			// handler is still running. Skipped when the request is being
			// torn down (ctx cancelled) — the connection is not reused then,
			// and a drain could block on a live client.
			if drain {
				io.Copy(io.Discard, io.LimitReader(r.Body, maxStreamDrainBytes)) //nolint:errcheck
			}
		}()
		scan := bufio.NewScanner(r.Body)
		// Scanner enforces max(cap(buf), limit), so the initial buffer must
		// not exceed the configured line limit.
		bufCap := 64 * 1024
		if int(s.maxLine) < bufCap {
			bufCap = int(s.maxLine)
		}
		scan.Buffer(make([]byte, 0, bufCap), int(s.maxLine))
		for scan.Scan() {
			line := bytes.TrimSpace(scan.Bytes())
			if len(line) == 0 {
				continue
			}
			var sc *hypo.Scenario
			if line[0] == '{' {
				var req scenarioRequest
				if err := json.Unmarshal(line, &req); err != nil {
					setReadErr(fmt.Errorf("bad scenario line: %v", err))
					return
				}
				sc = req.scenario()
			} else {
				// A bare line is a ScenQL scenario literal ("x=0.5, y=1"),
				// the same syntax the CLI's -set/-sets flags accept.
				var err error
				if sc, err = scenql.ParseAssignments(string(line)); err != nil {
					setReadErr(fmt.Errorf("bad scenario line: %v", err))
					return
				}
			}
			select {
			case in <- sc:
			case <-ctx.Done():
				drain = false
				return
			}
		}
		// A drain kick surfaces as a deadline error: treat it as a clean end
		// of input — scenarios already submitted still answer below.
		if err := s.drainedErr(scan.Err()); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				err = fmt.Errorf("scenario line exceeds the %d-byte limit: %w", s.maxLine, err)
			}
			setReadErr(err)
		}
	}()

	// Headers are deferred until the first result so a body that fails
	// before producing anything (an oversized first line, say) can still
	// get a proper error status instead of a 200 with a trailing error.
	// An HTTP/1 server drains the unread request body before its first
	// response write; without full duplex an interactive client that keeps
	// its request open would deadlock the first flush. (HTTP/2 is duplex
	// already and reports ErrNotSupported — safe to ignore.)
	if err := rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		s.logger.Printf("server: %s %s: full duplex: %v", r.Method, r.URL.Path, err)
	}
	wrote := false
	for res := range results {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		line := streamLine{Index: res.Index}
		if res.Err != nil {
			line.Error = res.Err.Error()
		} else {
			line.Answers = toAnswerJSON(res.Answers)
		}
		if err := enc.Encode(line); err != nil {
			s.logger.Printf("server: %s %s: stream write: %v", r.Method, r.URL.Path, err)
			return // client went away; cancel() stops the evaluation loop
		}
		// A failed flush is the earliest reliable dead-client signal for
		// NDJSON; stop evaluating instead of churning through the batch.
		if err := rc.Flush(); err != nil {
			s.logger.Printf("server: %s %s: stream flush: %v", r.Method, r.URL.Path, err)
			return
		}
	}
	readMu.Lock()
	err = readErr
	readMu.Unlock()
	if err == nil {
		return
	}
	if !wrote {
		// Nothing streamed yet: a real status line is still possible.
		status := http.StatusBadRequest
		if errors.Is(err, bufio.ErrTooLong) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, r, status, err)
		return
	}
	if encErr := enc.Encode(map[string]string{"error": err.Error()}); encErr != nil {
		s.logger.Printf("server: %s %s: stream terminal error write: %v", r.Method, r.URL.Path, encErr)
	}
}

// compressRequest tunes a server-side compression run.
type compressRequest struct {
	Bound     int     `json:"bound"`
	Strategy  string  `json:"strategy,omitempty"`
	Fraction  float64 `json:"fraction,omitempty"`   // online
	Seed      int64   `json:"seed,omitempty"`       // online
	TimeoutMS int64   `json:"timeout_ms,omitempty"` // summarize
}

func (s *Server) handleCompress(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	var req compressRequest
	if !s.decodeJSON(w, r, s.maxLine, &req, "compress request") {
		return
	}
	strategy, err := session.ParseStrategy(req.Strategy)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	opts := []session.CompressOption{session.WithStrategy(strategy)}
	if req.Fraction > 0 {
		opts = append(opts, session.WithSamplingFraction(req.Fraction))
	}
	if req.Seed != 0 {
		opts = append(opts, session.WithSeed(req.Seed))
	}
	if req.TimeoutMS > 0 {
		opts = append(opts, session.WithTimeout(time.Duration(req.TimeoutMS)*time.Millisecond))
	}
	comp, err := sess.Engine().Compress(req.Bound, opts...)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	resp := map[string]any{
		"session":       sess.Name(),
		"strategy":      comp.Strategy,
		"monomial_loss": comp.ML,
		"variable_loss": comp.VL,
		"adequate":      comp.Adequate,
		"monomials":     comp.Abstracted.Size(),
		"variables":     comp.Abstracted.Granularity(),
		"elapsed_ms":    comp.Elapsed.Milliseconds(),
	}
	if comp.VVS != nil {
		resp["vvs"] = comp.VVS.Labels()
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	s.writeJSON(w, r, http.StatusOK, sess.Engine().Stats())
}
