package server

// Durability-facing endpoints: the add-ingestion stream (write-ahead
// logged when the registry is durable), session export as a self-contained
// snapshot, and create-from-export import.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"provabs/internal/durable"
	"provabs/internal/registry"
	"provabs/internal/session"
)

// handleExport streams the session's state as a snapshot — the same
// versioned, checksummed binary the durable store keeps on disk. The body
// round-trips through create's snapshot_b64 to clone the session (its
// compression state included) here or on another server.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", sess.Name()+".pvsn"))
	if err := sess.Export(w); err != nil {
		// The status line may be gone; the truncated body fails the
		// importer's checksum, so a partial export cannot be mistaken for a
		// whole one.
		s.logger.Printf("server: %s %s: export: %v", r.Method, r.URL.Path, err)
	}
}

// handleCreateFromSnapshot is the import half of export: decode, validate
// (checksums, kernel consistency), restore without recompiling, register.
func (s *Server) handleCreateFromSnapshot(w http.ResponseWriter, r *http.Request, req *createRequest) {
	if req.Path != "" || req.ProvenanceB64 != "" || len(req.Trees) > 0 {
		s.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("create: snapshot_b64 is a complete session; path, provenance_b64 and trees must be empty"))
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.SnapshotB64)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("create: bad snapshot_b64: %w", err))
		return
	}
	st, _, err := durable.DecodeSnapshot(bytes.NewReader(raw))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("create: %w", err))
		return
	}
	eng, err := session.Restore(st,
		session.WithWorkers(req.Workers),
		session.WithDeltaCutoff(req.DeltaCutoff),
		session.WithStreamBuffer(req.StreamBuffer),
		session.WithStreamBatch(req.StreamBatch))
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("create: %w", err))
		return
	}
	sess, err := s.reg.Adopt(req.Name, eng)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, registry.ErrExists) {
			status = http.StatusConflict
		}
		s.writeError(w, r, status, err)
		return
	}
	if req.Default {
		if err := s.reg.SetDefault(sess.Name()); err != nil {
			s.writeError(w, r, http.StatusConflict, err)
			return
		}
	}
	s.writeJSON(w, r, http.StatusCreated, s.info(sess))
}

// addLine is one NDJSON line of the add-ingestion stream: a tag and a
// polynomial in text form ("2·x·y + 3·z"; * works as the product too).
type addLine struct {
	Tag  string `json:"tag"`
	Poly string `json:"poly"`
}

// ackLine is the per-add acknowledgement. Under a durable registry an ack
// without error means the add is fsynced — it survives any crash from
// here on. An in-band error (a malformed polynomial) skips that line and
// the stream continues; a persistence failure ends the stream, since
// later acks could not promise durability anymore.
type ackLine struct {
	Index int    `json:"index"`
	Error string `json:"error,omitempty"`
}

// handleAddStream ingests polynomials over NDJSON, full duplex: each line
// is applied (and, when durable, logged + fsynced) before its ack is
// flushed, so a client pipelining adds gets exact knowledge of what is
// durable when the connection dies. The stream ends early on session
// close or server drain — the ack sequence tells the client where it
// stopped.
func (s *Server) handleAddStream(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	releaseStream, ok := s.acquireStream(w, r)
	if !ok {
		return
	}
	defer releaseStream()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-sess.Done():
			cancel()
		case <-ctx.Done():
		}
	}()

	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		s.logger.Printf("server: %s %s: full duplex: %v", r.Method, r.URL.Path, err)
	}
	s.unblockOnDrain(ctx, rc)
	defer func() {
		// See maxStreamDrainBytes: reach the body's EOF in-handler so a
		// reused keep-alive connection never races a background drain.
		// Skipped when the request is being torn down (ctx cancelled) — the
		// connection is not reused then.
		if ctx.Err() == nil {
			io.Copy(io.Discard, io.LimitReader(r.Body, maxStreamDrainBytes)) //nolint:errcheck
		}
	}()

	scan := bufio.NewScanner(r.Body)
	bufCap := 64 * 1024
	if int(s.maxLine) < bufCap {
		bufCap = int(s.maxLine)
	}
	scan.Buffer(make([]byte, 0, bufCap), int(s.maxLine))

	wrote := false
	writeAck := func(ack ackLine) bool {
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		if err := enc.Encode(ack); err != nil {
			s.logger.Printf("server: %s %s: ack write: %v", r.Method, r.URL.Path, err)
			return false
		}
		if err := rc.Flush(); err != nil {
			s.logger.Printf("server: %s %s: ack flush: %v", r.Method, r.URL.Path, err)
			return false
		}
		return true
	}

	index := -1
	var terminal error
	for scan.Scan() {
		if sess.Closed() {
			break
		}
		line := bytes.TrimSpace(scan.Bytes())
		if len(line) == 0 {
			continue
		}
		index++
		var req addLine
		if err := json.Unmarshal(line, &req); err != nil {
			// Malformed JSON: the rest of the body cannot be trusted to be
			// line-aligned.
			terminal = fmt.Errorf("bad add line: %v", err)
			break
		}
		if req.Poly == "" {
			if !writeAck(ackLine{Index: index, Error: "add line needs a poly"}) {
				return
			}
			continue
		}
		// Parse and apply separately: a bad polynomial is this line's
		// problem only, but a failure applying a parsed one is a
		// persistence failure — acking later adds would promise a
		// durability the log can no longer provide.
		p, err := sess.Engine().ParsePoly(req.Poly)
		if err != nil {
			if !writeAck(ackLine{Index: index, Error: err.Error()}) {
				return
			}
			continue
		}
		if err := sess.Add(req.Tag, p); err != nil {
			terminal = err
			break
		}
		if !writeAck(ackLine{Index: index}) {
			return
		}
	}
	if terminal == nil {
		terminal = s.drainedErr(scan.Err())
		if terminal != nil && errors.Is(terminal, bufio.ErrTooLong) {
			terminal = fmt.Errorf("add line exceeds the %d-byte limit: %w", s.maxLine, terminal)
		}
	}
	if terminal == nil {
		return
	}
	if !wrote {
		status := http.StatusBadRequest
		if errors.Is(terminal, bufio.ErrTooLong) {
			status = http.StatusRequestEntityTooLarge
		}
		s.writeError(w, r, status, terminal)
		return
	}
	if err := enc.Encode(map[string]string{"error": terminal.Error()}); err != nil {
		s.logger.Printf("server: %s %s: terminal error write: %v", r.Method, r.URL.Path, err)
	}
}
