package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"provabs/internal/provenance"
	"provabs/internal/registry"
)

// naturalSet builds a set with natural coefficients, evaluable in every
// wire-selectable semiring carrier.
func naturalSet(t *testing.T) *provenance.Set {
	t.Helper()
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"2·p1·m1 + 3·p1·m3 + 4·f1·m1 + 5·f1·m3"))
	return set
}

// postAddStream runs one add-stream request and decodes the ack lines.
func postAddStream(t *testing.T, url, name, body string) (*http.Response, []ackLine) {
	t.Helper()
	resp, err := http.Post(url+"/v1/sessions/"+name+"/add", "application/x-ndjson",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acks []ackLine
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var a ackLine
		if err := json.Unmarshal(scan.Bytes(), &a); err != nil {
			t.Fatalf("bad ack line %q: %v", scan.Text(), err)
		}
		acks = append(acks, a)
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	return resp, acks
}

func TestV1AddStream(t *testing.T) {
	ts, reg := newRegistryServer(t)
	if _, err := reg.Create("s", testSet(t), testForest(t)); err != nil {
		t.Fatal(err)
	}
	body := strings.Join([]string{
		`{"tag":"t1","poly":"2·p1·extra + 1·f1"}`,
		``, // blank lines are skipped
		`{"tag":"bad","poly":"2·(("}`,
		`{"tag":"t2","poly":"3·m1"}`,
	}, "\n")
	resp, acks := postAddStream(t, ts.URL, "s", body)
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	if len(acks) != 3 {
		t.Fatalf("got %d acks, want 3: %+v", len(acks), acks)
	}
	if acks[0].Error != "" || acks[2].Error != "" {
		t.Errorf("valid adds errored: %+v", acks)
	}
	if acks[1].Error == "" {
		t.Error("malformed polynomial did not carry an in-band error")
	}
	if acks[0].Index != 0 || acks[1].Index != 1 || acks[2].Index != 2 {
		t.Errorf("indices out of order: %+v", acks)
	}

	// The added polynomials (and the new variable "extra") answer queries.
	resp2, body2 := doJSON(t, "POST", ts.URL+"/v1/sessions/s/whatif",
		`{"assign":{"extra":0.5,"m1":0,"m3":0,"f1":0}}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("whatif status = %d: %v", resp2.StatusCode, body2)
	}
	answers, _ := body2["answers"].([]any)
	if len(answers) != 3 { // original tag + t1 + t2
		t.Fatalf("answers = %v, want 3 tags", body2)
	}
	s, err := reg.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Engine().Stats(); st.Added != 2 || st.Compiles != 1 {
		t.Errorf("stats = %+v, want Added 2 at Compiles 1 (appends, no recompile)", st)
	}
}

func TestV1AddStreamMalformedLine(t *testing.T) {
	ts, reg := newRegistryServer(t)
	if _, err := reg.Create("s", testSet(t), nil); err != nil {
		t.Fatal(err)
	}
	body := `{"tag":"t1","poly":"1·p1"}` + "\n" + `not json` + "\n" + `{"tag":"t2","poly":"1·f1"}`
	resp, acks := postAddStream(t, ts.URL, "s", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// One good ack, then a terminal error line (decoded with Index 0 but a
	// non-empty Error and no preceding ack for it); the line after the
	// malformed one is not applied.
	if len(acks) != 2 {
		t.Fatalf("got %d lines, want 2: %+v", len(acks), acks)
	}
	if acks[0].Error != "" {
		t.Errorf("first ack errored: %+v", acks[0])
	}
	if !strings.Contains(acks[1].Error, "bad add line") {
		t.Errorf("terminal line = %+v, want bad-add-line error", acks[1])
	}
	s, err := reg.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Engine().Stats(); st.Added != 1 {
		t.Errorf("Added = %d, want 1 (nothing after the malformed line)", st.Added)
	}
}

// TestV1ExportImportRoundTrip pins the export→import contract: a session
// exported after compression and appends re-imports under a new name and
// answers a golden what-if batch identically in every semiring carrier —
// bit-identical for float — with Compiles == 1 on the imported side.
func TestV1ExportImportRoundTrip(t *testing.T) {
	ts, reg := newRegistryServer(t)
	orig, err := reg.Create("orig", naturalSet(t), testForest(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orig.Engine().Compress(4); err != nil {
		t.Fatal(err)
	}
	if _, acks := postAddStream(t, ts.URL, "orig",
		`{"tag":"t1","poly":"7·p1·extra + 2·m1"}`); len(acks) != 1 || acks[0].Error != "" {
		t.Fatalf("add acks = %+v", acks)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions/orig/export", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("export Content-Type = %q", ct)
	}

	impBody, err := json.Marshal(map[string]any{
		"name":         "copy",
		"snapshot_b64": base64.StdEncoding.EncodeToString(snap),
	})
	if err != nil {
		t.Fatal(err)
	}
	cresp, cbody := doJSON(t, "POST", ts.URL+"/v1/sessions", string(impBody))
	if cresp.StatusCode != http.StatusCreated {
		t.Fatalf("import status = %d: %v", cresp.StatusCode, cbody)
	}

	// The golden batch, in every carrier, against both sessions.
	queries := []string{
		`{"assign":{"m1":0.25,"extra":0.5}}`,
		`{"assign":{"p1":0.125,"f1":3}}`,
		`{"semiring":"bool","assign":{"m1":0,"m3":0,"extra":0}}`,
		`{"semiring":"bool","assign":{"m1":0,"m3":1}}`,
		`{"semiring":"count","assign":{"m1":2,"extra":0}}`,
		`{"semiring":"tropical","assign":{"m1":1,"m3":2,"extra":4}}`,
		`{"semiring":"minmax","assign":{"m1":3,"m3":7,"extra":1}}`,
		`{"semiring":"minmax","assign":{}}`,
	}
	for i, q := range queries {
		_, want := doJSON(t, "POST", ts.URL+"/v1/sessions/orig/whatif", q)
		gresp, got := doJSON(t, "POST", ts.URL+"/v1/sessions/copy/whatif", q)
		if gresp.StatusCode != http.StatusOK {
			t.Fatalf("query %d on copy: status = %d: %v", i, gresp.StatusCode, got)
		}
		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Errorf("query %d: imported answers %s, want %s", i, gotJSON, wantJSON)
		}
		// Float answers additionally compare bit-exact, not just as decimal
		// strings.
		wa, _ := want["answers"].([]any)
		ga, _ := got["answers"].([]any)
		for j := range wa {
			wv, wok := wa[j].(map[string]any)["value"].(float64)
			gv, gok := ga[j].(map[string]any)["value"].(float64)
			if wok != gok || (wok && math.Float64bits(wv) != math.Float64bits(gv)) {
				t.Errorf("query %d answer %d: %v vs %v, want bit-exact", i, j, gv, wv)
			}
		}
	}

	copySess, err := reg.Get("copy")
	if err != nil {
		t.Fatal(err)
	}
	st := copySess.Engine().Stats()
	if st.Compiles != 1 {
		t.Errorf("imported Compiles = %d, want 1 (restore must not recompile)", st.Compiles)
	}
	// The append travelled inside the snapshot's set (counters are
	// process-lifetime and start fresh on import).
	if !st.Compressed || st.Polynomials != 2 {
		t.Errorf("imported stats = %+v, want compressed with both polynomials", st)
	}
}

func TestV1CreateFromSnapshotErrors(t *testing.T) {
	ts, reg := newRegistryServer(t)
	orig, err := reg.Create("orig", testSet(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Export(&buf); err != nil {
		t.Fatal(err)
	}
	snapB64 := base64.StdEncoding.EncodeToString(buf.Bytes())

	for name, tc := range map[string]struct {
		body   string
		status int
	}{
		"snapshot plus trees": {
			fmt.Sprintf(`{"name":"x","snapshot_b64":%q,"trees":["Year(q1(m1,m3))"]}`, snapB64),
			http.StatusBadRequest,
		},
		"snapshot plus provenance": {
			fmt.Sprintf(`{"name":"x","snapshot_b64":%q,"provenance_b64":"AAAA"}`, snapB64),
			http.StatusBadRequest,
		},
		"bad base64":         {`{"name":"x","snapshot_b64":"!!!"}`, http.StatusBadRequest},
		"truncated snapshot": {fmt.Sprintf(`{"name":"x","snapshot_b64":%q}`, snapB64[:24]), http.StatusBadRequest},
		"name taken":         {fmt.Sprintf(`{"name":"orig","snapshot_b64":%q}`, snapB64), http.StatusConflict},
	} {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d: %v", name, resp.StatusCode, tc.status, body)
		}
	}
	if _, err := reg.Get("x"); err == nil {
		t.Error("a failed import registered a session")
	}
}

// TestDrainFinishesInFlightStream pins the graceful-shutdown contract for
// live NDJSON streams: a client holding its request body open does not
// hold the server open — Drain ends the stream — but the scenario already
// submitted still answers before the stream closes, with no error line.
func TestDrainFinishesInFlightStream(t *testing.T) {
	reg := registry.New()
	srv := New(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if _, err := reg.Create("s", testSet(t), nil); err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/s/whatif/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	go func() {
		// One in-flight scenario; the body then stays open — a quiet client.
		pw.Write([]byte(`{"assign":{"m1":1,"m3":1}}` + "\n")) //nolint:errcheck
	}()
	resp, err := http.DefaultClient.Do(req) // returns at the first flushed answer
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	defer pw.Close()

	scan := bufio.NewScanner(resp.Body)
	if !scan.Scan() {
		t.Fatalf("no answer line before drain: %v", scan.Err())
	}
	var first streamLine
	if err := json.Unmarshal(scan.Bytes(), &first); err != nil {
		t.Fatalf("bad answer line %q: %v", scan.Text(), err)
	}
	if first.Error != "" || len(first.Answers) != 1 {
		t.Fatalf("in-flight answer = %+v", first)
	}

	srv.Drain()

	// The stream must now end cleanly — EOF, no terminal error line — even
	// though the request body is still open. Reading the body in a goroutine
	// bounds the wait so a drain regression fails fast instead of hanging.
	type tail struct {
		lines []string
		err   error
	}
	done := make(chan tail, 1)
	go func() {
		var tl tail
		for scan.Scan() {
			tl.lines = append(tl.lines, scan.Text())
		}
		tl.err = scan.Err()
		done <- tl
	}()
	select {
	case tl := <-done:
		if tl.err != nil {
			t.Fatalf("stream ended with transport error: %v", tl.err)
		}
		if len(tl.lines) != 0 {
			t.Fatalf("unexpected lines after drain: %q", tl.lines)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not end the live stream")
	}
}

// TestDrainEndsAddStream: the ingestion stream obeys Drain the same way —
// acknowledged adds stay acknowledged, the stream ends without an error
// line.
func TestDrainEndsAddStream(t *testing.T) {
	reg := registry.New()
	srv := New(reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if _, err := reg.Create("s", testSet(t), nil); err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions/s/add", pr)
	if err != nil {
		t.Fatal(err)
	}
	go pw.Write([]byte(`{"tag":"t1","poly":"1·p1"}` + "\n")) //nolint:errcheck
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	defer pw.Close()

	scan := bufio.NewScanner(resp.Body)
	if !scan.Scan() {
		t.Fatalf("no ack before drain: %v", scan.Err())
	}
	var ack ackLine
	if err := json.Unmarshal(scan.Bytes(), &ack); err != nil || ack.Error != "" {
		t.Fatalf("ack = %q (%v)", scan.Text(), err)
	}

	srv.Drain()
	done := make(chan error, 1)
	go func() {
		for scan.Scan() {
			done <- fmt.Errorf("unexpected line after drain: %q", scan.Text())
			return
		}
		done <- scan.Err()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not end the add stream")
	}
	s, err := reg.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Engine().Stats(); st.Added != 1 {
		t.Errorf("Added = %d, want the acknowledged add applied", st.Added)
	}
}
