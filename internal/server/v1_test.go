package server

import (
	"bufio"
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"provabs/internal/provenance"
	"provabs/internal/session"
)

// setB64 encodes a provenance set the way POST /v1/sessions expects it
// inline: the binary codec, base64.
func setB64(t *testing.T, set *provenance.Set) string {
	t.Helper()
	var buf bytes.Buffer
	if err := provenance.Encode(&buf, set); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

func createBody(t *testing.T, name string, deflt bool) string {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"name":           name,
		"provenance_b64": setB64(t, testSet(t)),
		"trees":          []string{"Year(q1(m1,m3))"},
		"default":        deflt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: non-JSON response %q: %v", method, url, raw, err)
		}
	}
	return resp, decoded
}

// TestV1SessionLifecycle drives the full resource lifecycle the README
// documents: create → list → get → compress → whatif → stats → delete.
func TestV1SessionLifecycle(t *testing.T) {
	ts, _ := newRegistryServer(t)

	resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions", createBody(t, "telco", false))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, want 201: %v", resp.StatusCode, body)
	}
	if body["name"] != "telco" || body["default"] != true {
		t.Errorf("create response = %v, want name=telco default=true (first session)", body)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/v1/sessions", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	sessions, _ := body["sessions"].([]any)
	if len(sessions) != 1 {
		t.Fatalf("list = %v, want one session", body)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/v1/sessions/telco", "")
	if resp.StatusCode != http.StatusOK || body["name"] != "telco" {
		t.Fatalf("get = %d %v, want 200 telco", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "POST", ts.URL+"/v1/sessions/telco/compress",
		`{"bound":2,"strategy":"greedy"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compress status = %d: %v", resp.StatusCode, body)
	}
	if body["session"] != "telco" || body["adequate"] != true || body["monomials"] != 2.0 {
		t.Errorf("compress = %v, want adequate 2-monomial run on telco", body)
	}

	resp, body = doJSON(t, "POST", ts.URL+"/v1/sessions/telco/whatif",
		`{"assign":{"q1":0.5}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("whatif status = %d: %v", resp.StatusCode, body)
	}
	if answers, _ := body["answers"].([]any); len(answers) != 1 {
		t.Errorf("whatif answers = %v, want one", body)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/v1/sessions/telco/stats", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var st session.Stats
	raw, _ := json.Marshal(body)
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Compressed || st.Scenarios != 1 || st.Compiles != 1 {
		t.Errorf("stats = %+v, want compressed, 1 scenario, 1 compile", st)
	}

	resp, body = doJSON(t, "DELETE", ts.URL+"/v1/sessions/telco", "")
	if resp.StatusCode != http.StatusOK || body["closed"] != "telco" {
		t.Fatalf("delete = %d %v, want 200 closed=telco", resp.StatusCode, body)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/v1/sessions/telco", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete = %d, want 404", resp.StatusCode)
	}
}

func TestV1CreateErrors(t *testing.T) {
	ts, reg := newRegistryServer(t)
	if _, err := reg.Create("taken", testSet(t), nil); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"duplicate name", createBody(t, "taken", false), http.StatusConflict},
		{"malformed json", `{"name":`, http.StatusBadRequest},
		{"empty name", createBody(t, "", false), http.StatusBadRequest},
		{"reserved character", createBody(t, "a/b", false), http.StatusBadRequest},
		{"no source", `{"name":"x"}`, http.StatusBadRequest},
		{"two sources", `{"name":"x","path":"/a","provenance_b64":"AAAA"}`, http.StatusBadRequest},
		{"bad base64", `{"name":"x","provenance_b64":"!!!"}`, http.StatusBadRequest},
		{"path loading disabled", `{"name":"x","path":"file.pvab"}`, http.StatusBadRequest},
		{"bad tree", fmt.Sprintf(`{"name":"x","provenance_b64":%q,"trees":["(("]}`,
			setB64(t, testSet(t))), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d (%v)", tc.name, resp.StatusCode, tc.status, body)
		}
		if msg, _ := body["error"].(string); msg == "" {
			t.Errorf("%s: no error message in %v", tc.name, body)
		}
	}
	if reg.Len() != 1 {
		t.Errorf("failed creates left %d sessions, want 1", reg.Len())
	}
}

// TestV1CreateFromPath pins the server-side path policy: with a session
// dir configured, relative paths inside it load; absolute and escaping
// paths are rejected, as is everything when the dir is unset (see
// TestV1CreateErrors).
func TestV1CreateFromPath(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "ok.pvab"))
	if err != nil {
		t.Fatal(err)
	}
	if err := provenance.Encode(f, testSet(t)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	ts, _ := newRegistryServer(t, WithSessionDir(dir))

	resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions", `{"name":"ok","path":"ok.pvab"}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create from path = %d %v, want 201", resp.StatusCode, body)
	}
	for name, path := range map[string]string{
		"absolute":  filepath.Join(dir, "ok.pvab"),
		"traversal": "../ok.pvab",
		"missing":   "nope.pvab",
	} {
		req, err := json.Marshal(map[string]string{"name": "x", "path": path})
		if err != nil {
			t.Fatal(err)
		}
		resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions", string(req))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s path: status = %d, want 400 (%v)", name, resp.StatusCode, body)
		}
	}
}

func TestV1UnknownSession404(t *testing.T) {
	ts, _ := newRegistryServer(t)
	for _, rt := range []struct{ method, path, body string }{
		{"GET", "/v1/sessions/ghost", ""},
		{"DELETE", "/v1/sessions/ghost", ""},
		{"POST", "/v1/sessions/ghost/whatif", `{"assign":{"m1":1}}`},
		{"POST", "/v1/sessions/ghost/whatif/stream", `{"assign":{"m1":1}}`},
		{"POST", "/v1/sessions/ghost/compress", `{"bound":1}`},
		{"GET", "/v1/sessions/ghost/stats", ""},
	} {
		resp, body := doJSON(t, rt.method, ts.URL+rt.path, rt.body)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status = %d, want 404 (%v)", rt.method, rt.path, resp.StatusCode, body)
		}
	}
	// Legacy aliases 404 too while the registry has no default session.
	for _, rt := range []struct{ method, path, body string }{
		{"POST", "/whatif", `{"assign":{"m1":1}}`},
		{"POST", "/whatif/stream", `{"assign":{"m1":1}}`},
		{"POST", "/compress", `{"bound":1}`},
		{"GET", "/stats", ""},
	} {
		resp, body := doJSON(t, rt.method, ts.URL+rt.path, rt.body)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: status = %d, want 404 (%v)", rt.method, rt.path, resp.StatusCode, body)
		}
	}
}

// TestMethodNotAllowed sends a wrong method to every route of the surface.
func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, rt := range []struct{ method, path string }{
		{"DELETE", "/v1/sessions"},
		{"POST", "/v1/sessions/default"},
		{"GET", "/v1/sessions/default/whatif"},
		{"GET", "/v1/sessions/default/whatif/stream"},
		{"GET", "/v1/sessions/default/compress"},
		{"POST", "/v1/sessions/default/stats"},
		{"POST", "/v1/stats"},
		{"GET", "/whatif"},
		{"GET", "/whatif/stream"},
		{"GET", "/compress"},
		{"POST", "/stats"},
		{"POST", "/healthz"},
	} {
		req, err := http.NewRequest(rt.method, ts.URL+rt.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", rt.method, rt.path, resp.StatusCode)
		}
	}
}

// TestLegacyParity pins the deprecation contract: every legacy unversioned
// route answers byte-identically to its /v1 successor on the default
// session, plus a Deprecation header pointing at the successor.
func TestLegacyParity(t *testing.T) {
	ts, _ := newTestServer(t)

	fetch := func(method, path, body string) (http.Header, string) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header, string(raw)
	}

	streamBody := `{"assign":{"m1":1,"m3":1}}` + "\n" + `{"assign":{"m1":0,"m3":0}}`
	routes := []struct{ method, legacy, v1, body string }{
		{"POST", "/whatif", "/v1/sessions/default/whatif", `{"assign":{"m1":0.5,"m3":0.5}}`},
		{"POST", "/whatif/stream", "/v1/sessions/default/whatif/stream", streamBody},
		// Bad strategy keeps the compress comparison deterministic (no
		// elapsed_ms) and still exercises the full alias path.
		{"POST", "/compress", "/v1/sessions/default/compress", `{"bound":2,"strategy":"nope"}`},
		{"GET", "/stats", "/v1/sessions/default/stats", ""},
	}
	for _, rt := range routes {
		legacyHdr, legacyBody := fetch(rt.method, rt.legacy, rt.body)
		v1Hdr, v1Body := fetch(rt.method, rt.v1, rt.body)
		if legacyBody != v1Body {
			t.Errorf("%s %s vs %s:\n legacy %q\n v1     %q", rt.method, rt.legacy, rt.v1, legacyBody, v1Body)
		}
		if legacyHdr.Get("Deprecation") != "true" {
			t.Errorf("%s %s: no Deprecation header", rt.method, rt.legacy)
		}
		if link := legacyHdr.Get("Link"); !strings.Contains(link, rt.v1) {
			t.Errorf("%s %s: Link = %q, want successor %s", rt.method, rt.legacy, link, rt.v1)
		}
		if v1Hdr.Get("Deprecation") != "" {
			t.Errorf("%s %s: v1 route carries a Deprecation header", rt.method, rt.v1)
		}
	}
}

// TestRequestBodyLimits pins the 413 contract on every bounded path.
func TestRequestBodyLimits(t *testing.T) {
	ts, reg := newRegistryServer(t, WithMaxLineBytes(128), WithMaxCreateBytes(256))
	if _, err := reg.Create("default", testSet(t), testForest(t)); err != nil {
		t.Fatal(err)
	}
	// Valid JSON all the way, so the decoder is still reading (not
	// syntax-erroring) when it crosses the byte limit.
	big := `{"assign":{"` + strings.Repeat("m", 300) + `":1}}`
	for _, rt := range []struct{ method, path, body string }{
		{"POST", "/v1/sessions/default/whatif", big},
		{"POST", "/whatif", big},
		{"POST", "/v1/sessions/default/compress", `{"bound":1,"strategy":"` + strings.Repeat("x", 300) + `"}`},
		{"POST", "/v1/sessions", `{"name":"x","provenance_b64":"` + strings.Repeat("A", 300) + `"}`},
	} {
		resp, body := doJSON(t, rt.method, ts.URL+rt.path, rt.body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s %s: status = %d, want 413 (%v)", rt.method, rt.path, resp.StatusCode, body)
		}
		if msg, _ := body["error"].(string); !strings.Contains(msg, "limit") {
			t.Errorf("%s %s: error %q does not mention the limit", rt.method, rt.path, msg)
		}
	}

	// An oversized FIRST stream line still gets a real 413 status …
	resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions/default/whatif/stream", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("stream oversized first line: status = %d, want 413 (%v)", resp.StatusCode, body)
	}
	// … while one arriving mid-stream is reported in-band after the
	// already-computed answers.
	resp2, err := http.Post(ts.URL+"/v1/sessions/default/whatif/stream", "application/x-ndjson",
		strings.NewReader(`{"assign":{"m1":1}}`+"\n"+big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("mid-stream oversized line: status = %d, want 200 + in-band error", resp2.StatusCode)
	}
	var lines []map[string]any
	scan := bufio.NewScanner(resp2.Body)
	for scan.Scan() {
		var l map[string]any
		if err := json.Unmarshal(scan.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", scan.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want answer + terminal error: %v", len(lines), lines)
	}
	if _, ok := lines[0]["answers"]; !ok {
		t.Errorf("first line carries no answers: %v", lines[0])
	}
	if msg, _ := lines[1]["error"].(string); !strings.Contains(msg, "limit") {
		t.Errorf("terminal line = %v, want line-limit error", lines[1])
	}
}

// TestStreamTornDownBySessionClose pins the lifecycle contract: deleting a
// session terminates its in-flight scenario streams. The stream is driven
// over a raw connection because http.Transport buffers small streaming
// request bodies, which would deadlock a pipe-fed request here.
func TestStreamTornDownBySessionClose(t *testing.T) {
	ts, reg := newRegistryServer(t)
	if _, err := reg.Create("default", testSet(t), testForest(t)); err != nil {
		t.Fatal(err)
	}

	conn, err := net.Dial("tcp", strings.TrimPrefix(ts.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(15 * time.Second))

	// A chunked request that stays open after its first scenario line.
	line := `{"assign":{"m1":1}}` + "\n"
	fmt.Fprintf(conn, "POST /v1/sessions/default/whatif/stream HTTP/1.1\r\n"+
		"Host: test\r\nContent-Type: application/x-ndjson\r\nTransfer-Encoding: chunked\r\n\r\n"+
		"%x\r\n%s\r\n", len(line), line)

	// The first answer must arrive while the request body is still open.
	br := bufio.NewReader(conn)
	var got bytes.Buffer
	for !bytes.Contains(got.Bytes(), []byte(`"answers"`)) {
		b, err := br.ReadByte()
		if err != nil {
			t.Fatalf("no first answer (read %q): %v", got.String(), err)
		}
		got.WriteByte(b)
	}

	// Close the session under the live stream; the chunked response must
	// terminate (the "0\r\n\r\n" final chunk) even though the request body
	// never ends.
	if resp, body := doJSON(t, "DELETE", ts.URL+"/v1/sessions/default", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d %v", resp.StatusCode, body)
	}
	for !bytes.Contains(got.Bytes(), []byte("0\r\n\r\n")) {
		b, err := br.ReadByte()
		if err == io.EOF {
			return // server closed the connection outright: also a teardown
		}
		if err != nil {
			t.Fatalf("stream did not terminate after session close (read %q): %v", got.String(), err)
		}
		got.WriteByte(b)
	}
}

// TestAggregateStats pins GET /v1/stats: per-session counters and the
// cross-session totals.
func TestAggregateStats(t *testing.T) {
	ts, reg := newRegistryServer(t)
	for _, name := range []string{"a", "b"} {
		if _, err := reg.Create(name, testSet(t), testForest(t)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions/a/whatif", `{"assign":{"m1":1}}`); resp.StatusCode != 200 {
			t.Fatal(resp.StatusCode, body)
		}
	}
	if resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions/b/whatif", `{"assign":{"m3":2}}`); resp.StatusCode != 200 {
		t.Fatal(resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var agg struct {
		Sessions   int                      `json:"sessions"`
		Default    string                   `json:"default"`
		Totals     session.Stats            `json:"totals"`
		PerSession map[string]session.Stats `json:"per_session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	if agg.Sessions != 2 || agg.Default != "a" {
		t.Errorf("sessions=%d default=%q, want 2/a", agg.Sessions, agg.Default)
	}
	if agg.PerSession["a"].Scenarios != 3 || agg.PerSession["b"].Scenarios != 1 {
		t.Errorf("per-session scenarios = %d/%d, want 3/1",
			agg.PerSession["a"].Scenarios, agg.PerSession["b"].Scenarios)
	}
	if agg.Totals.Scenarios != 4 || agg.Totals.Compiles != 2 {
		t.Errorf("totals = %+v, want 4 scenarios / 2 compiles", agg.Totals)
	}
	if agg.Totals.DeltaEvals+agg.Totals.FullEvals != 4 {
		t.Errorf("delta %d + full %d != 4", agg.Totals.DeltaEvals, agg.Totals.FullEvals)
	}
}
