package server

// ScenQL over the wire: one statement in, the sweep's rows out — the
// scenarios are generated server-side next to the kernel instead of being
// shipped as NDJSON lines. POST /v1/sessions/{name}/query answers with one
// JSON document (EXPLAIN answers with the annotated plan tree);
// /query/stream answers NDJSON — a header line, then one line per scenario
// flushed as it is computed, so a million-point sweep is O(1) server
// memory and the client sees results immediately.

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"strconv"

	"provabs/internal/registry"
	"provabs/internal/scenql"
	"provabs/internal/session"
)

// queryRequest is the POST body of both query endpoints.
type queryRequest struct {
	Query string `json:"query"`
}

// queryRowJSON is one scenario's outcome on the wire: the generated
// assignments and the answers, or an in-band per-scenario error.
type queryRowJSON struct {
	Index   int64           `json:"index"`
	Assign  json.RawMessage `json:"assign,omitempty"`
	Answers []answerJSON    `json:"answers,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// queryResponse is the non-streaming query result document.
type queryResponse struct {
	Semiring  string         `json:"semiring"`
	Scenarios int64          `json:"scenarios"`
	Rows      []queryRowJSON `json:"rows"`
	Errors    int64          `json:"errors,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
}

// queryStreamHeader is the first NDJSON line of a streaming query.
type queryStreamHeader struct {
	Semiring  string `json:"semiring"`
	Scenarios int64  `json:"scenarios"`
}

func toQueryRowJSON(row session.QueryRow) queryRowJSON {
	line := queryRowJSON{Index: row.Index, Assign: encodeAssign(row.Assign)}
	if row.Err != nil {
		line.Error = row.Err.Error()
	} else {
		line.Answers = toAnswerJSON(row.Answers)
	}
	return line
}

// encodeAssign marshals a scenario's assignments by hand, emitting the
// same bytes as encoding/json's map encoder (sorted keys, shortest float
// form). On a 100k-row sweep the row's assign object is the hottest part
// of the response, and the reflective map path — per-row key sort through
// reflect, type-cache lookups — is a measurable slice of it.
func encodeAssign(assign map[string]float64) json.RawMessage {
	if len(assign) == 0 {
		return nil
	}
	names := make([]string, 0, len(assign))
	for name := range assign {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := make([]byte, 0, 24*len(names))
	buf = append(buf, '{')
	for i, name := range names {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONKey(buf, name)
		buf = append(buf, ':')
		buf = appendJSONFloat(buf, assign[name])
	}
	return append(buf, '}')
}

// appendJSONKey appends name as a JSON string, taking the fast path for
// plain printable ASCII and deferring anything that needs escaping to
// encoding/json.
func appendJSONKey(buf []byte, name string) []byte {
	for i := 0; i < len(name); i++ {
		if c := name[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			quoted, _ := json.Marshal(name)
			return append(buf, quoted...)
		}
	}
	buf = append(buf, '"')
	buf = append(buf, name...)
	return append(buf, '"')
}

// appendJSONFloat mirrors encoding/json's float encoding: shortest form,
// %f for mid-range exponents, %e otherwise with the exponent's leading
// zero stripped. Non-finite values cannot come out of a parsed statement;
// emit null rather than corrupt the NDJSON framing if one ever does.
func appendJSONFloat(buf []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(buf, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}

// queryStatus maps a statement failure to its HTTP status: parse and
// resolution errors are the client's (400), anything else is not.
func queryStatus(err error) int {
	switch err.(type) {
	case *scenql.ParseError, *scenql.CompileError:
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	var req queryRequest
	if !s.decodeJSON(w, r, s.maxLine, &req, "query request") {
		return
	}
	res, err := sess.Engine().QueryContext(r.Context(), req.Query)
	if err != nil {
		s.writeError(w, r, queryStatus(err), err)
		return
	}
	if res.Explain != nil {
		s.writeJSON(w, r, http.StatusOK, res.Explain)
		return
	}
	resp := queryResponse{
		Semiring:  res.Semiring.String(),
		Scenarios: res.Scenarios,
		Rows:      make([]queryRowJSON, len(res.Rows)),
		Errors:    res.Errors,
		Truncated: res.Truncated,
	}
	for i, row := range res.Rows {
		resp.Rows[i] = toQueryRowJSON(row)
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}

// handleQueryStream runs one statement with NDJSON delivery: a header line
// ({"semiring","scenarios"}), then one row line per scenario as it is
// computed. An EXPLAIN statement answers with a single line carrying the
// annotated plan. The stream ends early when the client goes away or the
// session is closed.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request, sess *registry.Session) {
	releaseStream, ok := s.acquireStream(w, r)
	if !ok {
		return
	}
	defer releaseStream()
	var req queryRequest
	if !s.decodeJSON(w, r, s.maxLine, &req, "query request") {
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-sess.Done():
			cancel()
		case <-ctx.Done():
		}
	}()
	info, rows, err := sess.Engine().QueryStream(ctx, req.Query)
	if err != nil {
		s.writeError(w, r, queryStatus(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	rc := http.NewResponseController(w)
	if info.Explain != nil {
		if err := enc.Encode(info.Explain); err != nil {
			s.logger.Printf("server: %s %s: explain write: %v", r.Method, r.URL.Path, err)
		}
		return
	}
	if err := enc.Encode(queryStreamHeader{Semiring: info.Semiring.String(), Scenarios: info.Scenarios}); err != nil {
		s.logger.Printf("server: %s %s: header write: %v", r.Method, r.URL.Path, err)
		return
	}
	if err := rc.Flush(); err != nil {
		s.logger.Printf("server: %s %s: header flush: %v", r.Method, r.URL.Path, err)
		return
	}
	for row := range rows {
		if err := enc.Encode(toQueryRowJSON(row)); err != nil {
			s.logger.Printf("server: %s %s: stream write: %v", r.Method, r.URL.Path, err)
			return // client went away; cancel() ends the sweep
		}
		// Unlike the what-if stream — where a client is waiting on each
		// answer and every row must flush — the sweep is server-generated,
		// so rows only need to reach the wire when the generator pauses.
		// Flushing at quiescence batches thousands of rows per TCP write
		// on a fast sweep while still keeping a slow one interactive.
		if len(rows) > 0 {
			continue
		}
		if err := rc.Flush(); err != nil {
			s.logger.Printf("server: %s %s: stream flush: %v", r.Method, r.URL.Path, err)
			return
		}
	}
}
