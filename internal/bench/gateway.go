package bench

// Gateway benchmark harness (BENCH_9 via `provbench -experiment gateway`):
// what the pool router costs and buys. Three measurements:
//
//   - Pools: sustained what-if throughput through a real gateway over real
//     backend servers at pool sizes 1, 2 and 4 — concurrent NDJSON stream
//     clients, sessions consistent-hashed across the pool, every byte
//     crossing the proxy hop. The backends share this process's CPUs, so
//     the numbers measure routing overhead and contention relief, not
//     linear machine scaling.
//
//   - TenantIsolation: a hog tenant blasting one-shot what-ifs into a
//     rate-limited gateway while a polite tenant issues paced requests.
//     The hog must be capped near the configured scenarios/sec (429 +
//     Retry-After past the bucket); the polite tenant's median latency
//     under contention is recorded against its uncontended baseline.
//
//   - Workloads: the batch100-sparse float series re-measured with the
//     exact BENCH_5/6/7 shape, so `benchdiff BENCH_7 BENCH_9` gates the
//     kernel's perf trajectory across this PR.

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"provabs/internal/gateway"
	"provabs/internal/provenance"
	"provabs/internal/registry"
	"provabs/internal/server"
)

// gatewayPoolSizes are the backend counts the throughput sweep covers.
var gatewayPoolSizes = []int{1, 2, 4}

const (
	gatewayClients      = 8   // concurrent stream clients per pool size
	gatewayScenarios    = 500 // scenarios per client per rep
	gatewayReps         = 3   // median-of over reps
	gatewayHogWorkers   = 4   // concurrent hog requesters
	gatewayPoliteProbes = 60  // paced polite-tenant requests per phase
	gatewayTenantRate   = 100 // scenarios/sec cap in the isolation run
)

// GatewayPoolReport is the throughput measurement at one pool size.
type GatewayPoolReport struct {
	Backends        int     `json:"backends"`
	Clients         int     `json:"clients"`
	Sessions        int     `json:"sessions"`
	Scenarios       int64   `json:"scenarios"`
	Ns              float64 `json:"ns_total"`
	ScenariosPerSec float64 `json:"scenarios_per_sec"`
}

// GatewayTenantReport is the isolation measurement: the hog capped, the
// polite tenant unharmed.
type GatewayTenantReport struct {
	// RatePerSec is the configured per-tenant scenarios/sec cap.
	RatePerSec float64 `json:"rate_per_sec"`
	// HogOffered / HogAdmitted count the hog's attempts and 200s over the
	// window; HogPerSec is the admitted rate the cap held it to.
	HogOffered  int64   `json:"hog_offered"`
	HogAdmitted int64   `json:"hog_admitted"`
	HogPerSec   float64 `json:"hog_admitted_per_sec"`
	// PoliteBaselineP50Ns / PoliteContendedP50Ns are the polite tenant's
	// median one-shot latencies without and with the hog running.
	PoliteBaselineP50Ns  float64 `json:"polite_baseline_p50_ns"`
	PoliteContendedP50Ns float64 `json:"polite_contended_p50_ns"`
	// LatencyRatio is contended over baseline (≈1: isolation holds).
	LatencyRatio float64 `json:"latency_ratio"`
}

// GatewayWorkloadReport carries one workload's benchdiff-shared series.
type GatewayWorkloadReport struct {
	Polynomials int               `json:"polynomials"`
	Monomials   int               `json:"monomials"`
	Variables   int               `json:"variables"`
	Benchmarks  map[string]Metric `json:"benchmarks"`
}

// GatewayReport is the full BENCH_9 payload.
type GatewayReport struct {
	GOMAXPROCS int                               `json:"gomaxprocs"`
	Pools      map[string]*GatewayPoolReport     `json:"pools"`
	Tenant     *GatewayTenantReport              `json:"tenant_isolation"`
	Workloads  map[string]*GatewayWorkloadReport `json:"workloads"`
}

// RunGatewayBench measures proxied throughput at pool sizes 1/2/4, tenant
// isolation under a rate-limited gateway, and the benchdiff-shared float
// series (default workloads: telco and Q5, at the BENCH_3..7 scale).
func RunGatewayBench(sc Scale, names ...string) (*GatewayReport, error) {
	if len(names) == 0 {
		names = []string{"telco", "Q5"}
	}
	report := &GatewayReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Pools:      map[string]*GatewayPoolReport{},
		Workloads:  map[string]*GatewayWorkloadReport{},
	}

	// Throughput and isolation run on Q5 — small enough that the proxy hop
	// is a visible fraction of a scenario, which is the thing under test.
	w, err := LoadWorkload("Q5", sc)
	if err != nil {
		return nil, err
	}
	for _, size := range gatewayPoolSizes {
		pr, err := runGatewayPool(w, size)
		if err != nil {
			return nil, fmt.Errorf("bench: gateway pool %d: %w", size, err)
		}
		report.Pools[fmt.Sprintf("pool%d", size)] = pr
	}
	tr, err := runGatewayTenantIsolation(w)
	if err != nil {
		return nil, fmt.Errorf("bench: gateway tenants: %w", err)
	}
	report.Tenant = tr

	for _, name := range names {
		w, err := LoadWorkload(name, sc)
		if err != nil {
			return nil, err
		}
		c := w.Set.Compile()
		floatBatch, err := carrierBatch(w, func(int) float64 { return 0.8 })
		if err != nil {
			return nil, err
		}
		report.Workloads[name] = &GatewayWorkloadReport{
			Polynomials: w.Set.Len(),
			Monomials:   w.Set.Size(),
			Variables:   w.Set.Granularity(),
			Benchmarks: map[string]Metric{
				"batch100-sparse":         benchBatch(c, floatBatch, 0.5),
				"batch100-sparse-nodelta": benchBatch(c, floatBatch, -1),
			},
		}
	}
	return report, nil
}

// gatewayPool stands up n real backends and a gateway over them, with the
// workload loaded into gatewayClients sessions through the gateway (so the
// ring spreads them), pre-warmed so the clock below measures evaluation
// and proxying, not compilation.
type gatewayPool struct {
	gw       *gateway.Gateway
	ts       *httptest.Server
	backends []*httptest.Server
	sessions []string
}

func (p *gatewayPool) close() {
	p.ts.Close()
	p.gw.Stop()
	for _, b := range p.backends {
		b.Close()
	}
}

func newGatewayPool(w *Workload, n int, limits gateway.TenantLimits) (*gatewayPool, error) {
	p := &gatewayPool{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ts := httptest.NewServer(server.New(registry.New()).Handler())
		p.backends = append(p.backends, ts)
		addrs[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	gw, err := gateway.New(addrs, gateway.Options{
		Limits: limits,
		Logger: log.New(io.Discard, "", 0),
	})
	if err != nil {
		p.close()
		return nil, err
	}
	p.gw = gw
	p.ts = httptest.NewServer(gw.Handler())

	var buf bytes.Buffer
	if err := provenance.Encode(&buf, w.Set); err != nil {
		p.close()
		return nil, err
	}
	setB64 := base64.StdEncoding.EncodeToString(buf.Bytes())
	for i := 0; i < gatewayClients; i++ {
		name := fmt.Sprintf("bench-%d", i)
		body, err := json.Marshal(map[string]any{
			"name": name, "provenance_b64": setB64,
		})
		if err != nil {
			p.close()
			return nil, err
		}
		resp, err := http.Post(p.ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			p.close()
			return nil, err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			p.close()
			return nil, fmt.Errorf("create %s: status %d: %s", name, resp.StatusCode, msg)
		}
		p.sessions = append(p.sessions, name)
		// Warm: compile each session's kernel outside the clock.
		if _, _, err := gatewayWhatIf(p.ts.URL, name, "", map[string]float64{}); err != nil {
			p.close()
			return nil, err
		}
	}
	return p, nil
}

// gatewayStreamBody pre-materializes one client's NDJSON scenario lines —
// two leaf variables swept, so the backend's delta path sees realistic
// adjacent scenarios.
func gatewayStreamBody(w *Workload, scenarios int) (*bytes.Buffer, error) {
	var names []string
	for i := 0; len(names) < 2 && i < w.LeafCount; i++ {
		name := fmt.Sprintf("%s%d", w.LeafPrefix, i)
		if _, ok := w.Set.Vocab.Lookup(name); ok {
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		return nil, fmt.Errorf("workload has only %d of 2 leaf variables", len(names))
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < scenarios; i++ {
		line := map[string]any{"assign": map[string]float64{
			names[0]: float64(i % 17),
			names[1]: float64(i % 13),
		}}
		if err := enc.Encode(line); err != nil {
			return nil, err
		}
	}
	return &buf, nil
}

func runGatewayPool(w *Workload, size int) (*GatewayPoolReport, error) {
	p, err := newGatewayPool(w, size, gateway.TenantLimits{})
	if err != nil {
		return nil, err
	}
	defer p.close()

	body, err := gatewayStreamBody(w, gatewayScenarios)
	if err != nil {
		return nil, err
	}
	raw := body.Bytes()

	var runs []float64
	for rep := 0; rep < gatewayReps; rep++ {
		var wg sync.WaitGroup
		errs := make(chan error, gatewayClients)
		start := time.Now()
		for i := 0; i < gatewayClients; i++ {
			wg.Add(1)
			go func(sess string) {
				defer wg.Done()
				resp, err := http.Post(p.ts.URL+"/v1/sessions/"+sess+"/whatif/stream",
					"application/x-ndjson", bytes.NewReader(raw))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("stream status %d", resp.StatusCode)
					return
				}
				n, err := countLines(resp.Body)
				if err != nil {
					errs <- err
					return
				}
				if n != int64(gatewayScenarios) {
					errs <- fmt.Errorf("streamed %d answers, want %d", n, gatewayScenarios)
				}
			}(p.sessions[i])
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return nil, err
		}
		runs = append(runs, float64(time.Since(start).Nanoseconds()))
	}
	ns := median(runs)
	total := int64(gatewayClients) * int64(gatewayScenarios)
	return &GatewayPoolReport{
		Backends:        size,
		Clients:         gatewayClients,
		Sessions:        len(p.sessions),
		Scenarios:       total,
		Ns:              ns,
		ScenariosPerSec: float64(total) / (ns / 1e9),
	}, nil
}

// gatewayWhatIf posts one one-shot scenario, returning its latency and
// status (0 on transport failure).
func gatewayWhatIf(base, sess, tenant string, assign map[string]float64) (time.Duration, int, error) {
	body, err := json.Marshal(map[string]any{"assign": assign})
	if err != nil {
		return 0, 0, err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions/"+sess+"/whatif", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return time.Since(start), resp.StatusCode, fmt.Errorf("status %d", resp.StatusCode)
	}
	return time.Since(start), resp.StatusCode, nil
}

// runGatewayTenantIsolation measures the cap and the bystander: the hog
// tenant is throttled to the configured rate while the polite tenant's
// paced one-shots stay near their uncontended latency.
func runGatewayTenantIsolation(w *Workload) (*GatewayTenantReport, error) {
	p, err := newGatewayPool(w, 1, gateway.TenantLimits{
		ScenariosPerSec: gatewayTenantRate,
		Burst:           gatewayTenantRate / 10,
	})
	if err != nil {
		return nil, err
	}
	defer p.close()
	sess := p.sessions[0]

	politeP50 := func() (float64, error) {
		lat := make([]float64, 0, gatewayPoliteProbes)
		for i := 0; i < gatewayPoliteProbes; i++ {
			d, _, err := gatewayWhatIf(p.ts.URL, sess, "polite", map[string]float64{})
			if err != nil {
				return 0, fmt.Errorf("polite request: %w", err)
			}
			lat = append(lat, float64(d.Nanoseconds()))
			time.Sleep(10 * time.Millisecond) // paced: well under the rate cap
		}
		sort.Float64s(lat)
		return lat[len(lat)/2], nil
	}

	baseline, err := politeP50()
	if err != nil {
		return nil, err
	}

	// Contended phase: hog workers blast one-shots for the whole polite
	// probe window; past the bucket they see 429 + Retry-After and count as
	// offered-but-refused.
	var (
		offered, admitted int64
		countMu           sync.Mutex
	)
	stop := make(chan struct{})
	var hogs sync.WaitGroup
	hogStart := time.Now()
	for i := 0; i < gatewayHogWorkers; i++ {
		hogs.Add(1)
		go func() {
			defer hogs.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, status, err := gatewayWhatIf(p.ts.URL, sess, "hog", map[string]float64{})
				countMu.Lock()
				offered++
				if err == nil {
					admitted++
				}
				countMu.Unlock()
				if status == http.StatusTooManyRequests {
					// A well-behaved hog honors Retry-After instead of busy-
					// looping refusals (which on a small machine would measure
					// request-churn CPU, not limiter isolation).
					select {
					case <-stop:
						return
					case <-time.After(20 * time.Millisecond):
					}
				}
			}
		}()
	}
	contended, perr := politeP50()
	hogWindow := time.Since(hogStart)
	close(stop)
	hogs.Wait()
	if perr != nil {
		return nil, perr
	}

	tr := &GatewayTenantReport{
		RatePerSec:           gatewayTenantRate,
		HogOffered:           offered,
		HogAdmitted:          admitted,
		HogPerSec:            float64(admitted) / hogWindow.Seconds(),
		PoliteBaselineP50Ns:  baseline,
		PoliteContendedP50Ns: contended,
	}
	if baseline > 0 {
		tr.LatencyRatio = contended / baseline
	}
	return tr, nil
}

// JSON renders the machine-readable BENCH_9 payload.
func (r *GatewayReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Table renders the report for provbench's stdout.
func (r *GatewayReport) Table() *Table {
	tab := &Table{
		Title:   fmt.Sprintf("Gateway pool throughput and tenant isolation (GOMAXPROCS=%d)", r.GOMAXPROCS),
		Headers: []string{"measurement", "value"},
	}
	keys := make([]string, 0, len(r.Pools))
	for k := range r.Pools {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		pr := r.Pools[k]
		tab.AddRow(fmt.Sprintf("%s scenarios/sec", k),
			fmt.Sprintf("%.0f (%d clients, %d sessions)", pr.ScenariosPerSec, pr.Clients, pr.Sessions))
	}
	if t := r.Tenant; t != nil {
		tab.AddRow("tenant rate cap", fmt.Sprintf("%.0f/s", t.RatePerSec))
		tab.AddRow("hog admitted", fmt.Sprintf("%.0f/s of %d offered", t.HogPerSec, t.HogOffered))
		tab.AddRow("polite p50 baseline", fmt.Sprintf("%.2fms", t.PoliteBaselineP50Ns/1e6))
		tab.AddRow("polite p50 contended",
			fmt.Sprintf("%.2fms (%.2fx baseline)", t.PoliteContendedP50Ns/1e6, t.LatencyRatio))
	}
	return tab
}
