// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (§4.3 and Appendix B), each emitting the same
// rows/series the paper plots. The runners are exercised at CI scale by the
// repository-root benchmarks (bench_test.go) and at larger scales by
// cmd/provbench.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells formatted with fmt.Sprint.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtDuration(d time.Duration) string {
	switch {
	case d <= 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", float64(d)/float64(time.Second))
	}
}

// String renders an aligned text table.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.Title)))
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	dashes := make([]string, len(t.Headers))
	for i := range dashes {
		dashes[i] = strings.Repeat("-", widths[i])
	}
	writeRow(dashes)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteByte('"')
				sb.WriteString(strings.ReplaceAll(c, `"`, `""`))
				sb.WriteByte('"')
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// timeIt measures one call.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
