package bench

import (
	"fmt"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/treegen"
)

// GreedyQuality reproduces Table 1: per tree type (1..7), the greedy
// algorithm's average accuracy and speedup relative to Opt VVS over the
// type's Table 2 shapes, on one workload at bound 0.5·|P|_M.
//
// Accuracy is the granularity ratio |P↓S_greedy|_V / |P↓S_opt|_V (100% ⇔
// the greedy retains as many variables as the optimum); speedup is
// (t_opt − t_greedy)/t_opt.
func GreedyQuality(w *Workload, types []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Greedy accuracy and speedup (Table 1) — %s", w.Name),
		Headers: []string{"tree type", "accuracy", "speedup"},
	}
	B := halfBound(w)
	for _, typ := range types {
		var accSum, spSum float64
		var n int
		for _, shape := range treegen.ShapesOfType(typ) {
			tree := w.Tree(shape)
			forest := abstree.MustForest(tree)
			var opt *core.Result
			optDur, err := timeIt(func() error {
				var e error
				opt, e = core.OptimalVVS(w.Set, tree, B)
				return e
			})
			if err != nil {
				return nil, err
			}
			var greedy *core.Result
			greedyDur, err := timeIt(func() error {
				var e error
				greedy, e = core.GreedyVVS(w.Set, forest, B)
				return e
			})
			if err != nil {
				return nil, err
			}
			optV := w.Set.Granularity() - opt.VL
			greedyV := w.Set.Granularity() - greedy.VL
			if optV > 0 {
				acc := float64(greedyV) / float64(optV)
				if acc > 1 {
					acc = 1 // the greedy cannot beat the single-tree optimum
				}
				accSum += acc
			}
			if optDur > 0 {
				sp := 1 - float64(greedyDur)/float64(optDur)
				if sp < 0 {
					sp = 0
				}
				spSum += sp
			}
			n++
		}
		if n == 0 {
			continue
		}
		t.AddRow(typ,
			fmt.Sprintf("%.2f%%", 100*accSum/float64(n)),
			fmt.Sprintf("%.2f%%", 100*spSum/float64(n)))
	}
	return t, nil
}

// TreeCatalog reproduces Table 2: every benchmark tree shape with its node
// count, per-level fan-outs, and exact VVS count.
func TreeCatalog() *Table {
	t := &Table{
		Title:   "Abstraction tree types (Table 2)",
		Headers: []string{"type", "nodes", "fanouts", "VVS"},
	}
	for _, s := range treegen.Table2 {
		t.AddRow(s.Type, s.Nodes(), fmt.Sprint(s.Fanouts), s.CutCount().String())
	}
	return t
}
