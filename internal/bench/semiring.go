package bench

// Semiring benchmark harness (BENCH_6 via `provbench -experiment semiring`):
// what the generic-carrier refactor costs and buys. Three question groups per
// real workload: (1) the float hot path did not regress — batch100-sparse and
// batch100-sparse-nodelta are re-measured with the same shape as BENCH_5, so
// `benchdiff BENCH_5 BENCH_6` gates the shared series; (2) what the generic
// code path costs when the bulk float kernels are taken away —
// batch100-sparse-nobulk runs the identical batch on a hand-written float
// carrier that delegates to provenance.Float's arithmetic but deliberately
// does NOT satisfy the unexported bulk-kernel interface (and must not embed
// Float, which would promote it), so the generic per-term loop is measured
// head to head and GenericOverhead records the ratio; (3) what the
// non-float carriers achieve on the same provenance — bool/count/tropical/
// minmax batch throughput over a naturalized copy of the workload (the
// real coefficients are fractional, which the N[X] carriers reject).

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/semiring"
)

// genericFloat is provenance.Float stripped of its bulk kernels: every
// method delegates through a field (embedding would promote the unexported
// evalBulk methods and put the carrier right back on the bulk path). It
// measures what any new carrier pays: the generic per-term evaluation loop.
type genericFloat struct{ f provenance.Float }

func (g genericFloat) Zero() float64                        { return g.f.Zero() }
func (g genericFloat) One() float64                         { return g.f.One() }
func (g genericFloat) Add(a, b float64) float64             { return g.f.Add(a, b) }
func (g genericFloat) Mul(a, b float64) float64             { return g.f.Mul(a, b) }
func (g genericFloat) NAdd(n int64, x float64) float64      { return g.f.NAdd(n, x) }
func (g genericFloat) Equal(a, b float64) bool              { return g.f.Equal(a, b) }
func (g genericFloat) FromCoeff(c float64) (float64, error) { return g.f.FromCoeff(c) }
func (g genericFloat) Value(x float64) (float64, error)     { return g.f.Value(x) }
func (g genericFloat) Chainable() bool                      { return g.f.Chainable() }

// SemiringWorkloadReport is the semiring measurement of one workload.
type SemiringWorkloadReport struct {
	Polynomials int `json:"polynomials"`
	Monomials   int `json:"monomials"`
	Variables   int `json:"variables"`

	// Benchmarks maps benchmark name → metrics. batch100-sparse and
	// batch100-sparse-nodelta are the BENCH_5-shared float series;
	// batch100-sparse-nobulk is the same batch on the no-bulk generic float
	// carrier; bool-batch100/count-batch100/tropical-batch100/
	// minmax-batch100 run on the naturalized set.
	Benchmarks map[string]Metric `json:"benchmarks"`

	// GenericOverhead is batch100-sparse-nobulk over batch100-sparse: the
	// factor a carrier without bulk kernels pays for the generic loop.
	GenericOverhead float64 `json:"generic_overhead,omitempty"`
}

// SemiringReport is the full BENCH_6 payload.
type SemiringReport struct {
	GOMAXPROCS int                                `json:"gomaxprocs"`
	Workloads  map[string]*SemiringWorkloadReport `json:"workloads"`
}

// RunSemiringBench measures the generic evaluation stack on the given real
// workloads (default: telco and Q5, at the same scale as BENCH_3/BENCH_5 so
// the shared series stay comparable).
func RunSemiringBench(sc Scale, names ...string) (*SemiringReport, error) {
	if len(names) == 0 {
		names = []string{"telco", "Q5"}
	}
	report := &SemiringReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workloads:  map[string]*SemiringWorkloadReport{},
	}
	for _, name := range names {
		w, err := LoadWorkload(name, sc)
		if err != nil {
			return nil, err
		}
		wr, err := runSemiringWorkload(w)
		if err != nil {
			return nil, err
		}
		report.Workloads[name] = wr
	}
	return report, nil
}

// naturalizeSet clones the set's monomial structure with small natural
// coefficients, so the N[X]-strict carriers can compile it. The shape (term
// counts, variable sharing, degrees) is what the evaluation loops care
// about; the coefficient values are not load-bearing for throughput.
func naturalizeSet(s *provenance.Set) *provenance.Set {
	out := provenance.NewSet(s.Vocab)
	for i, p := range s.Polys {
		np := provenance.NewPolynomial()
		for j, m := range p.Monomials() {
			np.AddMonomial(provenance.NewMonomialPows(float64(1+(i+j)%3), m.Vars()...))
		}
		tag := ""
		if i < len(s.Tags) {
			tag = s.Tags[i]
		}
		out.Add(tag, np)
	}
	return out
}

// carrierBatch builds the batch100-sparse shape with per-index values from
// value(i) — each carrier's natural domain (keep/delete bits, counts, costs,
// clearance levels) over the workload's first four leaf variables.
func carrierBatch(w *Workload, value func(i int) float64) ([]*hypo.Scenario, error) {
	var names []string
	for i := 0; len(names) < 4 && i < w.LeafCount; i++ {
		name := fmt.Sprintf("%s%d", w.LeafPrefix, i)
		if _, ok := w.Set.Vocab.Lookup(name); ok {
			names = append(names, name)
		}
	}
	if len(names) < 4 {
		return nil, fmt.Errorf("bench: workload %s has only %d of 4 leaf variables", w.Name, len(names))
	}
	batch := make([]*hypo.Scenario, 100)
	for i := range batch {
		batch[i] = hypo.NewScenario().Set(names[i%len(names)], value(i))
	}
	return batch, nil
}

// benchBatch times EvalBatch on one compiled kernel.
func benchBatch[T any, C provenance.Carrier[T]](k *provenance.Kernel[T, C], batch []*hypo.Scenario, cutoff float64) Metric {
	k.Baseline() // pre-warm so the series measures steady state
	opts := hypo.BatchOptions{Workers: 1, DeltaCutoff: cutoff}
	return metricOf(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := hypo.EvalBatch(k, batch, opts); err != nil {
				b.Fatal(err)
			}
		}
	}))
}

// compileAndBench compiles set into the carrier and times the batch on it.
func compileAndBench[T any, C provenance.Carrier[T]](cr C, set *provenance.Set, batch []*hypo.Scenario) (Metric, error) {
	k, err := provenance.CompileSet[T, C](cr, set)
	if err != nil {
		return Metric{}, err
	}
	return benchBatch(k, batch, 0.5), nil
}

func runSemiringWorkload(w *Workload) (*SemiringWorkloadReport, error) {
	c := w.Set.Compile()
	wr := &SemiringWorkloadReport{
		Polynomials: c.Len(),
		Monomials:   c.Size(),
		Variables:   w.Set.Granularity(),
		Benchmarks:  map[string]Metric{},
	}

	// (1) The BENCH_5-shared float series, identical shape: four sparse
	// scenarios cycled to a batch of 100, workers=1.
	floatBatch, err := carrierBatch(w, func(int) float64 { return 0.8 })
	if err != nil {
		return nil, err
	}
	wr.Benchmarks["batch100-sparse"] = benchBatch(c, floatBatch, 0.5)
	wr.Benchmarks["batch100-sparse-nodelta"] = benchBatch(c, floatBatch, -1)

	// (2) The same batch with the bulk kernels taken away.
	nobulk, err := provenance.CompileSet[float64, genericFloat](genericFloat{}, w.Set)
	if err != nil {
		return nil, err
	}
	wr.Benchmarks["batch100-sparse-nobulk"] = benchBatch(nobulk, floatBatch, 0.5)
	if t := wr.Benchmarks["batch100-sparse"].NsPerOp; t > 0 {
		wr.GenericOverhead = wr.Benchmarks["batch100-sparse-nobulk"].NsPerOp / t
	}

	// (3) Non-float carrier throughput on the naturalized set.
	nat := naturalizeSet(w.Set)
	for name, run := range map[string]func() (Metric, error){
		"bool-batch100": func() (Metric, error) {
			batch, err := carrierBatch(w, func(i int) float64 { return float64(i % 2) })
			if err != nil {
				return Metric{}, err
			}
			return compileAndBench[bool](semiring.Boolean{}, nat, batch)
		},
		"count-batch100": func() (Metric, error) {
			batch, err := carrierBatch(w, func(i int) float64 { return float64(i % 4) })
			if err != nil {
				return Metric{}, err
			}
			return compileAndBench[int64](semiring.Counting{}, nat, batch)
		},
		"tropical-batch100": func() (Metric, error) {
			batch, err := carrierBatch(w, func(i int) float64 { return 0.5 + float64(i%8)/4 })
			if err != nil {
				return Metric{}, err
			}
			return compileAndBench[float64](semiring.Tropical{}, nat, batch)
		},
		"minmax-batch100": func() (Metric, error) {
			batch, err := carrierBatch(w, func(i int) float64 { return float64(1 + i%5) })
			if err != nil {
				return Metric{}, err
			}
			return compileAndBench[float64](semiring.MinMax{}, nat, batch)
		},
	} {
		m, err := run()
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s: %w", w.Name, name, err)
		}
		wr.Benchmarks[name] = m
	}
	return wr, nil
}

// JSON serializes the report, indented for diff-friendly commits.
func (r *SemiringReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Table renders the report for provbench's stdout.
func (r *SemiringReport) Table() *Table {
	tab := &Table{
		Title:   fmt.Sprintf("Semiring-generic kernel (GOMAXPROCS=%d)", r.GOMAXPROCS),
		Headers: []string{"workload", "benchmark", "ns/op", "allocs/op"},
	}
	names := make([]string, 0, len(r.Workloads))
	for name := range r.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wr := r.Workloads[name]
		for _, bname := range []string{
			"batch100-sparse", "batch100-sparse-nodelta", "batch100-sparse-nobulk",
			"bool-batch100", "count-batch100", "tropical-batch100", "minmax-batch100",
		} {
			m, ok := wr.Benchmarks[bname]
			if !ok {
				continue
			}
			tab.AddRow(name, bname, m.NsPerOp, m.AllocsPerOp)
		}
		if wr.GenericOverhead > 0 {
			tab.AddRow(name, "generic-overhead", wr.GenericOverhead, "-")
		}
	}
	return tab
}
