package bench

// Planner benchmark harness (BENCH_5 via `provbench -experiment planner`):
// the three layers of the self-tuning evaluation planner measured on one
// command — incremental compile (Set.Add appending into the live Compiled
// vs the pre-incremental invalidate-and-rebuild), chained stream deltas
// (delta against the previous scenario's answers vs against the identity
// baseline, on a correlated random-walk stream), and the adaptive
// delta-vs-full cutoff (cost-model routing vs the static default, on a
// mixed-density batch built so the static guess misroutes the dense half).
// The batch100-sparse series from BENCH_3 is re-measured too, so the
// allocation cut on the sparse batch path is recorded side by side.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
)

// plannerAddOps is how many Add+Compiled iterations the append-vs-rebuild
// comparison averages over. The rebuild side recompiles the whole set every
// iteration, so this is also what bounds the harness's runtime.
const plannerAddOps = 64

// PlannerWorkloadReport is the planner measurement of one workload.
type PlannerWorkloadReport struct {
	Polynomials int `json:"polynomials"`
	Monomials   int `json:"monomials"`
	Variables   int `json:"variables"`

	// Benchmarks maps benchmark name → metrics. Names: add-append,
	// add-rebuild, stream-chained, stream-identity, batch100-sparse,
	// batch100-sparse-nodelta (real workloads); batch-mixed-adaptive,
	// batch-mixed-static (the synthetic mixed-density workload). The two
	// add-* series are wall-clock averages over plannerAddOps operations
	// (allocs are not tracked there).
	Benchmarks map[string]Metric `json:"benchmarks"`

	// AppendSpeedup is add-rebuild time over add-append time: what one
	// Engine.Add costs when the compiled form is extended in place instead
	// of recompiled.
	AppendSpeedup float64 `json:"append_speedup,omitempty"`

	// ChainSpeedup is stream-identity time over stream-chained time on the
	// correlated stream: the gain from delta-evaluating against the
	// previous scenario's answers instead of the identity baseline.
	ChainSpeedup float64 `json:"chain_speedup,omitempty"`

	// AdaptiveSpeedup is batch-mixed-static over batch-mixed-adaptive: the
	// gain from routing by learned per-term cost where the static cutoff
	// misroutes the dense scenarios.
	AdaptiveSpeedup float64 `json:"adaptive_speedup,omitempty"`
}

// PlannerReport is the full BENCH_5 payload.
type PlannerReport struct {
	GOMAXPROCS int                               `json:"gomaxprocs"`
	Workloads  map[string]*PlannerWorkloadReport `json:"workloads"`
}

// RunPlannerBench measures the planner layers on the given real workloads
// (default: telco and Q5, at the delta benchmark's sparse scale so numbers
// are comparable with BENCH_3) plus the synthetic mixed-density workload.
func RunPlannerBench(sc Scale, names ...string) (*PlannerReport, error) {
	if len(names) == 0 {
		names = []string{"telco", "Q5"}
	}
	report := &PlannerReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workloads:  map[string]*PlannerWorkloadReport{},
	}
	for _, name := range names {
		w, err := LoadWorkload(name, sc)
		if err != nil {
			return nil, err
		}
		wr, err := runPlannerWorkload(w)
		if err != nil {
			return nil, err
		}
		report.Workloads[name] = wr
	}
	report.Workloads["mixed-density"] = runPlannerMixed()
	return report, nil
}

// appendPolys builds small polynomials over the workload's first leaf
// variables — the shape of a fresh provenance row arriving in a session.
func appendPolys(w *Workload, n int) ([]*provenance.Polynomial, error) {
	var leaves []provenance.Var
	for i := 0; len(leaves) < 2 && i < w.LeafCount; i++ {
		if v, ok := w.Set.Vocab.Lookup(fmt.Sprintf("%s%d", w.LeafPrefix, i)); ok {
			leaves = append(leaves, v)
		}
	}
	if len(leaves) < 2 {
		return nil, fmt.Errorf("bench: workload %s has fewer than 2 leaf variables", w.Name)
	}
	out := make([]*provenance.Polynomial, n)
	for i := range out {
		p := provenance.NewPolynomial()
		p.AddTerm(1+float64(i), leaves[0])
		p.AddTerm(2+float64(i), leaves[0], leaves[1])
		out[i] = p
	}
	return out, nil
}

// runAddBench times n Add+Compiled iterations against a fresh clone of the
// workload, with the delta index and baseline pre-built (the steady state
// of a long session). rebuild forces the pre-incremental behavior by
// invalidating the compiled cache before every re-access.
func runAddBench(w *Workload, polys []*provenance.Polynomial, rebuild bool) Metric {
	set := w.Set.Clone()
	c := set.Compiled()
	c.NewDeltaEval()
	c.Baseline()
	start := time.Now()
	for i, p := range polys {
		set.Add(fmt.Sprintf("added%d", i), p)
		if rebuild {
			set.InvalidateCompiled()
		}
		set.Compiled()
	}
	return Metric{NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(len(polys))}
}

// correlatedStream builds a random-walk scenario stream: every scenario
// assigns the same width leaf variables, each step changing one value — the
// correlated shape of an interactive what-if session.
func correlatedStream(w *Workload, n, width int) ([]*hypo.Scenario, error) {
	var names []string
	for i := 0; len(names) < width && i < w.LeafCount; i++ {
		name := fmt.Sprintf("%s%d", w.LeafPrefix, i)
		if _, ok := w.Set.Vocab.Lookup(name); ok {
			names = append(names, name)
		}
	}
	if len(names) < width {
		return nil, fmt.Errorf("bench: workload %s has only %d of %d leaf variables", w.Name, len(names), width)
	}
	rng := rand.New(rand.NewSource(7))
	cur := map[string]float64{}
	for _, name := range names {
		cur[name] = 0.5 + rng.Float64()
	}
	out := make([]*hypo.Scenario, n)
	for i := range out {
		cur[names[rng.Intn(width)]] = 0.5 + rng.Float64()
		sc := hypo.NewScenario()
		for k, v := range cur {
			sc.Set(k, v)
		}
		out[i] = sc
	}
	return out, nil
}

func runPlannerWorkload(w *Workload) (*PlannerWorkloadReport, error) {
	c := w.Set.Compile()
	c.Baseline() // pre-warm so every series measures steady state
	wr := &PlannerWorkloadReport{
		Polynomials: c.Len(),
		Monomials:   c.Size(),
		Variables:   w.Set.Granularity(),
		Benchmarks:  map[string]Metric{},
	}

	polys, err := appendPolys(w, plannerAddOps)
	if err != nil {
		return nil, err
	}
	wr.Benchmarks["add-append"] = runAddBench(w, polys, false)
	wr.Benchmarks["add-rebuild"] = runAddBench(w, polys, true)
	if t := wr.Benchmarks["add-append"].NsPerOp; t > 0 {
		wr.AppendSpeedup = wr.Benchmarks["add-rebuild"].NsPerOp / t
	}

	stream, err := correlatedStream(w, 100, 4)
	if err != nil {
		return nil, err
	}
	for name, chain := range map[string]bool{"stream-chained": true, "stream-identity": false} {
		opts := hypo.BatchOptions{Workers: 1, DeltaCutoff: 0.99, Chain: chain}
		wr.Benchmarks[name] = metricOf(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hypo.EvalBatch(c, stream, opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	if t := wr.Benchmarks["stream-chained"].NsPerOp; t > 0 {
		wr.ChainSpeedup = wr.Benchmarks["stream-identity"].NsPerOp / t
	}

	// The BENCH_3 sparse batch, re-measured: the delta-scratch and row
	// pooling shows up as the allocs/op drop against BENCH_3.json.
	_, scenarios, err := sparseTouched(w, 4)
	if err != nil {
		return nil, err
	}
	batch := make([]*hypo.Scenario, 100)
	for i := range batch {
		batch[i] = scenarios[i%len(scenarios)]
	}
	for name, cutoff := range map[string]float64{"batch100-sparse": 0.5, "batch100-sparse-nodelta": -1} {
		opts := hypo.BatchOptions{Workers: 1, DeltaCutoff: cutoff}
		wr.Benchmarks[name] = metricOf(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hypo.EvalBatch(c, batch, opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return wr, nil
}

// runPlannerMixed measures adaptive-vs-static routing on a synthetic
// mixed-density workload engineered so the static cutoff misroutes: a hub
// variable occurs in ~60% of all terms — past the static 0.5 default, so
// static routing evaluates hub scenarios in full — yet the delta path still
// wins there (recompute 60%, copy the rest). The adaptive model learns the
// real per-term costs and routes the hub scenarios back onto the delta
// path; sparse per-polynomial scenarios ride it either way.
func runPlannerMixed() *PlannerWorkloadReport {
	vb := provenance.NewVocab()
	hub := vb.Var("hub")
	set := provenance.NewSet(vb)
	const nPolys = 400
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < nPolys; i++ {
		p := provenance.NewPolynomial()
		own := vb.Var(fmt.Sprintf("s%d", i))
		for t := 0; t < 24; t++ {
			// Distinct per-term detail variables keep the monomials from
			// merging; 60% of polynomials carry the hub in every term.
			detail := vb.Var(fmt.Sprintf("d%d_%d", i, t))
			if i%10 < 6 {
				p.AddTerm(1+rng.Float64(), hub, own, detail)
			} else {
				p.AddTerm(1+rng.Float64(), own, detail)
			}
		}
		set.Add(fmt.Sprintf("g%d", i), p)
	}
	c := set.Compile()
	c.Baseline()

	scs := make([]*hypo.Scenario, 100)
	for i := range scs {
		if i%2 == 0 {
			scs[i] = hypo.NewScenario().Set("hub", 0.8)
		} else {
			scs[i] = hypo.NewScenario().Set(fmt.Sprintf("s%d", i%nPolys), 1.2)
		}
	}

	wr := &PlannerWorkloadReport{
		Polynomials: c.Len(),
		Monomials:   c.Size(),
		Variables:   set.Granularity(),
		Benchmarks:  map[string]Metric{},
	}
	counters := &hypo.BatchCounters{}
	adaptive := hypo.BatchOptions{Workers: 1, Counters: counters}
	// Train the model off the clock: enough evaluations that probing has
	// sampled the minority path and the learned cutoff has settled.
	for i := 0; i < 8; i++ {
		if _, err := hypo.EvalBatch(c, scs, adaptive); err != nil {
			panic(err)
		}
	}
	for name, opts := range map[string]hypo.BatchOptions{
		"batch-mixed-adaptive": adaptive,
		"batch-mixed-static":   {Workers: 1, DeltaCutoff: hypo.DefaultDeltaCutoff},
	} {
		opts := opts
		wr.Benchmarks[name] = metricOf(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hypo.EvalBatch(c, scs, opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	if t := wr.Benchmarks["batch-mixed-adaptive"].NsPerOp; t > 0 {
		wr.AdaptiveSpeedup = wr.Benchmarks["batch-mixed-static"].NsPerOp / t
	}
	return wr
}

// JSON serializes the report, indented for diff-friendly commits.
func (r *PlannerReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Table renders the report for provbench's stdout.
func (r *PlannerReport) Table() *Table {
	tab := &Table{
		Title:   fmt.Sprintf("Self-tuning evaluation planner (GOMAXPROCS=%d)", r.GOMAXPROCS),
		Headers: []string{"workload", "benchmark", "ns/op", "allocs/op"},
	}
	names := make([]string, 0, len(r.Workloads))
	for name := range r.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wr := r.Workloads[name]
		for _, bname := range []string{
			"add-append", "add-rebuild", "stream-chained", "stream-identity",
			"batch100-sparse", "batch100-sparse-nodelta",
			"batch-mixed-adaptive", "batch-mixed-static",
		} {
			m, ok := wr.Benchmarks[bname]
			if !ok {
				continue
			}
			tab.AddRow(name, bname, m.NsPerOp, m.AllocsPerOp)
		}
		if wr.AppendSpeedup > 0 {
			tab.AddRow(name, "append-speedup", wr.AppendSpeedup, "-")
		}
		if wr.ChainSpeedup > 0 {
			tab.AddRow(name, "chain-speedup", wr.ChainSpeedup, "-")
		}
		if wr.AdaptiveSpeedup > 0 {
			tab.AddRow(name, "adaptive-speedup", wr.AdaptiveSpeedup, "-")
		}
	}
	return tab
}
