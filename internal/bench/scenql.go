package bench

// ScenQL benchmark harness (BENCH_7 via `provbench -experiment scenql`):
// what server-side scenario generation buys over shipping the same sweep
// as NDJSON. Per real workload, one ~100k-point two-axis grid is evaluated
// twice through the real HTTP server: once as a single ScenQL statement on
// /query/stream (the generator runs next to the kernel, scenarios iterate
// in snake order so nearly every point is a chained delta), and once as
// 100k pre-materialized {"assign":…} lines on /whatif/stream (the wire
// pays per-line transport and JSON decoding; the request bytes are built
// before the clock starts, so the comparison charges the wire path nothing
// for client-side encoding). GeneratorSpeedup is wire over query wall
// time. A third pass pushes ranking down (ORDER BY … LIMIT 10): the wire
// client answering the same question still drains the full sweep, so
// TopKSpeedup isolates what server-side generation saves in response
// traffic. The float batch100-sparse series is re-measured with the exact
// BENCH_5/BENCH_6 shape so `benchdiff BENCH_6 BENCH_7` gates it.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"time"

	"provabs/internal/registry"
	"provabs/internal/scenql"
	"provabs/internal/server"
)

// scenqlGridSide is the per-axis point count of the benchmark grid;
// squared it is the sweep size (317² = 100489 ≥ the 100k floor).
const scenqlGridSide = 317

// scenqlReps is how many times each path runs; the report records the
// median, which shrugs off a GC pause or scheduler hiccup in a pass or
// two.
const scenqlReps = 5

// ScenQLWorkloadReport is the generator-vs-wire measurement of one
// workload.
type ScenQLWorkloadReport struct {
	Polynomials int `json:"polynomials"`
	Monomials   int `json:"monomials"`
	Variables   int `json:"variables"`

	// Statement is the ScenQL grid both paths evaluate.
	Statement string `json:"statement"`
	// Scenarios is the sweep size (both paths answered exactly this many).
	Scenarios int64 `json:"scenarios"`

	// QueryNs / WireNs are wall-clock totals over the whole sweep through
	// the HTTP server: one POST /query/stream statement vs the same
	// scenarios POSTed as NDJSON to /whatif/stream by a full-duplex client.
	QueryNs float64 `json:"query_ns_total"`
	WireNs  float64 `json:"wire_ns_total"`
	// QueryNsPerScenario / WireNsPerScenario divide by Scenarios.
	QueryNsPerScenario float64 `json:"query_ns_per_scenario"`
	WireNsPerScenario  float64 `json:"wire_ns_per_scenario"`
	// GeneratorSpeedup is WireNs / QueryNs (> 1: server-side generation
	// beats the wire).
	GeneratorSpeedup float64 `json:"generator_speedup"`

	// TopKNs is the same sweep with ranking pushed down (ORDER BY … LIMIT
	// 10): the server still evaluates every scenario but only the top rows
	// cross the wire. A wire client answering the same question must drain
	// the full sweep first, so TopKSpeedup = WireNs / TopKNs is what
	// server-side generation buys on ranking queries.
	TopKNs            float64 `json:"topk_ns_total"`
	TopKNsPerScenario float64 `json:"topk_ns_per_scenario"`
	TopKSpeedup       float64 `json:"topk_speedup"`

	// Benchmarks carries the BENCH_6-shared float series (batch100-sparse,
	// batch100-sparse-nodelta) re-measured with the identical shape, so the
	// benchdiff gate spans BENCH_6 → BENCH_7.
	Benchmarks map[string]Metric `json:"benchmarks"`
}

// ScenQLReport is the full BENCH_7 payload.
type ScenQLReport struct {
	GOMAXPROCS int                              `json:"gomaxprocs"`
	Workloads  map[string]*ScenQLWorkloadReport `json:"workloads"`
}

// RunScenQLBench measures server-side scenario generation against NDJSON
// wire delivery on the given real workloads (default: telco and Q5, at the
// BENCH_3..6 scale so the shared series stay comparable).
func RunScenQLBench(sc Scale, names ...string) (*ScenQLReport, error) {
	if len(names) == 0 {
		names = []string{"telco", "Q5"}
	}
	report := &ScenQLReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workloads:  map[string]*ScenQLWorkloadReport{},
	}
	for _, name := range names {
		w, err := LoadWorkload(name, sc)
		if err != nil {
			return nil, err
		}
		wr, err := runScenQLWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		report.Workloads[name] = wr
	}
	return report, nil
}

// scenqlStatement builds the two-axis grid over the workload's first two
// leaf variables. The swept values are integer grid indices — the delta
// kernel's cost depends on which variables move, not on their magnitudes.
func scenqlStatement(w *Workload) (string, []string, error) {
	var names []string
	for i := 0; len(names) < 2 && i < w.LeafCount; i++ {
		name := fmt.Sprintf("%s%d", w.LeafPrefix, i)
		if _, ok := w.Set.Vocab.Lookup(name); ok {
			names = append(names, name)
		}
	}
	if len(names) < 2 {
		return "", nil, fmt.Errorf("workload has only %d of 2 leaf variables", len(names))
	}
	hi := scenqlGridSide - 1
	stmt := fmt.Sprintf("%s IN [0:%d:1] %s IN [0:%d:1]", names[0], hi, names[1], hi)
	return stmt, names, nil
}

func runScenQLWorkload(w *Workload) (*ScenQLWorkloadReport, error) {
	stmt, names, err := scenqlStatement(w)
	if err != nil {
		return nil, err
	}
	reg := registry.New()
	sess, err := reg.Create("bench", w.Set, nil)
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(server.New(reg).Handler())
	defer ts.Close()

	// Warm: compile the kernel outside the clock.
	if _, err := sess.Engine().Query(fmt.Sprintf("%s IN [0:3:1]", names[0])); err != nil {
		return nil, err
	}

	wr := &ScenQLWorkloadReport{
		Polynomials: w.Set.Len(),
		Monomials:   w.Set.Size(),
		Variables:   w.Set.Granularity(),
		Statement:   stmt,
		Benchmarks:  map[string]Metric{},
	}

	body, scenarios, err := wireBody(w, stmt)
	if err != nil {
		return nil, err
	}
	topStmt := stmt + " ORDER BY ans[0] DESC LIMIT 10"
	var queryRuns, wireRuns, topKRuns []float64
	for rep := 0; rep < scenqlReps; rep++ { // interleaved so drift hits all paths alike
		ns, rows, err := timeQueryStream(ts.URL, stmt)
		if err != nil {
			return nil, err
		}
		if rows != scenarios {
			return nil, fmt.Errorf("query streamed %d rows, generator yields %d", rows, scenarios)
		}
		queryRuns = append(queryRuns, ns)
		ns, rows, err = timeWireStream(ts.Listener.Addr().String(), body)
		if err != nil {
			return nil, err
		}
		if rows != scenarios {
			return nil, fmt.Errorf("wire streamed %d rows, want %d", rows, scenarios)
		}
		wireRuns = append(wireRuns, ns)
		ns, rows, err = timeQueryStream(ts.URL, topStmt)
		if err != nil {
			return nil, err
		}
		if rows != 10 {
			return nil, fmt.Errorf("top-k streamed %d rows, want 10", rows)
		}
		topKRuns = append(topKRuns, ns)
	}
	queryNs, wireNs, topKNs := median(queryRuns), median(wireRuns), median(topKRuns)

	wr.Scenarios = scenarios
	wr.QueryNs = queryNs
	wr.WireNs = wireNs
	wr.TopKNs = topKNs
	wr.QueryNsPerScenario = queryNs / float64(scenarios)
	wr.WireNsPerScenario = wireNs / float64(scenarios)
	wr.TopKNsPerScenario = topKNs / float64(scenarios)
	if queryNs > 0 {
		wr.GeneratorSpeedup = wireNs / queryNs
	}
	if topKNs > 0 {
		wr.TopKSpeedup = wireNs / topKNs
	}

	// The BENCH_6-shared float series, identical shape and options.
	c := w.Set.Compile()
	floatBatch, err := carrierBatch(w, func(int) float64 { return 0.8 })
	if err != nil {
		return nil, err
	}
	wr.Benchmarks["batch100-sparse"] = benchBatch(c, floatBatch, 0.5)
	wr.Benchmarks["batch100-sparse-nodelta"] = benchBatch(c, floatBatch, -1)
	return wr, nil
}

// timeQueryStream runs one statement through POST /query/stream and drains
// the NDJSON response, returning the wall time and the row count (the
// header line is not counted).
func timeQueryStream(base, stmt string) (float64, int64, error) {
	req, err := json.Marshal(map[string]string{"query": stmt})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	resp, err := http.Post(base+"/v1/sessions/bench/query/stream",
		"application/json", bytes.NewReader(req))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("query stream status %d", resp.StatusCode)
	}
	rows, err := countLines(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	return float64(time.Since(start).Nanoseconds()), rows - 1, nil
}

// wireBody pre-materializes the statement's scenarios as NDJSON request
// bytes — outside the measured window, so the wire path is charged for
// transport, decoding and evaluation only, not for client-side encoding.
func wireBody(w *Workload, stmt string) (*bytes.Buffer, int64, error) {
	q, err := scenql.Parse(stmt)
	if err != nil {
		return nil, 0, err
	}
	p, err := scenql.Compile(q, w.Set.Vocab, w.Set.Tags)
	if err != nil {
		return nil, 0, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	n := int64(0)
	it := p.Iter()
	for {
		sc, ok := it.Next()
		if !ok {
			break
		}
		if err := enc.Encode(map[string]any{"assign": sc.Assign}); err != nil {
			return nil, 0, err
		}
		n++
	}
	return &buf, n, nil
}

// timeWireStream POSTs the pre-built NDJSON body to /whatif/stream over a
// raw connection and drains the response while the body is still being
// written. net/http's client is half-duplex (it sends the whole request
// before reading the response), which against a 100k-line streaming
// endpoint means the response backs up into TCP buffers and the measurement
// collapses into window-sized lockstep; a real streaming what-if client —
// like the server side of this endpoint — reads and writes concurrently.
func timeWireStream(addr string, body *bytes.Buffer) (float64, int64, error) {
	start := time.Now()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	writeErr := make(chan error, 1)
	go func() {
		_, err := fmt.Fprintf(conn, "POST /v1/sessions/bench/whatif/stream HTTP/1.1\r\n"+
			"Host: bench\r\nContent-Type: application/x-ndjson\r\nContent-Length: %d\r\n\r\n",
			body.Len())
		if err == nil {
			_, err = conn.Write(body.Bytes())
		}
		writeErr <- err
	}()
	req, err := http.NewRequest("POST", "/v1/sessions/bench/whatif/stream", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := http.ReadResponse(bufio.NewReader(conn), req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("whatif stream status %d", resp.StatusCode)
	}
	rows, err := countLines(resp.Body)
	if err != nil {
		return 0, 0, err
	}
	if err := <-writeErr; err != nil {
		return 0, 0, err
	}
	return float64(time.Since(start).Nanoseconds()), rows, nil
}

func median(runs []float64) float64 {
	s := append([]float64(nil), runs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func countLines(r io.Reader) (int64, error) {
	scan := bufio.NewScanner(r)
	scan.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := int64(0)
	for scan.Scan() {
		if len(bytes.TrimSpace(scan.Bytes())) > 0 {
			n++
		}
	}
	return n, scan.Err()
}

// JSON serializes the report, indented for diff-friendly commits.
func (r *ScenQLReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Table renders the report for provbench's stdout.
func (r *ScenQLReport) Table() *Table {
	tab := &Table{
		Title:   fmt.Sprintf("ScenQL generator vs NDJSON wire (GOMAXPROCS=%d)", r.GOMAXPROCS),
		Headers: []string{"workload", "scenarios", "query ns/scn", "wire ns/scn", "speedup", "top-k speedup"},
	}
	names := make([]string, 0, len(r.Workloads))
	for name := range r.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wr := r.Workloads[name]
		tab.AddRow(name, wr.Scenarios,
			fmt.Sprintf("%.0f", wr.QueryNsPerScenario),
			fmt.Sprintf("%.0f", wr.WireNsPerScenario),
			fmt.Sprintf("%.2fx", wr.GeneratorSpeedup),
			fmt.Sprintf("%.2fx", wr.TopKSpeedup))
	}
	return tab
}
