package bench

import (
	"strings"
	"testing"
	"time"

	"provabs/internal/treegen"
)

// tinyScale keeps the harness tests fast.
func tinyScale() Scale {
	return Scale{TPCHScaleFactor: 0.001, TelcoCustomers: 200, TelcoZips: 10, Seed: 1}
}

func TestLoadWorkloads(t *testing.T) {
	ws, err := LoadWorkloads(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("workloads = %d, want 4", len(ws))
	}
	names := []string{"Q5", "Q10", "Q1", "telco"}
	for i, w := range ws {
		if w.Name != names[i] {
			t.Errorf("workload %d = %s, want %s", i, w.Name, names[i])
		}
		if w.Set.Size() == 0 {
			t.Errorf("workload %s has empty provenance", w.Name)
		}
	}
}

func TestLoadWorkloadUnknown(t *testing.T) {
	if _, err := LoadWorkload("nope", tinyScale()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestCompressionTimeVsCuts(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy workload sweep; skipped with -short")
	}
	w, err := LoadWorkload("Q5", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := CompressionTimeVsCuts(w, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(treegen.ShapesOfType(1)) {
		t.Errorf("rows = %d, want %d", len(tab.Rows), len(treegen.ShapesOfType(1)))
	}
	// Small type-1 shapes are brute-forceable; the largest are not.
	if tab.Rows[0][5] == "-" {
		t.Error("smallest type-1 shape should be brute-forceable")
	}
	if tab.Rows[len(tab.Rows)-1][5] != "-" {
		t.Error("largest type-1 shape should exceed the brute limit")
	}
	if !strings.Contains(tab.String(), "cuts") || !strings.Contains(tab.CSV(), "opt") {
		t.Error("table rendering broken")
	}
}

func TestCompressionTimeVsDataSize(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy workload sweep; skipped with -short")
	}
	for _, name := range []string{"telco", "Q1"} {
		tab, err := CompressionTimeVsDataSize(name, tinyScale(), []float64{0.5, 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 2 {
			t.Errorf("%s rows = %d, want 2", name, len(tab.Rows))
		}
	}
}

func TestBoundSweepAndFigure9(t *testing.T) {
	w, err := LoadWorkload("Q5", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	shape := treegen.SmallestOfType(1)
	bounds := BoundSweep(w, shape, 4)
	if len(bounds) == 0 {
		t.Fatal("no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Errorf("bounds not increasing: %v", bounds)
		}
	}
	tab, err := CompressionTimeVsBound(w, shape, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Error("figure 9 produced no rows")
	}
}

func TestSpeedupVsBound(t *testing.T) {
	w, err := LoadWorkload("Q5", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := SpeedupVsBound(w, treegen.SmallestOfType(1), 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[2], "%") {
			t.Errorf("speedup cell %q not a percentage", row[2])
		}
	}
}

func TestTimeVsNumTrees(t *testing.T) {
	w, err := LoadWorkload("telco", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := TimeVsNumTrees(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 { // k = 2, 3, 4
		t.Errorf("rows = %d, want 3", len(tab.Rows))
	}
}

func TestOptVsCompetitor(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy competitor comparison; skipped with -short")
	}
	w, err := LoadWorkload("Q1", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := OptVsCompetitor(w, treegen.SmallestOfType(1), 2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if row[4] != "ok" && row[4] != "timeout" && row[4] != "inadequate" {
			t.Errorf("unexpected status %q", row[4])
		}
	}
}

func TestTimeVsNumVariables(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy variable-count sweep; skipped with -short")
	}
	tab, err := TimeVsNumVariables("Q1", tinyScale(), []int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	// More variable groups → more distinct variables in the provenance.
	if tab.Rows[0][0] >= tab.Rows[1][0] && len(tab.Rows[0][0]) >= len(tab.Rows[1][0]) {
		t.Errorf("variable count did not grow: %v vs %v", tab.Rows[0][0], tab.Rows[1][0])
	}
}

func TestGreedyQualityTable(t *testing.T) {
	w, err := LoadWorkload("Q5", tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	tab, err := GreedyQuality(w, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[1], "%") || !strings.HasSuffix(row[2], "%") {
			t.Errorf("cells not percentages: %v", row)
		}
	}
}

// TestRunDeltaBench exercises the BENCH_3 harness end to end at tiny scale:
// the report must carry every benchmark, a positive delta speedup, and
// valid JSON.
func TestRunDeltaBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks; skipped with -short")
	}
	rep, err := RunDeltaBench(tinyScale(), "telco")
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d", rep.GOMAXPROCS)
	}
	wr, ok := rep.Workloads["telco"]
	if !ok {
		t.Fatal("no telco workload in report")
	}
	for _, name := range []string{
		"full-eval", "delta-eval-touch1", "delta-eval-touch4",
		"sharded-eval-workers1", "sharded-eval-workers2", "sharded-eval-workers4",
		"batch100-sparse", "batch100-sparse-nodelta",
	} {
		m, ok := wr.Benchmarks[name]
		if !ok || m.NsPerOp <= 0 {
			t.Errorf("benchmark %s = %+v", name, m)
		}
	}
	if wr.DeltaSpeedup <= 1 {
		t.Errorf("delta speedup = %v, want > 1 even at tiny scale", wr.DeltaSpeedup)
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"delta_speedup"`) {
		t.Errorf("JSON missing delta_speedup: %s", out)
	}
	if !strings.Contains(rep.Table().String(), "delta-eval-touch1") {
		t.Error("table rendering missing delta benchmark")
	}
}

func TestTreeCatalogMatchesTable2(t *testing.T) {
	tab := TreeCatalog()
	if len(tab.Rows) != len(treegen.Table2) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(treegen.Table2))
	}
	if tab.Rows[0][1] != "131" || tab.Rows[0][3] != "5" {
		t.Errorf("first row = %v, want nodes 131, VVS 5", tab.Rows[0])
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Headers: []string{"a", "b"}}
	tab.AddRow(1, "x,y")
	s := tab.String()
	if !strings.Contains(s, "T\n=") || !strings.Contains(s, "a") {
		t.Errorf("String output:\n%s", s)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("CSV quoting broken: %s", csv)
	}
	if got := fmtDuration(0); got != "-" {
		t.Errorf("fmtDuration(0) = %q", got)
	}
	if got := fmtDuration(1500 * time.Millisecond); got != "1.50s" {
		t.Errorf("fmtDuration(1.5s) = %q", got)
	}
}

// TestRunSemiringBench exercises the BENCH_6 harness end to end at tiny
// scale: every series present, the no-bulk overhead recorded, valid JSON.
func TestRunSemiringBench(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks; skipped with -short")
	}
	rep, err := RunSemiringBench(tinyScale(), "telco")
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS < 1 {
		t.Errorf("GOMAXPROCS = %d", rep.GOMAXPROCS)
	}
	wr, ok := rep.Workloads["telco"]
	if !ok {
		t.Fatal("no telco workload in report")
	}
	for _, name := range []string{
		"batch100-sparse", "batch100-sparse-nodelta", "batch100-sparse-nobulk",
		"bool-batch100", "count-batch100", "tropical-batch100", "minmax-batch100",
	} {
		m, ok := wr.Benchmarks[name]
		if !ok || m.NsPerOp <= 0 {
			t.Errorf("benchmark %s = %+v", name, m)
		}
	}
	if wr.GenericOverhead <= 0 {
		t.Errorf("generic overhead = %v, want > 0", wr.GenericOverhead)
	}
	out, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"generic_overhead"`) {
		t.Errorf("JSON missing generic_overhead: %s", out)
	}
	if !strings.Contains(rep.Table().String(), "bool-batch100") {
		t.Error("table rendering missing carrier benchmark")
	}
}
