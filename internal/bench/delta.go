package bench

// Delta-evaluation benchmark harness: full-vs-delta scenario evaluation and
// 1-vs-N-core single-scenario latency, measured with testing.Benchmark and
// serialized as machine-readable JSON (BENCH_3.json via `make bench`), so
// the perf trajectory of the delta kernel reproduces with one command.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"testing"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
)

// Metric is one benchmark measurement, the benchmark-name → numbers payload
// of BENCH_3.json.
type Metric struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func metricOf(r testing.BenchmarkResult) Metric {
	return Metric{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// DeltaWorkloadReport is the delta/sharding measurement of one workload.
type DeltaWorkloadReport struct {
	Polynomials int `json:"polynomials"`
	Monomials   int `json:"monomials"`
	Variables   int `json:"variables"`

	// Benchmarks maps benchmark name → metrics. Names: full-eval,
	// delta-eval-touch1, delta-eval-touch4, sharded-eval-workers{1,2,4},
	// batch100-sparse, batch100-sparse-nodelta.
	Benchmarks map[string]Metric `json:"benchmarks"`

	// DeltaSpeedup is full-eval time over delta-eval-touch1 time: how much
	// a one-variable what-if gains from recomputing only affected
	// polynomials.
	DeltaSpeedup float64 `json:"delta_speedup"`

	// ShardSpeedup maps "workers2"/"workers4" → single-scenario speedup over
	// the 1-worker run. Near-linear on real cores; ~1 when GOMAXPROCS is 1.
	ShardSpeedup map[string]float64 `json:"shard_speedup"`
}

// DeltaReport is the full BENCH_3 payload.
type DeltaReport struct {
	GOMAXPROCS int                             `json:"gomaxprocs"`
	Workloads  map[string]*DeltaWorkloadReport `json:"workloads"`
}

// DeltaScale sizes the delta benchmark: sparser than DefaultScale (more
// zips, more customers) so that a single plan variable's affected set is a
// small fraction of the polynomials — the shape the paper's interactive
// what-ifs have at production scale.
func DeltaScale() Scale {
	return Scale{TPCHScaleFactor: 0.002, TelcoCustomers: 2000, TelcoZips: 200, Seed: 1}
}

// RunDeltaBench measures full-vs-delta and sharded single-scenario latency
// on the given workloads (default: telco and Q5) at the given scale.
func RunDeltaBench(sc Scale, names ...string) (*DeltaReport, error) {
	if len(names) == 0 {
		names = []string{"telco", "Q5"}
	}
	report := &DeltaReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workloads:  map[string]*DeltaWorkloadReport{},
	}
	for _, name := range names {
		w, err := LoadWorkload(name, sc)
		if err != nil {
			return nil, err
		}
		wr, err := runDeltaWorkload(w)
		if err != nil {
			return nil, err
		}
		report.Workloads[name] = wr
	}
	return report, nil
}

// sparseTouched resolves the workload's first k leaf variables — the paper's
// "what if this plan's price changed" shape.
func sparseTouched(w *Workload, k int) ([]provenance.Var, []*hypo.Scenario, error) {
	touched := make([]provenance.Var, 0, k)
	scenarios := make([]*hypo.Scenario, 0, k)
	for i := 0; len(touched) < k && i < w.LeafCount; i++ {
		name := fmt.Sprintf("%s%d", w.LeafPrefix, i)
		v, ok := w.Set.Vocab.Lookup(name)
		if !ok {
			continue
		}
		touched = append(touched, v)
		scenarios = append(scenarios, hypo.NewScenario().Set(name, 0.8))
	}
	if len(touched) < k {
		return nil, nil, fmt.Errorf("bench: workload %s has only %d of %d leaf variables", w.Name, len(touched), k)
	}
	return touched, scenarios, nil
}

func runDeltaWorkload(w *Workload) (*DeltaWorkloadReport, error) {
	c := w.Set.Compile()
	c.Baseline() // pre-warm so the delta benchmarks measure steady state
	wr := &DeltaWorkloadReport{
		Polynomials:  c.Len(),
		Monomials:    c.Size(),
		Variables:    w.Set.Granularity(),
		Benchmarks:   map[string]Metric{},
		ShardSpeedup: map[string]float64{},
	}
	touched4, scenarios, err := sparseTouched(w, 4)
	if err != nil {
		return nil, err
	}
	// valFor builds the dense valuation matching a touched prefix, keeping
	// the EvalDelta contract (identity everywhere outside touched).
	valFor := func(touched []provenance.Var) []float64 {
		val := c.NewValuation()
		for _, v := range touched {
			val[v] = 0.8
		}
		return val
	}
	val := valFor(touched4[:1])

	full := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var out []float64
		for i := 0; i < b.N; i++ {
			out = c.Eval(val, out)
		}
	})
	wr.Benchmarks["full-eval"] = metricOf(full)

	d := c.NewDeltaEval()
	for name, k := range map[string]int{"delta-eval-touch1": 1, "delta-eval-touch4": 4} {
		touched := touched4[:k]
		kval := valFor(touched)
		wr.Benchmarks[name] = metricOf(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var out []float64
			for i := 0; i < b.N; i++ {
				out = d.Eval(touched, kval, out)
			}
		}))
	}
	if t1 := wr.Benchmarks["delta-eval-touch1"].NsPerOp; t1 > 0 {
		wr.DeltaSpeedup = wr.Benchmarks["full-eval"].NsPerOp / t1
	}

	for _, workers := range []int{1, 2, 4} {
		workers := workers
		wr.Benchmarks[fmt.Sprintf("sharded-eval-workers%d", workers)] = metricOf(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var out []float64
			for i := 0; i < b.N; i++ {
				out = c.EvalSharded(val, out, workers)
			}
		}))
	}
	if t1 := wr.Benchmarks["sharded-eval-workers1"].NsPerOp; t1 > 0 {
		for _, workers := range []int{2, 4} {
			key := fmt.Sprintf("workers%d", workers)
			wr.ShardSpeedup[key] = t1 / wr.Benchmarks[fmt.Sprintf("sharded-eval-workers%d", workers)].NsPerOp
		}
	}

	// The production batch path: 100 one-variable scenarios through
	// hypo.EvalBatch, with and without the delta routing.
	batch := make([]*hypo.Scenario, 100)
	for i := range batch {
		batch[i] = scenarios[i%len(scenarios)]
	}
	for name, cutoff := range map[string]float64{"batch100-sparse": 0, "batch100-sparse-nodelta": -1} {
		opts := hypo.BatchOptions{Workers: 1, DeltaCutoff: cutoff}
		wr.Benchmarks[name] = metricOf(testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := hypo.EvalBatch(c, batch, opts); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}
	return wr, nil
}

// JSON serializes the report, indented for diff-friendly commits.
func (r *DeltaReport) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Table renders the report for provbench's stdout.
func (r *DeltaReport) Table() *Table {
	tab := &Table{
		Title:   fmt.Sprintf("Delta evaluation kernel (GOMAXPROCS=%d)", r.GOMAXPROCS),
		Headers: []string{"workload", "benchmark", "ns/op", "allocs/op"},
	}
	names := make([]string, 0, len(r.Workloads))
	for name := range r.Workloads {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wr := r.Workloads[name]
		for _, bname := range []string{
			"full-eval", "delta-eval-touch1", "delta-eval-touch4",
			"sharded-eval-workers1", "sharded-eval-workers2", "sharded-eval-workers4",
			"batch100-sparse", "batch100-sparse-nodelta",
		} {
			m, ok := wr.Benchmarks[bname]
			if !ok {
				continue
			}
			tab.AddRow(name, bname, m.NsPerOp, m.AllocsPerOp)
		}
		tab.AddRow(name, "delta-speedup", wr.DeltaSpeedup, "-")
	}
	return tab
}
