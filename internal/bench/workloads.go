package bench

import (
	"fmt"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
	"provabs/internal/telco"
	"provabs/internal/tpch"
	"provabs/internal/treegen"
)

// Workload is one of the paper's four benchmark provenance sets, together
// with everything needed to build abstraction trees over it.
type Workload struct {
	Name       string // "Q5", "Q10", "Q1", "telco"
	Set        *provenance.Set
	LeafPrefix string // variable prefix the trees cover ("s" or "pl")
	LeafCount  int    // 128 everywhere, as in the paper
}

// Tree builds an abstraction tree of the given Table 2 shape over the
// workload's tree variables.
func (w *Workload) Tree(shape treegen.Shape) *abstree.Tree {
	return shape.Build(w.Name+"Root", treegen.NumberedLeaves(w.LeafPrefix))
}

// Forest wraps a single tree in a forest.
func (w *Workload) Forest(shape treegen.Shape) *abstree.Forest {
	return abstree.MustForest(w.Tree(shape))
}

// Scale sizes the benchmark datasets. The paper ran TPC-H at 10 GB and
// telco at up to 5M customers; the defaults here regenerate the same shapes
// at CI scale, and cmd/provbench exposes every knob.
type Scale struct {
	TPCHScaleFactor float64
	TelcoCustomers  int
	TelcoZips       int
	Seed            int64
}

// DefaultScale returns the CI-scale configuration.
func DefaultScale() Scale {
	return Scale{TPCHScaleFactor: 0.002, TelcoCustomers: 800, TelcoZips: 40, Seed: 1}
}

// LoadWorkloads generates the four benchmark provenance sets in the paper's
// panel order: Q5, Q10, Q1, telco.
func LoadWorkloads(sc Scale) ([]*Workload, error) {
	d, err := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHScaleFactor, Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	var out []*Workload
	for _, q := range tpch.AllQueries {
		set, err := d.Provenance(q)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", q, err)
		}
		out = append(out, &Workload{Name: string(q), Set: set, LeafPrefix: "s", LeafCount: 128})
	}
	tset, err := telco.SyntheticProvenance(telco.Config{
		Customers: sc.TelcoCustomers, Plans: 128, Months: 12, Zips: sc.TelcoZips, Seed: sc.Seed,
	})
	if err != nil {
		return nil, err
	}
	out = append(out, &Workload{Name: "telco", Set: tset, LeafPrefix: "pl", LeafCount: 128})
	return out, nil
}

// LoadWorkload generates a single workload by name ("Q1", "Q5", "Q10",
// "telco").
func LoadWorkload(name string, sc Scale) (*Workload, error) {
	switch name {
	case "Q1", "Q5", "Q10":
		d, err := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHScaleFactor, Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		set, err := d.Provenance(tpch.QueryID(name))
		if err != nil {
			return nil, err
		}
		return &Workload{Name: name, Set: set, LeafPrefix: "s", LeafCount: 128}, nil
	case "telco":
		set, err := telco.SyntheticProvenance(telco.Config{
			Customers: sc.TelcoCustomers, Plans: 128, Months: 12, Zips: sc.TelcoZips, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		return &Workload{Name: name, Set: set, LeafPrefix: "pl", LeafCount: 128}, nil
	}
	return nil, fmt.Errorf("bench: unknown workload %q", name)
}
