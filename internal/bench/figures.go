package bench

import (
	"fmt"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/hypo"
	"provabs/internal/summarize"
	"provabs/internal/telco"
	"provabs/internal/tpch"
	"provabs/internal/treegen"
)

// BruteLimit caps brute-force VVS enumeration in the figure runners — the
// paper's brute force "was able to complete the computation only when the
// number of VVS was less than 80,000" (§4.3).
const BruteLimit = 80000

// halfBound returns the paper's default bound, 0.5·|P|_M.
func halfBound(w *Workload) int {
	b := w.Set.Size() / 2
	if b < 1 {
		b = 1
	}
	return b
}

// CompressionTimeVsCuts reproduces Figures 5, 6 and 7: compression time as
// a function of the number of valid variable sets, for all Table 2 shapes
// of the given tree types, over one workload. Brute force runs only while
// the cut count stays under BruteLimit ("-" otherwise), matching the
// paper's observation.
func CompressionTimeVsCuts(w *Workload, types []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Compression time vs #cuts — %s", w.Name),
		Headers: []string{"type", "fanouts", "cuts", "opt", "greedy", "brute"},
	}
	B := halfBound(w)
	for _, typ := range types {
		for _, shape := range treegen.ShapesOfType(typ) {
			tree := w.Tree(shape)
			forest := abstree.MustForest(tree)
			optT, err := timeIt(func() error {
				_, err := core.OptimalVVS(w.Set, tree, B)
				return err
			})
			if err != nil {
				return nil, err
			}
			greedyT, err := timeIt(func() error {
				_, err := core.GreedyVVS(w.Set, forest, B)
				return err
			})
			if err != nil {
				return nil, err
			}
			bruteCell := "-"
			if shape.CutCount().IsInt64() && shape.CutCount().Int64() <= BruteLimit {
				bruteT, err := timeIt(func() error {
					_, err := core.BruteForceVVS(w.Set, forest, B, BruteLimit)
					if err == core.ErrNoAdequate {
						return nil
					}
					return err
				})
				if err != nil {
					return nil, err
				}
				bruteCell = fmtDuration(bruteT)
			}
			t.AddRow(typ, fmt.Sprint(shape.Fanouts), shape.CutCount().String(),
				optT, greedyT, bruteCell)
		}
	}
	return t, nil
}

// CompressionTimeVsDataSize reproduces Figure 8: compression time as a
// function of the input data size (total base tuples), regenerating each
// workload at growing scale multipliers and compressing with the smallest
// type-1 tree at bound 0.5·|P|_M.
func CompressionTimeVsDataSize(name string, sc Scale, multipliers []float64) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Compression time vs input data size — %s", name),
		Headers: []string{"tuples", "|P|_M", "opt", "greedy"},
	}
	shape := treegen.SmallestOfType(1)
	for _, m := range multipliers {
		var w *Workload
		var tuples int
		switch name {
		case "telco":
			cfg := telco.Config{
				Customers: int(float64(sc.TelcoCustomers) * m), Plans: 128, Months: 12,
				Zips: sc.TelcoZips, Seed: sc.Seed,
			}
			if cfg.Customers < 1 {
				cfg.Customers = 1
			}
			set, err := telco.SyntheticProvenance(cfg)
			if err != nil {
				return nil, err
			}
			w = &Workload{Name: name, Set: set, LeafPrefix: "pl", LeafCount: 128}
			tuples = telco.TotalRows(cfg)
		default:
			d, err := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHScaleFactor * m, Seed: sc.Seed})
			if err != nil {
				return nil, err
			}
			set, err := d.Provenance(tpch.QueryID(name))
			if err != nil {
				return nil, err
			}
			w = &Workload{Name: name, Set: set, LeafPrefix: "s", LeafCount: 128}
			tuples = d.Catalog.TotalRows()
		}
		B := halfBound(w)
		tree := w.Tree(shape)
		optT, err := timeIt(func() error {
			_, err := core.OptimalVVS(w.Set, tree, B)
			return err
		})
		if err != nil {
			return nil, err
		}
		greedyT, err := timeIt(func() error {
			_, err := core.GreedyVVS(w.Set, abstree.MustForest(tree), B)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(tuples, w.Set.Size(), optT, greedyT)
	}
	return t, nil
}

// BoundSweep returns bounds spanning the feasible compression range of the
// workload under the shape's tree: from just above the coarsest-possible
// size up to the original size.
func BoundSweep(w *Workload, shape treegen.Shape, steps int) []int {
	forest := w.Forest(shape)
	lo := core.RootBound(w.Set, forest)
	hi := w.Set.Size()
	if steps < 2 || hi <= lo {
		return []int{hi}
	}
	var out []int
	for i := 0; i < steps; i++ {
		b := lo + (hi-lo)*(i+1)/(steps+1)
		if len(out) == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return out
}

// CompressionTimeVsBound reproduces Figure 9: compression time as a
// function of the bound. The paper's finding: Opt VVS is insensitive to the
// bound while the greedy gets faster as the bound loosens.
func CompressionTimeVsBound(w *Workload, shape treegen.Shape, steps int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Compression time vs bound — %s", w.Name),
		Headers: []string{"bound", "opt", "greedy"},
	}
	tree := w.Tree(shape)
	forest := abstree.MustForest(tree)
	for _, B := range BoundSweep(w, shape, steps) {
		optT, err := timeIt(func() error {
			_, err := core.OptimalVVS(w.Set, tree, B)
			return err
		})
		if err != nil {
			return nil, err
		}
		greedyT, err := timeIt(func() error {
			_, err := core.GreedyVVS(w.Set, forest, B)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(B, optT, greedyT)
	}
	return t, nil
}

// SpeedupVsBound reproduces Figure 10: the hypothetical-scenario assignment
// -time speedup of compressed vs original provenance, as a function of the
// bound.
func SpeedupVsBound(w *Workload, shape treegen.Shape, steps, rounds int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Assignment-time speedup vs bound — %s", w.Name),
		Headers: []string{"bound", "|P↓S|_M", "speedup"},
	}
	tree := w.Tree(shape)
	for _, B := range BoundSweep(w, shape, steps) {
		res, err := core.OptimalVVS(w.Set, tree, B)
		if err != nil {
			return nil, err
		}
		abs := res.VVS.Apply(w.Set)
		tOrig, tAbs := hypo.AssignmentTimes(w.Set, abs, rounds)
		t.AddRow(B, abs.Size(), fmt.Sprintf("%.1f%%", 100*hypo.Speedup(tOrig, tAbs)))
	}
	return t, nil
}

// TimeVsNumTrees reproduces Figure 11: greedy (and brute-force, while
// feasible) compression time as a function of the number of abstraction
// trees — binary trees of 16 leaves each, covering disjoint 16-variable
// slices of the workload's 128 tree variables.
func TimeVsNumTrees(w *Workload, maxTrees int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Compression time vs #trees — %s", w.Name),
		Headers: []string{"trees", "greedy", "brute"},
	}
	B := halfBound(w)
	for k := 2; k <= maxTrees; k++ {
		trees := make([]*abstree.Tree, k)
		for i := 0; i < k; i++ {
			base := i * 16
			trees[i] = treegen.BinaryTree(fmt.Sprintf("%sT%d", w.Name, i), 4, func(j int) string {
				return fmt.Sprintf("%s%d", w.LeafPrefix, base+j)
			})
		}
		forest, err := abstree.NewForest(trees...)
		if err != nil {
			return nil, err
		}
		greedyT, err := timeIt(func() error {
			_, err := core.GreedyVVS(w.Set, forest, B)
			return err
		})
		if err != nil {
			return nil, err
		}
		bruteCell := "-"
		if cc := abstree.ForestCutCount(forest); cc.IsInt64() && cc.Int64() <= BruteLimit {
			bruteT, err := timeIt(func() error {
				_, err := core.BruteForceVVS(w.Set, forest, B, BruteLimit)
				if err == core.ErrNoAdequate {
					return nil
				}
				return err
			})
			if err != nil {
				return nil, err
			}
			bruteCell = fmtDuration(bruteT)
		}
		t.AddRow(k, greedyT, bruteCell)
	}
	return t, nil
}

// OptVsCompetitor reproduces Figure 12: Opt VVS vs the summarization
// algorithm of Ainy et al. [3] ("Prox"), compression time as a function of
// the bound, on Q5 and Q1. The competitor gets a timeout in place of the
// paper's 24-hour cutoff.
func OptVsCompetitor(w *Workload, shape treegen.Shape, steps int, timeout time.Duration) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Opt VVS vs Ainy et al. [3] — %s", w.Name),
		Headers: []string{"bound", "opt", "prox", "prox oracle calls", "prox status"},
	}
	tree := w.Tree(shape)
	forest := abstree.MustForest(tree)
	for _, B := range BoundSweep(w, shape, steps) {
		optT, err := timeIt(func() error {
			_, err := core.OptimalVVS(w.Set, tree, B)
			return err
		})
		if err != nil {
			return nil, err
		}
		res, err := summarize.Summarize(w.Set, forest, B, summarize.Options{Timeout: timeout})
		if err != nil {
			return nil, err
		}
		status := "ok"
		switch {
		case res.TimedOut:
			status = "timeout"
		case !res.Adequate:
			status = "inadequate"
		}
		t.AddRow(B, optT, res.Elapsed, res.OracleCalls, status)
	}
	return t, nil
}

// TimeVsNumVariables reproduces Figure 14 (Appendix B): compression time as
// the total number of provenance variables grows while the tree keeps
// covering only 128 of them. varCounts are VarGroups moduli (e.g. 128, 1000,
// 8000).
func TimeVsNumVariables(name string, sc Scale, varCounts []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Compression time vs #variables — %s", name),
		Headers: []string{"variables", "|P|_M", "opt", "greedy"},
	}
	shape := treegen.SmallestOfType(1)
	for _, vc := range varCounts {
		d, err := tpch.Generate(tpch.Config{ScaleFactor: sc.TPCHScaleFactor, Seed: sc.Seed, VarGroups: vc})
		if err != nil {
			return nil, err
		}
		set, err := d.Provenance(tpch.QueryID(name))
		if err != nil {
			return nil, err
		}
		w := &Workload{Name: name, Set: set, LeafPrefix: "s", LeafCount: 128}
		B := halfBound(w)
		tree := w.Tree(shape)
		optT, err := timeIt(func() error {
			_, err := core.OptimalVVS(w.Set, tree, B)
			return err
		})
		if err != nil {
			return nil, err
		}
		greedyT, err := timeIt(func() error {
			_, err := core.GreedyVVS(w.Set, abstree.MustForest(tree), B)
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(set.Granularity(), set.Size(), optT, greedyT)
	}
	return t, nil
}
