package core

import (
	"fmt"
	"sort"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// GreedyVVS implements Algorithm 2: greedy valid-variable selection over an
// abstraction forest (the general, NP-hard setting).
//
// The selection S starts as the set of all leaves. A node is a *candidate*
// when all of its children are in S. While the monomial loss is below
// k = |P|_M − B and candidates remain, the algorithm promotes the candidate
// whose promotion costs the least variable loss; ties are broken toward the
// larger monomial loss (Example 15 selects q1 over SB this way), then by
// label for determinism. Promotion replaces the candidate's children with
// the candidate and may enable its parent as a new candidate.
//
// The monomial loss of each promotion is evaluated against the *currently
// abstracted* polynomials, which the algorithm maintains incrementally.
func GreedyVVS(s *provenance.Set, forest *abstree.Forest, B int) (*Result, error) {
	return GreedyVVSOpts(s, forest, B, GreedyOptions{TieBreakML: true})
}

// GreedyOptions tunes Algorithm 2. The paper's pseudocode breaks
// minimal-variable-loss ties "arbitrarily", but its worked Example 15
// breaks them toward the larger monomial loss; TieBreakML selects between
// the two (the benchmark suite ablates the difference).
type GreedyOptions struct {
	TieBreakML bool
}

// GreedyVVSOpts is GreedyVVS with explicit options.
func GreedyVVSOpts(s *provenance.Set, forest *abstree.Forest, B int, opts GreedyOptions) (*Result, error) {
	if B < 1 {
		return nil, fmt.Errorf("core: bound B=%d must be at least 1", B)
	}
	inst, err := NewInstance(s, forest)
	if err != nil {
		return nil, err
	}
	return greedyOnInstance(inst, B, opts)
}

func greedyOnInstance(inst *Instance, B int, opts GreedyOptions) (*Result, error) {
	s := inst.Set
	f := inst.Forest
	k := s.Size() - B

	// chosen[ti][node] — current S, per tree.
	chosen := make([]map[int]bool, f.Len())
	for ti, t := range f.Trees {
		chosen[ti] = make(map[int]bool)
		for _, l := range t.Leaves() {
			chosen[ti][l] = true
		}
	}

	type cand struct {
		tree, node int
	}
	inCand := make(map[cand]bool)
	var cands []cand
	addCand := func(c cand) {
		if !inCand[c] {
			inCand[c] = true
			cands = append(cands, c)
		}
	}
	for ti, t := range f.Trees {
		for n := 0; n < t.Len(); n++ {
			if t.IsLeaf(n) {
				continue
			}
			all := true
			for _, c := range t.Children(n) {
				if !chosen[ti][c] {
					all = false
					break
				}
			}
			if all {
				addCand(cand{ti, n})
			}
		}
	}

	cur := s.Clone() // current P↓S, updated after each promotion
	curML := 0
	totalVL := 0

	// groupVarsOf returns the current variables replaced when promoting c:
	// the variables of c's children (which are all in S by candidacy).
	groupVarsOf := func(c cand) []provenance.Var {
		t := f.Trees[c.tree]
		var vars []provenance.Var
		for _, ch := range t.Children(c.node) {
			if v, ok := s.Vocab.Lookup(t.Label(ch)); ok {
				vars = append(vars, v)
			}
		}
		return vars
	}

	for curML < k && len(cands) > 0 {
		// Pick the candidate with minimal ΔVL; break ties toward larger ΔML,
		// then lexicographic label.
		type scored struct {
			c   cand
			dvl int
		}
		best := make([]scored, 0, len(cands))
		minDVL := -1
		for _, c := range cands {
			dvl := len(f.Trees[c.tree].Children(c.node)) - 1
			if minDVL < 0 || dvl < minDVL {
				minDVL = dvl
				best = best[:0]
			}
			if dvl == minDVL {
				best = append(best, scored{c, dvl})
			}
		}
		pick := best[0].c
		if len(best) > 1 && !opts.TieBreakML {
			// Arbitrary (but deterministic) tie-break: smallest label.
			bestName := f.Trees[pick.tree].Label(pick.node)
			for _, sc := range best[1:] {
				if name := f.Trees[sc.c.tree].Label(sc.c.node); name < bestName {
					bestName, pick = name, sc.c
				}
			}
		}
		if len(best) > 1 && opts.TieBreakML {
			// Tie-break on ΔML against the current abstraction, computed
			// lazily only for the tied candidates.
			bestML := -1
			var names []string
			for range best {
				names = append(names, "")
			}
			for i, sc := range best {
				names[i] = f.Trees[sc.c.tree].Label(sc.c.node)
			}
			order := make([]int, len(best))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return names[order[a]] < names[order[b]] })
			for _, i := range order {
				sc := best[i]
				vars := groupVarsOf(sc.c)
				rt := newResidueTable(cur, varSet(vars))
				dml := rt.groupML(vars)
				if dml > bestML {
					bestML = dml
					pick = sc.c
				}
			}
		}

		// Promote pick: S ← (S \ children) ∪ {pick}; abstract cur.
		t := f.Trees[pick.tree]
		vars := groupVarsOf(pick)
		meta := t.VarOf(s.Vocab, pick.node)
		subst := make(map[provenance.Var]provenance.Var, len(vars))
		for _, v := range vars {
			subst[v] = meta
		}
		before := cur.Size()
		cur = cur.Substitute(subst)
		curML += before - cur.Size()
		totalVL += len(vars) - 1

		for _, ch := range t.Children(pick.node) {
			delete(chosen[pick.tree], ch)
		}
		chosen[pick.tree][pick.node] = true
		// Drop pick from candidates.
		for i, c := range cands {
			if c == (cand{pick.tree, pick.node}) {
				cands = append(cands[:i], cands[i+1:]...)
				break
			}
		}
		delete(inCand, cand{pick.tree, pick.node})
		// The parent may have become a candidate.
		if par := t.Parent(pick.node); par >= 0 {
			all := true
			for _, ch := range t.Children(par) {
				if !chosen[pick.tree][ch] {
					all = false
					break
				}
			}
			if all {
				addCand(cand{pick.tree, par})
			}
		}
	}

	nodes := make([][]int, f.Len())
	for ti := range f.Trees {
		for n := range chosen[ti] {
			nodes[ti] = append(nodes[ti], n)
		}
		sort.Ints(nodes[ti])
	}
	v := &abstree.VVS{Forest: f, Nodes: nodes}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("core: internal error, greedy VVS invalid: %w", err)
	}
	return &Result{VVS: v, ML: curML, VL: totalVL, Adequate: curML >= k}, nil
}

func varSet(vars []provenance.Var) map[provenance.Var]bool {
	m := make(map[provenance.Var]bool, len(vars))
	for _, v := range vars {
		m[v] = true
	}
	return m
}
