package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// example13 builds the polynomials P1, P2 of Example 13 and the Figure 2
// plans tree (with the paper's Sp/Std/B shorthands).
func example13(t testing.TB) (*provenance.Set, *abstree.Tree, *abstree.Tree) {
	t.Helper()
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("P1", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	s.Add("P2", provenance.MustParse(vb,
		"77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 + 69.7·b2·m1 + 100.65·b2·m3"))
	plans := abstree.MustParseTree("Plans(Std(p1,p2),Sp(Y(y1,y2,y3),F(f1,f2),v),B(SB(b1,b2),e))")
	year := abstree.MustParseTree("Year(q1(m1,m2,m3),q2(m4,m5,m6),q3(m7,m8,m9),q4(m10,m11,m12))")
	return s, plans, year
}

// TestExample13Optimal reproduces Example 13: single plans tree, B = 9 →
// optimal VVS {SB, Sp, e, p1} with ML 6 and VL 3.
func TestExample13Optimal(t *testing.T) {
	s, plans, _ := example13(t)
	res, err := OptimalVVS(s, plans, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate {
		t.Fatal("expected an adequate abstraction")
	}
	if res.ML != 6 || res.VL != 3 {
		t.Errorf("ML=%d VL=%d, want ML=6 VL=3", res.ML, res.VL)
	}
	if got := strings.Join(res.VVS.Labels(), ","); got != "SB,Sp,e,p1" {
		t.Errorf("VVS = %s, want {SB, Sp, e, p1}", res.VVS)
	}
	m, v := res.Sizes(s)
	if m != 8 || v != 6 {
		t.Errorf("abstracted sizes M=%d V=%d, want 8 and 6", m, v)
	}
}

// TestExample15Greedy reproduces Example 15: plans + year trees, B = 4.
// The greedy run promotes q1, SB, B, Sp and ends with ML 11, VL 5,
// while the optimum is {q1, Sp, SB, e, p1} with ML 10, VL 4.
func TestExample15Greedy(t *testing.T) {
	s, plans, year := example13(t)
	f := abstree.MustForest(plans, year)
	res, err := GreedyVVS(s, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate {
		t.Fatal("expected adequate greedy result")
	}
	if res.ML != 11 || res.VL != 5 {
		t.Errorf("greedy ML=%d VL=%d, want ML=11 VL=5", res.ML, res.VL)
	}
	// The brute-force optimum keeps one more variable.
	opt, err := BruteForceVVS(s, f, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.ML != 10 || opt.VL != 4 {
		t.Errorf("optimal ML=%d VL=%d, want ML=10 VL=4", opt.ML, opt.VL)
	}
	if got := strings.Join(opt.VVS.Labels(), ","); got != "SB,Sp,e,p1,q1" {
		t.Errorf("optimal VVS = %s, want {SB, Sp, e, p1, q1}", opt.VVS)
	}
}

// TestExample8NoAdequate reproduces Example 8: with only the year tree,
// the maximal compression of P1 has size 4, so B = 3 is infeasible.
func TestExample8NoAdequate(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("P", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	year := abstree.MustParseTree("Year(q1(m1,m2,m3),q2(m4,m5,m6))")
	res, err := OptimalVVS(s, year, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adequate {
		t.Error("B=3 reported adequate; Example 8 says it is not")
	}
	if m, _ := res.Sizes(s); m != 4 {
		t.Errorf("best achievable size = %d, want 4", m)
	}
	if _, err := BruteForceVVS(s, abstree.MustForest(year), 3, 0); err != ErrNoAdequate {
		t.Errorf("brute force error = %v, want ErrNoAdequate", err)
	}
}

func TestOptimalIdentityWhenBoundLoose(t *testing.T) {
	s, plans, _ := example13(t)
	res, err := OptimalVVS(s, plans, s.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate || res.ML != 0 || res.VL != 0 {
		t.Errorf("loose bound: ML=%d VL=%d adequate=%v, want identity", res.ML, res.VL, res.Adequate)
	}
}

func TestOptimalRejectsBadBound(t *testing.T) {
	s, plans, _ := example13(t)
	if _, err := OptimalVVS(s, plans, 0); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := GreedyVVS(s, abstree.MustForest(plans), -1); err == nil {
		t.Error("greedy B=-1 accepted")
	}
}

func TestMonomialAndVariableLoss(t *testing.T) {
	s, plans, year := example13(t)
	f := abstree.MustForest(plans, year)
	inst := MustInstance(s, f)
	// ML(S1)=4 and ML(S5)=6, VL(S1)=2 and VL(S5)=3 in the single-polynomial
	// Example 6; on the two-polynomial set the cleaned-forest equivalents:
	v := abstree.MustFromLabels(inst.Forest, "SB", "e", "Sp", "p1", "q1")
	if got := MonomialLoss(s, v); got != 10 {
		t.Errorf("ML = %d, want 10", got)
	}
	if got := VariableLoss(s, v); got != 4 {
		t.Errorf("VL = %d, want 4", got)
	}
}

func TestResidueTableMatchesNaive(t *testing.T) {
	s, _, _ := example13(t)
	vb := s.Vocab
	for _, group := range [][]string{
		{"b1", "b2"}, {"f1", "y1", "v"}, {"m1", "m3"}, {"p1"},
		{"b1", "b2", "e"}, {"p1", "f1", "y1", "v"},
	} {
		var vars []provenance.Var
		set := map[provenance.Var]bool{}
		for _, name := range group {
			v, ok := vb.Lookup(name)
			if !ok {
				t.Fatalf("unknown var %s", name)
			}
			vars = append(vars, v)
			set[v] = true
		}
		rt := newResidueTable(s, set)
		fast := rt.groupML(vars)
		naive := NaiveGroupML(s, vars, vb.Var("FRESH_"+strings.Join(group, "_")))
		if fast != naive {
			t.Errorf("group %v: residue ML %d != naive ML %d", group, fast, naive)
		}
	}
}

func TestDecidePrecise(t *testing.T) {
	s, plans, year := example13(t)
	f := abstree.MustForest(plans, year)
	// The optimum of Example 15 is precise for B=4, K=5:
	// |P↓S|_M = 14-10 = 4, |P↓S|_V = 9-4 = 5.
	ok, v, err := DecidePrecise(s, f, 4, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("precise VVS for B=4,K=5 not found")
	}
	if !IsPrecise(s, v, 4, 5) {
		t.Error("returned VVS is not precise")
	}
	// B=1 is unreachable (roots give 2 polynomials ≥ 2 monomials).
	ok, _, err = DecidePrecise(s, f, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("impossible precise abstraction reported to exist")
	}
}

func TestIsOptimalAgreesWithBrute(t *testing.T) {
	s, plans, _ := example13(t)
	f := abstree.MustForest(plans)
	res, err := OptimalVVS(s, plans, 9)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IsOptimal(s, f, res.VVS, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Algorithm 1 result not optimal per brute force")
	}
}

func TestFeasibleBounds(t *testing.T) {
	s, plans, year := example13(t)
	f := abstree.MustForest(plans, year)
	minB, maxB, err := FeasibleBounds(s, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if maxB != 14 {
		t.Errorf("maxB = %d, want 14", maxB)
	}
	// Roots of both trees: every monomial becomes Plans·q1 per polynomial → 2.
	if minB != 2 {
		t.Errorf("minB = %d, want 2", minB)
	}
	if got := RootBound(s, f); got != 2 {
		t.Errorf("RootBound = %d, want 2", got)
	}
}

// randomInstance builds a random compatible single-tree instance: a tree
// over some leaf variables plus a polynomial set in which each monomial has
// at most one tree variable.
func randomInstance(rng *rand.Rand) (*provenance.Set, *abstree.Tree) {
	vb := provenance.NewVocab()
	nLeaves := rng.Intn(6) + 2
	leafNames := make([]string, nLeaves)
	for i := range leafNames {
		leafNames[i] = "t" + string(rune('a'+i))
	}
	// Random tree over the leaves: recursively partition.
	id := 0
	var build func(names []string) abstree.Spec
	build = func(names []string) abstree.Spec {
		if len(names) == 1 {
			return abstree.Leaf(names[0])
		}
		id++
		spec := abstree.Spec{Label: "N" + string(rune('0'+id%10)) + string(rune('a'+(id/10)%26))}
		k := rng.Intn(min(len(names), 3)-1) + 2
		// Split names into k contiguous non-empty chunks.
		cuts := map[int]bool{}
		for len(cuts) < k-1 {
			cuts[rng.Intn(len(names)-1)+1] = true
		}
		idxs := []int{0}
		for i := 1; i < len(names); i++ {
			if cuts[i] {
				idxs = append(idxs, i)
			}
		}
		idxs = append(idxs, len(names))
		for i := 0; i+1 < len(idxs); i++ {
			spec.Children = append(spec.Children, build(names[idxs[i]:idxs[i+1]]))
		}
		return spec
	}
	tree := abstree.MustTree(build(leafNames))

	// Outside variables shared across monomials so merges actually happen.
	outside := []provenance.Var{vb.Var("o1"), vb.Var("o2"), vb.Var("o3")}
	s := provenance.NewSet(vb)
	nPolys := rng.Intn(3) + 1
	for pi := 0; pi < nPolys; pi++ {
		p := provenance.NewPolynomial()
		terms := rng.Intn(10) + 3
		for i := 0; i < terms; i++ {
			var vars []provenance.Var
			if rng.Intn(4) > 0 { // usually include one tree variable
				vars = append(vars, vb.Var(leafNames[rng.Intn(nLeaves)]))
			}
			if rng.Intn(3) > 0 {
				vars = append(vars, outside[rng.Intn(len(outside))])
			}
			p.AddTerm(float64(rng.Intn(9)+1), vars...)
		}
		s.Add("", p)
	}
	return s, tree
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: Algorithm 1 is optimal — it matches brute force's variable loss
// for every feasible bound, and agrees on adequacy for every bound.
func TestQuickOptimalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, tree := randomInstance(rng)
		forest := abstree.MustForest(tree)
		for B := 1; B <= s.Size(); B++ {
			res, err := OptimalVVS(s, tree, B)
			if err != nil {
				t.Logf("seed %d B %d: OptimalVVS error %v", seed, B, err)
				return false
			}
			brute, err := BruteForceVVS(s, forest, B, 0)
			if err == ErrNoAdequate {
				if res.Adequate {
					t.Logf("seed %d B %d: algorithm adequate, brute says infeasible", seed, B)
					return false
				}
				continue
			}
			if err != nil {
				t.Logf("seed %d B %d: brute error %v", seed, B, err)
				return false
			}
			if !res.Adequate {
				t.Logf("seed %d B %d: algorithm inadequate, brute found VL %d", seed, B, brute.VL)
				return false
			}
			if res.VL != brute.VL {
				t.Logf("seed %d B %d: algorithm VL %d != brute VL %d (alg %s brute %s)",
					seed, B, res.VL, brute.VL, res.VVS, brute.VVS)
				return false
			}
			if !IsAdequate(s, res.VVS, B) {
				t.Logf("seed %d B %d: result not adequate on recheck", seed, B)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the greedy result is always a valid VVS; its reported ML and VL
// match direct recomputation; and whenever greedy claims adequacy the
// abstraction really meets the bound.
func TestQuickGreedyConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, t1 := randomInstance(rng)
		// A second tree over fresh month-like variables on the same set.
		vb := s.Vocab
		m1, m2 := vb.Var("mm1"), vb.Var("mm2")
		for _, p := range s.Polys {
			p.AddTerm(2, m1)
			p.AddTerm(3, m2)
		}
		t2 := abstree.MustParseTree("MM(mm1,mm2)")
		forest := abstree.MustForest(t1, t2)
		B := rng.Intn(s.Size()) + 1
		res, err := GreedyVVS(s, forest, B)
		if err != nil {
			return false
		}
		if err := res.VVS.Validate(); err != nil {
			return false
		}
		if got := MonomialLoss(s, res.VVS); got != res.ML {
			t.Logf("seed %d: reported ML %d, actual %d", seed, res.ML, got)
			return false
		}
		if got := VariableLoss(s, res.VVS); got != res.VL {
			t.Logf("seed %d: reported VL %d, actual %d", seed, res.VL, got)
			return false
		}
		if res.Adequate != IsAdequate(s, res.VVS, B) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: greedy achieves adequacy whenever the bound is achievable by
// the coarsest abstraction (promoting everything reaches all roots, so
// greedy can always reach RootBound).
func TestQuickGreedyReachesRootBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, tree := randomInstance(rng)
		forest := abstree.MustForest(tree)
		B := RootBound(s, forest)
		res, err := GreedyVVS(s, forest, B)
		if err != nil {
			return false
		}
		return res.Adequate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: residue-table ML equals substitution-based ML on random groups.
func TestQuickResidueML(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s, tree := randomInstance(rng)
		leaves := tree.Leaves()
		var vars []provenance.Var
		set := map[provenance.Var]bool{}
		for _, l := range leaves {
			if rng.Intn(2) == 0 {
				if v, ok := s.Vocab.Lookup(tree.Label(l)); ok {
					vars = append(vars, v)
					set[v] = true
				}
			}
		}
		if len(vars) == 0 {
			return true
		}
		rt := newResidueTable(s, set)
		return rt.groupML(vars) == NaiveGroupML(s, vars, s.Vocab.Var("FRESH"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestInstanceRejectsIncompatible(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "2·a·b"))
	tree := abstree.MustParseTree("T(a,b)")
	if _, err := NewInstance(s, abstree.MustForest(tree)); err == nil {
		t.Error("incompatible instance accepted")
	}
}

// TestGreedyTieBreakAblation: on Example 15 the ML tie-break follows the
// paper's walk (q1 first); the arbitrary tie-break picks a different
// promotion order yet must still produce a valid, consistent result.
func TestGreedyTieBreakAblation(t *testing.T) {
	s, plans, year := example13(t)
	f := abstree.MustForest(plans, year)
	ml, err := GreedyVVSOpts(s, f, 4, GreedyOptions{TieBreakML: true})
	if err != nil {
		t.Fatal(err)
	}
	arb, err := GreedyVVSOpts(s, f, 4, GreedyOptions{TieBreakML: false})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"ml": ml, "arbitrary": arb} {
		if err := r.VVS.Validate(); err != nil {
			t.Errorf("%s: invalid VVS: %v", name, err)
		}
		if got := MonomialLoss(s, r.VVS); got != r.ML {
			t.Errorf("%s: ML %d, recomputed %d", name, r.ML, got)
		}
	}
	if !ml.Adequate {
		t.Error("ML tie-break failed to reach the bound on Example 15")
	}
}

func TestGreedyDeterminism(t *testing.T) {
	s, plans, year := example13(t)
	f := abstree.MustForest(plans, year)
	r1, err := GreedyVVS(s, f, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		r2, err := GreedyVVS(s, f, 4)
		if err != nil {
			t.Fatal(err)
		}
		l1 := r1.VVS.Labels()
		l2 := r2.VVS.Labels()
		sort.Strings(l1)
		sort.Strings(l2)
		if strings.Join(l1, ",") != strings.Join(l2, ",") {
			t.Fatalf("greedy nondeterministic: %v vs %v", l1, l2)
		}
	}
}
