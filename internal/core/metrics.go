// Package core implements the paper's provenance-abstraction algorithms:
// applying abstractions (P↓S), the monomial-loss/variable-loss measures,
// Algorithm 1 (optimal valid-variable selection over a single abstraction
// tree, PTIME), Algorithm 2 (greedy selection over an abstraction forest),
// a brute-force reference solver, and the precise/adequate/optimal
// predicates of Definition 7.
package core

import (
	"fmt"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// Instance bundles a polynomial multiset with a compatible abstraction
// forest. The forest stored here is already cleaned (footnote 1): leaves
// that do not occur in the polynomials, and internal nodes left without
// active descendants, are removed.
type Instance struct {
	Set    *provenance.Set
	Forest *abstree.Forest
}

// NewInstance validates compatibility (each monomial holds at most one node
// per tree, meta-variables are fresh), cleans the forest against the set,
// and returns the instance.
func NewInstance(s *provenance.Set, f *abstree.Forest) (*Instance, error) {
	if err := f.CompatibleWith(s); err != nil {
		return nil, err
	}
	return &Instance{Set: s, Forest: f.Clean(s)}, nil
}

// MustInstance is NewInstance that panics on error.
func MustInstance(s *provenance.Set, f *abstree.Forest) *Instance {
	in, err := NewInstance(s, f)
	if err != nil {
		panic(err)
	}
	return in
}

// MonomialLoss returns ML_P(S) = |P|_M − |P↓S|_M.
func MonomialLoss(s *provenance.Set, v *abstree.VVS) int {
	return s.Size() - v.Apply(s).Size()
}

// VariableLoss returns VL_P(S) = |P|_V − |P↓S|_V.
func VariableLoss(s *provenance.Set, v *abstree.VVS) int {
	return s.Granularity() - v.Apply(s).Granularity()
}

// Result is the outcome of a VVS-selection algorithm.
type Result struct {
	VVS      *abstree.VVS // the selected abstraction (over the cleaned forest)
	ML       int          // monomial loss of the selection
	VL       int          // variable loss of the selection
	Adequate bool         // ML ≥ |P|_M − B, i.e. |P↓S|_M ≤ B
}

// Sizes returns the abstracted sizes |P↓S|_M and |P↓S|_V implied by the
// result relative to the original set.
func (r *Result) Sizes(s *provenance.Set) (m, v int) {
	return s.Size() - r.ML, s.Granularity() - r.VL
}

// IsAdequate reports whether the abstraction meets the bound:
// |P↓S|_M ≤ B (Definition 7).
func IsAdequate(s *provenance.Set, v *abstree.VVS, B int) bool {
	return v.Apply(s).Size() <= B
}

// IsPrecise reports whether the abstraction hits the size and granularity
// exactly: |P↓S|_M = B and |P↓S|_V = K (Definition 7).
func IsPrecise(s *provenance.Set, v *abstree.VVS, B, K int) bool {
	abs := v.Apply(s)
	return abs.Size() == B && abs.Granularity() == K
}

// ErrNoAdequate is reported by exact solvers when no VVS meets the bound
// (possible — Example 8).
var ErrNoAdequate = fmt.Errorf("core: no valid variable set is adequate for the bound")

// groupKey identifies a residue across the whole multiset: residues of
// different polynomials must never merge, so keys are tagged by the
// polynomial index.
type groupKey struct {
	poly int32
	key  provenance.MonomialKey
}

// residueTable holds, per active leaf variable of one tree, the tagged
// residue keys of every monomial containing that variable (§4.1 "Efficient
// ML computation"). Built in a single pass over the polynomials.
type residueTable struct {
	byVar map[provenance.Var][]groupKey
}

// newResidueTable builds the table for the given leaf variables in a
// single pass over each polynomial (the essence of the §4.1 optimization:
// the polynomials are traversed once, not once per tree node or variable).
func newResidueTable(s *provenance.Set, leafVars map[provenance.Var]bool) *residueTable {
	rt := &residueTable{byVar: make(map[provenance.Var][]groupKey, len(leafVars))}
	for pi, p := range s.Polys {
		tag := int32(pi)
		p.VisitResidues(leafVars, func(v provenance.Var, r provenance.MonomialKey) {
			rt.byVar[v] = append(rt.byVar[v], groupKey{poly: tag, key: r})
		})
	}
	return rt
}

// groupML returns the monomial loss of unifying exactly the given variables
// into one fresh meta-variable: Σ_l |D[l]| − |∪_l D[l]|, per §4.1.
func (rt *residueTable) groupML(vars []provenance.Var) int {
	total := 0
	union := make(map[groupKey]struct{})
	for _, v := range vars {
		rs := rt.byVar[v]
		total += len(rs)
		for _, r := range rs {
			union[r] = struct{}{}
		}
	}
	return total - len(union)
}

// GroupML computes the monomial loss of unifying the given variables into
// one fresh meta-variable using the §4.1 residue-table method. It is the
// one-pass counterpart of NaiveGroupML and the primitive both Algorithm 1
// and Algorithm 2 build on.
func GroupML(s *provenance.Set, vars []provenance.Var) int {
	return newResidueTable(s, varSet(vars)).groupML(vars)
}

// BatchGroupML computes the monomial loss of every group using a single
// residue table over the union of the groups' variables — the access
// pattern of Algorithm 1, which queries one table for every node of the
// tree. This is where the §4.1 optimization pays: the polynomials are
// scanned once rather than once per group.
func BatchGroupML(s *provenance.Set, groups [][]provenance.Var) []int {
	union := make(map[provenance.Var]bool)
	for _, g := range groups {
		for _, v := range g {
			union[v] = true
		}
	}
	rt := newResidueTable(s, union)
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = rt.groupML(g)
	}
	return out
}

// NaiveGroupML computes the same quantity by substituting and re-counting;
// it exists as the reference implementation for the residue-table
// optimization (ablated in benchmarks, validated in tests).
func NaiveGroupML(s *provenance.Set, vars []provenance.Var, meta provenance.Var) int {
	subst := make(map[provenance.Var]provenance.Var, len(vars))
	for _, v := range vars {
		subst[v] = meta
	}
	return s.Size() - s.Substitute(subst).Size()
}
