package core

import (
	"fmt"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// DefaultBruteLimit caps brute-force enumeration. The paper's brute-force
// baseline "was able to complete the computation only when the number of
// VVS was less than 80,000" (§4.3); we default to the same order.
const DefaultBruteLimit = 100000

// BruteForceVVS enumerates every VVS of the (cleaned) forest and returns an
// optimal one for bound B: among all adequate VVS, it maximizes |P↓S|_V,
// breaking ties toward smaller |P↓S|_M and then lexicographic labels. It
// fails once the enumeration exceeds limit (<=0 uses DefaultBruteLimit).
// If no VVS is adequate it returns ErrNoAdequate.
//
// This is the reference solver: Algorithm 1 is validated against it on
// single trees, and it doubles as the exact solver for small multi-tree
// instances (where the problem is NP-hard, Proposition 11).
func BruteForceVVS(s *provenance.Set, forest *abstree.Forest, B, limit int) (*Result, error) {
	if B < 1 {
		return nil, fmt.Errorf("core: bound B=%d must be at least 1", B)
	}
	if limit <= 0 {
		limit = DefaultBruteLimit
	}
	inst, err := NewInstance(s, forest)
	if err != nil {
		return nil, err
	}
	all, err := abstree.EnumerateVVS(inst.Forest, limit)
	if err != nil {
		return nil, err
	}
	var best *Result
	var bestAbs *provenance.Set
	for _, v := range all {
		abs := v.Apply(s)
		if abs.Size() > B {
			continue
		}
		r := &Result{
			VVS:      v,
			ML:       s.Size() - abs.Size(),
			VL:       s.Granularity() - abs.Granularity(),
			Adequate: true,
		}
		if best == nil || betterBrute(r, abs, best, bestAbs) {
			best, bestAbs = r, abs
		}
	}
	if best == nil {
		return nil, ErrNoAdequate
	}
	return best, nil
}

// betterBrute orders candidate results: higher granularity first, then
// smaller abstracted size, then lexicographically smaller label sets.
func betterBrute(a *Result, aAbs *provenance.Set, b *Result, bAbs *provenance.Set) bool {
	av, bv := aAbs.Granularity(), bAbs.Granularity()
	if av != bv {
		return av > bv
	}
	am, bm := aAbs.Size(), bAbs.Size()
	if am != bm {
		return am < bm
	}
	al, bl := a.VVS.Labels(), b.VVS.Labels()
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return al[i] < bl[i]
		}
	}
	return len(al) < len(bl)
}
