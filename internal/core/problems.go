package core

import (
	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// DecidePrecise solves the paper's decision problem (Definition 10) by
// enumeration: does a VVS S exist with |P↓S|_M = B and |P↓S|_V = K?
// The problem is NP-hard in general (Proposition 11 / Appendix A), so this
// exhaustive solver is intended for small instances — tests, the hardness
// reduction, and ground truth for heuristics. It fails when the forest has
// more than limit VVS (<=0 uses DefaultBruteLimit).
func DecidePrecise(s *provenance.Set, forest *abstree.Forest, B, K, limit int) (bool, *abstree.VVS, error) {
	if limit <= 0 {
		limit = DefaultBruteLimit
	}
	inst, err := NewInstance(s, forest)
	if err != nil {
		return false, nil, err
	}
	all, err := abstree.EnumerateVVS(inst.Forest, limit)
	if err != nil {
		return false, nil, err
	}
	for _, v := range all {
		abs := v.Apply(s)
		if abs.Size() == B && abs.Granularity() == K {
			return true, v, nil
		}
	}
	return false, nil, nil
}

// IsOptimal checks Definition 7's optimality of a VVS for bound B by
// exhaustive comparison: the VVS must be adequate, and no adequate VVS may
// retain strictly more variables.
func IsOptimal(s *provenance.Set, forest *abstree.Forest, v *abstree.VVS, B, limit int) (bool, error) {
	if !IsAdequate(s, v, B) {
		return false, nil
	}
	best, err := BruteForceVVS(s, forest, B, limit)
	if err != nil {
		return false, err
	}
	return v.Apply(s).Granularity() >= best.VVS.Apply(s).Granularity(), nil
}

// FeasibleBounds returns the tightest and loosest meaningful bounds for an
// instance: minB is the smallest |P↓S|_M any VVS achieves (the coarsest
// abstraction is not always the smallest, but the minimum over the
// enumerated VVS is exact), and maxB = |P|_M. Used by the bound-sweep
// experiments (Figure 9) to pick bounds spanning the feasible range.
// It fails when the forest has more than limit VVS; callers with large
// forests should instead derive minB from RootVVS as an upper estimate.
func FeasibleBounds(s *provenance.Set, forest *abstree.Forest, limit int) (minB, maxB int, err error) {
	if limit <= 0 {
		limit = DefaultBruteLimit
	}
	inst, err := NewInstance(s, forest)
	if err != nil {
		return 0, 0, err
	}
	all, err := abstree.EnumerateVVS(inst.Forest, limit)
	if err != nil {
		return 0, 0, err
	}
	minB = s.Size()
	for _, v := range all {
		if sz := v.Apply(s).Size(); sz < minB {
			minB = sz
		}
	}
	return minB, s.Size(), nil
}

// RootBound returns |P↓S|_M for the all-roots abstraction — the natural
// "maximal compression" estimate usable at any forest size. (With a single
// tree the root abstraction is the coarsest and achieves the true minimum;
// with several trees a non-root VVS can occasionally compress further when
// coefficient cancellation occurs, which our benchmark data excludes.)
func RootBound(s *provenance.Set, forest *abstree.Forest) int {
	inst, err := NewInstance(s, forest)
	if err != nil {
		return s.Size()
	}
	if inst.Forest.Len() == 0 {
		return s.Size()
	}
	return abstree.RootVVS(inst.Forest).Apply(s).Size()
}
