package core

import (
	"fmt"
	"sort"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// OptimalVVS implements Algorithm 1: optimal valid-variable selection for a
// single abstraction tree, in polynomial time (Proposition 12).
//
// For every node v it computes a sparse table A_v mapping an achievable
// monomial loss i ∈ {0..k} (k = |P|_M − B; the entry k stands for "ML ≥ k")
// to the minimum variable loss of a VVS, drawn from v's subtree, achieving
// it. Tables combine bottom-up by a saturating knapsack over the children
// (losses from different children are additive because each monomial
// contains at most one node of the tree), and each internal node adds the
// "collapse to {v}" option with ML(v) computed via the §4.1 residue tables.
// The answer is read from the root entry k, and the VVS is reconstructed by
// pointer chasing.
//
// When no VVS achieves ML ≥ k (no adequate abstraction exists — Example 8),
// the returned Result carries Adequate=false and the VVS with maximum ML
// (ties broken toward smaller VL).
func OptimalVVS(s *provenance.Set, tree *abstree.Tree, B int) (*Result, error) {
	if B < 1 {
		return nil, fmt.Errorf("core: bound B=%d must be at least 1", B)
	}
	forest, err := abstree.NewForest(tree)
	if err != nil {
		return nil, err
	}
	inst, err := NewInstance(s, forest)
	if err != nil {
		return nil, err
	}
	return optimalOnInstance(inst, B)
}

func optimalOnInstance(inst *Instance, B int) (*Result, error) {
	s := inst.Set
	k := s.Size() - B
	if inst.Forest.Len() == 0 || k <= 0 {
		// Nothing to (or no need to) abstract: the identity selection.
		v := abstree.LeafVVS(inst.Forest)
		return &Result{VVS: v, ML: 0, VL: 0, Adequate: k <= 0}, nil
	}
	t := inst.Forest.Trees[0]

	leafVars := make(map[provenance.Var]bool)
	for _, l := range t.Leaves() {
		if v, ok := s.Vocab.Lookup(t.Label(l)); ok {
			leafVars[v] = true
		}
	}
	rt := newResidueTable(s, leafVars)

	tables := make([]nodeTable, t.Len())
	// Bottom-up: children have higher indices than parents is NOT guaranteed
	// by construction order alone, but parents always precede children in
	// the builder's DFS numbering, so iterating indices in reverse is a
	// valid post-order.
	for v := t.Len() - 1; v >= 0; v-- {
		if t.IsLeaf(v) {
			tables[v] = nodeTable{0: entry{vl: 0, self: true}}
			continue
		}
		tab := combineChildren(tables, t.Children(v), k)
		// The "collapse the whole subtree into {v}" option.
		mlv := rt.groupML(activeLeafVars(s, t, v))
		vlv := len(t.LeavesUnder(v)) - 1
		idx := mlv
		if idx > k {
			idx = k
		}
		if cur, ok := tab[idx]; !ok || vlv < cur.vl {
			tab[idx] = entry{vl: vlv, self: true}
		}
		tables[v] = tab
	}

	root := tables[t.Root()]
	if e, ok := root[k]; ok {
		cut := reconstruct(tables, t, t.Root(), k)
		v := &abstree.VVS{Forest: inst.Forest, Nodes: [][]int{cut}}
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("core: internal error, reconstructed VVS invalid: %w", err)
		}
		return &Result{VVS: v, ML: MonomialLoss(s, v), VL: e.vl, Adequate: true}, nil
	}
	// No adequate VVS: fall back to the max-ML entry (min VL among ties).
	bestI := -1
	for i, e := range root {
		if i > bestI || (i == bestI && e.vl < root[bestI].vl) {
			bestI = i
		}
	}
	cut := reconstruct(tables, t, t.Root(), bestI)
	v := &abstree.VVS{Forest: inst.Forest, Nodes: [][]int{cut}}
	if err := v.Validate(); err != nil {
		return nil, fmt.Errorf("core: internal error, reconstructed VVS invalid: %w", err)
	}
	return &Result{VVS: v, ML: MonomialLoss(s, v), VL: root[bestI].vl, Adequate: false}, nil
}

// entry is one cell of a node table: the minimal variable loss achieving the
// cell's monomial loss, plus the reconstruction choice.
type entry struct {
	vl    int
	self  bool  // choose {v} itself (for leaves this is the identity choice)
	parts []int // else: per-child table keys, aligned with Children(v)
}

// nodeTable maps monomial loss (saturated at k) to the best entry. Sparse:
// most losses are unachievable (§4.1 "Optimizing Av computation").
type nodeTable map[int]entry

// combineChildren performs the saturating knapsack over child tables
// (procedure computeArray of Algorithm 1, on sparse maps).
func combineChildren(tables []nodeTable, children []int, k int) nodeTable {
	acc := nodeTable{0: entry{vl: 0, parts: nil}}
	for ci, c := range children {
		child := tables[c]
		next := make(nodeTable, len(acc))
		// Deterministic iteration keeps reconstruction stable.
		accKeys := sortedKeys(acc)
		childKeys := sortedKeys(child)
		for _, i := range accKeys {
			e1 := acc[i]
			for _, j := range childKeys {
				e2 := child[j]
				idx := i + j
				if idx > k {
					idx = k
				}
				vl := e1.vl + e2.vl
				if cur, ok := next[idx]; !ok || vl < cur.vl {
					parts := make([]int, ci+1)
					copy(parts, e1.parts)
					parts[ci] = j
					next[idx] = entry{vl: vl, parts: parts}
				}
			}
		}
		acc = next
	}
	return acc
}

func sortedKeys(t nodeTable) []int {
	out := make([]int, 0, len(t))
	for i := range t {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// reconstruct walks the choice pointers from node v's table entry at key,
// emitting the chosen cut (sorted node indices).
func reconstruct(tables []nodeTable, t *abstree.Tree, v, key int) []int {
	e := tables[v][key]
	if e.self {
		return []int{v}
	}
	var out []int
	for ci, c := range t.Children(v) {
		out = append(out, reconstruct(tables, t, c, e.parts[ci])...)
	}
	sort.Ints(out)
	return out
}

// activeLeafVars returns the provenance variables of the active leaves under
// node v.
func activeLeafVars(s *provenance.Set, t *abstree.Tree, v int) []provenance.Var {
	var out []provenance.Var
	for _, l := range t.LeavesUnder(v) {
		if lv, ok := s.Vocab.Lookup(t.Label(l)); ok {
			out = append(out, lv)
		}
	}
	return out
}
