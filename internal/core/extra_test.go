package core

import (
	"fmt"
	"strings"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// Deep chain trees exercise the DP's multi-level combination: a path
// A > B > C over leaves forces nested subtree choices.
func TestOptimalDeepChainTree(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	// Four leaf variables sharing residues pairwise so each merge level
	// has a distinct loss.
	s.Add("", provenance.MustParse(vb,
		"1·l1·x + 2·l2·x + 3·l3·x + 4·l4·x + 5·l1·y + 6·l2·y"))
	tree := abstree.MustParseTree("A(B(l1,l2),C(l3,l4))")
	forest := abstree.MustForest(tree)
	for B := 1; B <= s.Size(); B++ {
		res, err := OptimalVVS(s, tree, B)
		if err != nil {
			t.Fatal(err)
		}
		brute, err := BruteForceVVS(s, forest, B, 0)
		if err == ErrNoAdequate {
			if res.Adequate {
				t.Errorf("B=%d: DP adequate, brute infeasible", B)
			}
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if !res.Adequate || res.VL != brute.VL {
			t.Errorf("B=%d: DP VL=%d adequate=%v, brute VL=%d", B, res.VL, res.Adequate, brute.VL)
		}
	}
}

// Multiple polynomials: losses accumulate per polynomial and never merge
// across polynomials (the groupKey poly tag).
func TestOptimalAcrossPolynomials(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	// Same structure in both polynomials: merging l1,l2 loses one monomial
	// in EACH.
	s.Add("P1", provenance.MustParse(vb, "1·l1·x + 2·l2·x"))
	s.Add("P2", provenance.MustParse(vb, "3·l1·y + 4·l2·y"))
	tree := abstree.MustParseTree("G(l1,l2)")
	res, err := OptimalVVS(s, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate || res.ML != 2 || res.VL != 1 {
		t.Errorf("ML=%d VL=%d adequate=%v, want 2/1/true", res.ML, res.VL, res.Adequate)
	}
	// But monomials of different polynomials never merge: sizes drop from
	// 4 to 2, not to 1.
	if m, _ := res.Sizes(s); m != 2 {
		t.Errorf("abstracted size %d, want 2", m)
	}
}

// Exponents flow through abstraction: l1² and l2² merge into g², l1² and
// l2 do not merge.
func TestOptimalWithExponents(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "1·l1^2 + 2·l2^2 + 3·l3"))
	tree := abstree.MustParseTree("G(l1,l2,l3)")
	res, err := OptimalVVS(s, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate {
		t.Fatal("expected adequacy: grouping all three still leaves {g², g} = 2 monomials")
	}
	abs := res.VVS.Apply(s)
	if abs.Size() != 2 {
		t.Errorf("abstracted size = %d, want 2 (g^2 and g stay apart)", abs.Size())
	}
}

// A polynomial with variables entirely outside the forest is untouched.
func TestAbstractionLeavesForeignVariablesAlone(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "1·u·w + 2·w"))
	tree := abstree.MustParseTree("G(l1,l2)")
	res, err := OptimalVVS(s, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ML != 0 || res.VL != 0 {
		t.Errorf("foreign-variable set lost ML=%d VL=%d", res.ML, res.VL)
	}
	if !res.Adequate {
		t.Error("bound 2 = |P|_M should be adequate")
	}
}

// Single-leaf tree (after cleaning, a chain contracts to the leaf): nothing
// to do, but nothing should break either.
func TestOptimalDegenerateTree(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "1·l1 + 2·z"))
	tree := abstree.MustParseTree("A(B(l1))")
	res, err := OptimalVVS(s, tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Adequate || res.ML != 0 {
		t.Errorf("degenerate tree: ML=%d adequate=%v", res.ML, res.Adequate)
	}
	// Bound 1 is unreachable: l1 and z can never merge.
	res, err = OptimalVVS(s, tree, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Adequate {
		t.Error("claims adequacy for unreachable bound")
	}
}

// The greedy with many trees each of one active leaf terminates without
// promotions.
func TestGreedyNoCandidates(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "1·a + 2·b"))
	f := abstree.MustForest(
		abstree.MustParseTree("A(a,a2)"),
		abstree.MustParseTree("B(b,b2)"),
	)
	res, err := GreedyVVS(s, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Cleaning contracts A(a,a2)→a and B(b,b2)→b (a2, b2 inactive), so no
	// internal nodes remain and no merge is possible.
	if res.Adequate || res.ML != 0 {
		t.Errorf("ML=%d adequate=%v, want no-op", res.ML, res.Adequate)
	}
}

// GroupML matches NaiveGroupML on a larger structured instance.
func TestGroupMLLargeInstance(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	for pi := 0; pi < 5; pi++ {
		p := provenance.NewPolynomial()
		for i := 0; i < 20; i++ {
			p.AddTerm(float64(i+1), vb.Var(fmt.Sprintf("l%d", i%7)), vb.Var(fmt.Sprintf("o%d", i%3)))
		}
		s.Add(fmt.Sprintf("P%d", pi), p)
	}
	var group []provenance.Var
	for i := 0; i < 4; i++ {
		v, _ := vb.Lookup(fmt.Sprintf("l%d", i))
		group = append(group, v)
	}
	fast := GroupML(s, group)
	naive := NaiveGroupML(s, group, vb.Var("META"))
	if fast != naive {
		t.Errorf("GroupML %d != NaiveGroupML %d", fast, naive)
	}
}

// Result.Sizes agrees with direct application.
func TestResultSizes(t *testing.T) {
	s, plans, _ := example13(t)
	res, err := OptimalVVS(s, plans, 9)
	if err != nil {
		t.Fatal(err)
	}
	abs := res.VVS.Apply(s)
	m, v := res.Sizes(s)
	if m != abs.Size() || v != abs.Granularity() {
		t.Errorf("Sizes = (%d,%d), applied = (%d,%d)", m, v, abs.Size(), abs.Granularity())
	}
}

// The VVS labels of the Example 13 optimum read back through the facade
// formatting.
func TestVVSStringFormat(t *testing.T) {
	s, plans, _ := example13(t)
	res, err := OptimalVVS(s, plans, 9)
	if err != nil {
		t.Fatal(err)
	}
	str := res.VVS.String()
	if !strings.HasPrefix(str, "{") || !strings.Contains(str, "SB") {
		t.Errorf("VVS String = %q", str)
	}
}

// BatchGroupML agrees with per-group GroupML and NaiveGroupML.
func TestBatchGroupML(t *testing.T) {
	s, plans, _ := example13(t)
	vb := s.Vocab
	lookup := func(names ...string) []provenance.Var {
		var out []provenance.Var
		for _, n := range names {
			v, ok := vb.Lookup(n)
			if !ok {
				t.Fatalf("unknown %s", n)
			}
			out = append(out, v)
		}
		return out
	}
	_ = plans
	groups := [][]provenance.Var{
		lookup("b1", "b2"),
		lookup("f1", "y1", "v"),
		lookup("b1", "b2", "e"),
	}
	batch := BatchGroupML(s, groups)
	for i, g := range groups {
		if single := GroupML(s, g); single != batch[i] {
			t.Errorf("group %d: batch %d != single %d", i, batch[i], single)
		}
		if naive := NaiveGroupML(s, g, vb.Var(fmt.Sprintf("BM%d", i))); naive != batch[i] {
			t.Errorf("group %d: batch %d != naive %d", i, batch[i], naive)
		}
	}
}
