package core

// This file defines the uniform strategy interface every compression
// algorithm is routed through. The paper exposes five ways to pick an
// abstraction — Algorithm 1 (optimal, single tree), Algorithm 2 (greedy,
// any forest), brute force, the Ainy et al. summarization competitor, and
// the §6 online/sampled pipeline — and the session Engine treats them
// interchangeably: each is a Compressor turning (set, forest, bound) into a
// Compression. The three cut-based solvers live here; summarization and
// sampling implement the same interface from their own packages (they
// depend on core, not the other way around).

import (
	"fmt"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// Compression is the uniform outcome of a compression strategy: the
// abstracted provenance plus the selection metadata every strategy can
// report. Strategy-specific detail (sample sizes, oracle calls, …) rides in
// Extra.
type Compression struct {
	Strategy   string
	Abstracted *provenance.Set
	// VVS is the chosen valid variable set; nil for strategies that are not
	// tree-cut based (the pairwise-merge summarization competitor).
	VVS *abstree.VVS
	// Subst is the variable substitution realizing the abstraction. It is
	// what lets a session re-abstract polynomials added after compression
	// without re-running the selection.
	Subst    map[provenance.Var]provenance.Var
	ML, VL   int
	Adequate bool // |P↓S|_M ≤ B
	Elapsed  time.Duration
	// Extra carries the strategy's native result (e.g. *sampling.Result,
	// *summarize.Result) for callers that need more than the common fields.
	Extra any
}

// Compressor is the strategy interface: select an abstraction for the set
// under the bound B, constrained by the forest.
type Compressor interface {
	Name() string
	Compress(s *provenance.Set, forest *abstree.Forest, B int) (*Compression, error)
}

// CompressorFunc adapts a function to the Compressor interface.
type CompressorFunc struct {
	Label string
	Fn    func(s *provenance.Set, forest *abstree.Forest, B int) (*Compression, error)
}

// Name returns the strategy label.
func (c CompressorFunc) Name() string { return c.Label }

// Compress invokes the adapted function.
func (c CompressorFunc) Compress(s *provenance.Set, forest *abstree.Forest, B int) (*Compression, error) {
	return c.Fn(s, forest, B)
}

// FromResult converts a VVS-selection Result into the uniform Compression,
// applying the VVS to produce the abstracted set.
func FromResult(name string, s *provenance.Set, res *Result, elapsed time.Duration) *Compression {
	subst := res.VVS.Subst(s.Vocab)
	return &Compression{
		Strategy:   name,
		Abstracted: s.Substitute(subst),
		VVS:        res.VVS,
		Subst:      subst,
		ML:         res.ML,
		VL:         res.VL,
		Adequate:   res.Adequate,
		Elapsed:    elapsed,
	}
}

// OptimalCompressor returns Algorithm 1 as a Compressor. It requires a
// single-tree forest (the optimal selection problem is NP-hard beyond one
// tree — use GreedyCompressor for forests).
func OptimalCompressor() Compressor {
	return CompressorFunc{Label: "optimal", Fn: func(s *provenance.Set, forest *abstree.Forest, B int) (*Compression, error) {
		if forest.Len() != 1 {
			return nil, fmt.Errorf("core: the optimal strategy handles exactly one tree (forest has %d); use the greedy strategy for forests", forest.Len())
		}
		start := time.Now()
		res, err := OptimalVVS(s, forest.Trees[0], B)
		if err != nil {
			return nil, err
		}
		return FromResult("optimal", s, res, time.Since(start)), nil
	}}
}

// GreedyCompressor returns Algorithm 2 as a Compressor.
func GreedyCompressor() Compressor {
	return CompressorFunc{Label: "greedy", Fn: func(s *provenance.Set, forest *abstree.Forest, B int) (*Compression, error) {
		start := time.Now()
		res, err := GreedyVVS(s, forest, B)
		if err != nil {
			return nil, err
		}
		return FromResult("greedy", s, res, time.Since(start)), nil
	}}
}

// BruteForceCompressor returns the exhaustive reference solver as a
// Compressor; limit caps the VVS enumeration (<=0 uses DefaultBruteLimit).
func BruteForceCompressor(limit int) Compressor {
	return CompressorFunc{Label: "brute", Fn: func(s *provenance.Set, forest *abstree.Forest, B int) (*Compression, error) {
		start := time.Now()
		res, err := BruteForceVVS(s, forest, B, limit)
		if err != nil {
			return nil, err
		}
		return FromResult("brute", s, res, time.Since(start)), nil
	}}
}
