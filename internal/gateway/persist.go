package gateway

// Durable gateway state. The placement table and the tenant→session
// ownership behind the quota counters used to be in-memory only: a
// gateway restart forgot who holds what and re-learned it via Rebalance —
// racing in-flight migrations — and forgot every tenant's session count,
// silently resetting quotas. This file persists both to a single
// checksummed journal (the internal/durable frame codec: u32 length +
// CRC32-C per record), so a restarted gateway routes and limits exactly
// as it did before the restart, without a sweep.
//
// The journal holds JSON records:
//
//	{"op":"snap","placements":[{name,backend,tenant}...]}  full state
//	{"op":"place","name":…,"backend":…,"tenant":…}         delta
//	{"op":"unplace","name":…}                              delta
//
// Each delta is fsynced before the mutating request is acknowledged
// (placement changes ride session lifecycle operations — create, delete,
// migration cutover — not the per-scenario data plane, so the fsync is
// off the hot path). Every compactEvery deltas the journal is rewritten
// as one snap record via the atomic-replace discipline the durable store
// uses: write tmp → fsync → rename → fsync dir. Recovery tolerates a torn
// tail (truncate and continue — the record it lost was never
// acknowledged) but refuses a corrupt middle, exactly like the session
// WAL. Token buckets are deliberately NOT persisted: a restart refills
// them to burst, which momentarily over-admits but never over-counts the
// durable facts (sessions) that quotas exist to bound.
//
// Persistence failures after open do not take the gateway down: the
// router keeps serving on its in-memory state (which Rebalance can
// re-derive), the store goes sticky-broken, and every skipped write is
// logged. A router's availability outranks its bookkeeping.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"

	"provabs/internal/durable"
)

// compactEvery is how many delta records accumulate before the journal is
// rewritten as a single snapshot record.
const compactEvery = 1024

// placementEntry is one routed session in the durable state.
type placementEntry struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	Tenant  string `json:"tenant,omitempty"` // "" = adopted, no quota owner
}

// stateRecord is one journal record.
type stateRecord struct {
	Op         string           `json:"op"` // "snap", "place", "unplace"
	Name       string           `json:"name,omitempty"`
	Backend    string           `json:"backend,omitempty"`
	Tenant     string           `json:"tenant,omitempty"`
	Placements []placementEntry `json:"placements,omitempty"`
}

// stateStore owns the journal file. Methods are safe for concurrent use.
type stateStore struct {
	fsys   durable.FS
	path   string
	logger *log.Logger

	mu      sync.Mutex
	f       durable.File
	deltas  int
	entries map[string]placementEntry // mirror, for compaction
	broken  error                     // sticky: first persistence failure
}

// openStateStore opens (creating if absent) the gateway state journal and
// returns the recovered placements. A torn tail is truncated with a log
// line; interior corruption is refused — the operator decides whether to
// delete the file and fall back to Rebalance healing.
func openStateStore(fsys durable.FS, path string, logger *log.Logger) (*stateStore, map[string]placementEntry, error) {
	st := &stateStore{
		fsys:    fsys,
		path:    path,
		logger:  logger,
		entries: make(map[string]placementEntry),
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, nil, fmt.Errorf("gateway state: %w", err)
		}
	}
	raw, err := st.readFile()
	if err != nil {
		return nil, nil, err
	}
	scan, err := durable.ScanFrames(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("gateway state %s: %w", path, err)
	}
	for _, payload := range scan.Payloads {
		var rec stateRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, nil, fmt.Errorf("gateway state %s: %w: undecodable record: %v", path, durable.ErrCorrupt, err)
		}
		st.applyLocked(rec)
	}
	if scan.Torn {
		logger.Printf("gateway: state journal %s has a torn tail (%s); truncating to %d bytes",
			path, scan.TornWhy, scan.ValidLen)
		if err := st.truncateTo(scan.ValidLen); err != nil {
			return nil, nil, err
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("gateway state: %w", err)
	}
	// The create above made the directory entry; without a directory sync a
	// crash can forget the file even though its fsynced contents survived.
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("gateway state: syncing journal directory: %w", err)
	}
	st.f = f
	st.deltas = len(scan.Payloads)
	recovered := make(map[string]placementEntry, len(st.entries))
	for k, v := range st.entries {
		recovered[k] = v
	}
	if len(recovered) > 0 || scan.Torn {
		logger.Printf("gateway: recovered %d placement(s) from %s", len(recovered), path)
	}
	// Start compacted: recovery already folded the log into one state.
	if st.deltas > 1 {
		if err := st.compactLocked(); err != nil {
			st.markBroken(err)
		}
	}
	return st, recovered, nil
}

func (st *stateStore) readFile() ([]byte, error) {
	f, err := st.fsys.OpenFile(st.path, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("gateway state: %w", err)
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("gateway state: %w", err)
	}
	return raw, nil
}

func (st *stateStore) truncateTo(n int64) error {
	f, err := st.fsys.OpenFile(st.path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("gateway state: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(n); err != nil {
		return fmt.Errorf("gateway state: truncating torn tail: %w", err)
	}
	return f.Sync()
}

// applyLocked folds one record into the mirror map.
func (st *stateStore) applyLocked(rec stateRecord) {
	switch rec.Op {
	case "snap":
		st.entries = make(map[string]placementEntry, len(rec.Placements))
		for _, e := range rec.Placements {
			st.entries[e.Name] = e
		}
	case "place":
		st.entries[rec.Name] = placementEntry{Name: rec.Name, Backend: rec.Backend, Tenant: rec.Tenant}
	case "unplace":
		delete(st.entries, rec.Name)
	}
}

// record appends one delta, fsyncs it, and compacts when due. A failure
// marks the store broken (sticky) and is logged; the caller's in-memory
// state remains authoritative for this process's lifetime.
func (st *stateStore) record(rec stateRecord) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.broken != nil {
		return
	}
	st.applyLocked(rec)
	payload, err := json.Marshal(rec)
	if err != nil {
		st.markBroken(err)
		return
	}
	if _, err := st.f.Write(durable.AppendFrame(nil, payload)); err != nil {
		st.markBroken(err)
		return
	}
	if err := st.f.Sync(); err != nil {
		st.markBroken(err)
		return
	}
	st.deltas++
	if st.deltas >= compactEvery {
		if err := st.compactLocked(); err != nil {
			st.markBroken(err)
		}
	}
}

// compactLocked rewrites the journal as one snap record via atomic
// replace: tmp → fsync → rename → fsync dir → reopen for append.
func (st *stateStore) compactLocked() error {
	entries := make([]placementEntry, 0, len(st.entries))
	for _, e := range st.entries {
		entries = append(entries, e)
	}
	payload, err := json.Marshal(stateRecord{Op: "snap", Placements: entries})
	if err != nil {
		return err
	}
	tmp := st.path + ".tmp"
	f, err := st.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(durable.AppendFrame(nil, payload)); err != nil {
		f.Close()
		st.fsys.Remove(tmp) //nolint:errcheck // best effort
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		st.fsys.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if st.f != nil {
		st.f.Close() //nolint:errcheck // superseded handle
	}
	if err := st.fsys.Rename(tmp, st.path); err != nil {
		return err
	}
	if err := st.fsys.SyncDir(filepath.Dir(st.path)); err != nil {
		return err
	}
	nf, err := st.fsys.OpenFile(st.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	st.f = nf
	st.deltas = 1
	return nil
}

func (st *stateStore) markBroken(err error) {
	if st.broken != nil {
		return
	}
	st.broken = err
	st.logger.Printf("gateway: state journal %s failed; continuing on in-memory state only: %v", st.path, err)
}

// healthy reports whether the store is still persisting (observability).
func (st *stateStore) healthy() bool {
	if st == nil {
		return false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.broken == nil
}

func (st *stateStore) close() {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.f != nil {
		st.f.Close() //nolint:errcheck
		st.f = nil
	}
}

// statePlace / stateUnplace are the Gateway's persistence hooks; callers
// hold g.mu so the journal order matches the placement map's mutation
// order (the fsync rides session lifecycle ops only).
func (g *Gateway) statePlace(name, backend, tenant string) {
	if g.state == nil {
		return
	}
	g.state.record(stateRecord{Op: "place", Name: name, Backend: backend, Tenant: tenant})
}

func (g *Gateway) stateUnplace(name string) {
	if g.state == nil {
		return
	}
	g.state.record(stateRecord{Op: "unplace", Name: name})
}
