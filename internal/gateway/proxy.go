package gateway

// The forwarding layer. Two shapes:
//
//   - proxyBuffered: request body already in memory (create, whose name
//     the gateway had to read; the one-shot verbs) or bodiless (info,
//     delete). Both sides fully buffered, which is what lets idempotent
//     calls retry with backoff (retry.go) behind the circuit breaker.
//
//   - proxyStream: everything else, including the NDJSON streams. The
//     inbound side is switched to full duplex (an HTTP/1 server otherwise
//     drains the request body before the first response write — the exact
//     deadlock the backend solves the same way), the request body streams
//     through to the backend while response bytes flow back, and every
//     chunk read from the backend is flushed immediately so per-line ack
//     latency survives the extra hop. A backend that dies mid-stream
//     surfaces as an in-band {"error": …} terminal line — never a
//     silently hung client.
//
// Hop-by-hop headers are stripped both ways per RFC 9110 §7.6.1.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// hopHeaders never cross a proxy.
var hopHeaders = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

// outgoing builds the backend request mirroring the inbound one.
func (g *Gateway) outgoing(r *http.Request, b *backend, body io.Reader, length int64) (*http.Request, error) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method, b.base+r.URL.RequestURI(), body)
	if err != nil {
		return nil, err
	}
	out.Header = make(http.Header, len(r.Header))
	copyHeaders(out.Header, r.Header)
	out.ContentLength = length
	return out, nil
}

// admit claims a backend proxy slot, answering 503 + Retry-After when the
// backend is saturated. The release func is nil when admission failed.
func (g *Gateway) admit(w http.ResponseWriter, b *backend) func() {
	if !b.acquire() {
		g.writeUnavailable(w, 1,
			fmt.Errorf("backend %s is at its in-flight limit (%d); retry shortly", b.addr, g.opts.MaxInflight))
		return nil
	}
	g.proxied.Add(1)
	return b.release
}

// proxyBuffered forwards a request whose body (possibly nil) is already
// in memory and copies the fully buffered response back. It rides the
// retrying round trip: idempotent calls may be attempted up to
// Retry.MaxAttempts times on transport failure, and because nothing is
// written to the client until a whole response is in hand, a retry can
// never fire after client-visible bytes. Returns the upstream status (0
// when every attempt failed, with the 502/503 already written).
func (g *Gateway) proxyBuffered(w http.ResponseWriter, r *http.Request, b *backend, body []byte, idempotent bool) (int, error) {
	release := g.admit(w, b)
	if release == nil {
		return 0, errSaturated
	}
	defer release()
	hdr := make(http.Header, len(r.Header))
	copyHeaders(hdr, r.Header)
	br, err := g.roundTrip(r.Context(), b, r.Method, b.base+r.URL.RequestURI(), hdr, body, idempotent)
	if err != nil {
		var open *errBreakerOpen
		if errors.As(err, &open) {
			g.writeUnavailable(w, retrySeconds(open.retryAfter), err)
			return 0, err
		}
		err = fmt.Errorf("gateway: %w", err)
		g.writeError(w, http.StatusBadGateway, err)
		return 0, err
	}
	br.write(w)
	return br.status, nil
}

var errSaturated = errors.New("backend saturated")

// proxyStream forwards a request end to end, streaming both directions.
// With stream=true the copy flushes per chunk and a mid-body backend
// failure is reported in-band; otherwise it behaves like a plain proxy
// that happens not to buffer.
func (g *Gateway) proxyStream(w http.ResponseWriter, r *http.Request, b *backend, stream bool) {
	release := g.admit(w, b)
	if release == nil {
		return
	}
	defer release()
	// Streams respect the breaker's verdict but never retry or time out:
	// they are long-lived by design.
	if ok, wait := b.breaker.allow(time.Now()); !ok {
		g.writeUnavailable(w, retrySeconds(wait), (&errBreakerOpen{addr: b.addr, retryAfter: wait}))
		return
	}
	rc := http.NewResponseController(w)
	if stream {
		// Respond while the request body is still streaming in (HTTP/2 is
		// duplex already and reports ErrNotSupported — safe to ignore).
		if err := rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
			g.opts.Logger.Printf("gateway: %s %s: full duplex: %v", r.Method, r.URL.Path, err)
		}
	}
	out, err := g.outgoing(r, b, r.Body, r.ContentLength)
	if err != nil {
		g.writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := g.client.Do(out)
	if err != nil {
		g.suspect(b)
		g.writeError(w, http.StatusBadGateway, fmt.Errorf("gateway: backend %s: %w", b.addr, err))
		return
	}
	b.breaker.onSuccess()
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)

	buf := make([]byte, 32*1024)
	wrote := false
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				// Client went away; closing resp.Body (deferred) tears the
				// backend side down too.
				g.opts.Logger.Printf("gateway: %s %s via %s: client write: %v", r.Method, r.URL.Path, b.addr, werr)
				return
			}
			wrote = true
			if stream {
				if ferr := rc.Flush(); ferr != nil {
					g.opts.Logger.Printf("gateway: %s %s via %s: flush: %v", r.Method, r.URL.Path, b.addr, ferr)
					return
				}
			}
		}
		if rerr == io.EOF {
			return
		}
		if rerr != nil {
			// The backend died (or was killed) mid-stream. The status line is
			// long gone; for NDJSON surfaces the contract is an in-band
			// terminal error line so the client unblocks with a reason
			// instead of hanging on a half-open connection.
			g.suspect(b)
			g.opts.Logger.Printf("gateway: %s %s via %s: backend read: %v", r.Method, r.URL.Path, b.addr, rerr)
			if stream {
				line := map[string]string{"error": fmt.Sprintf("gateway: backend %s failed mid-stream: %v", b.addr, rerr)}
				if encErr := json.NewEncoder(w).Encode(line); encErr == nil {
					rc.Flush() //nolint:errcheck // best effort: the conversation is over either way
				}
			} else if !wrote {
				g.writeError(w, http.StatusBadGateway, fmt.Errorf("gateway: backend %s: %v", b.addr, rerr))
			}
			return
		}
	}
}
