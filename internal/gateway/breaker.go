package gateway

// Per-backend circuit breaker. The health prober decides pool membership
// on a seconds-scale cadence; the breaker reacts on the request path, so
// a backend that accepts TCP but stalls or resets every proxied call
// stops costing callers a full timeout each. States:
//
//	closed    — requests flow; consecutive transport failures count up.
//	open      — requests fail fast (503 + Retry-After = remaining
//	            cooldown); no backend round trip at all.
//	half-open — after the cooldown one trial request is admitted; its
//	            success closes the breaker, its failure re-opens it with
//	            a doubled cooldown (capped).
//
// Only transport-level failures (dial errors, resets, per-attempt
// timeouts) count: an HTTP response of any status is the backend talking,
// which is what the breaker exists to detect the absence of. The breaker
// is integrated with the health prober both ways: tripping zeroes the
// probe grace (suspect) so the prober re-examines the backend at the next
// tick, and a successful health probe resets the breaker, so readmission
// by probe and by trial request cannot disagree for long.

import (
	"sync"
	"time"
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

type breaker struct {
	mu          sync.Mutex
	threshold   int           // consecutive failures that trip it
	cooldown    time.Duration // first trip's open window
	maxCooldown time.Duration // cap for the doubling on repeated trips

	state    breakerState
	failures int           // consecutive failures while closed
	openFor  time.Duration // current trip's window
	until    time.Time     // when the open state ends
	trial    bool          // a half-open trial request is in flight
	trips    int64         // total trips, for observability
}

func newBreaker(threshold int, cooldown, maxCooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, maxCooldown: maxCooldown}
}

// allow reports whether a request may proceed; when it may not, it
// returns how long the caller should tell the client to wait. In
// half-open, exactly one caller at a time is admitted as the trial.
func (b *breaker) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerOpen:
		if now.Before(b.until) {
			return false, b.until.Sub(now)
		}
		b.state = breakerHalfOpen
		b.trial = true
		return true, 0
	default: // half-open
		if b.trial {
			return false, b.openFor
		}
		b.trial = true
		return true, 0
	}
}

// onSuccess records a completed round trip (any HTTP status): the backend
// is talking, so the breaker closes.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.openFor = 0
	b.trial = false
}

// onFailure records a transport failure and reports whether the breaker
// just tripped (the caller zeroes the probe grace then).
func (b *breaker) onFailure(now time.Time) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures < b.threshold {
			return false
		}
		b.openFor = b.cooldown
	case breakerHalfOpen:
		// The trial failed: back to open, twice the window.
		b.openFor *= 2
		if b.openFor > b.maxCooldown {
			b.openFor = b.maxCooldown
		}
	case breakerOpen:
		// Failures while already open (concurrent requests that were in
		// flight when it tripped) don't extend the window.
		return false
	}
	b.state = breakerOpen
	b.trial = false
	b.until = now.Add(b.openFor)
	b.trips++
	return true
}

// reset closes the breaker outright — the health prober's success path,
// so probe-observed recovery readmits the request path immediately.
func (b *breaker) reset() { b.onSuccess() }

// snapshot returns the state name and total trips for observability.
func (b *breaker) snapshot() (state string, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.trips
}
