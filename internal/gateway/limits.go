package gateway

// Per-tenant resource limits. A tenant is whatever the X-Tenant request
// header names ("default" when absent) — the gateway has no auth layer, so
// the header is a cooperative label, but the limits it keys are real: max
// live sessions created through the gateway, a token-bucket cap on
// scenario throughput, and a cap on concurrent streams. Every rejection
// carries Retry-After so a well-behaved client backs off instead of
// hammering; the scenario bucket additionally throttles *inside* a live
// stream by delaying body reads, which propagates as TCP backpressure all
// the way to the sender — one hot tenant slows itself down, not the pool.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// TenantLimits configures per-tenant resource caps. Zero values mean
// unlimited.
type TenantLimits struct {
	// MaxSessions caps the live sessions a tenant may have created through
	// the gateway.
	MaxSessions int
	// ScenariosPerSec caps a tenant's scenario throughput (one token per
	// what-if or query request, one per NDJSON scenario/add line).
	ScenariosPerSec float64
	// Burst is the token-bucket capacity (defaults to max(1,
	// ScenariosPerSec) when zero).
	Burst float64
	// MaxStreams caps a tenant's concurrently open NDJSON streams.
	MaxStreams int
}

func (l TenantLimits) enabled() bool {
	return l.MaxSessions > 0 || l.ScenariosPerSec > 0 || l.MaxStreams > 0
}

// tokenBucket is a standard token bucket. take consumes unconditionally
// and returns how long the caller must stall to honor the rate (streams:
// the debt throttles the next body read); allow consumes only if the
// tokens are there and otherwise returns the wait a client should
// Retry-After (one-shot requests).
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	if burst <= 0 {
		burst = math.Max(1, rate)
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now}
}

func (b *tokenBucket) refillLocked(now time.Time) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
}

// take consumes n tokens, letting the balance go negative, and returns the
// stall needed to pay the debt off.
func (b *tokenBucket) take(n float64, now time.Time) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	b.tokens -= n
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// allow consumes n tokens only if available; otherwise it reports the wait
// until they would be.
func (b *tokenBucket) allow(n float64, now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	return false, time.Duration((n - b.tokens) / b.rate * float64(time.Second))
}

// tenantState is one tenant's live accounting.
type tenantState struct {
	bucket   *tokenBucket    // nil without a rate limit
	sessions map[string]bool // session names created through the gateway
	streams  int             // open NDJSON streams
}

// limiter maps tenants to their state. All methods are safe for concurrent
// use.
type limiter struct {
	cfg TenantLimits
	mu  sync.Mutex
	// tenants holds per-tenant state; sessionOwner maps a session name back
	// to the tenant that created it, so DELETE (and migration bookkeeping)
	// can release the right slot without trusting headers twice.
	tenants      map[string]*tenantState
	sessionOwner map[string]string
}

func newLimiter(cfg TenantLimits) *limiter {
	return &limiter{
		cfg:          cfg,
		tenants:      make(map[string]*tenantState),
		sessionOwner: make(map[string]string),
	}
}

func (l *limiter) stateLocked(tenant string) *tenantState {
	st, ok := l.tenants[tenant]
	if !ok {
		st = &tenantState{sessions: make(map[string]bool)}
		if l.cfg.ScenariosPerSec > 0 {
			st.bucket = newTokenBucket(l.cfg.ScenariosPerSec, l.cfg.Burst, time.Now())
		}
		l.tenants[tenant] = st
	}
	return st
}

// errLimited is a rejection with the backoff a client should honor.
type errLimited struct {
	msg        string
	retryAfter time.Duration
}

func (e *errLimited) Error() string { return e.msg }

// retrySeconds renders a Retry-After value: at least 1, rounded up.
func retrySeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// errSessionTaken rejects a create for a name some tenant already holds.
// The caller maps it to 409 — and, critically, must not release a slot it
// never claimed: re-claiming a held name used to no-op the cap check and
// clobber sessionOwner across tenants, so the failure path's release would
// free the LIVE session's slot.
var errSessionTaken = errors.New("session name already registered")

// registerSession claims a session slot for tenant. The name is reserved
// before the create is forwarded and released again if it fails, so a
// racing pair cannot both land under the cap. A name already registered —
// by any tenant — is a conflict, never a fresh claim.
func (l *limiter) registerSession(tenant, name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, taken := l.sessionOwner[name]; taken {
		return errSessionTaken
	}
	st := l.stateLocked(tenant)
	if l.cfg.MaxSessions > 0 && len(st.sessions) >= l.cfg.MaxSessions {
		return &errLimited{
			msg:        fmt.Sprintf("tenant %q is at its session limit (%d)", tenant, l.cfg.MaxSessions),
			retryAfter: time.Second,
		}
	}
	st.sessions[name] = true
	l.sessionOwner[name] = tenant
	return nil
}

// adopt re-seeds a tenant's session accounting from recovered durable
// state. It bypasses the MaxSessions cap on purpose: the sessions already
// exist, and refusing to count them would under-charge the tenant rather
// than protect the pool. Token buckets are untouched — rate state is
// deliberately not durable (a restart refills to burst), only the facts
// (which sessions, whose) are.
func (l *limiter) adopt(tenant, name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, taken := l.sessionOwner[name]; taken {
		return
	}
	st := l.stateLocked(tenant)
	st.sessions[name] = true
	l.sessionOwner[name] = tenant
}

// ownerOf names the tenant a session is charged to ("" when the gateway
// never saw it created).
func (l *limiter) ownerOf(name string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sessionOwner[name]
}

// releaseSession frees the slot a session occupied (no-op for sessions the
// gateway never saw created).
func (l *limiter) releaseSession(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if tenant, ok := l.sessionOwner[name]; ok {
		delete(l.sessionOwner, name)
		if st := l.tenants[tenant]; st != nil {
			delete(st.sessions, name)
		}
	}
}

// acquireStream claims a concurrent-stream slot. The returned release must
// be called when the stream ends.
func (l *limiter) acquireStream(tenant string) (release func(), err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.stateLocked(tenant)
	if l.cfg.MaxStreams > 0 && st.streams >= l.cfg.MaxStreams {
		return nil, &errLimited{
			msg:        fmt.Sprintf("tenant %q is at its concurrent-stream limit (%d)", tenant, l.cfg.MaxStreams),
			retryAfter: time.Second,
		}
	}
	st.streams++
	var once sync.Once
	return func() {
		once.Do(func() {
			l.mu.Lock()
			st.streams--
			l.mu.Unlock()
		})
	}, nil
}

// allowScenarios charges n scenarios against the tenant's bucket for a
// one-shot request (whatif, query); a refusal reports the backoff.
func (l *limiter) allowScenarios(tenant string, n float64) error {
	l.mu.Lock()
	st := l.stateLocked(tenant)
	l.mu.Unlock()
	if st.bucket == nil {
		return nil
	}
	if ok, wait := st.bucket.allow(n, time.Now()); !ok {
		return &errLimited{
			msg:        fmt.Sprintf("tenant %q exceeds %g scenarios/sec", tenant, l.cfg.ScenariosPerSec),
			retryAfter: wait,
		}
	}
	return nil
}

// throttleBody wraps a stream's request body so each NDJSON line costs one
// token; once the bucket runs dry the read stalls, which backpressures the
// sender through TCP instead of buffering the hot tenant's flood in the
// gateway. Returns body unwrapped when the tenant is unlimited.
func (l *limiter) throttleBody(ctx context.Context, tenant string, body io.ReadCloser) io.ReadCloser {
	l.mu.Lock()
	st := l.stateLocked(tenant)
	l.mu.Unlock()
	if st.bucket == nil {
		return body
	}
	return &throttledReader{ctx: ctx, body: body, bucket: st.bucket}
}

type throttledReader struct {
	ctx    context.Context
	body   io.ReadCloser
	bucket *tokenBucket
}

func (t *throttledReader) Read(p []byte) (int, error) {
	n, err := t.body.Read(p)
	if n > 0 {
		if lines := bytes.Count(p[:n], []byte{'\n'}); lines > 0 {
			if wait := t.bucket.take(float64(lines), time.Now()); wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-t.ctx.Done():
					timer.Stop()
				}
			}
		}
	}
	return n, err
}

func (t *throttledReader) Close() error { return t.body.Close() }
