package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"provabs/internal/durable"
	"provabs/internal/registry"
)

// Options tunes a Gateway. The zero value is usable; New fills defaults.
type Options struct {
	// VNodes is the virtual-node count per backend on the hash ring
	// (default 64).
	VNodes int
	// ProbeInterval is the health-check period for healthy backends
	// (default 2s). Start launches the probe loop; a Gateway whose Start
	// was never called does no probing (tests drive health by hand).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures eject a backend
	// (default 2).
	FailThreshold int
	// ReadmitBackoffMax caps the exponential probe backoff of an ejected
	// backend (default 30s; the backoff starts at ProbeInterval).
	ReadmitBackoffMax time.Duration
	// MaxInflight bounds concurrently proxied requests per backend
	// (default 256); past it the gateway answers 503 + Retry-After instead
	// of queueing without bound.
	MaxInflight int
	// MaxCreateBytes bounds a create body the gateway must buffer to read
	// the session name (default 64 MiB, matching the backend limit).
	MaxCreateBytes int64
	// QuiesceTimeout is how long a migration waits for a session's
	// in-flight write streams to finish before giving up (default 10s).
	QuiesceTimeout time.Duration
	// Limits are the per-tenant resource caps (zero: unlimited).
	Limits TenantLimits
	// Retry tunes gateway→backend retries for idempotent calls (see
	// RetryPolicy; zero values take the documented defaults).
	Retry RetryPolicy
	// BreakerThreshold is how many consecutive transport failures open a
	// backend's circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is the breaker's first open window (default 2s); it
	// doubles on repeated trips up to BreakerCooldownMax (default 30s).
	BreakerCooldown    time.Duration
	BreakerCooldownMax time.Duration
	// StatePath, when set, makes placements and tenant-session ownership
	// durable in a checksummed journal there; a restarted gateway recovers
	// its routing and quota counts instead of re-learning by sweep.
	StatePath string
	// StateFS is the filesystem the state journal lives on (default the
	// real one; tests inject a fault-injecting FS).
	StateFS durable.FS
	// MigrateParallel bounds concurrent session migrations in one
	// rebalance/drain sweep (default 4).
	MigrateParallel int
	// JournalLines / JournalBytes bound one add stream's queue-and-replay
	// journal during a migration (defaults 4096 lines, 8 MiB). A full
	// journal stops reading the client's body (TCP backpressure) rather
	// than failing the stream.
	JournalLines int
	JournalBytes int64
	// ParkLimit bounds how many one-shot writes may queue per migrating
	// session (default 256); past it the gateway answers 503 again.
	ParkLimit int
	// ParkTimeout bounds how long a parked write waits out a migration
	// (default 2×QuiesceTimeout).
	ParkTimeout time.Duration
	// MaxLineBytes bounds one NDJSON line through the add proxy (default
	// 1 MiB, matching the backend).
	MaxLineBytes int64
	// Logger receives routing and migration diagnostics (default
	// log.Default()).
	Logger *log.Logger
}

func (o *Options) fillDefaults() {
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
	if o.ReadmitBackoffMax <= 0 {
		o.ReadmitBackoffMax = 30 * time.Second
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	if o.MaxCreateBytes <= 0 {
		o.MaxCreateBytes = 64 << 20
	}
	if o.QuiesceTimeout <= 0 {
		o.QuiesceTimeout = 10 * time.Second
	}
	o.Retry.fillDefaults()
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.BreakerCooldownMax <= 0 {
		o.BreakerCooldownMax = 30 * time.Second
	}
	if o.StateFS == nil {
		o.StateFS = durable.OSFS{}
	}
	if o.MigrateParallel <= 0 {
		o.MigrateParallel = 4
	}
	if o.JournalLines <= 0 {
		o.JournalLines = 4096
	}
	if o.JournalBytes <= 0 {
		o.JournalBytes = 8 << 20
	}
	if o.ParkLimit <= 0 {
		o.ParkLimit = 256
	}
	if o.ParkTimeout <= 0 {
		o.ParkTimeout = 2 * o.QuiesceTimeout
	}
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = 1 << 20
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
}

// backend is one pool member and its live accounting.
type backend struct {
	addr string // host:port, the pool identity
	base string // http://host:port

	mu       sync.Mutex
	healthy  bool
	draining bool // drained backends take no new sessions (off the ring)
	failures int  // consecutive probe failures
	backoff  time.Duration
	nextAt   time.Time // earliest next probe while ejected

	inflight    chan struct{} // bounded proxy slots
	breaker     *breaker      // request-path circuit breaker
	retryBudget *tokenBucket  // caps retry amplification per backend
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

func (b *backend) isDraining() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draining
}

// acquire claims a proxy slot without blocking.
func (b *backend) acquire() bool {
	select {
	case b.inflight <- struct{}{}:
		return true
	default:
		return false
	}
}

func (b *backend) release() { <-b.inflight }

// Gateway routes /v1 traffic across a pool of provabs serve backends.
type Gateway struct {
	opts   Options
	client *http.Client // streaming proxy + control calls; no global timeout
	probe  *http.Client // health probes, tightly bounded
	limits *limiter

	state *stateStore // durable placements + quota ownership; nil without StatePath

	mu         sync.RWMutex
	backends   map[string]*backend
	ring       *Ring
	placements map[string]string         // session name -> backend addr it lives on
	moving     map[string]time.Time      // sessions quiesced for migration -> quiesce start
	writers    map[string]int            // in-flight one-shot writes per session
	parked     map[string]*parkedSession // bounded wait queues for quiesced writes
	addProxies map[string][]*addProxy    // live add streams per session

	rebalanceMu sync.Mutex // one rebalance sweep at a time

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup

	// counters for GET /gateway/backends observability
	proxied          atomic.Int64
	migrations       atomic.Int64
	retries          atomic.Int64 // idempotent round trips retried
	parkedWrites     atomic.Int64 // one-shot writes that waited out a quiesce
	journaledLines   atomic.Int64 // add lines buffered during migrations
	replayedLines    atomic.Int64 // journaled lines replayed onto a new holder
	journalStalls    atomic.Int64 // forwards blocked on a full journal
	journalHighWater atomic.Int64 // deepest single-stream journal observed
}

// New builds a gateway over the given backend addresses (host:port). The
// backends are assumed healthy until the first probe says otherwise; call
// Start to begin probing. With Options.StatePath set, placements and
// tenant-session ownership recover from the durable journal before the
// first request is served.
func New(addrs []string, opts Options) (*Gateway, error) {
	opts.fillDefaults()
	if len(addrs) == 0 {
		return nil, fmt.Errorf("gateway: need at least one backend address")
	}
	g := &Gateway{
		opts: opts,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 128,
			IdleConnTimeout:     90 * time.Second,
		}},
		probe:      &http.Client{Timeout: opts.ProbeTimeout},
		limits:     newLimiter(opts.Limits),
		backends:   make(map[string]*backend),
		ring:       NewRing(opts.VNodes),
		placements: make(map[string]string),
		moving:     make(map[string]time.Time),
		writers:    make(map[string]int),
		parked:     make(map[string]*parkedSession),
		addProxies: make(map[string][]*addProxy),
		stopCh:     make(chan struct{}),
	}
	for _, addr := range addrs {
		if err := g.addBackendLocked(addr); err != nil {
			return nil, err
		}
	}
	if opts.StatePath != "" {
		st, recovered, err := openStateStore(opts.StateFS, opts.StatePath, opts.Logger)
		if err != nil {
			return nil, err
		}
		g.state = st
		for name, e := range recovered {
			g.placements[name] = e.Backend
			if e.Tenant != "" {
				// Re-seed the quota counters from the durable facts. adopt
				// bypasses the cap check: these sessions already exist, and
				// refusing to count them would under-charge, not protect.
				g.limits.adopt(e.Tenant, name)
			}
		}
	}
	return g, nil
}

// addBackendLocked registers a pool member (callers hold no lock during
// New; AddBackend takes g.mu itself).
func (g *Gateway) addBackendLocked(addr string) error {
	addr = strings.TrimPrefix(strings.TrimPrefix(addr, "http://"), "https://")
	addr = strings.TrimSuffix(addr, "/")
	if addr == "" {
		return fmt.Errorf("gateway: empty backend address")
	}
	if _, ok := g.backends[addr]; ok {
		return fmt.Errorf("gateway: backend %s already in the pool", addr)
	}
	b := &backend{
		addr:        addr,
		base:        "http://" + addr,
		healthy:     true,
		inflight:    make(chan struct{}, g.opts.MaxInflight),
		breaker:     newBreaker(g.opts.BreakerThreshold, g.opts.BreakerCooldown, g.opts.BreakerCooldownMax),
		retryBudget: newTokenBucket(g.opts.Retry.RetryBudgetPerSec, g.opts.Retry.RetryBudgetBurst, time.Now()),
	}
	g.backends[addr] = b
	g.ring.Add(addr)
	return nil
}

// Start launches the health-probe loop. Stop ends it. Initial probe
// times are staggered across the interval so a fleet of gateways (or one
// gateway's backends) never probe in the same instant; tests that drive
// probeAll by hand never call Start and keep the probe-everything-now
// zero values.
func (g *Gateway) Start() {
	g.staggerProbes()
	g.wg.Add(1)
	go g.probeLoop()
}

// Stop ends background work, waits for it, and closes the state journal.
func (g *Gateway) Stop() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	g.wg.Wait()
	g.state.close()
}

// lookup resolves a backend by addr.
func (g *Gateway) lookup(addr string) *backend {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.backends[addr]
}

// route picks the backend serving session name: its recorded placement if
// the gateway has one, else the ring owner. The placement map is what lets
// routing survive the window where a ring change has re-assigned ownership
// but the session has not migrated yet.
func (g *Gateway) route(name string) (*backend, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if addr, ok := g.placements[name]; ok {
		if b := g.backends[addr]; b != nil {
			return b, nil
		}
	}
	addr, ok := g.ring.Owner(name)
	if !ok {
		return nil, fmt.Errorf("gateway: no routable backends in the pool")
	}
	b := g.backends[addr]
	if b == nil {
		// The ring and the pool can diverge for an instant (a remove racing
		// a readmit); never hand a nil backend to a caller that will deref it.
		return nil, fmt.Errorf("gateway: ring owner %s for %q left the pool; retry shortly", addr, name)
	}
	return b, nil
}

// tenantFor names the requesting tenant ("default" when the cooperative
// X-Tenant header is absent).
func tenantFor(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// writeJSON / writeError mirror the backend server's error body shape so a
// client cannot tell a gateway rejection from a backend one by format.
func (g *Gateway) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		g.opts.Logger.Printf("gateway: writing response: %v", err)
	}
}

func (g *Gateway) writeError(w http.ResponseWriter, status int, err error) {
	g.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeLimited answers a limiter rejection: 429 with Retry-After.
func (g *Gateway) writeLimited(w http.ResponseWriter, err error) {
	var lim *errLimited
	if errors.As(err, &lim) {
		w.Header().Set("Retry-After", strconv.Itoa(retrySeconds(lim.retryAfter)))
	} else {
		w.Header().Set("Retry-After", "1")
	}
	g.writeError(w, http.StatusTooManyRequests, err)
}

// writeUnavailable answers 503 with Retry-After — the backpressure shape
// for saturation and migration quiesce windows.
func (g *Gateway) writeUnavailable(w http.ResponseWriter, seconds int, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
	g.writeError(w, http.StatusServiceUnavailable, err)
}

// Handler returns the gateway's HTTP surface: the proxied /v1 API plus the
// /gateway admin endpoints. The legacy unversioned routes are deliberately
// absent — they alias a per-process default session, which has no
// pool-wide meaning.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", g.handleCreate)
	mux.HandleFunc("GET /v1/sessions", g.handleList)
	mux.HandleFunc("GET /v1/stats", g.handleStats)
	mux.HandleFunc("/v1/sessions/{name}", g.handleSession)
	mux.HandleFunc("/v1/sessions/{name}/{verb...}", g.handleSessionVerb)
	mux.HandleFunc("GET /gateway/backends", g.handleBackends)
	mux.HandleFunc("POST /gateway/backends", g.handleAddBackend)
	mux.HandleFunc("POST /gateway/backends/{addr}/drain", g.handleDrain)
	mux.HandleFunc("DELETE /gateway/backends/{addr}", g.handleRemoveBackend)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// createName peeks the session name (and whether this is a snapshot
// import) out of a create body.
type createName struct {
	Name        string `json:"name"`
	SnapshotB64 string `json:"snapshot_b64"`
}

// handleCreate buffers the create body (routing needs the name inside it),
// charges the tenant's session quota, and forwards to the ring owner.
func (g *Gateway) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.opts.MaxCreateBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			g.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("create: request body exceeds the %d-byte limit", tooBig.Limit))
			return
		}
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("create: reading body: %w", err))
		return
	}
	var req createName
	if err := json.Unmarshal(body, &req); err != nil {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("create: bad request body: %w", err))
		return
	}
	if req.Name == "" {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("create: the gateway requires a session name to route by"))
		return
	}
	tenant := tenantFor(r)

	// A name the gateway already routes must go to its recorded holder, not
	// the ring owner: after an ejection or before a rebalance the two can
	// differ, and creating on the ring owner would fork the session — 201
	// instead of 409, and the next sweep would retire the real copy as an
	// orphan. The holder answers 409 authoritatively; no quota is claimed
	// (a 201 here means the placement was stale and the session is adopted
	// like any backend-created one, outside tenant accounting).
	g.mu.RLock()
	placedAddr, placed := g.placements[req.Name]
	var b *backend
	if placed {
		b = g.backends[placedAddr]
	} else if addr, ok := g.ring.Owner(req.Name); ok {
		b = g.backends[addr]
	}
	g.mu.RUnlock()
	if placed {
		if b == nil {
			g.writeUnavailable(w, 1, fmt.Errorf(
				"session %q already exists on backend %s, which left the pool; retry shortly", req.Name, placedAddr))
			return
		}
		if !b.isHealthy() {
			g.writeUnavailable(w, g.probeRetrySeconds(b), fmt.Errorf(
				"session %q already exists on backend %s, which is unreachable; retry shortly", req.Name, placedAddr))
			return
		}
		g.proxyBuffered(w, r, b, body, false) //nolint:errcheck // holder's verdict (409) already written
		return
	}

	if err := g.limits.registerSession(tenant, req.Name); err != nil {
		if errors.Is(err, errSessionTaken) {
			// Registered but not yet placed: a concurrent create is mid-flight.
			g.writeError(w, http.StatusConflict, fmt.Errorf("session %q already exists", req.Name))
			return
		}
		g.writeLimited(w, err)
		return
	}
	if b == nil {
		g.limits.releaseSession(req.Name)
		g.writeUnavailable(w, 1, fmt.Errorf("gateway: no routable backends in the pool"))
		return
	}
	status, err := g.proxyBuffered(w, r, b, body, false)
	if err != nil || status != http.StatusCreated {
		g.limits.releaseSession(req.Name)
		return
	}
	g.mu.Lock()
	g.placements[req.Name] = b.addr
	g.statePlace(req.Name, b.addr, tenant)
	g.mu.Unlock()
}

// handleSession proxies GET (info) and DELETE on one session.
func (g *Gateway) handleSession(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	switch r.Method {
	case http.MethodGet, http.MethodDelete:
	default:
		g.writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if r.Method == http.MethodDelete {
		// DELETE is a write for migration purposes: it parks through a
		// quiesce window like any one-shot write, then registers as a
		// writer and re-checks — otherwise a delete racing moveSession can
		// land on the old holder after the export and the cutover silently
		// resurrects the session. Routing happens after the park: the whole
		// point of waiting is that the holder may change.
		if !g.claimWrite(w, r, name) {
			return
		}
		defer g.removeWriter(name)
	}
	b, err := g.route(name)
	if err != nil {
		g.writeUnavailable(w, 1, err)
		return
	}
	status, err := g.proxyBuffered(w, r, b, nil, r.Method == http.MethodGet)
	if r.Method == http.MethodDelete && err == nil && status == http.StatusOK {
		g.mu.Lock()
		delete(g.placements, name)
		g.stateUnplace(name)
		g.mu.Unlock()
		g.limits.releaseSession(name)
	}
}

// claimWrite parks the caller through any in-flight migration of name and
// registers it as a writer. It reports false with the 503 already written
// when the park queue overflows or outlives ParkTimeout. The
// register-then-recheck loop closes the race with a quiesce that begins
// between awaitWritable's answer and the registration.
func (g *Gateway) claimWrite(w http.ResponseWriter, r *http.Request, name string) bool {
	for {
		ra, err := g.awaitWritable(r.Context(), name)
		if err != nil {
			g.writeUnavailable(w, ra, err)
			return false
		}
		g.addWriter(name)
		if !g.quiesced(name) {
			return true
		}
		g.removeWriter(name)
	}
}

// verbClass classifies a session sub-verb for routing policy.
type verbClass struct {
	stream bool // NDJSON in or out: proxy full-duplex, flush per line
	write  bool // mutates the session: parked/journaled during migration
	// idempotent marks verbs safe to retry on transport failure: repeating
	// them cannot change state twice. whatif/query/export/stats only read;
	// create, add, compress and delete get exactly one attempt, because a
	// lost response leaves their effect in doubt.
	idempotent bool
	cost       int // scenarios charged up front (streams meter per line instead)
}

// classify maps the {verb...} path tail. Unknown verbs proxy as plain
// requests — the backend answers 404/405 authoritatively.
func classify(verb string) verbClass {
	switch verb {
	case "whatif", "query":
		return verbClass{cost: 1, idempotent: true}
	case "whatif/stream", "query/stream":
		return verbClass{stream: true, idempotent: true} // read-only, but streams never retry
	case "add":
		return verbClass{stream: true, write: true}
	case "compress":
		return verbClass{write: true}
	case "export", "stats":
		return verbClass{idempotent: true}
	default:
		return verbClass{}
	}
}

// quiesced reports whether a session's writes are paused for migration.
func (g *Gateway) quiesced(name string) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.moving[name]
	return ok
}

// handleSessionVerb proxies every per-session verb, applying tenant
// limits, migration quiesce, and per-backend admission control.
func (g *Gateway) handleSessionVerb(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	verb := r.PathValue("verb")
	class := classify(verb)
	tenant := tenantFor(r)

	if class.cost > 0 {
		if err := g.limits.allowScenarios(tenant, float64(class.cost)); err != nil {
			g.writeLimited(w, err)
			return
		}
	}
	if class.stream {
		release, err := g.limits.acquireStream(tenant)
		if err != nil {
			g.writeLimited(w, err)
			return
		}
		defer release()
		r.Body = g.limits.throttleBody(r.Context(), tenant, r.Body)
	}

	// The add-ingestion stream has its own line-aware proxy: it rides out
	// migrations by journaling and replaying instead of bouncing with 503.
	if verb == "add" && r.Method == http.MethodPost {
		g.serveAddStream(w, r, name)
		return
	}

	if class.write {
		// One-shot writes (compress, a mis-methoded add) park through a
		// migration rather than bounce.
		if !g.claimWrite(w, r, name) {
			return
		}
		defer g.removeWriter(name)
	}

	b, err := g.route(name)
	if err != nil {
		g.writeUnavailable(w, 1, err)
		return
	}
	if !b.isHealthy() {
		g.writeUnavailable(w, g.probeRetrySeconds(b),
			fmt.Errorf("backend %s holding session %q is unhealthy; retry shortly", b.addr, name))
		return
	}

	if class.stream {
		g.proxyStream(w, r, b, true)
		return
	}

	// One-shot verbs go fully buffered through the retrying round trip: a
	// retry must never fire after response bytes reached the client, and
	// buffering is what makes that invariant trivially true.
	var body []byte
	if r.Body != nil && r.Method != http.MethodGet {
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, g.opts.MaxCreateBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				g.writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("%s: request body exceeds the %d-byte limit", verb, tooBig.Limit))
				return
			}
			g.writeError(w, http.StatusBadRequest, fmt.Errorf("%s: reading body: %w", verb, err))
			return
		}
	}
	g.proxyBuffered(w, r, b, body, class.idempotent) //nolint:errcheck // response already written
}

// probeRetrySeconds derives an unhealthy backend's Retry-After from the
// prober's real schedule: the soonest the pool's view can change is that
// backend's next probe, so that is what the client is told to wait.
func (g *Gateway) probeRetrySeconds(b *backend) int {
	b.mu.Lock()
	next := b.nextAt
	b.mu.Unlock()
	if d := time.Until(next); d > 0 {
		return retrySeconds(d)
	}
	return 1
}

func (g *Gateway) addWriter(name string) {
	g.mu.Lock()
	g.writers[name]++
	g.mu.Unlock()
}

func (g *Gateway) removeWriter(name string) {
	g.mu.Lock()
	g.writers[name]--
	if g.writers[name] <= 0 {
		delete(g.writers, name)
	}
	g.mu.Unlock()
}

// handleList fans GET /v1/sessions out to every healthy backend and merges
// the name-sorted union.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	type listResp struct {
		Sessions []json.RawMessage `json:"sessions"`
	}
	var (
		mu       sync.Mutex
		sessions []json.RawMessage
		names    []string
	)
	g.eachHealthy(func(b *backend) {
		resp, err := g.client.Get(b.base + "/v1/sessions")
		if err != nil {
			g.opts.Logger.Printf("gateway: list %s: %v", b.addr, err)
			return
		}
		defer resp.Body.Close()
		var lr listResp
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			g.opts.Logger.Printf("gateway: list %s: %v", b.addr, err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		for _, raw := range lr.Sessions {
			var n struct {
				Name string `json:"name"`
			}
			json.Unmarshal(raw, &n) //nolint:errcheck // sort key only
			sessions = append(sessions, raw)
			names = append(names, n.Name)
		}
	})
	sort.Sort(&rawByName{names: names, raws: sessions})
	g.writeJSON(w, http.StatusOK, map[string]any{"sessions": sessions})
}

type rawByName struct {
	names []string
	raws  []json.RawMessage
}

func (s *rawByName) Len() int           { return len(s.names) }
func (s *rawByName) Less(i, j int) bool { return s.names[i] < s.names[j] }
func (s *rawByName) Swap(i, j int) {
	s.names[i], s.names[j] = s.names[j], s.names[i]
	s.raws[i], s.raws[j] = s.raws[j], s.raws[i]
}

// handleStats fans GET /v1/stats out to every healthy backend and answers
// the pool-wide merge (registry.AggregateStats.Merge — counters summed
// once per session, per-backend gauges kept per backend) plus each
// backend's own payload.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	var (
		mu       sync.Mutex
		pool     registry.AggregateStats
		per      = map[string]registry.AggregateStats{}
		failures = map[string]string{}
	)
	g.eachHealthy(func(b *backend) {
		resp, err := g.client.Get(b.base + "/v1/stats")
		if err != nil {
			mu.Lock()
			failures[b.addr] = err.Error()
			mu.Unlock()
			return
		}
		defer resp.Body.Close()
		var st registry.AggregateStats
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			mu.Lock()
			failures[b.addr] = err.Error()
			mu.Unlock()
			return
		}
		mu.Lock()
		per[b.addr] = st
		pool.Merge(st)
		mu.Unlock()
	})
	out := map[string]any{"pool": pool, "backends": per}
	if len(failures) > 0 {
		out["unreachable"] = failures
	}
	g.writeJSON(w, http.StatusOK, out)
}

// eachHealthy runs f concurrently over the healthy backends and waits.
func (g *Gateway) eachHealthy(f func(*backend)) {
	g.mu.RLock()
	var targets []*backend
	for _, b := range g.backends {
		if b.isHealthy() {
			targets = append(targets, b)
		}
	}
	g.mu.RUnlock()
	var wg sync.WaitGroup
	for _, b := range targets {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			f(b)
		}(b)
	}
	wg.Wait()
}

// backendInfo is one pool member's admin view.
type backendInfo struct {
	Addr     string `json:"addr"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Ring     bool   `json:"on_ring"`
	Sessions int    `json:"sessions"` // placements routed here
	Inflight int    `json:"inflight"`
	Breaker  string `json:"breaker"`       // closed / open / half-open
	Trips    int64  `json:"breaker_trips"` // total breaker trips
}

func (g *Gateway) handleBackends(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	held := map[string]int{}
	for _, addr := range g.placements {
		held[addr]++
	}
	infos := make([]backendInfo, 0, len(g.backends))
	for addr, b := range g.backends {
		state, trips := b.breaker.snapshot()
		b.mu.Lock()
		infos = append(infos, backendInfo{
			Addr:     addr,
			Healthy:  b.healthy,
			Draining: b.draining,
			Ring:     g.ring.Has(addr),
			Sessions: held[addr],
			Inflight: len(b.inflight),
			Breaker:  state,
			Trips:    trips,
		})
		b.mu.Unlock()
	}
	g.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Addr < infos[j].Addr })
	g.writeJSON(w, http.StatusOK, map[string]any{
		"backends":   infos,
		"migrations": g.migrations.Load(),
		"proxied":    g.proxied.Load(),
		"resilience": map[string]any{
			"retries":            g.retries.Load(),
			"parked_writes":      g.parkedWrites.Load(),
			"journaled_lines":    g.journaledLines.Load(),
			"replayed_lines":     g.replayedLines.Load(),
			"journal_stalls":     g.journalStalls.Load(),
			"journal_high_water": g.journalHighWater.Load(),
			"state_durable":      g.state.healthy(),
		},
	})
}

// handleAddBackend grows the pool: add to the ring, then rebalance so the
// sessions that now hash to the newcomer migrate in. The request returns
// when the rebalance sweep is done.
func (g *Gateway) handleAddBackend(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		g.writeError(w, http.StatusBadRequest, fmt.Errorf("add backend: %w", err))
		return
	}
	g.mu.Lock()
	err := g.addBackendLocked(req.Addr)
	g.mu.Unlock()
	if err != nil {
		g.writeError(w, http.StatusConflict, err)
		return
	}
	moved, err := g.Rebalance(r.Context())
	if err != nil {
		g.writeJSON(w, http.StatusOK, map[string]any{
			"added": req.Addr, "migrated": moved, "rebalance_error": err.Error(),
		})
		return
	}
	g.writeJSON(w, http.StatusOK, map[string]any{"added": req.Addr, "migrated": moved})
}

// handleDrain takes a backend off the ring and live-migrates every session
// it holds to the remaining owners; the backend stays in the pool (still
// probed, still answering reads for anything not yet moved) but receives
// no new sessions. The request returns when its sessions are gone.
func (g *Gateway) handleDrain(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	b := g.lookup(addr)
	if b == nil {
		g.writeError(w, http.StatusNotFound, fmt.Errorf("backend %s is not in the pool", addr))
		return
	}
	// Validate before mutating: a rejected drain must leave the backend on
	// the ring and not draining, or the pool is stuck with no recovery
	// endpoint (health readmit deliberately skips draining backends).
	g.mu.Lock()
	left := g.ring.Len()
	if g.ring.Has(addr) {
		left--
	}
	if left == 0 {
		g.mu.Unlock()
		g.writeError(w, http.StatusConflict, fmt.Errorf("draining %s would leave the ring empty", addr))
		return
	}
	b.mu.Lock()
	b.draining = true
	b.mu.Unlock()
	g.ring.Remove(addr)
	g.mu.Unlock()
	// The sweep migrates every session it can and reports the ones it
	// could not per session, instead of aborting at the first failure: a
	// drain with one wedged session still moves the other N-1.
	moved, failures, err := g.rebalanceDetail(r.Context())
	if err != nil {
		g.writeUnavailable(w, 2, fmt.Errorf("drain %s: %w (migrated %d; retry to finish)", addr, err, moved))
		return
	}
	if len(failures) > 0 {
		w.Header().Set("Retry-After", "2")
		g.writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"draining": addr, "migrated": moved, "errors": failures,
		})
		return
	}
	g.writeJSON(w, http.StatusOK, map[string]any{"draining": addr, "migrated": moved})
}

// handleRemoveBackend drops a backend from the pool entirely. Sessions
// still placed on it (a dead backend's, say) lose their routing override;
// they become unreachable until recreated or the backend rejoins.
func (g *Gateway) handleRemoveBackend(w http.ResponseWriter, r *http.Request) {
	addr := r.PathValue("addr")
	g.mu.Lock()
	b, ok := g.backends[addr]
	if ok {
		delete(g.backends, addr)
		g.ring.Remove(addr)
		for name, holder := range g.placements {
			if holder == addr {
				delete(g.placements, name)
				g.stateUnplace(name)
			}
		}
	}
	g.mu.Unlock()
	if !ok {
		g.writeError(w, http.StatusNotFound, fmt.Errorf("backend %s is not in the pool", addr))
		return
	}
	_ = b
	g.writeJSON(w, http.StatusOK, map[string]string{"removed": addr})
}

// placementsSnapshot returns a copy of the routing table (tests).
func (g *Gateway) placementsSnapshot() map[string]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]string, len(g.placements))
	for k, v := range g.placements {
		out[k] = v
	}
	return out
}
