package gateway

import (
	"fmt"
	"testing"
)

func TestRingEmpty(t *testing.T) {
	r := NewRing(8)
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestRingSingleMemberOwnsEverything(t *testing.T) {
	r := NewRing(8)
	r.Add("a")
	for i := 0; i < 100; i++ {
		owner, ok := r.Owner(fmt.Sprintf("session-%d", i))
		if !ok || owner != "a" {
			t.Fatalf("Owner(session-%d) = %q, %v; want a", i, owner, ok)
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(64)
		r.Add("b1:8080")
		r.Add("b2:8080")
		r.Add("b3:8080")
		return r
	}
	r1, r2 := build(), build()
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("s%d", i)
		o1, _ := r1.Owner(key)
		o2, _ := r2.Owner(key)
		if o1 != o2 {
			t.Fatalf("Owner(%q) differs across identically built rings: %q vs %q", key, o1, o2)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r := NewRing(64)
	members := []string{"b1:8080", "b2:8080", "b3:8080", "b4:8080"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		owner, _ := r.Owner(fmt.Sprintf("session-%d", i))
		counts[owner]++
	}
	for _, m := range members {
		// With 64 vnodes the spread is not perfect, but every member must
		// carry a real share — a quarter of the fair share is far below any
		// healthy distribution and far above a broken one (zero).
		if counts[m] < n/len(members)/4 {
			t.Errorf("member %s owns only %d of %d keys — distribution collapsed: %v", m, counts[m], n, counts)
		}
	}
}

func TestRingRemovalRemapsOnlyTheRemovedShare(t *testing.T) {
	r := NewRing(64)
	for _, m := range []string{"b1:8080", "b2:8080", "b3:8080", "b4:8080"} {
		r.Add(m)
	}
	const n = 4000
	before := make([]string, n)
	for i := range before {
		before[i], _ = r.Owner(fmt.Sprintf("session-%d", i))
	}
	r.Remove("b2:8080")
	movedFromOthers := 0
	for i := range before {
		after, _ := r.Owner(fmt.Sprintf("session-%d", i))
		if before[i] == "b2:8080" {
			if after == "b2:8080" {
				t.Fatalf("session-%d still owned by the removed member", i)
			}
			continue
		}
		if after != before[i] {
			movedFromOthers++
		}
	}
	// Consistent hashing's whole point: removing one member must not remap
	// keys the other members owned.
	if movedFromOthers != 0 {
		t.Errorf("%d keys moved between surviving members on removal, want 0", movedFromOthers)
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(16)
	if !r.Add("a") || r.Add("a") {
		t.Fatal("Add should report true once, false on repeat")
	}
	if !r.Remove("a") || r.Remove("a") {
		t.Fatal("Remove should report true once, false on repeat")
	}
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatalf("ring not empty after removal: %d members, %d points", r.Len(), len(r.points))
	}
}
