package gateway

import (
	"errors"
	"testing"
	"time"
)

func TestTokenBucketAllow(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(10, 5, now) // 10/s, burst 5

	// The burst drains without waiting.
	for i := 0; i < 5; i++ {
		if ok, _ := b.allow(1, now); !ok {
			t.Fatalf("allow #%d refused inside the burst", i)
		}
	}
	ok, wait := b.allow(1, now)
	if ok {
		t.Fatal("allow granted past the burst with no time elapsed")
	}
	if wait <= 0 || wait > 200*time.Millisecond {
		t.Fatalf("Retry-After wait = %v, want ~100ms at 10/s", wait)
	}

	// Refill: 0.5s later 5 tokens are back.
	now = now.Add(500 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if ok, _ := b.allow(1, now); !ok {
			t.Fatalf("allow #%d refused after refill", i)
		}
	}
	if ok, _ := b.allow(1, now); ok {
		t.Fatal("allow granted past the refill")
	}
}

func TestTokenBucketTakeDebt(t *testing.T) {
	now := time.Unix(0, 0)
	b := newTokenBucket(100, 10, now)
	if wait := b.take(10, now); wait != 0 {
		t.Fatalf("burst take should not wait, got %v", wait)
	}
	// 50 tokens over at 100/s → 500ms of stall.
	wait := b.take(50, now)
	if wait < 450*time.Millisecond || wait > 550*time.Millisecond {
		t.Fatalf("debt stall = %v, want ~500ms", wait)
	}
}

func TestLimiterSessions(t *testing.T) {
	l := newLimiter(TenantLimits{MaxSessions: 2})
	if err := l.registerSession("t1", "a"); err != nil {
		t.Fatal(err)
	}
	if err := l.registerSession("t1", "b"); err != nil {
		t.Fatal(err)
	}
	err := l.registerSession("t1", "c")
	if err == nil {
		t.Fatal("third session admitted past MaxSessions=2")
	}
	var lim *errLimited
	if !errors.As(err, &lim) {
		t.Fatalf("limit rejection has type %T, want *errLimited", err)
	}
	// Re-registering a held name is a conflict, not a fresh claim: the
	// caller must not get a slot it would later release out from under the
	// live session.
	if err := l.registerSession("t1", "a"); !errors.Is(err, errSessionTaken) {
		t.Fatalf("re-register of held name: got %v, want errSessionTaken", err)
	}
	// A second tenant claiming the same name is also a conflict and must
	// not clobber the first tenant's ownership.
	if err := l.registerSession("t2", "a"); !errors.Is(err, errSessionTaken) {
		t.Fatalf("cross-tenant register of held name: got %v, want errSessionTaken", err)
	}
	// Another tenant has its own budget.
	if err := l.registerSession("t2", "c"); err != nil {
		t.Fatalf("second tenant blocked by first tenant's cap: %v", err)
	}
	// Releasing frees the slot for the real owner.
	l.releaseSession("a")
	if err := l.registerSession("t1", "c2"); err != nil {
		t.Fatalf("register after release: %v", err)
	}
}

func TestLimiterStreams(t *testing.T) {
	l := newLimiter(TenantLimits{MaxStreams: 1})
	rel, err := l.acquireStream("t1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.acquireStream("t1"); err == nil {
		t.Fatal("second concurrent stream admitted past MaxStreams=1")
	}
	if _, err := l.acquireStream("t2"); err != nil {
		t.Fatalf("second tenant blocked by first tenant's streams: %v", err)
	}
	rel()
	rel() // double release must not underflow
	rel2, err := l.acquireStream("t1")
	if err != nil {
		t.Fatalf("stream after release: %v", err)
	}
	rel2()
}

func TestRetrySeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{10 * time.Millisecond, 1},
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{5 * time.Second, 5},
	} {
		if got := retrySeconds(tc.d); got != tc.want {
			t.Errorf("retrySeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
