package gateway

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"provabs/internal/registry"
	"provabs/internal/server"
)

// newSlowExportBackend is a pool backend whose /export grows a switchable
// delay — it widens a live migration's quiesce window deterministically so
// the test can prove lines journal and replay rather than hoping the race
// falls its way.
func newSlowExportBackend(t *testing.T, exportDelay *atomic.Int64) *poolBackend {
	t.Helper()
	reg := registry.New()
	inner := server.New(reg).Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := exportDelay.Load(); d > 0 && strings.HasSuffix(r.URL.Path, "/export") {
			time.Sleep(time.Duration(d))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return &poolBackend{ts: ts, reg: reg}
}

// TestGatewayMigrateUnderWriteLoad is the tentpole acceptance test: a
// session live-migrates (drain) while a client streams adds through the
// gateway nonstop. The client must see zero errors and zero 503s — every
// line acked, in order, exactly once — with the quiesce-window lines
// demonstrably journaled and replayed onto the new holder, and the
// post-migration answers bit-identical to the pre-migration ones.
func TestGatewayMigrateUnderWriteLoad(t *testing.T) {
	var exportDelay atomic.Int64
	b1 := newSlowExportBackend(t, &exportDelay)
	b2 := newSlowExportBackend(t, &exportDelay)
	g, gts := newTestGateway(t, Options{
		QuiesceTimeout: 5 * time.Second,
		JournalLines:   4096,
	}, b1, b2)

	const name = "hot"
	if resp := createSession(t, gts.URL, name, ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	holderAddr := g.placementsSnapshot()[name]
	holder, survivor := b1, b2
	if holderAddr == b2.addr() {
		holder, survivor = b2, b1
	}

	// The add stream: a pipe-fed POST with an ack reader. The feeder keeps
	// lines flowing across the whole migration window.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, gts.URL+"/v1/sessions/"+name+"/add", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	var (
		sent    atomic.Int64
		acked   atomic.Int64
		ackErr  = make(chan error, 1)
		ackDone = make(chan struct{})
	)
	sendLine := func(i int) {
		line := fmt.Sprintf(`{"tag":"add-%d","poly":"%d*p1*m1 + %d*f1*m3"}`+"\n", i, i+2, 2*i+3)
		if _, err := io.WriteString(pw, line); err != nil {
			t.Errorf("feeding line %d: %v", i, err)
			return
		}
		sent.Add(1)
	}

	// The first line must be in flight before Do: response headers flush
	// with the first ack, and Do blocks until they do.
	go sendLine(0)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("add stream: status %d: %s", resp.StatusCode, body)
	}
	go func() {
		defer close(ackDone)
		scan := bufio.NewScanner(resp.Body)
		next := 0
		for scan.Scan() {
			var ack struct {
				Index *int   `json:"index"`
				Error string `json:"error,omitempty"`
			}
			if err := json.Unmarshal(scan.Bytes(), &ack); err != nil {
				ackErr <- fmt.Errorf("bad ack line %q: %v", scan.Text(), err)
				return
			}
			if ack.Index == nil || ack.Error != "" {
				ackErr <- fmt.Errorf("stream error at ack %d: %q", next, scan.Text())
				return
			}
			if *ack.Index != next {
				ackErr <- fmt.Errorf("ack order broke: got %d, want %d", *ack.Index, next)
				return
			}
			next++
			acked.Store(int64(next))
		}
		if err := scan.Err(); err != nil {
			ackErr <- err
		}
	}()

	waitAcked := func(n int64) {
		deadline := time.Now().Add(10 * time.Second)
		for acked.Load() < n {
			select {
			case err := <-ackErr:
				t.Fatalf("add stream failed with %d/%d acked: %v", acked.Load(), n, err)
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("acks stalled at %d/%d", acked.Load(), n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Warm up: 20 lines streamed and acked by the original holder (line 0
	// is already in flight from the pre-Do goroutine).
	waitAcked(1)
	for i := 1; i < 20; i++ {
		sendLine(i)
	}
	waitAcked(20)
	assign := map[string]float64{"p1": 0.5, "m1": 1, "m3": 1, "f1": 1}
	preMigration := whatifValues(t, gts.URL, name, assign)

	// Drain the holder while the feeder keeps writing and a reader keeps
	// asking what-ifs. Export takes 300ms now, so lines sent during the
	// drain demonstrably land in the journal.
	exportDelay.Store(int64(300 * time.Millisecond))
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	go func() {
		defer close(feederDone)
		i := 20
		for {
			select {
			case <-feederStop:
				return
			default:
			}
			sendLine(i)
			i++
			time.Sleep(2 * time.Millisecond)
		}
	}()
	var read503 atomic.Int64
	readerStop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		body := []byte(`{"assign":{"p1":0.5,"m1":1,"m3":1,"f1":1}}`)
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			resp, err := http.Post(gts.URL+"/v1/sessions/"+name+"/whatif", "application/json", strings.NewReader(string(body)))
			if err == nil {
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode == http.StatusServiceUnavailable {
					read503.Add(1)
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	drainReq, err := http.NewRequest(http.MethodPost, gts.URL+"/gateway/backends/"+holderAddr+"/drain", nil)
	if err != nil {
		t.Fatal(err)
	}
	drainResp, err := http.DefaultClient.Do(drainReq)
	if err != nil {
		t.Fatal(err)
	}
	drainBody, _ := io.ReadAll(drainResp.Body)
	drainResp.Body.Close()
	if drainResp.StatusCode != http.StatusOK {
		t.Fatalf("drain under write load: status %d: %s — the zero-503 contract broke", drainResp.StatusCode, drainBody)
	}
	exportDelay.Store(0)

	// A little post-migration traffic on the same stream, then close it.
	time.Sleep(20 * time.Millisecond)
	close(feederStop)
	<-feederDone
	close(readerStop)
	<-readerDone
	pw.Close()
	<-ackDone
	select {
	case err := <-ackErr:
		t.Fatalf("add stream failed: %v", err)
	default:
	}

	total := sent.Load()
	if got := acked.Load(); got != total {
		t.Fatalf("acked %d of %d sent lines — acks were lost across the migration", got, total)
	}
	if n := read503.Load(); n != 0 {
		t.Fatalf("reads saw %d 503s during the migration; reads must never be interrupted", n)
	}

	// The migration demonstrably used the journal: lines were buffered
	// while detached and replayed onto the new holder, within bounds.
	if j := g.journaledLines.Load(); j == 0 {
		t.Fatal("no lines journaled — the migration window never overlapped the stream")
	}
	if j, r := g.journaledLines.Load(), g.replayedLines.Load(); r != j {
		t.Fatalf("journaled %d lines but replayed %d", j, r)
	}
	if hw := g.journalHighWater.Load(); hw > int64(g.opts.JournalLines) {
		t.Fatalf("journal high water %d exceeds the %d-line bound", hw, g.opts.JournalLines)
	}

	// The session fully moved with every acked add intact.
	if holder.reg.Len() != 0 {
		t.Fatalf("drained holder still has %d sessions", holder.reg.Len())
	}
	st := sessionStats(t, survivor.ts.URL, name)
	if p, _ := st["polynomials"].(float64); int64(p) != 1+total {
		t.Fatalf("survivor has %v polynomials, want %d — acked adds were lost", st["polynomials"], 1+total)
	}
	if c, _ := st["compiles"].(float64); c != 1 {
		t.Fatalf("survivor compiles = %v, want 1 (import must not recompile)", st["compiles"])
	}

	// Answers on the shared prefix stay bit-identical across the move: the
	// first 20 adds' coefficients are baked into both answers, so drift
	// would mean the migration changed history. (Later adds only ADD tags;
	// the original tag's value is untouched by them.)
	postMigration := whatifValues(t, gts.URL, name, assign)
	if len(postMigration) < len(preMigration) {
		t.Fatalf("answer shape shrank: %d -> %d values", len(preMigration), len(postMigration))
	}
	for i := range preMigration {
		if math.Float64bits(postMigration[i]) != math.Float64bits(preMigration[i]) {
			t.Fatalf("answer %d drifted across migration: %v -> %v", i, preMigration[i], postMigration[i])
		}
	}
}
