package gateway

import (
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestBreakerLifecycle walks the closed → open → half-open state machine:
// failures below the threshold keep it closed, the threshold trips it, the
// open window fails fast with the remaining cooldown, one half-open trial
// is admitted at a time, a failed trial doubles the window (capped), and a
// successful one closes the breaker.
func TestBreakerLifecycle(t *testing.T) {
	start := time.Now()
	br := newBreaker(3, 100*time.Millisecond, 250*time.Millisecond)

	if ok, _ := br.allow(start); !ok {
		t.Fatal("fresh breaker must be closed")
	}
	if br.onFailure(start) || br.onFailure(start) {
		t.Fatal("breaker tripped below its threshold")
	}
	if !br.onFailure(start) {
		t.Fatal("third consecutive failure must trip a threshold-3 breaker")
	}
	if state, trips := br.snapshot(); state != "open" || trips != 1 {
		t.Fatalf("after trip: state %q trips %d, want open/1", state, trips)
	}

	// Open: fail fast, Retry-After = remaining cooldown.
	if ok, wait := br.allow(start.Add(40 * time.Millisecond)); ok || wait != 60*time.Millisecond {
		t.Fatalf("open breaker: allow = %v wait %v, want false/60ms", ok, wait)
	}

	// Cooldown over: exactly one trial is admitted; a second concurrent
	// caller is refused until the trial resolves.
	trialAt := start.Add(110 * time.Millisecond)
	if ok, _ := br.allow(trialAt); !ok {
		t.Fatal("cooldown elapsed: the half-open trial must be admitted")
	}
	if state, _ := br.snapshot(); state != "half-open" {
		t.Fatalf("state %q, want half-open", state)
	}
	if ok, _ := br.allow(trialAt); ok {
		t.Fatal("second caller admitted while a trial is in flight")
	}

	// Trial fails: re-open with a doubled window.
	if !br.onFailure(trialAt) {
		t.Fatal("failed trial must re-trip the breaker")
	}
	if ok, wait := br.allow(trialAt.Add(150 * time.Millisecond)); ok || wait != 50*time.Millisecond {
		t.Fatalf("re-opened breaker: allow = %v wait %v, want false/50ms (doubled window)", ok, wait)
	}

	// Another failed trial: the doubling caps at maxCooldown (400 > 250).
	secondTrial := trialAt.Add(210 * time.Millisecond)
	if ok, _ := br.allow(secondTrial); !ok {
		t.Fatal("second trial must be admitted after the doubled window")
	}
	br.onFailure(secondTrial)
	if ok, wait := br.allow(secondTrial); ok || wait != 250*time.Millisecond {
		t.Fatalf("capped window: allow = %v wait %v, want false/250ms", ok, wait)
	}

	// A successful trial closes the breaker outright.
	thirdTrial := secondTrial.Add(260 * time.Millisecond)
	if ok, _ := br.allow(thirdTrial); !ok {
		t.Fatal("third trial must be admitted")
	}
	br.onSuccess()
	if state, trips := br.snapshot(); state != "closed" || trips != 3 {
		t.Fatalf("after successful trial: state %q trips %d, want closed/3", state, trips)
	}
	if ok, _ := br.allow(thirdTrial); !ok {
		t.Fatal("closed breaker must admit requests")
	}
}

// flakyBackend is a raw HTTP server whose data endpoints kill the
// connection (hijack + close: a transport failure, not an HTTP error) for
// the first failRemaining matching requests, then answer 200. /healthz
// always answers 200 so hand-driven probes can reset the breaker.
type flakyBackend struct {
	ts *httptest.Server

	mu            sync.Mutex
	failRemaining int
	seen          int // data requests observed (healthz excluded)
}

func newFlakyBackend(t *testing.T, failFirst int) *flakyBackend {
	t.Helper()
	fb := &flakyBackend{failRemaining: failFirst}
	fb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		fb.mu.Lock()
		fb.seen++
		kill := fb.failRemaining > 0
		if kill {
			fb.failRemaining--
		}
		fb.mu.Unlock()
		if kill {
			conn, _, err := w.(http.Hijacker).Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"ok": true}) //nolint:errcheck
	}))
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *flakyBackend) requests() int {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.seen
}

func newFlakyGateway(t *testing.T, fb *flakyBackend, opts Options) (*Gateway, *httptest.Server) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	addr := fb.ts.Listener.Addr().String()
	g, err := New([]string{addr}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// TestGatewayRetryIdempotent proves an idempotent verb rides out transient
// transport failures invisibly: a backend that kills the first two
// connections still answers the client 200, with the retries counted.
func TestGatewayRetryIdempotent(t *testing.T) {
	fb := newFlakyBackend(t, 2)
	g, gts := newFlakyGateway(t, fb, Options{
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		},
		BreakerThreshold: 10, // keep the breaker out of this test's way
	})

	resp, err := http.Get(gts.URL + "/v1/sessions/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("idempotent call through retries: status %d: %s", resp.StatusCode, body)
	}
	if got := fb.requests(); got != 3 {
		t.Fatalf("backend saw %d attempts, want 3 (2 failures + 1 success)", got)
	}
	if got := g.retries.Load(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}

// TestGatewayNonIdempotentSingleAttempt proves a write verb never retries:
// one transport failure is one 502, and the backend sees exactly one
// attempt — a lost response must stay lost, not double-apply.
func TestGatewayNonIdempotentSingleAttempt(t *testing.T) {
	fb := newFlakyBackend(t, 1)
	g, gts := newFlakyGateway(t, fb, Options{
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		},
		BreakerThreshold: 10,
	})

	resp, err := http.Post(gts.URL+"/v1/sessions/x/compress", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("non-idempotent transport failure: status %d, want 502", resp.StatusCode)
	}
	if got := fb.requests(); got != 1 {
		t.Fatalf("backend saw %d attempts, want exactly 1", got)
	}
	if got := g.retries.Load(); got != 0 {
		t.Fatalf("retries counter = %d, want 0", got)
	}
}

// TestGatewayBreakerFailFastAndProbeReset drives the breaker through the
// proxy path: enough transport failures open it, the next request fails
// fast (503 + Retry-After, no backend round trip), and a successful hand-
// driven health probe resets it so traffic flows again.
func TestGatewayBreakerFailFastAndProbeReset(t *testing.T) {
	fb := newFlakyBackend(t, 100) // failing until told otherwise
	g, gts := newFlakyGateway(t, fb, Options{
		Retry:            RetryPolicy{MaxAttempts: 1},
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute, // only a probe can close it in this test
		FailThreshold:    100,         // keep health ejection out of the way
	})

	for i := 0; i < 2; i++ {
		resp, err := http.Get(gts.URL + "/v1/sessions/x/stats")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("failure %d: status %d, want 502", i, resp.StatusCode)
		}
	}
	b := g.lookup(fb.ts.Listener.Addr().String())
	if state, trips := b.breaker.snapshot(); state != "open" || trips != 1 {
		t.Fatalf("breaker %q trips %d after threshold failures, want open/1", state, trips)
	}

	// Fail fast: 503 with Retry-After and no third backend attempt.
	before := fb.requests()
	resp, err := http.Get(gts.URL + "/v1/sessions/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("open breaker's 503 must carry Retry-After")
	}
	if got := fb.requests(); got != before {
		t.Fatalf("open breaker still reached the backend (%d -> %d attempts)", before, got)
	}

	// The backend recovers; a successful probe must reset the breaker long
	// before the one-minute cooldown would.
	fb.mu.Lock()
	fb.failRemaining = 0
	fb.mu.Unlock()
	g.probeOne(b)
	if state, _ := b.breaker.snapshot(); state != "closed" {
		t.Fatalf("breaker %q after successful probe, want closed", state)
	}
	resp, err = http.Get(gts.URL + "/v1/sessions/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after probe reset: status %d, want 200", resp.StatusCode)
	}
}

// TestGatewayRetryBudgetExhaustion proves the retry budget caps
// amplification: a burst-2 budget with a negligible refill funds exactly
// two retries across calls, after which a failing call gets one attempt
// and no more — a brown-out is not multiplied.
func TestGatewayRetryBudgetExhaustion(t *testing.T) {
	fb := newFlakyBackend(t, 1000)
	g, gts := newFlakyGateway(t, fb, Options{
		Retry: RetryPolicy{
			MaxAttempts:       4,
			BackoffBase:       time.Millisecond,
			BackoffMax:        2 * time.Millisecond,
			RetryBudgetPerSec: 0.001, // effectively no refill within the test
			RetryBudgetBurst:  2,
		},
		BreakerThreshold: 1000,
		FailThreshold:    1000,
	})

	// First call: 3 retries wanted, budget holds 2 — so 3 attempts total.
	resp, err := http.Get(gts.URL + "/v1/sessions/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if got := fb.requests(); got != 3 {
		t.Fatalf("backend saw %d attempts, want 3 (budget of 2 retries + first try)", got)
	}

	// Budget dry: the next call gets exactly one attempt.
	before := fb.requests()
	resp, err = http.Get(gts.URL + "/v1/sessions/x/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := fb.requests() - before; got != 1 {
		t.Fatalf("dry budget: backend saw %d attempts, want 1", got)
	}
	if got := g.retries.Load(); got != 2 {
		t.Fatalf("retries counter = %d, want 2", got)
	}
}
