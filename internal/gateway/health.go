package gateway

// Health checking: a single loop probes every backend's /healthz. A
// healthy backend is probed every ProbeInterval; FailThreshold consecutive
// failures eject it — off the ring, no new sessions, session-scoped
// requests answered 503 + Retry-After until it returns. An ejected
// backend keeps being probed on an exponential backoff (ProbeInterval
// doubling up to ReadmitBackoffMax); the first success readmits it, puts
// it back on the ring (unless it is draining) and triggers a rebalance so
// the sessions that hash to it migrate back in.

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// probeLoop drives the pool's health until Stop.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-ticker.C:
			if g.probeAll() {
				// Membership changed (a readmit): move sessions onto the
				// returning owner in the background; a failed sweep retries
				// at the next change (or drain request).
				g.wg.Add(1)
				go func() {
					defer g.wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
					defer cancel()
					if _, err := g.Rebalance(ctx); err != nil {
						g.opts.Logger.Printf("gateway: rebalance after readmit: %v", err)
					}
				}()
			}
		}
	}
}

// probeAll probes every due backend once; reports whether any backend was
// readmitted to the ring.
func (g *Gateway) probeAll() (ringChanged bool) {
	g.mu.RLock()
	targets := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		targets = append(targets, b)
	}
	g.mu.RUnlock()
	now := time.Now()
	for _, b := range targets {
		b.mu.Lock()
		due := b.healthy || !now.Before(b.nextAt)
		b.mu.Unlock()
		if !due {
			continue
		}
		if g.probeOne(b) {
			ringChanged = true
		}
	}
	return ringChanged
}

// probeOne probes b and applies the eject/readmit state machine; reports
// whether b was readmitted to the ring. The ring mutation happens after
// b.mu is released — handleBackends takes g.mu before b.mu, so holding
// them in the opposite order here would be a lock-order inversion.
func (g *Gateway) probeOne(b *backend) (readmitted bool) {
	err := g.probeHealthz(b)
	eject, readmit := false, false
	b.mu.Lock()
	if err != nil {
		b.failures++
		if b.healthy && b.failures >= g.opts.FailThreshold {
			b.healthy = false
			b.backoff = g.opts.ProbeInterval
			b.nextAt = time.Now().Add(b.backoff)
			eject = true
			g.opts.Logger.Printf("gateway: backend %s ejected after %d failed probes: %v", b.addr, b.failures, err)
		} else if !b.healthy {
			b.backoff *= 2
			if b.backoff > g.opts.ReadmitBackoffMax {
				b.backoff = g.opts.ReadmitBackoffMax
			}
			b.nextAt = time.Now().Add(b.backoff)
		}
	} else {
		b.failures = 0
		if !b.healthy {
			b.healthy = true
			b.backoff = 0
			// A drained backend returning healthy stays off the ring on
			// purpose.
			readmit = !b.draining
			g.opts.Logger.Printf("gateway: backend %s readmitted", b.addr)
		}
	}
	b.mu.Unlock()
	if eject {
		g.mu.Lock()
		g.ring.Remove(b.addr)
		g.mu.Unlock()
	}
	if readmit {
		g.mu.Lock()
		// A concurrent pool removal can race this readmit; re-adding the
		// ring member then would leave an owner with no backends entry.
		changed := false
		if _, stillPooled := g.backends[b.addr]; stillPooled {
			changed = g.ring.Add(b.addr)
		}
		g.mu.Unlock()
		return changed
	}
	return false
}

// probeHealthz performs one bounded GET /healthz.
func (g *Gateway) probeHealthz(b *backend) error {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := g.probe.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// suspect records a proxy-observed backend failure. It does not eject by
// itself — transient single-request errors happen — but it zeroes the
// probe grace so the next loop tick re-examines the backend immediately.
func (g *Gateway) suspect(b *backend) {
	b.mu.Lock()
	b.nextAt = time.Time{}
	b.mu.Unlock()
}
