package gateway

// Health checking: a single loop probes every backend's /healthz. A
// healthy backend is probed every ProbeInterval; FailThreshold consecutive
// failures eject it — off the ring, no new sessions, session-scoped
// requests answered 503 + Retry-After until it returns. An ejected
// backend keeps being probed on an exponential backoff (ProbeInterval
// doubling up to ReadmitBackoffMax); the first success readmits it, puts
// it back on the ring (unless it is draining) and triggers a rebalance so
// the sessions that hash to it migrate back in.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/http"
	"time"
)

// staggerProbes assigns every backend a random first probe time within
// the probe interval, so a pool of N backends is examined N times per
// interval spread out rather than in one synchronized burst. Only Start
// calls this: tests that drive probeAll by hand keep the zero nextAt,
// which means "due now".
func (g *Gateway) staggerProbes() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	now := time.Now()
	for _, b := range g.backends {
		b.mu.Lock()
		b.nextAt = now.Add(rand.N(g.opts.ProbeInterval))
		b.mu.Unlock()
	}
}

// probeJitter spreads the next probe across ±15% of the interval, so
// backends that happened to align (restarts, a suspect() burst zeroing
// several grace timers at once) drift apart again instead of staying in
// phase forever.
func probeJitter(interval time.Duration) time.Duration {
	return time.Duration(float64(interval) * (0.85 + 0.3*rand.Float64()))
}

// probeLoop drives the pool's health until Stop. The ticker runs at a
// fraction of ProbeInterval and each backend carries its own jittered
// next-due time; the loop only probes what is due.
func (g *Gateway) probeLoop() {
	defer g.wg.Done()
	tick := g.opts.ProbeInterval / 8
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-g.stopCh:
			return
		case <-ticker.C:
			if g.probeAll() {
				// Membership changed (a readmit): move sessions onto the
				// returning owner in the background; a failed sweep retries
				// at the next change (or drain request).
				g.wg.Add(1)
				go func() {
					defer g.wg.Done()
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
					defer cancel()
					if _, err := g.Rebalance(ctx); err != nil {
						g.opts.Logger.Printf("gateway: rebalance after readmit: %v", err)
					}
				}()
			}
		}
	}
}

// probeAll probes every due backend once; reports whether any backend was
// readmitted to the ring. A backend is due when its jittered next-probe
// time has passed (the zero time — a fresh pool, a suspect() report, a
// test-driven gateway — is always due).
func (g *Gateway) probeAll() (ringChanged bool) {
	g.mu.RLock()
	targets := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		targets = append(targets, b)
	}
	g.mu.RUnlock()
	now := time.Now()
	for _, b := range targets {
		b.mu.Lock()
		due := !now.Before(b.nextAt)
		b.mu.Unlock()
		if !due {
			continue
		}
		if g.probeOne(b) {
			ringChanged = true
		}
	}
	return ringChanged
}

// probeOne probes b and applies the eject/readmit state machine; reports
// whether b was readmitted to the ring. The ring mutation happens after
// b.mu is released — handleBackends takes g.mu before b.mu, so holding
// them in the opposite order here would be a lock-order inversion.
func (g *Gateway) probeOne(b *backend) (readmitted bool) {
	err := g.probeHealthz(b)
	eject, readmit := false, false
	b.mu.Lock()
	if err != nil {
		b.failures++
		if b.healthy && b.failures >= g.opts.FailThreshold {
			b.healthy = false
			b.backoff = g.opts.ProbeInterval
			b.nextAt = time.Now().Add(b.backoff)
			eject = true
			g.opts.Logger.Printf("gateway: backend %s ejected after %d failed probes: %v", b.addr, b.failures, err)
		} else if !b.healthy {
			b.backoff *= 2
			if b.backoff > g.opts.ReadmitBackoffMax {
				b.backoff = g.opts.ReadmitBackoffMax
			}
			b.nextAt = time.Now().Add(b.backoff)
		} else {
			// Still under the threshold: keep probing at the normal jittered
			// cadence while the count climbs.
			b.nextAt = time.Now().Add(probeJitter(g.opts.ProbeInterval))
		}
	} else {
		b.failures = 0
		b.nextAt = time.Now().Add(probeJitter(g.opts.ProbeInterval))
		if !b.healthy {
			b.healthy = true
			b.backoff = 0
			// A drained backend returning healthy stays off the ring on
			// purpose.
			readmit = !b.draining
			g.opts.Logger.Printf("gateway: backend %s readmitted", b.addr)
		}
	}
	b.mu.Unlock()
	if err == nil {
		// Probe-observed recovery reopens the request path immediately; the
		// breaker's own half-open trial would get there too, just later.
		b.breaker.reset()
	}
	if eject {
		g.mu.Lock()
		g.ring.Remove(b.addr)
		g.mu.Unlock()
	}
	if readmit {
		g.mu.Lock()
		// A concurrent pool removal can race this readmit; re-adding the
		// ring member then would leave an owner with no backends entry.
		changed := false
		if _, stillPooled := g.backends[b.addr]; stillPooled {
			changed = g.ring.Add(b.addr)
		}
		g.mu.Unlock()
		return changed
	}
	return false
}

// probeHealthz performs one bounded GET /healthz.
func (g *Gateway) probeHealthz(b *backend) error {
	ctx, cancel := context.WithTimeout(context.Background(), g.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := g.probe.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// suspect records a proxy-observed backend failure. It does not eject by
// itself — transient single-request errors happen — but it feeds the
// backend's circuit breaker (enough consecutive failures open it) and
// zeroes the probe grace so the next loop tick re-examines the backend
// immediately.
func (g *Gateway) suspect(b *backend) {
	if b.breaker.onFailure(time.Now()) {
		g.opts.Logger.Printf("gateway: circuit breaker for %s opened", b.addr)
	}
	b.mu.Lock()
	b.nextAt = time.Time{}
	b.mu.Unlock()
}
