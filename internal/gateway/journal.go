package gateway

// Queue-and-replay: zero-downtime writes across a live migration.
//
// PR 9's migration quiesced writes by answering 503 + Retry-After for the
// whole export→import window — correct, but it breaks exactly the
// interactive loop the system serves: an analyst streaming adds sees
// errors whenever the pool rebalances. This file removes the 503 from the
// happy path two ways:
//
//   - The add-ingestion stream is no longer a byte proxy. serveAddStream
//     understands the NDJSON line/ack protocol: it forwards client lines
//     to an upstream leg on the holding backend and relays acks back,
//     rewriting ack indices so the client's numbering survives the leg
//     changing. When a migration quiesces the session, the proxy detaches
//     from the old holder cleanly (half-close; every line the backend
//     received gets acked and is therefore in the export) and buffers
//     incoming lines in a bounded in-memory journal. After cutover it
//     attaches to the new holder, replays the journal in order (acks flow
//     to the client as the new backend applies them), and resumes. The
//     client sees added latency, never an error. If the journal fills,
//     the proxy stops reading the client's body — TCP backpressure, the
//     same degradation the tenant throttle uses — so the bound holds
//     without dropping lines.
//
//   - One-shot writes (compress, delete) park on a bounded per-session
//     queue instead of bouncing: awaitWritable blocks until the quiesce
//     lifts, then the request proceeds against the new holder. Only a
//     full queue or a parked wait outliving ParkTimeout degrades back to
//     503 + Retry-After — with the Retry-After derived from how long the
//     migration has actually been running, not a constant.
//
// The ack invariant is preserved end to end: an ack reaches the client
// only after the line was applied (and fsynced, when durable) on some
// backend whose state the migration carries forward. Lines sent to a leg
// that died before acking are NOT silently replayed — adds are not
// idempotent, and the line may or may not have been applied — so that
// (and only that) tears the stream with an in-band terminal error, the
// same contract a mid-stream backend death always had. Journaled lines
// were never handed to any backend, so replaying them is exact.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// addProxy states.
const (
	apAttached  = iota // forwarding lines to a live upstream leg
	apReplaying        // new leg attached; journal replay in flight
	apPausing          // detaching from the old leg (migration)
	apPaused           // no leg; journaling client lines
	apDone             // clean end: client EOF and every ack delivered
	apFailed           // terminal error sent (or being sent)
)

// maxDrainBytes bounds how much of an unread add-stream body the handler
// consumes before returning (see the drain comment in serveAddStream) —
// the same bound net/http itself uses for non-duplex handlers.
const maxDrainBytes = 256 << 10

// journalEntry is one buffered client line awaiting replay.
type journalEntry struct {
	index int // client-visible ack index
	line  []byte
}

// upstreamLeg is one gateway→backend add stream.
type upstreamLeg struct {
	b      *backend
	pw     *io.PipeWriter
	cancel context.CancelFunc
	done   chan struct{} // pump exited
	err    error         // pump outcome; nil = clean response EOF
	status int           // non-200 upstream status, when that was the failure
}

// addProxy is one client add stream being routed, possibly across a
// migration.
type addProxy struct {
	g         *Gateway
	name      string
	clientCtx context.Context

	// client-write side: serialized by wmu (ack pump vs terminal writer).
	wmu       sync.Mutex
	w         http.ResponseWriter
	rc        *http.ResponseController
	enc       *json.Encoder
	anyWrite  bool
	termWrote bool

	mu           sync.Mutex
	cond         *sync.Cond
	state        int
	failErr      error
	failStatus   int // upstream HTTP status behind failErr, when there was one
	upstream     *upstreamLeg
	sending      bool // a forward() holds the pipe outside mu
	pending      []int
	journal      []journalEntry
	journalBytes int64
	clientEOF    bool
}

// ackMsg is a backend stream line: an ack ({"index":i[,"error":…]}) or a
// terminal error ({"error":…} with no index).
type ackMsg struct {
	Index *int   `json:"index"`
	Error string `json:"error,omitempty"`
}

// serveAddStream handles POST /v1/sessions/{name}/add at the gateway.
// The caller has already applied tenant limits and body throttling.
func (g *Gateway) serveAddStream(w http.ResponseWriter, r *http.Request, name string) {
	p := &addProxy{
		g:         g,
		name:      name,
		clientCtx: r.Context(),
		w:         w,
		rc:        http.NewResponseController(w),
		enc:       json.NewEncoder(w),
	}
	p.cond = sync.NewCond(&p.mu)
	if err := p.rc.EnableFullDuplex(); err != nil && !errors.Is(err, http.ErrNotSupported) {
		g.opts.Logger.Printf("gateway: %s %s: full duplex: %v", r.Method, r.URL.Path, err)
	}
	// Every return below must reach the body's EOF (or a bound) while the
	// handler is still running: a full-duplex handler that returns with the
	// body part-read — an early 503, a failed leg — leaves the drain to the
	// server's post-handler Close, whose background read races the next
	// request's read on a reused keep-alive connection (net/http's "invalid
	// concurrent Body.Read call" panic). Same discipline as the backend's
	// stream handlers; skipped when the request is already being torn down.
	defer func() {
		if r.Context().Err() == nil {
			io.Copy(io.Discard, io.LimitReader(r.Body, maxDrainBytes)) //nolint:errcheck
		}
	}()

	// Registration and the quiesce check are one critical section: either
	// the in-flight migration's pause sweep sees this proxy, or this proxy
	// sees the quiesce and starts paused (resumed by unquiesce).
	g.mu.Lock()
	_, moving := g.moving[name]
	g.addProxies[name] = append(g.addProxies[name], p)
	g.mu.Unlock()
	defer g.unregisterAddProxy(name, p)

	p.mu.Lock()
	if moving {
		p.state = apPaused
	} else {
		b, err := g.route(name)
		if err != nil {
			p.mu.Unlock()
			g.writeUnavailable(w, 1, err)
			return
		}
		if !b.isHealthy() {
			p.mu.Unlock()
			g.writeUnavailable(w, g.probeRetrySeconds(b),
				fmt.Errorf("backend %s holding session %q is unhealthy; retry shortly", b.addr, name))
			return
		}
		if ok, wait := b.breaker.allow(time.Now()); !ok {
			p.mu.Unlock()
			g.writeUnavailable(w, retrySeconds(wait), (&errBreakerOpen{addr: b.addr, retryAfter: wait}))
			return
		}
		p.attachLocked(b, nil)
	}
	p.mu.Unlock()

	scan := bufio.NewScanner(r.Body)
	maxLine := int(g.opts.MaxLineBytes)
	bufCap := 64 * 1024
	if maxLine < bufCap {
		bufCap = maxLine
	}
	scan.Buffer(make([]byte, 0, bufCap), maxLine)

	index := -1
	for scan.Scan() {
		line := bytes.TrimSpace(scan.Bytes())
		if len(line) == 0 {
			continue
		}
		index++
		if err := p.forward(index, line); err != nil {
			break // terminal already sent (or client gone)
		}
	}
	if err := scan.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			err = fmt.Errorf("add line exceeds the %d-byte limit", maxLine)
		}
		p.fail(fmt.Errorf("gateway: reading add stream: %v", err), 0)
		return
	}
	p.finish()
	// On failure the terminal error may have been chosen by another
	// goroutine (a dying leg's pump) that is still inside sendTerminal.
	// Re-sending from here is an idempotent no-op, but passing through the
	// write mutex guarantees that write has finished before this handler
	// returns — after which the ResponseWriter must not be touched.
	p.mu.Lock()
	failed := p.state == apFailed
	err, status := p.failErr, p.failStatus
	p.mu.Unlock()
	if failed {
		p.sendTerminal(err, status)
	}
}

// attachLocked opens a new upstream leg on b and queues replay (p.mu
// held). The leg's request runs under the client's context so a vanished
// client tears the whole chain down.
func (p *addProxy) attachLocked(b *backend, replay []journalEntry) {
	ctx, cancel := context.WithCancel(p.clientCtx)
	pr, pw := io.Pipe()
	leg := &upstreamLeg{b: b, pw: pw, cancel: cancel, done: make(chan struct{})}
	p.upstream = leg
	p.state = apReplaying

	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		b.base+"/v1/sessions/"+p.name+"/add", pr)
	if err != nil {
		// Only a malformed URL can land here; treat as a failed leg.
		leg.err = err
		close(leg.done)
		p.failLocked(err)
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")

	// The Do + ack pump. Do blocks until the backend's first response
	// write (its first ack), so it must run concurrently with line
	// forwarding.
	go func() {
		resp, derr := p.g.client.Do(req)
		if derr != nil {
			p.g.suspect(b)
			leg.err = fmt.Errorf("backend %s: %v", b.addr, derr)
			close(leg.done)
			p.legEnded(leg)
			return
		}
		b.breaker.onSuccess()
		p.pumpAcks(leg, resp)
	}()

	// Replay writer: journaled lines go down the new leg in order before
	// any fresh client line (forward waits out apReplaying).
	go func() {
		for _, e := range replay {
			p.mu.Lock()
			if p.state != apReplaying || p.upstream != leg {
				p.mu.Unlock()
				return
			}
			p.pending = append(p.pending, e.index)
			p.mu.Unlock()
			if _, werr := pw.Write(append(e.line, '\n')); werr != nil {
				// Never handed to a previous backend, but this leg broke
				// before accepting it: the line is unacked and in doubt now.
				p.fail(fmt.Errorf("gateway: replaying %d journaled line(s) to %s: %v", len(replay), b.addr, werr), 0)
				return
			}
			p.g.replayedLines.Add(1)
		}
		p.mu.Lock()
		if p.state == apReplaying && p.upstream == leg {
			p.state = apAttached
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}()
}

// pumpAcks relays backend stream lines to the client, rewriting ack
// indices through the pending FIFO.
func (p *addProxy) pumpAcks(leg *upstreamLeg, resp *http.Response) {
	defer resp.Body.Close()
	defer p.legEnded(leg)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		leg.status = resp.StatusCode
		leg.err = fmt.Errorf("backend %s refused the add stream: status %d: %s",
			leg.b.addr, resp.StatusCode, bytes.TrimSpace(msg))
		close(leg.done)
		return
	}
	scan := bufio.NewScanner(resp.Body)
	maxLine := int(p.g.opts.MaxLineBytes)
	scan.Buffer(make([]byte, 0, 4096), maxLine)
	for scan.Scan() {
		raw := bytes.TrimSpace(scan.Bytes())
		if len(raw) == 0 {
			continue
		}
		var msg ackMsg
		if err := json.Unmarshal(raw, &msg); err != nil {
			leg.err = fmt.Errorf("backend %s: undecodable ack line %q", leg.b.addr, raw)
			break
		}
		if msg.Index == nil {
			// In-band terminal from the backend (persistence failure, torn
			// input): the stream is over; relay verbatim.
			leg.err = fmt.Errorf("backend %s: %s", leg.b.addr, msg.Error)
			break
		}
		p.mu.Lock()
		if len(p.pending) == 0 {
			p.mu.Unlock()
			leg.err = fmt.Errorf("backend %s acked index %d with no line outstanding", leg.b.addr, *msg.Index)
			break
		}
		ci := p.pending[0]
		p.pending = p.pending[1:]
		p.mu.Unlock()
		if !p.writeAck(ackMsg{Index: &ci, Error: msg.Error}) {
			leg.err = errClientGone
			break
		}
	}
	if leg.err == nil {
		if err := scan.Err(); err != nil {
			p.g.suspect(leg.b)
			leg.err = fmt.Errorf("backend %s failed mid-stream: %v", leg.b.addr, err)
		}
	}
	close(leg.done)
}

var errClientGone = errors.New("client went away")

// legEnded arbitrates what a finished pump means. During a pause the
// pause() call owns the verdict; otherwise a clean EOF is only clean if
// the client had finished and every ack was delivered.
func (p *addProxy) legEnded(leg *upstreamLeg) {
	p.mu.Lock()
	if p.upstream != leg || p.state == apFailed || p.state == apDone {
		p.mu.Unlock()
		return
	}
	if p.state == apPausing {
		p.mu.Unlock()
		p.cond.Broadcast()
		return
	}
	if leg.err == nil && p.clientEOF && len(p.pending) == 0 {
		p.state = apDone
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	err := leg.err
	if err == nil {
		err = fmt.Errorf("backend %s ended the add stream early", leg.b.addr)
	}
	status := leg.status
	p.failStatus = status
	p.failLocked(err)
	p.mu.Unlock()
	p.sendTerminal(err, status)
}

// forward routes one client line: down the live leg, or into the bounded
// journal while paused. A full journal blocks — the caller stops reading
// the client's body, which is the graceful degradation (TCP backpressure)
// rather than a mid-stream error.
func (p *addProxy) forward(index int, line []byte) error {
	p.mu.Lock()
	for {
		switch p.state {
		case apFailed:
			err := p.failErr
			p.mu.Unlock()
			return err
		case apDone:
			p.mu.Unlock()
			return errors.New("stream already finished")
		case apAttached:
			leg := p.upstream
			p.pending = append(p.pending, index)
			p.sending = true
			p.mu.Unlock()
			_, werr := leg.pw.Write(append(line, '\n'))
			p.mu.Lock()
			p.sending = false
			p.cond.Broadcast()
			if werr == nil {
				p.mu.Unlock()
				return nil
			}
			// The pipe closed under the write: either a pause detached the
			// leg (state moved; the line never reached the backend — journal
			// it) or the leg died (fail).
			if n := len(p.pending); n > 0 && p.pending[n-1] == index {
				p.pending = p.pending[:n-1]
			}
			if p.state == apAttached {
				err := fmt.Errorf("gateway: backend %s dropped the add stream: %v", leg.b.addr, werr)
				p.failLocked(err)
				p.mu.Unlock()
				p.sendTerminal(err, 0)
				return err
			}
			// Loop: the state machine decides what happens to this line now.
		case apPaused:
			if len(p.journal) >= p.g.opts.JournalLines ||
				p.journalBytes+int64(len(line)) > p.g.opts.JournalBytes {
				p.g.journalStalls.Add(1)
				p.cond.Wait()
				continue
			}
			cp := append([]byte(nil), line...)
			p.journal = append(p.journal, journalEntry{index: index, line: cp})
			p.journalBytes += int64(len(cp))
			p.g.journaledLines.Add(1)
			p.g.noteJournalDepth(int64(len(p.journal)))
			p.mu.Unlock()
			return nil
		default: // apPausing, apReplaying: wait for the machine to settle
			p.cond.Wait()
		}
	}
}

// finish handles client EOF: every outstanding and journaled line must
// still resolve to an ack (or the terminal error) before the response
// ends. It waits out any in-flight migration.
func (p *addProxy) finish() {
	p.mu.Lock()
	p.clientEOF = true
	for {
		switch p.state {
		case apFailed, apDone:
			p.mu.Unlock()
			return
		case apAttached:
			leg := p.upstream
			p.mu.Unlock()
			leg.pw.Close() // clean EOF: backend acks everything it received, then ends
			p.mu.Lock()
			if p.state == apAttached && p.upstream == leg {
				p.cond.Wait() // legEnded (or a pause) moves the state
			}
		default: // paused / pausing / replaying: migration still in flight
			p.cond.Wait()
		}
	}
}

// pause detaches the proxy from its leg for a migration: half-close, then
// require every sent line's ack. On success the proxy is journaling; on
// failure (the backend died with lines in doubt) the stream is failed
// with the usual in-band terminal error — never silently replayed.
func (p *addProxy) pause(ctx context.Context) {
	p.mu.Lock()
	for p.state == apReplaying || p.state == apPausing {
		if !p.waitCtx(ctx) {
			break
		}
	}
	if p.state != apAttached {
		// paused / done / failed already — nothing to detach.
		p.mu.Unlock()
		return
	}
	p.state = apPausing
	p.cond.Broadcast()
	leg := p.upstream
	// A forward() blocked in the pipe write must complete (or break) before
	// the half-close, or the backend would see a torn line. The deadline
	// watchdog breaks a genuinely stalled leg.
	watchdog := time.AfterFunc(timeUntilDeadline(ctx), func() { leg.cancel() })
	for p.sending {
		if !p.waitCtx(ctx) {
			break
		}
	}
	p.mu.Unlock()
	leg.pw.Close()
	select {
	case <-leg.done:
	case <-ctx.Done():
		leg.cancel() // force the pump off the response
		<-leg.done
	}
	watchdog.Stop()

	p.mu.Lock()
	if p.state != apPausing { // failed in the meantime
		p.mu.Unlock()
		return
	}
	if leg.err == nil && len(p.pending) == 0 {
		p.upstream = nil
		p.state = apPaused
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	err := leg.err
	if err == nil {
		err = fmt.Errorf("backend %s left %d add line(s) unacknowledged at quiesce", leg.b.addr, len(p.pending))
	}
	p.failLocked(err)
	p.mu.Unlock()
	p.sendTerminal(err, 0)
}

// resume reattaches a paused proxy to the session's current holder and
// replays the journal. Called after cutover (or after a failed migration,
// in which case the route still names the old holder).
func (p *addProxy) resume() {
	p.mu.Lock()
	if p.state != apPaused {
		p.mu.Unlock()
		return
	}
	b, err := p.g.route(p.name)
	if err == nil && !b.isHealthy() {
		err = fmt.Errorf("backend %s holding session %q is unhealthy", b.addr, p.name)
	}
	if err != nil {
		p.failLocked(err)
		p.mu.Unlock()
		p.sendTerminal(err, 0)
		return
	}
	replay := p.journal
	p.journal = nil
	p.journalBytes = 0
	p.attachLocked(b, replay)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// fail moves the proxy to the terminal state from outside the lock. When
// the proxy already failed it still passes through sendTerminal (an
// idempotent no-op) so a caller on the handler goroutine synchronizes
// with any in-flight terminal write before returning.
func (p *addProxy) fail(err error, status int) {
	p.mu.Lock()
	switch p.state {
	case apDone:
		p.mu.Unlock()
		return
	case apFailed:
		err, status = p.failErr, p.failStatus
	default:
		p.failStatus = status
		p.failLocked(err)
	}
	p.mu.Unlock()
	p.sendTerminal(err, status)
}

// failLocked flips state (p.mu held); the caller sends the terminal.
func (p *addProxy) failLocked(err error) {
	p.state = apFailed
	p.failErr = err
	if leg := p.upstream; leg != nil {
		leg.cancel()
	}
	p.cond.Broadcast()
}

// writeAck relays one ack line to the client.
func (p *addProxy) writeAck(msg ackMsg) bool {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.termWrote {
		return false
	}
	if !p.anyWrite {
		p.w.Header().Set("Content-Type", "application/x-ndjson")
		p.anyWrite = true
	}
	if err := p.enc.Encode(msg); err != nil {
		return false
	}
	if err := p.rc.Flush(); err != nil {
		return false
	}
	return true
}

// sendTerminal reports the stream's failure: as a plain HTTP error if no
// ack has been written yet (the status is still ours to choose), in-band
// otherwise.
func (p *addProxy) sendTerminal(err error, status int) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.termWrote {
		return
	}
	p.termWrote = true
	if !p.anyWrite {
		if status == 0 {
			status = http.StatusBadGateway
		}
		p.anyWrite = true
		p.g.writeError(p.w, status, fmt.Errorf("gateway: %v", err))
		return
	}
	if encErr := p.enc.Encode(map[string]string{"error": fmt.Sprintf("gateway: %v", err)}); encErr == nil {
		p.rc.Flush() //nolint:errcheck // the conversation is over either way
	}
}

// waitCtx waits on p.cond, abandoning the wait when ctx expires. Returns
// false once ctx is done. (cond has no native deadline; a helper
// goroutine converts the ctx edge into a broadcast.)
func (p *addProxy) waitCtx(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		case <-stop:
		}
	}()
	p.cond.Wait()
	close(stop)
	return ctx.Err() == nil
}

func timeUntilDeadline(ctx context.Context) time.Duration {
	if d, ok := ctx.Deadline(); ok {
		if r := time.Until(d); r > 0 {
			return r
		}
		return time.Millisecond
	}
	return 30 * time.Second
}

func (g *Gateway) unregisterAddProxy(name string, p *addProxy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	list := g.addProxies[name]
	for i, q := range list {
		if q == p {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(g.addProxies, name)
	} else {
		g.addProxies[name] = list
	}
}

// noteJournalDepth records the high-water mark of any proxy's journal.
func (g *Gateway) noteJournalDepth(depth int64) {
	for {
		cur := g.journalHighWater.Load()
		if depth <= cur || g.journalHighWater.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// --- parked one-shot writes ---------------------------------------------

// parkedSession is the bounded wait queue one migrating session's
// one-shot writes join instead of bouncing with 503.
type parkedSession struct {
	ch    chan struct{} // closed at unquiesce
	count int
}

var errParkTimeout = errors.New("queued write outlived the migration window")

// awaitWritable blocks while name is quiesced, parking the caller on the
// session's bounded queue. It returns a nil error when writes may
// proceed; otherwise the 503's Retry-After seconds and the reason.
func (g *Gateway) awaitWritable(ctx context.Context, name string) (retryAfter int, err error) {
	deadline := time.Now().Add(g.opts.ParkTimeout)
	for {
		g.mu.Lock()
		started, moving := g.moving[name]
		if !moving {
			g.mu.Unlock()
			return 0, nil
		}
		pk := g.parked[name]
		if pk == nil {
			pk = &parkedSession{ch: make(chan struct{})}
			g.parked[name] = pk
		}
		if pk.count >= g.opts.ParkLimit {
			ra := g.quiesceRetrySeconds(started)
			g.mu.Unlock()
			return ra, fmt.Errorf("session %q is migrating and its write queue is full (%d); retry shortly",
				name, g.opts.ParkLimit)
		}
		pk.count++
		ch := pk.ch
		g.mu.Unlock()
		g.parkedWrites.Add(1)

		var waitErr error
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-ch:
		case <-ctx.Done():
			waitErr = ctx.Err()
		case <-timer.C:
			waitErr = errParkTimeout
		}
		timer.Stop()

		g.mu.Lock()
		pk.count--
		g.mu.Unlock()
		if waitErr != nil {
			g.mu.RLock()
			started, moving := g.moving[name]
			g.mu.RUnlock()
			ra := 1
			if moving {
				ra = g.quiesceRetrySeconds(started)
			}
			return ra, fmt.Errorf("session %q is migrating; retry shortly (%v)", name, waitErr)
		}
		// Woken: loop to re-check (a new migration may have started).
	}
}

// quiesceRetrySeconds derives Retry-After from how long the quiesce has
// actually been running: the longer it has run, the less of the window
// remains.
func (g *Gateway) quiesceRetrySeconds(started time.Time) int {
	remaining := g.opts.QuiesceTimeout - time.Since(started)
	if remaining < time.Second {
		return 1
	}
	return retrySeconds(remaining)
}

// quiesceSession begins a quiesce window. It reports false if one is
// already running for name.
func (g *Gateway) quiesceSession(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.moving[name]; ok {
		return false
	}
	g.moving[name] = time.Now()
	return true
}

// unquiesceSession ends the window: wakes parked writes and resumes
// paused add proxies against whatever route() now says (the new holder
// after a cutover; the old one after a failed migration).
func (g *Gateway) unquiesceSession(name string) {
	g.mu.Lock()
	delete(g.moving, name)
	pk := g.parked[name]
	delete(g.parked, name)
	proxies := append([]*addProxy(nil), g.addProxies[name]...)
	g.mu.Unlock()
	for _, p := range proxies {
		p.resume()
	}
	if pk != nil {
		close(pk.ch)
	}
}

// pauseAddStreams detaches every live add stream for name (migration
// step 2'). Streams whose backends died with unacked lines get the
// terminal error; everything else parks in its journal.
func (g *Gateway) pauseAddStreams(ctx context.Context, name string) {
	g.mu.RLock()
	proxies := append([]*addProxy(nil), g.addProxies[name]...)
	g.mu.RUnlock()
	for _, p := range proxies {
		p.pause(ctx)
	}
}
