package gateway

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"provabs/internal/provenance"
	"provabs/internal/registry"
	"provabs/internal/server"
)

// poolBackend is one real backend for the e2e tests: a full provabs server
// over its own registry, plus handles to kill it.
type poolBackend struct {
	ts  *httptest.Server
	reg *registry.Registry
}

func (b *poolBackend) addr() string { return strings.TrimPrefix(b.ts.URL, "http://") }

func newPoolBackend(t *testing.T, opts ...server.Option) *poolBackend {
	t.Helper()
	reg := registry.New()
	ts := httptest.NewServer(server.New(reg, opts...).Handler())
	t.Cleanup(ts.Close)
	return &poolBackend{ts: ts, reg: reg}
}

// newTestGateway stands a gateway over the given backends. The probe loop
// is not started; tests drive health transitions by hand.
func newTestGateway(t *testing.T, opts Options, backends ...*poolBackend) (*Gateway, *httptest.Server) {
	t.Helper()
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.addr()
	}
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	g, err := New(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Stop)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func e2eSetB64(t *testing.T) string {
	t.Helper()
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3"))
	var buf bytes.Buffer
	if err := provenance.Encode(&buf, set); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

// createSession makes a session through base (gateway or backend),
// returning the response for status assertions.
func createSession(t *testing.T, base, name, tenant string) *http.Response {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"name":           name,
		"provenance_b64": e2eSetB64(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// whatifValues posts one scenario and returns the answer values in tag
// order, for bit-identity comparisons.
func whatifValues(t *testing.T, base, name string, assign map[string]float64) []float64 {
	t.Helper()
	body, err := json.Marshal(map[string]any{"assign": assign})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sessions/"+name+"/whatif", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("whatif %s on %s: status %d: %s", name, base, resp.StatusCode, msg)
	}
	var out struct {
		Answers []struct {
			Tag   string  `json:"tag"`
			Value float64 `json:"value"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, len(out.Answers))
	for i, a := range out.Answers {
		vals[i] = a.Value
	}
	return vals
}

func sessionStats(t *testing.T, base, name string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + name + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats %s on %s: status %d", name, base, resp.StatusCode)
	}
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGatewayE2E drives the full pool lifecycle through a real gateway
// over two real backends: create sessions (consistent-hash spread), ingest
// adds over the proxied NDJSON stream, answer what-ifs, aggregate stats,
// then drain one backend and require the live migration to be invisible —
// answers bit-identical, Compiles still 1 on the importer, every
// acknowledged add present, the drained backend empty.
func TestGatewayE2E(t *testing.T) {
	b1 := newPoolBackend(t)
	b2 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{}, b1, b2)

	// Create sessions until both backends hold at least one (the ring
	// spreads them; a handful of names is plenty).
	const n = 8
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("sess-%d", i)
		resp := createSession(t, gts.URL, name, "")
		if resp.StatusCode != http.StatusCreated {
			msg, _ := io.ReadAll(resp.Body)
			t.Fatalf("create %s: status %d: %s", name, resp.StatusCode, msg)
		}
		names = append(names, name)
	}
	placements := g.placementsSnapshot()
	perBackend := map[string]int{}
	for _, name := range names {
		perBackend[placements[name]]++
	}
	if len(perBackend) != 2 {
		t.Fatalf("all %d sessions landed on one backend: %v", n, perBackend)
	}
	if b1.reg.Len()+b2.reg.Len() != n {
		t.Fatalf("backends hold %d+%d sessions, want %d", b1.reg.Len(), b2.reg.Len(), n)
	}

	// Ingest adds through the gateway's proxied NDJSON stream; every line
	// must come back acked with its index.
	target := names[0]
	var addBody strings.Builder
	const adds = 20
	for i := 0; i < adds; i++ {
		fmt.Fprintf(&addBody, `{"tag":"add-%d","poly":"%d*p1*m1 + %d*f1*m3"}`+"\n", i, i+2, 2*i+3)
	}
	resp, err := http.Post(gts.URL+"/v1/sessions/"+target+"/add", "application/x-ndjson",
		strings.NewReader(addBody.String()))
	if err != nil {
		t.Fatal(err)
	}
	acked := 0
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var ack struct {
			Index int    `json:"index"`
			Error string `json:"error,omitempty"`
		}
		if err := json.Unmarshal(scan.Bytes(), &ack); err != nil {
			t.Fatalf("bad ack line %q: %v", scan.Text(), err)
		}
		if ack.Error != "" {
			t.Fatalf("add %d refused: %s", ack.Index, ack.Error)
		}
		if ack.Index != acked {
			t.Fatalf("ack order broke: got index %d, want %d", ack.Index, acked)
		}
		acked++
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if acked != adds {
		t.Fatalf("acked %d of %d adds", acked, adds)
	}

	// A what-if through the gateway answers bit-identically to the same
	// what-if asked of the holding backend directly.
	assign := map[string]float64{"p1": 0.5, "m1": 1, "m3": 1, "f1": 1}
	holder := b1
	if placements[target] == b2.addr() {
		holder = b2
	}
	viaGateway := whatifValues(t, gts.URL, target, assign)
	direct := whatifValues(t, holder.ts.URL, target, assign)
	if len(viaGateway) == 0 || len(viaGateway) != len(direct) {
		t.Fatalf("answer shape: gateway %d values, direct %d", len(viaGateway), len(direct))
	}
	for i := range direct {
		if math.Float64bits(viaGateway[i]) != math.Float64bits(direct[i]) {
			t.Fatalf("gateway answer %d = %v, direct %v — proxy changed the bits", i, viaGateway[i], direct[i])
		}
	}

	// Pool stats: merged totals count every session once, and the pool
	// session count is the whole pool's.
	statsResp, err := http.Get(gts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var agg struct {
		Pool     registry.AggregateStats            `json:"pool"`
		Backends map[string]registry.AggregateStats `json:"backends"`
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&agg); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if agg.Pool.Sessions != n {
		t.Fatalf("pool stats sessions = %d, want %d", agg.Pool.Sessions, n)
	}
	if len(agg.Backends) != 2 {
		t.Fatalf("per-backend stats cover %d backends, want 2", len(agg.Backends))
	}
	var direct1, direct2 registry.AggregateStats
	direct1, direct2 = b1.reg.Stats(), b2.reg.Stats()
	if want := direct1.Totals.Scenarios + direct2.Totals.Scenarios; agg.Pool.Totals.Scenarios != want {
		t.Fatalf("pool scenarios = %d, want summed %d", agg.Pool.Totals.Scenarios, want)
	}

	// Drain the backend holding the target session. Every session it holds
	// must live-migrate to the survivor.
	preDrain := whatifValues(t, gts.URL, target, assign)
	drainReq, err := http.NewRequest(http.MethodPost, gts.URL+"/gateway/backends/"+placements[target]+"/drain", nil)
	if err != nil {
		t.Fatal(err)
	}
	drainResp, err := http.DefaultClient.Do(drainReq)
	if err != nil {
		t.Fatal(err)
	}
	drainBody, _ := io.ReadAll(drainResp.Body)
	drainResp.Body.Close()
	if drainResp.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d: %s", drainResp.StatusCode, drainBody)
	}
	var drained struct {
		Migrated int `json:"migrated"`
	}
	if err := json.Unmarshal(drainBody, &drained); err != nil {
		t.Fatal(err)
	}
	if want := perBackend[placements[target]]; drained.Migrated != want {
		t.Fatalf("drain migrated %d sessions, want %d", drained.Migrated, want)
	}

	survivor := b2
	if holder == b2 {
		survivor = b1
	}
	if holder.reg.Len() != 0 {
		t.Fatalf("drained backend still holds %d sessions", holder.reg.Len())
	}
	if survivor.reg.Len() != n {
		t.Fatalf("survivor holds %d sessions, want all %d", survivor.reg.Len(), n)
	}

	// Migration is invisible: the same what-if, through the same gateway
	// URL, answers bit-identically — which also proves every acked add
	// crossed over (the adds' coefficients are baked into the answers).
	postDrain := whatifValues(t, gts.URL, target, assign)
	if len(postDrain) != len(preDrain) {
		t.Fatalf("answer shape changed across migration: %d vs %d values", len(postDrain), len(preDrain))
	}
	for i := range preDrain {
		if math.Float64bits(postDrain[i]) != math.Float64bits(preDrain[i]) {
			t.Fatalf("post-migration answer %d = %v, want bit-identical %v", i, postDrain[i], preDrain[i])
		}
	}

	// The importer restored the snapshot's compiled form — it did not
	// recompile (Compiles == 1), and the acked adds are all there.
	st := sessionStats(t, survivor.ts.URL, target)
	if c, _ := st["compiles"].(float64); c != 1 {
		t.Fatalf("imported session compiles = %v, want 1 (restore must not recompile)", st["compiles"])
	}
	if p, _ := st["polynomials"].(float64); int(p) != 1+adds {
		t.Fatalf("imported session polynomials = %v, want %d — acked adds were lost", st["polynomials"], 1+adds)
	}
}

// TestGatewayMidStreamBackendDeath kills a backend while an NDJSON what-if
// stream is proxied through the gateway full-duplex. The client must get
// an in-band terminal {"error": …} line — not a hung connection.
func TestGatewayMidStreamBackendDeath(t *testing.T) {
	b1 := newPoolBackend(t)
	b2 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{}, b1, b2)

	name := "victim"
	if resp := createSession(t, gts.URL, name, ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	holder := b1
	if g.placementsSnapshot()[name] == b2.addr() {
		holder = b2
	}

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, gts.URL+"/v1/sessions/"+name+"/whatif/stream", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	go func() {
		// First scenario unblocks Do (headers flush with the first answer);
		// the body then stays open — mid-stream by construction.
		io.WriteString(pw, `{"assign":{"m1":1,"m3":1}}`+"\n") //nolint:errcheck
	}()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	defer pw.Close()
	scan := bufio.NewScanner(resp.Body)
	if !scan.Scan() {
		t.Fatalf("no first answer line: %v", scan.Err())
	}
	var first struct {
		Index int    `json:"index"`
		Error string `json:"error,omitempty"`
	}
	if err := json.Unmarshal(scan.Bytes(), &first); err != nil || first.Error != "" {
		t.Fatalf("first line %q: err=%v", scan.Text(), err)
	}

	// Kill the holding backend: in-flight proxied connections die with it.
	holder.ts.CloseClientConnections()
	holder.ts.Close()

	// The stream must terminate with an in-band error line, promptly.
	type outcome struct {
		line string
		ok   bool
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		ok := scan.Scan()
		done <- outcome{line: scan.Text(), ok: ok, err: scan.Err()}
	}()
	select {
	case out := <-done:
		if !out.ok {
			// A torn TCP stream without the terminal line is exactly the hung/
			// opaque failure the gateway must prevent.
			t.Fatalf("stream ended with no in-band error line (scan err: %v)", out.err)
		}
		var terminal struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(out.line), &terminal); err != nil {
			t.Fatalf("terminal line %q is not JSON: %v", out.line, err)
		}
		if !strings.Contains(terminal.Error, "mid-stream") {
			t.Fatalf("terminal line %q does not name the mid-stream failure", out.line)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client hung after backend death — no terminal error line")
	}
}

// TestGatewayTenantLimits checks the wire shape of limiter rejections:
// past the tenant's session quota the gateway answers 429 with Retry-After
// — and another tenant is unaffected.
func TestGatewayTenantLimits(t *testing.T) {
	b1 := newPoolBackend(t)
	_, gts := newTestGateway(t, Options{Limits: TenantLimits{MaxSessions: 1}}, b1)

	if resp := createSession(t, gts.URL, "quota-a", "tenant-a"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first create: status %d", resp.StatusCode)
	}
	resp := createSession(t, gts.URL, "quota-b", "tenant-a")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("429 body not the JSON error shape: %v", err)
	}
	if resp := createSession(t, gts.URL, "quota-c", "tenant-b"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("second tenant blocked by first tenant's quota: status %d", resp.StatusCode)
	}
	// The refused create must not leak a quota slot: tenant-a can still
	// not create, but deleting its session frees the slot.
	delReq, err := http.NewRequest(http.MethodDelete, gts.URL+"/v1/sessions/quota-a", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	if resp := createSession(t, gts.URL, "quota-d", "tenant-a"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after delete freed the quota: status %d", resp.StatusCode)
	}
}

// TestGatewayUnhealthyBackendAnswers503 pins the dead-backend policy: a
// session placed on an ejected backend answers 503 + Retry-After (no
// silent re-route that would split-brain the session) until readmission.
func TestGatewayUnhealthyBackendAnswers503(t *testing.T) {
	b1 := newPoolBackend(t)
	b2 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{FailThreshold: 1, ProbeTimeout: 200 * time.Millisecond}, b1, b2)

	name := "pinned"
	if resp := createSession(t, gts.URL, name, ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	holderAddr := g.placementsSnapshot()[name]
	holder := b1
	if holderAddr == b2.addr() {
		holder = b2
	}
	holder.ts.Close()
	g.probeAll() // one manual probe pass ejects it at FailThreshold=1

	body := `{"assign":{"m1":1}}`
	resp, err := http.Post(gts.URL+"/v1/sessions/"+name+"/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("whatif on dead holder: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After header")
	}
}

// TestGatewayAddBackendRebalances grows the pool through the admin
// endpoint and checks sessions rebalance onto the newcomer with answers
// preserved.
func TestGatewayAddBackendRebalances(t *testing.T) {
	b1 := newPoolBackend(t)
	_, gts := newTestGateway(t, Options{}, b1)

	const n = 8
	assign := map[string]float64{"p1": 0.5, "m1": 1, "m3": 1, "f1": 1}
	before := map[string][]float64{}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("grow-%d", i)
		if resp := createSession(t, gts.URL, name, ""); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, resp.StatusCode)
		}
		before[name] = whatifValues(t, gts.URL, name, assign)
	}

	b2 := newPoolBackend(t)
	addBody, _ := json.Marshal(map[string]string{"addr": b2.addr()})
	resp, err := http.Post(gts.URL+"/gateway/backends", "application/json", bytes.NewReader(addBody))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add backend: status %d: %s", resp.StatusCode, raw)
	}
	var added struct {
		Migrated int `json:"migrated"`
	}
	if err := json.Unmarshal(raw, &added); err != nil {
		t.Fatal(err)
	}
	if added.Migrated == 0 {
		t.Fatal("no sessions migrated to the new backend — ring not rebalanced")
	}
	if b2.reg.Len() == 0 {
		t.Fatal("new backend holds nothing after rebalance")
	}
	if b1.reg.Len()+b2.reg.Len() != n {
		t.Fatalf("pool holds %d+%d sessions, want %d", b1.reg.Len(), b2.reg.Len(), n)
	}
	for name, want := range before {
		got := whatifValues(t, gts.URL, name, assign)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s answer %d = %v after rebalance, want %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestGatewayRebalanceHealsUnknownPlacements: sessions created directly on
// a backend (or surviving a gateway restart) are adopted into the routing
// table by a sweep instead of being invisible.
func TestGatewayRebalanceHealsUnknownPlacements(t *testing.T) {
	b1 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{}, b1)

	if resp := createSession(t, b1.ts.URL, "preexisting", ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("direct create: status %d", resp.StatusCode)
	}
	if _, err := g.Rebalance(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := g.placementsSnapshot()["preexisting"]; got != b1.addr() {
		t.Fatalf("placement for preexisting = %q, want %q", got, b1.addr())
	}
	vals := whatifValues(t, gts.URL, "preexisting", map[string]float64{"m1": 1, "m3": 1})
	if len(vals) == 0 {
		t.Fatal("healed session did not answer through the gateway")
	}
}

// TestGatewayDuplicateCreateRoutesToHolder pins the duplicate-create
// policy: a name the gateway already placed is forwarded to its recorded
// holder — even when the ring owner differs (ejection, pending rebalance)
// — so the backend answers 409 instead of forking the session with a 201,
// and the failed attempt must leave the tenant's quota accounting intact.
func TestGatewayDuplicateCreateRoutesToHolder(t *testing.T) {
	b1 := newPoolBackend(t)
	b2 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{Limits: TenantLimits{MaxSessions: 2}}, b1, b2)

	if resp := createSession(t, gts.URL, "dup", "tenant-a"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	holderAddr := g.placementsSnapshot()["dup"]
	holder, other := b1, b2
	if holderAddr == b2.addr() {
		holder, other = b2, b1
	}

	// Take the holder off the ring (an ejection not yet rebalanced): the
	// ring owner for "dup" is now the other backend, but the placement
	// still names the holder.
	g.mu.Lock()
	g.ring.Remove(holderAddr)
	g.mu.Unlock()

	resp := createSession(t, gts.URL, "dup", "tenant-a")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, want 409", resp.StatusCode)
	}
	if holder.reg.Len() != 1 || other.reg.Len() != 0 {
		t.Fatalf("duplicate create forked the session: holder=%d other=%d sessions",
			holder.reg.Len(), other.reg.Len())
	}
	// A second tenant's attempt on the held name is refused the same way
	// and must not steal ownership.
	if resp := createSession(t, gts.URL, "dup", "tenant-b"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cross-tenant duplicate create: status %d, want 409", resp.StatusCode)
	}

	g.mu.Lock()
	g.ring.Add(holderAddr)
	g.mu.Unlock()

	// The failed duplicates must not have released tenant-a's live slot:
	// at MaxSessions=2 exactly one more create fits.
	if resp := createSession(t, gts.URL, "second", "tenant-a"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create under cap after failed duplicate: status %d", resp.StatusCode)
	}
	if resp := createSession(t, gts.URL, "third", "tenant-a"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create past cap: status %d, want 429 — the failed duplicate leaked a slot", resp.StatusCode)
	}
	// And DELETE still releases the slot it actually owns.
	delReq, err := http.NewRequest(http.MethodDelete, gts.URL+"/v1/sessions/dup", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	if resp := createSession(t, gts.URL, "third", "tenant-a"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after delete freed the slot: status %d", resp.StatusCode)
	}
}

// TestGatewayDrainLastBackendRejected: draining the only ring member is
// refused up front and leaves no scar — the backend stays on the ring,
// not draining, and creates keep working.
func TestGatewayDrainLastBackendRejected(t *testing.T) {
	b1 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{}, b1)

	req, err := http.NewRequest(http.MethodPost, gts.URL+"/gateway/backends/"+b1.addr()+"/drain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("drain of last backend: status %d, want 409", resp.StatusCode)
	}
	g.mu.RLock()
	onRing := g.ring.Has(b1.addr())
	g.mu.RUnlock()
	if !onRing {
		t.Fatal("rejected drain removed the backend from the ring")
	}
	if g.lookup(b1.addr()).isDraining() {
		t.Fatal("rejected drain left the backend marked draining")
	}
	if resp := createSession(t, gts.URL, "after-drain", ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after rejected drain: status %d", resp.StatusCode)
	}
}

// TestGatewayRingPoolDivergence pins both halves of the ring/pool
// consistency fix: a probe readmit cannot re-add a backend that was
// concurrently removed from the pool, and route() answers an error (not a
// nil backend the caller would deref) if the ring does name a non-member.
func TestGatewayRingPoolDivergence(t *testing.T) {
	b1 := newPoolBackend(t)
	b2 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{}, b1, b2)

	// Simulate probeOne racing handleRemoveBackend: eject b2, remove it
	// from the pool, then run the readmit path against the stale pointer
	// (b2's server is still up, so the probe itself succeeds).
	stale := g.lookup(b2.addr())
	stale.mu.Lock()
	stale.healthy = false
	stale.mu.Unlock()
	g.mu.Lock()
	g.ring.Remove(b2.addr())
	g.mu.Unlock()

	req, err := http.NewRequest(http.MethodDelete, gts.URL+"/gateway/backends/"+b2.addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove backend: status %d", resp.StatusCode)
	}

	if g.probeOne(stale) {
		t.Fatal("probeOne readmitted a backend that left the pool")
	}
	g.mu.RLock()
	has := g.ring.Has(b2.addr())
	g.mu.RUnlock()
	if has {
		t.Fatal("removed backend is back on the ring")
	}

	// Force the divergence anyway: a ring member with no pool entry must
	// surface as a routing error.
	g.mu.Lock()
	g.ring.Add(b2.addr())
	g.mu.Unlock()
	for i := 0; ; i++ {
		name := fmt.Sprintf("phantom-%d", i)
		g.mu.RLock()
		owner, _ := g.ring.Owner(name)
		g.mu.RUnlock()
		if owner != b2.addr() {
			continue
		}
		b, err := g.route(name)
		if err == nil || b != nil {
			t.Fatalf("route to phantom ring owner: backend=%v err=%v, want error", b, err)
		}
		break
	}
}

// TestGatewayDeleteQuiescedDuringMigration: DELETE is a write for
// migration purposes — while a session is quiesced it parks on the
// session's bounded queue and proceeds (no client-visible error) once the
// quiesce lifts; only a park that outlives ParkTimeout degrades to 503 +
// Retry-After.
func TestGatewayDeleteQuiescedDuringMigration(t *testing.T) {
	b1 := newPoolBackend(t)
	g, gts := newTestGateway(t, Options{ParkTimeout: 150 * time.Millisecond}, b1)
	if resp := createSession(t, gts.URL, "moving", ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	// A quiesce nobody lifts: the parked delete must give up at
	// ParkTimeout with 503 + Retry-After, and must never have reached the
	// backend.
	if !g.quiesceSession("moving") {
		t.Fatal("quiesceSession refused")
	}
	req, err := http.NewRequest(http.MethodDelete, gts.URL+"/v1/sessions/moving", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("delete past the park window: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("parked-out delete 503 without a Retry-After header")
	}
	if b1.reg.Len() != 1 {
		t.Fatal("quiesced delete reached the backend")
	}

	// A quiesce that lifts while the delete is parked: the client sees a
	// plain 200, never a 503.
	g.unquiesceSession("moving")
	if !g.quiesceSession("moving") {
		t.Fatal("re-quiesce refused")
	}
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req.Clone(context.Background()))
		if err != nil {
			done <- result{err: err}
			return
		}
		resp.Body.Close()
		done <- result{status: resp.StatusCode}
	}()
	// Let the delete reach the park queue, then lift the quiesce.
	deadline := time.Now().Add(2 * time.Second)
	for {
		g.mu.RLock()
		parked := g.parked["moving"]
		n := 0
		if parked != nil {
			n = parked.count
		}
		g.mu.RUnlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("delete never parked")
		}
		time.Sleep(2 * time.Millisecond)
	}
	g.unquiesceSession("moving")
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("parked delete after unquiesce: status %d, want 200", res.status)
	}
	if b1.reg.Len() != 0 {
		t.Fatal("session survived the delete")
	}
	if g.parkedWrites.Load() == 0 {
		t.Error("parked_writes counter never moved")
	}
}
