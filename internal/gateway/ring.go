// Package gateway is the horizontal scale-out layer: a thin, stateless
// router that consistent-hashes session names across a pool of backend
// provabs serve processes and forwards every /v1 verb — the NDJSON
// what-if, query and add-ingestion streams included, full-duplex and
// per-line-ack semantics preserved end to end — while health-checking the
// pool, aggregating GET /v1/stats across it, enforcing per-tenant resource
// limits, and rebalancing sessions between backends through the
// export/import primitive as *live migration*: quiesce writes, export,
// import at the new owner, cut over routing, delete at the old owner.
// Answers before and after a migration are bit-identical — the snapshot
// carries the compiled form, so the importing backend's Compiles counter
// stays 1.
package gateway

import (
	"hash/fnv"
	"sort"
)

// ringPoint is one virtual node on the hash circle.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring with virtual nodes. Each member is placed
// at vnodes pseudo-random points on a 64-bit circle; a key is owned by the
// member of the first point at or clockwise after the key's hash. Adding or
// removing one member therefore remaps only ~1/n of the key space, which is
// what keeps a pool change from migrating every session at once.
//
// Ring is not safe for concurrent use; the Gateway guards it with its own
// lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[string]bool
}

// NewRing returns an empty ring with the given virtual-node count per
// member (values below 1 fall back to 64, enough to spread a handful of
// backends to within a few percent of even).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hash64 is FNV-1a with a splitmix64 finalizer. FNV alone avalanches
// poorly on inputs differing in a byte or two — exactly what vnode suffixes
// and session-name counters look like — and clusters the ring badly; the
// finalizer scatters it. Cheap, dependency-free, and stable across
// processes (the routing decision must be reproducible by any gateway
// replica over the same pool).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s)) //nolint:errcheck // fnv never fails
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer (Vigna), a bijective avalanche mix.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// vnodeHash places member's i-th virtual node.
func vnodeHash(member string, i int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member)) //nolint:errcheck
	h.Write([]byte{'#', byte(i), byte(i >> 8)})
	return mix64(h.Sum64())
}

// Add places member on the ring. Reports false if it was already present.
func (r *Ring) Add(member string) bool {
	if r.members[member] {
		return false
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(member, i), member: member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return true
}

// Remove takes member off the ring. Reports false if it was not present.
func (r *Ring) Remove(member string) bool {
	if !r.members[member] {
		return false
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return true
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool { return r.members[member] }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the members, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key — the first virtual node at or after
// the key's hash, wrapping around. ok is false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}
