package gatewaychaos

// The pool-level chaos sweep: a real gateway over two real backends, each
// behind a seeded fault proxy injecting latency, resets, torn NDJSON
// chunks and whole-backend outage windows — while clients stream adds.
// The acceptance bar, checked after the storm with injection off:
//
//   1. zero lost acked writes — every add line whose ack reached the
//      client is present in the surviving session;
//   2. no invented writes — every polynomial present was either acked or
//      in doubt (sent to a leg that died before acking; adds are not
//      idempotent, so those may legitimately have landed);
//   3. bit-identical answers — a what-if through the gateway equals the
//      holding backend's own answer byte for byte.
//
// Clients follow the documented client contract: a 503 (breaker open,
// backend unhealthy, queue bound) means "not applied, retry"; anything
// that dies after the stream opened leaves its unacked tail in doubt and
// is NOT retried — retrying an in-doubt add could double-apply it.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"provabs/internal/gateway"
	"provabs/internal/provenance"
	"provabs/internal/registry"
	"provabs/internal/server"
)

func TestChaosGatewaySweep(t *testing.T) {
	seeds := []int64{1, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSweep(t, seed)
		})
	}
}

// chaosBackend is one real backend plus the chaos proxy fronting it.
type chaosBackend struct {
	ts    *httptest.Server
	reg   *registry.Registry
	proxy *Proxy
}

func seedSetB64(t *testing.T) string {
	t.Helper()
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("seed", provenance.MustParse(vb, "220.8·p1·m1 + 240·p1·m3"))
	var buf bytes.Buffer
	if err := provenance.Encode(&buf, set); err != nil {
		t.Fatal(err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes())
}

func runChaosSweep(t *testing.T, seed int64) {
	cfg := Config{
		Seed:       seed,
		LatencyP:   0.10,
		MaxLatency: 5 * time.Millisecond,
		ResetP:     0.01,
		TearP:      0.01,
	}
	backends := make([]*chaosBackend, 2)
	addrs := make([]string, 2)
	for i := range backends {
		reg := registry.New()
		ts := httptest.NewServer(server.New(reg).Handler())
		t.Cleanup(ts.Close)
		pcfg := cfg
		pcfg.Seed = seed + int64(i)*7919
		proxy, err := New(strings.TrimPrefix(ts.URL, "http://"), pcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(proxy.Close)
		backends[i] = &chaosBackend{ts: ts, reg: reg, proxy: proxy}
		addrs[i] = proxy.Addr()
	}

	g, err := gateway.New(addrs, gateway.Options{
		ProbeInterval:  150 * time.Millisecond,
		ProbeTimeout:   100 * time.Millisecond,
		FailThreshold:  2,
		QuiesceTimeout: 3 * time.Second,
		Retry: gateway.RetryPolicy{
			MaxAttempts:       3,
			AttemptTimeout:    2 * time.Second,
			BackoffBase:       2 * time.Millisecond,
			BackoffMax:        20 * time.Millisecond,
			RetryBudgetPerSec: 1000,
			RetryBudgetBurst:  1000,
		},
		BreakerThreshold:   4,
		BreakerCooldown:    50 * time.Millisecond,
		BreakerCooldownMax: 500 * time.Millisecond,
		Logger:             log.New(io.Discard, "", 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Stop)
	gts := httptest.NewServer(g.Handler())
	t.Cleanup(gts.Close)

	deadline := time.Now().Add(25 * time.Second)

	// Create the sessions, retrying through outage windows.
	const nSessions = 3
	seedB64 := seedSetB64(t)
	for si := 0; si < nSessions; si++ {
		name := fmt.Sprintf("chaos-%d", si)
		body, _ := json.Marshal(map[string]string{"name": name, "provenance_b64": seedB64})
		for {
			resp, err := http.Post(gts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
			if err == nil {
				status := resp.StatusCode
				resp.Body.Close()
				if status == http.StatusCreated || status == http.StatusConflict {
					break
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("could not create %s before the deadline", name)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// The outage scheduler: seeded kill/revive windows, one backend at a
	// time so the pool always has somewhere to fail over to.
	schedRng := rand.New(rand.NewPCG(uint64(seed), 0xc0ffee))
	schedStop := make(chan struct{})
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		for {
			select {
			case <-schedStop:
				return
			case <-time.After(time.Duration(200+schedRng.Int64N(300)) * time.Millisecond):
			}
			victim := backends[schedRng.IntN(len(backends))].proxy
			victim.Kill()
			select {
			case <-schedStop:
				victim.Revive()
				return
			case <-time.After(time.Duration(100+schedRng.Int64N(200)) * time.Millisecond):
			}
			victim.Revive()
		}
	}()

	// Writers: each session streams adds in batches of 5 under the client
	// contract. acked = tags whose ack arrived; maybe = tags sent to a leg
	// that died unacked.
	type outcome struct {
		acked map[string]bool
		maybe map[string]bool
	}
	outcomes := make([]outcome, nSessions)
	var wg sync.WaitGroup
	for si := 0; si < nSessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			name := fmt.Sprintf("chaos-%d", si)
			out := outcome{acked: map[string]bool{}, maybe: map[string]bool{}}
			// Paced so the write load spans several kill/revive windows —
			// 12 batches × 40ms floor ≈ half a second of sustained writes
			// plus whatever the outages add in 503-retry loops.
			const total, batch = 60, 5
			for next := 0; next < total && time.Now().Before(deadline); {
				n := batch
				if next+n > total {
					n = total - next
				}
				var sb strings.Builder
				tags := make([]string, n)
				for j := 0; j < n; j++ {
					tags[j] = fmt.Sprintf("s%d-l%03d", si, next+j)
					fmt.Fprintf(&sb, `{"tag":%q,"poly":"%d*p1*m1 + %d*p1*m3"}`+"\n",
						tags[j], 3+next+j+100*si, 5+2*(next+j))
				}
				ackedN, definitelyNot := runAddBatch(gts.URL, name, sb.String(), n)
				for j := 0; j < ackedN; j++ {
					out.acked[tags[j]] = true
				}
				if definitelyNot {
					// 503: the gateway refused before forwarding anything.
					// Same batch again after a breath.
					time.Sleep(60 * time.Millisecond)
					continue
				}
				for j := ackedN; j < n; j++ {
					out.maybe[tags[j]] = true
				}
				next += n
				time.Sleep(40 * time.Millisecond)
			}
			outcomes[si] = out
		}(si)
	}
	wg.Wait()
	close(schedStop)
	<-schedDone

	// Storm over: faithful transport, revive everything, let the prober
	// readmit and a final sweep settle placements and retire orphans.
	for _, cb := range backends {
		cb.proxy.Revive()
		cb.proxy.SetChaos(false)
	}
	// Settled means: a full Rebalance sweep succeeds AND every session has
	// exactly one holding backend — a failed mid-storm migration can leave
	// an orphan copy behind, and the sweep is what retires it.
	directBySession := make([]map[string]string, nSessions)
	settle := time.Now().Add(15 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := g.Rebalance(ctx)
		cancel()
		if err == nil {
			holders := 0
			for si := 0; si < nSessions; si++ {
				directBySession[si] = nil
				name := fmt.Sprintf("chaos-%d", si)
				for _, cb := range backends {
					if m, ok := tryWhatifAnswers(cb.ts.URL, name); ok {
						directBySession[si] = m
						holders++
					}
				}
			}
			if holders == nSessions {
				break
			}
			err = fmt.Errorf("%d holder(s) for %d sessions", holders, nSessions)
		}
		if time.Now().After(settle) {
			t.Fatalf("pool never settled after the storm: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Verification per session.
	for si := 0; si < nSessions; si++ {
		name := fmt.Sprintf("chaos-%d", si)
		out := outcomes[si]
		viaGateway := whatifAnswers(t, gts.URL, name)

		for tag := range out.acked {
			if _, ok := viaGateway[tag]; !ok {
				t.Errorf("%s: ACKED add %q is missing — an acknowledged write was lost", name, tag)
			}
		}
		for tag := range viaGateway {
			if tag == "seed" || out.acked[tag] || out.maybe[tag] {
				continue
			}
			t.Errorf("%s: tag %q present but never sent — an invented write", name, tag)
		}

		// Bit-identity: the holding backend's own answer, compared as raw
		// JSON — same bytes means same float bits.
		direct := directBySession[si]
		if len(direct) != len(viaGateway) {
			t.Errorf("%s: gateway sees %d tags, holder has %d", name, len(viaGateway), len(direct))
		}
		for tag, raw := range viaGateway {
			if draw, ok := direct[tag]; !ok || draw != raw {
				t.Errorf("%s: tag %q = %s via gateway, %s direct — the proxy changed the bits", name, tag, raw, draw)
			}
		}
		if testing.Verbose() {
			t.Logf("%s: %d acked, %d in doubt, %d tags live", name, len(out.acked), len(out.maybe), len(viaGateway)-1)
		}
	}
}

// runAddBatch posts one NDJSON add batch through the gateway and counts
// consecutive acks from the response. definitelyNot reports the one case
// the contract lets a client retry verbatim: a 503, issued before any line
// was forwarded to a backend.
func runAddBatch(base, name, body string, n int) (acked int, definitelyNot bool) {
	resp, err := http.Post(base+"/v1/sessions/"+name+"/add", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		return 0, false // transport death mid-request: everything in doubt
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return 0, true
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return 0, false
	}
	scan := bufio.NewScanner(resp.Body)
	for scan.Scan() {
		var ack struct {
			Index *int   `json:"index"`
			Error string `json:"error,omitempty"`
		}
		if err := json.Unmarshal(scan.Bytes(), &ack); err != nil || ack.Index == nil || ack.Error != "" {
			return acked, false // in-band terminal: the tail is in doubt
		}
		if *ack.Index != acked {
			return acked, false
		}
		acked++
	}
	return acked, false
}

// whatifAnswers fetches a what-if through base and maps tag → raw JSON
// value, retrying briefly (the pool may still be reprobing).
func whatifAnswers(t *testing.T, base, name string) map[string]string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m, ok := tryWhatifAnswers(base, name); ok {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("whatif %s via %s never answered", name, base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func tryWhatifAnswers(base, name string) (map[string]string, bool) {
	body := `{"assign":{"p1":0.5,"m1":1,"m3":1}}`
	resp, err := http.Post(base+"/v1/sessions/"+name+"/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		return nil, false
	}
	var out struct {
		Answers []struct {
			Tag   string          `json:"tag"`
			Value json.RawMessage `json:"value"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, false
	}
	m := make(map[string]string, len(out.Answers))
	for _, a := range out.Answers {
		m[a.Tag] = string(a.Value)
	}
	return m, true
}
