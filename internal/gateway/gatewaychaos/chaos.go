// Package gatewaychaos is a fault-injecting TCP layer for pool-level
// resilience tests. A Proxy sits between the gateway and one backend and
// corrupts the transport the way real networks and dying processes do:
// added latency, connection resets mid-conversation, torn writes (a chunk
// truncated mid-NDJSON-line, then the connection killed), and whole-backend
// outage windows (Kill/Revive). All randomness comes from a caller-supplied
// seed, so a failing schedule replays.
//
// The proxy is deliberately protocol-blind — it tears TCP chunks, not JSON
// frames — because that is what the gateway's retry/breaker/journal layers
// must survive: the fault injector must not be polite about line
// boundaries when the network isn't.
package gatewaychaos

import (
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Config tunes one Proxy's fault mix. Probabilities are per forwarded
// chunk, in [0, 1].
type Config struct {
	Seed       int64
	LatencyP   float64       // delay this chunk
	MaxLatency time.Duration // uniform in (0, MaxLatency]
	ResetP     float64       // drop the connection before the chunk
	TearP      float64       // forward half the chunk, then drop
}

// Proxy is one seeded chaos proxy in front of a backend address.
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	rng    *rand.Rand
	cfg    Config
	chaos  bool // injection enabled
	killed bool // outage window: refuse + reset everything
	closed bool
	conns  map[net.Conn]struct{}
}

// New starts a chaos proxy forwarding to target (host:port). Injection
// starts enabled.
func New(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		rng:    rand.New(rand.NewPCG(uint64(cfg.Seed), 0x9e3779b97f4a7c15)),
		cfg:    cfg,
		chaos:  true,
		conns:  make(map[net.Conn]struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address the gateway should use as the backend.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetChaos toggles fault injection; with it off the proxy forwards
// faithfully (the verification phase).
func (p *Proxy) SetChaos(on bool) {
	p.mu.Lock()
	p.chaos = on
	p.mu.Unlock()
}

// Kill opens an outage window: every live connection is reset and new ones
// are accepted and immediately closed — the backend process is "dead".
func (p *Proxy) Kill() {
	p.mu.Lock()
	p.killed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Revive ends the outage window.
func (p *Proxy) Revive() {
	p.mu.Lock()
	p.killed = false
	p.mu.Unlock()
}

// Close shuts the proxy down.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed || p.killed {
			p.mu.Unlock()
			conn.Close()
			continue
		}
		p.mu.Unlock()
		go p.serve(conn)
	}
}

// track registers a live connection for Kill/Close teardown; the returned
// func unregisters it.
func (p *Proxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

// fault is one chunk's fate, decided under the seeded rng.
type fault struct {
	delay time.Duration
	reset bool
	tear  bool
}

func (p *Proxy) roll() fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.chaos {
		return fault{}
	}
	var f fault
	r := p.rng.Float64()
	switch {
	case r < p.cfg.ResetP:
		f.reset = true
	case r < p.cfg.ResetP+p.cfg.TearP:
		f.tear = true
	}
	if p.cfg.MaxLatency > 0 && p.rng.Float64() < p.cfg.LatencyP {
		f.delay = time.Duration(1 + p.rng.Int64N(int64(p.cfg.MaxLatency)))
	}
	return f
}

func (p *Proxy) serve(client net.Conn) {
	defer client.Close()
	untrack := p.track(client)
	defer untrack()

	backend, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer backend.Close()
	untrackB := p.track(backend)
	defer untrackB()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(backend, client)
		// Half-closing keeps clean EOFs clean (an add stream's half-close
		// must reach the backend as EOF, not a reset).
		if tcp, ok := backend.(*net.TCPConn); ok {
			tcp.CloseWrite() //nolint:errcheck
		}
	}()
	go func() {
		defer wg.Done()
		p.pump(client, backend)
		if tcp, ok := client.(*net.TCPConn); ok {
			tcp.CloseWrite() //nolint:errcheck
		}
	}()
	wg.Wait()
}

// pump copies src→dst chunk by chunk, applying the seeded fault mix. A
// reset or tear closes both directions hard.
func (p *Proxy) pump(dst, src net.Conn) {
	buf := make([]byte, 16*1024)
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			f := p.roll()
			if f.delay > 0 {
				time.Sleep(f.delay)
			}
			if f.reset {
				p.hardClose(dst, src)
				return
			}
			if f.tear {
				dst.Write(buf[:n/2]) //nolint:errcheck // dying anyway
				p.hardClose(dst, src)
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				dst.Close()
			}
			return
		}
	}
}

// hardClose resets both sides of the relayed conversation.
func (p *Proxy) hardClose(a, b net.Conn) {
	if tcp, ok := a.(*net.TCPConn); ok {
		tcp.SetLinger(0) //nolint:errcheck // RST, not FIN: a crash, not a goodbye
	}
	if tcp, ok := b.(*net.TCPConn); ok {
		tcp.SetLinger(0) //nolint:errcheck
	}
	a.Close()
	b.Close()
}
