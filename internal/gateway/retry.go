package gateway

// Retry policy for gateway→backend round trips. Three rules keep retries
// from making an outage worse:
//
//   - Only idempotent verbs retry. Reads (session info, list, stats),
//     read-only POSTs (whatif, query, export) and the control-plane's
//     list/export are safe to repeat; create, add, compress and the
//     client-facing delete are not — a lost response leaves their effect
//     in doubt, and repeating them double-applies. Those get exactly one
//     attempt and surface the error.
//
//   - Retries are budgeted per backend. A token bucket refilled at
//     RetryBudgetPerSec caps how much extra load retry storms may add; an
//     empty budget turns retries off rather than amplifying a brown-out.
//
//   - Backoff is decorrelated jitter (min(cap, rand(base, 3·prev))), so
//     synchronized clients spread out instead of re-converging on the
//     struggling backend in waves.
//
// Every attempt is bounded by AttemptTimeout (streams are exempt — they
// are long-lived by design and never retried), so one black-holed TCP
// connection cannot stall a router worker indefinitely. The breaker is
// consulted before every attempt: an open breaker fails fast with the
// remaining cooldown as Retry-After.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// RetryPolicy tunes gateway→backend retries. The zero value is usable;
// fillDefaults supplies the documented defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries for an idempotent call,
	// the first included (default 3; 1 disables retries).
	MaxAttempts int
	// AttemptTimeout bounds each one-shot attempt end to end, body read
	// included (default 30s). Streams are not subject to it.
	AttemptTimeout time.Duration
	// BackoffBase is the first retry's minimum sleep (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the decorrelated-jitter backoff (default 2s).
	BackoffMax time.Duration
	// RetryBudgetPerSec refills each backend's retry budget (default 10
	// retries/sec, burst 20). An exhausted budget fails over to the
	// single-attempt path instead of amplifying load.
	RetryBudgetPerSec float64
	// RetryBudgetBurst is the budget bucket's capacity (default 20).
	RetryBudgetBurst float64
}

func (p *RetryPolicy) fillDefaults() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.AttemptTimeout <= 0 {
		p.AttemptTimeout = 30 * time.Second
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = 50 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.RetryBudgetPerSec <= 0 {
		p.RetryBudgetPerSec = 10
	}
	if p.RetryBudgetBurst <= 0 {
		p.RetryBudgetBurst = 20
	}
}

// errBreakerOpen is a fail-fast rejection carrying the remaining cooldown
// for Retry-After derivation.
type errBreakerOpen struct {
	addr       string
	retryAfter time.Duration
}

func (e *errBreakerOpen) Error() string {
	return fmt.Sprintf("backend %s circuit breaker is open; retry shortly", e.addr)
}

// bufferedResponse is a fully read backend response — the shape retries
// require, since a retry must never fire after response bytes reached the
// client.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
}

// write replays the buffered response onto a client ResponseWriter.
func (br *bufferedResponse) write(w http.ResponseWriter) {
	copyHeaders(w.Header(), br.header)
	w.WriteHeader(br.status)
	w.Write(br.body) //nolint:errcheck // client went away; nothing to do
}

// roundTrip performs one buffered gateway→backend call under the retry
// policy. body may be nil. Idempotent calls retry transport failures with
// backoff while the per-backend budget lasts; everything else gets one
// attempt. The breaker gates every attempt.
func (g *Gateway) roundTrip(ctx context.Context, b *backend, method, url string, header http.Header, body []byte, idempotent bool) (*bufferedResponse, error) {
	pol := g.opts.Retry
	backoff := pol.BackoffBase
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if ok, wait := b.breaker.allow(time.Now()); !ok {
			// Fail fast; if an earlier attempt tripped the breaker mid-loop,
			// surface that attempt's error rather than the breaker's.
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, &errBreakerOpen{addr: b.addr, retryAfter: wait}
		}
		resp, err := g.attemptOnce(ctx, b, method, url, header, body, pol.AttemptTimeout)
		if err == nil {
			b.breaker.onSuccess()
			return resp, nil
		}
		lastErr = err
		g.suspect(b)
		if !idempotent || ctx.Err() != nil {
			break
		}
		if attempt+1 >= pol.MaxAttempts {
			break
		}
		if allowed, _ := b.retryBudget.allow(1, time.Now()); !allowed {
			g.opts.Logger.Printf("gateway: retry budget for %s exhausted; failing %s %s without retry", b.addr, method, url)
			break
		}
		g.retries.Add(1)
		backoff = decorrelatedJitter(pol.BackoffBase, backoff, pol.BackoffMax)
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, lastErr
		}
	}
	return nil, lastErr
}

// attemptOnce is one bounded request + full body read.
func (g *Gateway) attemptOnce(ctx context.Context, b *backend, method, url string, header http.Header, body []byte, timeout time.Duration) (*bufferedResponse, error) {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, url, reader)
	if err != nil {
		return nil, err
	}
	if header != nil {
		copyHeaders(req.Header, header)
	}
	if body != nil {
		req.ContentLength = int64(len(body))
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("backend %s: %w", b.addr, err)
	}
	defer resp.Body.Close()
	// The body read happens inside the attempt window: a backend that
	// answers headers then stalls is as failed as one that never dials.
	payload, err := io.ReadAll(io.LimitReader(resp.Body, g.opts.MaxCreateBytes+1))
	if err != nil {
		return nil, fmt.Errorf("backend %s: reading response: %w", b.addr, err)
	}
	if int64(len(payload)) > g.opts.MaxCreateBytes {
		return nil, fmt.Errorf("backend %s: response exceeds the %d-byte proxy buffer", b.addr, g.opts.MaxCreateBytes)
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header.Clone(), body: payload}, nil
}

// decorrelatedJitter computes the next sleep: uniform in [base, 3·prev],
// capped. Successive values decorrelate concurrent retriers instead of
// marching them in lockstep.
func decorrelatedJitter(base, prev, max time.Duration) time.Duration {
	hi := 3 * prev
	if hi <= base {
		hi = base + 1
	}
	d := base + time.Duration(rand.Int64N(int64(hi-base)))
	if d > max {
		d = max
	}
	return d
}

// errorIsTimeout reports whether err is a deadline-style failure (used by
// tests and logs; the retry loop treats every transport error the same).
func errorIsTimeout(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}
