package gateway

import (
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"provabs/internal/durable"
	"provabs/internal/durable/faultfs"
)

func discardLogger() *log.Logger { return log.New(io.Discard, "", 0) }

// newStatefulGateway stands a gateway whose placement/quota journal lives
// on the given (fault-injectable) filesystem.
func newStatefulGateway(t *testing.T, fsys durable.FS, opts Options, backends ...*poolBackend) (*Gateway, *httptest.Server) {
	t.Helper()
	opts.StatePath = "gw/state.journal"
	opts.StateFS = fsys
	return newTestGateway(t, opts, backends...)
}

// TestGatewayStateRestartRecovery is the durable-state acceptance test: a
// gateway restart must recover both halves of its bookkeeping — the
// placement table (sessions route to their holders without a rebalance
// sweep) and the tenant quota counts (a tenant at its cap stays at its
// cap). Token buckets are deliberately NOT durable: a restart refills them
// to burst. Both semantics are pinned here.
func TestGatewayStateRestartRecovery(t *testing.T) {
	b1 := newPoolBackend(t)
	b2 := newPoolBackend(t)
	ffs := faultfs.New()
	limits := TenantLimits{MaxSessions: 2, ScenariosPerSec: 0.1, Burst: 2}

	g1, gts1 := newStatefulGateway(t, ffs, Options{Limits: limits}, b1, b2)
	for _, name := range []string{"acme-a", "acme-b"} {
		if resp := createSession(t, gts1.URL, name, "acme"); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, resp.StatusCode)
		}
	}
	// acme is at its 2-session cap.
	if resp := createSession(t, gts1.URL, "acme-c", "acme"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create past the cap: status %d, want 429", resp.StatusCode)
	}
	// Drain the scenario bucket (burst 2, refill ~none within the test).
	assign := map[string]float64{"p1": 1, "m1": 1, "m3": 1, "f1": 1}
	want := whatifValues(t, gts1.URL, "acme-a", assign)
	whatifValues(t, gts1.URL, "acme-a", assign)
	resp, err := http.Post(gts1.URL+"/v1/sessions/acme-a/whatif", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained bucket: status %d, want 429", resp.StatusCode)
	}
	placementsBefore := g1.placementsSnapshot()
	g1.Stop()
	gts1.Close()

	// Restart: same journal, same pool.
	g2, gts2 := newStatefulGateway(t, ffs, Options{Limits: limits}, b1, b2)

	// Placements recovered verbatim — no Rebalance ran.
	after := g2.placementsSnapshot()
	if len(after) != len(placementsBefore) {
		t.Fatalf("recovered %d placements, want %d", len(after), len(placementsBefore))
	}
	for name, addr := range placementsBefore {
		if after[name] != addr {
			t.Fatalf("placement %q recovered as %q, want %q", name, after[name], addr)
		}
	}
	// Routing works immediately, bit-identically — and this whatif already
	// pins the bucket-reset semantics: the pre-restart bucket was dry, so a
	// persisted bucket would answer 429 here.
	got := whatifValues(t, gts2.URL, "acme-a", assign)
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("post-restart answer %v, want %v", got, want)
	}

	// Quota counts survived: acme is still at its cap...
	if resp := createSession(t, gts2.URL, "acme-c", "acme"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create past the recovered cap: status %d, want 429", resp.StatusCode)
	}
	// ...and releasing a recovered session frees the right slot.
	req, err := http.NewRequest(http.MethodDelete, gts2.URL+"/v1/sessions/acme-b", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete acme-b: status %d", dresp.StatusCode)
	}
	if resp := createSession(t, gts2.URL, "acme-c", "acme"); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after freeing a slot: status %d, want 201", resp.StatusCode)
	}

	// Token buckets reset to exactly burst, no more: the second post-restart
	// whatif spends the last fresh token, the third is refused again.
	whatifValues(t, gts2.URL, "acme-a", assign)
	resp, err = http.Post(gts2.URL+"/v1/sessions/acme-a/whatif", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third post-restart whatif: status %d, want 429 (bucket refills to burst, not beyond)", resp.StatusCode)
	}
}

// TestStateStoreCrashSweep drives the placement journal through a step-
// budgeted filesystem: for every fault budget k, apply a fixed op sequence,
// crash (unsynced state vanishes), recover — and require the recovered
// placements to equal exactly the state after the last record whose fsync
// completed. No budget may surface interior corruption.
func TestStateStoreCrashSweep(t *testing.T) {
	type op struct {
		rec stateRecord
	}
	ops := []op{
		{stateRecord{Op: "place", Name: "s1", Backend: "a:1", Tenant: "t1"}},
		{stateRecord{Op: "place", Name: "s2", Backend: "a:1", Tenant: "t2"}},
		{stateRecord{Op: "place", Name: "s1", Backend: "b:2", Tenant: "t1"}}, // migration cutover
		{stateRecord{Op: "unplace", Name: "s2"}},
		{stateRecord{Op: "place", Name: "s3", Backend: "b:2"}}, // adopted, no tenant
	}
	// stateAfter folds the first n ops into the expected entry map.
	stateAfter := func(n int) map[string]placementEntry {
		m := map[string]placementEntry{}
		for _, o := range ops[:n] {
			switch o.rec.Op {
			case "place":
				m[o.rec.Name] = placementEntry{Name: o.rec.Name, Backend: o.rec.Backend, Tenant: o.rec.Tenant}
			case "unplace":
				delete(m, o.rec.Name)
			}
		}
		return m
	}

	completedClean := false
	for k := int64(1); k < 200 && !completedClean; k++ {
		ffs := faultfs.New()
		st, recovered, err := openStateStore(ffs, "gw/state.journal", discardLogger())
		if err != nil || len(recovered) != 0 {
			t.Fatalf("budget %d: clean open: %v (recovered %d)", k, err, len(recovered))
		}
		ffs.StopAfter(k)
		durableOps := 0
		for i, o := range ops {
			st.record(o.rec)
			if st.healthy() {
				// record fsyncs before returning; a healthy store means op i
				// is durably on disk.
				durableOps = i + 1
			}
		}
		completedClean = st.healthy()
		st.close()
		ffs.Crash()

		st2, rec2, err := openStateStore(ffs, "gw/state.journal", discardLogger())
		if err != nil {
			t.Fatalf("budget %d: recovery refused: %v", k, err)
		}
		want := stateAfter(durableOps)
		if len(rec2) != len(want) {
			t.Fatalf("budget %d: recovered %d placements, want %d (durable ops %d)", k, len(rec2), len(want), durableOps)
		}
		for name, e := range want {
			if rec2[name] != e {
				t.Fatalf("budget %d: placement %q = %+v, want %+v", k, name, rec2[name], e)
			}
		}
		st2.close()
	}
	if !completedClean {
		t.Fatal("no fault budget let the full op sequence complete; sweep never converged")
	}
}

// TestStateStoreTornTail proves a half-written final record (the expected
// shape of a crash mid-append) is truncated at open with the prior records
// intact, and the store keeps appending afterwards.
func TestStateStoreTornTail(t *testing.T) {
	ffs := faultfs.New()
	path := "gw/state.journal"
	st, _, err := openStateStore(ffs, path, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	st.record(stateRecord{Op: "place", Name: "s1", Backend: "a:1", Tenant: "t1"})
	st.record(stateRecord{Op: "place", Name: "s2", Backend: "b:2"})
	st.close()

	// Tear the tail: append half a frame (header + partial payload).
	frame := durable.AppendFrame(nil, []byte(`{"op":"place","name":"s3","backend":"c:3"}`))
	f, err := ffs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, recovered, err := openStateStore(ffs, path, discardLogger())
	if err != nil {
		t.Fatalf("torn tail must recover, got: %v", err)
	}
	if len(recovered) != 2 || recovered["s1"].Backend != "a:1" || recovered["s2"].Backend != "b:2" {
		t.Fatalf("recovered %+v, want s1/s2 intact", recovered)
	}
	// The store still persists after the repair.
	st2.record(stateRecord{Op: "place", Name: "s3", Backend: "c:3"})
	if !st2.healthy() {
		t.Fatal("store broken after torn-tail repair")
	}
	st2.close()

	st3, rec3, err := openStateStore(ffs, path, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	defer st3.close()
	if len(rec3) != 3 || rec3["s3"].Backend != "c:3" {
		t.Fatalf("after repair + append: recovered %+v, want 3 placements", rec3)
	}
}

// TestStateStoreInteriorCorruptionRefused proves a flipped bit in a
// non-final record refuses recovery with ErrCorrupt rather than silently
// dropping placements — the operator decides, not the scanner.
func TestStateStoreInteriorCorruptionRefused(t *testing.T) {
	ffs := faultfs.New()
	path := "gw/state.journal"
	st, _, err := openStateStore(ffs, path, discardLogger())
	if err != nil {
		t.Fatal(err)
	}
	st.record(stateRecord{Op: "place", Name: "s1", Backend: "a:1", Tenant: "t1"})
	st.record(stateRecord{Op: "place", Name: "s2", Backend: "b:2", Tenant: "t2"})
	st.record(stateRecord{Op: "place", Name: "s3", Backend: "c:3"})
	st.close()

	// Flip a payload bit inside the FIRST frame (offset 8 = past the
	// u32 len + u32 CRC header): interior corruption, not a torn tail.
	if err := ffs.FlipBit(path, 10, 3); err != nil {
		t.Fatal(err)
	}
	_, _, err = openStateStore(ffs, path, discardLogger())
	if err == nil {
		t.Fatal("interior corruption recovered silently; must refuse")
	}
	if !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestGatewayStateStickyBroken proves a persistence failure after open
// degrades, not kills: the store goes broken, requests keep succeeding on
// in-memory state, and the admin surface reports state_durable=false.
func TestGatewayStateStickyBroken(t *testing.T) {
	b1 := newPoolBackend(t)
	ffs := faultfs.New()
	g, gts := newStatefulGateway(t, ffs, Options{}, b1)

	if resp := createSession(t, gts.URL, "alpha", ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	// Exhaust the fs: every further journal write fails.
	ffs.StopAfter(0)
	if resp := createSession(t, gts.URL, "beta", ""); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create with a broken journal must still succeed, got %d", resp.StatusCode)
	}
	if g.state.healthy() {
		t.Fatal("state store still healthy after a failed write")
	}
	// Routing still works from memory.
	assign := map[string]float64{"p1": 1, "m1": 1, "m3": 1, "f1": 1}
	if vals := whatifValues(t, gts.URL, "beta", assign); len(vals) == 0 {
		t.Fatal("no answer for the in-memory-only session")
	}
}
