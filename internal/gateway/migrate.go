package gateway

// Live migration: moving a session between backends while the pool keeps
// serving, built on the export/import primitive (POST …/export → create
// from snapshot_b64, pinned bit-identical per carrier with Compiles == 1
// on the importer). The sequence per session:
//
//  1. quiesce — mark the session moving; new write requests (add streams,
//     compress, delete) answer 503 + Retry-After, reads keep flowing to
//     the current holder;
//  2. wait for in-flight write streams to finish (bounded by
//     QuiesceTimeout) — every acknowledged add is applied under the
//     engine's lock before its ack, so once the writers are gone the
//     export below contains all of them: acked ⊆ exported;
//  3. export at the holder, import at the new owner;
//  4. cut over routing (the placement table), so the next request lands
//     on the new owner;
//  5. delete at the old holder and lift the quiesce.
//
// A failure before the cutover leaves the session untouched on the old
// holder (the import is deleted best-effort); a failure after the cutover
// leaves at worst an orphaned copy on the old holder, which the next
// rebalance sweep retires. Reads are never interrupted; writes see a
// bounded 503 window and a Retry-After they can honor.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// Rebalance sweeps the pool once: list each healthy backend's sessions,
// heal the placement table, and live-migrate every session whose ring
// owner is not its holder. Returns how many sessions moved. Sweeps are
// serialized; concurrent callers queue.
func (g *Gateway) Rebalance(ctx context.Context) (moved int, err error) {
	g.rebalanceMu.Lock()
	defer g.rebalanceMu.Unlock()

	type holderSession struct{ name, holder string }
	var all []holderSession
	seen := map[string][]string{} // session -> holders (dup = orphan from a past cutover)
	g.mu.RLock()
	backends := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		backends = append(backends, b)
	}
	g.mu.RUnlock()
	sort.Slice(backends, func(i, j int) bool { return backends[i].addr < backends[j].addr })
	for _, b := range backends {
		if !b.isHealthy() {
			continue
		}
		names, lerr := g.listSessions(ctx, b)
		if lerr != nil {
			// A backend that cannot be listed cannot be rebalanced safely;
			// report and let the caller retry.
			return moved, fmt.Errorf("list sessions on %s: %w", b.addr, lerr)
		}
		for _, n := range names {
			all = append(all, holderSession{name: n, holder: b.addr})
			seen[n] = append(seen[n], b.addr)
		}
	}

	// Heal the placement table: a session the gateway did not place (made
	// directly against a backend, or surviving a gateway restart) routes to
	// its holder from here on. When two backends hold the same name, the
	// recorded placement (the cutover winner) is authoritative and the
	// other copy is an orphan — retire it.
	g.mu.Lock()
	for name, holders := range seen {
		if cur, ok := g.placements[name]; ok && contains(holders, cur) {
			continue
		}
		g.placements[name] = holders[0]
	}
	placed := make(map[string]string, len(g.placements))
	for k, v := range g.placements {
		placed[k] = v
	}
	g.mu.Unlock()
	for name, holders := range seen {
		for _, h := range holders {
			if len(holders) > 1 && h != placed[name] {
				g.opts.Logger.Printf("gateway: retiring orphaned copy of %q on %s", name, h)
				g.deleteSession(ctx, g.lookup(h), name) //nolint:errcheck // best effort; next sweep retries
			}
		}
	}

	var firstErr error
	for _, hs := range all {
		if hs.holder != placed[hs.name] {
			continue // orphan copy, handled above
		}
		g.mu.RLock()
		owner, ok := g.ring.Owner(hs.name)
		g.mu.RUnlock()
		if !ok || owner == hs.holder {
			continue
		}
		if err := g.moveSession(ctx, hs.name, hs.holder, owner); err != nil {
			g.opts.Logger.Printf("gateway: migrate %q %s -> %s: %v", hs.name, hs.holder, owner, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("migrate %q: %w", hs.name, err)
			}
			continue
		}
		moved++
	}
	return moved, firstErr
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// moveSession live-migrates one session from holder to owner.
func (g *Gateway) moveSession(ctx context.Context, name, holder, owner string) error {
	src, dst := g.lookup(holder), g.lookup(owner)
	if src == nil || dst == nil {
		return fmt.Errorf("pool changed under the migration")
	}
	if !dst.isHealthy() {
		return fmt.Errorf("destination %s is unhealthy", owner)
	}

	// Quiesce: writes start answering 503 + Retry-After now.
	g.mu.Lock()
	if g.moving[name] {
		g.mu.Unlock()
		return fmt.Errorf("already migrating")
	}
	g.moving[name] = true
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.moving, name)
		g.mu.Unlock()
	}()

	// Wait out in-flight write streams; past the deadline the migration
	// aborts rather than strand a writer's acks.
	deadline := time.Now().Add(g.opts.QuiesceTimeout)
	for {
		g.mu.RLock()
		writers := g.writers[name]
		g.mu.RUnlock()
		if writers == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session still has %d write stream(s) after %v", writers, g.opts.QuiesceTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}

	snapshot, err := g.exportSession(ctx, src, name)
	if err != nil {
		return fmt.Errorf("export from %s: %w", holder, err)
	}
	if err := g.importSession(ctx, dst, name, snapshot); err != nil {
		return fmt.Errorf("import at %s: %w", owner, err)
	}

	// Cutover: from here every new request routes to the new owner.
	g.mu.Lock()
	g.placements[name] = owner
	g.mu.Unlock()
	g.migrations.Add(1)

	if err := g.deleteSession(ctx, src, name); err != nil {
		// The authoritative copy moved; the old one is an orphan the next
		// sweep retires. Not a migration failure.
		g.opts.Logger.Printf("gateway: delete migrated %q on %s: %v", name, holder, err)
	}
	g.opts.Logger.Printf("gateway: migrated session %q %s -> %s (%d bytes)", name, holder, owner, len(snapshot))
	return nil
}

// listSessions returns the session names a backend holds.
func (g *Gateway) listSessions(ctx context.Context, b *backend) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.base+"/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var lr struct {
		Sessions []struct {
			Name string `json:"name"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(lr.Sessions))
	for _, s := range lr.Sessions {
		names = append(names, s.Name)
	}
	return names, nil
}

// exportSession pulls a session's snapshot bytes off its holder.
func (g *Gateway) exportSession(ctx context.Context, b *backend, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/sessions/"+name+"/export", nil)
	if err != nil {
		return nil, err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// importSession creates the session at its new owner from snapshot bytes.
// The importing backend validates checksums and restores without
// recompiling, so its Compiles counter is 1 and answers are bit-identical
// to the exporter's.
func (g *Gateway) importSession(ctx context.Context, b *backend, name string, snapshot []byte) error {
	body, err := json.Marshal(map[string]string{
		"name":         name,
		"snapshot_b64": base64.StdEncoding.EncodeToString(snapshot),
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	return nil
}

// deleteSession removes a session from a backend.
func (g *Gateway) deleteSession(ctx context.Context, b *backend, name string) error {
	if b == nil {
		return fmt.Errorf("backend gone")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, b.base+"/v1/sessions/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}
