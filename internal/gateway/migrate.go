package gateway

// Live migration: moving a session between backends while the pool keeps
// serving, built on the export/import primitive (POST …/export → create
// from snapshot_b64, pinned bit-identical per carrier with Compiles == 1
// on the importer). The sequence per session:
//
//  1. quiesce — mark the session moving; new one-shot writes (compress,
//     delete) park on a bounded queue, new add streams start journaling,
//     reads keep flowing to the current holder;
//  2. wait for in-flight one-shot writes to finish and detach the live
//     add streams (bounded by QuiesceTimeout) — each detach half-closes
//     its backend leg and requires every sent line's ack, so the export
//     below contains every acknowledged add: acked ⊆ exported. Lines that
//     arrive during the window pile up in the per-stream journals;
//  3. export at the holder, import at the new owner;
//  4. cut over routing (the placement table, durably when a state journal
//     is configured), so the next request lands on the new owner;
//  5. lift the quiesce — parked writes proceed and the add streams
//     reattach to the new holder, replaying their journals in order —
//     and delete at the old holder.
//
// A failure before the cutover leaves the session untouched on the old
// holder (the import is deleted best-effort) and the streams reattach to
// it; a failure after the cutover leaves at worst an orphaned copy on the
// old holder, which the next rebalance sweep retires. Reads are never
// interrupted; writes are never refused unless a queue bound or the park
// window is exceeded — then, and only then, 503 + Retry-After returns.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Rebalance sweeps the pool once: list each healthy backend's sessions,
// heal the placement table, and live-migrate every session whose ring
// owner is not its holder. Returns how many sessions moved. Sweeps are
// serialized; concurrent callers queue.
func (g *Gateway) Rebalance(ctx context.Context) (moved int, err error) {
	moved, failures, err := g.rebalanceDetail(ctx)
	if err == nil {
		for name, msg := range failures {
			err = fmt.Errorf("migrate %q: %s", name, msg)
			break
		}
	}
	return moved, err
}

// rebalanceDetail is Rebalance with per-session failure reporting: every
// movable session is attempted (MigrateParallel at a time), and the ones
// that could not move come back keyed by name rather than aborting the
// sweep at the first error. The error return is reserved for sweep-level
// failures (an unlistable backend).
func (g *Gateway) rebalanceDetail(ctx context.Context) (moved int, failures map[string]string, err error) {
	g.rebalanceMu.Lock()
	defer g.rebalanceMu.Unlock()

	type holderSession struct{ name, holder string }
	var all []holderSession
	seen := map[string][]string{} // session -> holders (dup = orphan from a past cutover)
	g.mu.RLock()
	backends := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		backends = append(backends, b)
	}
	g.mu.RUnlock()
	sort.Slice(backends, func(i, j int) bool { return backends[i].addr < backends[j].addr })
	for _, b := range backends {
		if !b.isHealthy() {
			continue
		}
		names, lerr := g.listSessions(ctx, b)
		if lerr != nil {
			// A backend that cannot be listed cannot be rebalanced safely;
			// report and let the caller retry.
			return moved, nil, fmt.Errorf("list sessions on %s: %w", b.addr, lerr)
		}
		for _, n := range names {
			all = append(all, holderSession{name: n, holder: b.addr})
			seen[n] = append(seen[n], b.addr)
		}
	}

	// Heal the placement table: a session the gateway did not place (made
	// directly against a backend, or surviving a gateway restart) routes to
	// its holder from here on. When two backends hold the same name, the
	// recorded placement (the cutover winner) is authoritative and the
	// other copy is an orphan — retire it. Healed placements carry no
	// tenant: the gateway never saw them created, so they stay outside
	// quota accounting, durably.
	g.mu.Lock()
	for name, holders := range seen {
		if cur, ok := g.placements[name]; ok && contains(holders, cur) {
			continue
		}
		g.placements[name] = holders[0]
		g.statePlace(name, holders[0], g.limits.ownerOf(name))
	}
	placed := make(map[string]string, len(g.placements))
	for k, v := range g.placements {
		placed[k] = v
	}
	g.mu.Unlock()
	for name, holders := range seen {
		for _, h := range holders {
			if len(holders) > 1 && h != placed[name] {
				g.opts.Logger.Printf("gateway: retiring orphaned copy of %q on %s", name, h)
				g.deleteSession(ctx, g.lookup(h), name) //nolint:errcheck // best effort; next sweep retries
			}
		}
	}

	// Migrate with bounded concurrency: one wedged session must not stall
	// the rest of the sweep, and a drain's wall clock divides by the
	// parallelism instead of summing every export+import serially.
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		sem  = make(chan struct{}, g.opts.MigrateParallel)
		fail = map[string]string{}
	)
	for _, hs := range all {
		if hs.holder != placed[hs.name] {
			continue // orphan copy, handled above
		}
		g.mu.RLock()
		owner, ok := g.ring.Owner(hs.name)
		g.mu.RUnlock()
		if !ok || owner == hs.holder {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(name, holder, owner string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := g.moveSession(ctx, name, holder, owner); err != nil {
				g.opts.Logger.Printf("gateway: migrate %q %s -> %s: %v", name, holder, owner, err)
				mu.Lock()
				fail[name] = err.Error()
				mu.Unlock()
				return
			}
			mu.Lock()
			moved++
			mu.Unlock()
		}(hs.name, hs.holder, owner)
	}
	wg.Wait()
	if len(fail) > 0 {
		failures = fail
	}
	return moved, failures, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

// moveSession live-migrates one session from holder to owner with
// zero-downtime writes: one-shot writes park, add streams detach into
// their journals, and the unquiesce (which always runs) reattaches them
// to whatever the routing table then says.
func (g *Gateway) moveSession(ctx context.Context, name, holder, owner string) error {
	src, dst := g.lookup(holder), g.lookup(owner)
	if src == nil || dst == nil {
		return fmt.Errorf("pool changed under the migration")
	}
	if !dst.isHealthy() {
		return fmt.Errorf("destination %s is unhealthy", owner)
	}

	if !g.quiesceSession(name) {
		return fmt.Errorf("already migrating")
	}
	defer g.unquiesceSession(name)

	// Wait out in-flight one-shot writes; past the deadline the migration
	// aborts rather than strand a caller. New writes are parking, not
	// failing, so this drains quickly.
	deadline := time.Now().Add(g.opts.QuiesceTimeout)
	for {
		g.mu.RLock()
		writers := g.writers[name]
		g.mu.RUnlock()
		if writers == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("session still has %d one-shot write(s) after %v", writers, g.opts.QuiesceTimeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}

	// Detach the live add streams: each half-closes its backend leg and
	// collects every outstanding ack, so the export holds everything ever
	// acknowledged. From here until unquiesce their lines journal.
	pauseCtx, cancel := context.WithDeadline(ctx, deadline)
	g.pauseAddStreams(pauseCtx, name)
	cancel()

	snapshot, err := g.exportSession(ctx, src, name)
	if err != nil {
		return fmt.Errorf("export from %s: %w", holder, err)
	}
	if err := g.importSession(ctx, dst, name, snapshot); err != nil {
		// Unquiesce (deferred) reattaches the streams to the old holder;
		// nothing moved.
		return fmt.Errorf("import at %s: %w", owner, err)
	}

	// Cutover: from here every new request — and the journal replay the
	// unquiesce triggers — routes to the new owner.
	g.mu.Lock()
	g.placements[name] = owner
	g.statePlace(name, owner, g.limits.ownerOf(name))
	g.mu.Unlock()
	g.migrations.Add(1)

	if err := g.deleteSession(ctx, src, name); err != nil {
		// The authoritative copy moved; the old one is an orphan the next
		// sweep retires. Not a migration failure.
		g.opts.Logger.Printf("gateway: delete migrated %q on %s: %v", name, holder, err)
	}
	g.opts.Logger.Printf("gateway: migrated session %q %s -> %s (%d bytes)", name, holder, owner, len(snapshot))
	return nil
}

// listSessions returns the session names a backend holds. Listing only
// reads, so it rides the retrying round trip.
func (g *Gateway) listSessions(ctx context.Context, b *backend) ([]string, error) {
	br, err := g.roundTrip(ctx, b, http.MethodGet, b.base+"/v1/sessions", nil, nil, true)
	if err != nil {
		return nil, err
	}
	if br.status != http.StatusOK {
		return nil, fmt.Errorf("status %d", br.status)
	}
	var lr struct {
		Sessions []struct {
			Name string `json:"name"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal(br.body, &lr); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(lr.Sessions))
	for _, s := range lr.Sessions {
		names = append(names, s.Name)
	}
	return names, nil
}

// exportSession pulls a session's snapshot bytes off its holder. Export
// is read-only, so transport failures retry.
func (g *Gateway) exportSession(ctx context.Context, b *backend, name string) ([]byte, error) {
	br, err := g.roundTrip(ctx, b, http.MethodPost, b.base+"/v1/sessions/"+name+"/export", nil, nil, true)
	if err != nil {
		return nil, err
	}
	if br.status != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", br.status, bytes.TrimSpace(br.body))
	}
	return br.body, nil
}

// importSession creates the session at its new owner from snapshot bytes.
// The importing backend validates checksums and restores without
// recompiling, so its Compiles counter is 1 and answers are bit-identical
// to the exporter's. Import is NOT retried: a lost response is ambiguous
// (the import may have landed, and the retry's 409 would then lie about a
// conflict), so a failure aborts the migration instead.
func (g *Gateway) importSession(ctx context.Context, b *backend, name string, snapshot []byte) error {
	body, err := json.Marshal(map[string]string{
		"name":         name,
		"snapshot_b64": base64.StdEncoding.EncodeToString(snapshot),
	})
	if err != nil {
		return err
	}
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	br, err := g.roundTrip(ctx, b, http.MethodPost, b.base+"/v1/sessions", hdr, body, false)
	if err != nil {
		return err
	}
	if br.status != http.StatusCreated {
		return fmt.Errorf("status %d: %s", br.status, bytes.TrimSpace(br.body))
	}
	return nil
}

// deleteSession removes a session from a backend. A 404 counts as gone —
// retries and sweeps make "already deleted" an expected answer.
func (g *Gateway) deleteSession(ctx context.Context, b *backend, name string) error {
	if b == nil {
		return fmt.Errorf("backend gone")
	}
	br, err := g.roundTrip(ctx, b, http.MethodDelete, b.base+"/v1/sessions/"+name, nil, nil, false)
	if err != nil {
		return err
	}
	if br.status != http.StatusOK && br.status != http.StatusNotFound {
		return fmt.Errorf("status %d", br.status)
	}
	return nil
}
