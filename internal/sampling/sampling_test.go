package sampling

import (
	"math"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
	"provabs/internal/telco"
	"provabs/internal/treegen"
)

func telcoSet(t testing.TB) *provenance.Set {
	t.Helper()
	s, err := telco.SyntheticProvenance(telco.Config{
		Customers: 600, Plans: 32, Months: 12, Zips: 40, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func telcoForest(t testing.TB) *abstree.Forest {
	t.Helper()
	plansTree := treegen.Shape{Fanouts: []int{4, 8}}.Build("PlansRoot", treegen.NumberedLeaves("pl"))
	return abstree.MustForest(plansTree, treegen.QuarterTree())
}

func TestSamplePolys(t *testing.T) {
	s := telcoSet(t)
	sm, err := SamplePolys(s, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := int(float64(s.Len())*0.25 + 0.999999)
	if sm.Len() != want {
		t.Errorf("sample has %d polynomials, want %d", sm.Len(), want)
	}
	if sm.Size() >= s.Size() {
		t.Errorf("sample size %d not smaller than full %d", sm.Size(), s.Size())
	}
	// Determinism.
	sm2, _ := SamplePolys(s, 0.25, 1)
	if sm.Size() != sm2.Size() {
		t.Error("same seed produced different samples")
	}
	if _, err := SamplePolys(s, 0, 1); err == nil {
		t.Error("fraction 0 accepted")
	}
	if _, err := SamplePolys(s, 1.5, 1); err == nil {
		t.Error("fraction 1.5 accepted")
	}
}

func TestAdaptBound(t *testing.T) {
	if got := AdaptBound(1000, 2000, 500); got != 250 {
		t.Errorf("AdaptBound = %d, want 250", got)
	}
	if got := AdaptBound(10, 1000, 5); got != 1 {
		t.Errorf("AdaptBound floor = %d, want 1", got)
	}
	if got := AdaptBound(7, 0, 5); got != 7 {
		t.Errorf("AdaptBound with zero full = %d, want 7", got)
	}
}

func TestOnlineCompressAchievesBound(t *testing.T) {
	s := telcoSet(t)
	f := telcoForest(t)
	B := s.Size() / 2
	res, err := OnlineCompress(s, f, B, Options{Fraction: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.SampleAdequate {
		t.Error("greedy failed on the sample")
	}
	if !res.FullAdequate {
		t.Errorf("VVS chosen on 30%% sample misses the full bound: |P↓S|_M=%d > B=%d",
			res.Abstracted.Size(), B)
	}
	if res.SampleBound >= B {
		t.Errorf("adapted bound %d not smaller than full bound %d", res.SampleBound, B)
	}
	if err := res.VVS.Validate(); err != nil {
		t.Errorf("returned VVS invalid: %v", err)
	}
	// The pipeline hands over the abstracted set pre-compiled for the
	// what-if stage; it must match the abstracted set it was built from.
	if res.Compiled == nil {
		t.Fatal("result lacks compiled provenance")
	}
	if res.Compiled.Len() != res.Abstracted.Len() || res.Compiled.Size() != res.Abstracted.Size() {
		t.Errorf("compiled len/size = %d/%d, abstracted %d/%d",
			res.Compiled.Len(), res.Compiled.Size(), res.Abstracted.Len(), res.Abstracted.Size())
	}
	want := res.Abstracted.Eval(map[provenance.Var]float64{})
	got := res.Compiled.Eval(res.Compiled.NewValuation(), nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Errorf("compiled identity eval poly %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// The offline optimum (full greedy) retains at least as much granularity as
// the online pipeline — sampling costs quality, never gains it (on the same
// forest and bound).
func TestOnlineVersusOffline(t *testing.T) {
	s := telcoSet(t)
	f := telcoForest(t)
	B := s.Size() / 2
	online, err := OnlineCompress(s, f, B, Options{Fraction: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	offline, err := core.GreedyVVS(s, f, B)
	if err != nil {
		t.Fatal(err)
	}
	offlineV := s.Granularity() - offline.VL
	onlineV := online.Abstracted.Granularity()
	if onlineV > offlineV+2 {
		// Allow slack of 2: the greedy itself is heuristic, so tiny
		// inversions are possible; big ones indicate a lifting bug.
		t.Errorf("online granularity %d far exceeds offline %d", onlineV, offlineV)
	}
}

func TestEstimateFullSize(t *testing.T) {
	s := telcoSet(t)
	points, err := MeasureGrowth(s, []float64{0.2, 0.4, 0.6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateFullSize(points)
	if err != nil {
		t.Fatal(err)
	}
	full := s.Size()
	// The estimate should land within 40% of truth on this workload.
	if est < full*6/10 || est > full*14/10 {
		t.Errorf("estimated size %d, actual %d", est, full)
	}
}

func TestEstimateFullSizeErrors(t *testing.T) {
	if _, err := EstimateFullSize([]SizePoint{{0.5, 10}}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := EstimateFullSize([]SizePoint{{0.5, 10}, {0.5, 12}}); err == nil {
		t.Error("duplicate fractions accepted")
	}
}

func TestOnlineCompressBadInputs(t *testing.T) {
	s := telcoSet(t)
	f := telcoForest(t)
	if _, err := OnlineCompress(s, f, 0, Options{Fraction: 0.5}); err == nil {
		t.Error("B=0 accepted")
	}
	if _, err := OnlineCompress(s, f, 10, Options{Fraction: 0}); err == nil {
		t.Error("fraction 0 accepted")
	}
}

// Lifting must cover leaves that were absent from the sample: build a tiny
// set where the sample misses a variable entirely.
func TestLiftCoversUnsampledLeaves(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("g1", provenance.MustParse(vb, "1·a1 + 2·a2"))
	s.Add("g2", provenance.MustParse(vb, "3·b1 + 4·b2"))
	f := abstree.MustForest(abstree.MustParseTree("R(A(a1,a2),B(b1,b2))"))
	// Fraction 0.5 keeps exactly one polynomial; whichever it is, the other
	// tree half is unseen by the selection yet must remain covered.
	res, err := OnlineCompress(s, f, 2, Options{Fraction: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VVS.Validate(); err != nil {
		t.Fatalf("lifted VVS invalid: %v", err)
	}
	if res.Abstracted.Len() != 2 {
		t.Errorf("abstracted set lost polynomials: %d", res.Abstracted.Len())
	}
}
