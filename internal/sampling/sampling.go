// Package sampling implements the paper's §6 proposal for online
// compression: rather than compressing a fully materialized provenance
// expression, generate (or receive) only a sample of the polynomials,
// choose a valid variable set on the sample, and apply that VVS to the full
// provenance as it is produced. The two open gaps the paper identifies are
// made explicit here: AdaptBound scales the size bound to the sample (the
// "first multiplied by the second" heuristic), and EstimateFullSize
// extrapolates the full provenance size from samples of increasing size
// (the extrapolation suggestion of §6).
package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"provabs/internal/abstree"
	"provabs/internal/core"
	"provabs/internal/provenance"
)

// Options controls the online pipeline.
type Options struct {
	Fraction float64 // fraction of polynomials to sample (0,1]
	Seed     int64
}

// SamplePolys draws a uniform sample of ceil(fraction·n) polynomials. For
// simple GROUP BY provenance (one polynomial per group) this realizes the
// paper's heuristic of sampling the grouping relation: each output
// polynomial is kept or dropped wholesale.
func SamplePolys(s *provenance.Set, fraction float64, seed int64) (*provenance.Set, error) {
	if fraction <= 0 || fraction > 1 {
		return nil, fmt.Errorf("sampling: fraction %v out of (0,1]", fraction)
	}
	n := len(s.Polys)
	k := int(float64(n)*fraction + 0.999999)
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	idx := rand.New(rand.NewSource(seed)).Perm(n)[:k]
	sort.Ints(idx)
	out := provenance.NewSet(s.Vocab)
	for _, i := range idx {
		tag := ""
		if i < len(s.Tags) {
			tag = s.Tags[i]
		}
		out.Add(tag, s.Polys[i])
	}
	return out, nil
}

// AdaptBound scales the full-provenance bound to the sample: §6 proposes
// the original bound multiplied by the sample-to-full size ratio.
func AdaptBound(B, fullSize, sampleSize int) int {
	if fullSize <= 0 {
		return B
	}
	b := int(float64(B) * float64(sampleSize) / float64(fullSize))
	if b < 1 {
		b = 1
	}
	return b
}

// Result reports an online compression run.
type Result struct {
	VVS            *abstree.VVS
	SampleSize     int  // |sample|_M
	SampleBound    int  // bound used on the sample
	SampleAdequate bool // VVS met the adapted bound on the sample
	FullAdequate   bool // VVS meets the original bound on the full set
	Abstracted     *provenance.Set
	// Compiled is the abstracted set pre-compiled for scenario evaluation:
	// the online pipeline ends where the interactive what-if stage begins,
	// so the artifact it hands over is ready for hypo.EvalBatch.
	Compiled *provenance.Compiled
}

// OnlineCompress runs the full §6 pipeline: sample, adapt the bound, select
// a VVS on the sample with the greedy algorithm (trees may be many), then
// abstract the full provenance with the same VVS. The selection never sees
// the full set — only the final substitution touches it, which is the whole
// point of the online setting.
func OnlineCompress(full *provenance.Set, forest *abstree.Forest, B int, opts Options) (*Result, error) {
	if B < 1 {
		return nil, fmt.Errorf("sampling: bound B=%d must be at least 1", B)
	}
	sample, err := SamplePolys(full, opts.Fraction, opts.Seed)
	if err != nil {
		return nil, err
	}
	sb := AdaptBound(B, full.Size(), sample.Size())
	sel, err := core.GreedyVVS(sample, forest, sb)
	if err != nil {
		return nil, err
	}
	// Re-express the sample-cleaned VVS over a full-set cleaning of the
	// forest: leaves missing from the sample but present in the full set
	// must still be covered. We lift each chosen node by label into the
	// full cleaning; chosen nodes that were contracted away map to the
	// nearest surviving equivalent.
	fullInst, err := core.NewInstance(full, forest)
	if err != nil {
		return nil, err
	}
	lifted, err := liftVVS(sel.VVS, fullInst.Forest)
	if err != nil {
		return nil, err
	}
	abs := lifted.Apply(full)
	return &Result{
		VVS:            lifted,
		SampleSize:     sample.Size(),
		SampleBound:    sb,
		SampleAdequate: sel.Adequate,
		FullAdequate:   abs.Size() <= B,
		Abstracted:     abs,
		Compiled:       abs.Compile(),
	}, nil
}

// liftVVS maps a VVS over one cleaning of a forest onto another cleaning of
// the same underlying forest: chosen nodes carry over by label; leaves of
// the target forest not covered by any carried-over node are chosen as
// themselves.
func liftVVS(v *abstree.VVS, target *abstree.Forest) (*abstree.VVS, error) {
	nodes := make([][]int, len(target.Trees))
	chosen := make([]map[int]bool, len(target.Trees))
	for ti := range target.Trees {
		chosen[ti] = map[int]bool{}
	}
	targetIdx := make(map[*abstree.Tree]int, len(target.Trees))
	for ti, t := range target.Trees {
		targetIdx[t] = ti
	}
	for si, st := range v.Forest.Trees {
		for _, n := range v.Nodes[si] {
			label := st.Label(n)
			tt, tn, ok := target.TreeOfLabel(label)
			if !ok {
				// The node was contracted away in the target cleaning (its
				// subtree had a single active leaf there); its leaves will
				// be covered by the fallback below.
				continue
			}
			ti := targetIdx[tt]
			chosen[ti][tn] = true
		}
	}
	for ti, t := range target.Trees {
		for _, l := range t.Leaves() {
			covered := false
			for a := l; a >= 0; a = t.Parent(a) {
				if chosen[ti][a] {
					covered = true
					break
				}
			}
			if !covered {
				chosen[ti][l] = true
			}
		}
		// Drop any chosen node that became an ancestor of another chosen
		// node through the fallback (keep the higher node, drop the lower
		// one it covers — coverage wins, granularity is secondary here).
		for n := range chosen[ti] {
			for a := t.Parent(n); a >= 0; a = t.Parent(a) {
				if chosen[ti][a] {
					delete(chosen[ti], n)
					break
				}
			}
		}
		for n := range chosen[ti] {
			nodes[ti] = append(nodes[ti], n)
		}
		sort.Ints(nodes[ti])
	}
	out := &abstree.VVS{Forest: target, Nodes: nodes}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("sampling: lifted VVS invalid: %w", err)
	}
	return out, nil
}

// SizePoint is one (fraction, provenance size) observation.
type SizePoint struct {
	Fraction float64
	Size     int
}

// EstimateFullSize extrapolates |P|_M at fraction 1 from observations at
// smaller fractions, using linear extrapolation through the two largest
// fractions (the §6 extrapolation heuristic; provenance size for GROUP BY
// outputs grows sublinearly, so this overestimates slightly — a safe
// direction for a size bound).
func EstimateFullSize(points []SizePoint) (int, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("sampling: need at least two sample points")
	}
	ps := append([]SizePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Fraction < ps[j].Fraction })
	a, b := ps[len(ps)-2], ps[len(ps)-1]
	if b.Fraction <= a.Fraction {
		return 0, fmt.Errorf("sampling: sample fractions must be distinct")
	}
	slope := float64(b.Size-a.Size) / (b.Fraction - a.Fraction)
	est := float64(b.Size) + slope*(1-b.Fraction)
	if est < float64(b.Size) {
		est = float64(b.Size)
	}
	return int(est + 0.5), nil
}

// MeasureGrowth runs SamplePolys at each fraction and records sizes,
// producing the input for EstimateFullSize.
func MeasureGrowth(s *provenance.Set, fractions []float64, seed int64) ([]SizePoint, error) {
	var out []SizePoint
	for _, f := range fractions {
		sm, err := SamplePolys(s, f, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, SizePoint{Fraction: f, Size: sm.Size()})
	}
	return out, nil
}
