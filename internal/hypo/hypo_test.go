package hypo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

func exampleSet(t testing.TB) (*provenance.Set, *abstree.Forest, *abstree.VVS) {
	t.Helper()
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	f := abstree.MustForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	v := abstree.MustFromLabels(f, "q1")
	return s, f, v
}

func TestScenarioEval(t *testing.T) {
	s, _, _ := exampleSet(t)
	// "What if the ppm of all plans decreased by 20% in March?" (Example 1).
	got, err := NewScenario().Set("m3", 0.8).Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	base := 220.8 + 127.4 + 75.9 + 42
	march := (240 + 114.45 + 72.5 + 24.2) * 0.8
	if math.Abs(got[0]-(base+march)) > 1e-9 {
		t.Errorf("scenario value = %v, want %v", got[0], base+march)
	}
}

func TestScenarioUnknownVariable(t *testing.T) {
	s, _, _ := exampleSet(t)
	if _, err := NewScenario().Set("nope", 2).Eval(s); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestUniformScenarioExactOnAbstraction(t *testing.T) {
	s, _, v := exampleSet(t)
	abs := v.Apply(s)
	// Scenario on the meta-variable q1.
	meta := NewScenario().Set("q1", 0.8)
	gotAbs, err := meta.Eval(abs)
	if err != nil {
		t.Fatal(err)
	}
	// The lifted scenario on the original provenance agrees exactly.
	lifted := meta.UniformOn(v)
	if lifted.Assign["m1"] != 0.8 || lifted.Assign["m3"] != 0.8 {
		t.Fatalf("lifted scenario = %v", lifted.Assign)
	}
	gotOrig, err := lifted.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotAbs[0]-gotOrig[0]) > 1e-9 {
		t.Errorf("abstracted %v != original %v under uniform scenario", gotAbs[0], gotOrig[0])
	}
}

func TestIsUniformOn(t *testing.T) {
	_, _, v := exampleSet(t)
	ok, _ := NewScenario().SetAll(0.8, "m1", "m3").IsUniformOn(v)
	if !ok {
		t.Error("uniform scenario flagged as non-uniform")
	}
	ok, why := NewScenario().Set("m1", 0.8).Set("m3", 0.9).IsUniformOn(v)
	if ok {
		t.Error("non-uniform scenario flagged as uniform")
	}
	if why == "" {
		t.Error("violation explanation missing")
	}
}

func TestProjectAveragesGroups(t *testing.T) {
	s, _, v := exampleSet(t)
	sc := NewScenario().Set("m1", 0.6).Set("m3", 1.0)
	proj := sc.Project(v)
	if got := proj.Assign["q1"]; math.Abs(got-0.8) > 1e-12 {
		t.Errorf("projected q1 = %v, want 0.8", got)
	}
	// Accuracy loss is bounded and measurable.
	origVals, err := sc.Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	absVals, err := proj.Eval(v.Apply(s))
	if err != nil {
		t.Fatal(err)
	}
	e, err := MaxRelError(absVals, origVals)
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 || e > 0.25 {
		t.Errorf("relative error = %v, want small but nonzero", e)
	}
}

func TestAnswersTagging(t *testing.T) {
	s, _, _ := exampleSet(t)
	ans, err := NewScenario().Eval(s)
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := NewScenario().Answers(s)
	if err != nil {
		t.Fatal(err)
	}
	// Summation order over the term map is not fixed, so compare with a
	// tolerance.
	if tagged[0].Tag != "10001" || math.Abs(tagged[0].Value-ans[0]) > 1e-9 {
		t.Errorf("tagged answer = %+v, want value %v", tagged[0], ans[0])
	}
}

func TestMaxRelErrorMismatch(t *testing.T) {
	if _, err := MaxRelError([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	e, err := MaxRelError([]float64{1.1, 0}, []float64{1, 0})
	if err != nil || math.Abs(e-0.1) > 1e-9 {
		t.Errorf("MaxRelError = %v, %v", e, err)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(100*time.Millisecond, 25*time.Millisecond); math.Abs(s-0.75) > 1e-9 {
		t.Errorf("Speedup = %v, want 0.75", s)
	}
	if s := Speedup(0, time.Second); s != 0 {
		t.Errorf("Speedup with zero base = %v", s)
	}
	if s := Speedup(time.Millisecond, time.Second); s != 0 {
		t.Errorf("negative speedup should clamp to 0, got %v", s)
	}
}

func TestAssignmentTimesPositive(t *testing.T) {
	s, _, v := exampleSet(t)
	to, ta := AssignmentTimes(s, v.Apply(s), 50)
	if to <= 0 || ta <= 0 {
		t.Errorf("times = %v, %v", to, ta)
	}
}

// Property: for any scenario that is uniform on the groups, evaluation on
// the abstraction equals evaluation on the original (the core soundness
// guarantee of the framework).
func TestQuickUniformExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vb := provenance.NewVocab()
		s := provenance.NewSet(vb)
		p := provenance.NewPolynomial()
		leaves := []string{"a1", "a2", "a3", "b1", "b2"}
		other := []string{"x", "y"}
		// Generators intern every parameter variable up front, whether or
		// not a particular polynomial ends up using it.
		vb.Vars(append(append([]string{}, leaves...), other...)...)
		for i := 0; i < rng.Intn(10)+2; i++ {
			vars := []provenance.Var{vb.Var(leaves[rng.Intn(len(leaves))])}
			if rng.Intn(2) == 0 {
				vars = append(vars, vb.Var(other[rng.Intn(len(other))]))
			}
			p.AddTerm(float64(rng.Intn(9)+1), vars...)
		}
		s.Add("", p)
		forest := abstree.MustForest(abstree.MustParseTree("R(A(a1,a2,a3),B(b1,b2))"))
		var v *abstree.VVS
		switch rng.Intn(3) {
		case 0:
			v = abstree.MustFromLabels(forest, "A", "B")
		case 1:
			v = abstree.MustFromLabels(forest, "A", "b1", "b2")
		default:
			v = abstree.MustFromLabels(forest, "R")
		}
		meta := NewScenario()
		for _, lbl := range v.Labels() {
			meta.Set(lbl, float64(rng.Intn(8))/4)
		}
		for _, o := range other {
			meta.Set(o, float64(rng.Intn(8))/4)
		}
		absVals, err := meta.Eval(v.Apply(s))
		if err != nil {
			// Meta labels not in the abstracted set's vocab can error only
			// if the polynomial lost them; skip.
			return true
		}
		origVals, err := meta.UniformOn(v).Eval(s)
		if err != nil {
			return false
		}
		return math.Abs(absVals[0]-origVals[0]) <= 1e-6*(1+math.Abs(origVals[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
