package hypo

// This file implements batch scenario evaluation: many hypothetical
// scenarios against one compiled provenance set, spread over a worker pool.
// This is the interactive many-scenario workload the paper (and its COBRA
// companion) optimizes for — compress once, then answer a stream of
// what-ifs.
//
// Two routing decisions happen per batch. Per scenario, the evaluator picks
// between the delta path (recompute only the polynomials the scenario's
// assignments can affect, copy cached baseline values for the rest — see
// provenance.EvalDelta) and full evaluation, based on how many terms the
// affected polynomials own relative to DeltaCutoff. Per batch, when there
// are fewer scenarios than workers, the spare cores move *inside* each
// scenario: the polynomial range (or the affected set) is sharded across
// the pool, so a single huge scenario no longer runs on one core.

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"provabs/internal/provenance"
)

// DefaultDeltaCutoff is the affected-term density above which a scenario is
// evaluated in full rather than via the delta path: at half the terms, the
// saved multiplies still comfortably dominate the baseline copy.
const DefaultDeltaCutoff = 0.5

// shardMinTerms is the smallest amount of recomputation worth splitting
// across goroutines; below it, spawn-and-join overhead dominates.
const shardMinTerms = 2048

// BatchOptions tunes EvalBatch. The zero value is ready to use.
type BatchOptions struct {
	// Workers is the size of the worker pool; 0 or negative means
	// GOMAXPROCS. A single worker evaluates sequentially (useful for
	// deterministic profiling). With fewer scenarios than workers, the pool
	// turns inward and shards each scenario's polynomial range instead.
	Workers int

	// DeltaCutoff routes scenarios between delta and full evaluation: a
	// scenario takes the delta path when the polynomials its assignments
	// affect own at most this fraction of the set's terms. 0 means
	// DefaultDeltaCutoff; negative disables the delta path entirely.
	DeltaCutoff float64

	// Counters, when non-nil, accumulates per-evaluation accounting across
	// calls (the session Engine surfaces them via Stats).
	Counters *BatchCounters
}

// BatchCounters counts how scenarios were evaluated. All fields are safe
// for concurrent use and accumulate across batches.
type BatchCounters struct {
	DeltaEvals   atomic.Int64 // scenarios answered via the sparse delta path
	FullEvals    atomic.Int64 // scenarios answered by full re-evaluation
	ShardedEvals atomic.Int64 // scenarios whose evaluation was split across goroutines
}

// resolvedScenario is a scenario with names resolved to Vars: the dense
// valuation writes a worker performs before evaluating.
type resolvedScenario struct {
	vars []provenance.Var
	vals []float64
}

// resolveOne maps one scenario's names through the vocabulary in a single
// pass, returning the dense-writable form plus the sorted list of names
// that did not resolve (nil when the scenario is clean).
func resolveOne(vb *provenance.Vocab, sc *Scenario) (resolvedScenario, []string) {
	rs := resolvedScenario{
		vars: make([]provenance.Var, 0, len(sc.Assign)),
		vals: make([]float64, 0, len(sc.Assign)),
	}
	var unknown []string
	for name, x := range sc.Assign {
		v, ok := vb.Lookup(name)
		if !ok {
			unknown = append(unknown, name)
			continue
		}
		rs.vars = append(rs.vars, v)
		rs.vals = append(rs.vals, x)
	}
	sort.Strings(unknown)
	return rs, unknown
}

// resolve maps every scenario's names through the vocabulary up front, so
// workers never touch the Vocab (it is not synchronized) and name typos are
// reported — all of them, with the scenario's index — before any evaluation
// starts.
func resolve(vb *provenance.Vocab, scenarios []*Scenario) ([]resolvedScenario, error) {
	out := make([]resolvedScenario, len(scenarios))
	for i, sc := range scenarios {
		rs, unknown := resolveOne(vb, sc)
		if len(unknown) != 0 {
			return nil, ErrUnknownVars(i, unknown)
		}
		out[i] = rs
	}
	return out, nil
}

// UnknownVarsError reports the names a scenario assigned that are missing
// from the vocabulary.
type UnknownVarsError struct {
	Scenario int      // batch position, or arrival index on a stream
	Names    []string // sorted unresolved names
}

func (e *UnknownVarsError) Error() string {
	quoted := make([]string, len(e.Names))
	for j, name := range e.Names {
		quoted[j] = fmt.Sprintf("%q", name)
	}
	noun := "variable"
	if len(e.Names) > 1 {
		noun = "variables"
	}
	return fmt.Sprintf("hypo: scenario %d assigns unknown %s %s", e.Scenario, noun, strings.Join(quoted, ", "))
}

// ErrUnknownVars builds the *UnknownVarsError for scenario i.
func ErrUnknownVars(i int, unknown []string) error {
	return &UnknownVarsError{Scenario: i, Names: unknown}
}

// UnknownVars returns the names the scenario assigns that are missing from
// the vocabulary, sorted. An empty result means the scenario resolves.
func (sc *Scenario) UnknownVars(vb *provenance.Vocab) []string {
	_, unknown := resolveOne(vb, sc)
	return unknown
}

// evalState is one worker's reusable evaluation machinery: a dense valuation
// reset between scenarios, delta scratch, and the routing configuration.
type evalState struct {
	c         *provenance.Compiled
	val       []float64
	delta     *provenance.DeltaEval
	threshold int // affected terms above this take the full path; -1 disables delta
	shard     int // split evaluation across this many goroutines when > 1
	counters  *BatchCounters
}

func newEvalState(c *provenance.Compiled, opts BatchOptions, shard int) *evalState {
	cutoff := opts.DeltaCutoff
	if cutoff == 0 {
		cutoff = DefaultDeltaCutoff
	}
	threshold := -1
	if cutoff > 0 {
		threshold = int(cutoff * float64(c.Size()))
	}
	st := &evalState{c: c, val: c.NewValuation(), threshold: threshold, shard: shard, counters: opts.Counters}
	if threshold >= 0 {
		st.delta = c.GetDeltaEval() // pooled: released again in release()
	}
	return st
}

// release returns the pooled delta scratch; the state must not evaluate
// afterwards.
func (st *evalState) release() {
	if st.delta != nil {
		st.c.PutDeltaEval(st.delta)
		st.delta = nil
	}
}

// eval applies one resolved scenario to the worker's valuation, routes it to
// the delta or full path, and restores the identity so the valuation is
// clean for the next scenario.
func (st *evalState) eval(rs resolvedScenario, out []float64) []float64 {
	for j, v := range rs.vars {
		if int(v) < len(st.val) {
			st.val[v] = rs.vals[j]
		}
	}
	out = st.evalCurrent(rs.vars, out)
	for _, v := range rs.vars {
		if int(v) < len(st.val) {
			st.val[v] = 1
		}
	}
	return out
}

func (st *evalState) evalCurrent(touched []provenance.Var, out []float64) []float64 {
	c := st.c
	// MinAffectedTerms is an O(len(touched)) lower bound: when even it
	// exceeds the threshold, the full Affected index walk (which a dense
	// scenario would only discard) is skipped.
	if st.delta != nil && c.MinAffectedTerms(touched) <= st.threshold {
		ids, terms := st.delta.Affected(touched)
		if terms <= st.threshold {
			// len(ids) > 1 mirrors EvalAffectedSharded's worker clamp, so
			// the counter only reports shards that actually happen.
			sharded := st.shard > 1 && terms >= shardMinTerms && len(ids) > 1
			st.count(true, sharded)
			if sharded {
				return st.delta.EvalAffectedSharded(ids, st.val, out, st.shard)
			}
			return st.delta.EvalAffected(ids, st.val, out)
		}
	}
	sharded := st.shard > 1 && c.Size() >= shardMinTerms && c.Len() > 1
	st.count(false, sharded)
	if sharded {
		return c.EvalSharded(st.val, out, st.shard)
	}
	return c.Eval(st.val, out)
}

func (st *evalState) count(delta, sharded bool) {
	if st.counters == nil {
		return
	}
	if delta {
		st.counters.DeltaEvals.Add(1)
	} else {
		st.counters.FullEvals.Add(1)
	}
	if sharded {
		st.counters.ShardedEvals.Add(1)
	}
}

// EvalBatch evaluates every scenario against the compiled set, returning one
// answer vector (in set order) per scenario, in scenario order. With at
// least as many scenarios as workers, scenarios are distributed over the
// pool; with fewer (down to a single huge scenario), the spare workers
// shard inside each scenario's polynomial range instead, so either way all
// cores stay busy. Sparse scenarios ride the delta path (see
// BatchOptions.DeltaCutoff); every path returns per-polynomial
// bit-identical results.
func EvalBatch(c *provenance.Compiled, scenarios []*Scenario, opts BatchOptions) ([][]float64, error) {
	resolved, err := resolve(c.Vocab, scenarios)
	if err != nil {
		return nil, err
	}
	return evalResolvedBatch(c, resolved, opts), nil
}

// evalResolvedBatch is the evaluation core shared by EvalBatch and
// EvalBatchEach: route each already-resolved scenario through the
// delta/full/sharded machinery on the configured pool.
func evalResolvedBatch(c *provenance.Compiled, resolved []resolvedScenario, opts BatchOptions) [][]float64 {
	out := make([][]float64, len(resolved))
	if len(resolved) == 0 {
		return out
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// With fewer scenarios than workers on a set big enough to split, the
	// spare cores move inside each scenario: a pool of one worker per
	// scenario, each allowed workers/len shards. (With one huge scenario
	// that is a single worker sharding the whole range; with a small set,
	// shard stays 1 and the pool simply clamps to the scenario count, so
	// across-scenario parallelism is never lost even when a scenario's
	// evaluation declines to shard.)
	shard := 1
	if workers > len(resolved) && c.Size() >= shardMinTerms {
		shard = workers / len(resolved)
	}
	if workers > len(resolved) {
		workers = len(resolved)
	}
	if workers <= 1 {
		st := newEvalState(c, opts, shard)
		defer st.release()
		for i := range resolved {
			out[i] = st.eval(resolved[i], nil)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			st := newEvalState(c, opts, shard)
			defer st.release()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(resolved) {
					return
				}
				out[i] = st.eval(resolved[i], nil)
			}
		}()
	}
	wg.Wait()
	return out
}

// AnswersBatchEach is the per-scenario error-isolating batch used by
// streaming callers: a scenario that fails to resolve yields a non-nil
// *UnknownVarsError (indexed by batch position) at its slot while the rest
// are evaluated together in one pass — names are resolved exactly once.
func AnswersBatchEach(c *provenance.Compiled, scenarios []*Scenario, opts BatchOptions) ([][]Answer, []error) {
	errs := make([]error, len(scenarios))
	valid := make([]resolvedScenario, 0, len(scenarios))
	pos := make([]int, 0, len(scenarios))
	for i, sc := range scenarios {
		rs, unknown := resolveOne(c.Vocab, sc)
		if len(unknown) != 0 {
			errs[i] = ErrUnknownVars(i, unknown)
			continue
		}
		valid = append(valid, rs)
		pos = append(pos, i)
	}
	rows := evalResolvedBatch(c, valid, opts)
	out := make([][]Answer, len(scenarios))
	for k, i := range pos {
		out[i] = tagAnswers(c.Tags, rows[k])
	}
	return out, errs
}

// AnswersBatch is EvalBatch with each value paired to its polynomial's tag.
func AnswersBatch(c *provenance.Compiled, scenarios []*Scenario, opts BatchOptions) ([][]Answer, error) {
	rows, err := EvalBatch(c, scenarios, opts)
	if err != nil {
		return nil, err
	}
	out := make([][]Answer, len(rows))
	for i, vals := range rows {
		out[i] = tagAnswers(c.Tags, vals)
	}
	return out, nil
}

// tagAnswers pairs one answer vector with the set's polynomial tags.
func tagAnswers(tags []string, vals []float64) []Answer {
	ans := make([]Answer, len(vals))
	for j, v := range vals {
		tag := ""
		if j < len(tags) {
			tag = tags[j]
		}
		ans[j] = Answer{Tag: tag, Value: v}
	}
	return ans
}

// EvalCompiled applies a single scenario to pre-compiled provenance. Callers
// evaluating more than one scenario should prefer EvalBatch, which amortizes
// the valuation and parallelizes across scenarios.
func (sc *Scenario) EvalCompiled(c *provenance.Compiled) ([]float64, error) {
	rows, err := EvalBatch(c, []*Scenario{sc}, BatchOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}
