package hypo

// This file implements batch scenario evaluation: many hypothetical
// scenarios against one compiled provenance set, spread over a worker pool.
// This is the interactive many-scenario workload the paper (and its COBRA
// companion) optimizes for — compress once, then answer a stream of
// what-ifs.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"provabs/internal/provenance"
)

// BatchOptions tunes EvalBatch. The zero value is ready to use.
type BatchOptions struct {
	// Workers is the size of the worker pool; 0 or negative means
	// GOMAXPROCS. A single worker evaluates sequentially (useful for
	// deterministic profiling).
	Workers int
}

// resolvedScenario is a scenario with names resolved to Vars: the dense
// valuation writes a worker performs before evaluating.
type resolvedScenario struct {
	vars []provenance.Var
	vals []float64
}

// resolve maps every scenario's names through the vocabulary up front, so
// workers never touch the Vocab (it is not synchronized) and name typos are
// reported before any evaluation starts.
func resolve(vb *provenance.Vocab, scenarios []*Scenario) ([]resolvedScenario, error) {
	out := make([]resolvedScenario, len(scenarios))
	for i, sc := range scenarios {
		rs := resolvedScenario{
			vars: make([]provenance.Var, 0, len(sc.Assign)),
			vals: make([]float64, 0, len(sc.Assign)),
		}
		for name, x := range sc.Assign {
			v, ok := vb.Lookup(name)
			if !ok {
				if len(scenarios) == 1 {
					// Single-scenario callers (Scenario.EvalCompiled, the
					// Engine's WhatIf/Stream) have no batch to index into.
					return nil, fmt.Errorf("hypo: scenario assigns unknown variable %q", name)
				}
				return nil, fmt.Errorf("hypo: scenario %d assigns unknown variable %q", i, name)
			}
			rs.vars = append(rs.vars, v)
			rs.vals = append(rs.vals, x)
		}
		out[i] = rs
	}
	return out, nil
}

// EvalBatch evaluates every scenario against the compiled set, returning one
// answer vector (in set order) per scenario, in scenario order. Scenarios
// are distributed over a pool of BatchOptions.Workers goroutines; each
// worker keeps a single dense valuation and resets only the variables a
// scenario touched, so steady-state evaluation performs no per-scenario
// allocation beyond the result row.
func EvalBatch(c *provenance.Compiled, scenarios []*Scenario, opts BatchOptions) ([][]float64, error) {
	resolved, err := resolve(c.Vocab, scenarios)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(scenarios))
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if workers <= 1 {
		val := c.NewValuation()
		for i := range resolved {
			out[i] = evalResolved(c, val, resolved[i])
		}
		return out, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			val := c.NewValuation()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(resolved) {
					return
				}
				out[i] = evalResolved(c, val, resolved[i])
			}
		}()
	}
	wg.Wait()
	return out, nil
}

// evalResolved applies one resolved scenario to the worker's valuation,
// evaluates, and restores the identity so the valuation is clean for the
// next scenario.
func evalResolved(c *provenance.Compiled, val []float64, rs resolvedScenario) []float64 {
	for j, v := range rs.vars {
		if int(v) < len(val) {
			val[v] = rs.vals[j]
		}
	}
	row := c.Eval(val, nil)
	for _, v := range rs.vars {
		if int(v) < len(val) {
			val[v] = 1
		}
	}
	return row
}

// AnswersBatch is EvalBatch with each value paired to its polynomial's tag.
func AnswersBatch(c *provenance.Compiled, scenarios []*Scenario, opts BatchOptions) ([][]Answer, error) {
	rows, err := EvalBatch(c, scenarios, opts)
	if err != nil {
		return nil, err
	}
	out := make([][]Answer, len(rows))
	for i, vals := range rows {
		ans := make([]Answer, len(vals))
		for j, v := range vals {
			tag := ""
			if j < len(c.Tags) {
				tag = c.Tags[j]
			}
			ans[j] = Answer{Tag: tag, Value: v}
		}
		out[i] = ans
	}
	return out, nil
}

// EvalCompiled applies a single scenario to pre-compiled provenance. Callers
// evaluating more than one scenario should prefer EvalBatch, which amortizes
// the valuation and parallelizes across scenarios.
func (sc *Scenario) EvalCompiled(c *provenance.Compiled) ([]float64, error) {
	rows, err := EvalBatch(c, []*Scenario{sc}, BatchOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}
