package hypo

// This file implements batch scenario evaluation: many hypothetical
// scenarios against one compiled provenance set, spread over a worker pool.
// This is the interactive many-scenario workload the paper (and its COBRA
// companion) optimizes for — compress once, then answer a stream of
// what-ifs.
//
// The machinery is generic over the evaluation carrier (provenance.Carrier):
// the same routing, chaining and sharding answer float, boolean, counting,
// tropical and max-min scenarios. Scenario assignments stay float64 at the
// API surface and are parsed into the carrier by its Value hook during name
// resolution, so a fractional count or a NaN cost is reported before any
// evaluation starts.
//
// Three routing decisions happen per batch. Per scenario, the evaluator
// picks between the delta path (recompute only the polynomials the
// scenario's assignments can affect, copy cached answers for the rest — see
// provenance.EvalDelta) and full evaluation; the cutoff is either a static
// affected-term fraction (BatchOptions.DeltaCutoff > 0) or, by default, a
// tiny online cost model — EWMAs of the observed ns/term on each path,
// kept in BatchCounters — that learns where the crossover actually is on
// this machine and workload. Per scenario on a chained batch
// (BatchOptions.Chain, gated on the carrier's Chainable capability), the
// delta base is chosen too: against the identity baseline, or against the
// previous scenario's answers when the symmetric difference of consecutive
// valuations is sparser than the scenario itself (correlated streams differ
// by a variable or two). Per batch, when there are fewer scenarios than
// workers, the spare cores move *inside* each scenario: the polynomial
// range (or the affected set) is sharded across the pool, so a single huge
// scenario no longer runs on one core.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"provabs/internal/provenance"
)

// DefaultDeltaCutoff is the affected-term density above which a scenario is
// evaluated in full rather than via the delta path while the adaptive cost
// model has no observations yet (and the static fraction used when
// adaptivity is unavailable): at half the terms, the saved multiplies still
// comfortably dominate the baseline copy.
const DefaultDeltaCutoff = 0.5

// shardMinTerms is the smallest amount of recomputation worth splitting
// across goroutines; below it, spawn-and-join overhead dominates.
const shardMinTerms = 2048

// ShardMinTerms exports the sharding floor so planners (ScenQL EXPLAIN)
// can predict whether a full evaluation would shard.
const ShardMinTerms = shardMinTerms

// probeInterval is the adaptive cost model's exploration cadence once the
// model is complete (both per-term estimates observed): every
// probeInterval-th routed scenario runs the path the model did *not* pick,
// so neither EWMA goes stale. While the model is still incomplete it
// probes faster, at warmupProbeInterval, but only for the first
// warmupProbeCap routing decisions: a workload that has produced no
// observable sample for one path by then (a uniformly sparse stream never
// yields a delta timing worth folding in, see observeDivisor) will not
// start doing so, and probing it forever would force a pointless full
// evaluation of the whole set every 37th scenario — the model instead
// settles on the bootstrap static cutoff at zero ongoing cost, completing
// later only if the workload shifts. Both intervals are prime so the
// cadence cannot alias with a periodically structured batch (with an even
// interval, an alternating sparse/dense workload would have every probe
// land on the same kind of scenario).
const probeInterval = 257
const warmupProbeInterval = 37
const warmupProbeCap = 8 * warmupProbeInterval

// timeSample thins the model's clock reads: one in timeSample evaluations
// is timed (probes always are), so sub-microsecond evaluations do not pay
// two time.Now calls each.
const timeSample = 8

// observeDivisor sets the floor below which a delta evaluation is too small
// to inform the per-term estimate: only evals recomputing at least
// Size/observeDivisor terms are observed. Tiny affected sets are dominated
// by the fixed baseline copy and index walk, and folding their inflated
// ns/term into the EWMA would talk the model out of the delta path exactly
// where it matters — on mid-density scenarios.
const observeDivisor = 16

// ewmaAlpha weights a new ns/term observation into the running estimate.
const ewmaAlpha = 0.25

// maxChainOrder bounds the greedy overlap ordering, which is quadratic in
// the batch size; larger chained batches keep arrival order.
const maxChainOrder = 128

// BatchOptions tunes EvalBatch. The zero value is ready to use.
type BatchOptions struct {
	// Workers is the size of the worker pool; 0 or negative means
	// GOMAXPROCS. A single worker evaluates sequentially (useful for
	// deterministic profiling). With fewer scenarios than workers, the pool
	// turns inward and shards each scenario's polynomial range instead.
	Workers int

	// DeltaCutoff routes scenarios between delta and full evaluation. A
	// positive value is a static fraction: a scenario takes the delta path
	// when the polynomials its assignments affect own at most this fraction
	// of the set's terms. 0 selects the adaptive cost model (per-scenario
	// routing from the observed ns/term of each path, bootstrapped at
	// DefaultDeltaCutoff; requires Counters, which hold the model's state —
	// without them 0 behaves like the static default). Negative disables
	// the delta path entirely.
	DeltaCutoff float64

	// Chain evaluates the batch as a correlated stream: scenarios are
	// greedily reordered by assignment overlap (answers still come back in
	// input order) and each one may be delta-evaluated against the previous
	// scenario's answers instead of the identity baseline, whenever the
	// valuation diff is sparser than the scenario itself. Engine.Stream
	// sets this for every micro-batch. Chain is ignored for carriers whose
	// Chainable capability is false — they evaluate as an unchained batch.
	Chain bool

	// ChainState, when non-nil on a chained batch, carries the chain across
	// calls: the last evaluated scenario of this batch seeds the first
	// scenario of the next batch handed the same ChainState, so a scenario
	// stream's micro-batch boundaries stop costing an identity-baseline
	// delta each. The state is owned by one serial caller (Engine.Stream
	// keeps one per stream); it must not be shared across concurrent
	// batches, and Release must be called when the stream ends.
	ChainState *ChainState

	// Counters, when non-nil, accumulates per-evaluation accounting across
	// calls (the session Engine surfaces them via Stats) and carries the
	// adaptive cost model's state.
	Counters *BatchCounters
}

// ChainState is the persistent chain seed of one scenario stream: the
// evaluator state (valuation, previous assignments and answers, pooled
// delta scratch) that survives from one chained batch to the next. The zero
// value is ready; see BatchOptions.ChainState for the ownership contract.
type ChainState struct {
	state any // the previous batch's *evalState[T, C], adopted if compatible
}

// Release returns the pooled scratch held by the state. The ChainState is
// reusable afterwards (the next batch reseeds it from scratch).
func (cs *ChainState) Release() {
	if st, ok := cs.state.(interface{ release() }); ok {
		st.release()
	}
	cs.state = nil
}

// ewma is an atomic exponentially weighted moving average; the zero value
// is "no observations yet" (Load returns 0).
type ewma struct{ bits atomic.Uint64 }

func (e *ewma) Load() float64 {
	return math.Float64frombits(e.bits.Load())
}

// Observe folds one sample into the average (the first sample seeds it).
func (e *ewma) Observe(x float64) {
	for {
		old := e.bits.Load()
		next := x
		if old != 0 {
			cur := math.Float64frombits(old)
			next = cur + ewmaAlpha*(x-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// BatchCounters counts how scenarios were evaluated and carries the
// adaptive routing model. All fields are safe for concurrent use and
// accumulate across batches; a session Engine owns one per carrier for its
// lifetime, so float timings never poison the routing of a boolean or
// tropical stream.
type BatchCounters struct {
	DeltaEvals   atomic.Int64 // scenarios answered via the identity-baseline delta path
	ChainedEvals atomic.Int64 // scenarios answered via a delta against the previous scenario's answers
	FullEvals    atomic.Int64 // scenarios answered by full re-evaluation
	ShardedEvals atomic.Int64 // scenarios whose evaluation was split across goroutines

	deltaNsPerTerm ewma         // observed cost of recomputing one affected term
	fullNsPerTerm  ewma         // observed cost of one term on the full path
	routed         atomic.Int64 // adaptive routing decisions, drives probing
}

// DeltaNsPerTerm reports the adaptive model's current estimate of the cost
// of one recomputed term on the delta path (0 before any observation).
func (bc *BatchCounters) DeltaNsPerTerm() float64 { return bc.deltaNsPerTerm.Load() }

// FullNsPerTerm reports the estimated cost of one term on the full path
// (0 before any observation).
func (bc *BatchCounters) FullNsPerTerm() float64 { return bc.fullNsPerTerm.Load() }

// AdaptiveCutoff reports the affected-term fraction at which the model
// currently estimates delta and full evaluation to cost the same — the
// learned replacement for the static DeltaCutoff. 0 means the model has
// not yet observed both paths.
func (bc *BatchCounters) AdaptiveCutoff() float64 {
	d, f := bc.deltaNsPerTerm.Load(), bc.fullNsPerTerm.Load()
	if d <= 0 || f <= 0 {
		return 0
	}
	return f / d
}

// resolvedScenario is a scenario with names resolved to Vars and values
// parsed into the carrier: the dense valuation writes a worker performs
// before evaluating.
type resolvedScenario[T any] struct {
	vars []provenance.Var
	vals []T
}

// resolver maps scenario names through the vocabulary and assignments
// through the carrier, flattening every scenario's pairs into two shared
// backing arrays so a large batch costs two allocations instead of two per
// scenario.
type resolver[T any, C provenance.Carrier[T]] struct {
	cr   C
	vb   *provenance.Vocab
	vars []provenance.Var
	vals []T
}

func newResolver[T any, C provenance.Carrier[T]](cr C, vb *provenance.Vocab, scenarios []*Scenario) resolver[T, C] {
	total := 0
	for _, sc := range scenarios {
		total += len(sc.Assign)
	}
	return resolver[T, C]{
		cr:   cr,
		vb:   vb,
		vars: make([]provenance.Var, 0, total),
		vals: make([]T, 0, total),
	}
}

// one resolves a single scenario into the shared backing, returning the
// dense-writable form plus the sorted list of names that did not resolve
// and any assignment the carrier rejected (partial entries are rolled back
// on either failure; unknown names win when both occur). The backing never
// reallocates — capacity was reserved for every assignment up front — so
// earlier scenarios' slices stay valid.
func (r *resolver[T, C]) one(sc *Scenario) (resolvedScenario[T], []string, *BadAssignmentError) {
	v0 := len(r.vars)
	var unknown []string
	var bad *BadAssignmentError
	for name, x := range sc.Assign {
		v, ok := r.vb.Lookup(name)
		if !ok {
			unknown = append(unknown, name)
			continue
		}
		xt, err := r.cr.Value(x)
		if err != nil {
			if bad == nil {
				bad = &BadAssignmentError{Name: name, Err: err}
			}
			continue
		}
		r.vars = append(r.vars, v)
		r.vals = append(r.vals, xt)
	}
	if len(unknown) != 0 || bad != nil {
		r.vars, r.vals = r.vars[:v0], r.vals[:v0]
		sort.Strings(unknown)
		return resolvedScenario[T]{}, unknown, bad
	}
	n := len(r.vars)
	return resolvedScenario[T]{vars: r.vars[v0:n:n], vals: r.vals[v0:n:n]}, nil, nil
}

// resolve maps every scenario's names through the vocabulary up front, so
// workers never touch the Vocab (it is not synchronized) and name typos or
// carrier-rejected values are reported — with the scenario's index — before
// any evaluation starts.
func resolve[T any, C provenance.Carrier[T]](cr C, vb *provenance.Vocab, scenarios []*Scenario) ([]resolvedScenario[T], error) {
	r := newResolver[T, C](cr, vb, scenarios)
	out := make([]resolvedScenario[T], len(scenarios))
	for i, sc := range scenarios {
		rs, unknown, bad := r.one(sc)
		if len(unknown) != 0 {
			return nil, ErrUnknownVars(i, unknown)
		}
		if bad != nil {
			bad.Scenario = i
			return nil, bad
		}
		out[i] = rs
	}
	return out, nil
}

// UnknownVarsError reports the names a scenario assigned that are missing
// from the vocabulary.
type UnknownVarsError struct {
	Scenario int      // batch position, or arrival index on a stream
	Names    []string // sorted unresolved names
}

func (e *UnknownVarsError) Error() string {
	quoted := make([]string, len(e.Names))
	for j, name := range e.Names {
		quoted[j] = fmt.Sprintf("%q", name)
	}
	noun := "variable"
	if len(e.Names) > 1 {
		noun = "variables"
	}
	return fmt.Sprintf("hypo: scenario %d assigns unknown %s %s", e.Scenario, noun, strings.Join(quoted, ", "))
}

// ErrUnknownVars builds the *UnknownVarsError for scenario i.
func ErrUnknownVars(i int, unknown []string) error {
	return &UnknownVarsError{Scenario: i, Names: unknown}
}

// BadAssignmentError reports a scenario assignment the evaluation carrier
// rejected — a fractional or negative count, a NaN cost, a probability
// outside [0,1].
type BadAssignmentError struct {
	Scenario int    // batch position, or arrival index on a stream
	Name     string // the offending variable
	Err      error  // the carrier's reason
}

func (e *BadAssignmentError) Error() string {
	return fmt.Sprintf("hypo: scenario %d assigns %q: %v", e.Scenario, e.Name, e.Err)
}

func (e *BadAssignmentError) Unwrap() error { return e.Err }

// UnknownVars returns the names the scenario assigns that are missing from
// the vocabulary, sorted. An empty result means the scenario resolves.
func (sc *Scenario) UnknownVars(vb *provenance.Vocab) []string {
	r := newResolver[float64, provenance.Float](provenance.Float{}, vb, []*Scenario{sc})
	_, unknown, _ := r.one(sc)
	return unknown
}

// pairSorter orders a resolved scenario's parallel var/val slices by Var,
// the precondition of the merge-based diff below. One instance is reused
// across a batch so sort.Sort sees the same pointer every call.
type pairSorter[T any] struct {
	vars []provenance.Var
	vals []T
}

func (p *pairSorter[T]) Len() int           { return len(p.vars) }
func (p *pairSorter[T]) Less(i, j int) bool { return p.vars[i] < p.vars[j] }
func (p *pairSorter[T]) Swap(i, j int) {
	p.vars[i], p.vars[j] = p.vars[j], p.vars[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}

// sortPairs sorts one scenario's assignment pairs by Var: inline insertion
// sort for the typical sparse scenario (no interface-call overhead on the
// stream hot path), sort.Sort for wide ones.
func sortPairs[T any](ps *pairSorter[T], vars []provenance.Var, vals []T) {
	if len(vars) > 32 {
		ps.vars, ps.vals = vars, vals
		sort.Sort(ps)
		return
	}
	for i := 1; i < len(vars); i++ {
		v, x := vars[i], vals[i]
		j := i - 1
		for j >= 0 && vars[j] > v {
			vars[j+1], vals[j+1] = vars[j], vals[j]
			j--
		}
		vars[j+1], vals[j+1] = v, x
	}
}

// symDiff appends to out the symmetric difference of two sorted assignment
// lists: the variables whose effective value (identity One when unassigned)
// differs between them. Consecutive scenarios of a correlated stream have
// tiny diffs even when each assigns many variables.
func symDiff[T any, C provenance.Carrier[T]](cr C, aV []provenance.Var, aX []T, bV []provenance.Var, bX []T, out []provenance.Var) []provenance.Var {
	one := cr.One()
	i, j := 0, 0
	for i < len(aV) && j < len(bV) {
		switch {
		case aV[i] < bV[j]:
			if !cr.Equal(aX[i], one) {
				out = append(out, aV[i])
			}
			i++
		case aV[i] > bV[j]:
			if !cr.Equal(bX[j], one) {
				out = append(out, bV[j])
			}
			j++
		default:
			if !cr.Equal(aX[i], bX[j]) {
				out = append(out, aV[i])
			}
			i++
			j++
		}
	}
	for ; i < len(aV); i++ {
		if !cr.Equal(aX[i], one) {
			out = append(out, aV[i])
		}
	}
	for ; j < len(bV); j++ {
		if !cr.Equal(bX[j], one) {
			out = append(out, bV[j])
		}
	}
	return out
}

// chainOrder greedily orders a chained batch by assignment overlap: start
// at the first arrival, repeatedly pick the unvisited scenario with the
// smallest symmetric difference from the current one. Results are still
// emitted in input order; only evaluation follows the chain. The search is
// quadratic in the batch size, so it is skipped — arrival order chains
// as-is, which on a correlated stream is already near-optimal — past
// maxChainOrder scenarios, and on sets too small for the reordering gain
// to repay the search (the caller gates on set size).
func chainOrder[T any, C provenance.Carrier[T]](cr C, resolved []resolvedScenario[T], search bool) []int {
	n := len(resolved)
	order := make([]int, n)
	if !search || n > maxChainOrder {
		for i := range order {
			order[i] = i
		}
		return order
	}
	used := make([]bool, n)
	used[0] = true
	cur := 0
	var scratch []provenance.Var // reused symDiff output: its length is the metric
	for k := 1; k < n; k++ {
		best, bestDiff := -1, math.MaxInt
		for j := range resolved {
			if used[j] {
				continue
			}
			a, b := resolved[cur], resolved[j]
			scratch = symDiff(cr, a.vars, a.vals, b.vars, b.vals, scratch[:0])
			if d := len(scratch); d < bestDiff {
				best, bestDiff = j, d
			}
		}
		used[best] = true
		order[k] = best
		cur = best
	}
	return order
}

// routingConfig resolves the delta-vs-full routing parameters from the
// options against the set's current size (recomputed when persistent chain
// state re-targets a grown set).
func routingConfig(size int, opts BatchOptions) (threshold int, adaptive bool) {
	cutoff := opts.DeltaCutoff
	if cutoff == 0 {
		cutoff = DefaultDeltaCutoff
		adaptive = opts.Counters != nil
	}
	threshold = -1
	if cutoff > 0 {
		threshold = int(cutoff * float64(size))
	}
	return threshold, adaptive
}

// evalState is one worker's reusable evaluation machinery: a dense valuation
// maintained between scenarios, delta scratch, the routing configuration,
// and — on chained batches — the previous scenario's assignments and
// answers.
type evalState[T any, C provenance.Carrier[T]] struct {
	c               *provenance.Kernel[T, C]
	one             T
	val             []T
	delta           *provenance.DeltaKernel[T, C]
	staticThreshold int // affected terms above this take the full path; -1 disables delta
	adaptive        bool
	chain           bool
	shard           int // split evaluation across this many goroutines when > 1
	counters        *BatchCounters

	evals    int // evaluations by this state, for clock-read thinning
	hasPrev  bool
	prevVars []provenance.Var
	prevVals []T
	prevOut  []T
	diff     []provenance.Var // scratch for the consecutive-valuation diff
}

func newEvalState[T any, C provenance.Carrier[T]](c *provenance.Kernel[T, C], opts BatchOptions, shard int) *evalState[T, C] {
	threshold, adaptive := routingConfig(c.Size(), opts)
	st := &evalState[T, C]{
		c:               c,
		one:             c.Carrier().One(),
		val:             c.NewValuation(),
		staticThreshold: threshold,
		adaptive:        adaptive,
		chain:           opts.Chain,
		shard:           shard,
		counters:        opts.Counters,
	}
	if threshold >= 0 {
		st.delta = c.GetDeltaEval() // pooled: released again in release()
	}
	return st
}

// adopt re-targets persistent chain state (BatchOptions.ChainState) at the
// start of a new micro-batch: the routing parameters are refreshed against
// the set's current size, the valuation grows if Append raised the
// vocabulary, and the chain seed is dropped — falling back to the identity
// baseline for the first scenario — when the set gained polynomials the
// previous answers do not cover. Reports false (releasing the scratch) when
// the state belongs to a different kernel and cannot be reused.
func (st *evalState[T, C]) adopt(c *provenance.Kernel[T, C], opts BatchOptions, shard int) bool {
	if st.c != c {
		st.release()
		return false
	}
	threshold, adaptive := routingConfig(c.Size(), opts)
	st.staticThreshold = threshold
	st.adaptive = adaptive
	st.chain = true
	st.shard = shard
	st.counters = opts.Counters
	switch {
	case threshold >= 0 && st.delta == nil:
		st.delta = c.GetDeltaEval()
	case threshold < 0 && st.delta != nil:
		c.PutDeltaEval(st.delta)
		st.delta = nil
	}
	if n := c.ValuationLen(); len(st.val) < n {
		grown := make([]T, n)
		copy(grown, st.val)
		for i := len(st.val); i < n; i++ {
			grown[i] = st.one
		}
		st.val = grown
	}
	if st.hasPrev && len(st.prevOut) != c.Len() {
		st.hasPrev = false // the set grew: previous answers no longer cover it
	}
	return true
}

// release returns the pooled delta scratch; the state must not evaluate
// afterwards.
func (st *evalState[T, C]) release() {
	if st.delta != nil {
		st.c.PutDeltaEval(st.delta)
		st.delta = nil
	}
}

// threshold resolves the affected-term budget for the delta path: the
// static fraction, or the cost model's current crossover estimate once it
// has observed both paths.
func (st *evalState[T, C]) threshold() int {
	if !st.adaptive {
		return st.staticThreshold
	}
	cut := st.counters.AdaptiveCutoff()
	if cut == 0 {
		return st.staticThreshold // bootstrap until both paths are observed
	}
	if cut > 1 {
		cut = 1 // affected terms never exceed the set: 1 already means "always delta"
	}
	return int(cut * float64(st.c.Size()))
}

// eval applies one resolved scenario to the worker's valuation, routes it,
// and — on unchained batches — restores the identity so the valuation is
// clean for the next scenario. Chained batches instead keep the valuation
// and answers around as the next scenario's delta base.
func (st *evalState[T, C]) eval(rs resolvedScenario[T], out []T) []T {
	if st.chain {
		return st.evalChained(rs, out)
	}
	for j, v := range rs.vars {
		if int(v) < len(st.val) {
			st.val[v] = rs.vals[j]
		}
	}
	out = st.run(rs.vars, false, out)
	for _, v := range rs.vars {
		if int(v) < len(st.val) {
			st.val[v] = st.one
		}
	}
	return out
}

// evalChained transitions the persistent valuation from the previous
// scenario to rs and picks the cheaper delta base: the identity baseline
// (touched = the scenario's own assignments) or the previous answers
// (touched = the consecutive-valuation diff), whichever touches fewer
// terms. The identity baseline also covers the first scenario of a chunk
// (unless ChainState carried a seed over from the previous batch) and the
// case where the diff is denser than the scenario itself — uncorrelated
// neighbors lose nothing.
func (st *evalState[T, C]) evalChained(rs resolvedScenario[T], out []T) []T {
	for _, v := range st.prevVars {
		if int(v) < len(st.val) {
			st.val[v] = st.one
		}
	}
	for j, v := range rs.vars {
		if int(v) < len(st.val) {
			st.val[v] = rs.vals[j]
		}
	}
	touched, chained := rs.vars, false
	if st.hasPrev && st.delta != nil {
		st.diff = symDiff(st.c.Carrier(), st.prevVars, st.prevVals, rs.vars, rs.vals, st.diff[:0])
		if st.c.TermsTouching(st.diff) <= st.c.TermsTouching(rs.vars) {
			touched, chained = st.diff, true
		}
	}
	out = st.run(touched, chained, out)
	st.prevVars, st.prevVals, st.prevOut, st.hasPrev = rs.vars, rs.vals, out, true
	return out
}

// run evaluates under the worker's current valuation. touched is the delta
// base's difference set — the scenario's assignments against the identity
// baseline, or (chained) the diff against the previous scenario, whose
// answers then seed the unaffected polynomials.
func (st *evalState[T, C]) run(touched []provenance.Var, chained bool, out []T) []T {
	c := st.c
	st.evals++
	var ids []int32
	terms, walked, useDelta, probed := 0, false, false, false
	if st.delta != nil {
		th := st.threshold()
		// MinAffectedTerms is an O(len(touched)) lower bound: when even it
		// exceeds the threshold, the full Affected index walk (which a dense
		// scenario would only discard) is skipped.
		if c.MinAffectedTerms(touched) <= th {
			ids, terms = st.delta.Affected(touched)
			walked = true
			useDelta = terms <= th
		}
		if st.adaptive {
			// Exploration: run the other path on a prime cadence so the
			// losing path's EWMA cannot go stale — fast but capped while
			// the model is incomplete, steady once it has both estimates,
			// and not at all when warmup ended without completing (the
			// bootstrap static cutoff then stands, overhead-free).
			n := st.counters.routed.Add(1)
			if st.counters.AdaptiveCutoff() > 0 {
				probed = n%probeInterval == 0
			} else {
				probed = n <= warmupProbeCap && n%warmupProbeInterval == 0
			}
			if probed {
				if useDelta {
					useDelta = false
				} else {
					if !walked {
						ids, terms = st.delta.Affected(touched)
					}
					useDelta = true
				}
			}
		}
	}
	// Observe thinned, and only delta evaluations big enough that their
	// ns/term is marginal cost rather than fixed overhead. Probes are
	// always observed — a deliberately spent exploration evaluation whose
	// sample is then discarded would be pure waste.
	observe := st.adaptive && (probed || st.evals%timeSample == 0)
	if observe && useDelta && !probed && terms < c.Size()/observeDivisor {
		observe = false
	}
	var start time.Time
	if observe {
		start = time.Now()
	}
	sharded := false
	switch {
	case useDelta && chained:
		out = st.delta.EvalAffectedFrom(ids, st.val, st.prevOut, out)
	case useDelta:
		// len(ids) > 1 mirrors EvalAffectedSharded's worker clamp, so the
		// counter only reports shards that actually happen.
		sharded = st.shard > 1 && terms >= shardMinTerms && len(ids) > 1
		if sharded {
			out = st.delta.EvalAffectedSharded(ids, st.val, out, st.shard)
		} else {
			out = st.delta.EvalAffected(ids, st.val, out)
		}
	default:
		sharded = st.shard > 1 && c.Size() >= shardMinTerms && c.Len() > 1
		if sharded {
			out = c.EvalSharded(st.val, out, st.shard)
		} else {
			out = c.Eval(st.val, out)
		}
	}
	if observe {
		ns := float64(time.Since(start).Nanoseconds())
		if useDelta {
			t := terms
			if t < 1 {
				t = 1
			}
			st.counters.deltaNsPerTerm.Observe(ns / float64(t))
		} else if c.Size() > 0 {
			st.counters.fullNsPerTerm.Observe(ns / float64(c.Size()))
		}
	}
	st.count(useDelta, chained, sharded)
	return out
}

func (st *evalState[T, C]) count(delta, chained, sharded bool) {
	if st.counters == nil {
		return
	}
	switch {
	case delta && chained:
		st.counters.ChainedEvals.Add(1)
	case delta:
		st.counters.DeltaEvals.Add(1)
	default:
		st.counters.FullEvals.Add(1)
	}
	if sharded {
		st.counters.ShardedEvals.Add(1)
	}
}

// EvalBatch evaluates every scenario against the compiled set, returning one
// answer vector (in set order) per scenario, in scenario order. With at
// least as many scenarios as workers, scenarios are distributed over the
// pool; with fewer (down to a single huge scenario), the spare workers
// shard inside each scenario's polynomial range instead, so either way all
// cores stay busy. Sparse scenarios ride the delta path (see
// BatchOptions.DeltaCutoff); every path returns per-polynomial
// bit-identical results. The returned rows share one backing array
// (disjoint ranges), so steady-state batches cost O(1) slice allocations.
//
// EvalBatch is generic over the kernel's carrier; with a *provenance.Compiled
// it is exactly the pre-generic float64 batch.
func EvalBatch[T any, C provenance.Carrier[T]](c *provenance.Kernel[T, C], scenarios []*Scenario, opts BatchOptions) ([][]T, error) {
	resolved, err := resolve[T, C](c.Carrier(), c.Vocab, scenarios)
	if err != nil {
		return nil, err
	}
	return evalResolvedBatch(c, resolved, opts), nil
}

// evalResolvedBatch is the evaluation core shared by EvalBatch and
// AnswersBatchEach: route each already-resolved scenario through the
// delta/full/sharded machinery on the configured pool, chained in
// overlap order when the options (and the carrier) ask for it.
func evalResolvedBatch[T any, C provenance.Carrier[T]](c *provenance.Kernel[T, C], resolved []resolvedScenario[T], opts BatchOptions) [][]T {
	out := make([][]T, len(resolved))
	if len(resolved) == 0 {
		return out
	}
	// One backing array for every answer row: scenario i owns the range
	// [i*L, (i+1)*L), capped so a row cannot grow into its neighbor.
	L := c.Len()
	flat := make([]T, len(resolved)*L)
	for i := range out {
		out[i] = flat[i*L : (i+1)*L : (i+1)*L]
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// With fewer scenarios than workers on a set big enough to split, the
	// spare cores move inside each scenario: a pool of one worker per
	// scenario, each allowed workers/len shards. (With one huge scenario
	// that is a single worker sharding the whole range; with a small set,
	// shard stays 1 and the pool simply clamps to the scenario count, so
	// across-scenario parallelism is never lost even when a scenario's
	// evaluation declines to shard.)
	shard := 1
	if workers > len(resolved) && c.Size() >= shardMinTerms {
		shard = workers / len(resolved)
	}
	if workers > len(resolved) {
		workers = len(resolved)
	}
	if opts.Chain && c.Carrier().Chainable() {
		evalChainedBatch(c, resolved, opts, out, workers, shard)
		return out
	}
	if workers <= 1 {
		st := newEvalState(c, opts, shard)
		defer st.release()
		for i := range resolved {
			out[i] = st.eval(resolved[i], out[i])
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			st := newEvalState(c, opts, shard)
			defer st.release()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(resolved) {
					return
				}
				out[i] = st.eval(resolved[i], out[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// evalChainedBatch evaluates a batch as a correlated stream: assignments
// are sorted (the diff merge's precondition), the batch is greedily
// ordered by overlap, and each worker chains through one contiguous chunk
// of the order — chunks rather than work-stealing, so the previous
// scenario's answers are always local to the worker. When the options
// carry a ChainState, the first chunk resumes from the previous batch's
// final evaluator state — so the stream's first scenario of every
// micro-batch chains off the last answers instead of paying an
// identity-baseline delta — and the state is handed back for the next
// batch instead of being released.
func evalChainedBatch[T any, C provenance.Carrier[T]](c *provenance.Kernel[T, C], resolved []resolvedScenario[T], opts BatchOptions, out [][]T, workers, shard int) {
	ps := &pairSorter[T]{}
	for i := range resolved {
		sortPairs(ps, resolved[i].vars, resolved[i].vals)
	}
	order := chainOrder(c.Carrier(), resolved, c.Size() >= shardMinTerms)
	var seed *evalState[T, C]
	if opts.ChainState != nil {
		if st, ok := opts.ChainState.state.(*evalState[T, C]); ok && st.adopt(c, opts, shard) {
			seed = st
		}
		opts.ChainState.state = nil // re-stored below once the batch is done
	}
	finish := func(st *evalState[T, C]) {
		if opts.ChainState != nil {
			opts.ChainState.state = st
		} else {
			st.release()
		}
	}
	if workers <= 1 {
		st := seed
		if st == nil {
			st = newEvalState(c, opts, shard)
		}
		for _, i := range order {
			out[i] = st.eval(resolved[i], out[i])
		}
		finish(st)
		return
	}
	var wg sync.WaitGroup
	kept := false
	for w := 0; w < workers; w++ {
		lo, hi := len(order)*w/workers, len(order)*(w+1)/workers
		if lo >= hi {
			continue
		}
		st := seed // only the first scheduled chunk resumes the carried chain
		seed = nil
		if st == nil {
			st = newEvalState(c, opts, shard)
		}
		keep := !kept // persist the first chunk's state across batches
		kept = true
		wg.Add(1)
		go func(st *evalState[T, C], chunk []int, keep bool) {
			defer wg.Done()
			for _, i := range chunk {
				out[i] = st.eval(resolved[i], out[i])
			}
			if keep {
				finish(st)
			} else {
				st.release()
			}
		}(st, order[lo:hi], keep)
	}
	wg.Wait()
}

// AnswersBatchEach is the per-scenario error-isolating batch used by
// streaming callers: a scenario that fails to resolve yields a non-nil
// *UnknownVarsError or *BadAssignmentError (indexed by batch position) at
// its slot while the rest are evaluated together in one pass — names are
// resolved exactly once.
func AnswersBatchEach[T any, C provenance.Carrier[T]](c *provenance.Kernel[T, C], scenarios []*Scenario, opts BatchOptions) ([][]AnswerOf[T], []error) {
	errs := make([]error, len(scenarios))
	r := newResolver[T, C](c.Carrier(), c.Vocab, scenarios)
	valid := make([]resolvedScenario[T], 0, len(scenarios))
	pos := make([]int, 0, len(scenarios))
	for i, sc := range scenarios {
		rs, unknown, bad := r.one(sc)
		if len(unknown) != 0 {
			errs[i] = ErrUnknownVars(i, unknown)
			continue
		}
		if bad != nil {
			bad.Scenario = i
			errs[i] = bad
			continue
		}
		valid = append(valid, rs)
		pos = append(pos, i)
	}
	rows := evalResolvedBatch(c, valid, opts)
	out := make([][]AnswerOf[T], len(scenarios))
	for k, i := range pos {
		out[i] = tagAnswers(c.Tags, rows[k])
	}
	return out, errs
}

// AnswersBatch is EvalBatch with each value paired to its polynomial's tag.
func AnswersBatch[T any, C provenance.Carrier[T]](c *provenance.Kernel[T, C], scenarios []*Scenario, opts BatchOptions) ([][]AnswerOf[T], error) {
	rows, err := EvalBatch(c, scenarios, opts)
	if err != nil {
		return nil, err
	}
	out := make([][]AnswerOf[T], len(rows))
	for i, vals := range rows {
		out[i] = tagAnswers(c.Tags, vals)
	}
	return out, nil
}

// tagAnswers pairs one answer vector with the set's polynomial tags.
func tagAnswers[T any](tags []string, vals []T) []AnswerOf[T] {
	ans := make([]AnswerOf[T], len(vals))
	for j, v := range vals {
		tag := ""
		if j < len(tags) {
			tag = tags[j]
		}
		ans[j] = AnswerOf[T]{Tag: tag, Value: v}
	}
	return ans
}

// EvalCompiled applies a single scenario to pre-compiled provenance. Callers
// evaluating more than one scenario should prefer EvalBatch, which amortizes
// the valuation and parallelizes across scenarios.
func (sc *Scenario) EvalCompiled(c *provenance.Compiled) ([]float64, error) {
	rows, err := EvalBatch(c, []*Scenario{sc}, BatchOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}
