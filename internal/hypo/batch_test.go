package hypo

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// randomScenarios builds n scenarios over the set's variable names, each
// assigning a random subset.
func randomScenarios(s *provenance.Set, n int, seed int64) []*Scenario {
	rng := rand.New(rand.NewSource(seed))
	var names []string
	for _, v := range s.Vars() {
		names = append(names, s.Vocab.Name(v))
	}
	out := make([]*Scenario, n)
	for i := range out {
		sc := NewScenario()
		for _, name := range names {
			if rng.Intn(2) == 0 {
				sc.Set(name, float64(rng.Intn(16))/8)
			}
		}
		out[i] = sc
	}
	return out
}

// bigSet builds a set large enough that parallel evaluation is exercised
// meaningfully (and by `go test -race`, which is part of the CI check).
func bigSet(t testing.TB) *provenance.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	vb := provenance.NewVocab()
	var vars []provenance.Var
	for i := 0; i < 64; i++ {
		vars = append(vars, vb.Var("w"+itoa(i)))
	}
	s := provenance.NewSet(vb)
	for i := 0; i < 50; i++ {
		p := provenance.NewPolynomial()
		for j := 0; j < 20; j++ {
			p.AddTerm(float64(rng.Intn(9)+1),
				vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		s.Add("g"+itoa(i), p)
	}
	return s
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// TestEvalBatchMatchesSequential: the parallel batch result must equal
// per-scenario sequential evaluation, in scenario order.
func TestEvalBatchMatchesSequential(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	scenarios := randomScenarios(s, 37, 3)
	got, err := EvalBatch(c, scenarios, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scenarios) {
		t.Fatalf("rows = %d, want %d", len(got), len(scenarios))
	}
	for i, sc := range scenarios {
		want, err := sc.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(got[i][j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
				t.Errorf("scenario %d poly %d: batch %v, sequential %v", i, j, got[i][j], want[j])
			}
		}
	}
	// Worker counts beyond the scenario count and explicit single-worker
	// runs agree too.
	for _, workers := range []int{1, 2, 128} {
		again, err := EvalBatch(c, scenarios, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != again[i][j] {
					t.Fatalf("workers=%d scenario %d poly %d: %v != %v",
						workers, i, j, again[i][j], got[i][j])
				}
			}
		}
	}
}

// TestEvalBatchValuationReset: a worker's valuation must be restored to the
// identity between scenarios — a scenario must not leak its assignments
// into the next one evaluated by the same worker.
func TestEvalBatchValuationReset(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "10·a + 100·b"))
	c := s.Compile()
	// Sequential single worker: scenario 0 sets both vars, scenario 1 sets
	// nothing, so any leakage shows up in scenario 1's answer.
	rows, err := EvalBatch(c, []*Scenario{
		NewScenario().Set("a", 0).Set("b", 0),
		NewScenario(),
	}, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 0 {
		t.Errorf("scenario 0 = %v, want 0", rows[0][0])
	}
	if rows[1][0] != 110 {
		t.Errorf("scenario 1 = %v, want 110 (valuation leaked)", rows[1][0])
	}
}

// TestEvalBatchUnknownVariable: name typos fail up front, before any
// evaluation.
func TestEvalBatchUnknownVariable(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	scenarios := []*Scenario{NewScenario().Set("w0", 2), NewScenario().Set("nope", 2)}
	if _, err := EvalBatch(c, scenarios, BatchOptions{}); err == nil {
		t.Error("unknown variable accepted")
	}
}

// TestResolveReportsAllUnknowns: every unresolved name is reported at once,
// with the scenario's index — including index 0 of a single-scenario call.
func TestResolveReportsAllUnknowns(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	bad := NewScenario().Set("w0", 2).Set("zzz", 1).Set("aaa", 3)
	_, err := EvalBatch(c, []*Scenario{NewScenario().Set("w1", 1), bad}, BatchOptions{})
	if err == nil {
		t.Fatal("unknown variables accepted")
	}
	for _, want := range []string{"scenario 1", `"aaa"`, `"zzz"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	_, err = EvalBatch(c, []*Scenario{bad}, BatchOptions{})
	if err == nil || !strings.Contains(err.Error(), "scenario 0") {
		t.Errorf("single-scenario error %q does not carry index 0", err)
	}
	if got := bad.UnknownVars(s.Vocab); len(got) != 2 || got[0] != "aaa" || got[1] != "zzz" {
		t.Errorf("UnknownVars = %v, want [aaa zzz]", got)
	}
	if got := bad.UnknownVars(s.Vocab); got == nil {
		t.Error("UnknownVars lost the unknowns on a second call")
	}
}

// TestEvalBatchDeltaRouting: sparse scenarios ride the delta path, dense
// ones (and a disabled cutoff) fall back to full evaluation, and both paths
// return bit-identical rows.
func TestEvalBatchDeltaRouting(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	sparse := make([]*Scenario, 8)
	for i := range sparse {
		sparse[i] = NewScenario().Set("w"+itoa(i), 0.5)
	}
	dense := randomScenarios(s, 8, 21) // each assigns about half of all vars

	run := func(scs []*Scenario, opts BatchOptions) ([][]float64, *BatchCounters) {
		t.Helper()
		counters := &BatchCounters{}
		opts.Counters = counters
		rows, err := EvalBatch(c, scs, opts)
		if err != nil {
			t.Fatal(err)
		}
		return rows, counters
	}

	// bigSet's variables each occur in many polynomials, so pin the cutoff
	// high enough that a one-variable scenario always qualifies as sparse.
	rows, counters := run(sparse, BatchOptions{Workers: 1, DeltaCutoff: 0.99})
	if got := counters.DeltaEvals.Load(); got != int64(len(sparse)) {
		t.Errorf("sparse batch: DeltaEvals = %d, want %d (FullEvals %d)",
			got, len(sparse), counters.FullEvals.Load())
	}
	full, counters2 := run(sparse, BatchOptions{Workers: 1, DeltaCutoff: -1})
	if got := counters2.FullEvals.Load(); got != int64(len(sparse)) {
		t.Errorf("disabled cutoff: FullEvals = %d, want %d", got, len(sparse))
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != full[i][j] {
				t.Fatalf("scenario %d poly %d: delta %v != full %v", i, j, rows[i][j], full[i][j])
			}
		}
	}
	// Every variable of bigSet occurs in many polynomials, so a scenario
	// assigning about half of them affects (nearly) every polynomial.
	_, counters3 := run(dense, BatchOptions{Workers: 1})
	if counters3.FullEvals.Load() == 0 {
		t.Errorf("dense batch never took the full path (delta %d, full %d)",
			counters3.DeltaEvals.Load(), counters3.FullEvals.Load())
	}
}

// TestEvalBatchSharded: with fewer scenarios than workers on a large set,
// evaluation is sharded across the pool and stays bit-identical to the
// sequential result.
func TestEvalBatchSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vb := provenance.NewVocab()
	var vars []provenance.Var
	for i := 0; i < 96; i++ {
		vars = append(vars, vb.Var("w"+itoa(i)))
	}
	s := provenance.NewSet(vb)
	for i := 0; i < 8; i++ {
		p := provenance.NewPolynomial()
		for j := 0; j < 400; j++ {
			p.AddTerm(float64(rng.Intn(9)+1),
				vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		s.Add("g"+itoa(i), p)
	}
	c := s.Compile()
	scenarios := randomScenarios(s, 2, 13)
	counters := &BatchCounters{}
	got, err := EvalBatch(c, scenarios, BatchOptions{Workers: 4, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	if counters.ShardedEvals.Load() == 0 {
		t.Errorf("no sharded evals with 2 scenarios on 4 workers over %d terms", c.Size())
	}
	want, err := EvalBatch(c, scenarios, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("scenario %d poly %d: sharded %v != sequential %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestEvalBatchEmpty: zero scenarios is a valid (empty) batch.
func TestEvalBatchEmpty(t *testing.T) {
	c := bigSet(t).Compile()
	rows, err := EvalBatch(c, nil, BatchOptions{})
	if err != nil || len(rows) != 0 {
		t.Errorf("empty batch = %v, %v", rows, err)
	}
}

// TestAnswersBatchTagging: every row carries the set's tags.
func TestAnswersBatchTagging(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	scenarios := randomScenarios(s, 5, 11)
	rows, err := AnswersBatch(c, scenarios, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := EvalBatch(c, scenarios, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j, a := range rows[i] {
			if a.Tag != s.Tags[j] || a.Value != vals[i][j] {
				t.Fatalf("row %d answer %d = %+v, want tag %q value %v",
					i, j, a, s.Tags[j], vals[i][j])
			}
		}
	}
}

// TestProjectUniformRoundTrip covers the Project/UniformOn/IsUniformOn
// round trips on a non-uniform scenario: projecting to meta-variables and
// lifting back yields a scenario that is uniform on the groups, projects to
// itself, and averages the original assignments.
func TestProjectUniformRoundTrip(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "2·m1 + 3·m3 + 5·x"))
	f := abstree.MustForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	v := abstree.MustFromLabels(f, "q1")

	// Non-uniform on the m1/m3 group, plus an out-of-forest variable.
	sc := NewScenario().Set("m1", 0.4).Set("m3", 1.2).Set("x", 2)
	if ok, why := sc.IsUniformOn(v); ok || why == "" {
		t.Fatalf("non-uniform scenario reported uniform (why=%q)", why)
	}

	proj := sc.Project(v)
	if got := proj.Assign["q1"]; math.Abs(got-0.8) > 1e-12 {
		t.Errorf("projected q1 = %v, want mean 0.8", got)
	}
	if got := proj.Assign["x"]; got != 2 {
		t.Errorf("out-of-forest x = %v, want 2 (pass-through)", got)
	}

	// Lifting the projection back to leaves is uniform by construction…
	lifted := proj.UniformOn(v)
	if ok, why := lifted.IsUniformOn(v); !ok {
		t.Errorf("lifted projection not uniform: %s", why)
	}
	if lifted.Assign["m1"] != 0.8 || lifted.Assign["m3"] != 0.8 {
		t.Errorf("lifted = %v, want m1=m3=0.8", lifted.Assign)
	}
	if lifted.Assign["x"] != 2 {
		t.Errorf("lifted x = %v, want 2", lifted.Assign["x"])
	}

	// …and projecting again is a fixed point.
	again := lifted.Project(v)
	if math.Abs(again.Assign["q1"]-0.8) > 1e-12 || again.Assign["x"] != 2 {
		t.Errorf("project∘lift not a fixed point: %v", again.Assign)
	}

	// A uniform scenario survives the full round trip exactly: lift(project)
	// reproduces the original leaf assignments.
	uni := NewScenario().SetAll(0.7, "m1", "m3").Set("x", 3)
	if ok, _ := uni.IsUniformOn(v); !ok {
		t.Fatal("uniform scenario reported non-uniform")
	}
	round := uni.Project(v).UniformOn(v)
	for name, want := range uni.Assign {
		if got := round.Assign[name]; math.Abs(got-want) > 1e-12 {
			t.Errorf("round trip %s = %v, want %v", name, got, want)
		}
	}
}

// TestMaxRelErrorTable is the table-driven satellite: per-component max with
// the denom<1 floor.
func TestMaxRelErrorTable(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"equal", []float64{3, 4}, []float64{3, 4}, 0},
		{"relative", []float64{11}, []float64{10}, 0.1},
		{"per-component-max", []float64{11, 30}, []float64{10, 20}, 0.5},
		// |b|=0.5 < 1 floors the divisor at 1: error is |0.7-0.5|/1, not /0.5.
		{"floor-small-denom", []float64{0.7}, []float64{0.5}, 0.2},
		{"floor-zero-denom", []float64{0.25}, []float64{0}, 0.25},
		// Exactly at the floor boundary |b|=1 the true denominator is used.
		{"denom-at-one", []float64{1.5}, []float64{-1}, 2.5},
		{"negative-values", []float64{-12}, []float64{-10}, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MaxRelError(tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("MaxRelError(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
	if _, err := MaxRelError([]float64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestSpeedupBranches pins the Speedup contract: a fraction in [0, 1), with
// the zero-tOrig and negative-savings branches clamped to 0.
func TestSpeedupBranches(t *testing.T) {
	cases := []struct {
		name        string
		tOrig, tAbs time.Duration
		want        float64
	}{
		{"faster", 100, 25, 0.75},
		{"equal", 100, 100, 0},
		{"zero-orig", 0, 50, 0},
		{"negative-orig", -5, 50, 0},
		{"slower-clamps", 10, 1000, 0},
		{"free", 100, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Speedup(tc.tOrig, tc.tAbs)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Speedup(%v, %v) = %v, want %v", tc.tOrig, tc.tAbs, got, tc.want)
			}
		})
	}
}

// correlatedScenarios builds a random-walk stream: every scenario assigns
// the same small variable set, each differing from its predecessor in one
// value — the correlated shape Engine.Stream's chained micro-batches target.
func correlatedScenarios(s *provenance.Set, n, width int, seed int64) []*Scenario {
	rng := rand.New(rand.NewSource(seed))
	var names []string
	for _, v := range s.Vars() {
		names = append(names, s.Vocab.Name(v))
	}
	if width > len(names) {
		width = len(names)
	}
	cur := map[string]float64{}
	for _, name := range names[:width] {
		cur[name] = 0.5 + rng.Float64()
	}
	out := make([]*Scenario, n)
	for i := range out {
		name := names[rng.Intn(width)]
		cur[name] = 0.5 + rng.Float64()
		sc := NewScenario()
		for k, v := range cur {
			sc.Set(k, v)
		}
		out[i] = sc
	}
	return out
}

// TestChainedBatchEquivalence: a chained batch (overlap-ordered, each
// scenario delta-evaluated against its predecessor) must be bit-identical
// to the plain batch, across worker counts and scenario shapes.
func TestChainedBatchEquivalence(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	for _, tc := range []struct {
		name string
		scs  []*Scenario
	}{
		{"correlated", correlatedScenarios(s, 24, 4, 7)},
		{"random", randomScenarios(s, 24, 8)},
		{"identical", func() []*Scenario {
			scs := make([]*Scenario, 10)
			for i := range scs {
				scs[i] = NewScenario().Set("w1", 0.25)
			}
			return scs
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, err := EvalBatch(c, tc.scs, BatchOptions{Workers: 1, DeltaCutoff: -1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				counters := &BatchCounters{}
				got, err := EvalBatch(c, tc.scs, BatchOptions{
					Workers: workers, DeltaCutoff: 0.99, Chain: true, Counters: counters})
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("workers=%d scenario %d poly %d: chained %v != full %v",
								workers, i, j, got[i][j], want[i][j])
						}
					}
				}
				total := counters.DeltaEvals.Load() + counters.ChainedEvals.Load() + counters.FullEvals.Load()
				if total != int64(len(tc.scs)) {
					t.Fatalf("workers=%d: delta %d + chained %d + full %d != %d scenarios",
						workers, counters.DeltaEvals.Load(), counters.ChainedEvals.Load(),
						counters.FullEvals.Load(), len(tc.scs))
				}
			}
		})
	}
}

// TestChainedBatchCountsChains: on a correlated stream the chained counter
// must actually fire (satellite: chain attribution is distinct from the
// identity-baseline delta count).
func TestChainedBatchCountsChains(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	scs := correlatedScenarios(s, 32, 4, 3)
	counters := &BatchCounters{}
	if _, err := EvalBatch(c, scs, BatchOptions{
		Workers: 1, DeltaCutoff: 0.99, Chain: true, Counters: counters}); err != nil {
		t.Fatal(err)
	}
	if counters.ChainedEvals.Load() == 0 {
		t.Errorf("correlated chained batch recorded no ChainedEvals (delta %d, full %d)",
			counters.DeltaEvals.Load(), counters.FullEvals.Load())
	}
}

// TestAdaptiveCutoffLearns: with DeltaCutoff 0 and counters, enough routed
// scenarios must populate both EWMAs (probing guarantees the minority path
// gets samples) and produce a positive learned cutoff; results stay
// bit-identical to the static paths throughout.
func TestAdaptiveCutoffLearns(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	sparse := make([]*Scenario, 0, 2*probeInterval+8)
	for i := 0; i < cap(sparse); i++ {
		sparse = append(sparse, NewScenario().Set("w"+itoa(i%8), 0.5))
	}
	counters := &BatchCounters{}
	rows, err := EvalBatch(c, sparse, BatchOptions{Workers: 1, Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	want, err := EvalBatch(c, sparse, BatchOptions{Workers: 1, DeltaCutoff: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if rows[i][j] != want[i][j] {
				t.Fatalf("scenario %d poly %d: adaptive %v != full %v", i, j, rows[i][j], want[i][j])
			}
		}
	}
	if got := counters.DeltaNsPerTerm(); got <= 0 {
		t.Errorf("DeltaNsPerTerm = %v after %d scenarios, want > 0", got, len(sparse))
	}
	if got := counters.FullNsPerTerm(); got <= 0 {
		t.Errorf("FullNsPerTerm = %v, want > 0 (probing should sample the full path)", got)
	}
	if got := counters.AdaptiveCutoff(); got <= 0 {
		t.Errorf("AdaptiveCutoff = %v, want > 0 once both paths are observed", got)
	}
	if d, f := counters.DeltaEvals.Load(), counters.FullEvals.Load(); d == 0 || f == 0 || d+f != int64(len(sparse)) {
		t.Errorf("delta %d + full %d != %d, want both paths exercised", d, f, len(sparse))
	}
}
