package hypo

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// randomScenarios builds n scenarios over the set's variable names, each
// assigning a random subset.
func randomScenarios(s *provenance.Set, n int, seed int64) []*Scenario {
	rng := rand.New(rand.NewSource(seed))
	var names []string
	for _, v := range s.Vars() {
		names = append(names, s.Vocab.Name(v))
	}
	out := make([]*Scenario, n)
	for i := range out {
		sc := NewScenario()
		for _, name := range names {
			if rng.Intn(2) == 0 {
				sc.Set(name, float64(rng.Intn(16))/8)
			}
		}
		out[i] = sc
	}
	return out
}

// bigSet builds a set large enough that parallel evaluation is exercised
// meaningfully (and by `go test -race`, which is part of the CI check).
func bigSet(t testing.TB) *provenance.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	vb := provenance.NewVocab()
	var vars []provenance.Var
	for i := 0; i < 64; i++ {
		vars = append(vars, vb.Var("w"+itoa(i)))
	}
	s := provenance.NewSet(vb)
	for i := 0; i < 50; i++ {
		p := provenance.NewPolynomial()
		for j := 0; j < 20; j++ {
			p.AddTerm(float64(rng.Intn(9)+1),
				vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		s.Add("g"+itoa(i), p)
	}
	return s
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

// TestEvalBatchMatchesSequential: the parallel batch result must equal
// per-scenario sequential evaluation, in scenario order.
func TestEvalBatchMatchesSequential(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	scenarios := randomScenarios(s, 37, 3)
	got, err := EvalBatch(c, scenarios, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(scenarios) {
		t.Fatalf("rows = %d, want %d", len(got), len(scenarios))
	}
	for i, sc := range scenarios {
		want, err := sc.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if math.Abs(got[i][j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
				t.Errorf("scenario %d poly %d: batch %v, sequential %v", i, j, got[i][j], want[j])
			}
		}
	}
	// Worker counts beyond the scenario count and explicit single-worker
	// runs agree too.
	for _, workers := range []int{1, 2, 128} {
		again, err := EvalBatch(c, scenarios, BatchOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != again[i][j] {
					t.Fatalf("workers=%d scenario %d poly %d: %v != %v",
						workers, i, j, again[i][j], got[i][j])
				}
			}
		}
	}
}

// TestEvalBatchValuationReset: a worker's valuation must be restored to the
// identity between scenarios — a scenario must not leak its assignments
// into the next one evaluated by the same worker.
func TestEvalBatchValuationReset(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "10·a + 100·b"))
	c := s.Compile()
	// Sequential single worker: scenario 0 sets both vars, scenario 1 sets
	// nothing, so any leakage shows up in scenario 1's answer.
	rows, err := EvalBatch(c, []*Scenario{
		NewScenario().Set("a", 0).Set("b", 0),
		NewScenario(),
	}, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 0 {
		t.Errorf("scenario 0 = %v, want 0", rows[0][0])
	}
	if rows[1][0] != 110 {
		t.Errorf("scenario 1 = %v, want 110 (valuation leaked)", rows[1][0])
	}
}

// TestEvalBatchUnknownVariable: name typos fail up front, before any
// evaluation.
func TestEvalBatchUnknownVariable(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	scenarios := []*Scenario{NewScenario().Set("w0", 2), NewScenario().Set("nope", 2)}
	if _, err := EvalBatch(c, scenarios, BatchOptions{}); err == nil {
		t.Error("unknown variable accepted")
	}
}

// TestEvalBatchEmpty: zero scenarios is a valid (empty) batch.
func TestEvalBatchEmpty(t *testing.T) {
	c := bigSet(t).Compile()
	rows, err := EvalBatch(c, nil, BatchOptions{})
	if err != nil || len(rows) != 0 {
		t.Errorf("empty batch = %v, %v", rows, err)
	}
}

// TestAnswersBatchTagging: every row carries the set's tags.
func TestAnswersBatchTagging(t *testing.T) {
	s := bigSet(t)
	c := s.Compile()
	scenarios := randomScenarios(s, 5, 11)
	rows, err := AnswersBatch(c, scenarios, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := EvalBatch(c, scenarios, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		for j, a := range rows[i] {
			if a.Tag != s.Tags[j] || a.Value != vals[i][j] {
				t.Fatalf("row %d answer %d = %+v, want tag %q value %v",
					i, j, a, s.Tags[j], vals[i][j])
			}
		}
	}
}

// TestProjectUniformRoundTrip covers the Project/UniformOn/IsUniformOn
// round trips on a non-uniform scenario: projecting to meta-variables and
// lifting back yields a scenario that is uniform on the groups, projects to
// itself, and averages the original assignments.
func TestProjectUniformRoundTrip(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "2·m1 + 3·m3 + 5·x"))
	f := abstree.MustForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	v := abstree.MustFromLabels(f, "q1")

	// Non-uniform on the m1/m3 group, plus an out-of-forest variable.
	sc := NewScenario().Set("m1", 0.4).Set("m3", 1.2).Set("x", 2)
	if ok, why := sc.IsUniformOn(v); ok || why == "" {
		t.Fatalf("non-uniform scenario reported uniform (why=%q)", why)
	}

	proj := sc.Project(v)
	if got := proj.Assign["q1"]; math.Abs(got-0.8) > 1e-12 {
		t.Errorf("projected q1 = %v, want mean 0.8", got)
	}
	if got := proj.Assign["x"]; got != 2 {
		t.Errorf("out-of-forest x = %v, want 2 (pass-through)", got)
	}

	// Lifting the projection back to leaves is uniform by construction…
	lifted := proj.UniformOn(v)
	if ok, why := lifted.IsUniformOn(v); !ok {
		t.Errorf("lifted projection not uniform: %s", why)
	}
	if lifted.Assign["m1"] != 0.8 || lifted.Assign["m3"] != 0.8 {
		t.Errorf("lifted = %v, want m1=m3=0.8", lifted.Assign)
	}
	if lifted.Assign["x"] != 2 {
		t.Errorf("lifted x = %v, want 2", lifted.Assign["x"])
	}

	// …and projecting again is a fixed point.
	again := lifted.Project(v)
	if math.Abs(again.Assign["q1"]-0.8) > 1e-12 || again.Assign["x"] != 2 {
		t.Errorf("project∘lift not a fixed point: %v", again.Assign)
	}

	// A uniform scenario survives the full round trip exactly: lift(project)
	// reproduces the original leaf assignments.
	uni := NewScenario().SetAll(0.7, "m1", "m3").Set("x", 3)
	if ok, _ := uni.IsUniformOn(v); !ok {
		t.Fatal("uniform scenario reported non-uniform")
	}
	round := uni.Project(v).UniformOn(v)
	for name, want := range uni.Assign {
		if got := round.Assign[name]; math.Abs(got-want) > 1e-12 {
			t.Errorf("round trip %s = %v, want %v", name, got, want)
		}
	}
}

// TestMaxRelErrorTable is the table-driven satellite: per-component max with
// the denom<1 floor.
func TestMaxRelErrorTable(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"equal", []float64{3, 4}, []float64{3, 4}, 0},
		{"relative", []float64{11}, []float64{10}, 0.1},
		{"per-component-max", []float64{11, 30}, []float64{10, 20}, 0.5},
		// |b|=0.5 < 1 floors the divisor at 1: error is |0.7-0.5|/1, not /0.5.
		{"floor-small-denom", []float64{0.7}, []float64{0.5}, 0.2},
		{"floor-zero-denom", []float64{0.25}, []float64{0}, 0.25},
		// Exactly at the floor boundary |b|=1 the true denominator is used.
		{"denom-at-one", []float64{1.5}, []float64{-1}, 2.5},
		{"negative-values", []float64{-12}, []float64{-10}, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MaxRelError(tc.a, tc.b)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("MaxRelError(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
	if _, err := MaxRelError([]float64{1}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}

// TestSpeedupBranches pins the Speedup contract: a fraction in [0, 1), with
// the zero-tOrig and negative-savings branches clamped to 0.
func TestSpeedupBranches(t *testing.T) {
	cases := []struct {
		name        string
		tOrig, tAbs time.Duration
		want        float64
	}{
		{"faster", 100, 25, 0.75},
		{"equal", 100, 100, 0},
		{"zero-orig", 0, 50, 0},
		{"negative-orig", -5, 50, 0},
		{"slower-clamps", 10, 1000, 0},
		{"free", 100, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Speedup(tc.tOrig, tc.tAbs)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Speedup(%v, %v) = %v, want %v", tc.tOrig, tc.tAbs, got, tc.want)
			}
		})
	}
}
