// Package hypo is the hypothetical-reasoning layer: scenarios assign values
// to provenance variables (or to the meta-variables of an abstraction), and
// applying a scenario to pre-computed provenance yields the query answers
// under the hypothetical update without re-running the query (§1).
//
// Scenarios evaluate in any provenance semiring: the batch entry points are
// generic over provenance.Carrier, so the same scenario can be asked for
// numeric magnitudes (the default), boolean derivability under deletions,
// derivation counts, tropical min-plus costs or max-min clearance levels.
//
// The package also quantifies the two costs the paper trades off:
// assignment time (Figure 10's speedup of compressed vs original
// provenance) and accuracy (abstraction is exact for group-uniform
// scenarios and approximate otherwise).
package hypo

import (
	"fmt"
	"math"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
)

// Scenario is a hypothetical update: a multiplicative (or absolute,
// depending on how the provenance was parameterized) assignment to
// variables by name. Unassigned variables keep the identity value 1.
type Scenario struct {
	Assign map[string]float64
}

// NewScenario returns an empty scenario.
func NewScenario() *Scenario { return &Scenario{Assign: map[string]float64{}} }

// Set assigns a value to a variable name and returns the scenario for
// chaining.
func (sc *Scenario) Set(name string, v float64) *Scenario {
	sc.Assign[name] = v
	return sc
}

// SetAll assigns the same value to several variables.
func (sc *Scenario) SetAll(v float64, names ...string) *Scenario {
	for _, n := range names {
		sc.Assign[n] = v
	}
	return sc
}

// valuation resolves names against a vocabulary; unknown names are reported
// so scenario typos do not silently evaluate to the identity.
func (sc *Scenario) valuation(vb *provenance.Vocab) (map[provenance.Var]float64, error) {
	val := make(map[provenance.Var]float64, len(sc.Assign))
	for name, x := range sc.Assign {
		v, ok := vb.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("hypo: scenario assigns unknown variable %q", name)
		}
		val[v] = x
	}
	return val, nil
}

// Eval applies the scenario to every polynomial of the set, returning the
// hypothetical answers in set order. The set is compiled and evaluated on
// the dense path; callers holding a long-lived set who evaluate many
// scenarios should compile once with Set.Compile and use EvalCompiled or
// EvalBatch to amortize the compilation.
func (sc *Scenario) Eval(s *provenance.Set) ([]float64, error) {
	return sc.EvalCompiled(s.Compile())
}

// UniformOn lifts a scenario defined on the meta-variables of a VVS to the
// underlying leaf variables: every leaf below a chosen node receives the
// node's assigned value. Scenarios of this form are exactly those the
// abstraction supports losslessly.
func (sc *Scenario) UniformOn(v *abstree.VVS) *Scenario {
	out := NewScenario()
	for ti, t := range v.Forest.Trees {
		for _, n := range v.Nodes[ti] {
			x, ok := sc.Assign[t.Label(n)]
			if !ok {
				continue
			}
			for _, l := range t.LeavesUnder(n) {
				out.Assign[t.Label(l)] = x
			}
		}
	}
	// Assignments to variables outside the forest pass through.
	for name, x := range sc.Assign {
		if _, _, ok := v.Forest.TreeOfLabel(name); !ok {
			out.Assign[name] = x
		}
	}
	return out
}

// Exactness: a scenario on leaf variables is supported by an abstraction
// exactly when it is uniform on every chosen group. IsUniformOn reports
// that, listing the first violating group otherwise.
func (sc *Scenario) IsUniformOn(v *abstree.VVS) (bool, string) {
	for ti, t := range v.Forest.Trees {
		for _, n := range v.Nodes[ti] {
			if t.IsLeaf(n) {
				continue
			}
			var first float64
			var firstName string
			seen := false
			for _, l := range t.LeavesUnder(n) {
				x, ok := sc.Assign[t.Label(l)]
				if !ok {
					x = 1
				}
				if !seen {
					first, firstName, seen = x, t.Label(l), true
					continue
				}
				if x != first {
					return false, fmt.Sprintf("group %q assigns %v to %s but %v to %s",
						t.Label(n), first, firstName, x, t.Label(l))
				}
			}
		}
	}
	return true, ""
}

// Project maps a leaf-variable scenario onto the abstraction's
// meta-variables: each chosen group receives the mean of its members'
// assignments (exact when the scenario is uniform, the natural estimate
// otherwise).
func (sc *Scenario) Project(v *abstree.VVS) *Scenario {
	out := NewScenario()
	covered := map[string]bool{}
	for ti, t := range v.Forest.Trees {
		for _, n := range v.Nodes[ti] {
			leaves := t.LeavesUnder(n)
			sum := 0.0
			for _, l := range leaves {
				covered[t.Label(l)] = true
				x, ok := sc.Assign[t.Label(l)]
				if !ok {
					x = 1
				}
				sum += x
			}
			if len(leaves) > 0 {
				out.Assign[t.Label(n)] = sum / float64(len(leaves))
			}
		}
	}
	for name, x := range sc.Assign {
		if !covered[name] {
			out.Assign[name] = x
		}
	}
	return out
}

// AnswerOf pairs a polynomial's tag with its value under a scenario, in
// whatever carrier the scenario was evaluated in — float64 magnitudes,
// boolean derivability, int64 counts, tropical costs.
type AnswerOf[T any] struct {
	Tag   string
	Value T
}

// Answer is the float64 answer — the default carrier, and the type every
// pre-semiring call site uses.
type Answer = AnswerOf[float64]

// ValueAnswer is the carrier-erased answer used at dynamic boundaries (the
// HTTP API, the CLI) where the carrier is chosen per request: Value holds
// the carrier's value (float64, bool, int64) as an any.
type ValueAnswer struct {
	Tag   string
	Value any
}

// Erase converts a typed answer row to the carrier-erased form.
func Erase[T any](ans []AnswerOf[T]) []ValueAnswer {
	out := make([]ValueAnswer, len(ans))
	for i, a := range ans {
		out[i] = ValueAnswer{Tag: a.Tag, Value: a.Value}
	}
	return out
}

// Answers evaluates and tags the results.
func (sc *Scenario) Answers(s *provenance.Set) ([]Answer, error) {
	vals, err := sc.Eval(s)
	if err != nil {
		return nil, err
	}
	out := make([]Answer, len(vals))
	for i, v := range vals {
		tag := ""
		if i < len(s.Tags) {
			tag = s.Tags[i]
		}
		out[i] = Answer{Tag: tag, Value: v}
	}
	return out, nil
}

// MaxRelError returns the maximum per-component relative error between two
// answer vectors: max_i |a[i]−b[i]| / max(|b[i]|, 1). The divisor is floored
// at 1 so that near-zero reference answers stay comparable instead of
// inflating the error.
func MaxRelError(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("hypo: answer vectors have lengths %d and %d", len(a), len(b))
	}
	worst := 0.0
	for i := range a {
		denom := math.Abs(b[i])
		if denom < 1 {
			denom = 1
		}
		if e := math.Abs(a[i]-b[i]) / denom; e > worst {
			worst = e
		}
	}
	return worst, nil
}

// AssignmentTimes measures the time to evaluate `rounds` scenarios on the
// original and on the abstracted provenance (Figure 10's quantities). Both
// sets are compiled outside the timed region — the measurement is of the
// production evaluation path, which is the compiled one. The scenario
// values are irrelevant to the timing; a fixed pseudo-random valuation over
// each set's variables is used.
func AssignmentTimes(orig, abstracted *provenance.Set, rounds int) (tOrig, tAbs time.Duration) {
	if rounds < 1 {
		rounds = 1
	}
	mkVal := func(s *provenance.Set) map[provenance.Var]float64 {
		val := make(map[provenance.Var]float64)
		for i, v := range s.Vars() {
			val[v] = 0.5 + float64(i%7)/8
		}
		return val
	}
	co, ca := orig.Compile(), abstracted.Compile()
	vo, va := co.Valuation(mkVal(orig)), ca.Valuation(mkVal(abstracted))
	var out []float64
	start := time.Now()
	for r := 0; r < rounds; r++ {
		out = co.Eval(vo, out)
	}
	tOrig = time.Since(start)
	out = nil
	start = time.Now()
	for r := 0; r < rounds; r++ {
		out = ca.Eval(va, out)
	}
	tAbs = time.Since(start)
	return tOrig, tAbs
}

// Speedup converts the two assignment times into the paper's speedup — the
// fraction of the original assignment time saved by the abstraction, in
// [0, 1]: 0.75 means the abstracted evaluation takes a quarter of the
// original's time (multiply by 100 for Figure 10's percentages). Returns 0
// when tOrig is zero (nothing to compare) or when the abstraction is slower
// (negative savings clamp to 0).
func Speedup(tOrig, tAbs time.Duration) float64 {
	if tOrig <= 0 {
		return 0
	}
	s := 1 - float64(tAbs)/float64(tOrig)
	if s < 0 {
		return 0
	}
	return s
}
