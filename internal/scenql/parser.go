package scenql

import (
	"fmt"
	"math"
	"strings"
)

// Query is the parsed AST of one ScenQL statement. Parse validates shape
// only; names and the carrier are resolved against a provenance vocabulary
// by Compile.
type Query struct {
	Src     string
	Explain bool
	Sets    []SetAssign
	Axes    []AxisSpec
	Using   string // semiring name ("" = the float default)
	Order   *OrderSpec
	Limit   int64 // standalone LIMIT: cap generation (0 = none)

	usingPos Pos
	limitPos Pos
}

// SetAssign is one fixed assignment of a SET clause, overlaid on every
// generated scenario.
type SetAssign struct {
	Name  string
	Value float64
	Pos   Pos
}

// AxisSpec is one generator clause of the AST: a sweep, a CROSS tuple
// product, or a SAMPLE perturbation. Axes multiply into a cartesian
// product in clause order, the last clause varying fastest.
type AxisSpec interface {
	// Vars lists the variables the axis assigns.
	Vars() []string
	// Points is the axis cardinality.
	Points() int
	// Position reports where the clause started, for compile errors.
	Position() Pos
}

// SweepSpec is a grid sweep: var IN [from:to:step], both endpoints
// included (the last point clamps to To against float drift).
type SweepSpec struct {
	Var            string
	From, To, Step float64
	Pos            Pos

	points int
}

func (s *SweepSpec) Vars() []string { return []string{s.Var} }
func (s *SweepSpec) Points() int    { return s.points }
func (s *SweepSpec) Position() Pos  { return s.Pos }

// CrossSpec is a cartesian-product clause over a variable group:
// CROSS (a,b) IN {(0,1),(1,0)} — each tuple assigns the group jointly.
type CrossSpec struct {
	Names  []string
	Tuples [][]float64
	Pos    Pos
}

func (s *CrossSpec) Vars() []string { return s.Names }
func (s *CrossSpec) Points() int    { return len(s.Tuples) }
func (s *CrossSpec) Position() Pos  { return s.Pos }

// SampleSpec draws Count independent scenarios, each assigning every
// listed variable a uniform value in [Lo, Hi]. Draws are a pure hash of
// (Seed, point index, variable position) — deterministic, order-free, and
// O(1) memory however large Count is.
type SampleSpec struct {
	Count int
	Names []string
	Lo    float64
	Hi    float64
	Seed  int64
	Pos   Pos
}

func (s *SampleSpec) Vars() []string { return s.Names }
func (s *SampleSpec) Points() int    { return s.Count }
func (s *SampleSpec) Position() Pos  { return s.Pos }

// OrderSpec is the streaming top-k filter: ORDER BY ans[key] [DESC]
// LIMIT k. Key is a polynomial index (ans[3]) or a tag (ans['total']);
// exactly one of Tag/ByTag and Index is meaningful.
type OrderSpec struct {
	Index int    // ans[3]
	Tag   string // ans['total']
	ByTag bool
	Desc  bool
	K     int64 // inline LIMIT; 0 until attached (see Compile)
	Pos   Pos
}

// Key renders the order key as it appears in EXPLAIN ("ans[3]",
// "ans['total']").
func (o *OrderSpec) Key() string {
	if o.ByTag {
		return fmt.Sprintf("ans['%s']", o.Tag)
	}
	return fmt.Sprintf("ans[%d]", o.Index)
}

// parser consumes the token stream.
type parser struct {
	lex *lexer
	cur token
}

// Parse parses one ScenQL statement. Errors are *ParseError and carry the
// source position.
func Parse(src string) (*Query, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{Src: src}
	if p.isKeyword("EXPLAIN") {
		q.Explain = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	seenClause := false
	for p.cur.kind != tokEOF {
		if err := p.clause(q); err != nil {
			return nil, err
		}
		seenClause = true
	}
	if !seenClause {
		return nil, &ParseError{Pos: p.cur.pos, Msg: "empty query: expected at least one clause"}
	}
	return q, nil
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

// keyword returns the uppercased text of an identifier token, "" otherwise.
func (p *parser) keyword() string {
	if p.cur.kind != tokIdent {
		return ""
	}
	return strings.ToUpper(p.cur.text)
}

func (p *parser) isKeyword(kw string) bool { return p.keyword() == kw }

// expectKeyword consumes the given case-insensitive keyword.
func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.describe())
	}
	return p.advance()
}

// expect consumes a token of the given kind, returning it.
func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur.kind != k {
		return token{}, p.errf("expected %s, got %s", k, p.describe())
	}
	t := p.cur
	return t, p.advance()
}

func (p *parser) describe() string {
	switch p.cur.kind {
	case tokEOF:
		return "end of query"
	case tokIdent, tokNumber:
		return fmt.Sprintf("%q", p.cur.text)
	case tokString:
		return fmt.Sprintf("string %q", p.cur.text)
	}
	return p.cur.kind.String()
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur.pos, Msg: fmt.Sprintf(format, args...)}
}

// errAt positions an error on an already-consumed token.
func errAt(pos Pos, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// clause dispatches one clause. A leading identifier that is not a
// reserved keyword starts a sweep; the keywords are reserved — a variable
// literally named "set" or "limit" cannot head a sweep clause.
func (p *parser) clause(q *Query) error {
	switch p.keyword() {
	case "":
		return p.errf("expected a clause (sweep, SET, CROSS, SAMPLE, USING, ORDER BY, LIMIT), got %s", p.describe())
	case "EXPLAIN":
		return p.errf("EXPLAIN must be the first word of the query")
	case "SET":
		return p.setClause(q)
	case "CROSS":
		return p.crossClause(q)
	case "SAMPLE":
		return p.sampleClause(q)
	case "USING":
		return p.usingClause(q)
	case "ORDER":
		return p.orderClause(q)
	case "LIMIT":
		return p.limitClause(q)
	case "IN", "BY", "ANS", "ASC", "DESC", "SEED":
		return p.errf("unexpected keyword %q", p.cur.text)
	default:
		return p.sweepClause(q)
	}
}

func (p *parser) setClause(q *Query) error {
	if err := p.advance(); err != nil { // SET
		return err
	}
	for {
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if kw := strings.ToUpper(name.text); reservedWords[kw] {
			return errAt(name.pos, "%q is a reserved word and cannot name a variable", name.text)
		}
		if _, err := p.expect(tokEquals); err != nil {
			return err
		}
		val, err := p.expect(tokNumber)
		if err != nil {
			return err
		}
		q.Sets = append(q.Sets, SetAssign{Name: name.text, Value: val.num, Pos: name.pos})
		if p.cur.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

func (p *parser) sweepClause(q *Query) error {
	name := p.cur
	if err := p.advance(); err != nil {
		return err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return err
	}
	from, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokColon); err != nil {
		return err
	}
	to, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokColon); err != nil {
		return err
	}
	step, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return err
	}
	points, perr := sweepPoints(from.num, to.num, step.num)
	if perr != "" {
		return errAt(name.pos, "sweep %s: %s", name.text, perr)
	}
	q.Axes = append(q.Axes, &SweepSpec{
		Var: name.text, From: from.num, To: to.num, Step: step.num,
		Pos: name.pos, points: points,
	})
	return nil
}

// sweepPoints derives the grid cardinality of [from:to:step], validating
// direction. A small epsilon absorbs float drift so [0:1:0.1] has 11
// points, not 10.
func sweepPoints(from, to, step float64) (int, string) {
	switch {
	case step == 0 || math.IsNaN(step) || math.IsInf(step, 0):
		return 0, fmt.Sprintf("step must be finite and non-zero, got %v", step)
	case math.IsNaN(from) || math.IsInf(from, 0) || math.IsNaN(to) || math.IsInf(to, 0):
		return 0, "bounds must be finite"
	}
	span := (to - from) / step
	if span < 0 {
		return 0, fmt.Sprintf("step %v moves away from %v", step, to)
	}
	n := int(math.Floor(span+1e-9)) + 1
	if n > maxScenarios {
		return 0, fmt.Sprintf("%d grid points exceed the %d-scenario cap", n, maxScenarios)
	}
	return n, ""
}

func (p *parser) crossClause(q *Query) error {
	pos := p.cur.pos
	if err := p.advance(); err != nil { // CROSS
		return err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	var names []string
	for {
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		names = append(names, name.text)
		if p.cur.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	var tuples [][]float64
	for {
		tpos := p.cur.pos
		if _, err := p.expect(tokLParen); err != nil {
			return err
		}
		var tuple []float64
		for {
			val, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			tuple = append(tuple, val.num)
			if p.cur.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return err
		}
		if len(tuple) != len(names) {
			return errAt(tpos, "CROSS tuple has %d values for %d variables", len(tuple), len(names))
		}
		tuples = append(tuples, tuple)
		if p.cur.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return err
	}
	q.Axes = append(q.Axes, &CrossSpec{Names: names, Tuples: tuples, Pos: pos})
	return nil
}

func (p *parser) sampleClause(q *Query) error {
	pos := p.cur.pos
	if err := p.advance(); err != nil { // SAMPLE
		return err
	}
	count, err := p.expectInt("SAMPLE count", 1, maxScenarios)
	if err != nil {
		return err
	}
	var names []string
	for {
		name, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		names = append(names, name.text)
		if p.cur.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	if err := p.expectKeyword("IN"); err != nil {
		return err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return err
	}
	lo, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokColon); err != nil {
		return err
	}
	hi, err := p.expect(tokNumber)
	if err != nil {
		return err
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return err
	}
	if hi.num < lo.num {
		return errAt(pos, "SAMPLE range [%v:%v] is reversed", lo.num, hi.num)
	}
	seed := int64(1)
	if p.isKeyword("SEED") {
		if err := p.advance(); err != nil {
			return err
		}
		seed, err = p.expectInt("SEED", math.MinInt64, math.MaxInt64)
		if err != nil {
			return err
		}
	}
	q.Axes = append(q.Axes, &SampleSpec{
		Count: int(count), Names: names, Lo: lo.num, Hi: hi.num, Seed: seed, Pos: pos,
	})
	return nil
}

func (p *parser) usingClause(q *Query) error {
	pos := p.cur.pos
	if q.Using != "" {
		return errAt(pos, "duplicate USING clause")
	}
	if err := p.advance(); err != nil { // USING
		return err
	}
	name, err := p.expect(tokIdent)
	if err != nil {
		return err
	}
	q.Using = name.text
	q.usingPos = name.pos
	return nil
}

func (p *parser) orderClause(q *Query) error {
	pos := p.cur.pos
	if q.Order != nil {
		return errAt(pos, "duplicate ORDER BY clause")
	}
	if err := p.advance(); err != nil { // ORDER
		return err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	if err := p.expectKeyword("ANS"); err != nil {
		return err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return err
	}
	o := &OrderSpec{Pos: pos}
	switch p.cur.kind {
	case tokNumber:
		idx, err := p.expectInt("answer index", 0, math.MaxInt32)
		if err != nil {
			return err
		}
		o.Index = int(idx)
	case tokString:
		o.Tag, o.ByTag = p.cur.text, true
		if err := p.advance(); err != nil {
			return err
		}
	default:
		return p.errf("expected an answer index or a quoted tag, got %s", p.describe())
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return err
	}
	switch p.keyword() {
	case "ASC":
		if err := p.advance(); err != nil {
			return err
		}
	case "DESC":
		o.Desc = true
		if err := p.advance(); err != nil {
			return err
		}
	}
	if p.isKeyword("LIMIT") {
		if err := p.advance(); err != nil {
			return err
		}
		k, err := p.expectInt("LIMIT", 1, maxScenarios)
		if err != nil {
			return err
		}
		o.K = k
	}
	q.Order = o
	return nil
}

func (p *parser) limitClause(q *Query) error {
	pos := p.cur.pos
	if q.Limit != 0 {
		return errAt(pos, "duplicate LIMIT clause")
	}
	if err := p.advance(); err != nil { // LIMIT
		return err
	}
	n, err := p.expectInt("LIMIT", 1, maxScenarios)
	if err != nil {
		return err
	}
	q.Limit = n
	q.limitPos = pos
	return nil
}

// expectInt consumes a number token that must be an integer in [lo, hi].
func (p *parser) expectInt(what string, lo, hi int64) (int64, error) {
	t, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n := int64(t.num)
	if float64(n) != t.num {
		return 0, errAt(t.pos, "%s must be an integer, got %q", what, t.text)
	}
	if n < lo || n > hi {
		return 0, errAt(t.pos, "%s %d out of range [%d, %d]", what, n, lo, hi)
	}
	return n, nil
}

// reservedWords are the keywords a SET/sweep variable name may not shadow.
var reservedWords = map[string]bool{
	"EXPLAIN": true, "SET": true, "CROSS": true, "SAMPLE": true,
	"USING": true, "ORDER": true, "BY": true, "ANS": true,
	"ASC": true, "DESC": true, "LIMIT": true, "IN": true, "SEED": true,
}
