package scenql

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/semiring"
)

// testVocab interns the variable names the test queries use.
func testVocab(names ...string) *provenance.Vocab {
	vb := provenance.NewVocab()
	vb.Vars(names...)
	return vb
}

func mustPlan(t *testing.T, src string, vb *provenance.Vocab, tags []string) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	p, err := Compile(q, vb, tags)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	return p
}

func TestParseFullQuery(t *testing.T) {
	src := `EXPLAIN
		SET base = 2 -- fixed overlay
		x IN [0:1:0.25]
		CROSS (a, b) IN {(0, 1), (1, 0), (1, 1)}
		SAMPLE 5 u, v IN [0.5:1.5] SEED 42
		USING tropical
		ORDER BY ans['total'] DESC LIMIT 3`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Explain {
		t.Error("Explain flag not set")
	}
	if len(q.Sets) != 1 || q.Sets[0].Name != "base" || q.Sets[0].Value != 2 {
		t.Errorf("Sets = %+v", q.Sets)
	}
	if len(q.Axes) != 3 {
		t.Fatalf("got %d axes, want 3", len(q.Axes))
	}
	sweep := q.Axes[0].(*SweepSpec)
	if sweep.Var != "x" || sweep.Points() != 5 {
		t.Errorf("sweep = %+v with %d points, want x with 5", sweep, sweep.Points())
	}
	cross := q.Axes[1].(*CrossSpec)
	if len(cross.Names) != 2 || cross.Points() != 3 {
		t.Errorf("cross = %+v", cross)
	}
	sample := q.Axes[2].(*SampleSpec)
	if sample.Count != 5 || sample.Seed != 42 || sample.Lo != 0.5 || sample.Hi != 1.5 {
		t.Errorf("sample = %+v", sample)
	}
	if q.Using != "tropical" {
		t.Errorf("Using = %q", q.Using)
	}
	if q.Order == nil || !q.Order.ByTag || q.Order.Tag != "total" || !q.Order.Desc || q.Order.K != 3 {
		t.Errorf("Order = %+v", q.Order)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
		pos  Pos    // expected position (zero Pos = don't check)
	}{
		{"empty", "", "empty query", Pos{}},
		{"comment only", "-- nothing\n", "empty query", Pos{}},
		{"bad char", "x IN [0:1:0.1] ?", "unexpected character", Pos{1, 16}},
		{"sweep missing in", "x [0:1:0.1]", "expected IN", Pos{}},
		{"sweep two-part range", "x IN [0:1]", `expected ":"`, Pos{}},
		{"sweep zero step", "x IN [0:1:0]", "step must be finite and non-zero", Pos{1, 1}},
		{"sweep wrong direction", "x IN [1:0:0.5]", "moves away", Pos{}},
		{"sweep over cap", "x IN [0:1e9:0.001]", "scenario cap", Pos{}},
		{"explain not first", "x IN [0:1:1] EXPLAIN", "EXPLAIN must be the first word", Pos{1, 14}},
		{"reserved set var", "SET limit = 3", "reserved word", Pos{1, 5}},
		{"set missing value", "SET x =", "expected number", Pos{}},
		{"cross arity", "CROSS (a,b) IN {(1,2,3)}", "3 values for 2 variables", Pos{1, 17}},
		{"cross empty", "CROSS (a,b) IN {}", `expected "("`, Pos{}},
		{"sample fractional count", "SAMPLE 2.5 x IN [0:1]", "must be an integer", Pos{1, 8}},
		{"sample zero count", "SAMPLE 0 x IN [0:1]", "out of range", Pos{}},
		{"sample three-part range", "SAMPLE 3 x IN [0:1:0.1]", `expected "]"`, Pos{}},
		{"sample reversed", "SAMPLE 3 x IN [2:1]", "reversed", Pos{1, 1}},
		{"order without ans", "ORDER BY foo[0] LIMIT 1", "expected ANS", Pos{}},
		{"order bad key", "ORDER BY ans[x] LIMIT 1", "answer index or a quoted tag", Pos{}},
		{"order negative index", "ORDER BY ans[-1] LIMIT 1", "out of range", Pos{}},
		{"duplicate limit", "x IN [0:1:1] LIMIT 2 LIMIT 3", "duplicate LIMIT", Pos{1, 22}},
		{"duplicate using", "USING bool USING count", "duplicate USING", Pos{}},
		{"duplicate order", "ORDER BY ans[0] LIMIT 1 ORDER BY ans[1] LIMIT 1", "duplicate ORDER BY", Pos{}},
		{"unterminated string", "ORDER BY ans['total LIMIT 1", "unterminated string", Pos{1, 14}},
		{"malformed number", "SET x = 1e", "malformed exponent", Pos{}},
		{"lone keyword", "IN [0:1:1]", "unexpected keyword", Pos{}},
		{"stray token", "x IN [0:1:1] )", "expected a clause", Pos{1, 14}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("Parse(%q) error is %T, want *ParseError", tc.src, err)
			}
			if !strings.Contains(pe.Error(), tc.want) {
				t.Errorf("Parse(%q) = %v, want substring %q", tc.src, err, tc.want)
			}
			if pe.Pos.Line == 0 || pe.Pos.Col == 0 {
				t.Errorf("Parse(%q) error has zero position: %+v", tc.src, pe.Pos)
			}
			if tc.pos != (Pos{}) && pe.Pos != tc.pos {
				t.Errorf("Parse(%q) error at %v, want %v", tc.src, pe.Pos, tc.pos)
			}
		})
	}
}

func TestCompileErrors(t *testing.T) {
	vb := testVocab("x", "y")
	tags := []string{"first", "total"}
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown sweep var", "z IN [0:1:0.5]", `unknown variable "z"`},
		{"unknown set var", "SET z = 1", `unknown variable "z"`},
		{"duplicate var", "x IN [0:1:0.5] SET x = 2", "already assigned"},
		{"duplicate across axes", "x IN [0:1:0.5] CROSS (x,y) IN {(1,2)}", "already assigned"},
		{"unknown semiring", "x IN [0:1:0.5] USING frobnitz", "unknown semiring"},
		{"order index range", "x IN [0:1:0.5] ORDER BY ans[7] LIMIT 2", "out of range"},
		{"order unknown tag", "x IN [0:1:0.5] ORDER BY ans['nope'] LIMIT 2", `no answer tagged "nope"`},
		{"order without limit", "x IN [0:1:0.5] ORDER BY ans[0]", "ORDER BY needs a LIMIT"},
		{"order plus limit", "x IN [0:1:0.5] ORDER BY ans[0] LIMIT 2 LIMIT 3", "cannot both"},
		{"product over cap", "x IN [0:1:0.0001] y IN [0:1:0.0001]", "exceeds the 100000000-scenario cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			_, err = Compile(q, vb, tags)
			if err == nil {
				t.Fatalf("Compile(%q) succeeded, want error containing %q", tc.src, tc.want)
			}
			ce, ok := err.(*CompileError)
			if !ok {
				t.Fatalf("Compile(%q) error is %T, want *CompileError", tc.src, err)
			}
			if !strings.Contains(ce.Error(), tc.want) {
				t.Errorf("Compile(%q) = %v, want substring %q", tc.src, err, tc.want)
			}
		})
	}
}

func TestCompileResolvesTagAndKind(t *testing.T) {
	vb := testVocab("x")
	p := mustPlan(t, "x IN [0:1:0.5] USING minmax ORDER BY ans['total'] ASC LIMIT 2", vb, []string{"a", "total"})
	if p.Kind != semiring.KindMinMax {
		t.Errorf("Kind = %v", p.Kind)
	}
	if p.Order == nil || p.Order.Index != 1 || p.Order.Desc || p.Order.K != 2 {
		t.Errorf("Order = %+v", p.Order)
	}
	if p.Order.Key != "ans['total']" {
		t.Errorf("Order.Key = %q", p.Order.Key)
	}
}

// TestSnakeOrder is the load-bearing property of the iterator: consecutive
// scenarios differ in exactly one axis's variables, and every grid point is
// visited exactly once.
func TestSnakeOrder(t *testing.T) {
	vb := testVocab("x", "a", "b", "u")
	p := mustPlan(t, "x IN [0:1:0.5] CROSS (a,b) IN {(0,0),(0,1),(1,1)} SAMPLE 4 u IN [0:1] SEED 7", vb, nil)
	if p.Count() != 3*3*4 {
		t.Fatalf("Count = %d, want 36", p.Count())
	}
	it := p.Iter()
	var prev *hypo.Scenario
	seen := map[string]bool{}
	n := 0
	for {
		sc, ok := it.Next()
		if !ok {
			break
		}
		n++
		key := ""
		for _, name := range []string{"x", "a", "b", "u"} {
			v, ok := sc.Assign[name]
			if !ok {
				t.Fatalf("scenario %d missing %q: %v", n, name, sc.Assign)
			}
			key += name + "=" + strconv.FormatFloat(v, 'g', -1, 64) + ";"
		}
		if seen[key] {
			t.Fatalf("scenario %d revisits %s", n, key)
		}
		seen[key] = true
		if prev != nil {
			changed := map[string]bool{}
			for name, v := range sc.Assign {
				if prev.Assign[name] != v {
					changed[name] = true
				}
			}
			if len(changed) == 0 {
				t.Fatalf("scenario %d identical to its predecessor", n)
			}
			// The changed set must be exactly one axis's variable set.
			switch {
			case len(changed) == 1 && (changed["x"] || changed["u"]):
			case changed["a"] || changed["b"]:
				for name := range changed {
					if name != "a" && name != "b" {
						t.Fatalf("scenario %d changes %v: crosses axes", n, changed)
					}
				}
			default:
				t.Fatalf("scenario %d changes %v: crosses axes", n, changed)
			}
		}
		prev = sc
	}
	if n != 36 {
		t.Fatalf("iterated %d scenarios, want 36", n)
	}
}

func TestSweepEndpointsClamp(t *testing.T) {
	vb := testVocab("x")
	p := mustPlan(t, "x IN [0:1:0.1]", vb, nil)
	if p.Count() != 11 {
		t.Fatalf("Count = %d, want 11", p.Count())
	}
	it := p.Iter()
	var last *hypo.Scenario
	first := true
	for {
		sc, ok := it.Next()
		if !ok {
			break
		}
		if first {
			if sc.Assign["x"] != 0 {
				t.Errorf("first point x = %v, want 0", sc.Assign["x"])
			}
			first = false
		}
		last = sc
	}
	if last.Assign["x"] != 1 {
		t.Errorf("last point x = %v, want exactly 1 (clamped)", last.Assign["x"])
	}
}

func TestSampleDeterminism(t *testing.T) {
	vb := testVocab("u", "v")
	run := func() []float64 {
		p := mustPlan(t, "SAMPLE 16 u, v IN [2:4] SEED 99", vb, nil)
		var vals []float64
		it := p.Iter()
		for {
			sc, ok := it.Next()
			if !ok {
				break
			}
			for _, name := range []string{"u", "v"} {
				v := sc.Assign[name]
				if v < 2 || v > 4 {
					t.Fatalf("%s = %v out of [2,4]", name, v)
				}
				vals = append(vals, v)
			}
		}
		return vals
	}
	a, b := run(), run()
	if len(a) != 32 {
		t.Fatalf("got %d draws, want 32", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across runs: %v vs %v", i, a[i], b[i])
		}
	}
	// Different seed, different draws.
	q, _ := Parse("SAMPLE 16 u, v IN [2:4] SEED 100")
	p2, err := Compile(q, vb, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := p2.Iter()
	sc, _ := it.Next()
	if sc.Assign["u"] == a[0] && sc.Assign["v"] == a[1] {
		t.Error("seed 100 reproduced seed 99's first draw")
	}
}

func TestLimitCapsIteration(t *testing.T) {
	vb := testVocab("x")
	p := mustPlan(t, "x IN [0:1:0.01] LIMIT 7", vb, nil)
	if p.Count() != 101 || p.Scenarios() != 7 {
		t.Fatalf("Count = %d, Scenarios = %d; want 101, 7", p.Count(), p.Scenarios())
	}
	it := p.Iter()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Fatalf("iterated %d, want 7", n)
	}
}

func TestNoAxesYieldsSingleScenario(t *testing.T) {
	vb := testVocab("x")
	p := mustPlan(t, "SET x = 0.5", vb, nil)
	if p.Count() != 1 {
		t.Fatalf("Count = %d, want 1", p.Count())
	}
	it := p.Iter()
	sc, ok := it.Next()
	if !ok || sc.Assign["x"] != 0.5 {
		t.Fatalf("Next = %v, %v", sc, ok)
	}
	if _, ok := it.Next(); ok {
		t.Fatal("iterator yielded a second scenario")
	}
}

func TestClassesTelescope(t *testing.T) {
	vb := testVocab("x", "a", "b", "u")
	p := mustPlan(t, "x IN [0:1:0.5] CROSS (a,b) IN {(0,0),(1,1)} SAMPLE 5 u IN [0:1]", vb, nil)
	classes := p.Classes()
	if len(classes) != 4 {
		t.Fatalf("got %d classes, want 4 (seed + 3 axes)", len(classes))
	}
	if classes[0].Label != "seed" || classes[0].Transitions != 1 {
		t.Errorf("seed class = %+v", classes[0])
	}
	total := int64(0)
	for _, c := range classes {
		total += c.Transitions
	}
	if total != p.Count() {
		t.Errorf("transitions sum to %d, want Count() = %d", total, p.Count())
	}
	// Outermost axis steps least: x transitions = (3-1); the innermost
	// sample axis steps 3·2·(5-1) times.
	if classes[1].Transitions != 2 {
		t.Errorf("x class transitions = %d, want 2", classes[1].Transitions)
	}
	if classes[3].Transitions != 3*2*4 {
		t.Errorf("sample class transitions = %d, want 24", classes[3].Transitions)
	}
	if classes[2].Label != "step (a,b)" {
		t.Errorf("cross class label = %q", classes[2].Label)
	}
}

func TestGenerateNodeShape(t *testing.T) {
	vb := testVocab("x", "u")
	p := mustPlan(t, "SET u = 1 x IN [0:1:0.5]", vb, nil)
	g := p.GenerateNode()
	if g.Node != "generate" || g.Order != "snake" || g.Scenarios != 3 {
		t.Errorf("generate node = %+v", g)
	}
	if g.Set["u"] != 1 {
		t.Errorf("Set = %v", g.Set)
	}
	if len(g.Axes) != 1 || g.Axes[0].Node != "sweep" || *g.Axes[0].From != 0 || *g.Axes[0].To != 1 {
		t.Errorf("Axes = %+v", g.Axes)
	}
}

func TestParseAssignments(t *testing.T) {
	sc, err := ParseAssignments(" x = 0.5 , y_2 = -1.5e1 ")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Assign["x"] != 0.5 || sc.Assign["y_2"] != -15 {
		t.Errorf("Assign = %v", sc.Assign)
	}

	errCases := []struct {
		name string
		spec string
		want string
	}{
		{"empty", "", "empty scenario"},
		{"blank", "   ", "empty scenario"},
		{"missing equals", "x 0.5", `expected "="`},
		{"missing value", "x =", "expected a number"},
		{"bad value", "x = oops", "expected a number"},
		{"trailing comma", "x = 1,", "trailing comma"},
		{"bad separator", "x = 1 : y = 2", `expected ","`},
		{"number first", "3 = 1", "expected a variable name"},
		{"bad char", "x = 1 @", "unexpected character"},
	}
	for _, tc := range errCases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseAssignments(tc.spec)
			if err == nil {
				t.Fatalf("ParseAssignments(%q) succeeded, want %q", tc.spec, tc.want)
			}
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("error is %T, want *ParseError", err)
			}
			if !strings.Contains(pe.Error(), tc.want) {
				t.Errorf("ParseAssignments(%q) = %v, want substring %q", tc.spec, err, tc.want)
			}
			if pe.Pos.Line == 0 || pe.Pos.Col == 0 {
				t.Errorf("error has zero position: %+v", pe.Pos)
			}
		})
	}
}

func TestParseScenarios(t *testing.T) {
	scs, err := ParseScenarios("a=1; b=2, c=3 ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("got %d scenarios, want 2", len(scs))
	}
	if scs[0].Assign["a"] != 1 || scs[1].Assign["b"] != 2 || scs[1].Assign["c"] != 3 {
		t.Errorf("scenarios = %v, %v", scs[0].Assign, scs[1].Assign)
	}
	if _, err := ParseScenarios(" ; ; "); err == nil {
		t.Error("all-empty spec parsed")
	}
	if _, err := ParseScenarios("a=1; b="); err == nil || !strings.Contains(err.Error(), "scenario 2") {
		t.Errorf("error %v does not name the failing scenario", err)
	}
}

func TestSweepPointsEdgeCases(t *testing.T) {
	cases := []struct {
		from, to, step float64
		want           int
	}{
		{0, 1, 0.1, 11},
		{0, 1, 0.25, 5},
		{0, 0, 1, 1},         // degenerate single point
		{5, 1, -2, 3},        // descending
		{0, 0.9999, 0.1, 10}, // just short of the next point
	}
	for _, tc := range cases {
		got, msg := sweepPoints(tc.from, tc.to, tc.step)
		if msg != "" {
			t.Errorf("sweepPoints(%v,%v,%v) error %q", tc.from, tc.to, tc.step, msg)
			continue
		}
		if got != tc.want {
			t.Errorf("sweepPoints(%v,%v,%v) = %d, want %d", tc.from, tc.to, tc.step, got, tc.want)
		}
	}
	if _, msg := sweepPoints(0, 1, math.Inf(1)); msg == "" {
		t.Error("infinite step accepted")
	}
	if _, msg := sweepPoints(math.NaN(), 1, 0.1); msg == "" {
		t.Error("NaN bound accepted")
	}
}
