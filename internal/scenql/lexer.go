// Package scenql implements ScenQL, the scenario query language: a tiny
// DSL that describes *families* of hypothetical scenarios — grid sweeps,
// cartesian products over variable groups, seeded sampled perturbations —
// together with the evaluation carrier and a top-k answer filter, so that
// a million-scenario exploration crosses the wire as one statement instead
// of a million JSON lines. The package follows the statement→plan→execute
// shape of a small query engine: Parse produces a Query (the AST), Compile
// resolves it against a provenance vocabulary into a Plan, and the Plan's
// Iter yields scenarios lazily in an overlap-maximizing order so adjacent
// points ride the chained-delta kernel. Execution lives with the owner of
// the kernels (the session Engine); EXPLAIN support is split the same way —
// the Plan describes the generator tree, the executor annotates it with its
// routing and cost model.
//
// The grammar (clauses in any order; keywords are case-insensitive,
// variable names are case-sensitive; see README "Scenario queries"):
//
//	query   := [ "EXPLAIN" ] clause { clause }
//	clause  := ident "IN" "[" num ":" num ":" num "]"          -- grid sweep
//	         | "CROSS" "(" ident {"," ident} ")" "IN"
//	               "{" tuple {"," tuple} "}"                   -- tuple product
//	         | "SAMPLE" int ident {"," ident}
//	               "IN" "[" num ":" num "]" [ "SEED" int ]     -- seeded uniform draws
//	         | "SET" ident "=" num { "," ident "=" num }       -- fixed overlay
//	         | "USING" ident                                   -- semiring carrier
//	         | "ORDER" "BY" "ans" "[" (int | string) "]"
//	               [ "ASC" | "DESC" ] [ "LIMIT" int ]          -- streaming top-k
//	         | "LIMIT" int                                     -- cap generation
//	tuple   := "(" num {"," num} ")"
//
// Generator clauses (sweep, CROSS, SAMPLE) multiply: each is one axis of a
// cartesian product, in clause order, with the last clause varying fastest.
package scenql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Pos is a position in the query source, 1-based.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError is any scanning or parsing failure, carrying the position the
// parser had reached. Compile-time failures (an unknown variable, say) are
// *CompileError instead.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("scenql: parse error at %s: %s", e.Pos, e.Msg)
}

// tokenKind discriminates lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen   // (
	tokRParen   // )
	tokLBracket // [
	tokRBracket // ]
	tokLBrace   // {
	tokRBrace   // }
	tokComma
	tokColon
	tokEquals
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return `"("`
	case tokRParen:
		return `")"`
	case tokLBracket:
		return `"["`
	case tokRBracket:
		return `"]"`
	case tokLBrace:
		return `"{"`
	case tokRBrace:
		return `"}"`
	case tokComma:
		return `","`
	case tokColon:
		return `":"`
	case tokEquals:
		return `"="`
	}
	return "token"
}

// token is one lexed token. Text is the raw source slice (unquoted for
// strings); Num is parsed for tokNumber.
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  Pos
}

// lexer scans a query source string into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

// advance consumes one rune, maintaining line/col.
func (l *lexer) advance() rune {
	r, w := utf8.DecodeRuneInString(l.src[l.off:])
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.off:])
	return r
}

func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		switch r := l.peek(); {
		case r == '-' && strings.HasPrefix(l.src[l.off:], "--"):
			// Line comment, SQL style.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case unicode.IsSpace(r):
			l.advance()
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpace()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	r := l.peek()
	switch {
	case isIdentStart(r):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		return token{kind: tokIdent, text: l.src[start:l.off], pos: pos}, nil
	case unicode.IsDigit(r), r == '.', r == '+', r == '-':
		return l.number(pos)
	case r == '\'' || r == '"':
		return l.quoted(pos)
	}
	l.advance()
	single := map[rune]tokenKind{
		'(': tokLParen, ')': tokRParen,
		'[': tokLBracket, ']': tokRBracket,
		'{': tokLBrace, '}': tokRBrace,
		',': tokComma, ':': tokColon, '=': tokEquals,
	}
	if k, ok := single[r]; ok {
		return token{kind: k, text: string(r), pos: pos}, nil
	}
	return token{}, &ParseError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", r)}
}

// number scans a signed decimal with optional fraction and exponent. The
// sign is part of the literal — ScenQL has no arithmetic, so "-" only ever
// introduces a number.
func (l *lexer) number(pos Pos) (token, error) {
	start := l.off
	if r := l.peek(); r == '+' || r == '-' {
		l.advance()
	}
	digits := 0
	for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
		l.advance()
		digits++
	}
	if l.peek() == '.' {
		l.advance()
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
			digits++
		}
	}
	if digits == 0 {
		return token{}, &ParseError{Pos: pos, Msg: fmt.Sprintf("malformed number %q", l.src[start:l.off])}
	}
	if r := l.peek(); r == 'e' || r == 'E' {
		l.advance()
		if r := l.peek(); r == '+' || r == '-' {
			l.advance()
		}
		expDigits := 0
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			l.advance()
			expDigits++
		}
		if expDigits == 0 {
			return token{}, &ParseError{Pos: pos, Msg: fmt.Sprintf("malformed exponent in %q", l.src[start:l.off])}
		}
	}
	text := l.src[start:l.off]
	x, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, &ParseError{Pos: pos, Msg: fmt.Sprintf("malformed number %q", text)}
	}
	return token{kind: tokNumber, text: text, num: x, pos: pos}, nil
}

// quoted scans a single- or double-quoted string (no escapes; tags with
// quotes in them are not addressable, which is fine for answer tags).
func (l *lexer) quoted(pos Pos) (token, error) {
	quote := l.advance()
	start := l.off
	for l.off < len(l.src) {
		if l.peek() == quote {
			text := l.src[start:l.off]
			l.advance()
			return token{kind: tokString, text: text, pos: pos}, nil
		}
		if l.peek() == '\n' {
			break
		}
		l.advance()
	}
	return token{}, &ParseError{Pos: pos, Msg: "unterminated string"}
}
