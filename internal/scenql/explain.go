package scenql

// EXPLAIN plan-tree JSON. The tree is the contract tooling depends on
// (pinned by a golden test): node names, route labels, and cost-estimate
// fields are stable. The generator half is built here from the Plan; the
// eval node is filled in by the executor, which owns the kernels, the
// routing decision, and the live cost model.

// ExplainPlan is the top-level EXPLAIN payload.
type ExplainPlan struct {
	Statement string `json:"statement"`
	Semiring  string `json:"semiring"`
	Scenarios int64  `json:"scenarios"` // what the iterator will yield
	Plan      any    `json:"plan"`      // root node: topk | limit | eval
}

// TopKNode is the streaming top-k filter (ORDER BY ... LIMIT k).
type TopKNode struct {
	Node  string `json:"node"` // "topk"
	Key   string `json:"key"`  // "ans[3]", "ans['total']"
	Dir   string `json:"dir"`  // "asc" | "desc"
	K     int    `json:"k"`
	Input any    `json:"input"`
}

// LimitNode caps generation (standalone LIMIT).
type LimitNode struct {
	Node  string `json:"node"` // "limit"
	Limit int64  `json:"limit"`
	Input any    `json:"input"`
}

// EvalNode is the kernel-evaluation stage, annotated by the executor with
// the compiled kernel's shape, the cost model behind the adaptive cutoff,
// and the predicted route for each transition class.
type EvalNode struct {
	Node        string    `json:"node"` // "eval"
	Semiring    string    `json:"semiring"`
	Polynomials int       `json:"polynomials"`
	Terms       int       `json:"terms"`
	Chained     bool      `json:"chained"` // scenarios ride the chained-delta stream
	CostModel   CostModel `json:"cost_model"`
	Routes      []Route   `json:"routes"`
	Input       any       `json:"input"`
}

// CostModel reports the numbers driving the delta-vs-full decision.
type CostModel struct {
	// Source: "static" (fixed cutoff), "adaptive" (EWMA-complete),
	// "bootstrap" (adaptive mode, model still warming), "disabled".
	Source string `json:"source"`
	// DeltaNsPerTerm / FullNsPerTerm are the live EWMA estimates; zero
	// until the respective path has been observed.
	DeltaNsPerTerm float64 `json:"delta_ns_per_term,omitempty"`
	FullNsPerTerm  float64 `json:"full_ns_per_term,omitempty"`
	// Cutoff is the affected-terms fraction above which full evaluation
	// wins; ThresholdTerms is that fraction applied to this kernel.
	Cutoff         float64 `json:"cutoff"`
	ThresholdTerms float64 `json:"threshold_terms"`
}

// Route is the predicted evaluation route for one transition class.
type Route struct {
	Class         string   `json:"class"` // "seed", "step x", "step (a,b)"
	Vars          []string `json:"vars"`
	Transitions   int64    `json:"transitions"`
	AffectedTerms int      `json:"affected_terms"`
	// Route: "delta" (seed transition vs identity baseline), "chained"
	// (delta vs the previous scenario), "full", or "sharded".
	Route string `json:"route"`
}

// GenerateNode is the scenario source.
type GenerateNode struct {
	Node      string             `json:"node"`  // "generate"
	Order     string             `json:"order"` // "snake"
	Scenarios int64              `json:"scenarios"`
	Set       map[string]float64 `json:"set,omitempty"`
	Axes      []AxisNode         `json:"axes,omitempty"`
}

// AxisNode describes one generator axis. The numeric bounds are pointers
// so a legitimate zero (from=0) survives omitempty.
type AxisNode struct {
	Node   string   `json:"node"` // "sweep" | "cross" | "sample"
	Vars   []string `json:"vars"`
	Points int      `json:"points"`
	From   *float64 `json:"from,omitempty"`
	To     *float64 `json:"to,omitempty"`
	Step   *float64 `json:"step,omitempty"`
	Lo     *float64 `json:"lo,omitempty"`
	Hi     *float64 `json:"hi,omitempty"`
	Seed   int64    `json:"seed,omitempty"`
}

func ptr(x float64) *float64 { return &x }

// GenerateNode builds the generator half of the EXPLAIN tree.
func (p *Plan) GenerateNode() *GenerateNode {
	g := &GenerateNode{Node: "generate", Order: "snake", Scenarios: p.total}
	if len(p.sets) > 0 {
		g.Set = make(map[string]float64, len(p.sets))
		for _, s := range p.sets {
			g.Set[s.Name] = s.Value
		}
	}
	for _, ax := range p.axes {
		n := AxisNode{Vars: ax.names, Points: int(ax.card)}
		switch s := ax.spec.(type) {
		case *SweepSpec:
			n.Node = "sweep"
			n.From, n.To, n.Step = ptr(s.From), ptr(s.To), ptr(s.Step)
		case *CrossSpec:
			n.Node = "cross"
		case *SampleSpec:
			n.Node = "sample"
			n.Lo, n.Hi, n.Seed = ptr(s.Lo), ptr(s.Hi), s.Seed
		}
		g.Axes = append(g.Axes, n)
	}
	return g
}
