package scenql

import (
	"fmt"

	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/semiring"
)

// maxScenarios caps the number of scenarios a single plan may describe.
// The iterator is lazy, so the cap is not about memory — it bounds how
// much work one statement can queue against a shared session.
const maxScenarios = 100_000_000

// CompileError is a failure resolving a parsed query against a provenance
// set: unknown variable, unknown semiring, out-of-range answer index.
type CompileError struct {
	Pos Pos
	Msg string
}

func (e *CompileError) Error() string {
	return fmt.Sprintf("scenql: compile error at %s: %s", e.Pos, e.Msg)
}

// Order is the resolved top-k filter of a plan.
type Order struct {
	Index int    // resolved polynomial index
	Key   string // as written: "ans[3]" or "ans['total']"
	Desc  bool
	K     int // top-k size
}

// Plan is a compiled ScenQL query: a validated scenario generator plus the
// execution directives (carrier, top-k, generation cap) an executor needs.
// Plans are immutable and safe for concurrent use; each Iter carries its
// own cursor.
type Plan struct {
	Explain bool
	Kind    semiring.Kind // carrier to evaluate under
	Order   *Order        // nil: no top-k filter
	Limit   int64         // generation cap (0 = none); exclusive with Order

	sets  []SetAssign
	axes  []axis
	total int64 // cartesian product size, pre-Limit
}

// axis is one compiled generator dimension.
type axis struct {
	spec  AxisSpec
	names []string
	card  int64
}

// apply assigns the axis's variables for grid position i.
func (a *axis) apply(i int64, sc *hypo.Scenario) {
	switch s := a.spec.(type) {
	case *SweepSpec:
		v := s.From + float64(i)*s.Step
		if i == int64(s.points-1) {
			v = s.To // clamp the final point against float drift
		}
		sc.Set(s.Var, v)
	case *CrossSpec:
		for j, name := range s.Names {
			sc.Set(name, s.Tuples[i][j])
		}
	case *SampleSpec:
		for j, name := range s.Names {
			sc.Set(name, s.draw(i, j))
		}
	}
}

// draw is the SAMPLE axis's uniform value for (point i, variable j): a pure
// splitmix64 hash of (seed, i, j) mapped into [lo, hi]. Being stateless it
// is independent of iteration order and costs no memory however large the
// sample is.
func (s *SampleSpec) draw(i int64, j int) float64 {
	x := uint64(s.Seed)
	x ^= uint64(i)*0x9E3779B97F4A7C15 + uint64(j+1)*0xBF58476D1CE4E5B9
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	u := float64(x>>11) / (1 << 53) // uniform in [0, 1)
	return s.Lo + (s.Hi-s.Lo)*u
}

// Compile resolves a parsed query against a provenance vocabulary and the
// answer tags (tags[i] labels polynomial i; len(tags) is the polynomial
// count). Variables must already exist in the vocabulary — a hypothetical
// scenario over variables the provenance never mentions is a typo, not a
// no-op.
func Compile(q *Query, vb *provenance.Vocab, tags []string) (*Plan, error) {
	p := &Plan{Explain: q.Explain, Kind: semiring.KindFloat, Limit: q.Limit}

	kind, err := compileUsing(q)
	if err != nil {
		return nil, err
	}
	p.Kind = kind

	seen := map[string]Pos{}
	claim := func(name string, pos Pos) error {
		if prev, dup := seen[name]; dup {
			return &CompileError{Pos: pos, Msg: fmt.Sprintf("variable %q already assigned at %s", name, prev)}
		}
		seen[name] = pos
		if _, ok := vb.Lookup(name); !ok {
			return &CompileError{Pos: pos, Msg: fmt.Sprintf("unknown variable %q", name)}
		}
		return nil
	}
	for _, s := range q.Sets {
		if err := claim(s.Name, s.Pos); err != nil {
			return nil, err
		}
	}
	p.sets = q.Sets

	p.total = 1
	for _, spec := range q.Axes {
		for _, name := range spec.Vars() {
			if err := claim(name, spec.Position()); err != nil {
				return nil, err
			}
		}
		card := int64(spec.Points())
		if card == 0 {
			return nil, &CompileError{Pos: spec.Position(), Msg: "axis generates no scenarios"}
		}
		if p.total > maxScenarios/card {
			return nil, &CompileError{
				Pos: spec.Position(),
				Msg: fmt.Sprintf("plan exceeds the %d-scenario cap", int64(maxScenarios)),
			}
		}
		p.total *= card
		p.axes = append(p.axes, axis{spec: spec, names: spec.Vars(), card: card})
	}

	if q.Order != nil {
		if q.Limit != 0 {
			return nil, &CompileError{Pos: q.limitPos, Msg: "LIMIT and ORDER BY ... LIMIT cannot both be given"}
		}
		o, err := compileOrder(q.Order, tags)
		if err != nil {
			return nil, err
		}
		p.Order = o
	}
	return p, nil
}

func compileUsing(q *Query) (semiring.Kind, error) {
	if q.Using == "" {
		return semiring.KindFloat, nil
	}
	kind, err := semiring.ParseKind(q.Using)
	if err != nil {
		return kind, &CompileError{Pos: q.usingPos, Msg: err.Error()}
	}
	return kind, nil
}

func compileOrder(o *OrderSpec, tags []string) (*Order, error) {
	if o.K == 0 {
		return nil, &CompileError{Pos: o.Pos, Msg: "ORDER BY needs a LIMIT: an unbounded sweep cannot be fully ranked"}
	}
	idx := o.Index
	if o.ByTag {
		idx = -1
		for i, t := range tags {
			if t == o.Tag {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, &CompileError{Pos: o.Pos, Msg: fmt.Sprintf("no answer tagged %q", o.Tag)}
		}
	} else if idx >= len(tags) {
		return nil, &CompileError{
			Pos: o.Pos,
			Msg: fmt.Sprintf("answer index %d out of range: the provenance has %d polynomials", idx, len(tags)),
		}
	}
	return &Order{Index: idx, Key: o.Key(), Desc: o.Desc, K: int(o.K)}, nil
}

// Count is the full cartesian-product size, before any LIMIT.
func (p *Plan) Count() int64 { return p.total }

// Scenarios is the number of scenarios the iterator will actually yield:
// Count capped by a standalone LIMIT.
func (p *Plan) Scenarios() int64 {
	if p.Limit > 0 && p.Limit < p.total {
		return p.Limit
	}
	return p.total
}

// Class describes one transition class of the snake iteration for EXPLAIN:
// which variables change between consecutive scenarios, and how often. The
// first class is always the seed scenario (everything assigned at once);
// each axis contributes one class whose transitions step only that axis.
type Class struct {
	Label       string   `json:"label"`
	Vars        []string `json:"vars"`
	Transitions int64    `json:"transitions"`
}

// Classes enumerates the transition classes of the full product in snake
// order. Transition counts telescope: 1 (seed) + Σ prefix(j)·(card_j − 1)
// = Count().
func (p *Plan) Classes() []Class {
	var all []string
	for _, s := range p.sets {
		all = append(all, s.Name)
	}
	for _, ax := range p.axes {
		all = append(all, ax.names...)
	}
	classes := []Class{{Label: "seed", Vars: all, Transitions: 1}}
	prefix := int64(1)
	for _, ax := range p.axes {
		label := "step " + ax.names[0]
		if len(ax.names) > 1 {
			label = "step ("
			for i, n := range ax.names {
				if i > 0 {
					label += ","
				}
				label += n
			}
			label += ")"
		}
		classes = append(classes, Class{
			Label:       label,
			Vars:        ax.names,
			Transitions: prefix * (ax.card - 1),
		})
		prefix *= ax.card
	}
	return classes
}

// Iter starts a fresh scenario iterator over the plan.
//
// The iteration order is a "snake" (reflected mixed-radix Gray) walk of the
// cartesian product: the last axis sweeps forward, then the second-to-last
// steps once and the last sweeps *backward*, and so on. Exactly one axis
// changes between consecutive scenarios, so the symmetric difference two
// adjacent scenarios hand the chained-delta kernel is always a single
// axis's variable set — the overlap-maximizing order the delta router
// wants.
func (p *Plan) Iter() *Iter {
	it := &Iter{p: p}
	if len(p.axes) > 0 {
		it.digits = make([]int64, len(p.axes))
		it.dirs = make([]int64, len(p.axes))
		for i := range it.dirs {
			it.dirs[i] = 1
		}
	}
	return it
}

// Iter walks a plan's scenarios lazily. Not safe for concurrent use; take
// one per consumer.
type Iter struct {
	p      *Plan
	n      int64   // scenarios yielded so far
	digits []int64 // current grid position per axis
	dirs   []int64 // +1 forward, -1 backward (snake direction)
}

// Next yields the next scenario, or ok=false when the plan (or its LIMIT)
// is exhausted. The returned scenario is freshly allocated; callers may
// retain it.
func (it *Iter) Next() (*hypo.Scenario, bool) {
	if it.n >= it.p.Scenarios() {
		return nil, false
	}
	if it.n > 0 {
		// Advance the snake odometer: step the innermost axis that can move
		// in its current direction; axes that cannot reverse direction and
		// defer to the next axis out.
		for i := len(it.digits) - 1; i >= 0; i-- {
			next := it.digits[i] + it.dirs[i]
			if next >= 0 && next < it.p.axes[i].card {
				it.digits[i] = next
				break
			}
			it.dirs[i] = -it.dirs[i]
		}
	}
	sc := hypo.NewScenario()
	for _, s := range it.p.sets {
		sc.Set(s.Name, s.Value)
	}
	for i := range it.p.axes {
		it.p.axes[i].apply(it.digits[i], sc)
	}
	it.n++
	return sc, true
}

// Remaining reports how many scenarios Next will still yield.
func (it *Iter) Remaining() int64 { return it.p.Scenarios() - it.n }
