package scenql

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser's crash-safety contract: any input either
// parses or fails with a *ParseError carrying a real (1-based) source
// position — never a panic, never an anonymous error. Inputs that parse
// are re-checked for basic AST sanity so the fuzzer also exercises the
// accessors EXPLAIN walks.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"x IN [0:1:0.1]",
		"EXPLAIN x IN [0:1:0.25] ORDER BY ans[0] DESC LIMIT 5",
		"SET a = 1, b = -2.5e3",
		"CROSS (a,b) IN {(0,1),(1,0)}",
		"SAMPLE 100 u, v IN [0.5:1.5] SEED 42",
		"USING tropical LIMIT 10",
		"order by ans['total'] asc limit 1",
		"-- comment\nx IN [0:1:0.5] -- trailing",
		"x IN [0:1:0.1] CROSS (a,b) IN {(1,2)} SAMPLE 3 c IN [0:1] USING bool",
		"x IN [1:0:-0.5]",
		"SET x = 1e",
		"ORDER BY ans['unterminated",
		"\x00\xff{:[(",
		"SAMPLE 9223372036854775807 x IN [0:1]",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("Parse(%q) returned %T, want *ParseError", src, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("Parse(%q) error position %+v is not 1-based", src, pe.Pos)
			}
			if !strings.Contains(pe.Error(), pe.Pos.String()) {
				t.Fatalf("Parse(%q) error %q does not include its position", src, err)
			}
			return
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", src)
		}
		for _, ax := range q.Axes {
			if ax.Points() < 1 {
				t.Fatalf("Parse(%q) accepted an axis with %d points", src, ax.Points())
			}
			if len(ax.Vars()) == 0 {
				t.Fatalf("Parse(%q) accepted an axis with no variables", src)
			}
		}
		if q.Order != nil {
			_ = q.Order.Key()
		}
	})
}

// FuzzParseAssignments holds the literal parser to the same contract; it
// feeds the CLI -sets flag and the server's per-line scenario decoding.
func FuzzParseAssignments(f *testing.F) {
	for _, s := range []string{
		"", "x=1", "x = 0.5, y = -1.5e1", "x==", "a=1,", "3=1", "x='s'",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := ParseAssignments(spec)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("ParseAssignments(%q) returned %T, want *ParseError", spec, err)
			}
			if pe.Pos.Line < 1 || pe.Pos.Col < 1 {
				t.Fatalf("ParseAssignments(%q) error position %+v is not 1-based", spec, pe.Pos)
			}
			return
		}
		if sc == nil || len(sc.Assign) == 0 {
			t.Fatalf("ParseAssignments(%q) returned an empty scenario without error", spec)
		}
	})
}
