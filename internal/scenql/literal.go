package scenql

import (
	"fmt"
	"strings"

	"provabs/internal/hypo"
)

// Scenario assignment literals — the "x=0.5, y=1.1" syntax shared by the
// ScenQL SET clause, the CLI's -set/-sets flags, and the server's NDJSON
// stream (a line that does not start with '{' is parsed as a literal).
// One parser, one error shape, everywhere.

// ParseAssignments parses one scenario literal: name "=" num
// { "," name "=" num }. Errors are *ParseError positioned within the
// literal.
func ParseAssignments(spec string) (*hypo.Scenario, error) {
	lex := newLexer(spec)
	sc := hypo.NewScenario()
	for n := 0; ; n++ {
		t, err := lex.next()
		if err != nil {
			return nil, err
		}
		if t.kind == tokEOF {
			if n == 0 {
				return nil, &ParseError{Pos: t.pos, Msg: "empty scenario: expected name=value"}
			}
			return nil, &ParseError{Pos: t.pos, Msg: "trailing comma: expected name=value"}
		}
		if t.kind != tokIdent {
			return nil, errAt(t.pos, "expected a variable name, got %s", tokenDesc(t))
		}
		eq, err := lex.next()
		if err != nil {
			return nil, err
		}
		if eq.kind != tokEquals {
			return nil, errAt(eq.pos, `expected "=" after %q, got %s`, t.text, tokenDesc(eq))
		}
		val, err := lex.next()
		if err != nil {
			return nil, err
		}
		if val.kind != tokNumber {
			return nil, errAt(val.pos, "expected a number for %q, got %s", t.text, tokenDesc(val))
		}
		sc.Set(t.text, val.num)
		sep, err := lex.next()
		if err != nil {
			return nil, err
		}
		if sep.kind == tokEOF {
			return sc, nil
		}
		if sep.kind != tokComma {
			return nil, errAt(sep.pos, `expected "," or end of scenario, got %s`, tokenDesc(sep))
		}
	}
}

// ParseScenarios parses a ";"-separated list of scenario literals
// ("a=1; b=2, c=3"). Whitespace-only segments are skipped, so a trailing
// ";" is harmless; an all-empty spec is an error.
func ParseScenarios(spec string) ([]*hypo.Scenario, error) {
	var out []*hypo.Scenario
	for i, seg := range strings.Split(spec, ";") {
		if strings.TrimSpace(seg) == "" {
			continue
		}
		sc, err := ParseAssignments(seg)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i+1, err)
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios in %q: expected name=value[,name=value][;...]", spec)
	}
	return out, nil
}

func tokenDesc(t token) string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent, tokNumber:
		return fmt.Sprintf("%q", t.text)
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	}
	return t.kind.String()
}
