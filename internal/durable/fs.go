// Package durable persists session state: a versioned, CRC32C-checksummed
// snapshot of the compiled form plus a length-prefixed write-ahead log of
// every Add since, so a process restart replays through Compiled.Append —
// O(new terms), never a recompile — and Stats().Compiles stays 1 across
// the restart.
//
// The log/recovery discipline follows the classic WAL split: fsync on
// commit (with an optional group-commit window), recovery that tolerates
// a torn or truncated tail (stop at the first bad record, warn, truncate,
// continue) but refuses silently-corrupt middles, and snapshot rotation
// that replaces the snapshot atomically (write-new → fsync → rename →
// fsync dir → truncate log). Sequence numbers are monotonic across the
// session's whole lifetime and the snapshot records the last one it
// covers, so a crash between rename and truncate merely replays records
// the snapshot already contains — and skips them by sequence.
package durable

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// File is the slice of *os.File the durable layer needs. Writes append
// (files are opened O_APPEND); Sync makes previously written content
// durable; Truncate discards a torn tail or an obsolete log.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS abstracts the filesystem so the fault-injection harness
// (durable/faultfs) can substitute an in-memory one that models the page
// cache: written data is volatile until Sync, directory entries are
// volatile until SyncDir, and a simulated crash discards everything
// volatile.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics. The durable layer
	// only uses O_RDONLY, and O_WRONLY|O_CREATE with optional O_APPEND and
	// O_TRUNC.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	RemoveAll(path string) error
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(path string) ([]fs.DirEntry, error)
	Stat(path string) (fs.FileInfo, error)
	// SyncDir makes the directory's entries (creations, renames, removals)
	// durable — the fsync-the-parent step of atomic replacement.
	SyncDir(path string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}
func (OSFS) Rename(oldPath, newPath string) error         { return os.Rename(oldPath, newPath) }
func (OSFS) Remove(path string) error                     { return os.Remove(path) }
func (OSFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }
func (OSFS) Stat(path string) (fs.FileInfo, error)        { return os.Stat(path) }

// SyncDir fsyncs the directory itself. Filesystems that do not support
// fsync on directories (some network mounts) report EINVAL; that is
// tolerated — it is the platform's durability ceiling, not ours.
func (OSFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Clean(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

// isSyncUnsupported reports whether a directory fsync failed only
// because the platform does not support it.
func isSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)
}

// readAll reads a whole file through the FS.
func readAll(fsys FS, path string) ([]byte, error) {
	f, err := fsys.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
