package durable

// Store lays sessions out on disk and drives the recovery path:
//
//	<root>/sessions/<name>/snapshot.pvsn   last rotated snapshot
//	<root>/sessions/<name>/snapshot.tmp    in-flight rotation (crash debris)
//	<root>/sessions/<name>/wal.log         adds since the snapshot
//
// Rotation is the classic atomic-replace dance: barrier-sync the WAL,
// write snapshot.tmp, fsync it, rename over snapshot.pvsn, fsync the
// directory, then truncate the WAL. A crash at any step leaves either the
// old snapshot + full WAL or the new snapshot + a WAL whose records the
// snapshot already covers — recovery skips those by sequence number.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"provabs/internal/provenance"
	"provabs/internal/session"
)

const (
	snapshotFile    = "snapshot.pvsn"
	snapshotTmpFile = "snapshot.tmp"
	walFile         = "wal.log"

	// defaultRotateBytes / defaultRotateRecords cap WAL growth before
	// ShouldRotate suggests folding the log into a fresh snapshot.
	defaultRotateBytes   = 4 << 20
	defaultRotateRecords = 4096
)

// Options configures a Store.
type Options struct {
	// FS is the filesystem; nil means the real one (OSFS).
	FS FS
	// GroupWindow is the group-commit window: 0 fsyncs every append, a
	// positive window lets concurrent appends share one fsync.
	GroupWindow time.Duration
	// RotateBytes / RotateRecords override the ShouldRotate thresholds;
	// 0 means the default.
	RotateBytes   int64
	RotateRecords int64
	// Logf receives recovery warnings (torn tails). Nil discards them.
	Logf func(format string, args ...any)
}

// Store is the on-disk root holding every session's durable state.
type Store struct {
	root string
	fsys FS
	opts Options
}

// NewStore opens (creating if needed) a durable root directory.
func NewStore(root string, opts Options) (*Store, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.RotateBytes <= 0 {
		opts.RotateBytes = defaultRotateBytes
	}
	if opts.RotateRecords <= 0 {
		opts.RotateRecords = defaultRotateRecords
	}
	s := &Store{root: root, fsys: opts.FS, opts: opts}
	if err := s.fsys.MkdirAll(s.sessionsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("durable: create store root: %w", err)
	}
	return s, nil
}

func (s *Store) sessionsDir() string    { return filepath.Join(s.root, "sessions") }
func (s *Store) dir(name string) string { return filepath.Join(s.sessionsDir(), name) }
func (s *Store) logf(f string, a ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(f, a...)
	}
}

// List returns the names of sessions with durable state on disk, in
// directory order.
func (s *Store) List() ([]string, error) {
	ents, err := s.fsys.ReadDir(s.sessionsDir())
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Exists reports whether a session has durable state on disk.
func (s *Store) Exists(name string) bool {
	if _, err := s.fsys.Stat(filepath.Join(s.dir(name), snapshotFile)); err == nil {
		return true
	}
	if fi, err := s.fsys.Stat(filepath.Join(s.dir(name), walFile)); err == nil && fi.Size() > 0 {
		return true
	}
	return false
}

// Drop removes a session's durable state.
func (s *Store) Drop(name string) error {
	return s.fsys.RemoveAll(s.dir(name))
}

// SessionStore is one session's durable side: its open WAL plus the
// bookkeeping (sequence counter, logged vocabulary size) that keeps log
// records self-describing. Add performs the {WAL log, engine apply} pair
// under ss.mu — the same mutex WriteSnapshot captures under — so the
// logged sequence number never runs ahead of applied engine state and a
// concurrent rotation can never snapshot a sequence whose add is missing.
type SessionStore struct {
	store *Store
	name  string

	mu         sync.Mutex
	w          *wal
	seq        uint64 // last sequence number appended or covered by snapshot
	vocabCount int    // interned names already on disk (snapshot or WAL)
	closed     bool

	rotating atomic.Bool // one rotation at a time, others skip
}

// openSession opens the WAL for appending and returns the session store.
func (s *Store) openSession(name string, seq uint64, vocabCount int) (*SessionStore, error) {
	dir := s.dir(name)
	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, walFile)
	var size int64
	if fi, err := s.fsys.Stat(path); err == nil {
		size = fi.Size()
	}
	f, err := openWALForAppend(s.fsys, path)
	if err != nil {
		return nil, fmt.Errorf("durable: open WAL: %w", err)
	}
	if size == 0 {
		// A freshly created log's directory entry must be durable before
		// any record in it is — otherwise an acknowledged add could vanish
		// with the whole file.
		if err := s.fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("durable: sync session dir: %w", err)
		}
	}
	return &SessionStore{
		store:      s,
		name:       name,
		w:          newWAL(f, size, 0, s.opts.GroupWindow),
		seq:        seq,
		vocabCount: vocabCount,
	}, nil
}

// Create sets up durable state for a brand-new session: directory, empty
// WAL, and an initial snapshot of the engine's current state.
func (s *Store) Create(name string, eng *session.Engine) (*SessionStore, error) {
	ss, err := s.openSession(name, 0, 0)
	if err != nil {
		return nil, err
	}
	if err := ss.WriteSnapshot(eng); err != nil {
		ss.Close()
		return nil, err
	}
	return ss, nil
}

// Add appends one add (with any vocabulary delta) to the WAL and applies
// it to the engine, both under ss.mu, so WAL order equals apply order and
// the logged sequence number never runs ahead of applied engine state —
// the invariant WriteSnapshot relies on when it records ss.seq as covered.
// It returns a wait function that resolves once the record is durable; the
// caller must only acknowledge the add after wait returns nil. On error
// nothing was applied, and the WAL is poisoned against later appends.
func (ss *SessionStore) Add(eng *session.Engine, tag string, p *provenance.Polynomial) (wait func() error, err error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil, fmt.Errorf("durable: session store %q is closed", ss.name)
	}
	seq0, vocab0 := ss.seq, ss.vocabCount
	var frames []byte
	var n int64
	if names := eng.VocabTail(ss.vocabCount); len(names) > 0 {
		ss.seq++
		frames = appendFrame(frames, appendVocabRecord(nil, ss.seq, names))
		ss.vocabCount += len(names)
		n++
	}
	ss.seq++
	frames = appendFrame(frames, appendAddRecord(nil, ss.seq, tag, p))
	n++
	wait, err = ss.w.append(frames, n)
	if err != nil {
		// Nothing applied: rewind the counters so ss.seq stays in step with
		// engine state (the failed append poisoned the WAL, so no later
		// record can land under the rewound sequence).
		ss.seq, ss.vocabCount = seq0, vocab0
		return nil, err
	}
	eng.Add(tag, p)
	return wait, nil
}

// ShouldRotate reports whether the WAL has grown past the rotation
// thresholds and the session would benefit from folding it into a fresh
// snapshot.
func (ss *SessionStore) ShouldRotate() bool {
	size, records := ss.w.stats()
	return size >= ss.store.opts.RotateBytes || records >= ss.store.opts.RotateRecords
}

// WALStats reports the current WAL size in bytes and records.
func (ss *SessionStore) WALStats() (size, records int64) { return ss.w.stats() }

// RotateIfNeeded rotates when the WAL is past its thresholds. Concurrent
// callers collapse into one rotation; a failed rotation is logged and
// retried by whichever add next trips the threshold — the WAL keeps
// accepting records either way.
func (ss *SessionStore) RotateIfNeeded(eng *session.Engine) {
	if !ss.ShouldRotate() {
		return
	}
	if !ss.rotating.CompareAndSwap(false, true) {
		return
	}
	defer ss.rotating.Store(false)
	if err := ss.WriteSnapshot(eng); err != nil {
		ss.store.logf("durable: session %q rotation: %v", ss.name, err)
	}
}

// WriteSnapshot rotates: it captures the engine's state, writes a new
// snapshot atomically, and truncates the WAL. Concurrent Adds are excluded
// (ss.mu, which Add holds across its {log, apply} pair) so the captured
// state and the recorded sequence number agree.
func (ss *SessionStore) WriteSnapshot(eng *session.Engine) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return fmt.Errorf("durable: session store %q is closed", ss.name)
	}
	// Everything logged so far must be durable before the snapshot claims
	// to cover it.
	if err := ss.w.barrier(); err != nil {
		return err
	}
	fsys := ss.store.fsys
	dir := ss.store.dir(ss.name)
	tmp := filepath.Join(dir, snapshotTmpFile)
	final := filepath.Join(dir, snapshotFile)

	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot write: %w", err)
	}
	var vocabLen int
	werr := eng.WithState(func(st *session.SnapshotState) error {
		vocabLen = st.Active.Vocab.Len()
		return EncodeSnapshot(f, st, ss.seq)
	})
	hitCrashpoint("snapshot.write")
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && werr == nil {
		werr = cerr
	}
	if werr != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: snapshot write: %w", werr)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	hitCrashpoint("snapshot.rename")
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("durable: snapshot dir sync: %w", err)
	}
	if err := ss.w.truncate(); err != nil {
		return err
	}
	ss.vocabCount = vocabLen
	return nil
}

// Close barrier-syncs and closes the WAL. The snapshot, if any, stays.
func (ss *SessionStore) Close() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil
	}
	ss.closed = true
	return ss.w.close()
}

// RecoveryInfo describes what recovery did.
type RecoveryInfo struct {
	// WALRecords is the number of log records replayed on top of the
	// snapshot (after sequence-skipping).
	WALRecords int64
	// TornTail is true when the log ended in crash debris that was
	// truncated away.
	TornTail bool
}

// Recover rebuilds a session from its durable state: decode the snapshot,
// restore the engine (compiled cache injected, no recompile), then replay
// WAL records past the snapshot's sequence through Engine.Add — which
// extends the compiled form via Compiled.Append. A torn WAL tail is
// truncated with a warning; a corrupt middle or snapshot fails recovery.
func (s *Store) Recover(name string, opts ...session.Option) (*session.Engine, *SessionStore, RecoveryInfo, error) {
	var info RecoveryInfo
	dir := s.dir(name)
	snapPath := filepath.Join(dir, snapshotFile)

	var (
		eng     *session.Engine
		snapSeq uint64
	)
	f, err := s.fsys.OpenFile(snapPath, os.O_RDONLY, 0)
	switch {
	case err == nil:
		st, seq, derr := DecodeSnapshot(f)
		f.Close()
		if derr != nil {
			return nil, nil, info, fmt.Errorf("durable: session %q snapshot: %w", name, derr)
		}
		eng, derr = session.Restore(st, opts...)
		if derr != nil {
			return nil, nil, info, fmt.Errorf("durable: session %q snapshot: %w", name, derr)
		}
		snapSeq = seq
	case errors.Is(err, fs.ErrNotExist):
		// No snapshot: the session must be rebuilt purely from the log,
		// starting from an empty set. (Create always writes an initial
		// snapshot, so this only happens if it was lost with its directory
		// entry — still recoverable when the WAL survived.)
		vb := provenance.NewVocab()
		set := provenance.NewSet(vb)
		eng, err = session.Open(set, nil, opts...)
		if err != nil {
			return nil, nil, info, fmt.Errorf("durable: session %q: %w", name, err)
		}
	default:
		return nil, nil, info, fmt.Errorf("durable: session %q snapshot: %w", name, err)
	}

	// Scan and replay the log.
	walPath := filepath.Join(dir, walFile)
	logBytes, err := readAll(s.fsys, walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, info, fmt.Errorf("durable: session %q WAL: %w", name, err)
	}
	scan, err := scanWAL(logBytes)
	if err != nil {
		return nil, nil, info, fmt.Errorf("durable: session %q WAL: %w", name, err)
	}
	lastSeq := snapSeq
	for _, rec := range scan.records {
		if rec.seq <= snapSeq {
			// Covered by the snapshot: a crash landed between rename and
			// truncate. Skipping is exactly the idempotence the sequence
			// numbers exist for.
			continue
		}
		if rec.seq != lastSeq+1 {
			return nil, nil, info, fmt.Errorf("%w: session %q WAL resumes at sequence %d after %d", ErrCorrupt, name, rec.seq, lastSeq)
		}
		lastSeq = rec.seq
		switch rec.kind {
		case recVocab:
			eng.InternVars(rec.names)
		case recAdd:
			p, err := buildPoly(rec.terms, eng.VocabLen())
			if err != nil {
				return nil, nil, info, fmt.Errorf("durable: session %q WAL record %d: %w", name, rec.seq, err)
			}
			eng.Add(rec.tag, p)
			info.WALRecords++
		}
	}
	if scan.torn {
		info.TornTail = true
		s.logf("durable: session %q WAL: torn tail (%s) — truncating %d bytes of crash debris", name, scan.tornWhy, int64(len(logBytes))-scan.validLen)
	}

	ss, err := s.openSession(name, lastSeq, eng.VocabLen())
	if err != nil {
		return nil, nil, info, err
	}
	if scan.torn || scan.validLen < int64(len(logBytes)) {
		if err := ss.w.f.Truncate(scan.validLen); err != nil {
			ss.Close()
			return nil, nil, info, fmt.Errorf("durable: session %q WAL truncate: %w", name, err)
		}
		if err := ss.w.f.Sync(); err != nil {
			ss.Close()
			return nil, nil, info, fmt.Errorf("durable: session %q WAL sync: %w", name, err)
		}
		ss.w.size = scan.validLen
	}
	// Remove stale rotation debris, if any.
	if _, err := s.fsys.Stat(filepath.Join(dir, snapshotTmpFile)); err == nil {
		s.fsys.Remove(filepath.Join(dir, snapshotTmpFile))
	}
	return eng, ss, info, nil
}
