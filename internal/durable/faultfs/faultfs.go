// Package faultfs is an in-memory filesystem for fault-injection tests.
// It models the page cache explicitly: every file has volatile content
// (what reads see now) and durable content (what survives a crash), and
// every directory entry is likewise volatile until its directory is
// synced. Sync promotes a file's bytes, SyncDir promotes a directory's
// entries, and Crash reverts everything volatile — the exact semantics a
// WAL's fsync discipline is designed against.
//
// Fault injection is step-counted: StopAfter(k) lets the next k mutating
// operations through, then fails every later one with ErrInjected — a
// failing Write applies a partial write first, modeling a torn frame.
// Sweeping k across a workload's full operation count visits a crash at
// every persistence step. FlipBit corrupts durable bytes in place, for
// checksum-detection tests.
package faultfs

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"provabs/internal/durable"
)

// ErrInjected is the error every operation past the StopAfter budget
// fails with.
var ErrInjected = fmt.Errorf("faultfs: injected fault")

// inode is one file's content, page-cache style.
type inode struct {
	volatile []byte
	durable  []byte
}

// FS is the fault-injecting filesystem. The zero value is not usable;
// call New.
type FS struct {
	mu sync.Mutex

	files   map[string]*inode // current namespace
	durable map[string]*inode // namespace surviving a crash
	dirs    map[string]bool   // directories (durable immediately — see New)

	steps    int64 // mutating ops remaining before injection; <0 = unlimited
	injected bool  // a fault has fired
	ops      int64 // mutating ops performed (successful or failing)
}

// New returns an empty filesystem with injection disabled.
//
// Directories are modeled as durable upon creation: the store syncs its
// directories at the points that matter for file entries, and collapsing
// mkdir durability keeps the model focused on the append/fsync/rename
// invariants the WAL discipline actually depends on.
func New() *FS {
	return &FS{
		files:   make(map[string]*inode),
		durable: make(map[string]*inode),
		dirs:    map[string]bool{".": true, "/": true},
		steps:   -1,
	}
}

// StopAfter allows k more mutating operations, then fails the rest with
// ErrInjected. A negative k disables injection.
func (f *FS) StopAfter(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.steps = k
	f.injected = false
}

// Injected reports whether a fault has fired since the last StopAfter.
func (f *FS) Injected() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Ops reports the number of mutating operations attempted so far — the
// sweep bound for crash-at-every-step tests.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crash discards everything volatile: unsynced file bytes and unsynced
// directory entries vanish, exactly like a power cut. Injection is
// disabled so recovery code runs against the surviving state unimpeded.
func (f *FS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.files = make(map[string]*inode, len(f.durable))
	for p, ino := range f.durable {
		ino.volatile = append([]byte(nil), ino.durable...)
		f.files[p] = ino
	}
	f.steps = -1
	f.injected = false
}

// FlipBit flips one bit of a file's durable (and volatile) content —
// silent media corruption for checksum tests.
func (f *FS) FlipBit(p string, byteOff int64, bit uint) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.files[path.Clean(p)]
	if !ok {
		return &iofs.PathError{Op: "flipbit", Path: p, Err: iofs.ErrNotExist}
	}
	if byteOff < 0 || byteOff >= int64(len(ino.durable)) {
		return fmt.Errorf("faultfs: flip offset %d outside %d durable bytes", byteOff, len(ino.durable))
	}
	ino.durable[byteOff] ^= 1 << (bit % 8)
	if byteOff < int64(len(ino.volatile)) {
		ino.volatile[byteOff] ^= 1 << (bit % 8)
	}
	return nil
}

// ReadFile returns a copy of a file's current content (test convenience).
func (f *FS) ReadFile(p string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ino, ok := f.files[path.Clean(p)]
	if !ok {
		return nil, &iofs.PathError{Op: "read", Path: p, Err: iofs.ErrNotExist}
	}
	return append([]byte(nil), ino.volatile...), nil
}

// step consumes one mutating-operation budget slot. It returns ErrInjected
// once the budget is exhausted. Callers hold f.mu.
func (f *FS) step() error {
	f.ops++
	if f.steps < 0 {
		return nil
	}
	if f.steps == 0 {
		f.injected = true
		return ErrInjected
	}
	f.steps--
	return nil
}

// file is an open handle.
type file struct {
	fs     *FS
	ino    *inode
	path   string
	flag   int
	off    int // read offset
	closed bool
}

// OpenFile implements durable.FS.
func (f *FS) OpenFile(p string, flag int, perm os.FileMode) (durable.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = path.Clean(p)
	ino, ok := f.files[p]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &iofs.PathError{Op: "open", Path: p, Err: iofs.ErrNotExist}
		}
		if !f.dirs[path.Dir(p)] {
			return nil, &iofs.PathError{Op: "open", Path: p, Err: iofs.ErrNotExist}
		}
		if err := f.step(); err != nil {
			return nil, &iofs.PathError{Op: "create", Path: p, Err: err}
		}
		ino = &inode{}
		f.files[p] = ino
		// The entry is volatile until SyncDir(dir) promotes it.
	} else if flag&os.O_TRUNC != 0 {
		if err := f.step(); err != nil {
			return nil, &iofs.PathError{Op: "truncate", Path: p, Err: err}
		}
		ino.volatile = nil
	}
	return &file{fs: f, ino: ino, path: p, flag: flag}, nil
}

func (h *file) Read(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, iofs.ErrClosed
	}
	if h.off >= len(h.ino.volatile) {
		return 0, io.EOF
	}
	n := copy(b, h.ino.volatile[h.off:])
	h.off += n
	return n, nil
}

func (h *file) Write(b []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, iofs.ErrClosed
	}
	if err := h.fs.step(); err != nil {
		// A torn write: some prefix of the buffer lands in the page cache
		// before the fault. Half is arbitrary but deterministic.
		n := len(b) / 2
		h.ino.volatile = append(h.ino.volatile, b[:n]...)
		return n, &iofs.PathError{Op: "write", Path: h.path, Err: err}
	}
	h.ino.volatile = append(h.ino.volatile, b...)
	return len(b), nil
}

func (h *file) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return iofs.ErrClosed
	}
	if err := h.fs.step(); err != nil {
		return &iofs.PathError{Op: "sync", Path: h.path, Err: err}
	}
	h.ino.durable = append([]byte(nil), h.ino.volatile...)
	return nil
}

func (h *file) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return iofs.ErrClosed
	}
	if err := h.fs.step(); err != nil {
		return &iofs.PathError{Op: "truncate", Path: h.path, Err: err}
	}
	if size < 0 || size > int64(len(h.ino.volatile)) {
		return &iofs.PathError{Op: "truncate", Path: h.path, Err: fmt.Errorf("size %d out of range", size)}
	}
	h.ino.volatile = h.ino.volatile[:size]
	return nil
}

func (h *file) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}

// Rename implements durable.FS. The new name is volatile until SyncDir.
func (f *FS) Rename(oldPath, newPath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	oldPath, newPath = path.Clean(oldPath), path.Clean(newPath)
	ino, ok := f.files[oldPath]
	if !ok {
		return &iofs.PathError{Op: "rename", Path: oldPath, Err: iofs.ErrNotExist}
	}
	if err := f.step(); err != nil {
		return &iofs.PathError{Op: "rename", Path: oldPath, Err: err}
	}
	delete(f.files, oldPath)
	f.files[newPath] = ino
	return nil
}

// Remove implements durable.FS. Volatile until SyncDir.
func (f *FS) Remove(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = path.Clean(p)
	if _, ok := f.files[p]; !ok {
		return &iofs.PathError{Op: "remove", Path: p, Err: iofs.ErrNotExist}
	}
	if err := f.step(); err != nil {
		return &iofs.PathError{Op: "remove", Path: p, Err: err}
	}
	delete(f.files, p)
	return nil
}

// RemoveAll implements durable.FS. Volatile until SyncDir, like Remove.
func (f *FS) RemoveAll(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = path.Clean(p)
	if err := f.step(); err != nil {
		return &iofs.PathError{Op: "removeall", Path: p, Err: err}
	}
	for q := range f.files {
		if q == p || strings.HasPrefix(q, p+"/") {
			delete(f.files, q)
		}
	}
	for q := range f.dirs {
		if q == p || strings.HasPrefix(q, p+"/") {
			delete(f.dirs, q)
		}
	}
	return nil
}

// MkdirAll implements durable.FS. Directories are durable immediately
// (see New).
func (f *FS) MkdirAll(p string, perm os.FileMode) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = path.Clean(p)
	if err := f.step(); err != nil {
		return &iofs.PathError{Op: "mkdir", Path: p, Err: err}
	}
	for q := p; q != "." && q != "/"; q = path.Dir(q) {
		f.dirs[q] = true
	}
	return nil
}

// SyncDir implements durable.FS: every entry directly inside p — created,
// renamed, or removed since the last SyncDir — becomes durable.
func (f *FS) SyncDir(p string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = path.Clean(p)
	if !f.dirs[p] {
		return &iofs.PathError{Op: "syncdir", Path: p, Err: iofs.ErrNotExist}
	}
	if err := f.step(); err != nil {
		return &iofs.PathError{Op: "syncdir", Path: p, Err: err}
	}
	for q := range f.durable {
		if path.Dir(q) == p {
			if _, live := f.files[q]; !live {
				delete(f.durable, q)
			}
		}
	}
	for q, ino := range f.files {
		if path.Dir(q) == p {
			f.durable[q] = ino
		}
	}
	return nil
}

// ReadDir implements durable.FS.
func (f *FS) ReadDir(p string) ([]iofs.DirEntry, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = path.Clean(p)
	if !f.dirs[p] {
		return nil, &iofs.PathError{Op: "readdir", Path: p, Err: iofs.ErrNotExist}
	}
	seen := map[string]iofs.DirEntry{}
	for q, ino := range f.files {
		if path.Dir(q) == p {
			seen[path.Base(q)] = dirEntry{name: path.Base(q), size: int64(len(ino.volatile))}
		}
	}
	for q := range f.dirs {
		if q != p && path.Dir(q) == p {
			seen[path.Base(q)] = dirEntry{name: path.Base(q), dir: true}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]iofs.DirEntry, 0, len(names))
	for _, n := range names {
		out = append(out, seen[n])
	}
	return out, nil
}

// Stat implements durable.FS.
func (f *FS) Stat(p string) (iofs.FileInfo, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p = path.Clean(p)
	if ino, ok := f.files[p]; ok {
		return fileInfo{name: path.Base(p), size: int64(len(ino.volatile))}, nil
	}
	if f.dirs[p] {
		return fileInfo{name: path.Base(p), dir: true}, nil
	}
	return nil, &iofs.PathError{Op: "stat", Path: p, Err: iofs.ErrNotExist}
}

type dirEntry struct {
	name string
	size int64
	dir  bool
}

func (d dirEntry) Name() string        { return d.name }
func (d dirEntry) IsDir() bool         { return d.dir }
func (d dirEntry) Type() iofs.FileMode { return fileInfo{dir: d.dir}.Mode() }
func (d dirEntry) Info() (iofs.FileInfo, error) {
	return fileInfo{name: d.name, size: d.size, dir: d.dir}, nil
}

type fileInfo struct {
	name string
	size int64
	dir  bool
}

func (fi fileInfo) Name() string { return fi.name }
func (fi fileInfo) Size() int64  { return fi.size }
func (fi fileInfo) Mode() iofs.FileMode {
	if fi.dir {
		return iofs.ModeDir | 0o755
	}
	return 0o644
}
func (fi fileInfo) ModTime() time.Time { return time.Time{} }
func (fi fileInfo) IsDir() bool        { return fi.dir }
func (fi fileInfo) Sys() any           { return nil }
