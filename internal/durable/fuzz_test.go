package durable

// Fuzzers for the two recovery-path decoders. Both parse bytes that, in
// production, come off a disk that may have crashed mid-write or rotted:
// the contract is an error — never a panic, never an allocation sized by
// an unvalidated length field. The committed seed corpus under
// testdata/fuzz (regenerated with PROVABS_WRITE_FUZZ_CORPUS=1) starts the
// fuzzers from structurally valid inputs so mutation explores deep paths
// instead of bouncing off the magic check.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"provabs/internal/abstree"
	"provabs/internal/provenance"
	"provabs/internal/session"
)

// seedWAL builds a small valid log: a vocab record and two add records.
func seedWAL(tb testing.TB) []byte {
	vb := provenance.NewVocab()
	p1 := provenance.MustParse(vb, "2·x·y + 3·z")
	p2 := provenance.MustParse(vb, "0.5·x^2")
	var b []byte
	b = appendFrame(b, appendVocabRecord(nil, 1, []string{"x", "y", "z"}))
	b = appendFrame(b, appendAddRecord(nil, 2, "first", p1))
	b = appendFrame(b, appendAddRecord(nil, 3, "second", p2))
	return b
}

// seedSnapshot encodes the session-test fixture, compressed and not.
func seedSnapshot(tb testing.TB, compress bool) []byte {
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + "+
			"75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	set.Add("zip 10002", provenance.MustParse(vb, "100·p1·m1 + 50·f1·m3 + 25·y1·m1"))
	forest, err := abstree.NewForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := session.Open(set, forest)
	if err != nil {
		tb.Fatal(err)
	}
	if compress {
		if _, err := eng.Compress(7); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := eng.WithState(func(st *session.SnapshotState) error {
		return EncodeSnapshot(&buf, st, 42)
	}); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzWALScan(f *testing.F) {
	valid := seedWAL(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-5])               // torn tail
	f.Add(append(valid, make([]byte, 32)...)) // zero-filled tail
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scanWAL(data)
		if s.validLen < 0 || s.validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0, %d]", s.validLen, len(data))
		}
		if err != nil {
			return
		}
		// Accepted records must survive application: building polynomials
		// from them may reject out-of-vocabulary variables but must not
		// panic.
		vocab := 0
		for _, rec := range s.records {
			switch rec.kind {
			case recVocab:
				vocab += len(rec.names)
			case recAdd:
				buildPoly(rec.terms, vocab)
			}
		}
	})
}

func FuzzSnapshotDecode(f *testing.F) {
	f.Add(seedSnapshot(f, false))
	f.Add(seedSnapshot(f, true))
	f.Add([]byte("PVSN"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, _, err := DecodeSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything the decoder accepts must restore into a working engine.
		if _, err := session.Restore(st); err != nil {
			t.Fatalf("decoded snapshot failed Restore: %v", err)
		}
	})
}

// TestWriteFuzzCorpus regenerates the committed seed corpus when
// PROVABS_WRITE_FUZZ_CORPUS=1 is set; otherwise it only checks the files
// exist, so a refactor that forgets to regenerate fails loudly.
func TestWriteFuzzCorpus(t *testing.T) {
	seeds := map[string][][]byte{
		"FuzzWALScan":        {seedWAL(t)},
		"FuzzSnapshotDecode": {seedSnapshot(t, false), seedSnapshot(t, true)},
	}
	write := os.Getenv("PROVABS_WRITE_FUZZ_CORPUS") == "1"
	for target, inputs := range seeds {
		dir := filepath.Join("testdata", "fuzz", target)
		for i, in := range inputs {
			path := filepath.Join(dir, fmt.Sprintf("seed-%d", i))
			if write {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", in)
				if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("missing fuzz seed %s (regenerate with PROVABS_WRITE_FUZZ_CORPUS=1): %v", path, err)
			}
		}
	}
}
