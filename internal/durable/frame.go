package durable

// Generic frame codec — the WAL's length+CRC32-C framing exported for
// other subsystems (the gateway's placement/quota journal) that want the
// same crash discipline without the session-record payload format. The
// frame shape is identical to the session WAL's:
//
//	u32 LE payload length | u32 LE CRC32-C of payload | payload
//
// and the scanner keeps the same torn-tail-vs-corrupt-middle contract:
// debris after the last whole frame (a truncated header, a frame running
// past EOF, a zero-filled tail, a checksum mismatch on the *final* frame)
// is the expected shape of a crash and is reported as a torn tail the
// caller truncates; a checksum mismatch or implausible length with valid
// data after it is ErrCorrupt, because silently dropping interior records
// would be worse than refusing to start.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// AppendFrame appends one length+CRC-framed payload to dst and returns
// the extended slice.
func AppendFrame(dst, payload []byte) []byte {
	return appendFrame(dst, payload)
}

// FrameScan is the outcome of scanning a framed file at recovery.
type FrameScan struct {
	// Payloads are the whole frames' payloads, in file order. They alias
	// the scanned buffer.
	Payloads [][]byte
	// ValidLen is the byte length up to and including the last whole
	// frame — where a caller repairing a torn tail truncates to.
	ValidLen int64
	// Torn reports that debris past ValidLen was dropped; TornWhy says
	// what shape it had.
	Torn    bool
	TornWhy string
}

// ScanFrames walks the frames in b. Returns ErrCorrupt for interior
// corruption; a damaged tail is reported via Torn/ValidLen instead.
func ScanFrames(b []byte) (FrameScan, error) {
	var s FrameScan
	off := 0
	for off < len(b) {
		if len(b)-off < frameHeaderLen {
			return tornFrames(s, off, b, "truncated frame header")
		}
		n := binary.LittleEndian.Uint32(b[off:])
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n == 0 || n > maxRecordLen {
			if zeroTail(b[off:]) {
				return tornFrames(s, off, b, "zero-filled tail")
			}
			return s, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrCorrupt, n, off)
		}
		end := off + frameHeaderLen + int(n)
		if end > len(b) {
			return tornFrames(s, off, b, "frame runs past end of file")
		}
		payload := b[off+frameHeaderLen : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			if end == len(b) {
				return tornFrames(s, off, b, "checksum mismatch on final frame")
			}
			return s, fmt.Errorf("%w: frame checksum mismatch at offset %d with %d bytes following", ErrCorrupt, off, len(b)-end)
		}
		s.Payloads = append(s.Payloads, payload)
		off = end
		s.ValidLen = int64(off)
	}
	return s, nil
}

func tornFrames(s FrameScan, off int, b []byte, why string) (FrameScan, error) {
	s.Torn = off < len(b)
	s.TornWhy = why
	s.ValidLen = int64(off)
	return s, nil
}
