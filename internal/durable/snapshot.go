package durable

// The snapshot codec: one session's full state as a versioned, sectioned,
// CRC32-C-checksummed binary file. Layout:
//
//	magic "PVSN" | u16 LE version | u16 LE flags | u64 LE lastSeq |
//	u32 LE section count | u32 LE CRC32-C of the 20 header bytes
//
// followed by sections, each
//
//	u32 LE id | u32 LE payload length | payload | u32 LE CRC32-C(payload)
//
// Sections (ids fixed, order as listed, unknown ids rejected):
//
//	1 vocab     interned names in order
//	2 meta      compressed flag, strategy, ML/VL, adequacy
//	3 subst     the active substitution, sorted by source var
//	4 kernel    the active set's compiled dump: counts, then fixed-width
//	            LE arrays (polyOff, factOff, coeffs, vars, pows) and tags
//	            — mmap-friendly: every array is contiguous and aligned to
//	            its own start
//	5 baseline  identity answers, one f64 per polynomial
//	6 index     the CSR inverted index's four arrays
//	7 source    the un-abstracted source polynomials (present only when
//	            compressed; shares the snapshot vocabulary)
//	8 forest    abstraction trees in compact text (optional)
//
// The decoder validates everything through provenance.RestoreSet — a
// snapshot that passes CRC but describes an inconsistent kernel is still
// rejected — and never panics on hostile input (FuzzSnapshotDecode).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"provabs/internal/provenance"
	"provabs/internal/session"
)

const (
	snapshotMagic   = "PVSN"
	snapshotVersion = 1

	secVocab    uint32 = 1
	secMeta     uint32 = 2
	secSubst    uint32 = 3
	secKernel   uint32 = 4
	secBaseline uint32 = 5
	secIndex    uint32 = 6
	secSource   uint32 = 7
	secForest   uint32 = 8

	// maxSectionLen bounds one snapshot section so a corrupt length field
	// cannot drive a giant allocation.
	maxSectionLen = 1 << 31
)

// EncodeSnapshot writes the session state as one snapshot covering WAL
// records up to and including lastSeq. The caller must hold the state
// stable (Engine.WithState does).
func EncodeSnapshot(w io.Writer, st *session.SnapshotState, lastSeq uint64) error {
	if st == nil || st.Source == nil || st.Active == nil {
		return fmt.Errorf("durable: EncodeSnapshot needs source and active sets")
	}
	vb := st.Active.Vocab
	dump := provenance.DumpCompiled(st.Active.Compiled())

	type section struct {
		id      uint32
		payload []byte
	}
	var sections []section
	add := func(id uint32, payload []byte) {
		sections = append(sections, section{id, payload})
	}

	// 1 vocab
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(vb.Len()))
	for i := 1; i <= vb.Len(); i++ {
		name := vb.Name(provenance.Var(i))
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	add(secVocab, buf)

	// 2 meta
	buf = nil
	buf = append(buf, boolByte(st.Compressed))
	buf = binary.AppendUvarint(buf, uint64(len(st.Strategy)))
	buf = append(buf, st.Strategy...)
	buf = binary.AppendVarint(buf, int64(st.ML))
	buf = binary.AppendVarint(buf, int64(st.VL))
	buf = append(buf, boolByte(st.Adequate))
	add(secMeta, buf)

	// 3 subst
	buf = nil
	pairs := make([][2]provenance.Var, 0, len(st.Subst))
	for from, to := range st.Subst {
		pairs = append(pairs, [2]provenance.Var{from, to})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	buf = binary.AppendUvarint(buf, uint64(len(pairs)))
	for _, p := range pairs {
		buf = binary.AppendUvarint(buf, uint64(p[0]))
		buf = binary.AppendUvarint(buf, uint64(p[1]))
	}
	add(secSubst, buf)

	// 4 kernel
	buf = nil
	buf = binary.AppendUvarint(buf, uint64(dump.NPolys()))
	buf = binary.AppendUvarint(buf, uint64(len(dump.Coeffs)))
	buf = binary.AppendUvarint(buf, uint64(len(dump.Vars)))
	buf = appendI32s(buf, dump.PolyOff)
	buf = appendI32s(buf, dump.FactOff)
	for _, c := range dump.Coeffs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
	}
	for _, v := range dump.Vars {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	buf = appendI32s(buf, dump.Pows)
	for _, t := range dump.Tags {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
	}
	add(secKernel, buf)

	// 5 baseline
	buf = nil
	for _, x := range dump.Baseline {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
	}
	add(secBaseline, buf)

	// 6 index
	buf = nil
	for _, arr := range [][]int32{dump.VarTermOff, dump.VarPolyOff, dump.VarPolyIDs, dump.VarPolyTerms} {
		buf = binary.AppendUvarint(buf, uint64(len(arr)))
	}
	for _, arr := range [][]int32{dump.VarTermOff, dump.VarPolyOff, dump.VarPolyIDs, dump.VarPolyTerms} {
		buf = appendI32s(buf, arr)
	}
	add(secIndex, buf)

	// 7 source (only when the source differs from the active set)
	if st.Compressed {
		buf = nil
		buf = binary.AppendUvarint(buf, uint64(st.Source.Len()))
		for i, p := range st.Source.Polys {
			tag := ""
			if i < len(st.Source.Tags) {
				tag = st.Source.Tags[i]
			}
			buf = binary.AppendUvarint(buf, uint64(len(tag)))
			buf = append(buf, tag...)
			buf = appendPoly(buf, p)
		}
		add(secSource, buf)
	}

	// 8 forest
	if len(st.Trees) > 0 {
		buf = nil
		buf = binary.AppendUvarint(buf, uint64(len(st.Trees)))
		for _, t := range st.Trees {
			buf = binary.AppendUvarint(buf, uint64(len(t)))
			buf = append(buf, t...)
		}
		add(secForest, buf)
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	header := make([]byte, 0, 24)
	header = append(header, snapshotMagic...)
	header = binary.LittleEndian.AppendUint16(header, snapshotVersion)
	header = binary.LittleEndian.AppendUint16(header, 0) // flags
	header = binary.LittleEndian.AppendUint64(header, lastSeq)
	header = binary.LittleEndian.AppendUint32(header, uint32(len(sections)))
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(header, castagnoli))
	if _, err := bw.Write(header); err != nil {
		return err
	}
	for _, s := range sections {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], s.id)
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(s.payload)))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := bw.Write(s.payload); err != nil {
			return err
		}
		var sum [4]byte
		binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(s.payload, castagnoli))
		if _, err := bw.Write(sum[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeSnapshot reads and fully validates a snapshot, returning the
// reconstructed session state (with the compiled cache injected into the
// active set) and the last WAL sequence number the snapshot covers.
func DecodeSnapshot(r io.Reader) (*session.SnapshotState, uint64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header := make([]byte, 24)
	if _, err := io.ReadFull(br, header); err != nil {
		return nil, 0, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, err)
	}
	if string(header[:4]) != snapshotMagic {
		return nil, 0, fmt.Errorf("%w: not a snapshot (bad magic)", ErrCorrupt)
	}
	if crc32.Checksum(header[:20], castagnoli) != binary.LittleEndian.Uint32(header[20:]) {
		return nil, 0, fmt.Errorf("%w: snapshot header checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(header[4:]); v != snapshotVersion {
		return nil, 0, fmt.Errorf("durable: unsupported snapshot version %d (this build reads version %d)", v, snapshotVersion)
	}
	lastSeq := binary.LittleEndian.Uint64(header[8:])
	nSections := binary.LittleEndian.Uint32(header[16:])
	if nSections > 64 {
		return nil, 0, fmt.Errorf("%w: snapshot claims %d sections", ErrCorrupt, nSections)
	}

	payloads := make(map[uint32][]byte, nSections)
	for i := uint32(0); i < nSections; i++ {
		var hdr [8]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("%w: snapshot section header: %v", ErrCorrupt, err)
		}
		id := binary.LittleEndian.Uint32(hdr[0:])
		n := binary.LittleEndian.Uint32(hdr[4:])
		if n > maxSectionLen {
			return nil, 0, fmt.Errorf("%w: snapshot section %d claims %d bytes", ErrCorrupt, id, n)
		}
		// Copy incrementally rather than allocating n upfront: a corrupt
		// length field must fail at EOF, not drive a gigabyte allocation.
		var pbuf bytes.Buffer
		if _, err := io.CopyN(&pbuf, br, int64(n)); err != nil {
			return nil, 0, fmt.Errorf("%w: snapshot section %d: %v", ErrCorrupt, id, err)
		}
		payload := pbuf.Bytes()
		var sum [4]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return nil, 0, fmt.Errorf("%w: snapshot section %d checksum: %v", ErrCorrupt, id, err)
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(sum[:]) {
			return nil, 0, fmt.Errorf("%w: snapshot section %d checksum mismatch", ErrCorrupt, id)
		}
		if _, dup := payloads[id]; dup {
			return nil, 0, fmt.Errorf("%w: duplicate snapshot section %d", ErrCorrupt, id)
		}
		payloads[id] = payload
	}
	for _, id := range []uint32{secVocab, secMeta, secSubst, secKernel, secBaseline, secIndex} {
		if _, ok := payloads[id]; !ok {
			return nil, 0, fmt.Errorf("%w: snapshot is missing section %d", ErrCorrupt, id)
		}
	}

	// 1 vocab
	vb := provenance.NewVocab()
	{
		r := &byteReader{b: payloads[secVocab]}
		n, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if n > uint64(r.remaining()) {
			return nil, 0, fmt.Errorf("%w: vocab section claims %d names", ErrCorrupt, n)
		}
		for i := uint64(0); i < n; i++ {
			name, err := r.lenString(maxNameLen)
			if err != nil {
				return nil, 0, err
			}
			if vb.Var(name) != provenance.Var(i+1) {
				return nil, 0, fmt.Errorf("%w: duplicate vocabulary name %q", ErrCorrupt, name)
			}
		}
		if r.remaining() != 0 {
			return nil, 0, fmt.Errorf("%w: trailing bytes in vocab section", ErrCorrupt)
		}
	}

	st := &session.SnapshotState{}

	// 2 meta
	{
		r := &byteReader{b: payloads[secMeta]}
		cb, err := r.bytes(1)
		if err != nil {
			return nil, 0, err
		}
		st.Compressed = cb[0] != 0
		if st.Strategy, err = r.lenString(1 << 10); err != nil {
			return nil, 0, err
		}
		ml, err := r.varint()
		if err != nil {
			return nil, 0, err
		}
		vl, err := r.varint()
		if err != nil {
			return nil, 0, err
		}
		st.ML, st.VL = int(ml), int(vl)
		ab, err := r.bytes(1)
		if err != nil {
			return nil, 0, err
		}
		st.Adequate = ab[0] != 0
		if r.remaining() != 0 {
			return nil, 0, fmt.Errorf("%w: trailing bytes in meta section", ErrCorrupt)
		}
	}

	// 3 subst
	{
		r := &byteReader{b: payloads[secSubst]}
		n, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if n > uint64(r.remaining()) {
			return nil, 0, fmt.Errorf("%w: subst section claims %d pairs", ErrCorrupt, n)
		}
		if n > 0 {
			st.Subst = make(map[provenance.Var]provenance.Var, n)
		}
		for i := uint64(0); i < n; i++ {
			from, err := r.uvarint()
			if err != nil {
				return nil, 0, err
			}
			to, err := r.uvarint()
			if err != nil {
				return nil, 0, err
			}
			if from == 0 || from > uint64(vb.Len()) || to == 0 || to > uint64(vb.Len()) {
				return nil, 0, fmt.Errorf("%w: substitution pair %d→%d outside the vocabulary", ErrCorrupt, from, to)
			}
			if _, dup := st.Subst[provenance.Var(from)]; dup {
				return nil, 0, fmt.Errorf("%w: duplicate substitution source %d", ErrCorrupt, from)
			}
			st.Subst[provenance.Var(from)] = provenance.Var(to)
		}
		if r.remaining() != 0 {
			return nil, 0, fmt.Errorf("%w: trailing bytes in subst section", ErrCorrupt)
		}
	}

	// 4-6 kernel + baseline + index → RestoreSet
	dump := &provenance.CompiledDump{}
	{
		r := &byteReader{b: payloads[secKernel]}
		nPolys, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		nTerms, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		nFactors, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		// Fixed-width arrays must be backed by the remaining payload.
		need := 4*(nPolys+1) + 4*(nTerms+1) + 8*nTerms + 4*nFactors + 4*nFactors
		if nPolys >= maxSectionLen || need > uint64(r.remaining()) {
			return nil, 0, fmt.Errorf("%w: kernel section counts exceed its payload", ErrCorrupt)
		}
		if dump.PolyOff, err = r.i32s(int(nPolys) + 1); err != nil {
			return nil, 0, err
		}
		if dump.FactOff, err = r.i32s(int(nTerms) + 1); err != nil {
			return nil, 0, err
		}
		dump.Coeffs = make([]float64, nTerms)
		for i := range dump.Coeffs {
			bits, err := r.u64()
			if err != nil {
				return nil, 0, err
			}
			dump.Coeffs[i] = math.Float64frombits(bits)
		}
		vars, err := r.i32s(int(nFactors))
		if err != nil {
			return nil, 0, err
		}
		dump.Vars = make([]provenance.Var, nFactors)
		for i, v := range vars {
			dump.Vars[i] = provenance.Var(v)
		}
		if dump.Pows, err = r.i32s(int(nFactors)); err != nil {
			return nil, 0, err
		}
		dump.Tags = make([]string, nPolys)
		for i := range dump.Tags {
			if dump.Tags[i], err = r.lenString(maxNameLen); err != nil {
				return nil, 0, err
			}
		}
		if r.remaining() != 0 {
			return nil, 0, fmt.Errorf("%w: trailing bytes in kernel section", ErrCorrupt)
		}

		rb := &byteReader{b: payloads[secBaseline]}
		if rb.remaining() != int(nPolys)*8 {
			return nil, 0, fmt.Errorf("%w: baseline section holds %d bytes for %d polynomials", ErrCorrupt, rb.remaining(), nPolys)
		}
		dump.Baseline = make([]float64, nPolys)
		for i := range dump.Baseline {
			bits, _ := rb.u64()
			dump.Baseline[i] = math.Float64frombits(bits)
		}

		ri := &byteReader{b: payloads[secIndex]}
		var lens [4]uint64
		for i := range lens {
			if lens[i], err = ri.uvarint(); err != nil {
				return nil, 0, err
			}
		}
		total := lens[0] + lens[1] + lens[2] + lens[3]
		if total*4 > uint64(ri.remaining()) {
			return nil, 0, fmt.Errorf("%w: index section counts exceed its payload", ErrCorrupt)
		}
		arrs := make([][]int32, 4)
		for i := range arrs {
			if arrs[i], err = ri.i32s(int(lens[i])); err != nil {
				return nil, 0, err
			}
		}
		dump.VarTermOff, dump.VarPolyOff, dump.VarPolyIDs, dump.VarPolyTerms = arrs[0], arrs[1], arrs[2], arrs[3]
		if ri.remaining() != 0 {
			return nil, 0, fmt.Errorf("%w: trailing bytes in index section", ErrCorrupt)
		}
	}
	active, err := provenance.RestoreSet(vb, dump)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	st.Active = active

	// 7 source
	srcPayload, hasSource := payloads[secSource]
	if st.Compressed != hasSource {
		return nil, 0, fmt.Errorf("%w: snapshot source section presence disagrees with the compressed flag", ErrCorrupt)
	}
	if hasSource {
		r := &byteReader{b: srcPayload}
		n, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if n > uint64(r.remaining())+1 {
			return nil, 0, fmt.Errorf("%w: source section claims %d polynomials", ErrCorrupt, n)
		}
		src := provenance.NewSet(vb)
		for i := uint64(0); i < n; i++ {
			tag, err := r.lenString(maxNameLen)
			if err != nil {
				return nil, 0, err
			}
			terms, err := decodePoly(r)
			if err != nil {
				return nil, 0, err
			}
			p, err := buildPoly(terms, vb.Len())
			if err != nil {
				return nil, 0, err
			}
			src.Polys = append(src.Polys, p)
			src.Tags = append(src.Tags, tag)
		}
		if r.remaining() != 0 {
			return nil, 0, fmt.Errorf("%w: trailing bytes in source section", ErrCorrupt)
		}
		st.Source = src
	} else {
		st.Source = active
	}

	// 8 forest
	if fp, ok := payloads[secForest]; ok {
		r := &byteReader{b: fp}
		n, err := r.uvarint()
		if err != nil {
			return nil, 0, err
		}
		if n > uint64(r.remaining()) {
			return nil, 0, fmt.Errorf("%w: forest section claims %d trees", ErrCorrupt, n)
		}
		for i := uint64(0); i < n; i++ {
			t, err := r.lenString(maxSectionLen)
			if err != nil {
				return nil, 0, err
			}
			st.Trees = append(st.Trees, t)
		}
		if r.remaining() != 0 {
			return nil, 0, fmt.Errorf("%w: trailing bytes in forest section", ErrCorrupt)
		}
	}

	return st, lastSeq, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendI32s(dst []byte, xs []int32) []byte {
	for _, x := range xs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(x))
	}
	return dst
}

// varint reads a signed varint.
func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	r.off += n
	return v, nil
}

// i32s reads n little-endian 32-bit values.
func (r *byteReader) i32s(n int) ([]int32, error) {
	if n < 0 || r.remaining() < 4*n {
		return nil, fmt.Errorf("%w: truncated i32 array", ErrCorrupt)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(r.b[r.off:]))
		r.off += 4
	}
	return out, nil
}
