package durable

// The write-ahead log: an append-only file of CRC-framed records with
// fsync-on-commit and an optional group-commit window, plus the recovery
// scanner with the torn-tail-vs-corrupt-middle distinction.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// wal is the append side of one session's log. Appends return a commit
// wait function; with a zero group window every append fsyncs before its
// wait resolves, with a positive window appends from concurrent callers
// share one fsync per window — the throughput/latency trade every WAL
// offers.
type wal struct {
	mu      sync.Mutex
	f       File
	window  time.Duration
	size    int64
	records int64

	pending  []chan error // waiters of the not-yet-synced tail
	flushSet bool         // a timer-driven flush is scheduled
	closed   bool
	syncErr  error // sticky: a failed fsync poisons the log
}

func newWAL(f File, size int64, records int64, window time.Duration) *wal {
	return &wal{f: f, window: window, size: size, records: records}
}

// append writes one framed payload and returns a wait function that
// resolves once the record is durable (fsynced). The write order under the
// lock is the commit order; callers serialize their own apply step with
// the append (not with the wait), so log order always matches apply order.
func (w *wal) append(frames []byte, n int64) (wait func() error, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, fmt.Errorf("durable: WAL is closed")
	}
	if w.syncErr != nil {
		return nil, w.syncErr
	}
	if _, err := w.f.Write(frames); err != nil {
		// A partial frame may be on disk now — exactly a torn tail, which
		// recovery repairs. Poison the log so no later record can commit
		// after the hole.
		w.syncErr = fmt.Errorf("durable: WAL write: %w", err)
		return nil, w.syncErr
	}
	w.size += int64(len(frames))
	w.records += n
	hitCrashpoint("wal.append")
	if w.window <= 0 {
		err := w.syncLocked()
		return func() error { return err }, err
	}
	ch := make(chan error, 1)
	w.pending = append(w.pending, ch)
	if !w.flushSet {
		w.flushSet = true
		time.AfterFunc(w.window, w.flush)
	}
	return func() error { return <-ch }, nil
}

// flush is the group-commit timer body: one fsync resolves every pending
// waiter.
func (w *wal) flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.flushSet = false
	w.notifyLocked(w.syncLocked())
}

func (w *wal) syncLocked() error {
	if w.syncErr != nil {
		return w.syncErr
	}
	if err := w.f.Sync(); err != nil {
		w.syncErr = fmt.Errorf("durable: WAL fsync: %w", err)
		return w.syncErr
	}
	hitCrashpoint("wal.sync")
	return nil
}

func (w *wal) notifyLocked(err error) {
	for _, ch := range w.pending {
		ch <- err
	}
	w.pending = nil
}

// barrier fsyncs any unsynced tail immediately (used before snapshot
// rotation and on shutdown).
func (w *wal) barrier() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.syncLocked()
	w.notifyLocked(err)
	return err
}

// truncate empties the log after a successful snapshot rotation. Callers
// hold no other lock; pending records were synced by the barrier the
// rotation takes first.
func (w *wal) truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.syncLocked(); err != nil {
		return err
	}
	w.notifyLocked(nil)
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("durable: WAL truncate: %w", err)
	}
	hitCrashpoint("wal.truncate")
	if err := w.f.Sync(); err != nil {
		w.syncErr = fmt.Errorf("durable: WAL fsync: %w", err)
		return w.syncErr
	}
	w.size, w.records = 0, 0
	return nil
}

func (w *wal) stats() (size, records int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size, w.records
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	w.notifyLocked(err)
	if cerr := w.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// walScan is the outcome of scanning a log file at recovery.
type walScan struct {
	records  []walRecord
	validLen int64 // bytes up to and including the last valid frame
	torn     bool  // a torn/truncated tail was dropped past validLen
	tornWhy  string
}

// scanWAL walks the framed records in b. A frame that runs past the end of
// the file, a zero-filled tail, or a CRC mismatch on the *final* frame are
// all the expected shape of a crash mid-write: the scan stops there,
// reports the tail torn, and the caller truncates to validLen and
// continues. Anything else — a CRC mismatch with valid-looking data after
// it, an undecodable payload, a sequence number that does not follow its
// predecessor — is ErrCorrupt: the middle of the log cannot be trusted,
// and silently dropping acknowledged records would be worse than refusing
// to start.
func scanWAL(b []byte) (walScan, error) {
	var s walScan
	var lastSeq uint64
	off := 0
	for off < len(b) {
		if len(b)-off < frameHeaderLen {
			return tornTail(s, off, b, "truncated frame header")
		}
		n := binary.LittleEndian.Uint32(b[off:])
		sum := binary.LittleEndian.Uint32(b[off+4:])
		if n == 0 || n > maxRecordLen {
			// A zero-filled tail is preallocation/torn-write debris; an
			// implausible length over non-zero data is mid-log corruption.
			if zeroTail(b[off:]) {
				return tornTail(s, off, b, "zero-filled tail")
			}
			return s, fmt.Errorf("%w: implausible frame length %d at offset %d", ErrCorrupt, n, off)
		}
		end := off + frameHeaderLen + int(n)
		if end > len(b) {
			return tornTail(s, off, b, "frame runs past end of log")
		}
		payload := b[off+frameHeaderLen : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			if end == len(b) {
				// The final frame: indistinguishable from a torn write of
				// that frame, so repairable.
				return tornTail(s, off, b, "checksum mismatch on final record")
			}
			return s, fmt.Errorf("%w: WAL checksum mismatch at offset %d with %d bytes following", ErrCorrupt, off, len(b)-end)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return s, fmt.Errorf("WAL record at offset %d: %w", off, err)
		}
		if lastSeq != 0 && rec.seq != lastSeq+1 {
			return s, fmt.Errorf("%w: WAL sequence %d follows %d at offset %d", ErrCorrupt, rec.seq, lastSeq, off)
		}
		if rec.seq == 0 {
			return s, fmt.Errorf("%w: WAL record with sequence 0 at offset %d", ErrCorrupt, off)
		}
		lastSeq = rec.seq
		s.records = append(s.records, rec)
		off = end
		s.validLen = int64(off)
	}
	return s, nil
}

// tornTail records a repairable stop: everything past the last valid
// frame is crash debris (scanWAL made the torn-vs-corrupt call before
// coming here). validLen is where the caller truncates.
func tornTail(s walScan, off int, b []byte, why string) (walScan, error) {
	s.torn = off < len(b)
	s.tornWhy = why
	s.validLen = int64(off)
	return s, nil
}

// zeroTail reports whether b is all zero bytes.
func zeroTail(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// openWALForAppend opens (creating if needed) a session's log for append.
func openWALForAppend(fsys FS, path string) (File, error) {
	return fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}
