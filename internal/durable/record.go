package durable

// WAL record and shared polynomial codecs. Every WAL frame is
//
//	u32 LE payload length | u32 LE CRC32-C of payload | payload
//
// and every payload is
//
//	u8 record type | uvarint sequence number | body
//
// Sequence numbers increase by exactly 1 per record for the whole life of
// a session (they survive snapshot rotation — the snapshot stores the last
// sequence it covers, and recovery skips records at or below it).
//
// Two record types exist:
//
//	recVocab — names newly interned since the last record, in interning
//	           order, so replay reconstructs identical Var ids.
//	recAdd   — one Engine.Add: the tag and the polynomial's monomials
//	           (coefficient + (var, pow) factors, vars as interned ids).
//
// Decoders are fuzzed (FuzzWALScan, FuzzSnapshotDecode): they must reject
// arbitrary bytes with an error, never panic, and never allocate
// proportionally to a length field that the remaining input cannot back.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"provabs/internal/provenance"
)

// ErrCorrupt reports corruption recovery must not paper over: a bad CRC in
// the middle of the log, an undecodable payload, a sequence gap. A torn or
// truncated *tail* is not ErrCorrupt — that is the expected shape of a
// crash and is repaired by truncation.
var ErrCorrupt = errors.New("durable: corrupt")

const (
	recVocab byte = 1
	recAdd   byte = 2

	// frameHeaderLen is the length+CRC prefix of every WAL frame.
	frameHeaderLen = 8

	// maxRecordLen bounds one WAL record (a single Add). A polynomial
	// approaching this is pathological; the bound exists so a corrupt
	// length field cannot drive a giant allocation.
	maxRecordLen = 64 << 20

	// maxNameLen bounds one interned variable name (mirrors the codec.go
	// string cap).
	maxNameLen = 1 << 24
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one decoded WAL record.
type walRecord struct {
	seq  uint64
	kind byte

	names []string // recVocab

	tag   string     // recAdd
	terms []dumpTerm // recAdd
}

// dumpTerm is one decoded monomial: a coefficient and its factors.
type dumpTerm struct {
	coeff   float64
	factors []provenance.VarPow
}

// appendFrame wraps payload in a length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// appendVocabRecord encodes a recVocab payload (not framed).
func appendVocabRecord(dst []byte, seq uint64, names []string) []byte {
	dst = append(dst, recVocab)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
	}
	return dst
}

// appendAddRecord encodes a recAdd payload (not framed).
func appendAddRecord(dst []byte, seq uint64, tag string, p *provenance.Polynomial) []byte {
	dst = append(dst, recAdd)
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(tag)))
	dst = append(dst, tag...)
	return appendPoly(dst, p)
}

// appendPoly encodes a polynomial's canonical monomials — the codec shared
// by WAL add records and the snapshot's source-set section.
func appendPoly(dst []byte, p *provenance.Polynomial) []byte {
	ms := p.Monomials()
	dst = binary.AppendUvarint(dst, uint64(len(ms)))
	for _, m := range ms {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m.Coeff))
		vars := m.Vars()
		dst = binary.AppendUvarint(dst, uint64(len(vars)))
		for _, f := range vars {
			dst = binary.AppendUvarint(dst, uint64(f.Var))
			dst = binary.AppendUvarint(dst, uint64(f.Pow))
		}
	}
	return dst
}

// byteReader is a bounds-checked cursor over a decoded payload.
type byteReader struct {
	b   []byte
	off int
}

func (r *byteReader) remaining() int { return len(r.b) - r.off }

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	r.off += n
	return v, nil
}

func (r *byteReader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated u64", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("%w: truncated field", ErrCorrupt)
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// lenString reads a uvarint-length-prefixed string with a sanity cap.
func (r *byteReader) lenString(maxLen int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(maxLen) || n > uint64(r.remaining()) {
		return "", fmt.Errorf("%w: string length %d out of range", ErrCorrupt, n)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodeRecord parses one framed payload into a walRecord.
func decodeRecord(payload []byte) (walRecord, error) {
	r := &byteReader{b: payload}
	kindB, err := r.bytes(1)
	if err != nil {
		return walRecord{}, err
	}
	rec := walRecord{kind: kindB[0]}
	if rec.seq, err = r.uvarint(); err != nil {
		return walRecord{}, err
	}
	switch rec.kind {
	case recVocab:
		n, err := r.uvarint()
		if err != nil {
			return walRecord{}, err
		}
		if n > uint64(r.remaining()) {
			return walRecord{}, fmt.Errorf("%w: vocab record claims %d names", ErrCorrupt, n)
		}
		rec.names = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			name, err := r.lenString(maxNameLen)
			if err != nil {
				return walRecord{}, err
			}
			rec.names = append(rec.names, name)
		}
	case recAdd:
		if rec.tag, err = r.lenString(maxNameLen); err != nil {
			return walRecord{}, err
		}
		if rec.terms, err = decodePoly(r); err != nil {
			return walRecord{}, err
		}
	default:
		return walRecord{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, rec.kind)
	}
	if r.remaining() != 0 {
		return walRecord{}, fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupt, r.remaining())
	}
	return rec, nil
}

// decodePoly parses the shared polynomial body into terms. Variable ids
// are only bounds-checked here; buildPoly range-checks them against the
// actual vocabulary at apply time, after any preceding vocab record has
// grown it.
func decodePoly(r *byteReader) ([]dumpTerm, error) {
	nTerms, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Each term costs at least 9 bytes (8-byte coefficient + factor count).
	if nTerms > uint64(r.remaining()/9)+1 {
		return nil, fmt.Errorf("%w: polynomial claims %d terms", ErrCorrupt, nTerms)
	}
	terms := make([]dumpTerm, 0, nTerms)
	for i := uint64(0); i < nTerms; i++ {
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		nf, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nf > uint64(r.remaining()/2)+1 {
			return nil, fmt.Errorf("%w: monomial claims %d factors", ErrCorrupt, nf)
		}
		t := dumpTerm{coeff: math.Float64frombits(bits), factors: make([]provenance.VarPow, 0, nf)}
		for j := uint64(0); j < nf; j++ {
			v, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			pw, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if v == 0 || v > math.MaxInt32 {
				return nil, fmt.Errorf("%w: variable id %d out of range", ErrCorrupt, v)
			}
			if pw == 0 || pw > math.MaxInt32 {
				return nil, fmt.Errorf("%w: exponent %d out of range", ErrCorrupt, pw)
			}
			t.factors = append(t.factors, provenance.VarPow{Var: provenance.Var(v), Pow: int32(pw)})
		}
		terms = append(terms, t)
	}
	return terms, nil
}

// buildPoly turns decoded terms into a polynomial, range-checking every
// variable against the vocabulary size at apply time.
func buildPoly(terms []dumpTerm, vocabLen int) (*provenance.Polynomial, error) {
	p := provenance.NewPolynomial()
	for _, t := range terms {
		for _, f := range t.factors {
			if int(f.Var) > vocabLen {
				return nil, fmt.Errorf("%w: add record references variable %d outside the vocabulary (size %d)", ErrCorrupt, f.Var, vocabLen)
			}
		}
		p.AddMonomial(provenance.NewMonomialPows(t.coeff, t.factors...))
	}
	return p, nil
}
