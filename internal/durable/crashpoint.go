package durable

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Crash points let the crash-recovery end-to-end test kill a live provabs
// process at a precise persistence step instead of racing a signal against
// I/O. Setting PROVABS_CRASH_POINT="name:N" makes the Nth hit of the named
// point call os.Exit immediately — after the bytes the point follows, and
// before anything the point precedes, exactly like a power cut there.
//
// Instrumented points:
//
//	wal.append       after a record's frame is written, before it is synced
//	wal.sync         after a WAL fsync returns (the record is durable,
//	                 the caller has not yet been acknowledged)
//	snapshot.write   after the new snapshot's bytes are written, before
//	                 its fsync
//	snapshot.rename  after the snapshot rename, before the directory sync
//	                 and the WAL truncate
//
// The variable is read once per process; production runs never pay more
// than one empty-string comparison per hit.
const crashPointEnv = "PROVABS_CRASH_POINT"

var (
	crashSpec   = os.Getenv(crashPointEnv)
	crashTarget int64
	crashName   string
	crashHits   atomic.Int64
)

func init() {
	if crashSpec == "" {
		return
	}
	name, n, ok := strings.Cut(crashSpec, ":")
	crashName = name
	crashTarget = 1
	if ok {
		if v, err := strconv.ParseInt(n, 10, 64); err == nil && v > 0 {
			crashTarget = v
		}
	}
}

// hitCrashpoint exits the process if the named point is the configured one
// and this is its Nth hit.
func hitCrashpoint(name string) {
	if crashSpec == "" || name != crashName {
		return
	}
	if crashHits.Add(1) == crashTarget {
		fmt.Fprintf(os.Stderr, "durable: crash point %s hit %d — exiting\n", crashName, crashTarget)
		os.Exit(42)
	}
}
