// Fault-injection and recovery tests for the durable layer. They live in
// package durable_test so they can drive the public API through the
// faultfs in-memory filesystem (which itself imports durable for the File
// and FS interfaces).
package durable_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"provabs/internal/abstree"
	"provabs/internal/durable"
	"provabs/internal/durable/faultfs"
	"provabs/internal/hypo"
	"provabs/internal/provenance"
	"provabs/internal/session"
)

// fixture is the paper's running example (Example 2 plus a second
// polynomial) and the quarter tree — the same fixture the session tests
// use, so golden answers line up across packages.
func fixture(t testing.TB) (*provenance.Set, *abstree.Forest) {
	t.Helper()
	vb := provenance.NewVocab()
	set := provenance.NewSet(vb)
	set.Add("zip 10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + "+
			"75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	set.Add("zip 10002", provenance.MustParse(vb,
		"100·p1·m1 + 50·f1·m3 + 25·y1·m1"))
	forest, err := abstree.NewForest(abstree.MustParseTree("Year(q1(m1,m3))"))
	if err != nil {
		t.Fatal(err)
	}
	return set, forest
}

// goldenBatch is a what-if batch touching every fixture variable.
func goldenBatch() []*hypo.Scenario {
	return []*hypo.Scenario{
		hypo.NewScenario().Set("p1", 0.5),
		hypo.NewScenario().Set("f1", 0).Set("m1", 2),
		hypo.NewScenario().Set("v", 3).Set("m3", 0.25),
	}
}

// mustAnswers evaluates a batch and flattens the values.
func mustAnswers(t testing.TB, e *session.Engine, scs []*hypo.Scenario) []float64 {
	t.Helper()
	rows, err := e.WhatIfBatch(scs)
	if err != nil {
		t.Fatal(err)
	}
	var out []float64
	for _, row := range rows {
		for _, a := range row {
			out = append(out, a.Value)
		}
	}
	return out
}

// sameBits asserts two float slices are bit-identical.
func sameBits(t testing.TB, want, got []float64, what string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d answers, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: answer %d = %v, want %v (bit-exact)", what, i, got[i], want[i])
		}
	}
}

func snapshotRoundTrip(t *testing.T, compress bool) {
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	if compress {
		if _, err := eng.Compress(7); err != nil {
			t.Fatal(err)
		}
	}
	want := mustAnswers(t, eng, goldenBatch())

	var buf bytes.Buffer
	if err := eng.WithState(func(st *session.SnapshotState) error {
		return durable.EncodeSnapshot(&buf, st, 17)
	}); err != nil {
		t.Fatal(err)
	}
	st, seq, err := durable.DecodeSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 17 {
		t.Fatalf("decoded lastSeq = %d, want 17", seq)
	}
	got, err := session.Restore(st)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, want, mustAnswers(t, got, goldenBatch()), "restored answers")
	if s := got.Stats(); s.Compiles != 1 {
		t.Fatalf("restored Compiles = %d, want 1 (no recompilation)", s.Compiles)
	}
	if s := got.Stats(); s.Compressed != compress {
		t.Fatalf("restored Compressed = %v, want %v", s.Compressed, compress)
	}

	// Adds over the existing vocabulary must behave identically on both
	// sides — including re-abstraction under the restored substitution.
	p1, err := eng.ParsePoly("7·p1·m1 + 2·v")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := got.ParsePoly("7·p1·m1 + 2·v")
	if err != nil {
		t.Fatal(err)
	}
	eng.Add("zip 10003", p1)
	got.Add("zip 10003", p2)
	sameBits(t, mustAnswers(t, eng, goldenBatch()), mustAnswers(t, got, goldenBatch()), "post-Add answers")
	if s := got.Stats(); s.Compiles != 1 {
		t.Fatalf("Compiles after Add = %d, want 1 (Append path)", s.Compiles)
	}
}

func TestSnapshotRoundTrip(t *testing.T)           { snapshotRoundTrip(t, false) }
func TestSnapshotRoundTripCompressed(t *testing.T) { snapshotRoundTrip(t, true) }

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.WithState(func(st *session.SnapshotState) error {
		return durable.EncodeSnapshot(&buf, st, 1)
	}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Every single-bit flip anywhere in the snapshot must be detected.
	for off := 0; off < len(b); off += 37 {
		mut := append([]byte(nil), b...)
		mut[off] ^= 0x10
		if _, _, err := durable.DecodeSnapshot(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at offset %d went undetected", off)
		}
	}
	// Truncations must be detected too.
	for _, n := range []int{0, 3, 24, len(b) / 2, len(b) - 1} {
		if _, _, err := durable.DecodeSnapshot(bytes.NewReader(b[:n])); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

// addPoly parses, logs+applies and waits — the durable add sequence every
// caller follows.
func addPoly(t testing.TB, ss *durable.SessionStore, eng *session.Engine, tag, src string) {
	t.Helper()
	p, err := eng.ParsePoly(src)
	if err != nil {
		t.Fatal(err)
	}
	wait, err := ss.Add(eng, tag, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRecoverOSFS(t *testing.T) {
	root := t.TempDir()
	store, err := durable.NewStore(root, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := store.Create("paper", eng)
	if err != nil {
		t.Fatal(err)
	}
	addPoly(t, ss, eng, "zip 10003", "5·p1·m3 + 1·v·m1")
	addPoly(t, ss, eng, "zip 10004", "9·newvar + 2·f1")
	want := mustAnswers(t, eng, goldenBatch())
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := durable.NewStore(root, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if names, err := store2.List(); err != nil || len(names) != 1 || names[0] != "paper" {
		t.Fatalf("List = %v, %v; want [paper]", names, err)
	}
	eng2, ss2, info, err := store2.Recover("paper")
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	if info.WALRecords != 2 || info.TornTail {
		t.Fatalf("recovery info = %+v, want 2 replayed records and no torn tail", info)
	}
	sameBits(t, want, mustAnswers(t, eng2, goldenBatch()), "recovered answers")
	if s := eng2.Stats(); s.Compiles != 1 {
		t.Fatalf("recovered Compiles = %d, want 1", s.Compiles)
	}
}

func TestRotationAndSeqSkip(t *testing.T) {
	fs := faultfs.New()
	store, err := durable.NewStore("root", durable.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := store.Create("s", eng)
	if err != nil {
		t.Fatal(err)
	}
	addPoly(t, ss, eng, "a", "3·p1 + 1·v")
	if err := ss.WriteSnapshot(eng); err != nil {
		t.Fatal(err)
	}
	if size, records := ss.WALStats(); size != 0 || records != 0 {
		t.Fatalf("WAL after rotation: %d bytes, %d records; want empty", size, records)
	}
	addPoly(t, ss, eng, "b", "4·f1·m1")
	want := mustAnswers(t, eng, goldenBatch())
	ss.Close()

	eng2, ss2, info, err := store.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	// Only the post-rotation add replays.
	if info.WALRecords != 1 {
		t.Fatalf("replayed %d records, want 1", info.WALRecords)
	}
	sameBits(t, want, mustAnswers(t, eng2, goldenBatch()), "recovered answers")
}

func TestTornTailTruncated(t *testing.T) {
	fs := faultfs.New()
	store, err := durable.NewStore("root", durable.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := store.Create("s", eng)
	if err != nil {
		t.Fatal(err)
	}
	addPoly(t, ss, eng, "a", "3·p1 + 1·v")
	want := mustAnswers(t, eng, goldenBatch())
	ss.Close()

	walPath := "root/sessions/s/wal.log"
	for _, tail := range [][]byte{
		{0xff},                          // half a frame header
		{9, 0, 0, 0, 1, 2, 3, 4, 5},     // full header, body cut short
		make([]byte, 64),                // zero-filled preallocation debris
		{40, 0, 0, 0, 1, 2, 3, 4, 9, 9}, // header + wrong bytes, runs past EOF
	} {
		f, err := fs.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		f.Close()

		var warned bool
		store2, err := durable.NewStore("root", durable.Options{FS: fs, Logf: func(string, ...any) { warned = true }})
		if err != nil {
			t.Fatal(err)
		}
		eng2, ss2, info, err := store2.Recover("s")
		if err != nil {
			t.Fatalf("tail %v: %v", tail, err)
		}
		if !info.TornTail || !warned {
			t.Fatalf("tail %v: TornTail=%v warned=%v, want both true", tail, info.TornTail, warned)
		}
		sameBits(t, want, mustAnswers(t, eng2, goldenBatch()), "recovered answers")
		ss2.Close()
		// Recovery truncated the debris: the log must scan clean now.
		if b, err := fs.ReadFile(walPath); err != nil || len(b) == 0 {
			t.Fatalf("WAL after repair: %d bytes, err %v", len(b), err)
		}
	}
}

func TestCorruptMiddleRefused(t *testing.T) {
	fs := faultfs.New()
	store, err := durable.NewStore("root", durable.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := store.Create("s", eng)
	if err != nil {
		t.Fatal(err)
	}
	addPoly(t, ss, eng, "a", "3·p1 + 1·v")
	addPoly(t, ss, eng, "b", "4·f1·m1")
	addPoly(t, ss, eng, "c", "5·y1·m3")
	ss.Close()

	// Flip one payload bit in the first record: a checksum mismatch with
	// valid frames after it is corruption, not a torn tail.
	if err := fs.FlipBit("root/sessions/s/wal.log", 10, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := store.Recover("s"); !errors.Is(err, durable.ErrCorrupt) {
		t.Fatalf("Recover over corrupt middle = %v, want ErrCorrupt", err)
	}
}

func TestGroupCommitWindow(t *testing.T) {
	fs := faultfs.New()
	store, err := durable.NewStore("root", durable.Options{FS: fs, GroupWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := store.Create("s", eng)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := eng.ParsePoly(fmt.Sprintf("%d·p1 + 1·v", i+1))
			if err != nil {
				t.Error(err)
				return
			}
			tag := fmt.Sprintf("g%d", i)
			wait, err := ss.Add(eng, tag, p)
			if err != nil {
				t.Error(err)
				return
			}
			if err := wait(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	want := mustAnswers(t, eng, goldenBatch())
	ss.Close()

	eng2, ss2, info, err := store.Recover("s")
	if err != nil {
		t.Fatal(err)
	}
	defer ss2.Close()
	if info.WALRecords != 8 {
		t.Fatalf("replayed %d records, want 8", info.WALRecords)
	}
	sameBits(t, want, mustAnswers(t, eng2, goldenBatch()), "recovered answers")
}

// sweepWorkload runs the deterministic durable workload against fs:
// create a session from the fixture, then eight durable adds with a
// snapshot rotation in the middle. It returns the tags acknowledged as
// durable before the first injected fault stopped it.
func sweepWorkload(t testing.TB, fs *faultfs.FS) (acked []string) {
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	store, err := durable.NewStore("root", durable.Options{FS: fs})
	if err != nil {
		return nil
	}
	ss, err := store.Create("s", eng)
	if err != nil {
		return nil
	}
	defer ss.Close()
	for i := 0; i < 8; i++ {
		src := fmt.Sprintf("%d·p1·m1 + %d·w%d", i+1, i+2, i)
		p, err := eng.ParsePoly(src)
		if err != nil {
			t.Fatal(err)
		}
		tag := fmt.Sprintf("t%d", i)
		wait, err := ss.Add(eng, tag, p)
		if err != nil {
			return acked
		}
		if err := wait(); err != nil {
			return acked
		}
		acked = append(acked, tag)
		if i == 4 {
			if err := ss.WriteSnapshot(eng); err != nil {
				return acked
			}
		}
	}
	return acked
}

// TestCrashSweep crashes the workload at every mutating filesystem
// operation in turn and asserts the durability contract after each:
// recovery succeeds (or finds nothing, if the crash predates the first
// durable byte), every acknowledged add survives with bit-identical
// answers, and nothing is applied twice.
func TestCrashSweep(t *testing.T) {
	// First pass, no faults: count the workload's operations.
	clean := faultfs.New()
	if acked := sweepWorkload(t, clean); len(acked) != 8 {
		t.Fatalf("clean workload acked %d adds, want 8", len(acked))
	}
	total := clean.Ops()

	for k := int64(0); k <= total; k++ {
		fs := faultfs.New()
		fs.StopAfter(k)
		acked := sweepWorkload(t, fs)
		fs.Crash()

		store, err := durable.NewStore("root", durable.Options{FS: fs})
		if err != nil {
			t.Fatalf("k=%d: reopen store: %v", k, err)
		}
		eng, ss, _, err := store.Recover("s")
		if err != nil {
			t.Fatalf("k=%d (acked %d): recovery failed: %v", k, len(acked), err)
		}

		// Rebuild the reference engine: fixture + every add the recovered
		// session contains (acked plus possibly a durable-but-unacked tail;
		// never a hole, never a duplicate).
		var tags []string
		if err := eng.WithState(func(st *session.SnapshotState) error {
			tags = append(tags, st.Source.Tags...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(tags) < 2 {
			// The crash predates the initial snapshot: the session was never
			// durable, so nothing may have been acknowledged.
			if len(acked) != 0 {
				t.Fatalf("k=%d: %d acked adds but no durable session", k, len(acked))
			}
			ss.Close()
			continue
		}
		if len(tags) < 2+len(acked) {
			t.Fatalf("k=%d: recovered %d polynomials, acked fixture+%d", k, len(tags), len(acked))
		}
		refSet, refForest := fixture(t)
		ref, err := session.Open(refSet, refForest)
		if err != nil {
			t.Fatal(err)
		}
		for i, tag := range tags[2:] {
			if want := fmt.Sprintf("t%d", i); tag != want {
				t.Fatalf("k=%d: recovered add %d has tag %q, want %q (no holes, no dups)", k, i, tag, want)
			}
			p, err := ref.ParsePoly(fmt.Sprintf("%d·p1·m1 + %d·w%d", i+1, i+2, i))
			if err != nil {
				t.Fatal(err)
			}
			ref.Add(tag, p)
		}
		sameBits(t, mustAnswers(t, ref, goldenBatch()), mustAnswers(t, eng, goldenBatch()),
			fmt.Sprintf("k=%d recovered answers", k))
		if s := eng.Stats(); s.Compiles != 1 {
			t.Fatalf("k=%d: recovered Compiles = %d, want 1", k, s.Compiles)
		}
		ss.Close()
	}
}

// TestRecoverAfterKill is the in-package cousin of the cmd-level crash
// test: it exercises Recover against a directory produced by a real OS
// file layout rather than faultfs.
func TestRecoverSurvivesReopenCycles(t *testing.T) {
	root := t.TempDir()
	set, forest := fixture(t)
	eng, err := session.Open(set, forest)
	if err != nil {
		t.Fatal(err)
	}
	store, err := durable.NewStore(root, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := store.Create("s", eng)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 4; cycle++ {
		addPoly(t, ss, eng, fmt.Sprintf("c%d", cycle), fmt.Sprintf("%d·p1 + 2·v·m1", cycle+1))
		want := mustAnswers(t, eng, goldenBatch())
		ss.Close()

		store, err = durable.NewStore(root, durable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng, ss, _, err = store.Recover("s")
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		sameBits(t, want, mustAnswers(t, eng, goldenBatch()), fmt.Sprintf("cycle %d", cycle))
	}
	if _, err := os.Stat(filepath.Join(root, "sessions", "s", "snapshot.pvsn")); err != nil {
		t.Fatalf("snapshot missing after cycles: %v", err)
	}
	ss.Close()
}
