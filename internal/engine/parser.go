package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseQuery parses the supported SQL subset:
//
//	SELECT [DISTINCT] item [, item]...
//	FROM table [AS alias] [, table [AS alias]]...
//	[WHERE cmp [AND cmp]...]
//	[GROUP BY col [, col]...]
//	[ORDER BY expr [ASC|DESC] [, ...]]
//	[LIMIT n]
//
// where item is expr [AS name] or AGG(expr) [AS name] (AGG one of SUM,
// COUNT, MIN, MAX, AVG; COUNT(*) allowed), expressions use + - * / with
// parentheses, column references (alias.col or col), numeric literals,
// 'string' literals and DATE 'YYYY-MM-DD', and cmp is expr op expr or expr
// BETWEEN expr AND expr with op ∈ {=, <>, !=, <, <=, >, >=}.
func ParseQuery(src string) (*Query, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, src: src}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

type sqlParser struct {
	toks []token
	i    int
	src  string
}

func (p *sqlParser) cur() token { return p.toks[p.i] }
func (p *sqlParser) advance()   { p.i++ }
func (p *sqlParser) at(k tokKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *sqlParser) accept(k tokKind, text string) bool {
	if p.at(k, text) {
		p.advance()
		return true
	}
	return false
}

func (p *sqlParser) expect(k tokKind, text string) (token, error) {
	if p.at(k, text) {
		t := p.cur()
		p.advance()
		return t, nil
	}
	return token{}, p.errf("expected %s %q, got %q", kindName(k), text, p.cur().text)
}

func kindName(k tokKind) string {
	switch k {
	case tokIdent:
		return "identifier"
	case tokKeyword:
		return "keyword"
	case tokSymbol:
		return "symbol"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	}
	return "token"
}

func (p *sqlParser) errf(format string, args ...any) error {
	return fmt.Errorf("engine: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *sqlParser) query() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	q.Distinct = p.accept(tokKeyword, "DISTINCT")
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Table: t.text}
		if p.accept(tokKeyword, "AS") {
			a, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ref.Alias = a.text
		} else if p.at(tokIdent, "") {
			ref.Alias = p.cur().text
			p.advance()
		}
		q.From = append(q.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		for {
			preds, err := p.predicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, preds...)
			if !p.accept(tokKeyword, "AND") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.primary()
			if err != nil {
				return nil, err
			}
			col, ok := e.(*ColExpr)
			if !ok {
				return nil, p.errf("GROUP BY supports column references only")
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *sqlParser) selectItem() (SelectItem, error) {
	var item SelectItem
	if t := p.cur(); t.kind == tokKeyword {
		switch t.text {
		case "SUM", "COUNT", "MIN", "MAX", "AVG":
			item.Agg = map[string]AggKind{
				"SUM": AggSum, "COUNT": AggCount, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
			}[t.text]
			p.advance()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return item, err
			}
			if item.Agg == AggCount && p.accept(tokSymbol, "*") {
				// COUNT(*): Expr stays nil.
			} else {
				e, err := p.expr()
				if err != nil {
					return item, err
				}
				item.Expr = e
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return item, err
			}
		}
	}
	if item.Agg == AggNone {
		e, err := p.expr()
		if err != nil {
			return item, err
		}
		item.Expr = e
	}
	if p.accept(tokKeyword, "AS") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return item, err
		}
		item.Alias = a.text
	}
	return item, nil
}

// predicate parses one WHERE conjunct; BETWEEN expands to two conjuncts.
func (p *sqlParser) predicate() ([]Predicate, error) {
	l, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "BETWEEN") {
		lo, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.expr()
		if err != nil {
			return nil, err
		}
		return []Predicate{{Op: CmpGe, L: l, R: lo}, {Op: CmpLe, L: l, R: hi}}, nil
	}
	t := p.cur()
	if t.kind != tokSymbol {
		return nil, p.errf("expected comparison operator, got %q", t.text)
	}
	var op CmpOp
	switch t.text {
	case "=":
		op = CmpEq
	case "<>", "!=":
		op = CmpNe
	case "<":
		op = CmpLt
	case "<=":
		op = CmpLe
	case ">":
		op = CmpGt
	case ">=":
		op = CmpGe
	default:
		return nil, p.errf("unknown comparison %q", t.text)
	}
	p.advance()
	r, err := p.expr()
	if err != nil {
		return nil, err
	}
	return []Predicate{{Op: op, L: l, R: r}}, nil
}

// expr parses additive expressions; term handles * and /.
func (p *sqlParser) expr() (Expr, error) {
	l, err := p.term()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: '+', L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.term()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: '-', L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *sqlParser) term() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: '*', L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: '/', L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *sqlParser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokSymbol && t.text == "-":
		p.advance()
		e, err := p.primary()
		if err != nil {
			return nil, err
		}
		return &NegExpr{E: e}, nil
	case t.kind == tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &LitExpr{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &LitExpr{Val: Int(n)}, nil
	case t.kind == tokString:
		p.advance()
		return &LitExpr{Val: Str(t.text)}, nil
	case t.kind == tokKeyword && t.text == "DATE":
		p.advance()
		s, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		d, err := ParseDate(s.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return &LitExpr{Val: d}, nil
	case t.kind == tokIdent:
		p.advance()
		if p.accept(tokSymbol, ".") {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &ColExpr{Table: t.text, Name: c.text}, nil
		}
		return &ColExpr{Name: t.text}, nil
	}
	return nil, p.errf("unexpected %q in expression", t.text)
}
