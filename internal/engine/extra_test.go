package engine

import (
	"strings"
	"testing"

	"provabs/internal/provenance"
)

func TestLexerEdgeCases(t *testing.T) {
	toks, err := lexSQL("SELECT a -- trailing comment\nFROM t")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	// SELECT a FROM t EOF
	if len(toks) != 5 {
		t.Errorf("tokens = %d (%v)", len(toks), kinds)
	}
	if _, err := lexSQL("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := lexSQL("SELECT @"); err == nil {
		t.Error("bad character accepted")
	}
	// Operators.
	toks, err = lexSQL("a <= b >= c <> d != e")
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{}
	for _, tk := range toks {
		if tk.kind == tokSymbol {
			ops = append(ops, tk.text)
		}
	}
	if strings.Join(ops, " ") != "<= >= <> !=" {
		t.Errorf("ops = %v", ops)
	}
}

func TestFloatLiteralAndPrecedence(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"x", TFloat}})
	r.MustAppend(Float(10))
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT x * 2 + 1.5 AS y, (x + 2) * 3 AS z, -x AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].F != 21.5 {
		t.Errorf("x*2+1.5 = %v", row[0].F)
	}
	if row[1].F != 36 {
		t.Errorf("(x+2)*3 = %v", row[1].F)
	}
	if row[2].F != -10 {
		t.Errorf("-x = %v", row[2].F)
	}
}

func TestDateArithmeticInPredicates(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"d", TDate}, {"x", TInt}})
	r.MustAppend(MustDate("1994-01-01"), Int(1))
	r.MustAppend(MustDate("1995-06-30"), Int(2))
	r.MustAppend(MustDate("1996-12-31"), Int(3))
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT x FROM t WHERE d >= DATE '1995-01-01' AND d < DATE '1996-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"a", TString}, {"b", TString}, {"x", TInt}})
	for _, row := range []struct {
		a, b string
		x    int64
	}{{"u", "v", 1}, {"u", "v", 2}, {"u", "w", 4}, {"z", "v", 8}} {
		r.MustAppend(Str(row.a), Str(row.b), Int(row.x))
	}
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT a, b, SUM(x) AS s FROM t GROUP BY a, b ORDER BY a, b")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][2].F != 3 || res.Rows[1][2].F != 4 || res.Rows[2][2].F != 8 {
		t.Errorf("sums = %v %v %v", res.Rows[0][2], res.Rows[1][2], res.Rows[2][2])
	}
}

func TestProjectionExpressionsOverJoin(t *testing.T) {
	c := NewCatalog(nil)
	a := NewRelation("a", Schema{{"k", TInt}, {"x", TFloat}})
	b := NewRelation("b", Schema{{"k", TInt}, {"y", TFloat}})
	a.MustAppend(Int(1), Float(2))
	b.MustAppend(Int(1), Float(5))
	c.AddTable(a)
	c.AddTable(b)
	res, err := c.ExecSQL("SELECT a.x * b.y AS prod FROM a, b WHERE a.k = b.k")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].F != 10 {
		t.Errorf("prod = %v", res.Rows[0][0])
	}
}

func TestRelationStringRendering(t *testing.T) {
	r := NewRelation("t", Schema{{"name", TString}, {"n", TInt}})
	r.MustAppend(Str("alpha"), Int(1))
	r.MustAppend(Str("b"), Int(22))
	out := r.String(nil, 1)
	if !strings.Contains(out, "name") || !strings.Contains(out, "alpha") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(out, "1 more rows") {
		t.Errorf("truncation note missing:\n%s", out)
	}
}

func TestAppendArityAndTypeErrors(t *testing.T) {
	r := NewRelation("t", Schema{{"x", TInt}})
	if err := r.Append(Int(1), Int(2)); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.Append(Str("no")); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := r.Append(Int(3)); err != nil {
		t.Errorf("valid append rejected: %v", err)
	}
}

func TestParameterizeColumnErrors(t *testing.T) {
	vb := provenance.NewVocab()
	r := NewRelation("t", Schema{{"s", TString}, {"x", TFloat}})
	r.MustAppend(Str("a"), Float(1))
	if err := r.ParameterizeColumn("nope", nil); err == nil {
		t.Error("unknown column accepted")
	}
	if err := r.ParameterizeColumn("s", nil); err == nil {
		t.Error("string column accepted")
	}
	if err := r.ParameterizeColumn("x", func(int) []provenance.Var {
		return []provenance.Var{vb.Var("u")}
	}); err != nil {
		t.Errorf("valid parameterization rejected: %v", err)
	}
	if r.Rows[0][1].T != TSym {
		t.Error("cell not symbolic after parameterization")
	}
}

func TestCountStarAndAvgTypes(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"x", TInt}})
	r.MustAppend(Int(1))
	r.MustAppend(Int(2))
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT COUNT(*) AS n, AVG(x) AS m FROM t GROUP BY x ORDER BY m")
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema[0].Type != TInt {
		t.Errorf("COUNT type = %s", res.Schema[0].Type)
	}
	if res.Schema[1].Type != TFloat {
		t.Errorf("AVG type = %s", res.Schema[1].Type)
	}
}

func TestDistinctWithoutAnnotations(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"x", TInt}})
	r.MustAppend(Int(1))
	r.MustAppend(Int(1))
	r.MustAppend(Int(2))
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT DISTINCT x FROM t ORDER BY x")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("distinct rows = %d", len(res.Rows))
	}
}

func TestSymbolicAvg(t *testing.T) {
	vb := provenance.NewVocab()
	c := NewCatalog(vb)
	r := NewRelation("t", Schema{{"g", TInt}, {"x", TFloat}})
	r.MustAppend(Int(1), Float(2))
	r.MustAppend(Int(1), Float(4))
	if err := r.ParameterizeColumn("x", func(i int) []provenance.Var {
		return []provenance.Var{vb.Var("u")}
	}); err != nil {
		t.Fatal(err)
	}
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT g, AVG(x) AS m FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][1].T != TSym {
		t.Fatalf("AVG over symbolic not symbolic: %v", res.Rows[0][1].T)
	}
	u, _ := vb.Lookup("u")
	if got := res.Rows[0][1].Sym.Coeff(u); got != 3 {
		t.Errorf("AVG coefficient = %v, want 3", got)
	}
}

func TestTotalRows(t *testing.T) {
	c := NewCatalog(nil)
	a := NewRelation("a", Schema{{"x", TInt}})
	a.MustAppend(Int(1))
	b := NewRelation("b", Schema{{"y", TInt}})
	b.MustAppend(Int(1))
	b.MustAppend(Int(2))
	c.AddTable(a)
	c.AddTable(b)
	if got := c.TotalRows(); got != 3 {
		t.Errorf("TotalRows = %d", got)
	}
}

func TestGroupProvenanceConstantFallback(t *testing.T) {
	vb := provenance.NewVocab()
	c := NewCatalog(vb)
	r := NewRelation("t", Schema{{"g", TString}, {"x", TFloat}})
	r.MustAppend(Str("a"), Float(2.5))
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT g, SUM(x) AS s FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	set, err := GroupProvenance(vb, res, "s")
	if err != nil {
		t.Fatal(err)
	}
	if set.Polys[0].Coeff() != 2.5 {
		t.Errorf("constant polynomial = %v", set.Polys[0].Coeff())
	}
	if _, err := GroupProvenance(vb, res, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
}
