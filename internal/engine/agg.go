package engine

import (
	"fmt"
	"sort"
	"strings"

	"provabs/internal/provenance"
)

// project evaluates the SELECT list over a joined chunk, grouping and
// aggregating when required. Aggregate semantics follow §2.1 model 2:
// SUM over symbolic cells produces a provenance polynomial per group (the
// "plus" of the provenance expression is the aggregate), AVG divides that
// polynomial by the group cardinality, and MIN/MAX/COUNT are numeric-only.
// With DISTINCT (or a grouped model-1 query), tuple annotations add up per
// group — the semiring projection rule.
func (b *binder) project(vb *provenance.Vocab, q *Query, ch *chunk) (*Relation, error) {
	hasAgg := false
	for _, it := range q.Select {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}

	// Compile select expressions.
	evals := make([]func([]Value) (Value, error), len(q.Select))
	for i, it := range q.Select {
		if it.Expr == nil { // COUNT(*)
			continue
		}
		ev, err := b.compile(it.Expr)
		if err != nil {
			return nil, err
		}
		evals[i] = ev
	}

	out := &Relation{Name: "result"}
	for i, it := range q.Select {
		out.Schema = append(out.Schema, Column{Name: it.OutName(i), Type: b.staticType(it)})
	}

	if !hasAgg && len(q.GroupBy) == 0 {
		// Plain projection.
		if ch.annots != nil {
			out.Annots = []*provenance.Polynomial{}
		}
		for ri, row := range ch.rows {
			vals := make([]Value, len(q.Select))
			for i := range q.Select {
				v, err := evals[i](row)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			out.Rows = append(out.Rows, vals)
			if ch.annots != nil {
				out.Annots = append(out.Annots, ch.annots[ri])
			}
		}
		if q.Distinct {
			return distinct(out)
		}
		return out, nil
	}

	// Grouped (or whole-relation) aggregation. Non-aggregate items must be
	// GROUP BY keys.
	keyEvals := make([]func([]Value) (Value, error), len(q.GroupBy))
	for i, col := range q.GroupBy {
		ev, err := b.compile(col)
		if err != nil {
			return nil, err
		}
		keyEvals[i] = ev
	}
	for _, it := range q.Select {
		if it.Agg != AggNone {
			continue
		}
		col, ok := it.Expr.(*ColExpr)
		if !ok {
			return nil, fmt.Errorf("engine: non-aggregate select item must be a grouping column")
		}
		found := false
		for _, g := range q.GroupBy {
			if strings.EqualFold(g.Name, col.Name) && (g.Table == col.Table || g.Table == "" || col.Table == "") {
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("engine: column %q is not in GROUP BY", col.Name)
		}
	}

	type group struct {
		key    []Value
		accs   []*aggAcc
		annot  *provenance.Polynomial
		anySet bool
	}
	groups := make(map[string]*group)
	var order []string

	for ri, row := range ch.rows {
		var kb strings.Builder
		keyVals := make([]Value, len(q.GroupBy))
		for i, ev := range keyEvals {
			v, err := ev(row)
			if err != nil {
				return nil, err
			}
			k, err := v.Key()
			if err != nil {
				return nil, fmt.Errorf("engine: grouping key: %w", err)
			}
			kb.WriteString(k)
			kb.WriteByte(0)
			keyVals[i] = v
		}
		gk := kb.String()
		g, ok := groups[gk]
		if !ok {
			g = &group{key: keyVals, accs: make([]*aggAcc, len(q.Select))}
			for i, it := range q.Select {
				if it.Agg != AggNone {
					g.accs[i] = &aggAcc{kind: it.Agg}
				}
			}
			groups[gk] = g
			order = append(order, gk)
		}
		for i, it := range q.Select {
			if it.Agg == AggNone {
				continue
			}
			var v Value
			if it.Expr != nil {
				var err error
				v, err = evals[i](row)
				if err != nil {
					return nil, err
				}
			}
			if err := g.accs[i].add(v, it.Expr == nil); err != nil {
				return nil, err
			}
		}
		if ch.annots != nil {
			if g.annot == nil {
				g.annot = provenance.NewPolynomial()
			}
			g.annot = g.annot.Add(ch.annots[ri])
			g.anySet = true
		}
	}

	if ch.annots != nil {
		out.Annots = []*provenance.Polynomial{}
	}
	for _, gk := range order {
		g := groups[gk]
		vals := make([]Value, len(q.Select))
		for i, it := range q.Select {
			if it.Agg == AggNone {
				// Find the matching group-by key position.
				col := it.Expr.(*ColExpr)
				for gi, gcol := range q.GroupBy {
					if strings.EqualFold(gcol.Name, col.Name) && (gcol.Table == col.Table || gcol.Table == "" || col.Table == "") {
						vals[i] = g.key[gi]
						break
					}
				}
				continue
			}
			v, err := g.accs[i].result()
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		out.Rows = append(out.Rows, vals)
		if ch.annots != nil {
			out.Annots = append(out.Annots, g.annot)
		}
	}
	return out, nil
}

// staticType infers the output type of a select item from the expression
// structure (dates and strings survive projection; arithmetic yields FLOAT
// unless both sides are INT; symbolic inputs make it SYMBOLIC).
func (b *binder) staticType(it SelectItem) Type {
	switch it.Agg {
	case AggCount:
		return TInt
	case AggNone, AggSum, AggMin, AggMax, AggAvg:
		t := b.exprType(it.Expr)
		if it.Agg == AggAvg && t == TInt {
			return TFloat
		}
		return t
	}
	return TFloat
}

func (b *binder) exprType(e Expr) Type {
	switch e := e.(type) {
	case nil:
		return TInt
	case *LitExpr:
		return e.Val.T
	case *ColExpr:
		if _, gi, err := b.resolve(e); err == nil {
			return b.columnType(gi)
		}
		return TFloat
	case *NegExpr:
		return b.exprType(e.E)
	case *BinExpr:
		lt, rt := b.exprType(e.L), b.exprType(e.R)
		if lt == TSym || rt == TSym {
			return TSym
		}
		if lt == TInt && rt == TInt && e.Op != '/' {
			return TInt
		}
		return TFloat
	}
	return TFloat
}

// aggAcc accumulates one aggregate.
type aggAcc struct {
	kind  AggKind
	count int64
	sumF  float64
	sym   *provenance.Polynomial
	minV  Value
	maxV  Value
	hasMM bool
}

func (a *aggAcc) add(v Value, countStar bool) error {
	a.count++
	if countStar || a.kind == AggCount {
		return nil
	}
	switch a.kind {
	case AggSum, AggAvg:
		if v.T == TSym {
			if a.sym == nil {
				a.sym = provenance.NewPolynomial()
			}
			a.sym = a.sym.Add(v.Sym)
			return nil
		}
		f, err := v.AsFloat()
		if err != nil {
			return fmt.Errorf("engine: SUM/AVG over %s", v.T)
		}
		a.sumF += f
		return nil
	case AggMin, AggMax:
		if v.T == TSym {
			return fmt.Errorf("engine: MIN/MAX over symbolic cells is not supported (only SUM-style aggregates have polynomial provenance)")
		}
		if !a.hasMM {
			a.minV, a.maxV, a.hasMM = v, v, true
			return nil
		}
		c, err := Compare(v, a.minV)
		if err != nil {
			return err
		}
		if c < 0 {
			a.minV = v
		}
		c, err = Compare(v, a.maxV)
		if err != nil {
			return err
		}
		if c > 0 {
			a.maxV = v
		}
		return nil
	}
	return fmt.Errorf("engine: unknown aggregate")
}

func (a *aggAcc) result() (Value, error) {
	switch a.kind {
	case AggCount:
		return Int(a.count), nil
	case AggSum:
		if a.sym != nil {
			s := a.sym
			if a.sumF != 0 {
				c := provenance.NewPolynomial()
				c.AddTerm(a.sumF)
				s = s.Add(c)
			}
			return Sym(s), nil
		}
		return Float(a.sumF), nil
	case AggAvg:
		if a.count == 0 {
			return Float(0), nil
		}
		if a.sym != nil {
			s := a.sym
			if a.sumF != 0 {
				c := provenance.NewPolynomial()
				c.AddTerm(a.sumF)
				s = s.Add(c)
			}
			return Sym(s.Scale(1 / float64(a.count))), nil
		}
		return Float(a.sumF / float64(a.count)), nil
	case AggMin:
		return a.minV, nil
	case AggMax:
		return a.maxV, nil
	}
	return Value{}, fmt.Errorf("engine: unknown aggregate")
}

// distinct removes duplicate rows; model-1 annotations of merged duplicates
// add up (the semiring projection rule).
func distinct(r *Relation) (*Relation, error) {
	out := &Relation{Name: r.Name, Schema: r.Schema}
	if r.Annots != nil {
		out.Annots = []*provenance.Polynomial{}
	}
	index := map[string]int{}
	for ri, row := range r.Rows {
		var kb strings.Builder
		for _, v := range row {
			k, err := v.Key()
			if err != nil {
				return nil, fmt.Errorf("engine: DISTINCT over symbolic column: %w", err)
			}
			kb.WriteString(k)
			kb.WriteByte(0)
		}
		k := kb.String()
		if at, ok := index[k]; ok {
			if out.Annots != nil {
				out.Annots[at] = out.Annots[at].Add(r.Annots[ri])
			}
			continue
		}
		index[k] = len(out.Rows)
		out.Rows = append(out.Rows, row)
		if out.Annots != nil {
			out.Annots = append(out.Annots, r.Annots[ri])
		}
	}
	return out, nil
}

// orderRelation sorts the projected relation by the ORDER BY keys, which
// must reference output columns by name.
func orderRelation(r *Relation, keys []OrderKey) error {
	type keyed struct {
		col  int
		desc bool
	}
	var ks []keyed
	for _, k := range keys {
		col, ok := k.Expr.(*ColExpr)
		if !ok {
			return fmt.Errorf("engine: ORDER BY supports output column references only")
		}
		idx := r.Schema.Index(col.Name)
		if idx < 0 {
			return fmt.Errorf("engine: ORDER BY column %q not in output", col.Name)
		}
		ks = append(ks, keyed{col: idx, desc: k.Desc})
	}
	indices := make([]int, len(r.Rows))
	for i := range indices {
		indices[i] = i
	}
	var sortErr error
	sort.SliceStable(indices, func(a, b int) bool {
		for _, k := range ks {
			c, err := Compare(r.Rows[indices[a]][k.col], r.Rows[indices[b]][k.col])
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if k.desc {
					return c > 0
				}
				return c < 0
			}
		}
		return indices[a] < indices[b]
	})
	if sortErr != nil {
		return sortErr
	}
	rows := make([][]Value, len(indices))
	for i, idx := range indices {
		rows[i] = r.Rows[idx]
	}
	r.Rows = rows
	if r.Annots != nil {
		annots := make([]*provenance.Polynomial, len(indices))
		for i, idx := range indices {
			annots[i] = r.Annots[idx]
		}
		r.Annots = annots
	}
	return nil
}

// GroupProvenance extracts a provenance Set from a query result: symCol
// names the symbolic (SUM) output column, and the remaining non-symbolic
// columns form each polynomial's tag. Numeric results (no parameterized
// cell reached the aggregate) become constant polynomials, so the extraction
// is total.
func GroupProvenance(vb *provenance.Vocab, r *Relation, symCol string) (*provenance.Set, error) {
	idx := r.Schema.Index(symCol)
	if idx < 0 {
		return nil, fmt.Errorf("engine: no output column %q", symCol)
	}
	s := provenance.NewSet(vb)
	for _, row := range r.Rows {
		var tags []string
		for j, v := range row {
			if j == idx || v.T == TSym {
				continue
			}
			tags = append(tags, v.Format(vb))
		}
		var p *provenance.Polynomial
		switch row[idx].T {
		case TSym:
			p = row[idx].Sym
		case TFloat, TInt:
			f, err := row[idx].AsFloat()
			if err != nil {
				return nil, err
			}
			p = provenance.NewPolynomial()
			p.AddTerm(f)
		default:
			return nil, fmt.Errorf("engine: column %q is %s, not aggregatable", symCol, row[idx].T)
		}
		s.Add(strings.Join(tags, "|"), p)
	}
	return s, nil
}

// TupleProvenance extracts the model-1 annotations of a query result as a
// provenance Set, tagging each polynomial with its tuple's rendered values.
func TupleProvenance(vb *provenance.Vocab, r *Relation) (*provenance.Set, error) {
	if r.Annots == nil {
		return nil, fmt.Errorf("engine: result carries no tuple annotations")
	}
	s := provenance.NewSet(vb)
	for i, row := range r.Rows {
		var tags []string
		for _, v := range row {
			tags = append(tags, v.Format(vb))
		}
		s.Add(strings.Join(tags, "|"), r.Annots[i])
	}
	return s, nil
}
