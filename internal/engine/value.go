// Package engine is a small provenance-aware in-memory relational engine:
// typed relations, a SQL subset (SELECT-FROM-WHERE-GROUP BY with SUM / COUNT
// / MIN / MAX / AVG), hash joins, and two provenance modes matching §2.1 of
// the paper:
//
//   - model 1 (SPJU / semiring): every tuple carries a polynomial
//     annotation; joins multiply annotations and duplicate-eliminating
//     projections add them, yielding N[X] provenance for the output.
//   - model 2 (aggregates): individual cells carry variables; expressions
//     over such cells evaluate symbolically, and SUM produces a provenance
//     polynomial per output group instead of a number.
//
// The engine exists so the compression benchmarks can regenerate provenance
// with the same *shape* the paper reports for TPC-H Q1/Q5/Q10 and the
// telephony example; it deliberately supports just the query fragment the
// paper evaluates (non-nested SPJ with commutative aggregates).
package engine

import (
	"fmt"
	"strconv"
	"time"

	"provabs/internal/provenance"
)

// Type enumerates value types.
type Type uint8

const (
	TInt Type = iota
	TFloat
	TString
	TBool
	TDate // days since Unix epoch
	TSym  // symbolic: a provenance polynomial (parameterized cell or aggregate)
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TBool:
		return "BOOL"
	case TDate:
		return "DATE"
	case TSym:
		return "SYMBOLIC"
	}
	return fmt.Sprintf("TYPE(%d)", uint8(t))
}

// Value is a dynamically typed cell value. Symbolic values carry a
// provenance polynomial and arise from parameterized cells or aggregate
// provenance; they flow through arithmetic but cannot be compared or used
// as grouping keys.
type Value struct {
	T   Type
	I   int64
	F   float64
	S   string
	B   bool
	Sym *provenance.Polynomial
}

// Int, Float, Str, Bool and Date construct values.
func Int(i int64) Value      { return Value{T: TInt, I: i} }
func Float(f float64) Value  { return Value{T: TFloat, F: f} }
func Str(s string) Value     { return Value{T: TString, S: s} }
func Bool(b bool) Value      { return Value{T: TBool, B: b} }
func DateV(days int64) Value { return Value{T: TDate, I: days} }

// Sym constructs a symbolic value.
func Sym(p *provenance.Polynomial) Value { return Value{T: TSym, Sym: p} }

// ParamCell builds the symbolic value of a parameterized cell: the numeric
// cell value multiplied by the given variables (the paper's "variables are
// placed/combined with the values in certain cells").
func ParamCell(v float64, vars ...provenance.Var) Value {
	p := provenance.NewPolynomial()
	p.AddTerm(v, vars...)
	return Sym(p)
}

// ParseDate parses "YYYY-MM-DD" into a TDate value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, fmt.Errorf("engine: bad date %q: %w", s, err)
	}
	return DateV(t.Unix() / 86400), nil
}

// MustDate is ParseDate that panics on error.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool { return v.T == TInt || v.T == TFloat || v.T == TSym }

// AsFloat converts a numeric (non-symbolic) value to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.T {
	case TInt:
		return float64(v.I), nil
	case TFloat:
		return v.F, nil
	}
	return 0, fmt.Errorf("engine: %s value is not numeric", v.T)
}

// asPoly views a numeric value as a polynomial (constants become constant
// polynomials).
func (v Value) asPoly() (*provenance.Polynomial, error) {
	if v.T == TSym {
		return v.Sym, nil
	}
	f, err := v.AsFloat()
	if err != nil {
		return nil, err
	}
	p := provenance.NewPolynomial()
	p.AddTerm(f)
	return p, nil
}

// arith applies +, -, * or / to two values. Symbolic operands make the
// result symbolic; division by a symbolic value is rejected (polynomials
// form a semiring, not a field).
func arith(op byte, a, b Value) (Value, error) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Value{}, fmt.Errorf("engine: arithmetic on non-numeric %s and %s", a.T, b.T)
	}
	if a.T == TSym || b.T == TSym {
		if op == '/' {
			if b.T == TSym {
				return Value{}, fmt.Errorf("engine: cannot divide by a symbolic value")
			}
			f, err := b.AsFloat()
			if err != nil {
				return Value{}, err
			}
			if f == 0 {
				return Value{}, fmt.Errorf("engine: division by zero")
			}
			pa, _ := a.asPoly()
			return Sym(pa.Scale(1 / f)), nil
		}
		pa, err := a.asPoly()
		if err != nil {
			return Value{}, err
		}
		pb, err := b.asPoly()
		if err != nil {
			return Value{}, err
		}
		switch op {
		case '+':
			return Sym(pa.Add(pb)), nil
		case '-':
			return Sym(pa.Add(pb.Scale(-1))), nil
		case '*':
			return Sym(pa.Mul(pb)), nil
		}
		return Value{}, fmt.Errorf("engine: unknown operator %q", op)
	}
	// Integer arithmetic stays integral except for division.
	if a.T == TInt && b.T == TInt && op != '/' {
		switch op {
		case '+':
			return Int(a.I + b.I), nil
		case '-':
			return Int(a.I - b.I), nil
		case '*':
			return Int(a.I * b.I), nil
		}
	}
	af, _ := a.AsFloat()
	bf, _ := b.AsFloat()
	switch op {
	case '+':
		return Float(af + bf), nil
	case '-':
		return Float(af - bf), nil
	case '*':
		return Float(af * bf), nil
	case '/':
		if bf == 0 {
			return Value{}, fmt.Errorf("engine: division by zero")
		}
		return Float(af / bf), nil
	}
	return Value{}, fmt.Errorf("engine: unknown operator %q", op)
}

// Compare orders two values of compatible types: -1, 0 or +1. Symbolic
// values cannot be compared.
func Compare(a, b Value) (int, error) {
	if a.T == TSym || b.T == TSym {
		return 0, fmt.Errorf("engine: cannot compare symbolic values")
	}
	switch {
	case a.T == TString && b.T == TString:
		switch {
		case a.S < b.S:
			return -1, nil
		case a.S > b.S:
			return 1, nil
		}
		return 0, nil
	case a.T == TBool && b.T == TBool:
		switch {
		case !a.B && b.B:
			return -1, nil
		case a.B && !b.B:
			return 1, nil
		}
		return 0, nil
	case a.T == TDate && b.T == TDate, a.T == TInt && b.T == TInt:
		switch {
		case a.I < b.I:
			return -1, nil
		case a.I > b.I:
			return 1, nil
		}
		return 0, nil
	case a.IsNumeric() && b.IsNumeric():
		af, err := a.AsFloat()
		if err != nil {
			return 0, err
		}
		bf, err := b.AsFloat()
		if err != nil {
			return 0, err
		}
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("engine: cannot compare %s with %s", a.T, b.T)
}

// Key returns a hashable string identity for grouping and hash joins.
// Symbolic values have no key.
func (v Value) Key() (string, error) {
	switch v.T {
	case TInt, TDate:
		return "i" + strconv.FormatInt(v.I, 10), nil
	case TFloat:
		return "f" + strconv.FormatFloat(v.F, 'b', -1, 64), nil
	case TString:
		return "s" + v.S, nil
	case TBool:
		if v.B {
			return "b1", nil
		}
		return "b0", nil
	}
	return "", fmt.Errorf("engine: %s value cannot be a key", v.T)
}

// Format renders the value for display; symbolic values render through the
// vocabulary (pass nil to show a placeholder).
func (v Value) Format(vb *provenance.Vocab) string {
	switch v.T {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TBool:
		return strconv.FormatBool(v.B)
	case TDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	case TSym:
		if vb == nil {
			return "<symbolic>"
		}
		return v.Sym.String(vb)
	}
	return "<?>"
}
