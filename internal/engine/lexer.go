package engine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates SQL token kinds.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString // 'quoted'
	tokSymbol // punctuation and operators
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "SUM": true, "COUNT": true, "MIN": true, "MAX": true,
	"AVG": true, "ASC": true, "DESC": true, "DATE": true, "DISTINCT": true,
	"BETWEEN": true,
}

type token struct {
	kind tokKind
	text string // keywords are upper-cased; identifiers keep their case
	pos  int
}

// sqlLexer tokenizes the SQL subset.
type sqlLexer struct {
	src  string
	pos  int
	toks []token
}

func lexSQL(src string) ([]token, error) {
	l := &sqlLexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := rune(l.src[l.pos])
		switch {
		case unicode.IsLetter(c) || c == '_':
			for l.pos < len(l.src) && (isWordByte(l.src[l.pos])) {
				l.pos++
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		case unicode.IsDigit(c) || c == '.' && l.pos+1 < len(l.src) && isDigitByte(l.src[l.pos+1]):
			for l.pos < len(l.src) && (isDigitByte(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("engine: unterminated string at offset %d", start)
			}
			l.toks = append(l.toks, token{kind: tokString, text: l.src[start+1 : l.pos], pos: start})
			l.pos++
		default:
			// Multi-byte operators first.
			for _, op := range []string{"<=", ">=", "<>", "!="} {
				if strings.HasPrefix(l.src[l.pos:], op) {
					l.toks = append(l.toks, token{kind: tokSymbol, text: op, pos: start})
					l.pos += 2
					goto next
				}
			}
			if strings.ContainsRune("(),.*+-/<>=", c) {
				l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
				l.pos++
			} else {
				return nil, fmt.Errorf("engine: unexpected character %q at offset %d", c, start)
			}
		next:
		}
	}
}

func (l *sqlLexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isWordByte(b byte) bool {
	return b == '_' || b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }
