package engine

import (
	"math"
	"strings"
	"testing"

	"provabs/internal/provenance"
)

// figure1Catalog builds the database fragment of Figure 1 with the plans
// prices parameterized by plan and month variables, as in Example 2.
func figure1Catalog(t testing.TB) *Catalog {
	t.Helper()
	vb := provenance.NewVocab()
	c := NewCatalog(vb)

	cust := NewRelation("Cust", Schema{{"ID", TInt}, {"Plan", TString}, {"Zip", TString}})
	for _, r := range []struct {
		id   int64
		plan string
		zip  string
	}{
		{1, "A", "10001"}, {2, "F1", "10001"}, {3, "SB1", "10002"}, {4, "Y1", "10001"},
		{5, "V", "10001"}, {6, "E", "10002"}, {7, "SB2", "10002"},
	} {
		cust.MustAppend(Int(r.id), Str(r.plan), Str(r.zip))
	}
	c.AddTable(cust)

	calls := NewRelation("Calls", Schema{{"CID", TInt}, {"Mo", TInt}, {"Dur", TFloat}})
	// Figure 1 prints Dur=522 for customer 1 in January, but every worked
	// polynomial (Examples 2, 13) uses 220.8 = 552·0.4, so the figure has a
	// digit transposition; we use 552 to match the examples.
	for _, r := range []struct {
		cid int64
		mo  int64
		dur float64
	}{
		{1, 1, 552}, {2, 1, 364}, {3, 1, 779}, {4, 1, 253}, {5, 1, 168}, {6, 1, 1044}, {7, 1, 697},
		{1, 3, 480}, {2, 3, 327}, {3, 3, 805}, {4, 3, 290}, {5, 3, 121}, {6, 3, 1130}, {7, 3, 671},
	} {
		calls.MustAppend(Int(r.cid), Int(r.mo), Float(r.dur))
	}
	c.AddTable(calls)

	plans := NewRelation("Plans", Schema{{"Plan", TString}, {"Mo", TInt}, {"Price", TFloat}})
	type pr struct {
		plan  string
		mo    int64
		price float64
	}
	rows := []pr{
		{"A", 1, 0.4}, {"F1", 1, 0.35}, {"Y1", 1, 0.3}, {"V", 1, 0.25},
		{"SB1", 1, 0.1}, {"SB2", 1, 0.1}, {"E", 1, 0.05},
		{"A", 3, 0.5}, {"F1", 3, 0.35}, {"Y1", 3, 0.25}, {"V", 3, 0.2},
		{"SB1", 3, 0.1}, {"SB2", 3, 0.15}, {"E", 3, 0.05},
	}
	for _, r := range rows {
		plans.MustAppend(Str(r.plan), Int(r.mo), Float(r.price))
	}
	// Parameterize Price by a per-plan variable and a per-month variable,
	// matching Example 2's variable naming.
	planVar := map[string]string{
		"A": "p1", "F1": "f1", "Y1": "y1", "V": "v", "SB1": "b1", "SB2": "b2", "E": "e",
	}
	err := plans.ParameterizeColumn("Price", func(i int) []provenance.Var {
		return []provenance.Var{
			vb.Var(planVar[rows[i].plan]),
			vb.Var("m" + itoa(int(rows[i].mo))),
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c.AddTable(plans)
	return c
}

const revenueQuery = `
SELECT Cust.Zip, SUM(Calls.Dur * Plans.Price) AS revenue
FROM Calls, Cust, Plans
WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID AND Calls.Mo = Plans.Mo
GROUP BY Cust.Zip`

// TestRunningExampleProvenance executes the paper's running-example query
// over the Figure 1 fragment and checks the zip-10001 polynomial against
// Example 2 exactly.
func TestRunningExampleProvenance(t *testing.T) {
	c := figure1Catalog(t)
	res, err := c.ExecSQL(revenueQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d groups, want 2 zips", len(res.Rows))
	}
	set, err := GroupProvenance(c.Vocab, res, "revenue")
	if err != nil {
		t.Fatal(err)
	}
	var p10001 *provenance.Polynomial
	for i, tag := range set.Tags {
		if tag == "10001" {
			p10001 = set.Polys[i]
		}
	}
	if p10001 == nil {
		t.Fatal("no polynomial for zip 10001")
	}
	want := provenance.MustParse(c.Vocab,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3")
	if p10001.Size() != 8 {
		t.Fatalf("zip 10001 polynomial has %d monomials, want 8:\n%s", p10001.Size(), p10001.String(c.Vocab))
	}
	for _, wm := range want.Monomials() {
		var vars []provenance.Var
		for _, vp := range wm.Vars() {
			for k := int32(0); k < vp.Pow; k++ {
				vars = append(vars, vp.Var)
			}
		}
		got := p10001.Coeff(vars...)
		if math.Abs(got-wm.Coeff) > 1e-9 {
			t.Errorf("coeff of %s = %v, want %v", wm.String(c.Vocab), got, wm.Coeff)
		}
	}
}

// TestRunningExampleScenario valuates the provenance under the "20% discount
// in March" scenario and cross-checks against re-running the query on
// modified data.
func TestRunningExampleScenario(t *testing.T) {
	c := figure1Catalog(t)
	res, err := c.ExecSQL(revenueQuery)
	if err != nil {
		t.Fatal(err)
	}
	set, err := GroupProvenance(c.Vocab, res, "revenue")
	if err != nil {
		t.Fatal(err)
	}
	m3, _ := c.Vocab.Lookup("m3")
	scenario := map[provenance.Var]float64{m3: 0.8}
	got := set.Eval(scenario)

	// Reference: rebuild the catalog with March prices cut 20%.
	ref := figure1Catalog(t)
	plansRel, _ := ref.Table("Plans")
	for _, row := range plansRel.Rows {
		if row[1].I == 3 {
			// The Price cell is symbolic (value·plan·month); scaling the
			// polynomial by 0.8 is the ground-truth price change.
			row[2] = Sym(row[2].Sym.Scale(0.8))
		}
	}
	refRes, err := ref.ExecSQL(revenueQuery)
	if err != nil {
		t.Fatal(err)
	}
	refSet, err := GroupProvenance(ref.Vocab, refRes, "revenue")
	if err != nil {
		t.Fatal(err)
	}
	want := refSet.Eval(nil) // all variables default to 1
	if len(got) != len(want) {
		t.Fatalf("group count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Errorf("group %s: scenario eval %v, re-execution %v", set.Tags[i], got[i], want[i])
		}
	}
}

func TestParseQueryShapes(t *testing.T) {
	q := MustParseQuery(revenueQuery)
	if len(q.From) != 3 || len(q.Where) != 3 || len(q.GroupBy) != 1 || len(q.Select) != 2 {
		t.Errorf("parsed shape wrong: %+v", q)
	}
	if q.Select[1].Agg != AggSum || q.Select[1].Alias != "revenue" {
		t.Errorf("sum item wrong: %+v", q.Select[1])
	}
	// BETWEEN desugars to two conjuncts.
	q2 := MustParseQuery("SELECT a FROM t WHERE a BETWEEN 1 AND 3")
	if len(q2.Where) != 2 || q2.Where[0].Op != CmpGe || q2.Where[1].Op != CmpLe {
		t.Errorf("BETWEEN desugaring wrong: %+v", q2.Where)
	}
	// DATE literals.
	q3 := MustParseQuery("SELECT a FROM t WHERE d <= DATE '1998-09-02'")
	lit, ok := q3.Where[0].R.(*LitExpr)
	if !ok || lit.Val.T != TDate {
		t.Errorf("DATE literal wrong: %+v", q3.Where[0].R)
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT SUM( FROM t",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t; DROP TABLE t",
		"SELECT a FROM t WHERE a ~ b",
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded, want error", src)
		}
	}
}

func TestAggregates(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"g", TString}, {"x", TInt}})
	for _, row := range []struct {
		g string
		x int64
	}{{"a", 1}, {"a", 2}, {"a", 3}, {"b", 10}} {
		r.MustAppend(Str(row.g), Int(row.x))
	}
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT g, COUNT(*) AS n, SUM(x) AS s, MIN(x) AS lo, MAX(x) AS hi, AVG(x) AS m FROM t GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
	a := res.Rows[0]
	if a[0].S != "a" || a[1].I != 3 || a[2].F != 6 || a[3].I != 1 || a[4].I != 3 || a[5].F != 2 {
		t.Errorf("group a = %v", a)
	}
	b := res.Rows[1]
	if b[0].S != "b" || b[1].I != 1 || b[2].F != 10 {
		t.Errorf("group b = %v", b)
	}
}

func TestOrderByLimitDesc(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"x", TInt}})
	for _, x := range []int64{3, 1, 4, 1, 5} {
		r.MustAppend(Int(x))
	}
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT x FROM t ORDER BY x DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].I != 5 || res.Rows[1][0].I != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestJoinFallsBackToCartesian(t *testing.T) {
	c := NewCatalog(nil)
	a := NewRelation("a", Schema{{"x", TInt}})
	b := NewRelation("b", Schema{{"y", TInt}})
	a.MustAppend(Int(1))
	a.MustAppend(Int(2))
	b.MustAppend(Int(10))
	b.MustAppend(Int(20))
	c.AddTable(a)
	c.AddTable(b)
	res, err := c.ExecSQL("SELECT x, y FROM a, b WHERE x + 1 < y ORDER BY x, y")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 (all pairs satisfy 1/2+1 < 10/20)", len(res.Rows))
	}
}

func TestSelfJoinAliases(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"id", TInt}, {"p", TInt}})
	r.MustAppend(Int(1), Int(0))
	r.MustAppend(Int(2), Int(1))
	r.MustAppend(Int(3), Int(1))
	c.AddTable(r)
	res, err := c.ExecSQL("SELECT a.id, b.id AS child FROM t AS a, t AS b WHERE b.p = a.id ORDER BY child")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].I != 2 || res.Rows[1][1].I != 3 {
		t.Errorf("self-join rows = %v", res.Rows)
	}
}

func TestModel1SemiringProvenance(t *testing.T) {
	vb := provenance.NewVocab()
	c := NewCatalog(vb)
	r := NewRelation("r", Schema{{"a", TInt}, {"b", TInt}})
	r.MustAppend(Int(1), Int(10))
	r.MustAppend(Int(2), Int(10))
	r.MustAppend(Int(1), Int(20))
	r.AnnotateTuples(vb, func(i int) string { return "r" + itoa(i+1) })
	s := NewRelation("s", Schema{{"b", TInt}, {"c", TInt}})
	s.MustAppend(Int(10), Int(100))
	s.MustAppend(Int(20), Int(100))
	s.AnnotateTuples(vb, func(i int) string { return "s" + itoa(i+1) })
	c.AddTable(r)
	c.AddTable(s)

	// π_c(r ⋈ s) with duplicate elimination: the classic semiring example —
	// annotation of c=100 is r1·s1 + r2·s1 + r3·s2.
	res, err := c.ExecSQL("SELECT DISTINCT s.c FROM r, s WHERE r.b = s.b")
	if err != nil {
		t.Fatal(err)
	}
	set, err := TupleProvenance(vb, res)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 1 {
		t.Fatalf("output tuples = %d, want 1", set.Len())
	}
	want := provenance.MustParse(vb, "r1·s1 + r2·s1 + r3·s2")
	if !set.Polys[0].Equal(want) {
		t.Errorf("annotation = %s, want %s", set.Polys[0].String(vb), want.String(vb))
	}
}

func TestSymbolicRestrictions(t *testing.T) {
	vb := provenance.NewVocab()
	c := NewCatalog(vb)
	r := NewRelation("t", Schema{{"x", TFloat}})
	r.MustAppend(Float(2))
	if err := r.ParameterizeColumn("x", func(int) []provenance.Var {
		return []provenance.Var{vb.Var("u")}
	}); err != nil {
		t.Fatal(err)
	}
	c.AddTable(r)
	// Filtering on a symbolic column must fail loudly.
	if _, err := c.ExecSQL("SELECT x FROM t WHERE x > 1"); err == nil {
		t.Error("comparison on symbolic cell succeeded")
	}
	// MIN over symbolic must fail.
	if _, err := c.ExecSQL("SELECT MIN(x) AS m FROM t GROUP BY x"); err == nil {
		t.Error("MIN over symbolic succeeded")
	}
	// SUM works and produces a polynomial.
	res, err := c.ExecSQL("SELECT SUM(x) AS s FROM t, t AS t2")
	if err == nil {
		_ = res
	}
}

func TestExecErrors(t *testing.T) {
	c := NewCatalog(nil)
	r := NewRelation("t", Schema{{"x", TInt}})
	r.MustAppend(Int(1))
	c.AddTable(r)
	for _, src := range []string{
		"SELECT y FROM t",              // unknown column
		"SELECT x FROM missing",        // unknown table
		"SELECT x, SUM(x) AS s FROM t", // non-grouped plain column
		"SELECT x FROM t, t",           // duplicate binding
		"SELECT t2.x FROM t",           // unknown alias
		"SELECT x FROM t ORDER BY y",   // unknown order key
	} {
		if _, err := c.ExecSQL(src); err == nil {
			t.Errorf("ExecSQL(%q) succeeded, want error", src)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	c := NewCatalog(nil)
	a := NewRelation("a", Schema{{"x", TInt}})
	b := NewRelation("b", Schema{{"x", TInt}})
	a.MustAppend(Int(1))
	b.MustAppend(Int(1))
	c.AddTable(a)
	c.AddTable(b)
	if _, err := c.ExecSQL("SELECT x FROM a, b"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous column error missing, got %v", err)
	}
}

func TestValueCompareAndKeys(t *testing.T) {
	if c, err := Compare(Int(1), Float(1.5)); err != nil || c != -1 {
		t.Errorf("Compare(1, 1.5) = %d, %v", c, err)
	}
	if c, err := Compare(Str("a"), Str("b")); err != nil || c != -1 {
		t.Errorf("Compare(a, b) = %d, %v", c, err)
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("cross-type compare succeeded")
	}
	d1 := MustDate("1998-09-02")
	d2 := MustDate("1998-09-03")
	if c, _ := Compare(d1, d2); c != -1 {
		t.Error("date compare wrong")
	}
	if d1.Format(nil) != "1998-09-02" {
		t.Errorf("date format = %q", d1.Format(nil))
	}
	k1, err := Int(7).Key()
	if err != nil || k1 == "" {
		t.Error("int key failed")
	}
	if _, err := Sym(provenance.NewPolynomial()).Key(); err == nil {
		t.Error("symbolic key succeeded")
	}
}

func TestArithmeticPromotion(t *testing.T) {
	v, err := arith('+', Int(2), Int(3))
	if err != nil || v.T != TInt || v.I != 5 {
		t.Errorf("2+3 = %v, %v", v, err)
	}
	v, err = arith('/', Int(7), Int(2))
	if err != nil || v.T != TFloat || v.F != 3.5 {
		t.Errorf("7/2 = %v, %v", v, err)
	}
	if _, err := arith('/', Int(1), Int(0)); err == nil {
		t.Error("division by zero succeeded")
	}
	vb := provenance.NewVocab()
	sym := ParamCell(2, vb.Var("u"))
	v, err = arith('*', sym, Float(3))
	if err != nil || v.T != TSym {
		t.Fatalf("sym*3 = %v, %v", v, err)
	}
	if got := v.Sym.Coeff(vb.Var("u")); got != 6 {
		t.Errorf("coeff = %v, want 6", got)
	}
	if _, err := arith('/', Float(3), sym); err == nil {
		t.Error("division by symbolic succeeded")
	}
}
