package engine

import (
	"fmt"
	"strings"

	"provabs/internal/provenance"
)

// Column is a named, typed relation attribute.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered column list.
type Schema []Column

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Relation is a materialized table. Annots, when non-nil, holds the model-1
// semiring annotation of each tuple (parallel to Rows).
type Relation struct {
	Name   string
	Schema Schema
	Rows   [][]Value
	Annots []*provenance.Polynomial
}

// NewRelation creates an empty relation.
func NewRelation(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema}
}

// Append adds a row after checking arity and types.
func (r *Relation) Append(row ...Value) error {
	if len(row) != len(r.Schema) {
		return fmt.Errorf("engine: %s: row arity %d, schema arity %d", r.Name, len(row), len(r.Schema))
	}
	for i, v := range row {
		if v.T != r.Schema[i].Type && v.T != TSym {
			return fmt.Errorf("engine: %s.%s: value type %s, column type %s",
				r.Name, r.Schema[i].Name, v.T, r.Schema[i].Type)
		}
	}
	r.Rows = append(r.Rows, row)
	return nil
}

// MustAppend is Append that panics on error; intended for generators whose
// rows are constructed to match the schema.
func (r *Relation) MustAppend(row ...Value) {
	if err := r.Append(row...); err != nil {
		panic(err)
	}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Rows) }

// AnnotateTuples attaches model-1 annotations: tuple i gets the polynomial
// consisting of the single variable produced by mkVar(i) (typically a tuple
// identifier). Existing annotations are replaced.
func (r *Relation) AnnotateTuples(vb *provenance.Vocab, mkVar func(i int) string) {
	r.Annots = make([]*provenance.Polynomial, len(r.Rows))
	for i := range r.Rows {
		p := provenance.NewPolynomial()
		p.AddTerm(1, vb.Var(mkVar(i)))
		r.Annots[i] = p
	}
}

// Annot returns tuple i's annotation; unannotated relations yield the
// semiring One (constant 1), so mixed queries remain well-defined.
func (r *Relation) Annot(i int) *provenance.Polynomial {
	if r.Annots == nil || r.Annots[i] == nil {
		one := provenance.NewPolynomial()
		one.AddTerm(1)
		return one
	}
	return r.Annots[i]
}

// ParameterizeColumn rewrites the named float column into symbolic cells:
// cell value v of row i becomes v·Πvars(i). This is the paper's
// cell-variable placement (model 2) — e.g. parameterizing LINEITEM's
// discount by supplier and part variables, or Plans.Price by plan and month
// variables.
func (r *Relation) ParameterizeColumn(col string, vars func(row int) []provenance.Var) error {
	idx := r.Schema.Index(col)
	if idx < 0 {
		return fmt.Errorf("engine: %s has no column %q", r.Name, col)
	}
	if r.Schema[idx].Type != TFloat && r.Schema[idx].Type != TInt {
		return fmt.Errorf("engine: column %q is %s; only numeric columns can be parameterized",
			col, r.Schema[idx].Type)
	}
	for i, row := range r.Rows {
		vs := vars(i)
		if len(vs) == 0 {
			continue
		}
		f, err := row[idx].AsFloat()
		if err != nil {
			return err
		}
		row[idx] = ParamCell(f, vs...)
	}
	return nil
}

// String renders the relation as an aligned text table (up to maxRows rows;
// maxRows <= 0 prints everything). Symbolic cells need the vocabulary.
func (r *Relation) String(vb *provenance.Vocab, maxRows int) string {
	var sb strings.Builder
	var widths []int
	header := make([]string, len(r.Schema))
	for i, c := range r.Schema {
		header[i] = c.Name
		widths = append(widths, len(c.Name))
	}
	n := len(r.Rows)
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	cells := make([][]string, n)
	for i := 0; i < n; i++ {
		cells[i] = make([]string, len(r.Schema))
		for j, v := range r.Rows[i] {
			cells[i][j] = v.Format(vb)
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	writeRow := func(cols []string) {
		for j, c := range cols {
			if j > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for k := len(c); k < widths[j]; k++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	if maxRows > 0 && len(r.Rows) > maxRows {
		fmt.Fprintf(&sb, "... (%d more rows)\n", len(r.Rows)-maxRows)
	}
	return sb.String()
}

// Catalog maps table names to relations and carries the shared vocabulary
// for any provenance the tables hold.
type Catalog struct {
	Vocab  *provenance.Vocab
	tables map[string]*Relation
}

// NewCatalog returns an empty catalog over the vocabulary (a fresh one when
// vb is nil).
func NewCatalog(vb *provenance.Vocab) *Catalog {
	if vb == nil {
		vb = provenance.NewVocab()
	}
	return &Catalog{Vocab: vb, tables: make(map[string]*Relation)}
}

// AddTable registers a relation under its name.
func (c *Catalog) AddTable(r *Relation) {
	c.tables[strings.ToLower(r.Name)] = r
}

// Table resolves a name.
func (c *Catalog) Table(name string) (*Relation, error) {
	r, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("engine: unknown table %q", name)
	}
	return r, nil
}

// TotalRows sums tuple counts across the catalog (the "input data size"
// x-axis of Figure 8).
func (c *Catalog) TotalRows() int {
	n := 0
	for _, r := range c.tables {
		n += r.Len()
	}
	return n
}
