package engine

import "strings"

// Expr is a parsed scalar expression.
type Expr interface{ exprNode() }

// ColExpr references a column, optionally qualified by a table alias.
type ColExpr struct {
	Table string // alias or table name; empty when unqualified
	Name  string
}

// LitExpr is a literal value.
type LitExpr struct{ Val Value }

// BinExpr applies an arithmetic operator.
type BinExpr struct {
	Op   byte // '+', '-', '*', '/'
	L, R Expr
}

// NegExpr is unary minus.
type NegExpr struct{ E Expr }

func (*ColExpr) exprNode() {}
func (*LitExpr) exprNode() {}
func (*BinExpr) exprNode() {}
func (*NegExpr) exprNode() {}

// AggKind enumerates aggregate functions.
type AggKind uint8

const (
	AggNone AggKind = iota
	AggSum
	AggCount
	AggMin
	AggMax
	AggAvg
)

func (a AggKind) String() string {
	switch a {
	case AggSum:
		return "SUM"
	case AggCount:
		return "COUNT"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	}
	return "NONE"
}

// SelectItem is one output column: a plain expression or an aggregate over
// an expression (Expr is nil for COUNT(*)).
type SelectItem struct {
	Agg   AggKind
	Expr  Expr
	Alias string
}

// OutName returns the display name of the item.
func (it SelectItem) OutName(i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*ColExpr); ok && it.Agg == AggNone {
		return c.Name
	}
	if it.Agg != AggNone {
		return strings.ToLower(it.Agg.String())
	}
	return "col" + itoa(i)
}

// TableRef names a FROM-clause table with an optional alias.
type TableRef struct {
	Table string
	Alias string // defaults to Table
}

// Name returns the reference's binding name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Predicate is one conjunct of the WHERE clause: L op R.
type Predicate struct {
	Op   CmpOp
	L, R Expr
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// Query is a parsed SELECT statement.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    []Predicate // conjunctive
	GroupBy  []*ColExpr
	OrderBy  []OrderKey
	Limit    int // 0 = no limit
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		n--
		b[n] = '-'
	}
	return string(b[n:])
}
