package engine

import (
	"fmt"
	"strings"

	"provabs/internal/provenance"
)

// ExecSQL parses and executes a query.
func (c *Catalog) ExecSQL(src string) (*Relation, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return c.Exec(q)
}

// Exec executes a parsed query. Joins are left-deep in FROM order using
// hash joins on available equality predicates (falling back to filtered
// cartesian products), single-table predicates are pushed below the joins,
// and grouping/aggregation runs last. Tuple annotations (model 1) multiply
// across joins and add across duplicate-eliminating projections; symbolic
// cells (model 2) flow through expressions and SUM/AVG aggregates.
func (c *Catalog) Exec(q *Query) (*Relation, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("engine: query has no FROM clause")
	}
	b, err := c.bind(q.From)
	if err != nil {
		return nil, err
	}

	// Split WHERE into single-table filters, equi-join predicates, and
	// residuals.
	var filters [][]Predicate // per table index
	filters = make([][]Predicate, len(b.refs))
	var joins []joinPred
	var residual []Predicate
	for _, pred := range q.Where {
		if ti, ok := b.singleTable(pred); ok {
			filters[ti] = append(filters[ti], pred)
			continue
		}
		if jp, ok := b.equiJoin(pred); ok {
			joins = append(joins, jp)
			continue
		}
		residual = append(residual, pred)
	}

	// Scan + filter base tables.
	parts := make([]*chunk, len(b.refs))
	for ti := range b.refs {
		ch, err := b.scan(ti, filters[ti])
		if err != nil {
			return nil, err
		}
		parts[ti] = ch
	}

	// Left-deep join.
	acc := parts[0]
	joined := map[int]bool{0: true}
	used := make([]bool, len(joins))
	for len(joined) < len(parts) {
		// Prefer a table connected by an unused equi-join predicate.
		next, preds := -1, []joinPred(nil)
		for ti := range parts {
			if joined[ti] {
				continue
			}
			var ps []joinPred
			for ji, jp := range joins {
				if used[ji] {
					continue
				}
				if (joined[jp.leftTable] && jp.rightTable == ti) ||
					(joined[jp.rightTable] && jp.leftTable == ti) {
					ps = append(ps, jp)
				}
			}
			if len(ps) > 0 {
				next, preds = ti, ps
				break
			}
		}
		if next < 0 { // no connection: cartesian with the first unjoined table
			for ti := range parts {
				if !joined[ti] {
					next = ti
					break
				}
			}
		}
		var err error
		acc, err = b.join(acc, parts[next], preds)
		if err != nil {
			return nil, err
		}
		joined[next] = true
		for ji, jp := range joins {
			if !used[ji] && joined[jp.leftTable] && joined[jp.rightTable] {
				// Predicates between already-joined tables that were not used
				// for hashing become residual filters.
				if !jp.applied {
					residual = append(residual, jp.pred)
				}
				used[ji] = true
			}
		}
	}

	// Residual predicates.
	if len(residual) > 0 {
		acc, err = b.filter(acc, residual)
		if err != nil {
			return nil, err
		}
	}

	// Projection / aggregation.
	out, err := b.project(c.Vocab, q, acc)
	if err != nil {
		return nil, err
	}

	// ORDER BY and LIMIT operate on the projected output.
	if len(q.OrderBy) > 0 {
		if err := orderRelation(out, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 && len(out.Rows) > q.Limit {
		out.Rows = out.Rows[:q.Limit]
		if out.Annots != nil {
			out.Annots = out.Annots[:q.Limit]
		}
	}
	return out, nil
}

// binder resolves column references over the FROM-clause tables.
type binder struct {
	refs    []TableRef
	rels    []*Relation
	offsets []int
	total   int
}

func (c *Catalog) bind(from []TableRef) (*binder, error) {
	b := &binder{refs: from}
	seen := map[string]bool{}
	for _, ref := range from {
		name := strings.ToLower(ref.Name())
		if seen[name] {
			return nil, fmt.Errorf("engine: duplicate table binding %q", ref.Name())
		}
		seen[name] = true
		rel, err := c.Table(ref.Table)
		if err != nil {
			return nil, err
		}
		b.rels = append(b.rels, rel)
		b.offsets = append(b.offsets, b.total)
		b.total += len(rel.Schema)
	}
	return b, nil
}

// resolve maps a column reference to (table index, global column index).
func (b *binder) resolve(col *ColExpr) (int, int, error) {
	if col.Table != "" {
		for ti, ref := range b.refs {
			if strings.EqualFold(ref.Name(), col.Table) {
				ci := b.rels[ti].Schema.Index(col.Name)
				if ci < 0 {
					return 0, 0, fmt.Errorf("engine: table %q has no column %q", col.Table, col.Name)
				}
				return ti, b.offsets[ti] + ci, nil
			}
		}
		return 0, 0, fmt.Errorf("engine: unknown table %q", col.Table)
	}
	found := -1
	gi := -1
	for ti, rel := range b.rels {
		if ci := rel.Schema.Index(col.Name); ci >= 0 {
			if found >= 0 {
				return 0, 0, fmt.Errorf("engine: ambiguous column %q", col.Name)
			}
			found = ti
			gi = b.offsets[ti] + ci
		}
	}
	if found < 0 {
		return 0, 0, fmt.Errorf("engine: unknown column %q", col.Name)
	}
	return found, gi, nil
}

// columnType returns the declared type at a global index.
func (b *binder) columnType(gi int) Type {
	for ti := len(b.offsets) - 1; ti >= 0; ti-- {
		if gi >= b.offsets[ti] {
			return b.rels[ti].Schema[gi-b.offsets[ti]].Type
		}
	}
	return TFloat
}

// compile turns an expression into an evaluator over joined rows.
func (b *binder) compile(e Expr) (func(row []Value) (Value, error), error) {
	switch e := e.(type) {
	case *LitExpr:
		v := e.Val
		return func([]Value) (Value, error) { return v, nil }, nil
	case *ColExpr:
		_, gi, err := b.resolve(e)
		if err != nil {
			return nil, err
		}
		return func(row []Value) (Value, error) { return row[gi], nil }, nil
	case *NegExpr:
		inner, err := b.compile(e.E)
		if err != nil {
			return nil, err
		}
		zero := Int(0)
		return func(row []Value) (Value, error) {
			v, err := inner(row)
			if err != nil {
				return Value{}, err
			}
			return arith('-', zero, v)
		}, nil
	case *BinExpr:
		l, err := b.compile(e.L)
		if err != nil {
			return nil, err
		}
		r, err := b.compile(e.R)
		if err != nil {
			return nil, err
		}
		op := e.Op
		return func(row []Value) (Value, error) {
			lv, err := l(row)
			if err != nil {
				return Value{}, err
			}
			rv, err := r(row)
			if err != nil {
				return Value{}, err
			}
			return arith(op, lv, rv)
		}, nil
	}
	return nil, fmt.Errorf("engine: cannot compile %T", e)
}

// exprTables collects the table indices an expression touches.
func (b *binder) exprTables(e Expr, set map[int]bool) error {
	switch e := e.(type) {
	case *LitExpr:
	case *ColExpr:
		ti, _, err := b.resolve(e)
		if err != nil {
			return err
		}
		set[ti] = true
	case *NegExpr:
		return b.exprTables(e.E, set)
	case *BinExpr:
		if err := b.exprTables(e.L, set); err != nil {
			return err
		}
		return b.exprTables(e.R, set)
	}
	return nil
}

// singleTable reports whether the predicate touches exactly one table.
func (b *binder) singleTable(p Predicate) (int, bool) {
	set := map[int]bool{}
	if b.exprTables(p.L, set) != nil || b.exprTables(p.R, set) != nil {
		return 0, false
	}
	if len(set) != 1 {
		return 0, false
	}
	for ti := range set {
		return ti, true
	}
	return 0, false
}

// joinPred is an equality between single columns of two distinct tables.
type joinPred struct {
	pred                 Predicate
	leftTable, leftCol   int
	rightTable, rightCol int
	applied              bool
}

func (b *binder) equiJoin(p Predicate) (joinPred, bool) {
	if p.Op != CmpEq {
		return joinPred{}, false
	}
	lc, lok := p.L.(*ColExpr)
	rc, rok := p.R.(*ColExpr)
	if !lok || !rok {
		return joinPred{}, false
	}
	lt, lg, err := b.resolve(lc)
	if err != nil {
		return joinPred{}, false
	}
	rt, rg, err := b.resolve(rc)
	if err != nil || lt == rt {
		return joinPred{}, false
	}
	return joinPred{pred: p, leftTable: lt, leftCol: lg, rightTable: rt, rightCol: rg}, true
}

// chunk is an intermediate result: joined rows over the global column space
// plus optional model-1 annotations.
type chunk struct {
	rows   [][]Value
	annots []*provenance.Polynomial // nil when no input is annotated
	tables map[int]bool             // which FROM tables are filled in
}

// scan materializes one base table into the global column space, applying
// its pushed-down filters.
func (b *binder) scan(ti int, filters []Predicate) (*chunk, error) {
	rel := b.rels[ti]
	ch := &chunk{tables: map[int]bool{ti: true}}
	var preds []compiledPred
	for _, p := range filters {
		cp, err := b.compilePred(p)
		if err != nil {
			return nil, err
		}
		preds = append(preds, cp)
	}
	annotated := rel.Annots != nil
	for i, row := range rel.Rows {
		full := make([]Value, b.total)
		copy(full[b.offsets[ti]:], row)
		keep := true
		for _, cp := range preds {
			ok, err := cp(full)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		ch.rows = append(ch.rows, full)
		if annotated {
			ch.annots = append(ch.annots, rel.Annot(i))
		}
	}
	if annotated && ch.annots == nil {
		ch.annots = []*provenance.Polynomial{}
	}
	return ch, nil
}

type compiledPred func(row []Value) (bool, error)

func (b *binder) compilePred(p Predicate) (compiledPred, error) {
	l, err := b.compile(p.L)
	if err != nil {
		return nil, err
	}
	r, err := b.compile(p.R)
	if err != nil {
		return nil, err
	}
	op := p.Op
	return func(row []Value) (bool, error) {
		lv, err := l(row)
		if err != nil {
			return false, err
		}
		rv, err := r(row)
		if err != nil {
			return false, err
		}
		c, err := Compare(lv, rv)
		if err != nil {
			return false, err
		}
		switch op {
		case CmpEq:
			return c == 0, nil
		case CmpNe:
			return c != 0, nil
		case CmpLt:
			return c < 0, nil
		case CmpLe:
			return c <= 0, nil
		case CmpGt:
			return c > 0, nil
		case CmpGe:
			return c >= 0, nil
		}
		return false, fmt.Errorf("engine: unknown comparison")
	}, nil
}

// join hash-joins two chunks on the given equi-predicates (those whose two
// sides live in left/right respectively); with no predicates it degrades to
// a cartesian product. Annotations multiply.
func (b *binder) join(left, right *chunk, preds []joinPred) (*chunk, error) {
	out := &chunk{tables: map[int]bool{}}
	for t := range left.tables {
		out.tables[t] = true
	}
	for t := range right.tables {
		out.tables[t] = true
	}
	annotated := left.annots != nil || right.annots != nil
	if annotated {
		out.annots = []*provenance.Polynomial{}
	}
	one := provenance.NewPolynomial()
	one.AddTerm(1)
	annotOf := func(ch *chunk, i int) *provenance.Polynomial {
		if ch.annots == nil {
			return one
		}
		return ch.annots[i]
	}
	emit := func(l, r int) {
		merged := make([]Value, b.total)
		copy(merged, left.rows[l])
		// Copy only the column spans belonging to right's tables so the
		// zero Values elsewhere do not clobber left's data.
		for ti := range right.tables {
			off := b.offsets[ti]
			n := len(b.rels[ti].Schema)
			copy(merged[off:off+n], right.rows[r][off:off+n])
		}
		out.rows = append(out.rows, merged)
		if annotated {
			out.annots = append(out.annots, annotOf(left, l).Mul(annotOf(right, r)))
		}
	}

	if len(preds) == 0 {
		for l := range left.rows {
			for r := range right.rows {
				emit(l, r)
			}
		}
		return out, nil
	}

	// Orient predicates: probe side = left chunk, build side = right chunk.
	type pair struct{ probe, build int }
	var cols []pair
	for i := range preds {
		jp := &preds[i]
		switch {
		case left.tables[jp.leftTable] && right.tables[jp.rightTable]:
			cols = append(cols, pair{jp.leftCol, jp.rightCol})
		case left.tables[jp.rightTable] && right.tables[jp.leftTable]:
			cols = append(cols, pair{jp.rightCol, jp.leftCol})
		default:
			return nil, fmt.Errorf("engine: internal error, join predicate does not connect the chunks")
		}
		jp.applied = true
	}
	buildKey := func(row []Value, side func(pair) int) (string, error) {
		var sb strings.Builder
		for _, c := range cols {
			k, err := row[side(c)].Key()
			if err != nil {
				return "", err
			}
			sb.WriteString(k)
			sb.WriteByte(0)
		}
		return sb.String(), nil
	}
	index := make(map[string][]int, len(right.rows))
	for r, row := range right.rows {
		k, err := buildKey(row, func(p pair) int { return p.build })
		if err != nil {
			return nil, err
		}
		index[k] = append(index[k], r)
	}
	for l, row := range left.rows {
		k, err := buildKey(row, func(p pair) int { return p.probe })
		if err != nil {
			return nil, err
		}
		for _, r := range index[k] {
			emit(l, r)
		}
	}
	return out, nil
}

func (b *binder) filter(ch *chunk, preds []Predicate) (*chunk, error) {
	var cps []compiledPred
	for _, p := range preds {
		cp, err := b.compilePred(p)
		if err != nil {
			return nil, err
		}
		cps = append(cps, cp)
	}
	out := &chunk{tables: ch.tables}
	if ch.annots != nil {
		out.annots = []*provenance.Polynomial{}
	}
	for i, row := range ch.rows {
		keep := true
		for _, cp := range cps {
			ok, err := cp(row)
			if err != nil {
				return nil, err
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.rows = append(out.rows, row)
			if ch.annots != nil {
				out.annots = append(out.annots, ch.annots[i])
			}
		}
	}
	return out, nil
}
