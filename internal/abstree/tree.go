// Package abstree implements the paper's abstraction trees and forests
// (§2.2–2.3): rooted labeled trees whose leaves are provenance variables and
// whose internal nodes are meta-variables. An abstraction is a cut (valid
// variable set, VVS) separating the root from the leaves; choosing a node
// replaces all its descendant leaves with the node's meta-variable.
package abstree

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"provabs/internal/provenance"
)

// Tree is a rooted tree with unique string labels. Nodes are addressed by
// dense indices; index 0 is always the root. Construct trees with NewTree,
// ParseTree or a Builder — the zero value is not usable.
type Tree struct {
	labels   []string
	parent   []int   // parent[i]; -1 for the root
	children [][]int // children[i], in insertion order
	byLabel  map[string]int
}

// Spec is a declarative tree description for NewTree.
type Spec struct {
	Label    string
	Children []Spec
}

// Leaf is a convenience constructor for a leaf Spec.
func Leaf(label string) Spec { return Spec{Label: label} }

// Node is a convenience constructor for an internal Spec.
func Node(label string, children ...Spec) Spec {
	return Spec{Label: label, Children: children}
}

// NewTree builds a tree from a Spec. It returns an error if any label
// repeats or the root has no label.
func NewTree(spec Spec) (*Tree, error) {
	t := &Tree{byLabel: make(map[string]int)}
	if err := t.add(spec, -1); err != nil {
		return nil, err
	}
	return t, nil
}

// MustTree is NewTree that panics on error; intended for tests and examples.
func MustTree(spec Spec) *Tree {
	t, err := NewTree(spec)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) add(spec Spec, parent int) error {
	if spec.Label == "" {
		return fmt.Errorf("abstree: empty label")
	}
	if _, dup := t.byLabel[spec.Label]; dup {
		return fmt.Errorf("abstree: duplicate label %q", spec.Label)
	}
	id := len(t.labels)
	t.labels = append(t.labels, spec.Label)
	t.parent = append(t.parent, parent)
	t.children = append(t.children, nil)
	t.byLabel[spec.Label] = id
	if parent >= 0 {
		t.children[parent] = append(t.children[parent], id)
	}
	for _, c := range spec.Children {
		if err := t.add(c, id); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.labels) }

// Root returns the root node index (always 0).
func (t *Tree) Root() int { return 0 }

// Label returns the label of node i.
func (t *Tree) Label(i int) string { return t.labels[i] }

// Labels returns all labels indexed by node.
func (t *Tree) Labels() []string { return append([]string(nil), t.labels...) }

// Parent returns the parent of node i (-1 for the root).
func (t *Tree) Parent(i int) int { return t.parent[i] }

// Children returns the children of node i. The returned slice is owned by
// the tree and must not be modified.
func (t *Tree) Children(i int) []int { return t.children[i] }

// IsLeaf reports whether node i has no children.
func (t *Tree) IsLeaf(i int) bool { return len(t.children[i]) == 0 }

// NodeByLabel returns the index of the node with the given label.
func (t *Tree) NodeByLabel(label string) (int, bool) {
	i, ok := t.byLabel[label]
	return i, ok
}

// Leaves returns the indices of all leaves in depth-first order.
func (t *Tree) Leaves() []int {
	var out []int
	for i := range t.labels {
		if t.IsLeaf(i) {
			out = append(out, i)
		}
	}
	return out
}

// LeafLabels returns the labels of all leaves in depth-first order.
func (t *Tree) LeafLabels() []string {
	var out []string
	for _, l := range t.Leaves() {
		out = append(out, t.labels[l])
	}
	return out
}

// LeavesUnder returns the leaf indices in the subtree rooted at node i, in
// depth-first order.
func (t *Tree) LeavesUnder(i int) []int {
	var out []int
	var walk func(int)
	walk = func(n int) {
		if t.IsLeaf(n) {
			out = append(out, n)
			return
		}
		for _, c := range t.children[n] {
			walk(c)
		}
	}
	walk(i)
	return out
}

// IsAncestorOrSelf reports v' <=_T v: anc is an ancestor of n or n itself.
func (t *Tree) IsAncestorOrSelf(anc, n int) bool {
	for n >= 0 {
		if n == anc {
			return true
		}
		n = t.parent[n]
	}
	return false
}

// Height returns the number of edges on the longest root-to-leaf path.
func (t *Tree) Height() int {
	var h func(int) int
	h = func(n int) int {
		best := 0
		for _, c := range t.children[n] {
			if d := h(c) + 1; d > best {
				best = d
			}
		}
		return best
	}
	return h(0)
}

// Width returns the maximum number of children of any node (the w in the
// paper's O(n·w·k²·|P|_M) complexity bound for Algorithm 1).
func (t *Tree) Width() int {
	w := 0
	for _, cs := range t.children {
		if len(cs) > w {
			w = len(cs)
		}
	}
	return w
}

// CutCount returns the exact number of valid variable sets (cuts) of the
// tree: 1 for a leaf and 1 + Π_children CutCount(child) for an internal node.
// Counts exceed uint64 for the largest Table 2 shapes, hence the big.Int.
func (t *Tree) CutCount() *big.Int {
	var count func(int) *big.Int
	count = func(n int) *big.Int {
		if t.IsLeaf(n) {
			return big.NewInt(1)
		}
		prod := big.NewInt(1)
		for _, c := range t.children[n] {
			prod.Mul(prod, count(c))
		}
		return prod.Add(prod, big.NewInt(1))
	}
	return count(0)
}

// String renders the tree in the compact parenthesized format accepted by
// ParseTree, e.g. "Plans(Standard(p1,p2),Business(SB(b1,b2),e))".
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(int)
	walk = func(n int) {
		sb.WriteString(t.labels[n])
		if t.IsLeaf(n) {
			return
		}
		sb.WriteByte('(')
		for i, c := range t.children[n] {
			if i > 0 {
				sb.WriteByte(',')
			}
			walk(c)
		}
		sb.WriteByte(')')
	}
	walk(0)
	return sb.String()
}

// ParseTree parses the compact format produced by Tree.String.
func ParseTree(s string) (*Tree, error) {
	p := &treeParser{src: s}
	spec, err := p.node()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("abstree: trailing input at offset %d in %q", p.pos, s)
	}
	return NewTree(spec)
}

// MustParseTree is ParseTree that panics on error.
func MustParseTree(s string) *Tree {
	t, err := ParseTree(s)
	if err != nil {
		panic(err)
	}
	return t
}

type treeParser struct {
	src string
	pos int
}

func (p *treeParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *treeParser) node() (Spec, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && !strings.ContainsRune("(),", rune(p.src[p.pos])) {
		p.pos++
	}
	label := strings.TrimSpace(p.src[start:p.pos])
	if label == "" {
		return Spec{}, fmt.Errorf("abstree: missing label at offset %d in %q", start, p.src)
	}
	spec := Spec{Label: label}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '(' {
		p.pos++
		for {
			child, err := p.node()
			if err != nil {
				return Spec{}, err
			}
			spec.Children = append(spec.Children, child)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return Spec{}, fmt.Errorf("abstree: unterminated %q", p.src)
			}
			switch p.src[p.pos] {
			case ',':
				p.pos++
			case ')':
				p.pos++
				return spec, nil
			default:
				return Spec{}, fmt.Errorf("abstree: unexpected %q at offset %d", p.src[p.pos], p.pos)
			}
		}
	}
	return spec, nil
}

// VarOf returns the provenance variable for node i's label, interning it in
// vb on first use. Leaf labels are polynomial variables; internal labels are
// meta-variables.
func (t *Tree) VarOf(vb *provenance.Vocab, i int) provenance.Var {
	return vb.Var(t.labels[i])
}

// SortedNodeLabels returns all labels sorted, for deterministic reporting.
func (t *Tree) SortedNodeLabels() []string {
	out := append([]string(nil), t.labels...)
	sort.Strings(out)
	return out
}
