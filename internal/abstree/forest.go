package abstree

import (
	"fmt"

	"provabs/internal/provenance"
)

// Forest is a valid abstraction forest (Def. of §2.3): a set of abstraction
// trees with pairwise-disjoint label sets.
type Forest struct {
	Trees []*Tree
}

// NewForest validates label disjointness and returns the forest.
func NewForest(trees ...*Tree) (*Forest, error) {
	seen := make(map[string]int)
	for ti, t := range trees {
		for _, l := range t.labels {
			if prev, dup := seen[l]; dup {
				return nil, fmt.Errorf("abstree: label %q appears in trees %d and %d; forest trees must be disjoint", l, prev, ti)
			}
			seen[l] = ti
		}
	}
	return &Forest{Trees: trees}, nil
}

// MustForest is NewForest that panics on error.
func MustForest(trees ...*Tree) *Forest {
	f, err := NewForest(trees...)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of trees.
func (f *Forest) Len() int { return len(f.Trees) }

// NodeCount returns the total number of nodes across all trees (the n in the
// complexity bounds).
func (f *Forest) NodeCount() int {
	n := 0
	for _, t := range f.Trees {
		n += t.Len()
	}
	return n
}

// TreeOfLabel returns the tree containing the label, if any.
func (f *Forest) TreeOfLabel(label string) (*Tree, int, bool) {
	for _, t := range f.Trees {
		if i, ok := t.NodeByLabel(label); ok {
			return t, i, ok
		}
	}
	return nil, 0, false
}

// CompatibleWith checks the paper's compatibility requirements against a
// polynomial set (§2.2): every tree leaf that occurs in P occurs as a
// variable (trivially true — leaves *are* names), no internal node label
// occurs as a polynomial variable, and every monomial contains at most one
// node of each tree.
func (f *Forest) CompatibleWith(s *provenance.Set) error {
	for ti, t := range f.Trees {
		// Internal labels must not appear in P.
		inP := make(map[provenance.Var]bool)
		for v := range s.VarSet() {
			inP[v] = true
		}
		memberVar := make(map[provenance.Var]bool) // vars of P that are nodes of t
		for i := 0; i < t.Len(); i++ {
			v, ok := s.Vocab.Lookup(t.Label(i))
			if !ok {
				continue
			}
			if !inP[v] {
				continue
			}
			if !t.IsLeaf(i) {
				return fmt.Errorf("abstree: internal node %q of tree %d occurs as a variable in the polynomials; meta-variables must be fresh", t.Label(i), ti)
			}
			memberVar[v] = true
		}
		// Each monomial contains at most one node from t.
		for pi, p := range s.Polys {
			for _, m := range p.Monomials() {
				count := 0
				for _, vp := range m.Vars() {
					if memberVar[vp.Var] {
						count++
					}
				}
				if count > 1 {
					return fmt.Errorf("abstree: monomial %s of polynomial %d contains %d nodes of tree %d; compatibility requires at most one", m.String(s.Vocab), pi, count, ti)
				}
			}
		}
	}
	return nil
}

// Clean returns a copy of the forest with redundant nodes removed (footnote
// 1 of the paper): leaves whose label does not occur as a variable of s are
// dropped, internal nodes left with no active descendant leaves are dropped
// with them, and internal nodes left with exactly one child are contracted
// to that child (choosing such a node is equivalent to choosing its child,
// so keeping both only adds no-op abstraction steps — Example 15's cleaned
// forest exhibits this contraction). Trees whose root becomes empty are
// removed entirely.
func (f *Forest) Clean(s *provenance.Set) *Forest {
	active := make(map[string]bool)
	for v := range s.VarSet() {
		active[s.Vocab.Name(v)] = true
	}
	var trees []*Tree
	for _, t := range f.Trees {
		spec, keep := cleanSpec(t, 0, active)
		if !keep {
			continue
		}
		nt, err := NewTree(spec)
		if err != nil {
			// Labels were unique before cleaning; they stay unique.
			panic(err)
		}
		trees = append(trees, nt)
	}
	return &Forest{Trees: trees}
}

func cleanSpec(t *Tree, n int, active map[string]bool) (Spec, bool) {
	if t.IsLeaf(n) {
		if active[t.Label(n)] {
			return Spec{Label: t.Label(n)}, true
		}
		return Spec{}, false
	}
	spec := Spec{Label: t.Label(n)}
	for _, c := range t.children[n] {
		cs, keep := cleanSpec(t, c, active)
		if keep {
			spec.Children = append(spec.Children, cs)
		}
	}
	if len(spec.Children) == 0 {
		return Spec{}, false
	}
	if len(spec.Children) == 1 {
		return spec.Children[0], true
	}
	return spec, true
}
