package abstree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"provabs/internal/provenance"
)

// plansTreeSpec is Figure 2 of the paper: the abstraction tree of the plans
// variables. We use "Sp"/"Std"/"B" shorthands as the paper does in Example 13.
const plansTreeSpec = "Plans(Std(p1,p2),Sp(Y(y1,y2,y3),F(f1,f2),v),B(SB(b1,b2),e))"

// yearTreeSpec is Figure 3 restricted to the two months of the running
// example's database fragment (after cleaning).
const yearTreeSpec = "Year(q1(m1,m3))"

func plansForest(t *testing.T) (*Forest, *Tree) {
	t.Helper()
	tree := MustParseTree(plansTreeSpec)
	return MustForest(tree), tree
}

func TestParseTreeRoundTrip(t *testing.T) {
	tree := MustParseTree(plansTreeSpec)
	if got := tree.String(); got != plansTreeSpec {
		t.Errorf("String = %q, want %q", got, plansTreeSpec)
	}
	if tree.Len() != 18 {
		t.Errorf("Len = %d, want 18", tree.Len())
	}
	if got := len(tree.Leaves()); got != 11 {
		t.Errorf("leaves = %d, want 11", got)
	}
	if tree.Height() != 3 {
		t.Errorf("Height = %d, want 3", tree.Height())
	}
	if tree.Width() != 3 {
		t.Errorf("Width = %d, want 3", tree.Width())
	}
}

func TestParseTreeErrors(t *testing.T) {
	for _, bad := range []string{
		"",             // empty source
		"   ",          // whitespace only
		"a(b",          // unclosed paren
		"a(b))",        // extra closing paren
		"a(b,,c)",      // empty child
		"a(b,)",        // trailing comma
		"a(b)x",        // trailing garbage
		"a(b,b)",       // duplicate sibling label
		"a(b(c),d(c))", // duplicate label across subtrees
		"a(a)",         // node shadowing its ancestor
		"(x)",          // missing root label
		"a()",          // empty child list
		",a",           // leading comma
		"a(b),c",       // second root at top level
	} {
		if _, err := ParseTree(bad); err == nil {
			t.Errorf("ParseTree(%q) succeeded, want error", bad)
		}
	}
}

func TestLeavesUnder(t *testing.T) {
	tree := MustParseTree(plansTreeSpec)
	b, ok := tree.NodeByLabel("B")
	if !ok {
		t.Fatal("no node B")
	}
	var labels []string
	for _, l := range tree.LeavesUnder(b) {
		labels = append(labels, tree.Label(l))
	}
	sort.Strings(labels)
	want := []string{"b1", "b2", "e"}
	if len(labels) != len(want) {
		t.Fatalf("LeavesUnder(B) = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("LeavesUnder(B) = %v, want %v", labels, want)
		}
	}
}

func TestIsAncestorOrSelf(t *testing.T) {
	tree := MustParseTree(plansTreeSpec)
	sp, _ := tree.NodeByLabel("Sp")
	y1, _ := tree.NodeByLabel("y1")
	e, _ := tree.NodeByLabel("e")
	if !tree.IsAncestorOrSelf(sp, y1) {
		t.Error("Sp should be ancestor of y1")
	}
	if tree.IsAncestorOrSelf(sp, e) {
		t.Error("Sp should not be ancestor of e")
	}
	if !tree.IsAncestorOrSelf(y1, y1) {
		t.Error("y1 <= y1 must hold")
	}
	if !tree.IsAncestorOrSelf(tree.Root(), e) {
		t.Error("root is ancestor of everything")
	}
}

// TestExample5ValidVVS checks that the paper's S1..S5 are all valid.
func TestExample5ValidVVS(t *testing.T) {
	f, _ := plansForest(t)
	cases := [][]string{
		{"B", "Sp", "Std"},
		{"SB", "e", "f1", "f2", "Y", "v", "Std"},
		{"b1", "b2", "e", "Sp", "Std"},
		{"SB", "e", "F", "Y", "v", "p1", "p2"},
		{"Plans"},
	}
	for i, labels := range cases {
		if _, err := FromLabels(f, labels...); err != nil {
			t.Errorf("S%d = %v invalid: %v", i+1, labels, err)
		}
	}
}

func TestInvalidVVS(t *testing.T) {
	f, _ := plansForest(t)
	cases := [][]string{
		{"Plans", "B"},                 // comparable pair
		{"B", "Sp"},                    // Std leaves uncovered
		{"SB", "e", "Sp"},              // Std uncovered
		{"b1", "b1", "e", "Sp", "Std"}, // duplicate
		{},                             // nothing covered
	}
	for i, labels := range cases {
		if _, err := FromLabels(f, labels...); err == nil {
			t.Errorf("case %d = %v validated, want error", i, labels)
		}
	}
}

func TestCutCountSmall(t *testing.T) {
	// Figure 2 tree: count cuts bottom-up by hand:
	// SB: 1+1*1=2; Y: 1+1=2 (3 leaves → 1+1·1·1=2); F: 2; Std: 2
	// B: 1+2*1=3; Sp: 1+2*2*1=5
	// Plans: 1+2*3*5=31
	tree := MustParseTree(plansTreeSpec)
	if got := tree.CutCount().Int64(); got != 31 {
		t.Errorf("CutCount = %d, want 31", got)
	}
	cuts, err := EnumerateCuts(tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 31 {
		t.Errorf("EnumerateCuts found %d cuts, want 31", len(cuts))
	}
	// Every enumerated cut must validate.
	f := MustForest(tree)
	for _, c := range cuts {
		v := &VVS{Forest: f, Nodes: [][]int{c}}
		if err := v.Validate(); err != nil {
			t.Errorf("enumerated cut %v invalid: %v", c, err)
		}
	}
}

func TestEnumerateCutsLimit(t *testing.T) {
	tree := MustParseTree(plansTreeSpec)
	if _, err := EnumerateCuts(tree, 10); err == nil {
		t.Error("limit 10 on a 31-cut tree did not error")
	}
}

func TestForestDisjointness(t *testing.T) {
	t1 := MustParseTree("A(x,y)")
	t2 := MustParseTree("B(y,z)")
	if _, err := NewForest(t1, t2); err == nil {
		t.Error("overlapping forests accepted")
	}
	t3 := MustParseTree("B(z,w)")
	if _, err := NewForest(t1, t3); err != nil {
		t.Errorf("disjoint forest rejected: %v", err)
	}
}

func TestForestCutCount(t *testing.T) {
	f := MustForest(MustParseTree(plansTreeSpec), MustParseTree("Year(q1(m1,m3),q2(m4,m6))"))
	// Year: q=2 each → 1+2·2=5; total 31·5=155.
	if got := ForestCutCount(f).Int64(); got != 155 {
		t.Errorf("ForestCutCount = %d, want 155", got)
	}
	vvs, err := EnumerateVVS(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vvs) != 155 {
		t.Errorf("EnumerateVVS found %d, want 155", len(vvs))
	}
}

func TestSubstRunningExample(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	f := MustForest(MustParseTree(yearTreeSpec))
	v := MustFromLabels(f, "q1")
	got := v.Apply(s)
	if got.Size() != 4 {
		t.Errorf("|P↓S|_M = %d, want 4 (Example 2)", got.Size())
	}
	if got.Granularity() != 5 {
		t.Errorf("|P↓S|_V = %d, want 5 (p1,f1,y1,v,q1)", got.Granularity())
	}
}

// TestExample6 verifies the sizes reported in Example 6 for S1 and S5.
func TestExample6(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("10001", provenance.MustParse(vb,
		"220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3"))
	f, _ := plansForest(t)

	s1 := MustFromLabels(f, "B", "Sp", "Std")
	got1 := s1.Apply(s)
	// Note: in the fragment's zip-10001 polynomial only p1, f1, y1, v occur
	// (no business plans), so S1 yields vars {Std, Sp, m1, m3} = 4 and
	// monomials {Std·m1, Std·m3, Sp·m1, Sp·m3} = 4, exactly Example 6.
	if got1.Granularity() != 4 || got1.Size() != 4 {
		t.Errorf("S1: |V|=%d |M|=%d, want 4 and 4", got1.Granularity(), got1.Size())
	}

	s5 := MustFromLabels(f, "Plans")
	got5 := s5.Apply(s)
	if got5.Granularity() != 3 || got5.Size() != 2 {
		t.Errorf("S5: |V|=%d |M|=%d, want 3 and 2", got5.Granularity(), got5.Size())
	}
}

func TestCompatibility(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "2·p1·m1 + 3·p2·m3"))
	f := MustForest(MustParseTree(plansTreeSpec), MustParseTree(yearTreeSpec))
	if err := f.CompatibleWith(s); err != nil {
		t.Errorf("compatible forest rejected: %v", err)
	}
	// Two plan variables in one monomial → incompatible.
	bad := provenance.NewSet(vb)
	bad.Add("", provenance.MustParse(vb, "2·p1·p2"))
	if err := f.CompatibleWith(bad); err == nil {
		t.Error("monomial with two tree nodes accepted")
	}
	// Meta-variable occurring in P → incompatible.
	bad2 := provenance.NewSet(vb)
	bad2.Add("", provenance.MustParse(vb, "2·Plans·m1"))
	if err := f.CompatibleWith(bad2); err == nil {
		t.Error("internal label used as variable accepted")
	}
}

func TestClean(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "2·p1·m1 + 3·y1·m3"))
	f := MustForest(MustParseTree(plansTreeSpec), MustParseTree("Year(q1(m1,m2,m3),q2(m4,m5,m6))"))
	cleaned := f.Clean(s)
	if cleaned.Len() != 2 {
		t.Fatalf("cleaned forest has %d trees, want 2", cleaned.Len())
	}
	plans := cleaned.Trees[0]
	var leaves []string
	for _, l := range plans.Leaves() {
		leaves = append(leaves, plans.Label(l))
	}
	sort.Strings(leaves)
	if len(leaves) != 2 || leaves[0] != "p1" || leaves[1] != "y1" {
		t.Errorf("cleaned plans leaves = %v, want [p1 y1]", leaves)
	}
	// F, SB, B subtrees must be gone entirely.
	if _, ok := plans.NodeByLabel("F"); ok {
		t.Error("empty subtree F survived cleaning")
	}
	year := cleaned.Trees[1]
	if _, ok := year.NodeByLabel("q2"); ok {
		t.Error("empty subtree q2 survived cleaning")
	}
	if _, ok := year.NodeByLabel("m2"); ok {
		t.Error("inactive leaf m2 survived cleaning")
	}
}

func TestCleanDropsWholeTree(t *testing.T) {
	vb := provenance.NewVocab()
	s := provenance.NewSet(vb)
	s.Add("", provenance.MustParse(vb, "2·x"))
	f := MustForest(MustParseTree("A(a1,a2)"))
	if got := f.Clean(s).Len(); got != 0 {
		t.Errorf("forest with no active leaves kept %d trees", got)
	}
}

func TestLeafAndRootVVS(t *testing.T) {
	f, tree := plansForest(t)
	lv := LeafVVS(f)
	if err := lv.Validate(); err != nil {
		t.Errorf("LeafVVS invalid: %v", err)
	}
	if lv.Size() != len(tree.Leaves()) {
		t.Errorf("LeafVVS size = %d, want %d", lv.Size(), len(tree.Leaves()))
	}
	rv := RootVVS(f)
	if err := rv.Validate(); err != nil {
		t.Errorf("RootVVS invalid: %v", err)
	}
	if rv.Size() != 1 {
		t.Errorf("RootVVS size = %d, want 1", rv.Size())
	}
}

// randomTree builds a random tree with the given number of leaves for
// property tests.
func randomTree(rng *rand.Rand, label string, leaves int) *Tree {
	var build func(prefix string, n int, depth int) Spec
	id := 0
	build = func(prefix string, n, depth int) Spec {
		if n == 1 || depth > 3 {
			id++
			return Spec{Label: prefix + "L" + itoa(id)}
		}
		k := rng.Intn(min(n, 3)-1) + 2 // 2..min(n,3) children
		spec := Spec{Label: prefix + "N" + itoa(id)}
		id++
		rem := n
		for i := 0; i < k; i++ {
			share := rem / (k - i)
			if i < k-1 && share < rem-(k-i-1) && rng.Intn(2) == 0 {
				share++
			}
			if share < 1 {
				share = 1
			}
			spec.Children = append(spec.Children, build(prefix+itoa(i), share, depth+1))
			rem -= share
		}
		return spec
	}
	t, err := NewTree(build(label, leaves, 0))
	if err != nil {
		panic(err)
	}
	return t
}

func itoa(i int) string {
	return string(rune('0'+i%10)) + "x" + string(rune('a'+(i/10)%26)) + string(rune('a'+(i/260)%26))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: CutCount equals the number of enumerated cuts on random trees.
func TestQuickCutCountMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng, "T", rng.Intn(6)+2)
		cuts, err := EnumerateCuts(tree, 100000)
		if err != nil {
			return true // too many cuts; skip
		}
		return tree.CutCount().Int64() == int64(len(cuts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated cut validates, and all enumerated cuts are
// distinct.
func TestQuickEnumeratedCutsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tree := randomTree(rng, "T", rng.Intn(5)+2)
		cuts, err := EnumerateCuts(tree, 100000)
		if err != nil {
			return true
		}
		forest := MustForest(tree)
		seen := map[string]bool{}
		for _, c := range cuts {
			v := &VVS{Forest: forest, Nodes: [][]int{c}}
			if v.Validate() != nil {
				return false
			}
			key := ""
			for _, n := range c {
				key += "," + tree.Label(n)
			}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
