package abstree

import (
	"fmt"
	"math/big"
	"sort"
	"strings"

	"provabs/internal/provenance"
)

// VVS is a valid variable set (Definition 4): a choice, for every tree of
// the forest, of a cut separating the root from the leaves. Nodes[ti] holds
// the chosen node indices of tree ti in ascending order.
type VVS struct {
	Forest *Forest
	Nodes  [][]int
}

// LeafVVS returns the identity abstraction: every leaf chosen, nothing
// grouped. It is the greedy algorithm's starting point.
func LeafVVS(f *Forest) *VVS {
	nodes := make([][]int, len(f.Trees))
	for i, t := range f.Trees {
		nodes[i] = t.Leaves()
	}
	return &VVS{Forest: f, Nodes: nodes}
}

// RootVVS returns the coarsest abstraction: only the roots chosen.
func RootVVS(f *Forest) *VVS {
	nodes := make([][]int, len(f.Trees))
	for i := range f.Trees {
		nodes[i] = []int{0}
	}
	return &VVS{Forest: f, Nodes: nodes}
}

// FromLabels builds a VVS from node labels spread across the forest's trees
// and validates it.
func FromLabels(f *Forest, labels ...string) (*VVS, error) {
	nodes := make([][]int, len(f.Trees))
	treeIndex := make(map[*Tree]int, len(f.Trees))
	for i, t := range f.Trees {
		treeIndex[t] = i
	}
	for _, l := range labels {
		t, n, ok := f.TreeOfLabel(l)
		if !ok {
			return nil, fmt.Errorf("abstree: label %q not in forest", l)
		}
		ti := treeIndex[t]
		nodes[ti] = append(nodes[ti], n)
	}
	for _, ns := range nodes {
		sort.Ints(ns)
	}
	s := &VVS{Forest: f, Nodes: nodes}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustFromLabels is FromLabels that panics on error.
func MustFromLabels(f *Forest, labels ...string) *VVS {
	s, err := FromLabels(f, labels...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks Definition 4: in every tree, (1) each leaf has an ancestor
// (or itself) in the set and (2) no chosen node is a strict ancestor of
// another chosen node.
func (s *VVS) Validate() error {
	if len(s.Nodes) != len(s.Forest.Trees) {
		return fmt.Errorf("abstree: VVS covers %d trees, forest has %d", len(s.Nodes), len(s.Forest.Trees))
	}
	for ti, t := range s.Forest.Trees {
		chosen := make(map[int]bool, len(s.Nodes[ti]))
		for _, n := range s.Nodes[ti] {
			if n < 0 || n >= t.Len() {
				return fmt.Errorf("abstree: node %d out of range in tree %d", n, ti)
			}
			if chosen[n] {
				return fmt.Errorf("abstree: node %q chosen twice in tree %d", t.Label(n), ti)
			}
			chosen[n] = true
		}
		// Antichain: no chosen node has a chosen strict ancestor.
		for n := range chosen {
			for a := t.Parent(n); a >= 0; a = t.Parent(a) {
				if chosen[a] {
					return fmt.Errorf("abstree: %q and its ancestor %q both chosen in tree %d", t.Label(n), t.Label(a), ti)
				}
			}
		}
		// Coverage: every leaf has an ancestor-or-self in the set.
		for _, l := range t.Leaves() {
			covered := false
			for a := l; a >= 0; a = t.Parent(a) {
				if chosen[a] {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("abstree: leaf %q of tree %d not covered", t.Label(l), ti)
			}
		}
	}
	return nil
}

// Labels returns the labels of all chosen nodes, sorted.
func (s *VVS) Labels() []string {
	var out []string
	for ti, t := range s.Forest.Trees {
		for _, n := range s.Nodes[ti] {
			out = append(out, t.Label(n))
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the number of chosen nodes across the forest.
func (s *VVS) Size() int {
	n := 0
	for _, ns := range s.Nodes {
		n += len(ns)
	}
	return n
}

// Equal reports whether two VVS over the same forest choose the same nodes.
func (s *VVS) Equal(o *VVS) bool {
	if s.Forest != o.Forest || len(s.Nodes) != len(o.Nodes) {
		return false
	}
	for i := range s.Nodes {
		if len(s.Nodes[i]) != len(o.Nodes[i]) {
			return false
		}
		for j := range s.Nodes[i] {
			if s.Nodes[i][j] != o.Nodes[i][j] {
				return false
			}
		}
	}
	return true
}

// String renders the chosen labels, e.g. "{SB, Sp, e, p1}".
func (s *VVS) String() string {
	return "{" + strings.Join(s.Labels(), ", ") + "}"
}

// Subst builds the substitution map P↓S needs: every forest leaf variable
// that occurs under a chosen internal node maps to that node's
// meta-variable. Leaves chosen as themselves (and variables outside the
// forest) are left out — they stay intact under substitution.
func (s *VVS) Subst(vb *provenance.Vocab) map[provenance.Var]provenance.Var {
	subst := make(map[provenance.Var]provenance.Var)
	for ti, t := range s.Forest.Trees {
		for _, n := range s.Nodes[ti] {
			if t.IsLeaf(n) {
				continue
			}
			meta := vb.Var(t.Label(n))
			for _, l := range t.LeavesUnder(n) {
				if lv, ok := vb.Lookup(t.Label(l)); ok {
					subst[lv] = meta
				}
			}
		}
	}
	return subst
}

// Apply abstracts the polynomial set under the VVS, returning P↓S.
func (s *VVS) Apply(ps *provenance.Set) *provenance.Set {
	return ps.Substitute(s.Subst(ps.Vocab))
}

// EnumerateCuts returns every valid cut of the tree, each as a sorted slice
// of node indices. It returns an error once more than limit cuts exist
// (limit <= 0 means unlimited). Cut counts blow up exponentially — see
// Tree.CutCount — so brute-force callers must pass a limit.
func EnumerateCuts(t *Tree, limit int) ([][]int, error) {
	var enum func(n int) ([][]int, error)
	enum = func(n int) ([][]int, error) {
		if t.IsLeaf(n) {
			return [][]int{{n}}, nil
		}
		// Cross product of children's cuts.
		acc := [][]int{nil}
		for _, c := range t.children[n] {
			sub, err := enum(c)
			if err != nil {
				return nil, err
			}
			var next [][]int
			for _, a := range acc {
				for _, s := range sub {
					merged := make([]int, 0, len(a)+len(s))
					merged = append(merged, a...)
					merged = append(merged, s...)
					next = append(next, merged)
					if limit > 0 && len(next) > limit {
						return nil, fmt.Errorf("abstree: more than %d cuts", limit)
					}
				}
			}
			acc = next
		}
		acc = append(acc, []int{n})
		if limit > 0 && len(acc) > limit {
			return nil, fmt.Errorf("abstree: more than %d cuts", limit)
		}
		return acc, nil
	}
	cuts, err := enum(0)
	if err != nil {
		return nil, err
	}
	for _, c := range cuts {
		sort.Ints(c)
	}
	return cuts, nil
}

// EnumerateVVS returns every VVS of the forest (the cartesian product of the
// trees' cuts), erroring out beyond limit.
func EnumerateVVS(f *Forest, limit int) ([]*VVS, error) {
	perTree := make([][][]int, len(f.Trees))
	for i, t := range f.Trees {
		cuts, err := EnumerateCuts(t, limit)
		if err != nil {
			return nil, err
		}
		perTree[i] = cuts
	}
	out := []*VVS{{Forest: f, Nodes: make([][]int, len(f.Trees))}}
	for ti := range f.Trees {
		var next []*VVS
		for _, v := range out {
			for _, cut := range perTree[ti] {
				nodes := make([][]int, len(f.Trees))
				copy(nodes, v.Nodes)
				nodes[ti] = cut
				next = append(next, &VVS{Forest: f, Nodes: nodes})
				if limit > 0 && len(next) > limit {
					return nil, fmt.Errorf("abstree: more than %d VVS", limit)
				}
			}
		}
		out = next
	}
	return out, nil
}

// ForestCutCount returns the exact number of VVS of the forest (product over
// trees of per-tree cut counts).
func ForestCutCount(f *Forest) *big.Int {
	prod := big.NewInt(1)
	for _, t := range f.Trees {
		prod.Mul(prod, t.CutCount())
	}
	return prod
}
