package provenance

import "sync"

// Compiled is a provenance set compiled for evaluation: every monomial of
// every polynomial is flattened into dense coefficient and factor arrays so
// that evaluating a scenario is a tight loop over contiguous memory — no
// string key re-parsing, no map lookups per monomial. Valuations are dense
// []float64 slices indexed by Var.
//
// A Compiled is a snapshot that grows only at the end: mutating the source
// Set or its polynomials in place after compiling does not change the
// compiled form, but Append extends it with additional polynomials without
// recompiling what is already there (the incremental path behind Set.Add).
// Compile once, evaluate many times — the intended workload is the paper's
// interactive many-scenario setting (Figure 10), where the same provenance
// answers a stream of hypothetical scenarios.
//
// Append mutates the receiver; it must not run concurrently with
// evaluation. The session Engine serializes the two behind its lock.
//
// Evaluation order is deterministic (monomials in canonical key order), so
// repeated evaluations of the same valuation produce bit-identical results,
// unlike the map-based Polynomial.Eval whose summation order follows map
// iteration.
type Compiled struct {
	Vocab *Vocab
	Tags  []string // Tags[i] labels polynomial i; may be empty

	polyOff []int32   // polynomial i owns terms [polyOff[i], polyOff[i+1])
	coeffs  []float64 // one coefficient per term
	factOff []int32   // term t owns factors [factOff[t], factOff[t+1])
	vars    []Var     // factor variables, indexed by factOff
	pows    []int32   // factor exponents, parallel to vars

	maxVar  Var  // largest Var occurring in any factor (0 when none)
	allPow1 bool // every exponent is 1: enables the branch-free fast path

	// Inverted index for delta evaluation (see delta.go): which polynomials
	// each variable occurs in, in CSR layout (ID lists ascending per
	// variable), built once on first delta use so compile-only callers
	// never pay for it. varTermOff keeps only the term *counts* per
	// variable (as cumulative offsets) for TermsTouching; the term id lists
	// themselves are transient during index construction. varPolyTerms[v]
	// is the total term count of the polynomials containing v — a sound
	// lower bound on any scenario touching v's affected terms.
	indexOnce    sync.Once
	varTermOff   []int32 // var v occurs in varTermOff[v+1]-varTermOff[v] terms
	varPolyOff   []int32 // var v owns poly ids varPolyIDs[varPolyOff[v]:varPolyOff[v+1]]
	varPolyIDs   []int32
	varPolyTerms []int32

	baselineOnce sync.Once // guards baseline, the answers under the identity
	baselineDone bool      // set inside baselineOnce: lets Append patch vs skip
	baseline     []float64
	deltaPool    sync.Pool // *DeltaEval scratch for the EvalDelta convenience
}

// Compile flattens the set into its compiled form. The Vocab and Tags are
// shared with the source set; the term data is copied.
func (s *Set) Compile() *Compiled {
	c := compilePolys(s.Polys)
	c.Vocab = s.Vocab
	c.Tags = s.Tags
	return c
}

// Compile flattens a single polynomial into a one-member Compiled (no Vocab,
// no tags). Use Set.Compile for whole query results.
func (p *Polynomial) Compile() *Compiled {
	return compilePolys([]*Polynomial{p})
}

func compilePolys(polys []*Polynomial) *Compiled {
	nTerms := 0
	for _, p := range polys {
		nTerms += p.Size()
	}
	c := &Compiled{
		polyOff: make([]int32, 1, len(polys)+1),
		coeffs:  make([]float64, 0, nTerms),
		factOff: make([]int32, 1, nTerms+1),
		allPow1: true,
	}
	for _, p := range polys {
		for _, m := range p.Monomials() {
			c.coeffs = append(c.coeffs, m.Coeff)
			for _, f := range m.Vars() {
				c.vars = append(c.vars, f.Var)
				c.pows = append(c.pows, f.Pow)
				if f.Pow != 1 {
					c.allPow1 = false
				}
				if f.Var > c.maxVar {
					c.maxVar = f.Var
				}
			}
			c.factOff = append(c.factOff, int32(len(c.vars)))
		}
		c.polyOff = append(c.polyOff, int32(len(c.coeffs)))
	}
	return c
}

// Append extends the compiled form with additional polynomials in place —
// the incremental-compile path behind Set.Add. Only the new polynomials'
// terms are flattened; when the inverted index and the baseline answer
// vector have already been built they are patched (per-variable id lists
// merged, identity answers of the new polynomials appended) instead of
// discarded, so an Add-heavy session keeps one compilation alive for its
// whole lifetime. Evaluation of the pre-existing polynomials is
// bit-identical to a fresh Compile: their term data is untouched.
//
// Append reports false — leaving the receiver unchanged — when the new
// polynomials introduce variables beyond the capacity the inverted index
// was sized for (the compiled vocabulary at index-build time); the caller
// falls back to a full rebuild. tags extends Tags in step with the
// polynomials and may be nil for untagged sets.
//
// Append mutates the receiver and must not run concurrently with
// evaluation; callers (like the session Engine) serialize the two.
func (c *Compiled) Append(polys []*Polynomial, tags []string) bool {
	ms := make([][]Monomial, len(polys))
	newMax := c.maxVar
	for i, p := range polys {
		ms[i] = p.Monomials()
		for _, m := range ms[i] {
			for _, f := range m.Vars() {
				if f.Var > newMax {
					newMax = f.Var
				}
			}
		}
	}
	if c.varTermOff != nil && newMax > c.maxVar {
		return false // the index is sized to the old vocabulary: rebuild
	}
	firstPoly, firstTerm := c.Len(), len(c.coeffs)
	for i := range polys {
		for _, m := range ms[i] {
			c.coeffs = append(c.coeffs, m.Coeff)
			for _, f := range m.Vars() {
				c.vars = append(c.vars, f.Var)
				c.pows = append(c.pows, f.Pow)
				if f.Pow != 1 {
					c.allPow1 = false
				}
			}
			c.factOff = append(c.factOff, int32(len(c.vars)))
		}
		c.polyOff = append(c.polyOff, int32(len(c.coeffs)))
	}
	c.maxVar = newMax
	c.Tags = append(c.Tags, tags...)
	if c.varTermOff != nil {
		c.patchIndex(firstPoly, firstTerm)
	}
	if c.baselineDone {
		c.baseline = append(c.baseline, make([]float64, c.Len()-firstPoly)...)
		c.evalRange(firstPoly, c.Len(), c.NewValuation(), c.baseline)
	}
	return true
}

// Len returns the number of polynomials.
func (c *Compiled) Len() int { return len(c.polyOff) - 1 }

// Size returns |P|_M — the total number of monomials.
func (c *Compiled) Size() int { return len(c.coeffs) }

// MaxVar returns the largest Var occurring in the compiled set. Valuations
// passed to Eval must have length at least MaxVar+1.
func (c *Compiled) MaxVar() Var { return c.maxVar }

// ValuationLen returns the length a dense valuation slice must have.
func (c *Compiled) ValuationLen() int { return int(c.maxVar) + 1 }

// NewValuation returns an identity valuation (all ones) of the right length
// for Eval. Index it by Var to assign scenario values.
func (c *Compiled) NewValuation() []float64 {
	val := make([]float64, c.ValuationLen())
	for i := range val {
		val[i] = 1
	}
	return val
}

// Valuation converts a sparse map valuation into a dense slice for Eval.
// Variables absent from the map keep the identity value 1. Map entries for
// variables beyond MaxVar are ignored (they cannot occur in any term).
func (c *Compiled) Valuation(m map[Var]float64) []float64 {
	val := c.NewValuation()
	for v, x := range m {
		if v >= 0 && int(v) < len(val) {
			val[v] = x
		}
	}
	return val
}

// Eval evaluates every polynomial under the dense valuation, writing one
// value per polynomial into out (grown as needed) and returning it. Passing
// a nil out allocates; passing the previous result re-uses its storage,
// which keeps steady-state batch evaluation allocation-free.
//
// val must have length at least ValuationLen(); use NewValuation or
// Valuation to build it. Eval does not mutate val and is safe for
// concurrent use with distinct out slices.
func (c *Compiled) Eval(val []float64, out []float64) []float64 {
	n := c.Len()
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	c.evalRange(0, n, val, out)
	return out
}

// evalRange evaluates polynomials [lo, hi) into out (indexed by polynomial
// id, not shifted). Disjoint ranges may be evaluated concurrently.
func (c *Compiled) evalRange(lo, hi int, val, out []float64) {
	if c.allPow1 {
		c.evalLinear(lo, hi, val, out)
	} else {
		c.evalGeneral(lo, hi, val, out)
	}
}

// evalLinear is the hot path: every exponent is 1 so each factor is a single
// multiply with no branching. The factor loop is unrolled four wide with a
// small-count switch — provenance monomials have one to three factors almost
// always, so most terms finish without entering a loop at all. Every
// multiply keeps the left-to-right association of the plain loop, so results
// stay bit-identical across paths.
func (c *Compiled) evalLinear(lo, hi int, val, out []float64) {
	coeffs, factOff, vars := c.coeffs, c.factOff, c.vars
	for pi := lo; pi < hi; pi++ {
		sum := 0.0
		for t := c.polyOff[pi]; t < c.polyOff[pi+1]; t++ {
			x := coeffs[t]
			f, end := factOff[t], factOff[t+1]
			for ; end-f >= 4; f += 4 {
				x = x * val[vars[f]] * val[vars[f+1]] * val[vars[f+2]] * val[vars[f+3]]
			}
			switch end - f {
			case 1:
				x *= val[vars[f]]
			case 2:
				x = x * val[vars[f]] * val[vars[f+1]]
			case 3:
				x = x * val[vars[f]] * val[vars[f+1]] * val[vars[f+2]]
			}
			sum += x
		}
		out[pi] = sum
	}
}

// evalGeneral handles arbitrary positive exponents by repeated
// multiplication (exponents are small in provenance polynomials: they count
// self-joins).
func (c *Compiled) evalGeneral(lo, hi int, val, out []float64) {
	for pi := lo; pi < hi; pi++ {
		sum := 0.0
		for t := c.polyOff[pi]; t < c.polyOff[pi+1]; t++ {
			x := c.coeffs[t]
			for f := c.factOff[t]; f < c.factOff[t+1]; f++ {
				v := val[c.vars[f]]
				for p := c.pows[f]; p > 0; p-- {
					x *= v
				}
			}
			sum += x
		}
		out[pi] = sum
	}
}

// EvalPoly evaluates only polynomial i under the dense valuation.
func (c *Compiled) EvalPoly(i int, val []float64) float64 {
	sum := 0.0
	for t := c.polyOff[i]; t < c.polyOff[i+1]; t++ {
		x := c.coeffs[t]
		for f := c.factOff[t]; f < c.factOff[t+1]; f++ {
			v := val[c.vars[f]]
			for p := c.pows[f]; p > 0; p-- {
				x *= v
			}
		}
		sum += x
	}
	return sum
}

// EvalMap evaluates under a sparse map valuation (convenience bridge from
// the map-based API; batch callers should build dense valuations once).
func (c *Compiled) EvalMap(m map[Var]float64) []float64 {
	return c.Eval(c.Valuation(m), nil)
}
