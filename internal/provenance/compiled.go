package provenance

import "sync"

// Kernel is a provenance set compiled for evaluation in the carrier C:
// every monomial of every polynomial is flattened into dense coefficient
// and factor arrays so that evaluating a scenario is a tight loop over
// contiguous memory — no string key re-parsing, no map lookups per
// monomial. Valuations are dense []T slices indexed by Var.
//
// The kernel is monomorphized per carrier by the compiler; the float
// carrier additionally supplies a fused bulk loop (see bulkKernel), so the
// float64 instantiation — the Compiled alias — runs the exact pre-generic
// code path. The CSR inverted index, the cached identity baseline and the
// delta scratch epochs are carrier-agnostic.
//
// A Kernel is a snapshot that grows only at the end: mutating the source
// Set or its polynomials in place after compiling does not change the
// compiled form, but Append extends it with additional polynomials without
// recompiling what is already there (the incremental path behind Set.Add).
// Compile once, evaluate many times — the intended workload is the paper's
// interactive many-scenario setting (Figure 10), where the same provenance
// answers a stream of hypothetical scenarios.
//
// Append mutates the receiver; it must not run concurrently with
// evaluation. The session Engine serializes the two behind its lock.
//
// Evaluation order is deterministic (monomials in canonical key order), so
// repeated evaluations of the same valuation produce identical results,
// unlike the map-based Polynomial.Eval whose summation order follows map
// iteration.
type Kernel[T any, C Carrier[T]] struct {
	Vocab *Vocab
	Tags  []string // Tags[i] labels polynomial i; may be empty

	carrier C
	bulk    bulkKernel[T] // non-nil when C supplies fused loops (Float)

	kernelArrays[T]

	maxVar Var // largest Var occurring in any factor (0 when none)

	// Inverted index for delta evaluation (see delta.go): which polynomials
	// each variable occurs in, in CSR layout (ID lists ascending per
	// variable), built once on first delta use so compile-only callers
	// never pay for it. varTermOff keeps only the term *counts* per
	// variable (as cumulative offsets) for TermsTouching; the term id lists
	// themselves are transient during index construction. varPolyTerms[v]
	// is the total term count of the polynomials containing v — a sound
	// lower bound on any scenario touching v's affected terms.
	indexOnce    sync.Once
	varTermOff   []int32 // var v occurs in varTermOff[v+1]-varTermOff[v] terms
	varPolyOff   []int32 // var v owns poly ids varPolyIDs[varPolyOff[v]:varPolyOff[v+1]]
	varPolyIDs   []int32
	varPolyTerms []int32

	baselineOnce sync.Once // guards baseline, the answers under the identity
	baselineDone bool      // set inside baselineOnce: lets Append patch vs skip
	baseline     []T
	deltaPool    sync.Pool // *DeltaKernel scratch for the EvalDelta convenience
}

// Compiled is the float64 instantiation of the kernel — the paper's
// numeric semiring, and the carrier every pre-generic call site uses.
type Compiled = Kernel[float64, Float]

// Compile flattens the set into its compiled float64 form. The Vocab and
// Tags are shared with the source set; the term data is copied. For other
// carriers use CompileSet.
func (s *Set) Compile() *Compiled {
	c, _ := CompileSet[float64, Float](Float{}, s) // Float.FromCoeff never fails
	return c
}

// Compile flattens a single polynomial into a one-member Compiled (no Vocab,
// no tags). Use Set.Compile for whole query results.
func (p *Polynomial) Compile() *Compiled {
	c, _ := CompilePolys[float64, Float](Float{}, []*Polynomial{p})
	return c
}

// CompileSet flattens the set into a kernel over the given carrier. The
// Vocab and Tags are shared with the source set; the term data is copied,
// with every coefficient converted through the carrier's FromCoeff (which
// is where non-natural multiplicities are rejected for the discrete
// carriers).
func CompileSet[T any, C Carrier[T]](cr C, s *Set) (*Kernel[T, C], error) {
	c, err := CompilePolys[T, C](cr, s.Polys)
	if err != nil {
		return nil, err
	}
	c.Vocab = s.Vocab
	c.Tags = s.Tags
	return c, nil
}

// CompilePolys flattens polynomials into a kernel over the given carrier
// (no Vocab, no tags).
func CompilePolys[T any, C Carrier[T]](cr C, polys []*Polynomial) (*Kernel[T, C], error) {
	nTerms := 0
	for _, p := range polys {
		nTerms += p.Size()
	}
	c := &Kernel[T, C]{
		carrier: cr,
		kernelArrays: kernelArrays[T]{
			polyOff: make([]int32, 1, len(polys)+1),
			coeffs:  make([]T, 0, nTerms),
			factOff: make([]int32, 1, nTerms+1),
			allPow1: true,
		},
	}
	c.bulk, _ = any(cr).(bulkKernel[T])
	for _, p := range polys {
		for _, m := range p.Monomials() {
			ct, err := cr.FromCoeff(m.Coeff)
			if err != nil {
				return nil, err
			}
			c.coeffs = append(c.coeffs, ct)
			for _, f := range m.Vars() {
				c.vars = append(c.vars, f.Var)
				c.pows = append(c.pows, f.Pow)
				if f.Pow != 1 {
					c.allPow1 = false
				}
				if f.Var > c.maxVar {
					c.maxVar = f.Var
				}
			}
			c.factOff = append(c.factOff, int32(len(c.vars)))
		}
		c.polyOff = append(c.polyOff, int32(len(c.coeffs)))
	}
	return c, nil
}

// Append extends the compiled form with additional polynomials in place —
// the incremental-compile path behind Set.Add. Only the new polynomials'
// terms are flattened; when the inverted index and the baseline answer
// vector have already been built they are patched (per-variable id lists
// merged, identity answers of the new polynomials appended) instead of
// discarded, so an Add-heavy session keeps one compilation alive for its
// whole lifetime. Evaluation of the pre-existing polynomials is
// bit-identical to a fresh compile: their term data is untouched.
//
// Append reports false — leaving the receiver unchanged — when the new
// polynomials introduce variables beyond the capacity the inverted index
// was sized for (the compiled vocabulary at index-build time), or when a
// coefficient does not convert into the carrier; the caller falls back to
// a full rebuild, which surfaces any conversion error. tags extends Tags
// in step with the polynomials and may be nil for untagged sets.
//
// Append mutates the receiver and must not run concurrently with
// evaluation; callers (like the session Engine) serialize the two.
func (c *Kernel[T, C]) Append(polys []*Polynomial, tags []string) bool {
	ms := make([][]Monomial, len(polys))
	newMax := c.maxVar
	newCoeffs := make([]T, 0, len(polys))
	for i, p := range polys {
		ms[i] = p.Monomials()
		for _, m := range ms[i] {
			ct, err := c.carrier.FromCoeff(m.Coeff)
			if err != nil {
				return false // rebuild path reports the conversion error
			}
			newCoeffs = append(newCoeffs, ct)
			for _, f := range m.Vars() {
				if f.Var > newMax {
					newMax = f.Var
				}
			}
		}
	}
	if c.varTermOff != nil && newMax > c.maxVar {
		return false // the index is sized to the old vocabulary: rebuild
	}
	firstPoly, firstTerm := c.Len(), len(c.coeffs)
	nc := 0
	for i := range polys {
		for _, m := range ms[i] {
			c.coeffs = append(c.coeffs, newCoeffs[nc])
			nc++
			for _, f := range m.Vars() {
				c.vars = append(c.vars, f.Var)
				c.pows = append(c.pows, f.Pow)
				if f.Pow != 1 {
					c.allPow1 = false
				}
			}
			c.factOff = append(c.factOff, int32(len(c.vars)))
		}
		c.polyOff = append(c.polyOff, int32(len(c.coeffs)))
	}
	c.maxVar = newMax
	c.Tags = append(c.Tags, tags...)
	if c.varTermOff != nil {
		c.patchIndex(firstPoly, firstTerm)
	}
	if c.baselineDone {
		c.baseline = append(c.baseline, make([]T, c.Len()-firstPoly)...)
		c.evalRange(firstPoly, c.Len(), c.NewValuation(), c.baseline)
	}
	return true
}

// Carrier returns the carrier the kernel evaluates in.
func (c *Kernel[T, C]) Carrier() C { return c.carrier }

// Len returns the number of polynomials.
func (c *Kernel[T, C]) Len() int { return len(c.polyOff) - 1 }

// Size returns |P|_M — the total number of monomials.
func (c *Kernel[T, C]) Size() int { return len(c.coeffs) }

// MaxVar returns the largest Var occurring in the compiled set. Valuations
// passed to Eval must have length at least MaxVar+1.
func (c *Kernel[T, C]) MaxVar() Var { return c.maxVar }

// ValuationLen returns the length a dense valuation slice must have.
func (c *Kernel[T, C]) ValuationLen() int { return int(c.maxVar) + 1 }

// NewValuation returns an identity valuation (every variable One) of the
// right length for Eval. Index it by Var to assign scenario values.
func (c *Kernel[T, C]) NewValuation() []T {
	val := make([]T, c.ValuationLen())
	one := c.carrier.One()
	for i := range val {
		val[i] = one
	}
	return val
}

// Valuation converts a sparse map valuation into a dense slice for Eval.
// Variables absent from the map keep the identity value One. Map entries
// for variables beyond MaxVar are ignored (they cannot occur in any term).
func (c *Kernel[T, C]) Valuation(m map[Var]T) []T {
	val := c.NewValuation()
	for v, x := range m {
		if v >= 0 && int(v) < len(val) {
			val[v] = x
		}
	}
	return val
}

// Eval evaluates every polynomial under the dense valuation, writing one
// value per polynomial into out (grown as needed) and returning it. Passing
// a nil out allocates; passing the previous result re-uses its storage,
// which keeps steady-state batch evaluation allocation-free.
//
// val must have length at least ValuationLen(); use NewValuation or
// Valuation to build it. Eval does not mutate val and is safe for
// concurrent use with distinct out slices.
func (c *Kernel[T, C]) Eval(val []T, out []T) []T {
	n := c.Len()
	if cap(out) < n {
		out = make([]T, n)
	}
	out = out[:n]
	c.evalRange(0, n, val, out)
	return out
}

// evalRange evaluates polynomials [lo, hi) into out (indexed by polynomial
// id, not shifted). Disjoint ranges may be evaluated concurrently. Carriers
// with a fused bulk loop take it through a single interface call; the rest
// run the generic loops below.
func (c *Kernel[T, C]) evalRange(lo, hi int, val, out []T) {
	if c.bulk != nil {
		c.bulk.evalBulk(&c.kernelArrays, lo, hi, val, out)
		return
	}
	cr := c.carrier
	for pi := lo; pi < hi; pi++ {
		sum := cr.Zero()
		for t := c.polyOff[pi]; t < c.polyOff[pi+1]; t++ {
			x := c.coeffs[t]
			for f := c.factOff[t]; f < c.factOff[t+1]; f++ {
				v := val[c.vars[f]]
				for p := c.pows[f]; p > 0; p-- {
					x = cr.Mul(x, v)
				}
			}
			sum = cr.Add(sum, x)
		}
		out[pi] = sum
	}
}

// EvalPoly evaluates only polynomial i under the dense valuation.
func (c *Kernel[T, C]) EvalPoly(i int, val []T) T {
	cr := c.carrier
	sum := cr.Zero()
	for t := c.polyOff[i]; t < c.polyOff[i+1]; t++ {
		x := c.coeffs[t]
		for f := c.factOff[t]; f < c.factOff[t+1]; f++ {
			v := val[c.vars[f]]
			for p := c.pows[f]; p > 0; p-- {
				x = cr.Mul(x, v)
			}
		}
		sum = cr.Add(sum, x)
	}
	return sum
}

// EvalMap evaluates under a sparse map valuation (convenience bridge from
// the map-based API; batch callers should build dense valuations once).
func (c *Kernel[T, C]) EvalMap(m map[Var]T) []T {
	return c.Eval(c.Valuation(m), nil)
}
