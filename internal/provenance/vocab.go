// Package provenance implements provenance polynomials in the style of
// Green, Karvounarakis and Tannen's provenance semirings, specialized to the
// needs of hypothetical reasoning: each polynomial is a sum of monomials,
// each monomial a rational coefficient times a product of variables
// (possibly with exponents). Variables parameterize hypothetical scenarios;
// valuating them yields the result of the scenario.
//
// The package provides interned variables (Vocab), canonical monomials and
// polynomials, multisets of polynomials (Set) with the size measures
// |P|_M (number of monomials) and |P|_V (number of distinct variables) used
// throughout the paper, substitution under an abstraction (P↓S), evaluation,
// a text format, and a compact binary codec.
package provenance

import (
	"fmt"
	"sort"
)

// Var is an interned variable identifier. Variables are created and resolved
// through a Vocab. The zero Var is not a valid variable; valid variables are
// strictly positive, which lets callers use 0 as "no variable".
type Var int32

// NoVar is the zero Var, never returned by a Vocab.
const NoVar Var = 0

// Hole is a reserved variable used internally when computing monomial
// residues (a monomial with one variable knocked out). It is never returned
// by a Vocab and never appears in user polynomials.
const Hole Var = -1

// Vocab interns variable names. It is the single source of truth mapping
// names to Vars and back; all polynomials sharing a Vocab can be compared
// and combined. The zero value is ready to use.
type Vocab struct {
	names []string // names[i] is the name of Var(i+1)
	ids   map[string]Var
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{} }

// Var interns name and returns its Var, allocating a fresh one on first use.
func (vb *Vocab) Var(name string) Var {
	if vb.ids == nil {
		vb.ids = make(map[string]Var)
	}
	if v, ok := vb.ids[name]; ok {
		return v
	}
	vb.names = append(vb.names, name)
	v := Var(len(vb.names))
	vb.ids[name] = v
	return v
}

// Vars interns every name and returns the corresponding Vars in order.
func (vb *Vocab) Vars(names ...string) []Var {
	out := make([]Var, len(names))
	for i, n := range names {
		out[i] = vb.Var(n)
	}
	return out
}

// Lookup returns the Var for name without interning. ok is false if the name
// has never been interned.
func (vb *Vocab) Lookup(name string) (v Var, ok bool) {
	v, ok = vb.ids[name]
	return v, ok
}

// Name returns the name of v. It panics if v was not produced by this Vocab.
func (vb *Vocab) Name(v Var) string {
	if v <= 0 || int(v) > len(vb.names) {
		panic(fmt.Sprintf("provenance: Var %d not in vocabulary (size %d)", v, len(vb.names)))
	}
	return vb.names[v-1]
}

// Len reports the number of interned variables.
func (vb *Vocab) Len() int { return len(vb.names) }

// All returns all interned Vars in creation order.
func (vb *Vocab) All() []Var {
	out := make([]Var, len(vb.names))
	for i := range vb.names {
		out[i] = Var(i + 1)
	}
	return out
}

// SortedNames returns all interned names in lexicographic order. It is used
// by deterministic printers.
func (vb *Vocab) SortedNames() []string {
	out := append([]string(nil), vb.names...)
	sort.Strings(out)
	return out
}
