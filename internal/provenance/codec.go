package provenance

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec for provenance sets. The anticipated use case (§1, "Offline
// vs. Online Compression") is that provenance is computed once, compressed,
// and shipped to many analysts; the codec gives the byte size that shipping
// and local storage would pay, so experiments can report compression in
// bytes as well as in monomial counts.
//
// Format (all integers varint unless noted):
//
//	magic "PVAB" | version u8
//	#vars | each: name len + bytes          (Var i+1 = i'th name)
//	#polys | each: tag len + bytes, #terms,
//	    each term: coeff (8-byte LE float), #varpows, each: var zigzag, pow
const (
	codecMagic   = "PVAB"
	codecVersion = 1
)

// Encode writes the set to w in the binary format.
func Encode(w io.Writer, s *Set) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	writeUvarint(bw, uint64(s.Vocab.Len()))
	for _, name := range s.Vocab.names {
		writeString(bw, name)
	}
	writeUvarint(bw, uint64(len(s.Polys)))
	for i, p := range s.Polys {
		tag := ""
		if i < len(s.Tags) {
			tag = s.Tags[i]
		}
		writeString(bw, tag)
		writeUvarint(bw, uint64(len(p.terms)))
		for _, m := range p.Monomials() { // sorted for determinism
			var fb [8]byte
			binary.LittleEndian.PutUint64(fb[:], math.Float64bits(m.Coeff))
			if _, err := bw.Write(fb[:]); err != nil {
				return err
			}
			writeUvarint(bw, uint64(len(m.vars)))
			for _, vp := range m.vars {
				writeVarint(bw, int64(vp.Var))
				writeUvarint(bw, uint64(vp.Pow))
			}
		}
	}
	return bw.Flush()
}

// Decode reads a set from r.
func Decode(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("provenance: reading magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("provenance: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("provenance: unsupported version %d", ver)
	}
	nvars, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	vb := NewVocab()
	for i := uint64(0); i < nvars; i++ {
		name, err := readString(br)
		if err != nil {
			return nil, err
		}
		vb.Var(name)
	}
	npolys, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	s := NewSet(vb)
	for i := uint64(0); i < npolys; i++ {
		tag, err := readString(br)
		if err != nil {
			return nil, err
		}
		nterms, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		p := NewPolynomial()
		for t := uint64(0); t < nterms; t++ {
			var fb [8]byte
			if _, err := io.ReadFull(br, fb[:]); err != nil {
				return nil, err
			}
			coeff := math.Float64frombits(binary.LittleEndian.Uint64(fb[:]))
			nvp, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			pows := make([]VarPow, nvp)
			for j := range pows {
				v, err := binary.ReadVarint(br)
				if err != nil {
					return nil, err
				}
				pw, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, err
				}
				if v <= 0 || v > int64(vb.Len()) {
					return nil, fmt.Errorf("provenance: variable %d out of range", v)
				}
				if pw == 0 || pw > math.MaxInt32 {
					return nil, fmt.Errorf("provenance: exponent %d out of range", pw)
				}
				pows[j] = VarPow{Var: Var(v), Pow: int32(pw)}
			}
			p.AddMonomial(NewMonomialPows(coeff, pows...))
		}
		s.Add(tag, p)
	}
	return s, nil
}

// EncodedSize returns the number of bytes Encode would produce. It is the
// storage/communication-cost measure used in the compression-gain reports.
func EncodedSize(s *Set) int {
	cw := &countWriter{}
	if err := Encode(cw, s); err != nil {
		// Encoding to a counter cannot fail; a failure indicates a bug.
		panic(err)
	}
	return cw.n
}

type countWriter struct{ n int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += len(p)
	return len(p), nil
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<24 {
		return "", fmt.Errorf("provenance: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
